// Reproduces Figure 5-a of the paper: overall efficiency of Digest in
// total samples. For the query (δ/σ̂ = 1, ε/σ̂ = 0.25, p = 0.95) the
// total number of samples drawn over the whole continuous query is
// reported for the four combinations {ALL, PRED-3} x {INDEP, RPT}.
//
// Paper's shape: Digest (PRED3 + RPT) outperforms the naive solution
// (ALL + INDEP) by up to ~320% on TEMPERATURE; ordering
// ALL+INDEP > ALL+RPT > PRED3+INDEP > PRED3+RPT (samples, lower better).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "workload/experiment.h"
#include "workload/memory.h"
#include "workload/temperature.h"

namespace digest {
namespace bench {
namespace {

std::unique_ptr<Workload> MakeWorkload(const std::string& dataset,
                                       const BenchArgs& args) {
  if (dataset == "TEMPERATURE") {
    TemperatureConfig config;
    config.num_units = args.Scaled(8000, 200);
    config.num_nodes = args.Scaled(530, 16);
    config.seed = args.seed;
    return UnwrapOrDie(TemperatureWorkload::Create(config), "temperature");
  }
  MemoryConfig config;
  config.num_units = args.Scaled(1000, 100);
  config.num_nodes = args.Scaled(820, 60);
  config.seed = args.seed;
  return UnwrapOrDie(MemoryWorkload::Create(config), "memory");
}

int Run(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  ObsSession obs(args);
  std::printf("=== Figure 5-a: total samples per configuration ===\n");
  std::printf("delta/sigma=1 epsilon/sigma=0.25 p=0.95 scale=%.2f\n\n",
              args.scale);

  struct Dataset {
    const char* name;
    const char* attribute;
    double sigma_hat;
    size_t ticks;
  };
  const std::vector<Dataset> datasets = {
      {"TEMPERATURE", "temperature", 8.0, args.quick ? 150u : 1095u},
      {"MEMORY", "memory", 10.0, args.quick ? 100u : 512u},
  };
  struct Combo {
    const char* name;
    SchedulerKind scheduler;
    EstimatorKind estimator;
  };
  const std::vector<Combo> combos = {
      {"ALL + INDEP", SchedulerKind::kAll, EstimatorKind::kIndependent},
      {"ALL + RPT", SchedulerKind::kAll, EstimatorKind::kRepeated},
      {"PRED3 + INDEP", SchedulerKind::kPred, EstimatorKind::kIndependent},
      {"PRED3 + RPT (Digest)", SchedulerKind::kPred,
       EstimatorKind::kRepeated},
  };

  for (const Dataset& ds : datasets) {
    std::printf("--- %s ---\n", ds.name);
    char query[128];
    std::snprintf(query, sizeof(query), "SELECT AVG(%s) FROM R",
                  ds.attribute);
    ContinuousQuerySpec spec = UnwrapOrDie(
        ContinuousQuerySpec::Create(
            query, PrecisionSpec{ds.sigma_hat, 0.25 * ds.sigma_hat, 0.95}),
        "spec");

    TablePrinter table({"configuration", "snapshots", "total samples",
                        "fresh samples", "vs naive"});
    uint64_t naive_samples = 0;
    for (const Combo& combo : combos) {
      auto workload = MakeWorkload(ds.name, args);
      DigestEngineOptions options;
      options.scheduler = combo.scheduler;
      options.estimator = combo.estimator;
      options.sampler = SamplerKind::kExactCentral;
      options.extrapolator.history_points = 3;  // PRED-3.
      options.tracer = obs.tracer();
      options.registry = obs.registry();
      options.profiler = obs.profiler();
      options.auditor = obs.auditor();
      options.diag = obs.diag();
      options.health = obs.health();
      RunResult run = UnwrapOrDie(
          RunEngineExperiment(*workload, spec, options, ds.ticks,
                              args.seed,
                              std::string(ds.name) + " " + combo.name),
          combo.name);
      if (naive_samples == 0) naive_samples = run.stats.total_samples;
      const double gain =
          100.0 * (static_cast<double>(naive_samples) /
                       static_cast<double>(run.stats.total_samples) -
                   1.0);
      table.AddRow({combo.name, FmtInt(run.stats.snapshots),
                    FmtInt(run.stats.total_samples),
                    FmtInt(run.stats.fresh_samples),
                    Fmt("+%.0f%%", gain)});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "paper: Digest (PRED3+RPT) up to ~320%% better than ALL+INDEP on "
      "TEMPERATURE.\n");
  obs.Finish();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace digest

int main(int argc, char** argv) { return digest::bench::Run(argc, argv); }
