// Robustness datapoints under deterministic fault injection: sweeps
// message-loss and agent-drop rates over the churning MEMORY workload
// and reports, per fault level, how often the engine had to degrade,
// what the retry/restart overhead cost in messages, and how well the
// reported series tracked ground truth under the widened per-tick
// contract (max(ε, ci[t]) + δ).
//
// The engine runs ALL+RPT so every tick is a sampling occasion — the
// densest possible exposure to the injected faults.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "obs/bridge.h"
#include "core/engine.h"
#include "net/fault_plan.h"
#include "workload/experiment.h"
#include "workload/memory.h"

namespace digest {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  ObsSession obs(args);
  std::printf("=== Robustness under injected faults (fault plan sweep) ===\n");
  std::printf(
      "MEMORY workload (churning membership), ALL+RPT engine, AVG query\n"
      "epsilon=2 delta=1 p=0.9; per-edge loss heterogeneity 0.5, retries\n"
      "per RetryPolicy defaults; 'overhead' = (retries + restarts) /\n"
      "total messages, 'within (widened)' = ticks meeting the per-tick\n"
      "contract max(eps, ci[t]) + delta\n\n");

  const size_t ticks = args.quick ? 30 : 100;
  const std::vector<double> losses =
      args.quick ? std::vector<double>{0.0, 0.10}
                 : std::vector<double>{0.0, 0.02, 0.05, 0.10};
  const std::vector<double> drops = args.quick
                                        ? std::vector<double>{0.0, 0.05}
                                        : std::vector<double>{0.0, 0.02, 0.05};

  TablePrinter table({"loss", "drop", "ticks", "degraded", "losses",
                      "retries", "restarts", "total msgs", "overhead",
                      "mean |err|", "within (widened)"});
  for (double loss : losses) {
    for (double drop : drops) {
      MemoryConfig config;
      config.num_units = args.Scaled(1000, 200);
      config.num_nodes = args.Scaled(820, 150);
      config.seed = args.seed + 17;
      auto workload = UnwrapOrDie(MemoryWorkload::Create(config), "workload");
      ContinuousQuerySpec spec = UnwrapOrDie(
          ContinuousQuerySpec::Create("SELECT AVG(memory) FROM R",
                                      PrecisionSpec{1.0, 2.0, 0.9}),
          "spec");

      std::fprintf(stderr, "[bench_faults] loss=%.0f%% drop=%.0f%% ...\n",
                   100.0 * loss, 100.0 * drop);
      FaultPlanConfig faults;
      faults.message_loss = loss;
      faults.agent_drop = drop;
      faults.edge_spread = 0.5;
      CheckOk(faults.Validate(), "fault config");
      FaultPlan plan(faults, args.seed + 1);

      DigestEngineOptions options;
      options.scheduler = SchedulerKind::kAll;
      options.estimator = EstimatorKind::kRepeated;
      options.fault_plan = &plan;
      // Tuned walk lengths: a full ln²N cold walk at this scale takes
      // ~180 hops, which a 5% per-hop agent-drop rate almost never lets
      // finish — including on the very first occasion, where no retained
      // pool exists to degrade to. These lengths keep the fault sweep in
      // the regime where retry + degradation (not guaranteed timeout) is
      // what is being measured.
      options.sampling_options.walk_length = 60;
      options.sampling_options.reset_length = 15;
      options.tracer = obs.tracer();
      options.registry = obs.registry();
      options.profiler = obs.profiler();
      options.auditor = obs.auditor();
      options.diag = obs.diag();
      options.health = obs.health();
      const std::string run_label = "loss=" + Fmt("%.0f%%", 100.0 * loss) +
                                    " drop=" + Fmt("%.0f%%", 100.0 * drop);
      RunResult run = UnwrapOrDie(
          RunEngineExperiment(*workload, spec, options, ticks, args.seed,
                              run_label),
          "run");

      const double overhead =
          run.meter.Total() > 0
              ? 100.0 * static_cast<double>(run.meter.FaultOverhead()) /
                    static_cast<double>(run.meter.Total())
              : 0.0;
      table.AddRow(
          {Fmt("%.0f%%", 100.0 * loss), Fmt("%.0f%%", 100.0 * drop),
           FmtInt(ticks), FmtInt(run.degraded_ticks),
           FmtInt(run.meter.losses()), FmtInt(run.meter.retries()),
           FmtInt(run.meter.agent_restarts()), FmtInt(run.meter.Total()),
           Fmt("%.2f%%", overhead),
           Fmt("%.3f", run.precision.mean_abs_error),
           Fmt("%.1f%%",
               100.0 * run.widened_precision.within_tolerance_fraction)});
    }
  }
  table.Print();

  // Second axis: how tight the walk-timeout budget is. The engine warms
  // up fault-free (building its retained pool), then loss/drop spike to
  // the harshest level of the sweep. Shrinking hop_budget_factor turns
  // retry slack into timeouts, so ticks start answering degraded from
  // the retained pool — the graceful-degradation path itself.
  std::printf(
      "\n--- degradation vs hop budget (spike to loss=10%%, drop=5%%) "
      "---\n");
  TablePrinter degraded_table({"budget factor", "degraded ticks",
                               "total msgs", "mean |err|",
                               "within (widened)"});
  for (double factor : {8.0, 4.0, 2.0}) {
    std::fprintf(stderr, "[bench_faults] budget factor=%.0f ...\n", factor);
    MemoryConfig config;
    config.num_units = args.Scaled(1000, 200);
    config.num_nodes = args.Scaled(820, 150);
    config.seed = args.seed + 17;
    auto workload = UnwrapOrDie(MemoryWorkload::Create(config), "workload");
    ContinuousQuerySpec spec = UnwrapOrDie(
        ContinuousQuerySpec::Create("SELECT AVG(memory) FROM R",
                                    PrecisionSpec{1.0, 2.0, 0.9}),
        "spec");
    FaultPlanConfig faults;  // Rates start at zero: healthy warm-up.
    faults.edge_spread = 0.5;
    FaultPlan plan(faults, args.seed + 1);
    DigestEngineOptions options;
    options.scheduler = SchedulerKind::kAll;
    options.estimator = EstimatorKind::kRepeated;
    options.fault_plan = &plan;
    options.sampling_options.walk_length = 60;
    options.sampling_options.reset_length = 15;
    options.sampling_options.retry.hop_budget_factor = factor;
    options.tracer = obs.tracer();
    options.registry = obs.registry();
    options.profiler = obs.profiler();
    options.auditor = obs.auditor();
    options.diag = obs.diag();
    options.health = obs.health();
    const std::string run_label = "budget " + Fmt("%.0fx", factor);
    if (obs::Tracing(obs.tracer())) {
      obs.tracer()->set_now(workload->now());
      obs.tracer()->Emit(obs::RunBeginEvent{run_label});
    }
    plan.SetTracer(obs.tracer());
    if (obs.auditor() != nullptr) obs.auditor()->BeginRun(run_label);
    if (obs.diag() != nullptr) obs.diag()->Reset();
    if (obs.health() != nullptr) obs.health()->Reset();

    Rng rng(args.seed);
    const NodeId querying =
        UnwrapOrDie(workload->graph().RandomLiveNode(rng), "origin");
    workload->ProtectNode(querying);
    MessageMeter meter;
    auto engine = UnwrapOrDie(
        DigestEngine::Create(&workload->graph(), &workload->db(), spec,
                             querying, rng.Fork(), &meter, options),
        "engine");
    for (int t = 0; t < 5; ++t) {
      CheckOk(workload->Advance(), "warmup advance");
      plan.set_now(workload->now());
      UnwrapOrDie(engine->Tick(workload->now()), "warmup tick");
    }
    CheckOk(plan.set_message_loss(0.10), "burst loss rate");
    CheckOk(plan.set_agent_drop(0.05), "burst drop rate");
    std::vector<double> reported, truth, cis;
    for (size_t t = 0; t < ticks; ++t) {
      CheckOk(workload->Advance(), "advance");
      plan.set_now(workload->now());
      const double oracle =
          UnwrapOrDie(workload->db().ExactAggregate(spec.query), "oracle");
      EngineTickResult tick =
          UnwrapOrDie(engine->Tick(workload->now()), "tick");
      reported.push_back(tick.reported_value);
      truth.push_back(oracle);
      cis.push_back(tick.ci_halfwidth);
      if (obs.auditor() != nullptr) {
        obs.auditor()->RecordTruth(workload->now(), oracle);
      }
    }
    if (obs.auditor() != nullptr) obs.auditor()->FinalizeRun();
    PrecisionReport plain = UnwrapOrDie(
        EvaluatePrecision(reported, truth, spec.precision), "precision");
    PrecisionReport widened = UnwrapOrDie(
        EvaluatePrecisionWidened(reported, truth, cis, spec.precision),
        "widened precision");
    degraded_table.AddRow(
        {Fmt("%.0fx", factor), FmtInt(engine->stats().degraded_ticks),
         FmtInt(meter.Total()), Fmt("%.3f", plain.mean_abs_error),
         Fmt("%.1f%%", 100.0 * widened.within_tolerance_fraction)});
    ExportToRegistry(engine->stats(), obs.registry(), run_label);
    obs::BridgeMessageMeter(meter, obs.registry());
    if (obs.auditor() != nullptr && obs.registry() != nullptr) {
      obs.auditor()->ExportToRegistry(obs.registry());
    }
  }
  degraded_table.Print();
  std::printf(
      "\nlost transmissions are retried with exponential backoff, dropped\n"
      "agents restart from the origin, and ticks whose sampling times out\n"
      "answer from the retained pool with an honestly widened interval —\n"
      "so coverage under the widened contract stays high while the message\n"
      "overhead grows smoothly with the injected fault rates.\n");
  obs.Finish();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace digest

int main(int argc, char** argv) { return digest::bench::Run(argc, argv); }
