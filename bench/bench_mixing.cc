// Validates §V of the paper (the random sampling operator):
//
//   1. Convergence (Theorems 1-2): total-variation distance between the
//      walk distribution and the target w_v/Σw_u as a function of walk
//      length, on mesh and power-law overlays, uniform and content-size
//      weights.
//   2. Mixing time vs network size on power-law graphs (Theorem 4
//      predicts poly-logarithmic growth), via the exact eigengap bound.
//   3. Ablation: warm-walk continuation (reset time) vs cold restarts
//      (design choice #2 of DESIGN.md) — messages per sample.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "net/topology.h"
#include "numeric/matrix.h"
#include "sampling/metropolis.h"
#include "sampling/sampling_operator.h"

namespace digest {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  RejectObservabilityFlags(args, "bench_mixing");
  Rng rng(args.seed);

  std::printf("=== Sampling operator validation (paper Section V) ===\n\n");

  // Part 1: TV distance vs walk length.
  std::printf("--- total variation vs walk length ---\n");
  {
    struct Case {
      const char* name;
      Graph graph;
      WeightFn weight;
    };
    std::vector<Case> cases;
    cases.push_back({"mesh 8x8, uniform",
                     UnwrapOrDie(MakeMesh(8, 8), "mesh"), UniformWeight()});
    cases.push_back({"power-law n=64, uniform",
                     UnwrapOrDie(MakeBarabasiAlbert(64, 2, rng), "ba"),
                     UniformWeight()});
    cases.push_back({"power-law n=64, w=1+v%7",
                     UnwrapOrDie(MakeBarabasiAlbert(64, 2, rng), "ba"),
                     WeightFn([](NodeId v) { return 1.0 + (v % 7); })});

    std::vector<size_t> lengths = {1, 2, 4, 8, 16, 32, 64, 128, 256};
    TablePrinter table({"walk length", cases[0].name, cases[1].name,
                        cases[2].name});
    std::vector<ForwardingMatrix> fms;
    for (Case& c : cases) {
      fms.push_back(
          UnwrapOrDie(BuildForwardingMatrix(c.graph, c.weight), c.name));
    }
    for (size_t len : lengths) {
      std::vector<std::string> row = {FmtInt(len)};
      for (size_t i = 0; i < cases.size(); ++i) {
        std::vector<double> start(fms[i].p.rows(), 0.0);
        start[0] = 1.0;
        std::vector<double> dist = UnwrapOrDie(
            DistributionAfter(fms[i], start, len), "DistributionAfter");
        const double tv = UnwrapOrDie(
            TotalVariationDistance(dist, fms[i].pi), "TV");
        row.push_back(Fmt("%.4f", tv));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }

  // Part 2: mixing-time growth with N on power-law overlays.
  std::printf("\n--- mixing time vs network size (power-law, gamma=0.01) "
              "---\n");
  {
    std::vector<size_t> sizes = {32, 64, 128, 256};
    if (!args.quick) sizes.push_back(512);
    TablePrinter table({"N", "eigengap", "tau(0.01) bound",
                        "bound / ln^2 N", "tau exact (small N)"});
    for (size_t n : sizes) {
      Graph g = UnwrapOrDie(MakeBarabasiAlbert(n, 2, rng), "ba");
      ForwardingMatrix fm =
          UnwrapOrDie(BuildForwardingMatrix(g, UniformWeight()), "fm");
      const double lambda2 =
          UnwrapOrDie(SecondEigenvalueMagnitude(fm.p, fm.pi), "eigen");
      const double gap = 1.0 - lambda2;
      double pi_min = 1.0;
      for (double p : fm.pi) pi_min = std::min(pi_min, p);
      const double bound = std::log(1.0 / (pi_min * 0.01)) / gap;
      const double ln2 = std::log(double(n)) * std::log(double(n));
      std::string exact = "-";
      if (n <= 64) {
        exact = FmtInt(UnwrapOrDie(MixingTime(fm, 0.01), "tau"));
      }
      table.AddRow({FmtInt(n), Fmt("%.4f", gap), Fmt("%.0f", bound),
                    Fmt("%.2f", bound / ln2), exact});
    }
    table.Print();
    std::printf("(Theorem 4: tau grows poly-logarithmically; the bound /"
                " ln^2 N column should stay roughly flat.)\n");
  }

  // Part 2b: laziness ablation (design choice #1). The ½ self-loop buys
  // aperiodicity: on a *regular* bipartite overlay (an even ring — on
  // irregular bipartite graphs Metropolis rejections already create
  // self-loops) the non-lazy chain is periodic and never converges,
  // while on non-bipartite graphs removing laziness roughly doubles the
  // per-step progress.
  std::printf("\n--- ablation: laziness 1/2 vs non-lazy (TV after k steps) "
              "---\n");
  {
    Graph ring = UnwrapOrDie(MakeRing(36), "ring");
    Graph ba = UnwrapOrDie(MakeBarabasiAlbert(36, 2, rng), "ba");
    TablePrinter table({"steps", "ring lazy", "ring non-lazy", "BA lazy",
                        "BA non-lazy"});
    struct Case {
      ForwardingMatrix fm;
    };
    std::vector<ForwardingMatrix> fms;
    fms.push_back(UnwrapOrDie(
        BuildForwardingMatrix(ring, UniformWeight(), 0.5), "r-lazy"));
    fms.push_back(UnwrapOrDie(
        BuildForwardingMatrix(ring, UniformWeight(), 0.0), "r-nonlazy"));
    fms.push_back(UnwrapOrDie(
        BuildForwardingMatrix(ba, UniformWeight(), 0.5), "b-lazy"));
    fms.push_back(UnwrapOrDie(
        BuildForwardingMatrix(ba, UniformWeight(), 0.0), "b-nonlazy"));
    for (size_t steps : {8, 32, 128, 512}) {
      std::vector<std::string> row = {FmtInt(steps)};
      for (ForwardingMatrix& fm : fms) {
        std::vector<double> start(fm.p.rows(), 0.0);
        start[0] = 1.0;
        const double tv = UnwrapOrDie(
            TotalVariationDistance(
                UnwrapOrDie(DistributionAfter(fm, start, steps), "dist"),
                fm.pi),
            "tv");
        row.push_back(Fmt("%.4f", tv));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("(the non-lazy chain is periodic on the regular bipartite ring: "
                "its TV column never decays.)\n");
  }

  // Part 3: warm vs cold walks (the experiment-setup optimization of
  // §VI-A: re-converging from a warm walk costs the reset time only).
  std::printf("\n--- ablation: warm-walk continuation vs cold restarts "
              "---\n");
  {
    Graph g = UnwrapOrDie(MakeBarabasiAlbert(args.quick ? 64 : 256, 3, rng),
                          "ba");
    TablePrinter table(
        {"mode", "samples", "total messages", "messages/sample"});
    for (bool warm : {true, false}) {
      MessageMeter meter;
      SamplingOperatorOptions options;
      options.warm_walks = warm;
      SamplingOperator op(&g, UniformWeight(), rng.Fork(), &meter, options);
      const size_t n = args.quick ? 200 : 1000;
      // Successive single-sample invocations: exactly the case the warm
      // continuation optimizes (only the first pays the mixing time).
      for (size_t i = 0; i < n; ++i) {
        UnwrapOrDie(op.SampleNode(0), "SampleNode");
      }
      table.AddRow({warm ? "warm (reset time)" : "cold (mixing time)",
                    FmtInt(n), FmtInt(meter.Total()),
                    Fmt("%.1f", double(meter.Total()) / double(n))});
    }
    table.Print();
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace digest

int main(int argc, char** argv) { return digest::bench::Run(argc, argv); }
