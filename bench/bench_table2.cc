// Reproduces Table II of the paper: parameters of the TEMPERATURE and
// MEMORY datasets. The paper measured them on real JPL/NASA and
// SETI@home data; this repo substitutes calibrated synthetic generators
// (see DESIGN.md), so the check here is paper-target vs measured-on-
// synthetic for the statistics the algorithms actually consume (ρ, σ,
// membership dynamics).
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/calibration.h"
#include "workload/memory.h"
#include "workload/temperature.h"

namespace digest {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  RejectObservabilityFlags(args, "bench_table2");
  std::printf("=== Table II: parameters of the datasets ===\n");
  std::printf("(scale=%.2f of the paper's workload sizes, seed=%llu)\n\n",
              args.scale, static_cast<unsigned long long>(args.seed));

  TemperatureConfig temp_config;
  temp_config.num_units = args.Scaled(8000, 200);
  temp_config.num_nodes = args.Scaled(530, 16);
  temp_config.seed = args.seed;
  const size_t temp_ticks = args.quick ? 100 : 400;

  MemoryConfig mem_config;
  mem_config.num_units = args.Scaled(1000, 100);
  mem_config.num_nodes = args.Scaled(820, 60);
  mem_config.seed = args.seed;
  const size_t mem_ticks = args.quick ? 100 : 400;

  auto temp = UnwrapOrDie(TemperatureWorkload::Create(temp_config),
                          "TemperatureWorkload::Create");
  auto mem =
      UnwrapOrDie(MemoryWorkload::Create(mem_config), "MemoryWorkload::Create");

  const size_t temp_nodes = temp->graph().NodeCount();
  const size_t temp_units = temp->db().TotalTuples();
  const size_t mem_nodes = mem->graph().NodeCount();
  const size_t mem_units = mem->db().TotalTuples();

  DatasetStatistics ts = UnwrapOrDie(
      MeasureWorkloadStatistics(*temp, temp_ticks), "temperature stats");
  DatasetStatistics ms = UnwrapOrDie(
      MeasureWorkloadStatistics(*mem, mem_ticks), "memory stats");

  TablePrinter table({"parameter", "TEMPERATURE (paper)",
                      "TEMPERATURE (measured)", "MEMORY (paper)",
                      "MEMORY (measured)"});
  table.AddRow({"number of tuples (end)", "8640000*", FmtInt(ts.tuples_end),
                "95445*", FmtInt(ms.tuples_end)});
  table.AddRow({"number of units", "8000", FmtInt(temp_units), "1000",
                FmtInt(mem_units)});
  table.AddRow({"number of nodes", "530", FmtInt(temp_nodes), "820",
                FmtInt(mem_nodes)});
  table.AddRow({"updates observed", "(18 months)", FmtInt(ts.updates),
                "(1 hour)", FmtInt(ms.updates)});
  table.AddRow({"tuple joins during window", "~0", FmtInt(ts.joins),
                "churning", FmtInt(ms.joins)});
  table.AddRow({"tuple leaves during window", "~0", FmtInt(ts.leaves),
                "churning", FmtInt(ms.leaves)});
  table.AddRow({"rho (lag-1 correlation)", "0.89", Fmt("%.3f", ts.rho),
                "0.68", Fmt("%.3f", ms.rho)});
  table.AddRow({"sigma (dispersion)", "8", Fmt("%.2f", ts.sigma), "10",
                Fmt("%.2f", ms.sigma)});
  table.Print();
  std::printf(
      "\n* the paper's tuple counts are append-log sizes over the whole\n"
      "  recording; here tuples are updated in place, so the comparable\n"
      "  quantity is 'updates observed' over the measured window.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace digest

int main(int argc, char** argv) { return digest::bench::Run(argc, argv); }
