// Probes the paper's snapshot assumption (§II: the database is almost
// static during a sampling occasion; §VIII #3 asks about databases
// where the change time-scale is comparable to the sampling time).
//
// An independent AVG estimator draws its samples while the TEMPERATURE
// workload advances every k draws. Sweeping k from "effectively static"
// down to 1 quantifies when snapshot semantics break down: the estimate
// degrades from a point-in-time value to a smeared time-average, and
// its error vs the end-of-occasion oracle grows.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/snapshot_estimator.h"
#include "numeric/stats.h"
#include "workload/temperature.h"
#include "workload/timescale.h"

namespace digest {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  RejectObservabilityFlags(args, "bench_timescale");
  std::printf("=== Snapshot-assumption stress (paper §VIII #3) ===\n");
  std::printf("independent AVG estimator, epsilon=1 p=0.95; the workload "
              "advances every k draws\n\n");

  const int trials = args.quick ? 10 : 40;
  std::vector<size_t> ks = {1000000, 256, 64, 16, 4, 1};
  TablePrinter table({"draws per tick (k)", "mid-occasion ticks",
                      "RMS error vs end oracle", "mean |bias|"});
  for (size_t k : ks) {
    RunningStats sq_err;
    RunningStats bias;
    size_t advances = 0;
    for (int trial = 0; trial < trials; ++trial) {
      TemperatureConfig config;
      config.num_units = args.Scaled(2000, 300);
      config.num_nodes = args.Scaled(132, 16);
      config.seed = args.seed + trial;
      auto workload = UnwrapOrDie(TemperatureWorkload::Create(config),
                                  "workload");
      // Warm the workload a few ticks so the regional front is moving.
      for (int t = 0; t < 5; ++t) {
        CheckOk(workload->Advance(), "warmup");
      }
      ContinuousQuerySpec spec = UnwrapOrDie(
          ContinuousQuerySpec::Create("SELECT AVG(temperature) FROM R",
                                      PrecisionSpec{1.0, 1.0, 0.95}),
          "spec");
      MessageMeter meter;
      ExactTupleSampler sampler(&workload->db(), Rng(args.seed + trial),
                                &meter);
      ExactSampleSource inner(&sampler);
      InterleavingSampleSource source(&inner, workload.get(), k);
      IndependentEstimator est(spec, &workload->db(), &source, nullptr,
                               &meter, Rng(1000 + trial));
      SnapshotEstimate e = UnwrapOrDie(est.Evaluate(0), "estimate");
      advances += source.mid_occasion_advances();
      AggregateQuery q = spec.query;
      const double oracle_end =
          UnwrapOrDie(workload->db().ExactAggregate(q), "oracle");
      const double err = e.value - oracle_end;
      sq_err.Add(err * err);
      bias.Add(std::fabs(err));
    }
    table.AddRow({k >= 1000000 ? "static (paper assumption)" : FmtInt(k),
                  Fmt("%.1f", double(advances) / trials),
                  Fmt("%.3f", std::sqrt(sq_err.Mean())),
                  Fmt("%.3f", bias.Mean())});
  }
  table.Print();
  std::printf(
      "\nas k shrinks the occasion smears across data versions: the\n"
      "estimate drifts from a snapshot toward a time-average, and its\n"
      "error against the end-of-occasion truth grows — the regime where\n"
      "the paper says new continuous-query semantics are needed.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace digest

int main(int argc, char** argv) { return digest::bench::Run(argc, argv); }
