// Quantifies §VII's related-work discussion: per-snapshot communication
// of Digest's sample-based pull evaluation vs the in-network
// alternatives — push-sum gossip (randomized distributed aggregation)
// and TAG-style spanning-tree aggregation — plus the tree's
// churn-fragility sweep (aggregate mass silently lost vs churn between
// rebuilds).
#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/push_sum.h"
#include "baselines/tree_aggregation.h"
#include "bench/bench_util.h"
#include "core/engine.h"
#include "core/snapshot_estimator.h"
#include "net/churn.h"
#include "net/topology.h"

namespace digest {
namespace bench {
namespace {

struct Network {
  Graph graph;
  std::unique_ptr<P2PDatabase> db;
};

Network MakeNetwork(size_t nodes, Rng& rng, bool mesh) {
  Network net;
  if (mesh) {
    const size_t rows = static_cast<size_t>(
        std::floor(std::sqrt(static_cast<double>(nodes))));
    net.graph = UnwrapOrDie(MakeMesh(rows, (nodes + rows - 1) / rows),
                            "mesh");
  } else {
    net.graph = UnwrapOrDie(MakeBarabasiAlbert(nodes, 3, rng), "ba");
  }
  net.db = std::make_unique<P2PDatabase>(Schema::Create({"v"}).value());
  for (NodeId node : net.graph.LiveNodes()) {
    CheckOk(net.db->AddNode(node), "AddNode");
    for (int i = 0; i < 8; ++i) {
      net.db->StoreAt(node).value()->Insert({rng.NextGaussian(50.0, 8.0)});
    }
  }
  return net;
}

int Run(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  RejectObservabilityFlags(args, "bench_innetwork");
  Rng rng(args.seed);
  AggregateQuery query =
      UnwrapOrDie(AggregateQuery::Parse("SELECT AVG(v) FROM R"), "query");

  std::printf("=== In-network aggregation vs Digest sampling (§VII) ===\n");
  std::printf("one AVG snapshot, epsilon=2 p=0.95; messages per snapshot\n\n");

  for (bool mesh : {true, false}) {
    const size_t n = args.Scaled(mesh ? 529 : 512, 64);
    Network net = MakeNetwork(n, rng, mesh);
    std::printf("--- %s, N=%zu nodes, %zu tuples ---\n",
                mesh ? "mesh" : "power-law", net.graph.NodeCount(),
                net.db->TotalTuples());
    TablePrinter table({"approach", "messages/snapshot", "answer",
                        "abs err"});
    const double truth =
        UnwrapOrDie(net.db->ExactAggregate(query), "truth");

    {  // Digest's pull sampling (independent, one occasion).
      MessageMeter meter;
      SamplingOperatorOptions walk;
      walk.walk_length = mesh ? 500 : 250;
      walk.reset_length = mesh ? 72 : 48;
      SamplingOperator op(&net.graph, ContentSizeWeight(*net.db),
                          rng.Fork(), &meter, walk);
      TwoStageTupleSampler sampler(net.db.get(), &op, rng.Fork());
      TwoStageSampleSource source(&sampler);
      ContinuousQuerySpec spec = UnwrapOrDie(
          ContinuousQuerySpec::Create("SELECT AVG(v) FROM R",
                                      PrecisionSpec{1.0, 2.0, 0.95}),
          "spec");
      IndependentEstimator est(spec, net.db.get(), &source, nullptr,
                               &meter, rng.Fork());
      SnapshotEstimate e = UnwrapOrDie(est.Evaluate(0), "estimate");
      table.AddRow({"Digest sampling (INDEP)", FmtInt(meter.Total()),
                    Fmt("%.2f", e.value),
                    Fmt("%.2f", std::fabs(e.value - truth))});
    }
    {  // Push-sum gossip.
      MessageMeter meter;
      PushSumAggregator gossip(&net.graph, net.db.get(), query, 0, &meter,
                               rng.Fork());
      PushSumResult r = UnwrapOrDie(gossip.Run(), "gossip");
      table.AddRow({"push-sum gossip", FmtInt(meter.Total()),
                    Fmt("%.2f", r.value),
                    Fmt("%.2f", std::fabs(r.value - truth))});
    }
    {  // Tree aggregation (fresh tree).
      MessageMeter meter;
      TreeAggregator tree(&net.graph, net.db.get(), query, 0, &meter);
      TreeAggregationResult r = UnwrapOrDie(tree.Tick(), "tree");
      table.AddRow({"TAG tree (fresh tree)", FmtInt(meter.Total()),
                    Fmt("%.2f", r.value),
                    Fmt("%.2f", std::fabs(r.value - truth))});
    }
    table.Print();
    std::printf("\n");
  }

  // The continuous-query picture: Digest amortizes (warm walks, PRED
  // skips, RPT retention) while per-tick gossip/tree pay full price
  // every tick.
  std::printf("--- continuous AVG query, %zu ticks (delta=8, eps=2) ---\n",
              args.quick ? size_t{60} : size_t{300});
  {
    const size_t ticks = args.quick ? 60 : 300;
    const size_t n = args.Scaled(512, 64);
    TablePrinter table({"approach", "total messages", "messages/tick"});
    Rng value_rng(args.seed + 7);

    auto drift = [&](Network& net, Rng& r) {
      for (NodeId node : net.db->Nodes()) {
        LocalStore* store = net.db->StoreAt(node).value();
        std::vector<LocalTupleId> ids;
        store->ForEach([&](LocalTupleId id, const Tuple&) {
          ids.push_back(id);
        });
        for (LocalTupleId id : ids) {
          Tuple t = store->Get(id).value();
          t[0] += r.NextGaussian(0.1, 0.4);
          (void)store->Update(id, t);
        }
      }
    };

    {  // Digest engine (PRED3 + RPT over MCMC).
      Network net = MakeNetwork(n, rng, false);
      MessageMeter meter;
      ContinuousQuerySpec spec = UnwrapOrDie(
          ContinuousQuerySpec::Create("SELECT AVG(v) FROM R",
                                      PrecisionSpec{8.0, 2.0, 0.95}),
          "spec");
      DigestEngineOptions options;
      options.sampling_options.walk_length = 250;
      options.sampling_options.reset_length = 48;
      auto engine = UnwrapOrDie(
          DigestEngine::Create(&net.graph, net.db.get(), spec, 0,
                               rng.Fork(), &meter, options),
          "engine");
      Rng r = value_rng;
      for (size_t t = 1; t <= ticks; ++t) {
        drift(net, r);
        CheckOk(engine->Tick(static_cast<int64_t>(t)).status(), "tick");
      }
      table.AddRow({"Digest (PRED3+RPT)", FmtInt(meter.Total()),
                    Fmt("%.0f", double(meter.Total()) / double(ticks))});
    }
    {  // Gossip every tick.
      Network net = MakeNetwork(n, rng, false);
      MessageMeter meter;
      Rng r = value_rng;
      for (size_t t = 1; t <= ticks; ++t) {
        drift(net, r);
        PushSumAggregator gossip(&net.graph, net.db.get(), query, 0,
                                 &meter, rng.Fork());
        CheckOk(gossip.Run().status(), "gossip tick");
      }
      table.AddRow({"push-sum gossip every tick", FmtInt(meter.Total()),
                    Fmt("%.0f", double(meter.Total()) / double(ticks))});
    }
    {  // Tree aggregation every tick (rebuild every 16).
      Network net = MakeNetwork(n, rng, false);
      MessageMeter meter;
      TreeAggregator tree(&net.graph, net.db.get(), query, 0, &meter);
      Rng r = value_rng;
      for (size_t t = 1; t <= ticks; ++t) {
        drift(net, r);
        CheckOk(tree.Tick().status(), "tree tick");
      }
      table.AddRow({"TAG tree every tick", FmtInt(meter.Total()),
                    Fmt("%.0f", double(meter.Total()) / double(ticks))});
    }
    table.Print();
    std::printf("\n");
  }

  // Churn fragility of the tree: fraction of the aggregate silently
  // lost as a function of node departures since the last rebuild.
  std::printf("--- TAG churn fragility: tuples lost vs departures since "
              "rebuild ---\n");
  {
    TablePrinter table({"departed nodes", "lost tuples", "lost fraction",
                        "COUNT reported", "COUNT true"});
    Network net = MakeNetwork(args.Scaled(512, 64), rng, false);
    AggregateQuery count_q =
        UnwrapOrDie(AggregateQuery::Parse("SELECT COUNT(*) FROM R"), "q");
    TreeAggregationOptions options;
    options.rebuild_period = 1 << 30;  // Never rebuild.
    TreeAggregator tree(&net.graph, net.db.get(), count_q, 0, nullptr,
                        options);
    CheckOk(tree.Tick().status(), "initial tick");
    ChurnConfig churn_config;
    churn_config.leave_rate = 0.0;
    ChurnProcess churn(churn_config);
    (void)churn;
    size_t departed = 0;
    const size_t step = std::max<size_t>(net.graph.NodeCount() / 50, 1);
    for (int round = 0; round < 6; ++round) {
      for (size_t i = 0; i < step * (round > 0 ? 2 : 1); ++i) {
        // Remove a random non-root node and its content.
        Result<NodeId> victim = net.graph.RandomLiveNode(rng);
        if (!victim.ok() || *victim == 0) continue;
        CheckOk(net.graph.RemoveNode(*victim), "RemoveNode");
        CheckOk(net.db->RemoveNode(*victim), "RemoveNode db");
        ++departed;
      }
      RepairConnectivity(net.graph, rng);
      TreeAggregationResult r = UnwrapOrDie(tree.Tick(), "tick");
      const double truth =
          UnwrapOrDie(net.db->ExactAggregate(count_q), "truth");
      table.AddRow(
          {FmtInt(departed), FmtInt(r.lost_tuples),
           Fmt("%.1f%%", 100.0 * static_cast<double>(r.lost_tuples) /
                              static_cast<double>(net.db->TotalTuples())),
           Fmt("%.0f", r.value), Fmt("%.0f", truth)});
    }
    table.Print();
  }
  std::printf(
      "\npaper (§VII): gossip costs O(N) per round — justified only when\n"
      "all nodes query; trees are exact when fresh but silently drop\n"
      "orphaned subtrees under churn. Digest's per-querier sampling cost\n"
      "is independent of N (up to walk length).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace digest

int main(int argc, char** argv) { return digest::bench::Run(argc, argv); }
