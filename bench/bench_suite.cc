// Unified performance suite: runs a fixed set of engine scenarios with
// warmup + repeated measurement, computes robust wall-clock statistics
// (median, MAD, p10/p90) and throughput (ticks/walks/samples/hops per
// second) from the prof layer, and writes the machine-readable perf
// trajectory: one BENCH_<scenario>.json per scenario plus a merged
// BENCH_SUITE.json. `tools/bench_compare.py` diffs two such files with
// noise-aware thresholds; CI runs it against the committed baseline.
//
// Scenario work is deterministic per (seed, scale): the suite verifies
// that every repeat of a scenario performs identical work (ticks,
// snapshots, samples, messages) and fails loudly if not — only the wall
// clock may vary between repeats.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "core/digest_node.h"
#include "core/engine.h"
#include "net/fault_plan.h"
#include "prof/profiler.h"
#include "workload/experiment.h"
#include "workload/memory.h"
#include "workload/temperature.h"

namespace digest {
namespace bench {
namespace {

// ---------------------------------------------------------------------
// Robust statistics over the per-repeat wall times.

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

// Median absolute deviation — the suite's noise estimate. Unscaled (no
// 1.4826 normal-consistency factor); bench_compare.py applies its own
// multiplier.
double Mad(const std::vector<double>& v) {
  const double med = Median(v);
  std::vector<double> dev;
  dev.reserve(v.size());
  for (double x : v) dev.push_back(std::fabs(x - med));
  return Median(std::move(dev));
}

// Nearest-rank percentile, q in [0, 100].
double Percentile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const double rank = q / 100.0 * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = lo + 1 < v.size() ? lo + 1 : lo;
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

std::string FmtMs(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", ms);
  return buf;
}

std::string FmtRate(double rate) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", rate);
  return buf;
}

// ---------------------------------------------------------------------
// Deterministic per-repeat work counts, for the exact-match half of the
// regression gate (and the repeat-stability check).

struct WorkCounts {
  uint64_t ticks = 0;
  uint64_t snapshots = 0;
  uint64_t total_samples = 0;
  uint64_t messages = 0;
  uint64_t degraded_ticks = 0;
  uint64_t walk_batches = 0;
  uint64_t walk_hops = 0;

  bool operator==(const WorkCounts& o) const {
    return ticks == o.ticks && snapshots == o.snapshots &&
           total_samples == o.total_samples && messages == o.messages &&
           degraded_ticks == o.degraded_ticks &&
           walk_batches == o.walk_batches && walk_hops == o.walk_hops;
  }
};

struct Scenario {
  const char* name;
  const char* description;
  // Builds the workload/spec/options, runs the engine experiment once
  // with `profiler` attached (options.profiler = profiler), and returns
  // the run result. `wall_ns` receives the wall time of the engine run
  // alone — workload construction is setup, not measured. A scenario
  // may deposit a deterministic JSON object into `extra`; it is emitted
  // verbatim as the scenario's "extra" field. `auditor` is the --audit
  // precision auditor (null when auditing is off): scenarios attach it
  // to their measured engine run, and the suite driver splices its
  // SummaryJson into the extra object afterwards. `diag` is the --diag
  // sampler-introspection aggregator with the same contract (null when
  // off; summary spliced by the driver), and `health` the --health
  // peer-health monitor (likewise; note it steers walk routing, so
  // --health runs legitimately do different work than plain runs).
  std::function<RunResult(const BenchArgs&, prof::Profiler*,
                          uint64_t* wall_ns, std::string* extra,
                          audit::PrecisionAuditor* auditor,
                          diag::SamplerDiag* diag,
                          PeerHealthMonitor* health)>
      run;
};

RunResult TimedExperiment(Workload& workload,
                          const ContinuousQuerySpec& spec,
                          const DigestEngineOptions& options, size_t ticks,
                          uint64_t seed, const char* label,
                          prof::Profiler* profiler, uint64_t* wall_ns) {
  const uint64_t t0 = profiler->ElapsedNs();
  RunResult run = UnwrapOrDie(
      RunEngineExperiment(workload, spec, options, ticks, seed, label),
      label);
  *wall_ns = profiler->ElapsedNs() - t0;
  return run;
}

ContinuousQuerySpec AvgSpec(const char* query, double delta, double eps,
                            double p) {
  return UnwrapOrDie(ContinuousQuerySpec::Create(
                         query, PrecisionSpec{delta, eps, p}),
                     "spec");
}

std::vector<Scenario> BuildScenarios() {
  std::vector<Scenario> scenarios;

  // PRED-3 scheduling over the exact central oracle: isolates the
  // extrapolator + scheduler cost (no walks at all).
  scenarios.push_back(
      {"pred_indep_exact",
       "PRED-3 + INDEP over the exact central oracle (TEMPERATURE): "
       "extrapolator/scheduler cost, no walks",
       [](const BenchArgs& args, prof::Profiler* profiler,
          uint64_t* wall_ns, std::string* /*extra*/,
          audit::PrecisionAuditor* auditor, diag::SamplerDiag* diag,
          PeerHealthMonitor* health) {
         TemperatureConfig config;
         config.num_units = args.Scaled(8000, 200);
         config.num_nodes = args.Scaled(530, 16);
         config.seed = args.seed;
         auto workload = UnwrapOrDie(TemperatureWorkload::Create(config),
                                     "workload");
         ContinuousQuerySpec spec =
             AvgSpec("SELECT AVG(temperature) FROM R", 4.0, 2.0, 0.95);
         DigestEngineOptions options;
         options.scheduler = SchedulerKind::kPred;
         options.estimator = EstimatorKind::kIndependent;
         options.sampler = SamplerKind::kExactCentral;
         options.extrapolator.history_points = 3;
         options.profiler = profiler;
         options.auditor = auditor;
         options.diag = diag;
         options.health = health;
         return TimedExperiment(*workload, spec, options,
                                args.quick ? 120 : 400, args.seed,
                                "pred_indep_exact", profiler, wall_ns);
       }});

  // The full distributed pipeline the paper is about: PRED-3 + RPT over
  // the two-stage MCMC sampler. Walk-heavy; the headline scenario.
  scenarios.push_back(
      {"pred_rpt_mcmc",
       "PRED-3 + RPT over the two-stage MCMC sampler (TEMPERATURE): the "
       "full distributed query path",
       [](const BenchArgs& args, prof::Profiler* profiler,
          uint64_t* wall_ns, std::string* /*extra*/,
          audit::PrecisionAuditor* auditor, diag::SamplerDiag* diag,
          PeerHealthMonitor* health) {
         TemperatureConfig config;
         config.num_units = args.Scaled(2000, 200);
         config.num_nodes = args.Scaled(530, 16);
         config.seed = args.seed;
         auto workload = UnwrapOrDie(TemperatureWorkload::Create(config),
                                     "workload");
         ContinuousQuerySpec spec =
             AvgSpec("SELECT AVG(temperature) FROM R", 4.0, 2.0, 0.95);
         DigestEngineOptions options;
         options.scheduler = SchedulerKind::kPred;
         options.estimator = EstimatorKind::kRepeated;
         options.sampler = SamplerKind::kTwoStageMcmc;
         options.extrapolator.history_points = 3;
         options.profiler = profiler;
         options.auditor = auditor;
         options.diag = diag;
         options.health = health;
         return TimedExperiment(*workload, spec, options,
                                args.quick ? 40 : 120, args.seed,
                                "pred_rpt_mcmc", profiler, wall_ns);
       }});

  // ALL scheduling: every tick samples, the densest walk workload per
  // simulated tick.
  scenarios.push_back(
      {"all_indep_mcmc",
       "ALL + INDEP over the two-stage MCMC sampler (TEMPERATURE): a "
       "snapshot query every tick",
       [](const BenchArgs& args, prof::Profiler* profiler,
          uint64_t* wall_ns, std::string* /*extra*/,
          audit::PrecisionAuditor* auditor, diag::SamplerDiag* diag,
          PeerHealthMonitor* health) {
         TemperatureConfig config;
         config.num_units = args.Scaled(2000, 200);
         config.num_nodes = args.Scaled(530, 16);
         config.seed = args.seed;
         auto workload = UnwrapOrDie(TemperatureWorkload::Create(config),
                                     "workload");
         ContinuousQuerySpec spec =
             AvgSpec("SELECT AVG(temperature) FROM R", 4.0, 2.0, 0.95);
         DigestEngineOptions options;
         options.scheduler = SchedulerKind::kAll;
         options.estimator = EstimatorKind::kIndependent;
         options.sampler = SamplerKind::kTwoStageMcmc;
         options.profiler = profiler;
         options.auditor = auditor;
         options.diag = diag;
         options.health = health;
         return TimedExperiment(*workload, spec, options,
                                args.quick ? 25 : 80, args.seed,
                                "all_indep_mcmc", profiler, wall_ns);
       }});

  // Churning membership (MEMORY workload): stresses warm-agent reuse
  // and the estimator's retained-pool bookkeeping.
  scenarios.push_back(
      {"churn_rpt_mcmc",
       "PRED-3 + RPT over MCMC on the churning MEMORY workload",
       [](const BenchArgs& args, prof::Profiler* profiler,
          uint64_t* wall_ns, std::string* /*extra*/,
          audit::PrecisionAuditor* auditor, diag::SamplerDiag* diag,
          PeerHealthMonitor* health) {
         MemoryConfig config;
         config.num_units = args.Scaled(1000, 200);
         config.num_nodes = args.Scaled(820, 150);
         config.seed = args.seed + 17;
         auto workload =
             UnwrapOrDie(MemoryWorkload::Create(config), "workload");
         ContinuousQuerySpec spec =
             AvgSpec("SELECT AVG(memory) FROM R", 1.0, 2.0, 0.9);
         DigestEngineOptions options;
         options.scheduler = SchedulerKind::kPred;
         options.estimator = EstimatorKind::kRepeated;
         options.sampler = SamplerKind::kTwoStageMcmc;
         options.extrapolator.history_points = 3;
         options.profiler = profiler;
         options.auditor = auditor;
         options.diag = diag;
         options.health = health;
         return TimedExperiment(*workload, spec, options,
                                args.quick ? 30 : 90, args.seed,
                                "churn_rpt_mcmc", profiler, wall_ns);
       }});

  // Fault injection: retry/backoff, agent restarts, degraded fallback —
  // the robustness machinery's own cost, including fault-plan draws.
  scenarios.push_back(
      {"faults_mcmc",
       "ALL + RPT over MCMC under injected faults (5% loss, 2% drop, "
       "stalls): retry + degradation overhead",
       [](const BenchArgs& args, prof::Profiler* profiler,
          uint64_t* wall_ns, std::string* /*extra*/,
          audit::PrecisionAuditor* auditor, diag::SamplerDiag* diag,
          PeerHealthMonitor* health) {
         MemoryConfig config;
         config.num_units = args.Scaled(1000, 200);
         config.num_nodes = args.Scaled(820, 150);
         config.seed = args.seed + 17;
         auto workload =
             UnwrapOrDie(MemoryWorkload::Create(config), "workload");
         ContinuousQuerySpec spec =
             AvgSpec("SELECT AVG(memory) FROM R", 1.0, 2.0, 0.9);
         FaultPlanConfig faults;
         faults.message_loss = 0.05;
         faults.agent_drop = 0.05;
         faults.edge_spread = 0.5;
         faults.stall_fraction = 0.1;
         CheckOk(faults.Validate(), "fault config");
         FaultPlan plan(faults, args.seed + 1);
         DigestEngineOptions options;
         options.scheduler = SchedulerKind::kAll;
         options.estimator = EstimatorKind::kRepeated;
         options.fault_plan = &plan;
         options.sampling_options.walk_length = 60;
         options.sampling_options.reset_length = 15;
         options.profiler = profiler;
         options.auditor = auditor;
         options.diag = diag;
         options.health = health;
         return TimedExperiment(*workload, spec, options,
                                args.quick ? 20 : 60, args.seed,
                                "faults_mcmc", profiler, wall_ns);
       }});

  // Recovery path: ALL + RPT over MCMC under stall-heavy faults with a
  // checkpoint/kill/restore in the middle of the run. The hedged run is
  // the one measured and gated; an unhedged uninterrupted control run
  // feeds the "extra" object so the per-snapshot p90 message cost of
  // hedging-on vs hedging-off is part of the committed trajectory.
  scenarios.push_back(
      {"recovery_rpt_mcmc",
       "ALL + RPT over MCMC under stall-heavy faults with a mid-run "
       "kill/checkpoint/restore; extra compares hedged vs unhedged p90 "
       "per-snapshot message cost",
       [](const BenchArgs& args, prof::Profiler* profiler,
          uint64_t* wall_ns, std::string* extra,
          audit::PrecisionAuditor* auditor, diag::SamplerDiag* diag,
          PeerHealthMonitor* health) {
         const size_t ticks = args.quick ? 24 : 72;
         // Heterogeneous loss (edge_spread 1.0 puts concrete edges
         // anywhere from lossless to 2× the base rate) is what gives
         // hedging its edge: a walk stuck retrying in a lossy
         // neighborhood keeps burning messages there, while the
         // redundant walk forks from a donor agent somewhere cheaper.
         FaultPlanConfig faults;
         faults.message_loss = 0.15;
         faults.agent_drop = 0.02;
         faults.edge_spread = 1.0;
         faults.stall_fraction = 0.2;
         faults.stall_every = 6;
         faults.stall_length = 3;
         CheckOk(faults.Validate(), "fault config");

         struct PhaseOut {
           RunResult run;
           std::vector<double> snapshot_msgs;  // Meter delta per occasion.
         };
         // The auditor and diagnostics ride only the measured (hedged,
         // killed) run, so the ledger round-trips through the mid-run
         // checkpoint blob and the diag summary covers one run's walks.
         auto drive = [&](bool hedge, bool kill_mid_run,
                          audit::PrecisionAuditor* aud,
                          diag::SamplerDiag* dg, PeerHealthMonitor* hm,
                          uint64_t* ns) -> PhaseOut {
           TemperatureConfig config;
           config.num_units = args.Scaled(2000, 200);
           config.num_nodes = args.Scaled(530, 16);
           config.seed = args.seed;
           auto workload = UnwrapOrDie(TemperatureWorkload::Create(config),
                                       "workload");
           ContinuousQuerySpec spec =
               AvgSpec("SELECT AVG(temperature) FROM R", 4.0, 2.0, 0.95);
           FaultPlan plan(faults, args.seed + 1);
           DigestEngineOptions options;
           options.scheduler = SchedulerKind::kAll;
           options.estimator = EstimatorKind::kRepeated;
           options.sampler = SamplerKind::kTwoStageMcmc;
           options.sampling_options.walk_length = 60;
           options.sampling_options.reset_length = 15;
           options.sampling_options.hedge.enabled = hedge;
           options.estimator_options.allow_partial = true;
           options.fault_plan = &plan;
           options.profiler = profiler;
           options.auditor = aud;
           options.diag = dg;
           options.health = hm;
           if (aud != nullptr) aud->BeginRun("recovery_rpt_mcmc");
           if (dg != nullptr) dg->Reset();
           if (hm != nullptr) hm->Reset();

           PhaseOut out;
           Rng rng(args.seed);
           const NodeId querying = UnwrapOrDie(
               workload->graph().RandomLiveNode(rng), "origin");
           workload->ProtectNode(querying);
           const uint64_t t0 = profiler->ElapsedNs();
           auto engine = UnwrapOrDie(
               DigestEngine::Create(&workload->graph(), &workload->db(),
                                    spec, querying, rng.Fork(),
                                    &out.run.meter, options),
               "engine");
           uint64_t prev_total = 0;
           for (size_t t = 0; t < ticks; ++t) {
             CheckOk(workload->Advance(), "advance");
             plan.set_now(workload->now());
             const double truth = UnwrapOrDie(
                 workload->db().ExactAggregate(spec.query), "oracle");
             EngineTickResult tick =
                 UnwrapOrDie(engine->Tick(workload->now()), "tick");
             out.run.reported.push_back(tick.reported_value);
             out.run.truth.push_back(truth);
             out.run.ci_halfwidths.push_back(tick.ci_halfwidth);
             if (tick.degraded) ++out.run.degraded_ticks;
             if (aud != nullptr) aud->RecordTruth(workload->now(), truth);
             const uint64_t total = out.run.meter.Total();
             if (tick.snapshot_executed) {
               out.snapshot_msgs.push_back(
                   static_cast<double>(total - prev_total));
             }
             prev_total = total;
             if (kill_mid_run && t + 1 == ticks / 2) {
               // The session dies and a fresh process recovers it; the
               // fault plan and overlay live on (they are the network).
               const std::string blob =
                   UnwrapOrDie(engine->Checkpoint(), "checkpoint");
               engine.reset();
               out.run.meter.Reset();
               Rng fresh(args.seed);
               const NodeId requery = UnwrapOrDie(
                   workload->graph().RandomLiveNode(fresh), "origin");
               engine = UnwrapOrDie(
                   DigestEngine::Create(&workload->graph(),
                                        &workload->db(), spec, requery,
                                        fresh.Fork(), &out.run.meter,
                                        options),
                   "engine");
               CheckOk(engine->Restore(blob), "restore");
               prev_total = out.run.meter.Total();
             }
           }
           out.run.stats = engine->stats();
           out.run.correlation_estimate = engine->correlation_estimate();
           out.run.final_health = engine->health();
           if (aud != nullptr) aud->FinalizeRun();
           *ns += profiler->ElapsedNs() - t0;
           out.run.precision = UnwrapOrDie(
               EvaluatePrecision(out.run.reported, out.run.truth,
                                 spec.precision),
               "precision");
           out.run.widened_precision = UnwrapOrDie(
               EvaluatePrecisionWidened(out.run.reported, out.run.truth,
                                        out.run.ci_halfwidths,
                                        spec.precision),
               "widened precision");
           return out;
         };

         uint64_t ns = 0;
         PhaseOut hedged = drive(/*hedge=*/true, /*kill_mid_run=*/true,
                                 auditor, diag, health, &ns);
         PhaseOut unhedged = drive(/*hedge=*/false, /*kill_mid_run=*/false,
                                   /*aud=*/nullptr, /*dg=*/nullptr,
                                   /*hm=*/nullptr, &ns);
         *wall_ns = ns;
         std::string x = "{\"p90_snapshot_msgs_hedged\":";
         x += FmtRate(Percentile(hedged.snapshot_msgs, 90));
         x += ",\"p90_snapshot_msgs_unhedged\":";
         x += FmtRate(Percentile(unhedged.snapshot_msgs, 90));
         x += ",\"hedge_launches\":";
         x += std::to_string(hedged.run.meter.hedge_launches());
         x += ",\"hedged_duplicates\":";
         x += std::to_string(hedged.run.meter.hedged_duplicates());
         x += ",\"partial_snapshots\":";
         x += std::to_string(hedged.run.stats.partial_snapshots);
         x += ",\"final_health\":\"";
         x += SessionHealthName(hedged.run.final_health);
         x += "\"}";
         *extra = std::move(x);
         return hedged.run;
       }});

  // Partition recovery: seeded partition/heal episodes split the overlay
  // into components while the engine keeps answering. The measured run
  // routes around the quarantine set its breakers build (peer-health
  // steering is always on here — it is the thing being measured); the
  // extra also carries a breakers-off ablated control, so the committed
  // trajectory records what the steering buys: un-widened (eps+delta)
  // per-tick coverage of both runs against the binomial floor.
  scenarios.push_back(
      {"partition_rpt_mcmc",
       "ALL + RPT over MCMC through seeded partition/heal episodes: "
       "quarantine-aware routing (measured) vs a breakers-off ablation; "
       "extra compares both coverages against the binomial floor",
       [](const BenchArgs& args, prof::Profiler* profiler,
          uint64_t* wall_ns, std::string* extra,
          audit::PrecisionAuditor* auditor, diag::SamplerDiag* diag,
          PeerHealthMonitor* health) {
         const size_t ticks = args.quick ? 24 : 72;
         FaultPlanConfig faults;
         faults.message_loss = 0.02;
         faults.edge_spread = 0.5;
         faults.loss_asymmetry = 0.5;
         faults.partition_every = 12;
         faults.partition_length = 6;
         faults.partition_components = 2;
         CheckOk(faults.Validate(), "fault config");

         auto drive = [&](PeerHealthMonitor* monitor,
                          audit::PrecisionAuditor* aud,
                          diag::SamplerDiag* dg,
                          uint64_t* ns) -> RunResult {
           TemperatureConfig config;
           config.num_units = args.Scaled(2000, 200);
           config.num_nodes = args.Scaled(530, 16);
           config.seed = args.seed;
           auto workload = UnwrapOrDie(TemperatureWorkload::Create(config),
                                       "workload");
           ContinuousQuerySpec spec =
               AvgSpec("SELECT AVG(temperature) FROM R", 4.0, 2.0, 0.95);
           FaultPlan plan(faults, args.seed + 1);
           DigestEngineOptions options;
           options.scheduler = SchedulerKind::kAll;
           options.estimator = EstimatorKind::kRepeated;
           options.sampler = SamplerKind::kTwoStageMcmc;
           options.sampling_options.walk_length = 60;
           options.sampling_options.reset_length = 15;
           options.estimator_options.allow_partial = true;
           options.fault_plan = &plan;
           options.profiler = profiler;
           options.auditor = aud;
           options.diag = dg;
           options.health = monitor;
           const uint64_t t0 = profiler->ElapsedNs();
           RunResult run = UnwrapOrDie(
               RunEngineExperiment(*workload, spec, options, ticks,
                                   args.seed, "partition_rpt_mcmc"),
               "partition_rpt_mcmc");
           *ns += profiler->ElapsedNs() - t0;
           return run;
         };

         uint64_t ns = 0;
         // Measured run: quarantine-aware. Rides the suite monitor when
         // --health is on (so the driver's spliced summary reflects this
         // run), else a scenario-local one — steering is on either way.
         PeerHealthMonitor local_monitor;
         PeerHealthMonitor* aware =
             health != nullptr ? health : &local_monitor;
         RunResult steered = drive(aware, auditor, diag, &ns);
         const uint64_t opens = aware->opens();
         const uint64_t reopens = aware->reopens();
         const double flap = aware->FlapRate();
         // Ablated control: same faults and monitor, but breakers never
         // open — walks keep proposing into the partition.
         PeerHealthConfig ablated_config;
         ablated_config.breakers_enabled = false;
         PeerHealthMonitor ablated_monitor(ablated_config);
         RunResult ablated = drive(&ablated_monitor, nullptr, nullptr, &ns);
         *wall_ns = ns;

         const double p = 0.95;
         const double floor =
             p - 2.0 * std::sqrt(p * (1.0 - p) /
                                 static_cast<double>(ticks));
         const double cov_aware =
             steered.precision.within_tolerance_fraction;
         const double cov_ablated =
             ablated.precision.within_tolerance_fraction;
         std::string x = "{\"coverage_aware\":";
         x += FmtRate(cov_aware);
         x += ",\"coverage_ablated\":";
         x += FmtRate(cov_ablated);
         x += ",\"coverage_floor\":";
         x += FmtRate(floor);
         x += ",\"aware_above_floor\":";
         x += cov_aware >= floor ? "true" : "false";
         x += ",\"ablated_breached\":";
         x += cov_ablated < floor ? "true" : "false";
         x += ",\"breaker_opens\":";
         x += std::to_string(opens);
         x += ",\"breaker_reopens\":";
         x += std::to_string(reopens);
         x += ",\"flap_rate\":";
         x += FmtRate(flap);
         x += ",\"degraded_ticks_aware\":";
         x += std::to_string(steered.degraded_ticks);
         x += ",\"degraded_ticks_ablated\":";
         x += std::to_string(ablated.degraded_ticks);
         x += "}";
         *extra = std::move(x);
         return steered;
       }});

  // Deterministic parallel walk execution: the full distributed
  // pipeline with the sampling tier fanned out over a worker pool. Each
  // repeat drives the identical session at 1/2/4/8 threads (verifying
  // the reported series stay bit-identical across thread counts — this
  // is a regression gate, not just a timer) and the measured wall time
  // is the 4-thread run. The extra object carries the thread/wall-ms
  // speedup curve; it is computed once on the first repeat and reused
  // verbatim so the repeat-stability check sees one deterministic
  // string (wall clocks differ between repeats, the work never does).
  // host_cores records the machine the curve was taken on: speedup is
  // bounded by physical cores, so a 1-core container honestly reports
  // ~1x at every thread count.
  scenarios.push_back(
      {"parallel_rpt_mcmc",
       "PRED-3 + RPT over MCMC with the parallel walk executor: "
       "bit-identical across 1/2/4/8 threads; extra holds the speedup "
       "curve (4-thread run is the one measured)",
       [cached_extra = std::make_shared<std::string>()](
           const BenchArgs& args, prof::Profiler* profiler,
           uint64_t* wall_ns, std::string* extra,
           audit::PrecisionAuditor* auditor, diag::SamplerDiag* diag,
          PeerHealthMonitor* health) {
         const size_t kThreadCounts[] = {1, 2, 4, 8};
         std::vector<double> curve_ms;
         RunResult measured;
         std::vector<double> reference_reported;
         std::string reference_audit;
         std::string reference_diag;
         std::string reference_health;
         for (size_t threads : kThreadCounts) {
           TemperatureConfig config;
           config.num_units = args.Scaled(2000, 200);
           config.num_nodes = args.Scaled(530, 16);
           config.seed = args.seed;
           auto workload = UnwrapOrDie(TemperatureWorkload::Create(config),
                                       "workload");
           ContinuousQuerySpec spec =
               AvgSpec("SELECT AVG(temperature) FROM R", 4.0, 2.0, 0.95);
           DigestEngineOptions options;
           options.scheduler = SchedulerKind::kPred;
           options.estimator = EstimatorKind::kRepeated;
           options.sampler = SamplerKind::kTwoStageMcmc;
           options.extrapolator.history_points = 3;
           options.num_threads = threads;
           options.profiler = profiler;
           options.auditor = auditor;
           options.diag = diag;
           options.health = health;
           uint64_t ns = 0;
           RunResult run = TimedExperiment(*workload, spec, options,
                                           args.quick ? 40 : 120, args.seed,
                                           "parallel_rpt_mcmc", profiler,
                                           &ns);
           curve_ms.push_back(static_cast<double>(ns) / 1e6);
           if (threads == kThreadCounts[0]) {
             reference_reported = run.reported;
           } else if (run.reported != reference_reported) {
             std::fprintf(stderr,
                          "FATAL: parallel_rpt_mcmc reported different "
                          "estimates at %zu threads than at 1 — the "
                          "parallel executor is not deterministic\n",
                          threads);
             std::abort();
           }
           if (auditor != nullptr) {
             // The audit ledger must be thread-count-invariant too: the
             // full summary (coverage, attribution, detector breaches)
             // is a deterministic fold over the reported series.
             const std::string audit_json = auditor->SummaryJson();
             if (threads == kThreadCounts[0]) {
               reference_audit = audit_json;
             } else if (audit_json != reference_audit) {
               std::fprintf(stderr,
                            "FATAL: parallel_rpt_mcmc audit summary "
                            "differs at %zu threads vs 1 — the audit "
                            "ledger is not thread-count-invariant\n",
                            threads);
               std::abort();
             }
           }
           if (diag != nullptr) {
             // Same invariance gate for the sampler diagnostics: every
             // visit/probe/hop fold happens in walk-index order, so the
             // full summary must be byte-identical at any thread count.
             const std::string diag_json = diag->SummaryJson();
             if (threads == kThreadCounts[0]) {
               reference_diag = diag_json;
             } else if (diag_json != reference_diag) {
               std::fprintf(stderr,
                            "FATAL: parallel_rpt_mcmc diag summary "
                            "differs at %zu threads vs 1 — the sampler "
                            "diagnostics are not thread-count-"
                            "invariant\n",
                            threads);
               std::abort();
             }
           }
           if (health != nullptr) {
             // And for the peer-health monitor: outcome folds happen in
             // walk-index order on the main thread, so breaker and
             // quarantine state must be byte-identical at any thread
             // count.
             const std::string health_json = health->SummaryJson();
             if (threads == kThreadCounts[0]) {
               reference_health = health_json;
             } else if (health_json != reference_health) {
               std::fprintf(stderr,
                            "FATAL: parallel_rpt_mcmc health summary "
                            "differs at %zu threads vs 1 — the peer-"
                            "health fold is not thread-count-"
                            "invariant\n",
                            threads);
               std::abort();
             }
           }
           if (threads == 4) {
             measured = std::move(run);
             *wall_ns = ns;
           }
         }
         if (cached_extra->empty()) {
           std::string x = "{\"threads\":[1,2,4,8],\"wall_ms\":[";
           for (size_t i = 0; i < curve_ms.size(); ++i) {
             if (i > 0) x.push_back(',');
             x += FmtMs(curve_ms[i]);
           }
           x += "],\"speedup\":[";
           for (size_t i = 0; i < curve_ms.size(); ++i) {
             if (i > 0) x.push_back(',');
             x += FmtRate(curve_ms[i] > 0 ? curve_ms[0] / curve_ms[i] : 0);
           }
           x += "],\"speedup_at_4\":";
           x += FmtRate(curve_ms[2] > 0 ? curve_ms[0] / curve_ms[2] : 0);
           x += ",\"host_cores\":";
           x += std::to_string(std::thread::hardware_concurrency());
           x += ",\"bit_identical_across_counts\":true}";
           *cached_extra = std::move(x);
         }
         *extra = *cached_extra;
         return measured;
       }});

  // --- multiquery_rpt_mcmc -------------------------------------------
  // The per-node multi-tenant runtime: 1/2/4/8 concurrent AVG queries
  // on one DigestNode, swept in both node modes — coalesced snapshot
  // scheduling vs the warm-pool-only ablation. The measured run (work
  // counts, wall clock, --audit/--diag/--health attachments) is the
  // 8-query coalesced one; every other run exists to chart the
  // marginal message cost of an added query in each mode. The extra
  // object commits both curves plus ratio_q8 (coalesced 4->8 marginal
  // over the ablation's — the sharing headline bench_compare.py gates
  // at <= 0.6) and coverage_ok_all (per-query auditors over the
  // measured run: every tenant's (ε, p) floor must hold under the
  // shared sample pool). All fields are deterministic counts, so the
  // extra participates in the repeat-stability check directly.
  scenarios.push_back(
      {"multiquery_rpt_mcmc",
       "1/2/4/8 concurrent AVG queries on one DigestNode (RPT over "
       "MCMC), coalesced vs warm-pool-only; extra holds both marginal-"
       "message curves, ratio_q8, and the per-query coverage verdict "
       "(8-query coalesced run is the one measured)",
       [](const BenchArgs& args, prof::Profiler* profiler,
          uint64_t* wall_ns, std::string* extra,
          audit::PrecisionAuditor* auditor, diag::SamplerDiag* diag,
          PeerHealthMonitor* health) {
         const size_t kQueryCounts[] = {1, 2, 4, 8};
         const size_t ticks = args.quick ? 16 : 40;
         struct NodeRunOut {
           uint64_t messages = 0;
           uint64_t coalesced_ticks = 0;
           bool coverage_ok_all = true;
           EngineStats stats;     // Summed across the node's tenants.
           MessageMeter meter;
           size_t degraded = 0;
         };
         auto drive = [&](bool coalesce, size_t q, bool measured,
                          uint64_t* ns) {
           NodeRunOut out;
           TemperatureConfig config;
           config.num_units = args.Scaled(2000, 300);
           config.num_nodes = args.Scaled(132, 36);
           config.seed = args.seed;
           auto workload = UnwrapOrDie(
               TemperatureWorkload::Create(config), "workload");
           DigestEngineOptions options;
           options.scheduler = SchedulerKind::kAll;
           options.estimator = EstimatorKind::kRepeated;
           options.sampler = SamplerKind::kTwoStageMcmc;
           options.sampling_options.walk_length = 500;  // Mesh mixing.
           options.sampling_options.reset_length = 72;
           if (measured) {
             options.profiler = profiler;
             options.diag = diag;
             options.health = health;
             if (diag != nullptr) diag->Reset();
             if (health != nullptr) health->Reset();
           }
           DigestNodeOptions node_options;
           node_options.coalesce_snapshots = coalesce;
           Rng rng(args.seed);
           const NodeId self = UnwrapOrDie(
               workload->graph().RandomLiveNode(rng), "node");
           MessageMeter meter;
           const uint64_t t0 = profiler->ElapsedNs();
           auto node = UnwrapOrDie(
               DigestNode::Create(&workload->graph(), &workload->db(),
                                  self, rng.Fork(), &meter, options,
                                  node_options),
               "DigestNode");
           // Per-query auditors for the measured run: the suite's
           // --audit auditor takes the tightest-ε tenant (one auditor
           // pins one contract, and its summary is what the driver
           // splices into the extra), scenario-local ones the rest.
           std::vector<std::unique_ptr<audit::PrecisionAuditor>> local;
           std::vector<audit::PrecisionAuditor*> query_auditors;
           const ContinuousQuerySpec oracle_spec =
               AvgSpec("SELECT AVG(temperature) FROM R", 8.0, 0.5, 0.95);
           std::vector<QueryId> ids;
           for (size_t i = 0; i < q; ++i) {
             const double eps =
                 0.5 + 1.5 * static_cast<double>(i) /
                           static_cast<double>(std::max<size_t>(q - 1, 1));
             ContinuousQuerySpec spec =
                 AvgSpec("SELECT AVG(temperature) FROM R", 8.0, eps, 0.95);
             DigestEngineOptions per_query = options;
             if (measured) {
               audit::PrecisionAuditor* qa;
               if (i == 0 && auditor != nullptr) {
                 qa = auditor;
               } else {
                 local.push_back(
                     std::make_unique<audit::PrecisionAuditor>());
                 qa = local.back().get();
               }
               qa->BeginRun("multiquery q" + std::to_string(i + 1));
               per_query.auditor = qa;
               query_auditors.push_back(qa);
             }
             ids.push_back(
                 UnwrapOrDie(node->IssueQuery(spec, per_query),
                             "IssueQuery"));
           }
           for (size_t t = 1; t <= ticks; ++t) {
             CheckOk(workload->Advance(), "Advance");
             CheckOk(node->Tick(static_cast<int64_t>(t)).status(),
                     "Tick");
             if (!query_auditors.empty()) {
               const double oracle = UnwrapOrDie(
                   workload->db().ExactAggregate(oracle_spec.query),
                   "oracle");
               for (audit::PrecisionAuditor* qa : query_auditors) {
                 qa->RecordTruth(static_cast<int64_t>(t), oracle);
               }
             }
           }
           *ns = profiler->ElapsedNs() - t0;
           for (audit::PrecisionAuditor* qa : query_auditors) {
             qa->FinalizeRun();
             out.coverage_ok_all =
                 out.coverage_ok_all && qa->Summarize().coverage_ok;
           }
           out.messages = meter.Total();
           out.coalesced_ticks = node->coalesced_ticks();
           for (QueryId id : ids) {
             const EngineStats& s =
                 UnwrapOrDie(node->engine(id), "engine")->stats();
             out.stats.ticks += s.ticks;
             out.stats.snapshots += s.snapshots;
             out.stats.result_updates += s.result_updates;
             out.stats.total_samples += s.total_samples;
             out.stats.fresh_samples += s.fresh_samples;
             out.stats.retained_samples += s.retained_samples;
             out.stats.degraded_ticks += s.degraded_ticks;
             out.stats.partial_snapshots += s.partial_snapshots;
             out.degraded += s.degraded_ticks;
           }
           out.meter = meter;
           return out;
         };
         std::vector<uint64_t> msgs_coalesced, msgs_warm;
         NodeRunOut measured_out;
         for (int mode = 0; mode < 2; ++mode) {
           const bool coalesce = mode == 0;
           for (size_t q : kQueryCounts) {
             const bool measured = coalesce && q == 8;
             uint64_t ns = 0;
             NodeRunOut out = drive(coalesce, q, measured, &ns);
             (coalesce ? msgs_coalesced : msgs_warm).push_back(
                 out.messages);
             if (measured) {
               measured_out = std::move(out);
               *wall_ns = ns;
             }
           }
         }
         auto marginals = [&](const std::vector<uint64_t>& msgs) {
           std::vector<double> m;
           for (size_t k = 1; k < msgs.size(); ++k) {
             m.push_back(static_cast<double>(msgs[k] - msgs[k - 1]) /
                         static_cast<double>(kQueryCounts[k] -
                                             kQueryCounts[k - 1]));
           }
           return m;
         };
         const std::vector<double> marg_c = marginals(msgs_coalesced);
         const std::vector<double> marg_w = marginals(msgs_warm);
         const double ratio_q8 =
             marg_w.back() > 0 ? marg_c.back() / marg_w.back() : 0;
         auto append_u64s = [](std::string* x,
                               const std::vector<uint64_t>& v) {
           for (size_t i = 0; i < v.size(); ++i) {
             if (i > 0) x->push_back(',');
             *x += std::to_string(v[i]);
           }
         };
         auto append_rates = [](std::string* x,
                                const std::vector<double>& v) {
           for (size_t i = 0; i < v.size(); ++i) {
             if (i > 0) x->push_back(',');
             *x += FmtRate(v[i]);
           }
         };
         std::string x = "{\"queries\":[1,2,4,8],\"messages_coalesced\":[";
         append_u64s(&x, msgs_coalesced);
         x += "],\"messages_warm_pool\":[";
         append_u64s(&x, msgs_warm);
         x += "],\"marginal_coalesced\":[";
         append_rates(&x, marg_c);
         x += "],\"marginal_warm_pool\":[";
         append_rates(&x, marg_w);
         x += "],\"ratio_q8\":";
         x += FmtRate(ratio_q8);
         x += ",\"coalesced_ticks_q8\":";
         x += std::to_string(measured_out.coalesced_ticks);
         x += ",\"coverage_ok_all\":";
         x += measured_out.coverage_ok_all ? "true" : "false";
         x += "}";
         *extra = std::move(x);
         RunResult run;
         run.stats = measured_out.stats;
         run.meter = measured_out.meter;
         run.degraded_ticks = measured_out.degraded;
         return run;
       }});

  return scenarios;
}

// ---------------------------------------------------------------------
// JSON rendering. Layout is pinned by tools/bench_compare.py and
// documented in results/README.md; bump the schema string on change.

constexpr const char* kScenarioSchema = "digest-bench-v1";
constexpr const char* kSuiteSchema = "digest-bench-suite-v1";

struct ScenarioReport {
  std::string name;
  std::string description;
  WorkCounts counts;
  std::vector<double> wall_ms;  // One per measured repeat.
  std::string prof_json;        // Aggregated Profiler::ToJson().
  std::string extra_json;       // Scenario-deposited object; may be empty.
};

std::string RenderScenarioJson(const ScenarioReport& r,
                               const BenchArgs& args, size_t warmup) {
  std::string out = "{\"schema\":\"";
  out += kScenarioSchema;
  out += "\",\"scenario\":\"";
  out += r.name;
  out += "\",\"description\":\"";
  AppendJsonEscaped(&out, r.description);
  out += "\",\"config\":{\"scale\":";
  out += FmtRate(args.scale);
  out += ",\"seed\":";
  out += std::to_string(args.seed);
  out += ",\"quick\":";
  out += args.quick ? "true" : "false";
  out += ",\"warmup\":";
  out += std::to_string(warmup);
  out += ",\"repeats\":";
  out += std::to_string(r.wall_ms.size());
  out += "},\"counts\":{\"ticks\":";
  out += std::to_string(r.counts.ticks);
  out += ",\"snapshots\":";
  out += std::to_string(r.counts.snapshots);
  out += ",\"total_samples\":";
  out += std::to_string(r.counts.total_samples);
  out += ",\"messages\":";
  out += std::to_string(r.counts.messages);
  out += ",\"degraded_ticks\":";
  out += std::to_string(r.counts.degraded_ticks);
  out += ",\"walk_batches\":";
  out += std::to_string(r.counts.walk_batches);
  out += ",\"walk_hops\":";
  out += std::to_string(r.counts.walk_hops);
  out += "},\"wall_ms\":{\"median\":";
  const double median = Median(r.wall_ms);
  out += FmtMs(median);
  out += ",\"mad\":";
  out += FmtMs(Mad(r.wall_ms));
  out += ",\"p10\":";
  out += FmtMs(Percentile(r.wall_ms, 10));
  out += ",\"p90\":";
  out += FmtMs(Percentile(r.wall_ms, 90));
  out += ",\"min\":";
  out += FmtMs(*std::min_element(r.wall_ms.begin(), r.wall_ms.end()));
  out += ",\"max\":";
  out += FmtMs(*std::max_element(r.wall_ms.begin(), r.wall_ms.end()));
  out += ",\"repeats\":[";
  for (size_t i = 0; i < r.wall_ms.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += FmtMs(r.wall_ms[i]);
  }
  out += "]},\"throughput\":{";
  const double secs = median / 1e3;
  out += "\"ticks_per_sec\":";
  out += FmtRate(secs > 0 ? static_cast<double>(r.counts.ticks) / secs : 0);
  out += ",\"samples_per_sec\":";
  out += FmtRate(
      secs > 0 ? static_cast<double>(r.counts.total_samples) / secs : 0);
  out += ",\"walks_per_sec\":";
  out += FmtRate(
      secs > 0 ? static_cast<double>(r.counts.walk_batches) / secs : 0);
  out += ",\"hops_per_sec\":";
  out += FmtRate(
      secs > 0 ? static_cast<double>(r.counts.walk_hops) / secs : 0);
  out += "},\"prof\":";
  out += r.prof_json;
  if (!r.extra_json.empty()) {
    out += ",\"extra\":";
    out += r.extra_json;
  }
  out.push_back('}');
  return out;
}

// ---------------------------------------------------------------------

int Run(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(
      argc, argv,
      {{"--repeats=", "measured repeats per scenario (default 5; 3 with "
                      "--quick)"},
       {"--warmup=", "unmeasured warmup runs per scenario (default 1)"},
       {"--out-dir=", "directory for BENCH_*.json (default .)"},
       {"--scenario=", "run only the named scenario (repeatable)"}});
  // The suite owns its profiler (one per scenario) and its repeat
  // structure; the per-bench export flags don't compose with that.
  // --audit and --diag DO compose: both are deterministic per run, so
  // their summaries join each scenario's extra object and the
  // repeat-stability check. One consistent rejection message for the
  // rest (RejectFlag).
  const char* why =
      "the suite always profiles internally; use the individual bench "
      "binaries for trace exports";
  if (args.prof) RejectFlag(argv[0], "--prof", why);
  if (!args.trace_path.empty()) RejectFlag(argv[0], "--trace", why);
  if (!args.trace_jsonl_path.empty()) {
    RejectFlag(argv[0], "--trace-jsonl", why);
  }
  if (!args.metrics_path.empty()) RejectFlag(argv[0], "--metrics", why);
  size_t repeats = args.quick ? 3 : 5;
  size_t warmup = 1;
  std::string out_dir = ".";
  std::vector<std::string> only;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--repeats=", 10) == 0) {
      repeats = static_cast<size_t>(std::strtoull(argv[i] + 10, nullptr, 10));
    } else if (std::strncmp(argv[i], "--warmup=", 9) == 0) {
      warmup = static_cast<size_t>(std::strtoull(argv[i] + 9, nullptr, 10));
    } else if (std::strncmp(argv[i], "--out-dir=", 10) == 0) {
      out_dir = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--scenario=", 11) == 0) {
      only.push_back(argv[i] + 11);
    }
  }
  if (repeats < 1) repeats = 1;

  std::vector<Scenario> scenarios = BuildScenarios();
  if (!only.empty()) {
    std::vector<Scenario> filtered;
    for (const Scenario& s : scenarios) {
      if (std::find(only.begin(), only.end(), s.name) != only.end()) {
        filtered.push_back(s);
      }
    }
    if (filtered.size() != only.size()) {
      std::fprintf(stderr, "bench_suite: unknown scenario in --scenario "
                           "(known:");
      for (const Scenario& s : scenarios) {
        std::fprintf(stderr, " %s", s.name);
      }
      std::fprintf(stderr, ")\n");
      return 2;
    }
    scenarios = std::move(filtered);
  }

  std::printf("=== bench_suite: %zu scenario(s), %zu warmup + %zu "
              "measured repeats, scale=%.2f seed=%llu ===\n\n",
              scenarios.size(), warmup, repeats, args.scale,
              static_cast<unsigned long long>(args.seed));

  // One auditor for the whole suite when --audit is on: each engine run
  // opens its own audit window (BeginRun resets the accumulators), so
  // the summary spliced into a scenario's extra reflects that
  // scenario's measured run alone.
  audit::PrecisionAuditor suite_auditor;
  audit::PrecisionAuditor* auditor = args.audit ? &suite_auditor : nullptr;
  // Same sharing scheme for --diag: every engine run resets the
  // aggregator (RunEngineExperiment / the recovery scenario's drive), so
  // the spliced summary describes the scenario's measured run alone.
  diag::SamplerDiag suite_diag;
  diag::SamplerDiag* diag = args.diag ? &suite_diag : nullptr;
  // And for --health: each engine run resets the monitor, so the
  // spliced breaker/quarantine summary covers the measured run alone.
  PeerHealthMonitor suite_health;
  PeerHealthMonitor* health = args.health ? &suite_health : nullptr;

  std::vector<ScenarioReport> reports;
  for (const Scenario& scenario : scenarios) {
    std::fprintf(stderr, "[bench_suite] %s ...\n", scenario.name);
    // One profiler per scenario, spans off (aggregates only): phase
    // totals accumulate over the measured repeats; warmups run against
    // a throwaway profiler so they never pollute the stats.
    prof::ProfilerOptions popt;
    popt.capture_spans = false;
    for (size_t w = 0; w < warmup; ++w) {
      prof::Profiler scratch(popt);
      uint64_t ignored = 0;
      std::string scratch_extra;
      scenario.run(args, &scratch, &ignored, &scratch_extra, auditor, diag,
                   health);
    }
    prof::Profiler profiler(popt);
    ScenarioReport report;
    report.name = scenario.name;
    report.description = scenario.description;
    for (size_t rep = 0; rep < repeats; ++rep) {
      const uint64_t batches0 =
          profiler.stats(prof::Phase::kWalkBatch).calls;
      const uint64_t hops0 =
          profiler.stats(prof::Phase::kWalkAdvance).items;
      uint64_t wall_ns = 0;
      std::string extra;
      RunResult run = scenario.run(args, &profiler, &wall_ns, &extra,
                                   auditor, diag, health);
      if (auditor != nullptr) {
        // Splice the measured run's audit summary into the extra
        // object (coverage, δ-compliance, budget burn, attribution) so
        // it lands in BENCH_*.json and bench_compare.py can gate
        // accuracy regressions alongside the perf counters.
        const std::string audit_json = auditor->SummaryJson();
        if (extra.empty()) {
          extra = "{\"audit\":" + audit_json + "}";
        } else {
          extra.insert(extra.size() - 1, ",\"audit\":" + audit_json);
        }
      }
      if (diag != nullptr) {
        // Same splice for the sampler diagnostics: the mixing/load
        // summary of the measured run becomes part of the committed
        // perf trajectory.
        const std::string diag_json = diag->SummaryJson();
        if (extra.empty()) {
          extra = "{\"diag\":" + diag_json + "}";
        } else {
          extra.insert(extra.size() - 1, ",\"diag\":" + diag_json);
        }
      }
      if (health != nullptr) {
        // And the peer-health breaker/quarantine summary, so
        // bench_compare.py can gate flap-rate and quarantine churn
        // alongside the perf counters.
        const std::string health_json = health->SummaryJson();
        if (extra.empty()) {
          extra = "{\"health\":" + health_json + "}";
        } else {
          extra.insert(extra.size() - 1, ",\"health\":" + health_json);
        }
      }
      WorkCounts counts;
      counts.ticks = run.stats.ticks;
      counts.snapshots = run.stats.snapshots;
      counts.total_samples = run.stats.total_samples;
      counts.messages = run.meter.Total();
      counts.degraded_ticks = run.degraded_ticks;
      counts.walk_batches =
          profiler.stats(prof::Phase::kWalkBatch).calls - batches0;
      counts.walk_hops =
          profiler.stats(prof::Phase::kWalkAdvance).items - hops0;
      if (rep == 0) {
        report.counts = counts;
        report.extra_json = extra;
      } else if (!(counts == report.counts) || extra != report.extra_json) {
        std::fprintf(stderr,
                     "FATAL: scenario '%s' repeat %zu did different work "
                     "than repeat 0 — the run is not deterministic\n",
                     scenario.name, rep);
        return 1;
      }
      report.wall_ms.push_back(static_cast<double>(wall_ns) / 1e6);
    }
    report.prof_json = profiler.ToJson();
    reports.push_back(std::move(report));
  }

  // Human-readable roll-up.
  TablePrinter table({"scenario", "median ms", "mad", "p10", "p90",
                      "samples/s", "hops/s"});
  for (const ScenarioReport& r : reports) {
    const double median = Median(r.wall_ms);
    const double secs = median / 1e3;
    table.AddRow(
        {r.name, Fmt("%.2f", median), Fmt("%.2f", Mad(r.wall_ms)),
         Fmt("%.2f", Percentile(r.wall_ms, 10)),
         Fmt("%.2f", Percentile(r.wall_ms, 90)),
         Fmt("%.3g",
             secs > 0 ? static_cast<double>(r.counts.total_samples) / secs
                      : 0),
         Fmt("%.3g", secs > 0
                         ? static_cast<double>(r.counts.walk_hops) / secs
                         : 0)});
  }
  table.Print();

  // Machine-readable trajectory: one file per scenario + the merged
  // suite file bench_compare.py consumes.
  std::string suite = "{\"schema\":\"";
  suite += kSuiteSchema;
  suite += "\",\"config\":{\"scale\":";
  suite += FmtRate(args.scale);
  suite += ",\"seed\":";
  suite += std::to_string(args.seed);
  suite += ",\"quick\":";
  suite += args.quick ? "true" : "false";
  suite += ",\"warmup\":";
  suite += std::to_string(warmup);
  suite += ",\"repeats\":";
  suite += std::to_string(repeats);
  suite += "},\"scenarios\":{";
  bool first = true;
  for (const ScenarioReport& r : reports) {
    const std::string json = RenderScenarioJson(r, args, warmup);
    const std::string path = out_dir + "/BENCH_" + r.name + ".json";
    CheckOk(obs::WriteFile(path, json + "\n"), path.c_str());
    std::printf("wrote %s\n", path.c_str());
    if (!first) suite.push_back(',');
    first = false;
    suite.push_back('"');
    suite += r.name;
    suite += "\":";
    suite += json;
  }
  suite += "}}";
  const std::string suite_path = out_dir + "/BENCH_SUITE.json";
  CheckOk(obs::WriteFile(suite_path, suite + "\n"), suite_path.c_str());
  std::printf("wrote %s\n", suite_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace digest

int main(int argc, char** argv) { return digest::bench::Run(argc, argv); }
