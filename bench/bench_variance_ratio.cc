// Validates the repeated-sampling analysis of §IV-B2 (Eq. 9-11) on
// synthetic AR(1) populations with controlled inter-occasion correlation:
//
//   1. The variance ratio var_indep / var_rpt measured over many repeated
//      two-occasion trials vs the theoretical 2 / (1 + sqrt(1 - rho^2)).
//   2. Ablation (design choice #4): optimal retain fraction g_opt/n vs
//      all-replace (g = 0) and all-retain (f -> 0), which Eq. 8 predicts
//      fall back to the independent-sampling variance.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "numeric/rng.h"
#include "numeric/stats.h"

namespace digest {
namespace bench {
namespace {

// A synthetic population of N values evolving y2 = rho*y1 + noise so the
// exact inter-occasion correlation is `rho` and both occasions are
// standard-normal marginally.
struct Population {
  std::vector<double> y1, y2;
  double mean1 = 0.0, mean2 = 0.0;

  Population(size_t n, double rho, Rng& rng) {
    y1.resize(n);
    y2.resize(n);
    const double noise_sd = std::sqrt(1.0 - rho * rho);
    for (size_t i = 0; i < n; ++i) {
      y1[i] = rng.NextGaussian();
      y2[i] = rho * y1[i] + rng.NextGaussian(0.0, noise_sd);
    }
    mean1 = Mean(y1);
    mean2 = Mean(y2);
  }
};

// One two-occasion estimate of mean(y2) with `g` retained of `n` total
// samples, using the paper's regression + inverse-variance combination.
double RepeatedEstimate(const Population& pop, size_t n, size_t g,
                        Rng& rng) {
  const size_t population = pop.y1.size();
  // Occasion 1: n uniform samples.
  std::vector<size_t> idx(n);
  std::vector<double> s1(n);
  for (size_t i = 0; i < n; ++i) {
    idx[i] = rng.NextIndex(population);
    s1[i] = pop.y1[idx[i]];
  }
  const double ybar1 = Mean(s1);
  // Occasion 2: retain the first g, refresh their values; draw n-g fresh.
  std::vector<double> y1g(g), y2g(g);
  for (size_t i = 0; i < g; ++i) {
    y1g[i] = pop.y1[idx[i]];
    y2g[i] = pop.y2[idx[i]];
  }
  const size_t f = n - g;
  std::vector<double> y2f(f);
  for (size_t i = 0; i < f; ++i) y2f[i] = pop.y2[rng.NextIndex(population)];

  if (g < 3) return Mean(y2f);  // Degenerate: plain independent.
  if (f == 0) {
    // All retained: regression estimate alone.
    Result<LinearFit> fit = SimpleLinearRegression(y1g, y2g);
    if (!fit.ok()) return Mean(y2g);
    return Mean(y2g) + fit->slope * (ybar1 - Mean(y1g));
  }
  Result<LinearFit> fit = SimpleLinearRegression(y1g, y2g);
  Result<double> rho_s = PearsonCorrelation(y1g, y2g);
  if (!fit.ok() || !rho_s.ok()) return Mean(y2f);
  std::vector<double> all = y2g;
  all.insert(all.end(), y2f.begin(), y2f.end());
  const double sigma2 = SampleVariance(all);
  const double rho2 = std::min((*rho_s) * (*rho_s), 0.9801);
  const double y_reg = Mean(y2g) + fit->slope * (ybar1 - Mean(y1g));
  const double var_f = sigma2 / double(f);
  const double var_g =
      sigma2 * (1.0 - rho2) / double(g) + rho2 * sigma2 / double(n);
  const double wf = 1.0 / var_f;
  const double wg = 1.0 / var_g;
  return (wf * Mean(y2f) + wg * y_reg) / (wf + wg);
}

int Run(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  RejectObservabilityFlags(args, "bench_variance_ratio");
  Rng rng(args.seed);
  const size_t population = 50000;
  const size_t n = 200;
  const int trials = args.quick ? 400 : 2000;

  std::printf("=== Repeated-sampling variance analysis (Eq. 9-11) ===\n");
  std::printf("population=%zu n=%zu trials=%d\n\n", population, n, trials);

  std::printf("--- variance ratio vs correlation ---\n");
  std::vector<double> rhos = {0.0, 0.3, 0.5, 0.68, 0.8, 0.89, 0.95, 0.99};
  if (args.quick) rhos = {0.5, 0.89};
  TablePrinter table({"rho", "g_opt/n (Eq. 9)", "measured var ratio",
                      "theory 2/(1+sqrt(1-rho^2))"});
  for (double rho : rhos) {
    Population pop(population, rho, rng);
    const double root = std::sqrt(1.0 - rho * rho);
    // Eq. 10-consistent optimum (the paper's printed Eq. 9 swaps g and
    // f; see the note in snapshot_estimator.cc and EXPERIMENTS.md).
    const size_t g_opt =
        static_cast<size_t>(double(n) * root / (1.0 + root));
    RunningStats indep_err, rpt_err;
    for (int t = 0; t < trials; ++t) {
      // Independent: n fresh samples of occasion 2.
      double acc = 0.0;
      for (size_t i = 0; i < n; ++i) {
        acc += pop.y2[rng.NextIndex(population)];
      }
      const double ei = acc / double(n) - pop.mean2;
      indep_err.Add(ei * ei);
      const double er = RepeatedEstimate(pop, n, g_opt, rng) - pop.mean2;
      rpt_err.Add(er * er);
    }
    const double measured = indep_err.Mean() / rpt_err.Mean();
    const double theory = 2.0 / (1.0 + root);
    table.AddRow({Fmt("%.2f", rho), Fmt("%.2f", double(g_opt) / double(n)),
                  Fmt("%.2f", measured), Fmt("%.2f", theory)});
  }
  table.Print();

  std::printf("\n--- ablation: retain fraction at rho = 0.89 ---\n");
  {
    const double rho = 0.89;
    Population pop(population, rho, rng);
    TablePrinter ab({"g/n", "mean squared error", "vs independent"});
    double indep_mse = 0.0;
    std::vector<double> fractions = {0.0, 0.15, 0.31, 0.5, 0.69, 0.9, 0.995};
    for (double frac : fractions) {
      const size_t g = static_cast<size_t>(frac * double(n));
      RunningStats err;
      for (int t = 0; t < trials; ++t) {
        const double e = RepeatedEstimate(pop, n, g, rng) - pop.mean2;
        err.Add(e * e);
      }
      if (frac == 0.0) indep_mse = err.Mean();
      ab.AddRow({Fmt("%.3f", frac), Fmt("%.6f", err.Mean()),
                 Fmt("%.2fx", indep_mse / err.Mean())});
    }
    ab.Print();
    const double root = std::sqrt(1.0 - rho * rho);
    std::printf(
        "(Eq. 10-consistent optimum: g/n = %.2f; both extremes g=0 and "
        "g~n fall back toward the independent variance, Eq. 8.)\n",
        root / (1.0 + root));
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace digest

int main(int argc, char** argv) { return digest::bench::Run(argc, argv); }
