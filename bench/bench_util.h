#ifndef DIGEST_BENCH_BENCH_UTIL_H_
#define DIGEST_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment-reproduction binaries in bench/.
// Each binary regenerates one table or figure of the paper and prints it
// as an aligned text table, with a --scale flag to trade fidelity for
// runtime (scale=1.0 reproduces the paper's full workload sizes).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace digest {
namespace bench {

/// Command-line options common to every bench binary.
struct BenchArgs {
  double scale = 0.25;  ///< Workload-size multiplier vs the paper.
  uint64_t seed = 1;    ///< Master seed for the run.
  bool quick = false;   ///< Cut sweeps down for smoke runs.

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--scale=", 8) == 0) {
        args.scale = std::atof(argv[i] + 8);
      } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
        args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        args.quick = true;
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "usage: %s [--scale=F] [--seed=N] [--quick]\n"
            "  --scale=F  workload size multiplier vs the paper "
            "(default 0.25; 1.0 = paper scale)\n"
            "  --seed=N   master RNG seed (default 1)\n"
            "  --quick    shorten sweeps for smoke testing\n",
            argv[0]);
        std::exit(0);
      }
    }
    if (args.scale <= 0.0) args.scale = 0.25;
    return args;
  }

  size_t Scaled(size_t paper_value, size_t minimum) const {
    const double v = static_cast<double>(paper_value) * scale;
    return v < static_cast<double>(minimum) ? minimum
                                            : static_cast<size_t>(v);
  }
};

/// Aborts the benchmark with a readable message on unexpected errors.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL in %s: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T UnwrapOrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL in %s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Minimal aligned-column table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf("%-*s", static_cast<int>(widths[c] + 2), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    size_t total = 0;
    for (size_t w : widths) total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

inline std::string FmtInt(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace bench
}  // namespace digest

#endif  // DIGEST_BENCH_BENCH_UTIL_H_
