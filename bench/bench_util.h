#ifndef DIGEST_BENCH_BENCH_UTIL_H_
#define DIGEST_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment-reproduction binaries in bench/.
// Each binary regenerates one table or figure of the paper and prints it
// as an aligned text table, with a --scale flag to trade fidelity for
// runtime (scale=1.0 reproduces the paper's full workload sizes).

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "common/result.h"
#include "common/status.h"
#include "diag/diag.h"
#include "net/peer_health.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "prof/profiler.h"

namespace digest {
namespace bench {

/// A binary-specific flag a bench registers with BenchArgs::Parse so it
/// is accepted (the bench reads it from argv itself) and listed in the
/// shared usage text. `flag` is matched as an exact string, or as a
/// prefix when it ends in '='.
struct ExtraFlag {
  const char* flag;
  const char* help;
};

/// Command-line options common to every bench binary.
struct BenchArgs {
  double scale = 0.25;  ///< Workload-size multiplier vs the paper.
  uint64_t seed = 1;    ///< Master seed for the run.
  bool quick = false;   ///< Cut sweeps down for smoke runs.
  bool prof = false;             ///< --prof: wall-clock profiling.
  bool audit = false;            ///< --audit: precision-audit ledger.
  bool diag = false;             ///< --diag: sampler mixing/load diagnostics.
  bool health = false;           ///< --health: peer-health breakers.
  std::string trace_path;        ///< --trace=F: Chrome trace_event JSON.
  std::string trace_jsonl_path;  ///< --trace-jsonl=F: JSON Lines events.
  std::string metrics_path;      ///< --metrics=F: registry dump (JSON).

  static void PrintUsage(std::FILE* out, const char* binary,
                         const std::vector<ExtraFlag>& extra) {
    std::fprintf(out,
                 "usage: %s [--scale=F] [--seed=N] [--quick] [--prof] "
                 "[--audit] [--diag] [--health] [--trace=F] "
                 "[--trace-jsonl=F] [--metrics=F]%s\n"
                 "  --scale=F        workload size multiplier vs the paper "
                 "(default 0.25; 1.0 = paper scale)\n"
                 "  --seed=N         master RNG seed (default 1)\n"
                 "  --quick          shorten sweeps for smoke testing\n"
                 "  --prof           profile wall-clock hot paths and print "
                 "the phase table\n"
                 "  --audit          run the precision auditor (per-run SLO "
                 "table; audit_* events when tracing)\n"
                 "  --diag           run the sampler diagnostics (mixing + "
                 "peer-load summary; diag events when tracing)\n"
                 "  --health         run the peer-health monitor (breaker/"
                 "quarantine summary; health events when tracing)\n"
                 "  --trace=F        write a Chrome trace_event file "
                 "(Perfetto-loadable)\n"
                 "  --trace-jsonl=F  write the structured event trace as "
                 "JSON Lines\n"
                 "  --metrics=F      write the metrics registry as JSON and "
                 "print a summary table\n",
                 binary, extra.empty() ? "" : " [bench-specific flags]");
    for (const ExtraFlag& e : extra) {
      std::fprintf(out, "  %-16s %s\n", e.flag, e.help);
    }
  }

  /// Parses the shared flags. Any `--flag` that is neither shared nor
  /// registered in `extra` is rejected with an error plus the usage
  /// text (exit 2), identically in every bench. Non-flag arguments are
  /// rejected the same way.
  static BenchArgs Parse(int argc, char** argv,
                         const std::vector<ExtraFlag>& extra = {}) {
    BenchArgs args;
    auto matches_extra = [&extra](const char* arg) {
      for (const ExtraFlag& e : extra) {
        const size_t n = std::strlen(e.flag);
        if (n > 0 && e.flag[n - 1] == '=') {
          if (std::strncmp(arg, e.flag, n) == 0) return true;
        } else if (std::strcmp(arg, e.flag) == 0) {
          return true;
        }
      }
      return false;
    };
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--scale=", 8) == 0) {
        // Parse strictly: atof's silent 0.0 for garbage would zero-scale
        // every workload config. Reject non-numeric, trailing-garbage,
        // non-finite, and non-positive values the same way an unknown
        // flag is rejected.
        const char* text = argv[i] + 8;
        char* end = nullptr;
        errno = 0;
        const double scale = std::strtod(text, &end);
        if (*text == '\0' || end == nullptr || *end != '\0' ||
            errno == ERANGE || !(scale > 0.0) ||
            scale > 1e12 /* finite, sane */) {
          std::fprintf(stderr,
                       "%s: invalid --scale value '%s' (need a positive "
                       "number)\n\n",
                       argv[0], text);
          PrintUsage(stderr, argv[0], extra);
          std::exit(2);
        }
        args.scale = scale;
      } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
        args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        args.quick = true;
      } else if (std::strcmp(argv[i], "--prof") == 0) {
        args.prof = true;
      } else if (std::strcmp(argv[i], "--audit") == 0) {
        args.audit = true;
      } else if (std::strcmp(argv[i], "--diag") == 0) {
        args.diag = true;
      } else if (std::strcmp(argv[i], "--health") == 0) {
        args.health = true;
      } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
        args.trace_path = argv[i] + 8;
      } else if (std::strncmp(argv[i], "--trace-jsonl=", 14) == 0) {
        args.trace_jsonl_path = argv[i] + 14;
      } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
        args.metrics_path = argv[i] + 10;
      } else if (std::strcmp(argv[i], "--help") == 0) {
        PrintUsage(stdout, argv[0], extra);
        std::exit(0);
      } else if (!matches_extra(argv[i])) {
        std::fprintf(stderr, "%s: unknown flag '%s'\n\n", argv[0], argv[i]);
        PrintUsage(stderr, argv[0], extra);
        std::exit(2);
      }
    }
    return args;
  }

  bool ObservabilityRequested() const {
    return !trace_path.empty() || !trace_jsonl_path.empty() ||
           !metrics_path.empty();
  }

  size_t Scaled(size_t paper_value, size_t minimum) const {
    const double v = static_cast<double>(paper_value) * scale;
    return v < static_cast<double>(minimum) ? minimum
                                            : static_cast<size_t>(v);
  }
};

/// Aborts the benchmark with a readable message on unexpected errors.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL in %s: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

/// Observability plumbing for a bench run, driven by the --trace /
/// --trace-jsonl / --metrics / --prof flags. When none is given,
/// tracer(), registry(), and profiler() return nullptr and the
/// instrumented code takes its null fast path — the run is
/// bit-identical to an uninstrumented binary. Call Finish() after the
/// sweep to write the requested files and print the end-of-run tables.
///
/// --prof is orthogonal to the deterministic exports: it attaches a
/// wall-clock prof::Profiler, prints the phase table at Finish, and —
/// when combined with --trace / --trace-jsonl / --metrics — adds the
/// "wall" Chrome track, `prof_phase` JSONL lines, and the metrics
/// `prof` section to the exported files.
class ObsSession {
 public:
  explicit ObsSession(const BenchArgs& args)
      : args_(args), enabled_(args.ObservabilityRequested()) {}

  obs::Tracer* tracer() { return enabled_ ? &tracer_ : nullptr; }
  obs::Registry* registry() { return enabled_ ? &registry_ : nullptr; }
  prof::Profiler* profiler() { return args_.prof ? &profiler_ : nullptr; }
  /// The --audit precision auditor. Composes freely with --trace /
  /// --trace-jsonl / --metrics (audit_* events and audit.* metrics flow
  /// into the same exports) and with --prof; null when --audit is off.
  audit::PrecisionAuditor* auditor() {
    return args_.audit ? &auditor_ : nullptr;
  }
  /// The --diag sampler-introspection aggregator. Same composition
  /// rules as --audit: its events/metrics ride the --trace /
  /// --trace-jsonl / --metrics exports; null when --diag is off.
  diag::SamplerDiag* diag() { return args_.diag ? &diag_ : nullptr; }
  /// The --health peer-health monitor. Unlike the observers above it
  /// steers walk routing (quarantine-aware Metropolis), so --health runs
  /// are NOT bit-identical to plain runs — by design. Its events and
  /// health.* metrics ride the same exports; null when --health is off.
  PeerHealthMonitor* health() { return args_.health ? &health_ : nullptr; }
  bool enabled() const { return enabled_; }

  void Finish() {
    if (args_.health) {
      std::printf("\n%s", health_.SummaryText().c_str());
    }
    if (args_.diag) {
      std::printf("\n%s", diag_.SummaryText().c_str());
    }
    if (args_.audit) {
      std::printf("\n%s",
                  audit::RenderSloTable(auditor_.completed_runs()).c_str());
    }
    if (args_.prof) {
      std::printf("\n%s", prof::RenderProfSummary(profiler_).c_str());
    }
    if (!enabled_) return;
    if (!args_.trace_path.empty()) {
      CheckOk(obs::WriteChromeTrace(tracer_.events(), args_.trace_path,
                                    profiler()),
              "--trace");
      std::printf("\nwrote Chrome trace (%zu events) to %s\n",
                  tracer_.events().size(), args_.trace_path.c_str());
    }
    if (!args_.trace_jsonl_path.empty()) {
      CheckOk(obs::WriteJsonLines(tracer_.events(), args_.trace_jsonl_path,
                                  profiler()),
              "--trace-jsonl");
      std::printf("wrote JSONL trace (%zu events) to %s\n",
                  tracer_.events().size(),
                  args_.trace_jsonl_path.c_str());
    }
    if (!args_.metrics_path.empty()) {
      CheckOk(obs::WriteFile(args_.metrics_path,
                             obs::RenderMetricsJson(registry_, profiler())),
              "--metrics");
      std::printf("wrote metrics registry to %s\n",
                  args_.metrics_path.c_str());
      std::printf("\n%s", obs::RenderSummary(registry_).c_str());
    }
  }

 private:
  BenchArgs args_;
  bool enabled_;
  obs::MemoryTracer tracer_;
  obs::Registry registry_;
  prof::Profiler profiler_;
  audit::PrecisionAuditor auditor_;
  diag::SamplerDiag diag_;
  PeerHealthMonitor health_;
};

/// One consistent rejection for a flag a bench cannot honor: same
/// message shape and exit status (2, like an unknown flag) in every
/// bench binary. `why` completes the sentence "is not supported by this
/// bench (<why>)".
inline void RejectFlag(const char* binary, const char* flag,
                       const char* why) {
  std::fprintf(stderr, "%s: flag '%s' is not supported by this bench (%s)\n",
               binary, flag, why);
  std::exit(2);
}

/// For benches with nothing to instrument (no engine runs): fail fast
/// with a clear message instead of silently ignoring a requested
/// export. Covers the whole instrumentation family, --audit included.
inline void RejectObservabilityFlags(const BenchArgs& args,
                                     const char* binary) {
  const char* flag = nullptr;
  if (!args.trace_path.empty()) flag = "--trace";
  if (!args.trace_jsonl_path.empty()) flag = "--trace-jsonl";
  if (!args.metrics_path.empty()) flag = "--metrics";
  if (args.prof) flag = "--prof";
  if (args.audit) flag = "--audit";
  if (args.diag) flag = "--diag";
  if (args.health) flag = "--health";
  if (flag != nullptr) {
    RejectFlag(binary, flag, "no engine runs to instrument");
  }
}

template <typename T>
T UnwrapOrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL in %s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Minimal aligned-column table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf("%-*s", static_cast<int>(widths[c] + 2), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    size_t total = 0;
    for (size_t w : widths) total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

inline std::string FmtInt(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace bench
}  // namespace digest

#endif  // DIGEST_BENCH_BENCH_UTIL_H_
