// Operator-level microbenchmarks (google-benchmark): the hot paths of
// the library — expression evaluation, local-store operations, Metropolis
// walk steps, operator samples, and snapshot estimation.
#include <benchmark/benchmark.h>

#include "core/snapshot_estimator.h"
#include "db/expression.h"
#include "db/local_store.h"
#include "net/topology.h"
#include "sampling/sampling_operator.h"
#include "sampling/tuple_sampler.h"

namespace digest {
namespace {

void BM_ExpressionParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Expression::Parse("2 * (memory + storage) - cpu / 4"));
  }
}
BENCHMARK(BM_ExpressionParse);

void BM_ExpressionEvaluate(benchmark::State& state) {
  Expression expr =
      Expression::Parse("2 * (memory + storage) - cpu / 4").value();
  Schema schema =
      Schema::Create({"cpu", "memory", "storage", "bandwidth"}).value();
  (void)expr.Bind(schema);
  const Tuple tuple = {1.0, 2.0, 3.0, 4.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr.Evaluate(tuple));
  }
}
BENCHMARK(BM_ExpressionEvaluate);

void BM_LocalStoreInsertErase(benchmark::State& state) {
  LocalStore store;
  for (auto _ : state) {
    const LocalTupleId id = store.Insert({1.0, 2.0});
    benchmark::DoNotOptimize(store.Erase(id));
  }
}
BENCHMARK(BM_LocalStoreInsertErase);

void BM_LocalStoreUniformSample(benchmark::State& state) {
  LocalStore store;
  for (int i = 0; i < 1000; ++i) store.Insert({double(i)});
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.UniformSample(rng));
  }
}
BENCHMARK(BM_LocalStoreUniformSample);

void BM_WalkStep(benchmark::State& state) {
  Rng topo_rng(2);
  Graph g = MakeBarabasiAlbert(size_t(state.range(0)), 3, topo_rng).value();
  Rng rng(3);
  RandomWalk walk(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        walk.Step(g, UniformWeight(), rng, nullptr, 0));
  }
}
BENCHMARK(BM_WalkStep)->Arg(64)->Arg(512)->Arg(4096);

void BM_OperatorSample(benchmark::State& state) {
  Rng topo_rng(4);
  Graph g = MakeBarabasiAlbert(size_t(state.range(0)), 3, topo_rng).value();
  SamplingOperator op(&g, UniformWeight(), Rng(5), nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.SampleNode(0));
  }
}
BENCHMARK(BM_OperatorSample)->Arg(64)->Arg(512);

void BM_SnapshotIndependent(benchmark::State& state) {
  Rng topo_rng(6);
  Graph g = MakeComplete(16).value();
  P2PDatabase db(Schema::Create({"v"}).value());
  Rng data_rng(7);
  for (NodeId node : g.LiveNodes()) {
    (void)db.AddNode(node);
    for (int i = 0; i < 200; ++i) {
      db.StoreAt(node).value()->Insert({data_rng.NextGaussian(50, 10)});
    }
  }
  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(v) FROM R",
                                  PrecisionSpec{0.0, 1.0, 0.95})
          .value();
  ExactTupleSampler sampler(&db, Rng(8), nullptr);
  ExactSampleSource source(&sampler);
  IndependentEstimator est(spec, &db, &source, nullptr, nullptr, Rng(9));
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.Evaluate(0));
  }
}
BENCHMARK(BM_SnapshotIndependent);

}  // namespace
}  // namespace digest

BENCHMARK_MAIN();
