// Reproduces Figure 4-a of the paper: effect of the extrapolation
// algorithm. On the TEMPERATURE workload, with fixed confidence (ε = 2,
// p = 0.95), the normalized resolution δ/σ̂ is swept and the number of
// snapshot queries executed by the naive continuous algorithm (ALL) and
// the extrapolation algorithms (PRED-k, k previous values) is reported.
//
// Paper's shape: all PRED-k behave similarly; ≈ ALL at small δ; up to
// ~75% fewer snapshots at δ/σ̂ = 1.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "workload/experiment.h"
#include "workload/temperature.h"

namespace digest {
namespace bench {
namespace {

TemperatureConfig MakeConfig(const BenchArgs& args) {
  TemperatureConfig config;
  config.num_units = args.Scaled(8000, 200);
  config.num_nodes = args.Scaled(530, 16);
  config.seed = args.seed;
  return config;
}

int Run(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(
      argc, argv,
      {{"--strict", "measure drift from X̂[t_u] (strict-resolution "
                    "ablation)"}});
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--strict") strict = true;
  }
  ObsSession obs(args);
  const size_t ticks = args.quick ? 150 : 1095;  // 18 months at 12 h.
  const double sigma_hat = 8.0;                  // Table II.
  const double epsilon = 2.0;
  const double confidence = 0.95;

  std::printf("=== Figure 4-a: #snapshot queries vs normalized "
              "resolution (TEMPERATURE) ===\n");
  std::printf("epsilon=%.1f p=%.2f ticks=%zu scale=%.2f%s\n\n", epsilon,
              confidence, ticks, args.scale,
              strict ? " [strict resolution ablation]" : "");

  std::vector<double> delta_over_sigma = {0.0,  0.125, 0.25, 0.5,
                                          0.75, 1.0,   1.5,  2.0};
  if (args.quick) delta_over_sigma = {0.0, 0.5, 1.0, 2.0};

  struct Algo {
    const char* name;
    SchedulerKind scheduler;
    size_t history;
  };
  const std::vector<Algo> algos = {
      {"ALL", SchedulerKind::kAll, 0},
      {"PRED-2", SchedulerKind::kPred, 2},
      {"PRED-3", SchedulerKind::kPred, 3},
      {"PRED-4", SchedulerKind::kPred, 4},
      {"PRED-5", SchedulerKind::kPred, 5},
  };

  TablePrinter table({"delta/sigma", "ALL", "PRED-2", "PRED-3", "PRED-4",
                      "PRED-5", "reduction(PRED-3)"});
  for (double ds : delta_over_sigma) {
    std::vector<std::string> row = {Fmt("%.3f", ds)};
    size_t all_snapshots = 0;
    size_t pred3_snapshots = 0;
    for (const Algo& algo : algos) {
      auto workload =
          UnwrapOrDie(TemperatureWorkload::Create(MakeConfig(args)),
                      "workload");
      ContinuousQuerySpec spec = UnwrapOrDie(
          ContinuousQuerySpec::Create(
              "SELECT AVG(temperature) FROM R",
              PrecisionSpec{ds * sigma_hat, epsilon, confidence}),
          "spec");
      // Exact resolution (delta = 0) still needs a positive value for the
      // spec; the scheduler treats delta below one sample step as ALL.
      DigestEngineOptions options;
      options.scheduler = algo.scheduler;
      options.estimator = EstimatorKind::kIndependent;
      options.sampler = SamplerKind::kExactCentral;  // Count samples only.
      options.strict_resolution = strict;
      options.tracer = obs.tracer();
      options.registry = obs.registry();
      options.profiler = obs.profiler();
      options.auditor = obs.auditor();
      options.diag = obs.diag();
      options.health = obs.health();
      if (algo.history > 0) {
        options.extrapolator.history_points = algo.history;
      }
      const std::string run_label =
          std::string(algo.name) + " d/s=" + Fmt("%.3f", ds);
      RunResult run = UnwrapOrDie(
          RunEngineExperiment(*workload, spec, options, ticks, args.seed,
                              run_label),
          algo.name);
      row.push_back(FmtInt(run.stats.snapshots));
      if (algo.scheduler == SchedulerKind::kAll) {
        all_snapshots = run.stats.snapshots;
      }
      if (algo.history == 3) pred3_snapshots = run.stats.snapshots;
    }
    const double reduction =
        all_snapshots == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(pred3_snapshots) /
                                 static_cast<double>(all_snapshots));
    row.push_back(Fmt("%.1f%%", reduction));
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\npaper: PRED-k ~= ALL at small delta; up to ~75%% fewer "
      "snapshots by delta/sigma = 1.\n");

  if (obs.enabled() || args.diag) {
    // Fig. 4-a proper samples through the exact central oracle (the
    // figure counts snapshot queries, not walks), so a trace of the
    // sweep alone would carry no walk events — and the sampler
    // diagnostics would have no chain to watch. Append one small run of
    // the full distributed pipeline — PRED-3 + RPT over the two-stage
    // MCMC sampler — so the exported trace shows walk batches nested
    // under engine ticks and --diag summarizes a real walk workload.
    // Its own workload and seed: the table above is untouched.
    const size_t showcase_ticks = args.quick ? 40 : 120;
    BenchArgs small = args;
    small.scale = std::min(args.scale, 0.05);
    auto workload = UnwrapOrDie(
        TemperatureWorkload::Create(MakeConfig(small)), "showcase workload");
    ContinuousQuerySpec spec = UnwrapOrDie(
        ContinuousQuerySpec::Create(
            "SELECT AVG(temperature) FROM R",
            PrecisionSpec{0.5 * sigma_hat, epsilon, confidence}),
        "showcase spec");
    DigestEngineOptions options;
    options.scheduler = SchedulerKind::kPred;
    options.estimator = EstimatorKind::kRepeated;
    options.sampler = SamplerKind::kTwoStageMcmc;
    options.tracer = obs.tracer();
    options.registry = obs.registry();
    options.profiler = obs.profiler();
    options.auditor = obs.auditor();
    options.diag = obs.diag();
    options.health = obs.health();
    RunResult run = UnwrapOrDie(
        RunEngineExperiment(*workload, spec, options, showcase_ticks,
                            args.seed, "PRED-3 RPT mcmc showcase"),
        "showcase");
    std::printf("\n[trace] appended MCMC showcase run: %zu ticks, "
                "%zu snapshots, %zu samples\n",
                run.stats.ticks, run.stats.snapshots,
                run.stats.total_samples);
  }
  obs.Finish();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace digest

int main(int argc, char** argv) { return digest::bench::Run(argc, argv); }
