// Accuracy/cost profile of the collision-based size estimator (the
// distributed replacement for the ground-truth SizeOracle; an extension
// beyond the paper, needed by SUM/COUNT queries in a real deployment).
//
// Sweeps network size and collision target, reporting relative error of
// |V|^ and N^ plus the message cost per estimate, on power-law overlays.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "net/topology.h"
#include "numeric/stats.h"
#include "sampling/size_estimator.h"

namespace digest {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  RejectObservabilityFlags(args, "bench_size_estimator");
  Rng rng(args.seed);

  std::printf("=== Collision size estimator: accuracy vs cost ===\n\n");

  std::vector<size_t> sizes = {64, 128, 256, 512};
  if (!args.quick) sizes.push_back(1024);
  std::vector<size_t> targets = {8, 32, 128};

  for (size_t target : targets) {
    std::printf("--- collision target %zu (expected rel. error ~ %.0f%%) "
                "---\n",
                target, 100.0 / std::sqrt(static_cast<double>(target)));
    TablePrinter table({"N (true)", "|V|^ mean", "|V|^ rel.err", "N^ tuples",
                        "tuples rel.err", "msgs/estimate"});
    for (size_t n : sizes) {
      Graph g = UnwrapOrDie(MakeBarabasiAlbert(n, 3, rng), "ba");
      P2PDatabase db(Schema::Create({"v"}).value());
      size_t total_tuples = 0;
      for (NodeId node : g.LiveNodes()) {
        CheckOk(db.AddNode(node), "AddNode");
        const size_t count = 1 + rng.NextIndex(6);
        for (size_t i = 0; i < count; ++i) {
          db.StoreAt(node).value()->Insert({1.0});
          ++total_tuples;
        }
      }
      const int trials = args.quick ? 4 : 10;
      RunningStats node_est, tuple_est;
      uint64_t total_messages = 0;
      for (int trial = 0; trial < trials; ++trial) {
        MessageMeter meter;
        SamplingOperatorOptions walk;
        walk.walk_length = 120;
        walk.reset_length = 30;
        SamplingOperator op(&g, UniformWeight(), rng.Fork(), &meter, walk);
        SizeEstimatorOptions options;
        options.collision_target = target;
        options.refresh_period = 0;
        CollisionSizeEstimator est(&db, &op, 0, options);
        Result<double> nodes = est.EstimateNetworkSize();
        Result<double> tuples = est.EstimateRelationSize();
        if (!nodes.ok() || !tuples.ok()) continue;
        node_est.Add(*nodes);
        tuple_est.Add(*tuples);
        total_messages += meter.Total();
      }
      if (node_est.count() == 0) {
        table.AddRow({FmtInt(n), "-", "-", "-", "-", "-"});
        continue;
      }
      const double nd = static_cast<double>(n);
      const double td = static_cast<double>(total_tuples);
      table.AddRow(
          {FmtInt(n), Fmt("%.1f", node_est.Mean()),
           Fmt("%.1f%%", 100.0 * std::fabs(node_est.Mean() - nd) / nd),
           Fmt("%.1f", tuple_est.Mean()),
           Fmt("%.1f%%", 100.0 * std::fabs(tuple_est.Mean() - td) / td),
           Fmt("%.0f", static_cast<double>(total_messages) /
                           node_est.count() / 2.0)});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "the estimate needs ~sqrt(2·target·N) uniform samples (birthday "
      "bound), each costing one warm walk.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace digest

int main(int argc, char** argv) { return digest::bench::Run(argc, argv); }
