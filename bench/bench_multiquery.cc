// Profiles the per-node runtime (DigestNode, §III's architecture): many
// concurrent continuous queries at one peer sharing a single sampling
// operator. Sharing pays twice. First, warm walk agents: only the first
// query's occasions pay cold mixing walks, so the per-query average
// falls as tenants join. Second, snapshot coalescing: queries whose
// occasions land on the same tick split ONE walk batch — the tightest-ε
// tenant sizes it and everyone else rides its prefix. The bench runs
// both modes (coalesced vs the warm-pool-only ablation) over the same
// workload and reports the marginal message cost of each added query,
// plus the coalesced/ablated ratio of the 4→8 marginal — the headline
// the suite's multiquery_rpt_mcmc scenario gates at <= 0.6.
//
// Observability composes: --trace/--trace-jsonl give every query its
// own lane (lane = QueryId; shared-operator walk events stay unlaned,
// and coalesced ticks emit one unlaned snapshot_coalesced event),
// --metrics exports the node.* registry (per-query message/snapshot
// attribution), --prof the phase profile, --audit attaches the
// precision auditor to the tightest-ε query of each run, and
// --diag/--health instrument the shared operator.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/digest_node.h"
#include "obs/bridge.h"
#include "workload/temperature.h"

namespace digest {
namespace bench {
namespace {

struct ModeRun {
  uint64_t total_messages = 0;
  uint64_t coalesced_ticks = 0;
};

int Run(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  ObsSession obs(args);
  std::printf("=== Multi-query runtime: cost vs concurrent queries ===\n");
  const size_t ticks = args.quick ? 20 : 60;
  std::printf("TEMPERATURE workload, %zu ticks, AVG queries with "
              "epsilon in {0.5 .. 2.0}\n\n",
              ticks);

  const std::vector<size_t> kQueryCounts = {1, 2, 4, 8};
  TablePrinter table({"mode", "queries", "total messages", "messages/query",
                      "marginal (vs prev)", "coalesced ticks"});
  // marginals[mode][k] = messages per added query between sweep point
  // k-1 and k; the q=4 -> q=8 entry is the headline ratio's input.
  std::vector<std::vector<double>> marginals(2);

  for (int mode = 0; mode < 2; ++mode) {
    const bool coalesce = mode == 0;
    uint64_t prev_total = 0;
    size_t prev_q = 0;
    for (size_t q : kQueryCounts) {
      TemperatureConfig config;
      config.num_units = args.Scaled(2000, 400);
      config.num_nodes = args.Scaled(132, 36);
      config.seed = args.seed;
      auto workload = UnwrapOrDie(TemperatureWorkload::Create(config),
                                  "workload");
      MessageMeter meter;
      DigestEngineOptions options;
      options.scheduler = SchedulerKind::kAll;  // Uniform load per tick.
      options.estimator = EstimatorKind::kRepeated;
      options.sampler = SamplerKind::kTwoStageMcmc;
      options.sampling_options.walk_length = 500;  // Mesh mixing.
      options.sampling_options.reset_length = 72;
      options.tracer = obs.tracer();
      options.registry = obs.registry();
      options.profiler = obs.profiler();
      options.diag = obs.diag();
      options.health = obs.health();
      DigestNodeOptions node_options;
      node_options.coalesce_snapshots = coalesce;
      const std::string run_label =
          std::string(coalesce ? "coalesced" : "warm-pool") + " q=" +
          FmtInt(q);
      if (obs::Tracing(obs.tracer())) {
        obs.tracer()->set_now(0);
        obs.tracer()->Emit(obs::RunBeginEvent{run_label});
      }
      if (obs.auditor() != nullptr) obs.auditor()->BeginRun(run_label);
      if (obs.diag() != nullptr) obs.diag()->Reset();
      if (obs.health() != nullptr) obs.health()->Reset();
      Rng rng(args.seed);
      const NodeId self =
          UnwrapOrDie(workload->graph().RandomLiveNode(rng), "node");
      auto node = UnwrapOrDie(
          DigestNode::Create(&workload->graph(), &workload->db(), self,
                             rng.Fork(), &meter, options, node_options),
          "DigestNode");
      // All tenants run the same aggregate, so one oracle serves the
      // audited query.
      const ContinuousQuerySpec oracle_spec = UnwrapOrDie(
          ContinuousQuerySpec::Create("SELECT AVG(temperature) FROM R",
                                      PrecisionSpec{8.0, 0.5, 0.95}),
          "spec");
      for (size_t i = 0; i < q; ++i) {
        const double eps = 0.5 + 1.5 * static_cast<double>(i) /
                                     static_cast<double>(std::max<size_t>(
                                         q - 1, 1));
        ContinuousQuerySpec spec = UnwrapOrDie(
            ContinuousQuerySpec::Create(
                "SELECT AVG(temperature) FROM R",
                PrecisionSpec{8.0, eps, 0.95}),
            "spec");
        // One auditor pins one (δ, ε, p) contract, so it audits the
        // tightest-ε tenant; the others run unaudited here (the suite
        // scenario covers all eight with per-query auditors).
        DigestEngineOptions per_query = options;
        per_query.auditor = i == 0 ? obs.auditor() : nullptr;
        UnwrapOrDie(node->IssueQuery(spec, per_query), "IssueQuery");
      }
      for (size_t t = 1; t <= ticks; ++t) {
        CheckOk(workload->Advance(), "Advance");
        CheckOk(node->Tick(static_cast<int64_t>(t)).status(), "Tick");
        if (obs.auditor() != nullptr) {
          const double oracle = UnwrapOrDie(
              workload->db().ExactAggregate(oracle_spec.query), "oracle");
          obs.auditor()->RecordTruth(static_cast<int64_t>(t), oracle);
        }
      }
      if (obs.auditor() != nullptr) obs.auditor()->FinalizeRun();
      obs::BridgeMessageMeter(meter, obs.registry());
      const uint64_t total = meter.Total();
      std::string marginal = "-";
      if (prev_q > 0) {
        const double m = static_cast<double>(total - prev_total) /
                         static_cast<double>(q - prev_q);
        marginals[mode].push_back(m);
        marginal = Fmt("%.0f", m);
      }
      table.AddRow({coalesce ? "coalesced" : "warm-pool", FmtInt(q),
                    FmtInt(total),
                    Fmt("%.0f", static_cast<double>(total) /
                                    static_cast<double>(q)),
                    marginal, FmtInt(node->coalesced_ticks())});
      prev_total = total;
      prev_q = q;
    }
  }
  table.Print();
  if (marginals[0].size() == 3 && marginals[1].size() == 3 &&
      marginals[1].back() > 0) {
    std::printf("\n8th-query marginal: coalesced %.0f vs warm-pool %.0f "
                "msgs/query (ratio %.2f)\n",
                marginals[0].back(), marginals[1].back(),
                marginals[0].back() / marginals[1].back());
  }
  std::printf(
      "\nwarm-pool mode already amortizes mixing (shared agents); the\n"
      "coalesced mode additionally merges same-tick snapshot demands\n"
      "into one walk batch sized by the tightest epsilon, so the\n"
      "marginal cost of an added query keeps falling with tenancy.\n");
  if (obs.auditor() != nullptr && obs.registry() != nullptr) {
    obs.auditor()->ExportToRegistry(obs.registry());
  }
  obs.Finish();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace digest

int main(int argc, char** argv) { return digest::bench::Run(argc, argv); }
