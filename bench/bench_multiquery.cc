// Profiles the per-node runtime (DigestNode, §III's architecture): many
// concurrent continuous queries at one peer sharing a single sampling
// operator. Because warm walk agents are shared, the marginal cost of an
// extra query is far below the first query's cost — the overlay pays the
// mixing time once per agent pool, not once per query.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/digest_node.h"
#include "workload/temperature.h"

namespace digest {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  RejectObservabilityFlags(args, "bench_multiquery");
  std::printf("=== Multi-query runtime: cost vs concurrent queries ===\n");
  const size_t ticks = args.quick ? 20 : 60;
  std::printf("TEMPERATURE workload, %zu ticks, AVG queries with "
              "epsilon in {0.5 .. 2.0}\n\n",
              ticks);

  TablePrinter table({"queries", "total messages", "messages/query",
                      "marginal messages (vs prev)"});
  uint64_t prev_total = 0;
  size_t prev_q = 0;
  for (size_t q : {1, 2, 4, 8}) {
    TemperatureConfig config;
    config.num_units = args.Scaled(2000, 400);
    config.num_nodes = args.Scaled(132, 36);
    config.seed = args.seed;
    auto workload = UnwrapOrDie(TemperatureWorkload::Create(config),
                                "workload");
    MessageMeter meter;
    DigestEngineOptions options;
    options.scheduler = SchedulerKind::kAll;  // Uniform load per tick.
    options.estimator = EstimatorKind::kRepeated;
    options.sampler = SamplerKind::kTwoStageMcmc;
    options.sampling_options.walk_length = 500;  // Mesh mixing.
    options.sampling_options.reset_length = 72;
    Rng rng(args.seed);
    const NodeId self =
        UnwrapOrDie(workload->graph().RandomLiveNode(rng), "node");
    auto node = UnwrapOrDie(
        DigestNode::Create(&workload->graph(), &workload->db(), self,
                           rng.Fork(), &meter, options),
        "DigestNode");
    for (size_t i = 0; i < q; ++i) {
      const double eps = 0.5 + 1.5 * static_cast<double>(i) /
                                   static_cast<double>(std::max<size_t>(
                                       q - 1, 1));
      ContinuousQuerySpec spec = UnwrapOrDie(
          ContinuousQuerySpec::Create(
              "SELECT AVG(temperature) FROM R",
              PrecisionSpec{8.0, eps, 0.95}),
          "spec");
      UnwrapOrDie(node->IssueQuery(spec), "IssueQuery");
    }
    for (size_t t = 1; t <= ticks; ++t) {
      CheckOk(workload->Advance(), "Advance");
      CheckOk(node->Tick(static_cast<int64_t>(t)).status(), "Tick");
    }
    const uint64_t total = meter.Total();
    std::string marginal = "-";
    if (prev_q > 0) {
      marginal = Fmt("%.0f", static_cast<double>(total - prev_total) /
                                 static_cast<double>(q - prev_q));
    }
    table.AddRow({FmtInt(q), FmtInt(total),
                  Fmt("%.0f", static_cast<double>(total) /
                                  static_cast<double>(q)),
                  marginal});
    prev_total = total;
    prev_q = q;
  }
  table.Print();
  std::printf(
      "\nthe per-query average falls as queries share the warm agent\n"
      "pool: only the first query's occasions pay cold mixing walks.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace digest

int main(int argc, char** argv) { return digest::bench::Run(argc, argv); }
