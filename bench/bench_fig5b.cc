// Reproduces Figure 5-b of the paper: overall efficiency of Digest in
// communication cost (total messages; the paper plots a log-scale axis).
// For the query (δ/σ̂ = 1, ε/σ̂ = 0.25, p = 0.95), four approaches are
// compared on both workloads:
//
//   Digest        = PRED3 + RPT over the two-stage MCMC sampler (pull)
//   ALL + INDEP   = naive sampling, every tick, MCMC sampler (pull)
//   ALL + FILTER  = Olston-style adaptive filters (push)
//   ALL + ALL     = push every tuple every tick (exact baseline)
//
// Paper's shape: Digest beats ALL+FILTER by more than one order of
// magnitude and ALL+ALL by almost two; even ALL+INDEP beats ALL+FILTER;
// average walk cost per sample ≈ 65 messages (mesh) / 43 (power-law).
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "workload/experiment.h"
#include "workload/memory.h"
#include "workload/temperature.h"

namespace digest {
namespace bench {
namespace {

std::unique_ptr<Workload> MakeWorkload(const std::string& dataset,
                                       const BenchArgs& args) {
  if (dataset == "TEMPERATURE") {
    TemperatureConfig config;
    config.num_units = args.Scaled(8000, 200);
    config.num_nodes = args.Scaled(530, 16);
    config.seed = args.seed;
    return UnwrapOrDie(TemperatureWorkload::Create(config), "temperature");
  }
  MemoryConfig config;
  config.num_units = args.Scaled(1000, 100);
  config.num_nodes = args.Scaled(820, 60);
  config.seed = args.seed;
  return UnwrapOrDie(MemoryWorkload::Create(config), "memory");
}

int Run(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  ObsSession obs(args);
  std::printf("=== Figure 5-b: total communication cost (messages) ===\n");
  std::printf("delta/sigma=1 epsilon/sigma=0.25 p=0.95 scale=%.2f\n\n",
              args.scale);

  struct Dataset {
    const char* name;
    const char* attribute;
    double sigma_hat;
    size_t ticks;
    // Walk lengths reflect the topology's mixing behaviour: the mesh
    // (diameter ~ sqrt(N)) needs longer walks than the power-law overlay
    // (diameter ~ log N) — the source of the paper's 65 vs 43 messages
    // per sample.
    size_t walk_length;
    size_t reset_length;
  };
  const std::vector<Dataset> datasets = {
      {"TEMPERATURE", "temperature", 8.0, args.quick ? 100u : 600u, 500,
       72},
      {"MEMORY", "memory", 10.0, args.quick ? 80u : 400u, 250, 48},
  };

  for (const Dataset& ds : datasets) {
    std::printf("--- %s ---\n", ds.name);
    char query[128];
    std::snprintf(query, sizeof(query), "SELECT AVG(%s) FROM R",
                  ds.attribute);
    ContinuousQuerySpec spec = UnwrapOrDie(
        ContinuousQuerySpec::Create(
            query, PrecisionSpec{ds.sigma_hat, 0.25 * ds.sigma_hat, 0.95}),
        "spec");

    TablePrinter table({"approach", "messages", "log10(messages)",
                        "samples", "msgs/sample"});

    auto add_engine_row = [&](const char* name, SchedulerKind scheduler,
                              EstimatorKind estimator) {
      auto workload = MakeWorkload(ds.name, args);
      DigestEngineOptions options;
      options.scheduler = scheduler;
      options.estimator = estimator;
      options.sampler = SamplerKind::kTwoStageMcmc;
      options.extrapolator.history_points = 3;
      options.sampling_options.walk_length = ds.walk_length;
      options.sampling_options.reset_length = ds.reset_length;
      options.tracer = obs.tracer();
      options.registry = obs.registry();
      options.profiler = obs.profiler();
      options.auditor = obs.auditor();
      options.diag = obs.diag();
      options.health = obs.health();
      RunResult run = UnwrapOrDie(
          RunEngineExperiment(*workload, spec, options, ds.ticks,
                              args.seed,
                              std::string(ds.name) + " " + name),
          name);
      const uint64_t messages = run.meter.Total();
      const double per_sample =
          run.stats.fresh_samples == 0
              ? 0.0
              : static_cast<double>(messages) /
                    static_cast<double>(run.stats.fresh_samples);
      table.AddRow({name, FmtInt(messages),
                    Fmt("%.2f", std::log10(double(messages) + 1.0)),
                    FmtInt(run.stats.total_samples),
                    Fmt("%.1f", per_sample)});
      return messages;
    };

    add_engine_row("Digest (PRED3+RPT)", SchedulerKind::kPred,
                   EstimatorKind::kRepeated);
    add_engine_row("ALL + INDEP", SchedulerKind::kAll,
                   EstimatorKind::kIndependent);
    {
      auto workload = MakeWorkload(ds.name, args);
      RunResult run = UnwrapOrDie(
          RunFilterExperiment(*workload, spec, ds.ticks, args.seed),
          "ALL + FILTER");
      table.AddRow({"ALL + FILTER", FmtInt(run.meter.Total()),
                    Fmt("%.2f", std::log10(double(run.meter.Total()) + 1.0)),
                    "-", "-"});
    }
    {
      auto workload = MakeWorkload(ds.name, args);
      RunResult run = UnwrapOrDie(
          RunPushAllExperiment(*workload, spec, ds.ticks, args.seed),
          "ALL + ALL");
      table.AddRow({"ALL + ALL", FmtInt(run.meter.Total()),
                    Fmt("%.2f", std::log10(double(run.meter.Total()) + 1.0)),
                    "-", "-"});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "paper: Digest > 1 order of magnitude cheaper than ALL+FILTER and\n"
      "~2 orders cheaper than ALL+ALL; avg messages/sample ~= 65 (mesh) "
      "and 43 (power-law).\n");
  obs.Finish();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace digest

int main(int argc, char** argv) { return digest::bench::Run(argc, argv); }
