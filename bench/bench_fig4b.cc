// Reproduces Figure 4-b of the paper: effect of the repeated sampling
// algorithm. With fixed resolution (δ/σ̂ = 1) and confidence level
// (p = 0.95), the confidence-interval half-width ε is swept and the
// average number of samples per snapshot query (retained + fresh) is
// reported for independent sampling (INDEP) and repeated sampling (RPT),
// on both workloads.
//
// Paper's shape: RPT consistently below INDEP; average improvement
// factor I = n_indep / n_rpt ≈ 1.63 on TEMPERATURE and ≈ 1.21 on MEMORY
// (the TEMPERATURE gain is larger because ρ is higher and churn lower).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "workload/experiment.h"
#include "workload/memory.h"
#include "workload/temperature.h"

namespace digest {
namespace bench {
namespace {

std::unique_ptr<Workload> MakeWorkload(const char* dataset,
                                       const BenchArgs& args) {
  if (std::string(dataset) == "TEMPERATURE") {
    TemperatureConfig config;
    config.num_units = args.Scaled(8000, 200);
    config.num_nodes = args.Scaled(530, 16);
    config.seed = args.seed;
    return UnwrapOrDie(TemperatureWorkload::Create(config), "temperature");
  }
  MemoryConfig config;
  config.num_units = args.Scaled(1000, 100);
  config.num_nodes = args.Scaled(820, 60);
  config.seed = args.seed;
  return UnwrapOrDie(MemoryWorkload::Create(config), "memory");
}

struct DatasetSpec {
  const char* name;
  const char* attribute;
  double sigma_hat;
  size_t ticks;
};

int Run(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  ObsSession obs(args);
  std::printf("=== Figure 4-b: samples per snapshot vs epsilon ===\n");
  std::printf("delta/sigma=1 p=0.95 scale=%.2f\n\n", args.scale);

  const std::vector<DatasetSpec> datasets = {
      {"TEMPERATURE", "temperature", 8.0, args.quick ? 60u : 400u},
      {"MEMORY", "memory", 10.0, args.quick ? 60u : 400u},
  };
  std::vector<double> eps_over_sigma = {0.0625, 0.125, 0.1875, 0.25, 0.375};
  if (args.quick) eps_over_sigma = {0.125, 0.25};

  for (const DatasetSpec& ds : datasets) {
    std::printf("--- %s (sigma_hat=%.0f) ---\n", ds.name, ds.sigma_hat);
    TablePrinter table({"epsilon", "INDEP samples/snapshot",
                        "RPT samples/snapshot", "I = indep/rpt"});
    double improvement_sum = 0.0;
    for (double es : eps_over_sigma) {
      const double epsilon = es * ds.sigma_hat;
      char query[128];
      std::snprintf(query, sizeof(query), "SELECT AVG(%s) FROM R",
                    ds.attribute);
      ContinuousQuerySpec spec = UnwrapOrDie(
          ContinuousQuerySpec::Create(
              query, PrecisionSpec{ds.sigma_hat, epsilon, 0.95}),
          "spec");
      double per_snapshot[2] = {0.0, 0.0};
      const EstimatorKind kinds[2] = {EstimatorKind::kIndependent,
                                      EstimatorKind::kRepeated};
      for (int k = 0; k < 2; ++k) {
        auto workload = MakeWorkload(ds.name, args);
        DigestEngineOptions options;
        // ALL scheduler: every tick is a sampling occasion, isolating the
        // estimator effect exactly as the paper does.
        options.scheduler = SchedulerKind::kAll;
        options.estimator = kinds[k];
        options.sampler = SamplerKind::kExactCentral;
        // A small pilot keeps the CLT-sized sample count visible across
        // the whole epsilon sweep instead of clipping at the floor.
        options.estimator_options.pilot_samples = 10;
        options.tracer = obs.tracer();
        options.registry = obs.registry();
        options.profiler = obs.profiler();
        options.auditor = obs.auditor();
        options.diag = obs.diag();
        options.health = obs.health();
        const std::string run_label =
            std::string(ds.name) + (k == 0 ? " INDEP" : " RPT") +
            " eps=" + Fmt("%.3f", epsilon);
        RunResult run = UnwrapOrDie(
            RunEngineExperiment(*workload, spec, options, ds.ticks,
                                args.seed, run_label),
            ds.name);
        per_snapshot[k] =
            static_cast<double>(run.stats.total_samples) /
            static_cast<double>(run.stats.snapshots);
      }
      const double improvement = per_snapshot[0] / per_snapshot[1];
      improvement_sum += improvement;
      table.AddRow({Fmt("%.3f", epsilon), Fmt("%.1f", per_snapshot[0]),
                    Fmt("%.1f", per_snapshot[1]),
                    Fmt("%.2f", improvement)});
    }
    table.Print();
    std::printf("average improvement factor I = %.2f  (paper: %s)\n\n",
                improvement_sum / eps_over_sigma.size(),
                std::string(ds.name) == "TEMPERATURE" ? "1.63" : "1.21");
  }
  obs.Finish();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace digest

int main(int argc, char** argv) { return digest::bench::Run(argc, argv); }
