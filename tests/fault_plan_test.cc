// Property tests for the deterministic fault-injection layer: a zero-
// rate plan is bit-identical to no plan, and identical seeds reproduce
// identical fault schedules.
#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "net/fault_plan.h"
#include "obs/tracer.h"
#include "net/topology.h"
#include "sampling/sampling_operator.h"
#include "workload/experiment.h"
#include "workload/memory.h"

namespace digest {
namespace {

FaultPlanConfig ActiveConfig() {
  FaultPlanConfig config;
  config.message_loss = 0.3;
  config.edge_spread = 0.5;
  config.agent_drop = 0.1;
  config.stale_probe = 0.2;
  config.stall_fraction = 0.3;
  config.stall_every = 16;
  config.stall_length = 4;
  return config;
}

TEST(FaultPlanTest, ConfigValidation) {
  EXPECT_TRUE(FaultPlanConfig{}.Validate().ok());
  EXPECT_TRUE(ActiveConfig().Validate().ok());

  FaultPlanConfig bad = ActiveConfig();
  bad.message_loss = -0.1;
  EXPECT_FALSE(bad.Validate().ok());
  bad = ActiveConfig();
  bad.message_loss = 1.5;
  EXPECT_FALSE(bad.Validate().ok());
  bad = ActiveConfig();
  bad.edge_spread = 2.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = ActiveConfig();
  bad.stale_noise = -1.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = ActiveConfig();
  bad.stall_length = bad.stall_every;  // Never wakes up: that's churn.
  EXPECT_FALSE(bad.Validate().ok());
  bad = ActiveConfig();
  bad.stall_every = 0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(FaultPlanTest, ConfigValidationCoversEveryProbabilityAndDuration) {
  // Every probability field rejects values outside [0, 1] with
  // InvalidArgument, independently of the others.
  for (double out_of_range : {-0.1, 1.0001, 7.0}) {
    FaultPlanConfig bad = ActiveConfig();
    bad.agent_drop = out_of_range;
    EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument)
        << "agent_drop=" << out_of_range;
    bad = ActiveConfig();
    bad.stale_probe = out_of_range;
    EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument)
        << "stale_probe=" << out_of_range;
    bad = ActiveConfig();
    bad.stall_fraction = out_of_range;
    EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument)
        << "stall_fraction=" << out_of_range;
  }
  // Stall durations reject negatives even when no node ever stalls.
  FaultPlanConfig bad;
  ASSERT_EQ(bad.stall_fraction, 0.0);
  bad.stall_length = -1;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = FaultPlanConfig{};
  bad.stall_every = -8;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(FaultPlanTest, LiveRateSettersRejectWithoutClamping) {
  FaultPlan plan(ActiveConfig(), /*seed=*/99);
  EXPECT_EQ(plan.set_message_loss(-0.2).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(plan.set_agent_drop(1.5).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(plan.set_stale_probe(2.0).code(),
            StatusCode::kInvalidArgument);
  // The rejected values left the configured rates untouched.
  EXPECT_EQ(plan.config().message_loss, ActiveConfig().message_loss);
  EXPECT_EQ(plan.config().agent_drop, ActiveConfig().agent_drop);
  EXPECT_EQ(plan.config().stale_probe, ActiveConfig().stale_probe);
  // In-range updates apply.
  EXPECT_TRUE(plan.set_message_loss(0.0).ok());
  EXPECT_TRUE(plan.set_agent_drop(1.0).ok());
  EXPECT_EQ(plan.config().message_loss, 0.0);
  EXPECT_EQ(plan.config().agent_drop, 1.0);
}

TEST(FaultPlanTest, RetryPolicyValidation) {
  EXPECT_TRUE(RetryPolicy{}.Validate().ok());
  RetryPolicy bad;
  bad.max_attempts = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = RetryPolicy{};
  bad.backoff_base = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = RetryPolicy{};
  bad.hop_budget_factor = 0.5;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(FaultPlanTest, ZeroRatePlanLeavesOperatorBitIdentical) {
  Rng topo(11);
  const Graph graph = MakeBarabasiAlbert(80, 3, topo).value();
  SamplingOperatorOptions options;
  options.walk_length = 40;
  options.reset_length = 10;

  MessageMeter clean_meter;
  SamplingOperator clean(&graph, DegreeWeight(graph), Rng(42), &clean_meter,
                         options);
  MessageMeter faulty_meter;
  SamplingOperator faulty(&graph, DegreeWeight(graph), Rng(42), &faulty_meter,
                          options);
  FaultPlan zero_plan(FaultPlanConfig{}, /*seed=*/7);
  faulty.SetFaultPlan(&zero_plan);

  for (int batch = 0; batch < 3; ++batch) {
    const std::vector<NodeId> a = clean.SampleNodes(0, 25).value();
    const std::vector<NodeId> b = faulty.SampleNodes(0, 25).value();
    EXPECT_EQ(a, b) << "batch " << batch;
  }
  EXPECT_EQ(clean_meter.walk_hops(), faulty_meter.walk_hops());
  EXPECT_EQ(clean_meter.weight_probes(), faulty_meter.weight_probes());
  EXPECT_EQ(clean_meter.sample_transfers(), faulty_meter.sample_transfers());
  EXPECT_EQ(clean_meter.Total(), faulty_meter.Total());
  EXPECT_EQ(faulty_meter.retries(), 0u);
  EXPECT_EQ(faulty_meter.losses(), 0u);
  EXPECT_EQ(faulty_meter.agent_restarts(), 0u);
  EXPECT_EQ(zero_plan.losses_injected(), 0u);
  EXPECT_EQ(zero_plan.drops_injected(), 0u);
}

TEST(FaultPlanTest, ZeroRatePlanLeavesEngineEstimatesBitIdentical) {
  MemoryConfig config;
  config.num_units = 150;
  config.num_nodes = 100;
  auto clean_workload = MemoryWorkload::Create(config).value();
  auto faulty_workload = MemoryWorkload::Create(config).value();
  const ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(memory) FROM R",
                                  PrecisionSpec{2.0, 2.0, 0.95})
          .value();
  DigestEngineOptions options;
  options.sampler = SamplerKind::kTwoStageMcmc;
  options.sampling_options.walk_length = 40;
  options.sampling_options.reset_length = 10;

  RunResult clean =
      RunEngineExperiment(*clean_workload, spec, options, 60, 5).value();

  FaultPlan zero_plan(FaultPlanConfig{}, /*seed=*/99);
  options.fault_plan = &zero_plan;
  RunResult faulty =
      RunEngineExperiment(*faulty_workload, spec, options, 60, 5).value();

  // Same samples, same meter counts, same engine estimates as seed
  // behavior — exact double equality, not approximate.
  EXPECT_EQ(clean.reported, faulty.reported);
  EXPECT_EQ(clean.truth, faulty.truth);
  EXPECT_EQ(clean.meter.Total(), faulty.meter.Total());
  EXPECT_EQ(clean.meter.walk_hops(), faulty.meter.walk_hops());
  EXPECT_EQ(clean.meter.weight_probes(), faulty.meter.weight_probes());
  EXPECT_EQ(clean.stats.snapshots, faulty.stats.snapshots);
  EXPECT_EQ(clean.stats.total_samples, faulty.stats.total_samples);
  EXPECT_EQ(clean.stats.fresh_samples, faulty.stats.fresh_samples);
  EXPECT_EQ(faulty.stats.degraded_ticks, 0u);
  EXPECT_EQ(faulty.degraded_ticks, 0u);
}

TEST(FaultPlanTest, IdenticalSeedsReproduceIdenticalSchedules) {
  FaultPlan a(ActiveConfig(), 1234);
  FaultPlan b(ActiveConfig(), 1234);
  for (int64_t t = 0; t < 8; ++t) {
    a.set_now(t);
    b.set_now(t);
    for (NodeId node = 0; node < 64; ++node) {
      EXPECT_EQ(a.IsBlackholed(node), b.IsBlackholed(node))
          << "t=" << t << " node=" << node;
    }
    for (uint32_t k = 0; k < 200; ++k) {
      const NodeId from = k % 50;
      const NodeId to = (k * 7 + 1) % 50;
      EXPECT_EQ(a.LoseMessage(from, to), b.LoseMessage(from, to));
      EXPECT_EQ(a.DropAgent(), b.DropAgent());
      EXPECT_EQ(a.StaleProbe(), b.StaleProbe());
    }
  }
  EXPECT_EQ(a.losses_injected(), b.losses_injected());
  EXPECT_EQ(a.drops_injected(), b.drops_injected());
  EXPECT_EQ(a.stale_injected(), b.stale_injected());
  EXPECT_GT(a.losses_injected(), 0u);  // The schedule is non-trivial.
}

TEST(FaultPlanTest, DifferentSeedsDiverge) {
  FaultPlan a(ActiveConfig(), 1);
  FaultPlan b(ActiveConfig(), 2);
  bool diverged = false;
  for (uint32_t k = 0; k < 500 && !diverged; ++k) {
    diverged = a.LoseMessage(k % 30, (k + 1) % 30) !=
               b.LoseMessage(k % 30, (k + 1) % 30);
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultPlanTest, EdgeLossRatesAreDeterministicSymmetricAndBounded) {
  FaultPlanConfig config;
  config.message_loss = 0.2;
  config.edge_spread = 0.8;
  const FaultPlan plan(config, 77);
  const FaultPlan twin(config, 77);
  for (NodeId a = 0; a < 20; ++a) {
    for (NodeId b = a + 1; b < 20; ++b) {
      const double rate = plan.EdgeLossRate(a, b);
      EXPECT_EQ(rate, plan.EdgeLossRate(b, a));      // Symmetric.
      EXPECT_EQ(rate, plan.EdgeLossRate(a, b));      // No state consumed.
      EXPECT_EQ(rate, twin.EdgeLossRate(a, b));      // Seed-determined.
      EXPECT_GE(rate, 0.2 * (1.0 - 0.8) - 1e-12);
      EXPECT_LE(rate, 0.2 * (1.0 + 0.8) + 1e-12);
    }
  }
  // Heterogeneity is real: not all edges share one rate.
  EXPECT_NE(plan.EdgeLossRate(0, 1), plan.EdgeLossRate(2, 3));
}

TEST(FaultPlanTest, BlackholeWindowsMatchConfiguredShape) {
  FaultPlanConfig config;
  config.stall_fraction = 1.0;  // Every node stalls somewhere.
  config.stall_every = 10;
  config.stall_length = 3;
  FaultPlan plan(config, 5);
  for (NodeId node = 0; node < 32; ++node) {
    int stalled = 0;
    for (int64_t t = 0; t < 10; ++t) {
      plan.set_now(t);
      if (plan.IsBlackholed(node)) ++stalled;
    }
    EXPECT_EQ(stalled, 3) << "node " << node;
  }
  // With stall_fraction 0 nothing ever stalls.
  FaultPlan quiet(FaultPlanConfig{}, 5);
  for (int64_t t = 0; t < 10; ++t) {
    quiet.set_now(t);
    for (NodeId node = 0; node < 32; ++node) {
      EXPECT_FALSE(quiet.IsBlackholed(node));
    }
  }
}

TEST(FaultPlanTest, StallWindowShapeIsRejectedEvenWhenNobodyStalls) {
  // The window shape is validated UNCONDITIONALLY: stall_fraction 0
  // does not excuse an inverted window, because set_stall_fraction can
  // turn stalling on mid-run against whatever window is configured.
  FaultPlanConfig bad;
  ASSERT_EQ(bad.stall_fraction, 0.0);
  bad.stall_length = bad.stall_every;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = FaultPlanConfig{};
  bad.flap_length = bad.flap_every;  // Same rule for flap windows.
  ASSERT_EQ(bad.flap_fraction, 0.0);
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);

  // And the live setter can then enable stalling against the (valid)
  // configured window.
  FaultPlan plan(FaultPlanConfig{}, 3);
  EXPECT_EQ(plan.set_stall_fraction(1.5).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(plan.set_stall_fraction(1.0).ok());
  plan.set_now(0);
  int stalled = 0;
  for (int64_t t = 0; t < plan.config().stall_every; ++t) {
    plan.set_now(t);
    if (plan.IsBlackholed(4)) ++stalled;
  }
  EXPECT_EQ(stalled, plan.config().stall_length);
}

TEST(FaultPlanTest, PartitionConfigValidation) {
  FaultPlanConfig config;
  config.partition_every = 16;
  config.partition_length = 8;
  config.partition_components = 3;
  EXPECT_TRUE(config.Validate().ok());

  FaultPlanConfig bad = config;
  bad.partition_every = 0;  // Length without a schedule.
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = config;
  bad.partition_length = bad.partition_every;  // Never heals.
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = config;
  bad.partition_length = 0;  // Scheduled but never splits.
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = config;
  bad.partition_every = -4;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = config;
  bad.partition_components = 1;  // One component is no partition.
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(FaultPlanTest, PartitionEpisodesSplitHealAndCutDifferentSeams) {
  FaultPlanConfig config;
  config.partition_every = 10;
  config.partition_length = 4;
  config.partition_components = 2;
  config.agent_drop = 0.5;  // Gives the draw-purity check a real draw.
  FaultPlan plan(config, 21);
  FaultPlan twin(config, 21);

  // The window shape: active for the first 4 ticks of every 10.
  for (int64_t t = 0; t < 30; ++t) {
    plan.set_now(t);
    EXPECT_EQ(plan.PartitionActive(), t % 10 < 4) << "t=" << t;
    EXPECT_EQ(plan.PartitionEpisode(), static_cast<uint64_t>(t / 10));
  }

  // Component membership is a pure hash: stable across queries, equal
  // across same-seed twins, and both components are inhabited.
  plan.set_now(0);
  bool seen[2] = {false, false};
  for (NodeId node = 0; node < 64; ++node) {
    const uint64_t c = plan.PartitionComponent(node);
    ASSERT_LT(c, 2u);
    EXPECT_EQ(c, plan.PartitionComponent(node));
    seen[c] = true;
  }
  EXPECT_TRUE(seen[0] && seen[1]);

  // Successive episodes cut different seams: some node lands in a
  // different component in episode 1 than in episode 0.
  std::vector<uint64_t> episode0(64);
  for (NodeId node = 0; node < 64; ++node) {
    episode0[node] = plan.PartitionComponent(node);
  }
  plan.set_now(10);
  bool seam_moved = false;
  for (NodeId node = 0; node < 64 && !seam_moved; ++node) {
    seam_moved = plan.PartitionComponent(node) != episode0[node];
  }
  EXPECT_TRUE(seam_moved);

  // Cross-component messages are lost deterministically during the
  // window — no draw consumed — and carry again once healed.
  plan.set_now(0);
  NodeId in0 = kInvalidNode, in1 = kInvalidNode;
  for (NodeId node = 0; node < 64; ++node) {
    (plan.PartitionComponent(node) == 0 ? in0 : in1) = node;
  }
  ASSERT_NE(in0, kInvalidNode);
  ASSERT_NE(in1, kInvalidNode);
  EXPECT_TRUE(plan.CrossPartition(in0, in1));
  EXPECT_TRUE(plan.LoseMessage(in0, in1));
  EXPECT_FALSE(plan.CrossPartition(in0, in0));
  plan.set_now(4);  // Healed.
  EXPECT_FALSE(plan.CrossPartition(in0, in1));
  EXPECT_FALSE(plan.LoseMessage(in0, in1));  // No loss rate configured.
  // The deterministic losses never touched the draw stream: a twin that
  // skipped all the partition queries still agrees on the next draws.
  EXPECT_EQ(plan.DropAgent(), twin.DropAgent());
}

TEST(FaultPlanTest, FlappingLinksAreDeterministicWindowedAndSymmetric) {
  FaultPlanConfig config;
  config.flap_fraction = 1.0;  // Every link flaps somewhere.
  config.flap_every = 8;
  config.flap_length = 3;
  config.stale_probe = 0.5;  // Gives the draw-purity check a real draw.
  FaultPlan plan(config, 13);
  FaultPlan twin(config, 13);
  for (NodeId a = 0; a < 8; ++a) {
    for (NodeId b = a + 1; b < 8; ++b) {
      int dark = 0;
      for (int64_t t = 0; t < 8; ++t) {
        plan.set_now(t);
        const bool flapped = plan.LinkFlapped(a, b);
        EXPECT_EQ(flapped, plan.LinkFlapped(b, a)) << "symmetry";
        if (flapped) ++dark;
      }
      EXPECT_EQ(dark, 3) << "edge {" << a << "," << b << "}";
    }
  }
  // A dark link loses deterministically; a zero-fraction plan never
  // flaps at all.
  plan.set_now(0);
  bool found_dark = false;
  for (NodeId b = 1; b < 8 && !found_dark; ++b) {
    if (plan.LinkFlapped(0, b)) {
      found_dark = true;
      EXPECT_TRUE(plan.LoseMessage(0, b));
    }
  }
  FaultPlan quiet(FaultPlanConfig{}, 13);
  for (int64_t t = 0; t < 8; ++t) {
    quiet.set_now(t);
    EXPECT_FALSE(quiet.LinkFlapped(0, 1));
  }
  // Flap checks consume no draws either.
  EXPECT_EQ(plan.StaleProbe(), twin.StaleProbe());
}

TEST(FaultPlanTest, AsymmetricLossSkewsDirectionsOppositeWays) {
  FaultPlanConfig config;
  config.message_loss = 0.2;
  config.edge_spread = 0.3;
  config.loss_asymmetry = 0.5;
  const FaultPlan plan(config, 31);

  FaultPlanConfig symmetric = config;
  symmetric.loss_asymmetry = 0.0;
  const FaultPlan base_plan(symmetric, 31);

  for (NodeId a = 0; a < 16; ++a) {
    for (NodeId b = a + 1; b < 16; ++b) {
      const double base = plan.EdgeLossRate(a, b);
      const double ab = plan.DirectionalLossRate(a, b);
      const double ba = plan.DirectionalLossRate(b, a);
      // One direction is worse, the other better, by the same factor —
      // the skew redistributes loss, it does not add any.
      EXPECT_NE(ab, ba);
      EXPECT_NEAR(ab + ba, 2.0 * base, 1e-12);
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
      // With asymmetry 0 both directions answer exactly the edge rate.
      EXPECT_EQ(base_plan.DirectionalLossRate(a, b),
                base_plan.EdgeLossRate(a, b));
      EXPECT_EQ(base_plan.DirectionalLossRate(b, a),
                base_plan.EdgeLossRate(a, b));
    }
  }
}

TEST(FaultPlanTest, PartitionWindowsEmitPairedTraceEvents) {
  FaultPlanConfig config;
  config.partition_every = 6;
  config.partition_length = 2;
  config.partition_components = 2;
  FaultPlan plan(config, 9);
  obs::MemoryTracer tracer;
  plan.SetTracer(&tracer);

  for (int64_t t = 0; t < 14; ++t) plan.set_now(t);

  std::vector<std::string> events;
  for (const obs::TraceEvent& event : tracer.events()) {
    if (const auto* b =
            std::get_if<obs::PartitionBeginEvent>(&event.payload)) {
      EXPECT_EQ(b->components, 2u);
      EXPECT_EQ(b->length, 2);
      events.push_back("begin:" + std::to_string(b->episode));
    } else if (const auto* e = std::get_if<obs::PartitionEndEvent>(
                   &event.payload)) {
      events.push_back("end:" + std::to_string(e->episode));
    }
  }
  const std::vector<std::string> expected = {"begin:0", "end:0", "begin:1",
                                             "end:1", "begin:2"};
  EXPECT_EQ(events, expected);

  // A clock jump across episodes still closes the open window before
  // opening the next, so begin/end always pair up: t=13 is inside
  // episode 2's window, the jump to t=24 lands inside episode 4's (the
  // end:2 is emitted first), and t=40 is healed ground (40 mod 6 = 4).
  tracer.Clear();
  plan.set_now(24);
  plan.set_now(40);
  events.clear();
  for (const obs::TraceEvent& event : tracer.events()) {
    if (const auto* b =
            std::get_if<obs::PartitionBeginEvent>(&event.payload)) {
      events.push_back("begin:" + std::to_string(b->episode));
    } else if (const auto* e = std::get_if<obs::PartitionEndEvent>(
                   &event.payload)) {
      events.push_back("end:" + std::to_string(e->episode));
    }
  }
  EXPECT_EQ(events,
            (std::vector<std::string>{"end:2", "begin:4", "end:4"}));
}

TEST(FaultPlanTest, StaleWeightDistortionIsBoundedAndNonNegative) {
  FaultPlanConfig config;
  config.stale_probe = 1.0;
  config.stale_noise = 0.5;
  FaultPlan plan(config, 3);
  for (int i = 0; i < 200; ++i) {
    const double distorted = plan.DistortWeight(10.0);
    EXPECT_GE(distorted, 5.0 - 1e-9);
    EXPECT_LE(distorted, 15.0 + 1e-9);
  }
  const double still_zero = plan.DistortWeight(0.0);
  EXPECT_EQ(still_zero, 0.0);
}

}  // namespace
}  // namespace digest
