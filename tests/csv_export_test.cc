#include "workload/csv_export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace digest {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CsvExportTest, RunResultSeries) {
  RunResult result;
  result.reported = {1.0, 2.5};
  result.truth = {1.5, 2.5};
  const std::string path = TempPath("run.csv");
  ASSERT_TRUE(WriteRunResultCsv(result, path).ok());
  const std::string content = Slurp(path);
  EXPECT_EQ(content,
            "tick,reported,truth,abs_error\n"
            "0,1,1.5,0.5\n"
            "1,2.5,2.5,0\n");
  std::remove(path.c_str());
}

TEST(CsvExportTest, RunResultRejectsMisaligned) {
  RunResult result;
  result.reported = {1.0};
  result.truth = {1.0, 2.0};
  EXPECT_FALSE(WriteRunResultCsv(result, TempPath("bad.csv")).ok());
}

TEST(CsvExportTest, RejectsUnwritablePath) {
  RunResult result;
  result.reported = {1.0};
  result.truth = {1.0};
  EXPECT_EQ(
      WriteRunResultCsv(result, "/nonexistent-dir/x.csv").code(),
      StatusCode::kUnavailable);
}

TEST(CsvExportTest, TableWithQuoting) {
  const std::string path = TempPath("table.csv");
  ASSERT_TRUE(WriteTableCsv({"name", "note"},
                            {{"plain", "hello"},
                             {"with,comma", "with\"quote"}},
                            path)
                  .ok());
  const std::string content = Slurp(path);
  EXPECT_EQ(content,
            "name,note\n"
            "plain,hello\n"
            "\"with,comma\",\"with\"\"quote\"\n");
  std::remove(path.c_str());
}

TEST(CsvExportTest, TableValidation) {
  EXPECT_FALSE(WriteTableCsv({}, {}, TempPath("t.csv")).ok());
  EXPECT_FALSE(
      WriteTableCsv({"a", "b"}, {{"only-one"}}, TempPath("t.csv")).ok());
}

}  // namespace
}  // namespace digest
