// Tests of the MEDIAN aggregate extension (quantile estimation by order
// statistics; ε is a rank tolerance).
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "core/snapshot_estimator.h"
#include "baselines/push_sum.h"
#include "baselines/tree_aggregation.h"
#include "net/topology.h"

namespace digest {
namespace {

struct Fixture {
  Graph graph;
  std::unique_ptr<P2PDatabase> db;

  // A right-skewed population: median well below the mean, so a mean
  // estimator could not fake the answer.
  explicit Fixture(size_t per_node = 200, uint64_t seed = 1) {
    graph = MakeComplete(6).value();
    db = std::make_unique<P2PDatabase>(Schema::Create({"v"}).value());
    Rng rng(seed);
    for (NodeId node : graph.LiveNodes()) {
      EXPECT_TRUE(db->AddNode(node).ok());
      for (size_t i = 0; i < per_node; ++i) {
        const double v = std::exp(rng.NextGaussian(2.0, 0.8));
        db->StoreAt(node).value()->Insert({v});
      }
    }
  }
};

TEST(MedianParseTest, MedianQueriesParse) {
  Result<AggregateQuery> q =
      AggregateQuery::Parse("SELECT MEDIAN(v) FROM R");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->op, AggregateOp::kMedian);
  EXPECT_STREQ(AggregateOpName(AggregateOp::kMedian), "MEDIAN");
  EXPECT_TRUE(
      AggregateQuery::Parse("select median(v) from R where v > 2").ok());
}

TEST(MedianOracleTest, ExactLowerMedian) {
  Graph graph = MakeComplete(3).value();
  P2PDatabase db(Schema::Create({"v"}).value());
  for (NodeId node : graph.LiveNodes()) ASSERT_TRUE(db.AddNode(node).ok());
  for (double v : {5.0, 1.0, 9.0, 3.0, 7.0}) {
    db.StoreAt(0).value()->Insert({v});
  }
  AggregateQuery q = AggregateQuery::Parse("SELECT MEDIAN(v) FROM R").value();
  EXPECT_DOUBLE_EQ(db.ExactAggregate(q).value(), 5.0);
  // Even count: the lower median.
  db.StoreAt(1).value()->Insert({2.0});
  EXPECT_DOUBLE_EQ(db.ExactAggregate(q).value(), 3.0);
  // With a predicate.
  AggregateQuery qp =
      AggregateQuery::Parse("SELECT MEDIAN(v) FROM R WHERE v >= 5").value();
  EXPECT_DOUBLE_EQ(db.ExactAggregate(qp).value(), 7.0);
  // Empty qualifying set fails.
  AggregateQuery qe =
      AggregateQuery::Parse("SELECT MEDIAN(v) FROM R WHERE v > 99").value();
  EXPECT_FALSE(db.ExactAggregate(qe).ok());
}

TEST(MedianEstimatorTest, RankGuaranteeHolds) {
  Fixture f;
  // epsilon = 0.05 rank tolerance at p = 0.95: the estimate must lie
  // between the true 0.45- and 0.55-quantiles almost always.
  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT MEDIAN(v) FROM R",
                                  PrecisionSpec{0.0, 0.05, 0.95})
          .value();
  // True quantile band from the oracle values.
  std::vector<double> values;
  for (NodeId node : f.db->Nodes()) {
    f.db->StoreAt(node).value()->ForEach(
        [&](LocalTupleId, const Tuple& t) { values.push_back(t[0]); });
  }
  std::sort(values.begin(), values.end());
  const double lo = values[static_cast<size_t>(0.45 * values.size())];
  const double hi = values[static_cast<size_t>(0.55 * values.size())];

  ExactTupleSampler sampler(f.db.get(), Rng(2), nullptr);
  ExactSampleSource source(&sampler);
  int within = 0;
  const int trials = 30;
  for (int i = 0; i < trials; ++i) {
    IndependentEstimator est(spec, f.db.get(), &source, nullptr, nullptr,
                             Rng(100 + i));
    Result<SnapshotEstimate> e = est.Evaluate(0);
    ASSERT_TRUE(e.ok()) << e.status();
    if (e->value >= lo && e->value <= hi) ++within;
  }
  EXPECT_GE(within, trials * 85 / 100);
}

TEST(MedianEstimatorTest, MedianDiffersFromMeanOnSkewedData) {
  Fixture f;
  ContinuousQuerySpec median_spec =
      ContinuousQuerySpec::Create("SELECT MEDIAN(v) FROM R",
                                  PrecisionSpec{0.0, 0.05, 0.95})
          .value();
  ExactTupleSampler sampler(f.db.get(), Rng(3), nullptr);
  ExactSampleSource source(&sampler);
  IndependentEstimator est(median_spec, f.db.get(), &source, nullptr,
                           nullptr, Rng(4));
  Result<SnapshotEstimate> e = est.Evaluate(0);
  ASSERT_TRUE(e.ok());
  AggregateQuery avg_q = AggregateQuery::Parse("SELECT AVG(v) FROM R").value();
  const double mean = f.db->ExactAggregate(avg_q).value();
  // Lognormal: mean = exp(mu + s^2/2) > median = exp(mu).
  EXPECT_LT(e->value, mean * 0.9);
}

TEST(MedianEstimatorTest, RejectsValueSpaceEpsilon) {
  Fixture f(50);
  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT MEDIAN(v) FROM R",
                                  PrecisionSpec{0.0, 2.0, 0.95})
          .value();  // epsilon 2.0 is not a rank in (0, 0.5).
  ExactTupleSampler sampler(f.db.get(), Rng(5), nullptr);
  ExactSampleSource source(&sampler);
  IndependentEstimator est(spec, f.db.get(), &source, nullptr, nullptr,
                           Rng(6));
  EXPECT_EQ(est.Evaluate(0).status().code(), StatusCode::kInvalidArgument);
}

TEST(MedianEngineTest, ContinuousMedianEndToEnd) {
  Fixture f;
  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT MEDIAN(v) FROM R",
                                  PrecisionSpec{0.5, 0.05, 0.95})
          .value();
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kAll;
  options.estimator = EstimatorKind::kRepeated;  // Delegates to INDEP.
  options.sampler = SamplerKind::kExactCentral;
  auto engine = DigestEngine::Create(&f.graph, f.db.get(), spec, 0, Rng(7),
                                     nullptr, options)
                    .value();
  Result<EngineTickResult> r = engine->Tick(1);
  ASSERT_TRUE(r.ok()) << r.status();
  AggregateQuery q = spec.query;
  const double truth = f.db->ExactAggregate(q).value();
  EXPECT_NEAR(r->reported_value, truth, 0.15 * truth);
  EXPECT_EQ(engine->stats().retained_samples, 0u);  // Always fresh.
}

TEST(MedianBaselineTest, InNetworkBaselinesRejectMedian) {
  Fixture f(20);
  AggregateQuery q = AggregateQuery::Parse("SELECT MEDIAN(v) FROM R").value();
  PushSumAggregator gossip(&f.graph, f.db.get(), q, 0, nullptr, Rng(8));
  EXPECT_EQ(gossip.Run().status().code(), StatusCode::kInvalidArgument);
  TreeAggregator tree(&f.graph, f.db.get(), q, 0, nullptr);
  EXPECT_EQ(tree.Tick().status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace digest
