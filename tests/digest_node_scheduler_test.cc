// Multi-query DigestNode runtime: shared-snapshot scheduling. Admission
// control, tightest-ε-first coalescing over one shared walk batch,
// per-query lane traces and meter attribution, and whole-node
// checkpoint/restore bit-identity (including across thread counts).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/digest_node.h"
#include "core/query_scheduler.h"
#include "net/topology.h"
#include "obs/tracer.h"

namespace digest {
namespace {

struct Fixture {
  Graph graph;
  std::unique_ptr<P2PDatabase> db;

  Fixture() {
    Rng topo(1);
    graph = MakeBarabasiAlbert(30, 3, topo).value();
    db = std::make_unique<P2PDatabase>(
        Schema::Create({"cpu", "memory"}).value());
    Rng data(2);
    for (NodeId node : graph.LiveNodes()) {
      EXPECT_TRUE(db->AddNode(node).ok());
      for (int i = 0; i < 20; ++i) {
        db->StoreAt(node).value()->Insert(
            {data.NextGaussian(4.0, 1.0), data.NextGaussian(16.0, 4.0)});
      }
    }
  }
};

ContinuousQuerySpec Spec(const char* text, double eps) {
  return ContinuousQuerySpec::Create(text, PrecisionSpec{0.5, eps, 0.95})
      .value();
}

DigestEngineOptions FastOptions() {
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kAll;
  options.estimator = EstimatorKind::kIndependent;
  options.sampler = SamplerKind::kTwoStageMcmc;
  options.sampling_options.walk_length = 40;
  options.sampling_options.reset_length = 10;
  return options;
}

TEST(QuerySchedulerTest, PlanOrdersDueByEpsilonThenId) {
  QueryScheduler sched;
  ASSERT_TRUE(sched.Register(1, 2.0).ok());
  ASSERT_TRUE(sched.Register(2, 0.5).ok());
  ASSERT_TRUE(sched.Register(3, 2.0).ok());
  ASSERT_TRUE(sched.Register(4, 1.0).ok());
  EXPECT_EQ(sched.Register(2, 0.7).code(), StatusCode::kAlreadyExists);

  auto plan = sched.Plan([](QueryId id) { return id != 4; });
  // Tightest ε first, ties by id; idle queries by id.
  ASSERT_EQ(plan.due.size(), 3u);
  EXPECT_EQ(plan.due[0], 2u);
  EXPECT_EQ(plan.due[1], 1u);
  EXPECT_EQ(plan.due[2], 3u);
  ASSERT_EQ(plan.idle.size(), 1u);
  EXPECT_EQ(plan.idle[0], 4u);
}

TEST(QuerySchedulerTest, RecordTickAccumulatesPerQuery) {
  QueryScheduler sched;
  ASSERT_TRUE(sched.Register(7, 1.0).ok());
  sched.RecordTick(7, 120, /*snapshot=*/true, /*coalesced=*/true);
  sched.RecordTick(7, 5, /*snapshot=*/false, /*coalesced=*/false);
  const QueryCost* cost = sched.Cost(7);
  ASSERT_NE(cost, nullptr);
  EXPECT_EQ(cost->ticks, 2u);
  EXPECT_EQ(cost->snapshots, 1u);
  EXPECT_EQ(cost->coalesced, 1u);
  EXPECT_EQ(cost->messages, 125u);
  EXPECT_EQ(sched.Cost(9), nullptr);
}

TEST(DigestNodeSchedulerTest, AdmissionCapEnforced) {
  Fixture f;
  DigestNodeOptions node_options;
  node_options.max_queries = 2;
  auto node = DigestNode::Create(&f.graph, f.db.get(), 0, Rng(3), nullptr,
                                 FastOptions(), node_options)
                  .value();
  const QueryId q1 =
      node->IssueQuery(Spec("SELECT AVG(cpu) FROM R", 1.0)).value();
  ASSERT_TRUE(node->IssueQuery(Spec("SELECT AVG(memory) FROM R", 1.0)).ok());
  EXPECT_EQ(node->IssueQuery(Spec("SELECT AVG(cpu) FROM R", 2.0))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  // Cancelling frees capacity.
  ASSERT_TRUE(node->CancelQuery(q1).ok());
  EXPECT_TRUE(node->IssueQuery(Spec("SELECT AVG(cpu) FROM R", 2.0)).ok());
}

TEST(DigestNodeSchedulerTest, CoalescingCutsSharedTickCost) {
  // Four same-ε queries all due every tick (kAll): with coalescing the
  // tightest-first query pays for the batch and the rest ride its
  // prefix; the warm-pool-only ablation pays per query.
  Fixture f;
  uint64_t cost[2] = {0, 0};
  for (int mode = 0; mode < 2; ++mode) {
    MessageMeter meter;
    DigestNodeOptions node_options;
    node_options.coalesce_snapshots = (mode == 0);
    auto node = DigestNode::Create(&f.graph, f.db.get(), 0, Rng(4), &meter,
                                   FastOptions(), node_options)
                    .value();
    for (int q = 0; q < 4; ++q) {
      ASSERT_TRUE(
          node->IssueQuery(Spec("SELECT AVG(cpu) FROM R", 1.0)).ok());
    }
    for (int64_t t = 1; t <= 5; ++t) ASSERT_TRUE(node->Tick(t).ok());
    cost[mode] = meter.Total();
    if (mode == 0) {
      EXPECT_EQ(node->coalesced_ticks(), 5u);
    } else {
      EXPECT_EQ(node->coalesced_ticks(), 0u);
    }
  }
  // The shared batch must be clearly cheaper than four private ones.
  EXPECT_LT(cost[0], (3 * cost[1]) / 4);
}

TEST(DigestNodeSchedulerTest, AttributionReconcilesWithMeter) {
  Fixture f;
  MessageMeter meter;
  auto node = DigestNode::Create(&f.graph, f.db.get(), 0, Rng(5), &meter,
                                 FastOptions())
                  .value();
  const QueryId q1 =
      node->IssueQuery(Spec("SELECT AVG(cpu) FROM R", 0.5)).value();
  const QueryId q2 =
      node->IssueQuery(Spec("SELECT AVG(memory) FROM R", 2.0)).value();
  for (int64_t t = 1; t <= 4; ++t) ASSERT_TRUE(node->Tick(t).ok());
  const QueryCost c1 = node->query_cost(q1).value();
  const QueryCost c2 = node->query_cost(q2).value();
  // Every metered message is attributed to exactly one query.
  EXPECT_EQ(c1.messages + c2.messages, meter.Total());
  EXPECT_EQ(c1.ticks, 4u);
  EXPECT_EQ(c2.ticks, 4u);
  EXPECT_GT(c1.snapshots, 0u);
  // The tight query sizes the shared batch; the loose one rides it.
  EXPECT_GT(c1.messages, c2.messages);
  EXPECT_EQ(node->query_cost(999).status().code(), StatusCode::kNotFound);
}

TEST(DigestNodeSchedulerTest, TraceLanesSeparateQueries) {
  Fixture f;
  obs::MemoryTracer tracer;
  DigestEngineOptions options = FastOptions();
  options.tracer = &tracer;
  auto node = DigestNode::Create(&f.graph, f.db.get(), 0, Rng(6), nullptr,
                                 options)
                  .value();
  const QueryId q1 =
      node->IssueQuery(Spec("SELECT AVG(cpu) FROM R", 1.0)).value();
  const QueryId q2 =
      node->IssueQuery(Spec("SELECT AVG(memory) FROM R", 1.0)).value();
  for (int64_t t = 1; t <= 3; ++t) ASSERT_TRUE(node->Tick(t).ok());

  size_t coalesced_events = 0;
  std::map<int64_t, size_t> lane_events;
  for (const obs::TraceEvent& ev : tracer.events()) {
    if (std::strcmp(obs::EventName(ev.payload), "snapshot_coalesced") ==
        0) {
      ++coalesced_events;
      // Node-level events are unlaned; no single query owns the batch.
      EXPECT_EQ(ev.lane, -1);
      const auto& payload =
          std::get<obs::SnapshotCoalescedEvent>(ev.payload);
      EXPECT_EQ(payload.queries, 2u);
      EXPECT_GE(payload.consumed_samples, payload.shared_samples);
    }
    if (std::strcmp(obs::EventName(ev.payload), "tick") == 0) {
      ASSERT_GE(ev.lane, 0);
      ++lane_events[ev.lane];
    }
  }
  EXPECT_EQ(coalesced_events, 3u);
  // One tick event per query per tick, on that query's lane.
  EXPECT_EQ(lane_events[static_cast<int64_t>(q1)], 3u);
  EXPECT_EQ(lane_events[static_cast<int64_t>(q2)], 3u);
}

// Runs `ticks` ticks from `from + 1`, appending each tick's per-query
// (reported, ci) pairs for bit-exact comparison.
std::vector<std::pair<double, double>> Drive(DigestNode* node, int64_t from,
                                             int64_t ticks) {
  std::vector<std::pair<double, double>> out;
  for (int64_t t = from + 1; t <= from + ticks; ++t) {
    auto results = node->Tick(t).value();
    for (const auto& [id, r] : results) {
      out.emplace_back(r.reported_value, r.ci_halfwidth);
    }
  }
  return out;
}

TEST(DigestNodeSchedulerTest, CheckpointRestoreBitIdentical) {
  Fixture f;
  MessageMeter meter_a, meter_b;
  auto make_node = [&](MessageMeter* meter) {
    auto node = DigestNode::Create(&f.graph, f.db.get(), 0, Rng(7), meter,
                                   FastOptions())
                    .value();
    EXPECT_TRUE(
        node->IssueQuery(Spec("SELECT AVG(cpu) FROM R", 0.5)).ok());
    EXPECT_TRUE(
        node->IssueQuery(Spec("SELECT AVG(memory) FROM R", 1.5)).ok());
    return node;
  };
  auto a = make_node(&meter_a);
  Drive(a.get(), 0, 3);
  const std::string blob = a->Checkpoint().value();
  const auto tail_a = Drive(a.get(), 3, 4);

  // An identically constructed node resumes from the blob and replays
  // the exact same tail: values, CIs, meter, and attribution.
  auto b = make_node(&meter_b);
  ASSERT_TRUE(b->Restore(blob).ok());
  const auto tail_b = Drive(b.get(), 3, 4);
  ASSERT_EQ(tail_a.size(), tail_b.size());
  for (size_t i = 0; i < tail_a.size(); ++i) {
    EXPECT_EQ(tail_a[i].first, tail_b[i].first) << "entry " << i;
    EXPECT_EQ(tail_a[i].second, tail_b[i].second) << "entry " << i;
  }
  EXPECT_EQ(meter_a.Total(), meter_b.Total());
  EXPECT_EQ(a->coalesced_ticks(), b->coalesced_ticks());
  for (QueryId id : {QueryId{1}, QueryId{2}}) {
    const QueryCost ca = a->query_cost(id).value();
    const QueryCost cb = b->query_cost(id).value();
    EXPECT_EQ(ca.messages, cb.messages) << "query " << id;
    EXPECT_EQ(ca.snapshots, cb.snapshots) << "query " << id;
    EXPECT_EQ(ca.coalesced, cb.coalesced) << "query " << id;
  }
}

TEST(DigestNodeSchedulerTest, CheckpointRestoreAcrossThreadCounts) {
  // A blob cut from a single-threaded node restores into a 4-thread
  // node (same seed/queries) and the tails stay bit-identical: lanes
  // and substreams are walk-indexed, never thread-indexed.
  Fixture f;
  MessageMeter meter_a, meter_b;
  auto make_node = [&](MessageMeter* meter, size_t threads) {
    DigestEngineOptions options = FastOptions();
    options.num_threads = threads;
    auto node = DigestNode::Create(&f.graph, f.db.get(), 0, Rng(8), meter,
                                   options)
                    .value();
    EXPECT_TRUE(
        node->IssueQuery(Spec("SELECT AVG(cpu) FROM R", 0.7)).ok());
    EXPECT_TRUE(
        node->IssueQuery(Spec("SELECT AVG(memory) FROM R", 1.0)).ok());
    return node;
  };
  auto a = make_node(&meter_a, 1);
  Drive(a.get(), 0, 2);
  const std::string blob = a->Checkpoint().value();
  const auto tail_a = Drive(a.get(), 2, 3);

  auto b = make_node(&meter_b, 4);
  ASSERT_TRUE(b->Restore(blob).ok());
  const auto tail_b = Drive(b.get(), 2, 3);
  ASSERT_EQ(tail_a.size(), tail_b.size());
  for (size_t i = 0; i < tail_a.size(); ++i) {
    EXPECT_EQ(tail_a[i].first, tail_b[i].first) << "entry " << i;
    EXPECT_EQ(tail_a[i].second, tail_b[i].second) << "entry " << i;
  }
  EXPECT_EQ(meter_a.Total(), meter_b.Total());
}

TEST(DigestNodeSchedulerTest, RestoreRejectsMismatches) {
  Fixture f;
  auto node = DigestNode::Create(&f.graph, f.db.get(), 0, Rng(9), nullptr,
                                 FastOptions())
                  .value();
  ASSERT_TRUE(node->IssueQuery(Spec("SELECT AVG(cpu) FROM R", 1.0)).ok());
  ASSERT_TRUE(node->Tick(1).ok());
  const std::string blob = node->Checkpoint().value();

  // Different query registry: one extra query.
  auto extra = DigestNode::Create(&f.graph, f.db.get(), 0, Rng(9), nullptr,
                                  FastOptions())
                   .value();
  ASSERT_TRUE(extra->IssueQuery(Spec("SELECT AVG(cpu) FROM R", 1.0)).ok());
  ASSERT_TRUE(
      extra->IssueQuery(Spec("SELECT AVG(memory) FROM R", 1.0)).ok());
  EXPECT_EQ(extra->Restore(blob).code(), StatusCode::kInvalidArgument);

  // Different coalescing topology.
  DigestNodeOptions ablation;
  ablation.coalesce_snapshots = false;
  auto warm = DigestNode::Create(&f.graph, f.db.get(), 0, Rng(9), nullptr,
                                 FastOptions(), ablation)
                  .value();
  ASSERT_TRUE(warm->IssueQuery(Spec("SELECT AVG(cpu) FROM R", 1.0)).ok());
  EXPECT_EQ(warm->Restore(blob).code(), StatusCode::kInvalidArgument);

  // Garbage and wrong versions leave the node untouched.
  EXPECT_FALSE(node->Restore("not json").ok());
  EXPECT_EQ(node->Restore(R"({"version":"digest-node-checkpoint-v999"})")
                .code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(node->Tick(2).ok());
}

TEST(DigestNodeSchedulerTest, WarmPoolAblationStillWorks) {
  // coalesce_snapshots = false reproduces the previous per-engine
  // sampler behavior: correct answers, no coalesced ticks.
  Fixture f;
  DigestNodeOptions ablation;
  ablation.coalesce_snapshots = false;
  auto node = DigestNode::Create(&f.graph, f.db.get(), 0, Rng(10), nullptr,
                                 FastOptions(), ablation)
                  .value();
  const QueryId id =
      node->IssueQuery(Spec("SELECT AVG(cpu) FROM R", 0.5)).value();
  for (int64_t t = 1; t <= 3; ++t) ASSERT_TRUE(node->Tick(t).ok());
  EXPECT_NEAR(node->engine(id).value()->reported_value(), 4.0, 0.7);
  EXPECT_EQ(node->coalesced_ticks(), 0u);
}

}  // namespace
}  // namespace digest
