#include "sampling/random_walk.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "sampling/metropolis.h"

namespace digest {
namespace {

TEST(RandomWalkTest, StaysOnLiveNodes) {
  Rng rng(1);
  Result<Graph> g = MakeBarabasiAlbert(30, 2, rng);
  ASSERT_TRUE(g.ok());
  RandomWalk walk(0);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(walk.Step(*g, UniformWeight(), rng, nullptr, 0).ok());
    ASSERT_TRUE(g->HasNode(walk.current()));
  }
}

TEST(RandomWalkTest, MovesOnlyAlongEdges) {
  Rng rng(2);
  Result<Graph> g = MakeRing(10);
  ASSERT_TRUE(g.ok());
  RandomWalk walk(3);
  NodeId prev = walk.current();
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(walk.Step(*g, UniformWeight(), rng, nullptr, 3).ok());
    const NodeId cur = walk.current();
    EXPECT_TRUE(cur == prev || g->HasEdge(prev, cur));
    prev = cur;
  }
}

TEST(RandomWalkTest, MeterCountsProbesAndHops) {
  Rng rng(3);
  Result<Graph> g = MakeComplete(8);
  ASSERT_TRUE(g.ok());
  MessageMeter meter;
  RandomWalk walk(0);
  const size_t steps = 1000;
  ASSERT_TRUE(
      walk.Advance(*g, UniformWeight(), rng, &meter, 0, steps).ok());
  // Lazy half the time: ~500 proposals, all accepted on a complete graph
  // with uniform weights.
  EXPECT_NEAR(static_cast<double>(meter.weight_probes()), 500.0, 100.0);
  EXPECT_EQ(meter.walk_hops(), meter.weight_probes());
  EXPECT_EQ(meter.Total(), meter.walk_hops() + meter.weight_probes());
}

TEST(RandomWalkTest, RejectionsReduceHopsBelowProbes) {
  Rng rng(4);
  Result<Graph> g = MakeComplete(8);
  ASSERT_TRUE(g.ok());
  // Sharply nonuniform weight: many proposals get rejected.
  WeightFn weight = [](NodeId v) { return v == 0 ? 100.0 : 1.0; };
  MessageMeter meter;
  RandomWalk walk(0);
  ASSERT_TRUE(walk.Advance(*g, weight, rng, &meter, 0, 2000).ok());
  EXPECT_LT(meter.walk_hops(), meter.weight_probes());
}

TEST(RandomWalkTest, RestartsFromFallbackAfterCurrentNodeLeaves) {
  Rng rng(5);
  Result<Graph> g = MakeComplete(6);
  ASSERT_TRUE(g.ok());
  RandomWalk walk(2);
  // Remove the node under the agent.
  ASSERT_TRUE(g->RemoveNode(2).ok());
  ASSERT_TRUE(walk.Step(*g, UniformWeight(), rng, nullptr, 4).ok());
  ASSERT_TRUE(g->HasNode(walk.current()));
}

TEST(RandomWalkTest, FailsWhenFallbackAlsoDead) {
  Rng rng(6);
  Result<Graph> g = MakeComplete(4);
  ASSERT_TRUE(g.ok());
  RandomWalk walk(1);
  ASSERT_TRUE(g->RemoveNode(1).ok());
  ASSERT_TRUE(g->RemoveNode(2).ok());
  EXPECT_EQ(walk.Step(*g, UniformWeight(), rng, nullptr, 2).code(),
            StatusCode::kUnavailable);
}

TEST(RandomWalkTest, IsolatedNodeStays) {
  Rng rng(7);
  Graph g;
  g.AddNode();
  RandomWalk walk(0);
  ASSERT_TRUE(walk.Step(g, UniformWeight(), rng, nullptr, 0).ok());
  EXPECT_EQ(walk.current(), 0u);
}

TEST(RandomWalkTest, LongRunVisitsMatchTargetDistribution) {
  // Empirical occupancy of a single long walk vs the Metropolis target
  // (ergodic theorem), on an irregular graph with nonuniform weights.
  Rng rng(8);
  Result<Graph> g = MakeBarabasiAlbert(12, 2, rng);
  ASSERT_TRUE(g.ok());
  WeightFn weight = [](NodeId v) { return 1.0 + (v % 4); };
  Result<ForwardingMatrix> fm = BuildForwardingMatrix(*g, weight);
  ASSERT_TRUE(fm.ok());

  RandomWalk walk(0);
  std::vector<double> visits(g->NextId(), 0.0);
  const int warmup = 2000;
  const int steps = 300000;
  ASSERT_TRUE(walk.Advance(*g, weight, rng, nullptr, 0, warmup).ok());
  for (int i = 0; i < steps; ++i) {
    ASSERT_TRUE(walk.Step(*g, weight, rng, nullptr, 0).ok());
    visits[walk.current()] += 1.0;
  }
  std::vector<double> empirical(fm->nodes.size());
  for (size_t r = 0; r < fm->nodes.size(); ++r) {
    empirical[r] = visits[fm->nodes[r]] / steps;
  }
  Result<double> tv = TotalVariationDistance(empirical, fm->pi);
  ASSERT_TRUE(tv.ok());
  EXPECT_LT(*tv, 0.02);
}

}  // namespace
}  // namespace digest
