// Hedged walks under the parallel executor: straggler detection
// (against the threshold frozen at batch start), donor-fork selection,
// the virtual-time race, and hedge-win accounting must all resolve
// identically for any thread count — the walk_hedged trace lines, the
// hedge meter categories, and the per-walk hedge telemetry are compared
// bit-for-bit across num_threads in {1, 2, 4, 8}. Runs under
// ThreadSanitizer in CI (DIGEST_SANITIZE=thread).
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "db/p2p_database.h"
#include "net/fault_plan.h"
#include "net/message_meter.h"
#include "net/topology.h"
#include "numeric/rng.h"
#include "obs/exporters.h"
#include "obs/tracer.h"
#include "sampling/sampling_operator.h"
#include "sampling/weight.h"
#include "workload/workload.h"

namespace digest {
namespace {

/// Static-membership AR(1) workload, same shape as the other stress
/// batteries.
class StaticDriftWorkload : public Workload {
 public:
  static constexpr size_t kTuplesPerNode = 8;

  StaticDriftWorkload(Graph graph, uint64_t seed)
      : graph_(std::move(graph)),
        rng_(seed),
        db_(std::make_unique<P2PDatabase>(
            Schema::Create({"load"}).value())) {
    for (NodeId node : graph_.LiveNodes()) {
      (void)db_->AddNode(node);
      LocalStore* store = db_->StoreAt(node).value();
      for (size_t i = 0; i < kTuplesPerNode; ++i) {
        Entry entry;
        entry.node = node;
        entry.value = rng_.NextGaussian(50.0, 10.0);
        entry.id = store->Insert({entry.value});
        entries_.push_back(entry);
      }
    }
  }

  Graph& graph() override { return graph_; }
  const Graph& graph() const override { return graph_; }
  P2PDatabase& db() override { return *db_; }
  const P2PDatabase& db() const override { return *db_; }
  const char* attribute() const override { return "load"; }
  int64_t now() const override { return now_; }

  Status Advance() override {
    ++now_;
    for (Entry& entry : entries_) {
      entry.value =
          50.0 + 0.8 * (entry.value - 50.0) + rng_.NextGaussian(0.0, 2.0);
      DIGEST_ASSIGN_OR_RETURN(LocalStore * store, db_->StoreAt(entry.node));
      DIGEST_RETURN_IF_ERROR(
          store->UpdateAttribute(entry.id, 0, entry.value));
    }
    return Status::OK();
  }

 private:
  struct Entry {
    NodeId node = kInvalidNode;
    LocalTupleId id = 0;
    double value = 0.0;
  };

  Graph graph_;
  Rng rng_;
  std::unique_ptr<P2PDatabase> db_;
  std::vector<Entry> entries_;
  int64_t now_ = 0;
};

constexpr uint64_t kWorkloadSeed = 777;
constexpr uint64_t kFaultSeed = 4242;
constexpr uint64_t kEngineSeed = 11;

FaultPlanConfig HeavyStallFaults() {
  FaultPlanConfig faults;
  faults.message_loss = 0.10;
  faults.stall_fraction = 0.3;
  faults.stall_every = 6;
  faults.stall_length = 3;
  return faults;
}

struct HedgeRun {
  uint64_t hedge_launches = 0;
  uint64_t hedged_duplicates = 0;
  std::vector<double> reported;
  std::vector<std::string> trace;        ///< All events, normalized.
  std::vector<std::string> hedge_lines;  ///< walk_hedged lines only.
};

/// Drives a heavy-stall hedged session and extracts everything the
/// hedge subsystem observably produces.
Result<HedgeRun> DriveHedged(size_t num_threads) {
  StaticDriftWorkload workload(MakeMesh(8, 8).value(), kWorkloadSeed);
  DIGEST_ASSIGN_OR_RETURN(
      const ContinuousQuerySpec spec,
      ContinuousQuerySpec::Create("SELECT AVG(load) FROM R",
                                  PrecisionSpec{1.0, 4.0, 0.9}));
  FaultPlanConfig faults = HeavyStallFaults();
  DIGEST_RETURN_IF_ERROR(faults.Validate());
  FaultPlan plan(faults, kFaultSeed);
  obs::MemoryTracer tracer;
  plan.SetTracer(&tracer);

  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kAll;
  options.estimator = EstimatorKind::kRepeated;
  options.num_threads = num_threads;
  options.sampling_options.walk_length = 16;
  options.sampling_options.reset_length = 4;
  options.sampling_options.hedge.enabled = true;
  options.fault_plan = &plan;
  options.tracer = &tracer;

  HedgeRun out;
  MessageMeter meter;
  Rng rng(kEngineSeed);
  DIGEST_ASSIGN_OR_RETURN(NodeId querying,
                          workload.graph().RandomLiveNode(rng));
  workload.ProtectNode(querying);
  DIGEST_ASSIGN_OR_RETURN(
      std::unique_ptr<DigestEngine> engine,
      DigestEngine::Create(&workload.graph(), &workload.db(), spec,
                           querying, rng.Fork(), &meter, options));
  for (size_t t = 0; t < 30; ++t) {
    DIGEST_RETURN_IF_ERROR(workload.Advance());
    plan.set_now(workload.now());
    DIGEST_ASSIGN_OR_RETURN(EngineTickResult tick,
                            engine->Tick(workload.now()));
    out.reported.push_back(tick.reported_value);
  }
  out.hedge_launches = meter.hedge_launches();
  out.hedged_duplicates = meter.hedged_duplicates();
  for (const obs::TraceEvent& event : tracer.events()) {
    const std::string line = obs::EventToJsonLine(event);
    const std::string normalized = line.substr(line.find(",\"t\":"));
    out.trace.push_back(normalized);
    if (normalized.find("\"event\":\"walk_hedged\"") != std::string::npos) {
      out.hedge_lines.push_back(normalized);
    }
  }
  return out;
}

TEST(HedgeParallelTest, HedgeAccountingIdenticalAcrossThreadCounts) {
  Result<HedgeRun> reference = DriveHedged(1);
  ASSERT_TRUE(reference.ok()) << reference.status().message();
  // Heavy stalls really produced stragglers, and some hedges launched.
  EXPECT_GT(reference->hedge_launches, 0u);
  EXPECT_LE(reference->hedged_duplicates, reference->hedge_launches);
  ASSERT_FALSE(reference->hedge_lines.empty());
  for (size_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Result<HedgeRun> run = DriveHedged(threads);
    ASSERT_TRUE(run.ok()) << run.status().message();
    EXPECT_EQ(run->hedge_launches, reference->hedge_launches);
    EXPECT_EQ(run->hedged_duplicates, reference->hedged_duplicates);
    EXPECT_EQ(run->reported, reference->reported);
    // The walk_hedged lines carry (agent_index, attempts, threshold):
    // identical sequences mean straggler detection, donor-fork choice,
    // and race resolution were schedule-independent.
    ASSERT_EQ(run->hedge_lines.size(), reference->hedge_lines.size());
    for (size_t i = 0; i < run->hedge_lines.size(); ++i) {
      EXPECT_EQ(run->hedge_lines[i], reference->hedge_lines[i])
          << "hedge event " << i;
    }
    ASSERT_EQ(run->trace.size(), reference->trace.size());
    for (size_t i = 0; i < run->trace.size(); ++i) {
      EXPECT_EQ(run->trace[i], reference->trace[i]) << "event " << i;
    }
  }
}

struct OperatorHedgeRun {
  std::vector<NodeId> samples;
  uint64_t hedges = 0;
  uint64_t hedge_wins = 0;
  uint64_t done_walks = 0;
  uint64_t done_attempts = 0;
  uint64_t done_steps = 0;
  uint64_t hedge_launches = 0;
  uint64_t hedged_duplicates = 0;
};

/// Operator-level variant: drives hedged batches directly and reads the
/// per-walk hedge telemetry plus the completed-walk statistics that
/// feed the (frozen) straggler threshold.
OperatorHedgeRun RunOperatorHedged(size_t num_threads) {
  const Graph graph = MakeMesh(8, 8).value();
  MessageMeter meter;
  SamplingOperatorOptions options;
  options.walk_length = 16;
  options.reset_length = 4;
  options.num_threads = num_threads;
  options.hedge.enabled = true;
  options.hedge.straggler_factor = 1.5;  // Hedge eagerly.
  options.hedge.min_observations = 4;
  SamplingOperator op(&graph, UniformWeight(), Rng(2024), &meter, options);
  FaultPlan plan(HeavyStallFaults(), kFaultSeed);
  op.SetFaultPlan(&plan);
  const NodeId origin = *graph.LiveNodes().begin();
  OperatorHedgeRun run;
  for (int batch = 0; batch < 8; ++batch) {
    plan.set_now(batch + 1);
    Result<PartialBatch> result = op.SampleNodesPartial(origin, /*n=*/12);
    EXPECT_TRUE(result.ok()) << result.status().message();
    if (!result.ok()) break;
    run.samples.insert(run.samples.end(), result->nodes.begin(),
                       result->nodes.end());
    run.hedges += op.last_telemetry().hedges;
    run.hedge_wins += op.last_telemetry().hedge_wins;
  }
  run.done_walks = op.hedge_done_walks();
  run.done_attempts = op.hedge_done_attempts();
  run.done_steps = op.hedge_done_steps();
  run.hedge_launches = meter.hedge_launches();
  run.hedged_duplicates = meter.hedged_duplicates();
  return run;
}

TEST(HedgeParallelTest, OperatorHedgeTelemetryIdenticalAcrossThreadCounts) {
  const OperatorHedgeRun reference = RunOperatorHedged(1);
  // The eager threshold really hedged, and launches were metered
  // one-for-one with the telemetry.
  EXPECT_GT(reference.hedges, 0u);
  EXPECT_EQ(reference.hedge_launches, reference.hedges);
  EXPECT_LE(reference.hedge_wins, reference.hedges);
  EXPECT_GT(reference.done_walks, 0u);
  for (size_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const OperatorHedgeRun run = RunOperatorHedged(threads);
    EXPECT_EQ(run.samples, reference.samples);
    EXPECT_EQ(run.hedges, reference.hedges);
    EXPECT_EQ(run.hedge_wins, reference.hedge_wins);
    EXPECT_EQ(run.done_walks, reference.done_walks);
    EXPECT_EQ(run.done_attempts, reference.done_attempts);
    EXPECT_EQ(run.done_steps, reference.done_steps);
    EXPECT_EQ(run.hedge_launches, reference.hedge_launches);
    EXPECT_EQ(run.hedged_duplicates, reference.hedged_duplicates);
  }
}

TEST(HedgeParallelTest, DisabledHedgePaysNothingInParallelMode) {
  // With hedging off the parallel path must not launch or meter any
  // hedge traffic, faults or not.
  const Graph graph = MakeMesh(8, 8).value();
  MessageMeter meter;
  SamplingOperatorOptions options;
  options.walk_length = 16;
  options.reset_length = 4;
  options.num_threads = 4;
  SamplingOperator op(&graph, UniformWeight(), Rng(2024), &meter, options);
  FaultPlan plan(HeavyStallFaults(), kFaultSeed);
  op.SetFaultPlan(&plan);
  const NodeId origin = *graph.LiveNodes().begin();
  for (int batch = 0; batch < 4; ++batch) {
    plan.set_now(batch + 1);
    Result<PartialBatch> result = op.SampleNodesPartial(origin, /*n=*/12);
    ASSERT_TRUE(result.ok()) << result.status().message();
  }
  EXPECT_EQ(meter.hedge_launches(), 0u);
  EXPECT_EQ(meter.hedged_duplicates(), 0u);
  EXPECT_EQ(op.last_telemetry().hedges, 0u);
  EXPECT_EQ(op.last_telemetry().hedge_wins, 0u);
}

}  // namespace
}  // namespace digest
