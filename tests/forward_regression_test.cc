// Tests of the forward-regression extension (§VIII): occasion k's
// information flows backward to sharpen the occasion-(k−1) estimate.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "core/snapshot_estimator.h"
#include "net/topology.h"

namespace digest {
namespace {

// Same AR(1) database shape as estimator_test.
class Ar1Database {
 public:
  Ar1Database(size_t nodes, size_t tuples_per_node, double mean,
              double sigma, double ar, uint64_t seed)
      : ar_(ar), noise_sigma_(sigma * std::sqrt(1.0 - ar * ar)),
        rng_(seed) {
    graph = MakeComplete(nodes).value();
    db = std::make_unique<P2PDatabase>(Schema::Create({"v"}).value());
    for (NodeId node : graph.LiveNodes()) {
      EXPECT_TRUE(db->AddNode(node).ok());
      for (size_t i = 0; i < tuples_per_node; ++i) {
        const double base = rng_.NextGaussian(mean, sigma);
        const LocalTupleId id = db->StoreAt(node).value()->Insert({base});
        tuples_.push_back({TupleRef{node, id}, base});
      }
    }
  }

  void Advance() {
    for (auto& [ref, base] : tuples_) {
      const double v = db->GetTuple(ref).value()[0];
      const double nv =
          base + ar_ * (v - base) + rng_.NextGaussian(0.0, noise_sigma_);
      EXPECT_TRUE(db->StoreAt(ref.node)
                      .value()
                      ->UpdateAttribute(ref.local, 0, nv)
                      .ok());
    }
  }

  double TrueAvg() const {
    AggregateQuery q = AggregateQuery::Parse("SELECT AVG(v) FROM R").value();
    return db->ExactAggregate(q).value();
  }

  Graph graph;
  std::unique_ptr<P2PDatabase> db;

 private:
  struct Entry {
    TupleRef ref;
    double base;
  };
  std::vector<Entry> tuples_;
  double ar_;
  double noise_sigma_;
  Rng rng_;
};

ContinuousQuerySpec AvgSpec(double epsilon) {
  return ContinuousQuerySpec::Create("SELECT AVG(v) FROM R",
                                     PrecisionSpec{0.0, epsilon, 0.95})
      .value();
}

TEST(ForwardRegressionTest, UnavailableBeforeSecondOccasion) {
  Ar1Database data(6, 100, 50.0, 10.0, 0.9, 1);
  ExactTupleSampler sampler(data.db.get(), Rng(2), nullptr);
  ExactSampleSource source(&sampler);
  RepeatedSamplingEstimator est(AvgSpec(1.0), data.db.get(), &source,
                                nullptr, nullptr, Rng(3));
  EXPECT_EQ(est.AdjustedPreviousEstimate().status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(est.Evaluate(0).ok());
  EXPECT_FALSE(est.AdjustedPreviousEstimate().ok());  // Still occasion 1.
}

TEST(ForwardRegressionTest, AvailableAfterSecondOccasion) {
  Ar1Database data(6, 200, 50.0, 10.0, 0.9, 4);
  ExactTupleSampler sampler(data.db.get(), Rng(5), nullptr);
  ExactSampleSource source(&sampler);
  RepeatedSamplingEstimator est(AvgSpec(1.0), data.db.get(), &source,
                                nullptr, nullptr, Rng(6));
  ASSERT_TRUE(est.Evaluate(0).ok());
  data.Advance();
  ASSERT_TRUE(est.Evaluate(0).ok());
  Result<double> adjusted = est.AdjustedPreviousEstimate();
  ASSERT_TRUE(adjusted.ok()) << adjusted.status();
  // Sanity: an AVG near the population mean.
  EXPECT_NEAR(*adjusted, 50.0, 3.0);
}

TEST(ForwardRegressionTest, AdjustmentReducesErrorOnAverage) {
  // Over repeated two-occasion experiments, the adjusted occasion-1
  // estimate should beat the original occasion-1 estimate in MSE
  // (occasion 2 contributes fresh information backward).
  double mse_original = 0.0;
  double mse_adjusted = 0.0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    Ar1Database data(6, 300, 50.0, 10.0, 0.95, 100 + trial);
    ExactTupleSampler sampler(data.db.get(), Rng(200 + trial), nullptr);
    ExactSampleSource source(&sampler);
    // Loose epsilon => small n => visible estimation error.
    RepeatedSamplingEstimator est(AvgSpec(3.0), data.db.get(), &source,
                                  nullptr, nullptr, Rng(300 + trial));
    Result<SnapshotEstimate> first = est.Evaluate(0);
    ASSERT_TRUE(first.ok());
    const double truth1 = data.TrueAvg();
    data.Advance();
    ASSERT_TRUE(est.Evaluate(0).ok());
    Result<double> adjusted = est.AdjustedPreviousEstimate();
    ASSERT_TRUE(adjusted.ok()) << adjusted.status();
    mse_original += (first->value - truth1) * (first->value - truth1);
    mse_adjusted += (*adjusted - truth1) * (*adjusted - truth1);
  }
  EXPECT_LT(mse_adjusted, mse_original);
}

TEST(ForwardRegressionTest, EngineExposureAndIndependentRejection) {
  Ar1Database data(6, 150, 50.0, 10.0, 0.9, 7);
  ContinuousQuerySpec spec = AvgSpec(1.0);

  DigestEngineOptions rpt_options;
  rpt_options.scheduler = SchedulerKind::kAll;
  rpt_options.estimator = EstimatorKind::kRepeated;
  rpt_options.sampler = SamplerKind::kExactCentral;
  auto rpt_engine = DigestEngine::Create(&data.graph, data.db.get(), spec,
                                         0, Rng(8), nullptr, rpt_options)
                        .value();
  data.Advance();
  ASSERT_TRUE(rpt_engine->Tick(1).ok());
  data.Advance();
  ASSERT_TRUE(rpt_engine->Tick(2).ok());
  EXPECT_TRUE(rpt_engine->AdjustedPreviousResult().ok());

  DigestEngineOptions indep_options = rpt_options;
  indep_options.estimator = EstimatorKind::kIndependent;
  auto indep_engine =
      DigestEngine::Create(&data.graph, data.db.get(), spec, 0, Rng(9),
                           nullptr, indep_options)
          .value();
  ASSERT_TRUE(indep_engine->Tick(1).ok());
  EXPECT_EQ(indep_engine->AdjustedPreviousResult().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ForwardRegressionTest, ResetClearsState) {
  Ar1Database data(6, 150, 50.0, 10.0, 0.9, 10);
  ExactTupleSampler sampler(data.db.get(), Rng(11), nullptr);
  ExactSampleSource source(&sampler);
  RepeatedSamplingEstimator est(AvgSpec(1.0), data.db.get(), &source,
                                nullptr, nullptr, Rng(12));
  ASSERT_TRUE(est.Evaluate(0).ok());
  data.Advance();
  ASSERT_TRUE(est.Evaluate(0).ok());
  ASSERT_TRUE(est.AdjustedPreviousEstimate().ok());
  est.Reset();
  EXPECT_FALSE(est.AdjustedPreviousEstimate().ok());
}

}  // namespace
}  // namespace digest
