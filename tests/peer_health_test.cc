// Unit tests for the peer-health layer (src/net/peer_health): the
// phi-accrual suspicion model, the breaker state machine
// (closed -> open -> half-open, with flap accounting), the quarantine
// view and supervisor flip, the tracer purity contract, and the
// checkpoint state codec.
#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "common/json.h"
#include "net/peer_health.h"
#include "obs/tracer.h"

namespace digest {
namespace {

// Folds `n` failures for `peer`, one outcome per fold (the granularity
// walks actually record at).
void FoldFailures(PeerHealthMonitor* monitor, NodeId peer, int n) {
  for (int i = 0; i < n; ++i) {
    WalkHealthBuffer buffer;
    buffer.RecordFailure(peer);
    monitor->FoldWalk(buffer);
  }
}

void FoldSuccesses(PeerHealthMonitor* monitor, NodeId peer, int n) {
  for (int i = 0; i < n; ++i) {
    WalkHealthBuffer buffer;
    buffer.RecordSuccess(peer);
    monitor->FoldWalk(buffer);
  }
}

// With the default config (initial_interval 1, phi_open 2) a never-seen
// peer needs ceil(2 * ln 10) = 5 consecutive failures to cross the open
// threshold; the failure_floor (3) is already met by then.
constexpr int kFailuresToOpen = 5;

TEST(PeerHealthConfigTest, ValidationCoversEveryField) {
  EXPECT_TRUE(PeerHealthConfig{}.Validate().ok());

  PeerHealthConfig bad;
  bad.interval_alpha = 0.0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = PeerHealthConfig{};
  bad.interval_alpha = 1.5;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = PeerHealthConfig{};
  bad.initial_interval = 0.0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = PeerHealthConfig{};
  bad.phi_suspect = -1.0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = PeerHealthConfig{};
  bad.phi_open = 0.5;  // Below phi_suspect (1.0): breaker would open
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = PeerHealthConfig{};
  bad.failure_floor = 0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = PeerHealthConfig{};
  bad.open_cooldown = 0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = PeerHealthConfig{};
  bad.half_open_probes = 0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = PeerHealthConfig{};
  bad.close_successes = bad.half_open_probes + 1;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = PeerHealthConfig{};
  bad.quarantine_degrade_fraction = 0.0;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  bad = PeerHealthConfig{};
  bad.quarantine_degrade_fraction = 1.0001;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);

  // The ablation dial is not a validity question: breakers off is a
  // legal config (bench ablations rely on it).
  PeerHealthConfig ablated;
  ablated.breakers_enabled = false;
  EXPECT_TRUE(ablated.Validate().ok());
}

TEST(PeerHealthTest, SuspicionAccruesAndLatchesOncePerExcursion) {
  PeerHealthMonitor monitor;
  monitor.set_now(0);

  // Two failures: phi = 2 / ln 10 < 1, below the suspect threshold.
  FoldFailures(&monitor, 7, 2);
  EXPECT_EQ(monitor.suspects(), 0u);
  // Third failure crosses phi_suspect = 1 — announced exactly once.
  FoldFailures(&monitor, 7, 1);
  EXPECT_EQ(monitor.suspects(), 1u);
  FoldFailures(&monitor, 7, 1);
  EXPECT_EQ(monitor.suspects(), 1u) << "suspect latched per excursion";

  // A delivery ends the excursion; the next sustained failure run is a
  // fresh suspicion.
  FoldSuccesses(&monitor, 7, 1);
  FoldFailures(&monitor, 7, 3);
  EXPECT_EQ(monitor.suspects(), 2u);

  EXPECT_EQ(monitor.outcomes_folded(), 8u);
  EXPECT_EQ(monitor.successes(), 1u);
  EXPECT_EQ(monitor.failures(), 7u);
  EXPECT_EQ(monitor.peers_tracked(), 1u);
}

TEST(PeerHealthTest, BreakerOpensOnSustainedFailureAndQuarantines) {
  PeerHealthMonitor monitor;
  monitor.set_now(0);

  FoldFailures(&monitor, 3, kFailuresToOpen - 1);
  EXPECT_EQ(monitor.StateOf(3), BreakerState::kClosed);
  EXPECT_EQ(monitor.quarantined(), 0u);
  FoldFailures(&monitor, 3, 1);
  EXPECT_EQ(monitor.StateOf(3), BreakerState::kOpen);
  EXPECT_EQ(monitor.opens(), 1u);
  EXPECT_EQ(monitor.quarantined(), 1u);

  const QuarantineView view = monitor.SnapshotView();
  EXPECT_TRUE(view.Any());
  EXPECT_EQ(view.count(), 1u);
  EXPECT_TRUE(view.Quarantined(3));
  EXPECT_FALSE(view.Quarantined(2));
  // Ids beyond the tracked range are never quarantined.
  EXPECT_FALSE(view.Quarantined(1000));

  // Never-seen peers answer closed.
  EXPECT_EQ(monitor.StateOf(999), BreakerState::kClosed);
}

TEST(PeerHealthTest, CooldownOpensTrialWindowAndSuccessesClose) {
  PeerHealthMonitor monitor;  // open_cooldown 8, close_successes 2.
  monitor.set_now(0);
  FoldFailures(&monitor, 0, kFailuresToOpen);
  ASSERT_EQ(monitor.StateOf(0), BreakerState::kOpen);

  // The cooldown has not elapsed: still quarantined.
  monitor.set_now(7);
  EXPECT_EQ(monitor.StateOf(0), BreakerState::kOpen);
  // At open_until the breaker ages into its trial window; half-open
  // peers are routed again (not in the quarantine view).
  monitor.set_now(8);
  EXPECT_EQ(monitor.StateOf(0), BreakerState::kHalfOpen);
  EXPECT_FALSE(monitor.SnapshotView().Any());
  EXPECT_EQ(monitor.quarantined(), 0u);

  FoldSuccesses(&monitor, 0, 1);
  EXPECT_EQ(monitor.StateOf(0), BreakerState::kHalfOpen);
  FoldSuccesses(&monitor, 0, 1);
  EXPECT_EQ(monitor.StateOf(0), BreakerState::kClosed);
  EXPECT_EQ(monitor.closes(), 1u);
  EXPECT_EQ(monitor.reopens(), 0u);
  EXPECT_EQ(monitor.FlapRate(), 0.0);
}

TEST(PeerHealthTest, TrialFailureReopensAndCountsTowardFlapRate) {
  PeerHealthMonitor monitor;
  monitor.set_now(0);
  FoldFailures(&monitor, 5, kFailuresToOpen);
  ASSERT_EQ(monitor.StateOf(5), BreakerState::kOpen);
  monitor.set_now(8);
  ASSERT_EQ(monitor.StateOf(5), BreakerState::kHalfOpen);

  // One failed trial probe re-opens for a fresh cooldown.
  FoldFailures(&monitor, 5, 1);
  EXPECT_EQ(monitor.StateOf(5), BreakerState::kOpen);
  EXPECT_EQ(monitor.opens(), 1u);
  EXPECT_EQ(monitor.reopens(), 1u);
  EXPECT_DOUBLE_EQ(monitor.FlapRate(), 0.5);
  EXPECT_EQ(monitor.quarantined(), 1u);

  // The fresh cooldown runs from the re-open, not the original open.
  monitor.set_now(15);
  EXPECT_EQ(monitor.StateOf(5), BreakerState::kOpen);
  monitor.set_now(16);
  EXPECT_EQ(monitor.StateOf(5), BreakerState::kHalfOpen);
}

TEST(PeerHealthTest, AblatedMonitorScoresButNeverOpens) {
  PeerHealthConfig config;
  config.breakers_enabled = false;
  PeerHealthMonitor monitor(config);
  monitor.set_now(0);

  FoldFailures(&monitor, 2, 50);
  // Suspicion stays live (the ablation is observable)...
  EXPECT_EQ(monitor.suspects(), 1u);
  EXPECT_EQ(monitor.failures(), 50u);
  // ...but routing is untouched: no breaker ever opens.
  EXPECT_EQ(monitor.opens(), 0u);
  EXPECT_EQ(monitor.breaker_transitions(), 0u);
  EXPECT_EQ(monitor.quarantined(), 0u);
  EXPECT_EQ(monitor.StateOf(2), BreakerState::kClosed);
  EXPECT_FALSE(monitor.SnapshotView().Any());

  // And the supervisor flip never latches either.
  monitor.FinishBatch(2);
  EXPECT_FALSE(monitor.TakePendingQuarantineFlip());
}

TEST(PeerHealthTest, QuarantineFractionLatchesOneSupervisorFlip) {
  PeerHealthMonitor monitor;  // quarantine_degrade_fraction 0.5.
  monitor.set_now(0);
  FoldFailures(&monitor, 0, kFailuresToOpen);
  ASSERT_EQ(monitor.quarantined(), 1u);

  // 1 of 4 routed peers: below the threshold, no flip.
  monitor.FinishBatch(4);
  EXPECT_DOUBLE_EQ(monitor.QuarantineFraction(), 0.25);
  EXPECT_FALSE(monitor.TakePendingQuarantineFlip());

  // 1 of 2: at the threshold — exactly one flip, latched across
  // further batches at the same fraction.
  monitor.FinishBatch(2);
  EXPECT_TRUE(monitor.TakePendingQuarantineFlip());
  EXPECT_FALSE(monitor.TakePendingQuarantineFlip());
  monitor.FinishBatch(2);
  EXPECT_FALSE(monitor.TakePendingQuarantineFlip());

  // Healing clears the latch; a fresh crossing flips again.
  monitor.set_now(8);
  FoldSuccesses(&monitor, 0, 2);
  ASSERT_EQ(monitor.quarantined(), 0u);
  monitor.FinishBatch(2);
  EXPECT_FALSE(monitor.TakePendingQuarantineFlip());
  monitor.set_now(9);
  FoldFailures(&monitor, 0, kFailuresToOpen);
  monitor.FinishBatch(2);
  EXPECT_TRUE(monitor.TakePendingQuarantineFlip());
  EXPECT_FALSE(monitor.TakePendingQuarantineFlip());
}

TEST(PeerHealthTest, QuarantineSinceReadStampsOccasionsOnce) {
  PeerHealthMonitor monitor;
  monitor.set_now(0);
  monitor.FinishBatch(10);
  EXPECT_FALSE(monitor.TakeQuarantineSinceLastRead());

  FoldFailures(&monitor, 1, kFailuresToOpen);
  monitor.FinishBatch(10);
  EXPECT_TRUE(monitor.TakeQuarantineSinceLastRead());
  // The flag clears on read and only re-arms at the next quarantined
  // batch.
  EXPECT_FALSE(monitor.TakeQuarantineSinceLastRead());
  monitor.FinishBatch(10);
  EXPECT_TRUE(monitor.TakeQuarantineSinceLastRead());
}

TEST(PeerHealthTest, TracerIsPureObservationAndEmitsTheEventStream) {
  obs::MemoryTracer tracer;
  PeerHealthMonitor traced;
  traced.SetTracer(&tracer);
  PeerHealthMonitor silent;

  for (PeerHealthMonitor* m : {&traced, &silent}) {
    m->set_now(0);
    FoldFailures(m, 4, kFailuresToOpen);
    m->set_now(8);
    FoldFailures(m, 4, 1);  // Trial failure: re-open.
    m->set_now(16);
    FoldSuccesses(m, 4, 2);  // Trial successes: close.
    m->FinishBatch(20);
  }

  // Attaching a tracer never changes the health state.
  EXPECT_EQ(traced.SummaryJson(), silent.SummaryJson());

  size_t suspect_events = 0;
  std::vector<std::pair<std::string, std::string>> transitions;
  for (const obs::TraceEvent& event : tracer.events()) {
    if (const auto* s =
            std::get_if<obs::PeerSuspectEvent>(&event.payload)) {
      ++suspect_events;
      EXPECT_EQ(s->peer, 4u);
      EXPECT_GE(s->phi, 1.0);
    } else if (const auto* b = std::get_if<obs::BreakerTransitionEvent>(
                   &event.payload)) {
      EXPECT_EQ(b->peer, 4u);
      transitions.emplace_back(b->from, b->to);
    }
  }
  EXPECT_EQ(suspect_events, traced.suspects());
  const std::vector<std::pair<std::string, std::string>> expected = {
      {"closed", "open"},       {"open", "half_open"},
      {"half_open", "open"},    {"open", "half_open"},
      {"half_open", "closed"},
  };
  EXPECT_EQ(transitions, expected);
  EXPECT_EQ(traced.breaker_transitions(), expected.size());
}

// Drives a monitor into a state exercising every PeerState field: one
// open peer, one half-open peer mid-trial, one closed peer with EWMA
// history, plus a pending supervisor flip.
void DriveRichState(PeerHealthMonitor* monitor) {
  monitor->set_now(0);
  FoldSuccesses(monitor, 0, 1);
  monitor->set_now(3);
  FoldSuccesses(monitor, 0, 1);  // Closed, with an interval estimate.
  FoldFailures(monitor, 1, kFailuresToOpen);  // Opens; cooldown to 11.
  FoldFailures(monitor, 2, kFailuresToOpen);
  monitor->set_now(11);  // Ages BOTH breakers into half-open...
  FoldSuccesses(monitor, 2, 1);  // ...peer 2 one trial success in,
  FoldFailures(monitor, 1, 1);   // ...peer 1 re-opened (cooldown to 19).
  monitor->FinishBatch(2);       // 1 of 2 quarantined: flip pending.
}

TEST(PeerHealthTest, StateCodecRoundTripsByteIdentically) {
  PeerHealthMonitor original;
  DriveRichState(&original);

  const PeerHealthMonitor::State state = original.SaveState();
  std::string encoded;
  PeerHealthMonitor::AppendStateJson(state, &encoded);
  const Result<json::Value> doc = json::Parse(encoded);
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  const Result<PeerHealthMonitor::State> decoded =
      PeerHealthMonitor::ParseStateJson(*doc);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();

  PeerHealthMonitor restored;
  restored.RestoreState(*decoded);

  // Re-encoding the restored state is byte-identical, and so is the
  // summary the bench gates byte-compare.
  std::string re_encoded;
  PeerHealthMonitor::AppendStateJson(restored.SaveState(), &re_encoded);
  EXPECT_EQ(encoded, re_encoded);
  EXPECT_EQ(original.SummaryJson(), restored.SummaryJson());
  EXPECT_EQ(restored.StateOf(1), BreakerState::kOpen);
  EXPECT_EQ(restored.StateOf(2), BreakerState::kHalfOpen);
  EXPECT_EQ(restored.quarantined(), original.quarantined());

  // The restored monitor CONTINUES identically: same clock advances,
  // same outcomes, same resulting state — the checkpoint/restore
  // bit-identity the engine test relies on, at monitor granularity.
  for (PeerHealthMonitor* m : {&original, &restored}) {
    m->set_now(19);  // Ages peer 1 (re-opened at t=11) to half-open.
    FoldSuccesses(m, 1, 2);
    FoldFailures(m, 0, 2);
    m->FinishBatch(3);
  }
  EXPECT_EQ(original.SummaryJson(), restored.SummaryJson());
  EXPECT_EQ(original.TakePendingQuarantineFlip(),
            restored.TakePendingQuarantineFlip());
  std::string a, b;
  PeerHealthMonitor::AppendStateJson(original.SaveState(), &a);
  PeerHealthMonitor::AppendStateJson(restored.SaveState(), &b);
  EXPECT_EQ(a, b);
}

TEST(PeerHealthTest, ParseStateJsonValidatesBeforeReturning) {
  PeerHealthMonitor monitor;
  DriveRichState(&monitor);
  std::string encoded;
  PeerHealthMonitor::AppendStateJson(monitor.SaveState(), &encoded);

  {  // A breaker ladder index outside [0, 2] is rejected.
    std::string bad = encoded;
    const size_t pos = bad.find("\"breaker\":");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, 12, "\"breaker\":7,");
    const Result<json::Value> doc = json::Parse(bad);
    ASSERT_TRUE(doc.ok());
    EXPECT_FALSE(PeerHealthMonitor::ParseStateJson(*doc).ok());
  }
  {  // A missing counter is rejected (parse-all-then-install: the
     // engine installs nothing on failure).
    std::string bad = encoded;
    const size_t pos = bad.find("\"batches\":");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, 10, "\"botches\":");
    const Result<json::Value> doc = json::Parse(bad);
    ASSERT_TRUE(doc.ok());
    EXPECT_FALSE(PeerHealthMonitor::ParseStateJson(*doc).ok());
  }
}

TEST(PeerHealthTest, ResetClearsStateButKeepsConfigAndTracer) {
  obs::MemoryTracer tracer;
  PeerHealthConfig config;
  config.open_cooldown = 3;
  PeerHealthMonitor monitor(config);
  monitor.SetTracer(&tracer);
  DriveRichState(&monitor);
  ASSERT_GT(monitor.outcomes_folded(), 0u);

  monitor.Reset();
  EXPECT_EQ(monitor.outcomes_folded(), 0u);
  EXPECT_EQ(monitor.quarantined(), 0u);
  EXPECT_EQ(monitor.batches(), 0u);
  EXPECT_EQ(monitor.peers_tracked(), 0u);
  EXPECT_FALSE(monitor.TakePendingQuarantineFlip());
  EXPECT_EQ(monitor.config().open_cooldown, 3);

  // The tracer survived the reset: new transitions still emit.
  tracer.Clear();
  monitor.set_now(0);
  FoldFailures(&monitor, 0, kFailuresToOpen);
  EXPECT_FALSE(tracer.events().empty());
}

}  // namespace
}  // namespace digest
