// Unit tests for the digest::obs observability layer: metrics registry
// (counters/gauges/histograms, label canonicalization, JSON export),
// structured tracer (stamping, null fast path), trace exporters (JSONL
// and Chrome trace_event), and the MessageMeter/EngineStats bridges.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "net/message_meter.h"
#include "obs/bridge.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace digest {
namespace obs {
namespace {

TEST(CounterTest, IncrementsAndSaturates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Increment(~static_cast<uint64_t>(0));
  EXPECT_EQ(c.value(), ~static_cast<uint64_t>(0));  // Saturated, no wrap.
}

TEST(HistogramTest, BucketsObservationsIncludingOverflow) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);   // bucket 0 (<= 1)
  h.Observe(1.0);   // bucket 0 (inclusive upper edge)
  h.Observe(3.0);   // bucket 2
  h.Observe(100.0); // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 0u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
  EXPECT_DOUBLE_EQ(h.Mean(), 104.5 / 4.0);
}

TEST(HistogramQuantileTest, EmptyHistogramReturnsZero) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.0);
}

TEST(HistogramQuantileTest, ClampsOutOfRangeQ) {
  Histogram h({10.0});
  h.Observe(5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(-0.5), h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(1.5), h.Quantile(1.0));
}

TEST(HistogramQuantileTest, SingleBucketInterpolatesFromZero) {
  Histogram h({10.0});
  h.Observe(1.0);
  h.Observe(2.0);
  // The first bucket's lower edge is min(0, upper): p0 pins to 0, p100
  // to the bucket's upper edge, interior quantiles interpolate.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 10.0);
}

TEST(HistogramQuantileTest, BoundaryObservationsLandInclusive) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(1.0);  // Exactly on an upper edge: bucket 0 (inclusive).
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
}

TEST(HistogramQuantileTest, InterpolatesAcrossBuckets) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(3.0);
  h.Observe(3.5);  // counts [1, 1, 2, 0], count = 4
  // p75: target 3 falls halfway through bucket (2, 4].
  EXPECT_DOUBLE_EQ(h.Quantile(0.75), 3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 4.0);
}

TEST(HistogramQuantileTest, OverflowMassPinsToLastFiniteEdge) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(100.0);  // All mass in the unbounded overflow bucket.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 4.0);
}

TEST(HistogramTest, BucketGenerators) {
  const std::vector<double> exp = ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(exp.size(), 4u);
  EXPECT_DOUBLE_EQ(exp[0], 1.0);
  EXPECT_DOUBLE_EQ(exp[3], 8.0);
  const std::vector<double> lin = LinearBuckets(0.0, 1.0, 11);
  ASSERT_EQ(lin.size(), 11u);
  EXPECT_DOUBLE_EQ(lin[0], 0.0);
  EXPECT_DOUBLE_EQ(lin[10], 1.0);
}

TEST(RegistryTest, RenderKeySortsLabels) {
  EXPECT_EQ(Registry::RenderKey("m", {}), "m");
  EXPECT_EQ(Registry::RenderKey("m", {{"b", "2"}, {"a", "1"}}),
            "m{a=1,b=2}");
}

TEST(RegistryTest, InstrumentsAreStableAndLabelOrderInsensitive) {
  Registry registry;
  Counter* c1 = registry.GetCounter("net.messages",
                                    {{"category", "x"}, {"run", "r"}});
  Counter* c2 = registry.GetCounter("net.messages",
                                    {{"run", "r"}, {"category", "x"}});
  EXPECT_EQ(c1, c2);  // Same instrument regardless of label order.
  c1->Increment(7);
  EXPECT_EQ(registry.CounterValue("net.messages{category=x,run=r}"), 7u);
  EXPECT_EQ(registry.CounterValue("absent"), 0u);
}

TEST(RegistryTest, ToJsonIsDeterministic) {
  auto populate = [](Registry* r) {
    r->GetCounter("b.count")->Increment(3);
    r->GetCounter("a.count", {{"k", "v"}})->Increment(1);
    r->GetGauge("g")->Set(0.125);
    r->GetHistogram("h", {1.0, 2.0})->Observe(1.5);
  };
  Registry r1, r2;
  populate(&r1);
  populate(&r2);
  EXPECT_EQ(r1.ToJson(), r2.ToJson());
  // Keys come out sorted, so the labeled a.count precedes b.count.
  const std::string json = r1.ToJson();
  EXPECT_LT(json.find("a.count{k=v}"), json.find("b.count"));
}

TEST(TracerTest, StampsSeqAndSimulatedTime) {
  MemoryTracer tracer;
  tracer.set_now(5);
  tracer.Emit(RunBeginEvent{"run"});
  tracer.set_now(9);
  tracer.Emit(SnapshotSkippedEvent{12});
  ASSERT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.events()[0].seq, 0u);
  EXPECT_EQ(tracer.events()[0].sim_time, 5);
  EXPECT_EQ(tracer.events()[1].seq, 1u);
  EXPECT_EQ(tracer.events()[1].sim_time, 9);
  EXPECT_EQ(tracer.events_emitted(), 2u);
}

TEST(TracerTest, NullTracerDropsEverything) {
  NullTracer tracer;
  tracer.Emit(RunBeginEvent{"run"});
  EXPECT_EQ(tracer.events_emitted(), 0u);
  EXPECT_FALSE(Tracing(&tracer));
  EXPECT_FALSE(Tracing(nullptr));
  MemoryTracer memory;
  EXPECT_TRUE(Tracing(&memory));
}

TEST(TracerTest, EventNamesAreStable) {
  EXPECT_STREQ(EventName(EventPayload{RunBeginEvent{}}), "run_begin");
  EXPECT_STREQ(EventName(EventPayload{TickEvent{}}), "tick");
  EXPECT_STREQ(EventName(EventPayload{GapPredictedEvent{}}),
               "gap_predicted");
  EXPECT_STREQ(EventName(EventPayload{SnapshotEvent{}}), "snapshot");
  EXPECT_STREQ(EventName(EventPayload{SampleBudgetEvent{}}),
               "sample_budget");
  EXPECT_STREQ(EventName(EventPayload{WalkBatchEvent{}}), "walk_batch");
  EXPECT_STREQ(EventName(EventPayload{FaultLossEvent{}}), "fault_loss");
}

TEST(ExporterTest, JsonLineCarriesStampsAndPayloadFields) {
  MemoryTracer tracer;
  tracer.set_now(3);
  tracer.Emit(GapPredictedEvent{4, 7, 2, 0.5, true});
  const std::string line = EventToJsonLine(tracer.events()[0]);
  EXPECT_EQ(line,
            "{\"seq\":0,\"t\":3,\"event\":\"gap_predicted\",\"gap\":4,"
            "\"next_tick\":7,\"poly_order\":2,\"predicted_drift\":0.5,"
            "\"strict\":true}");
}

TEST(ExporterTest, JsonLinesOnePerEvent) {
  MemoryTracer tracer;
  tracer.Emit(RunBeginEvent{"a"});
  tracer.Emit(TickEvent{});
  const std::string out = RenderJsonLines(tracer.events());
  size_t lines = 0;
  for (char c : out) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
}

TEST(ExporterTest, ChromeTraceNestsWalkEventsInsideTickSpans) {
  MemoryTracer tracer;
  tracer.set_now(0);
  tracer.Emit(RunBeginEvent{"test run"});
  tracer.Emit(WalkBatchEvent{3, 1, 16, 4, 0});
  tracer.Emit(WalkBatchDoneEvent{3, 40, 0, 0, 0, 0});
  tracer.Emit(TickEvent{true, false, true, 50.0, 2.0});
  const std::string trace = RenderChromeTrace(tracer.events());
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  // Process metadata from the run marker.
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"test run\""), std::string::npos);
  // The tick span: a 1000 µs "X" slice at ts = sim_time·1000 = 0.
  EXPECT_NE(trace.find("\"name\":\"tick\",\"cat\":\"digest\",\"pid\":1,"
                       "\"tid\":1,\"ph\":\"X\",\"ts\":0,\"dur\":1000,"),
            std::string::npos);
  // Walk events: short slices offset inside [0, 1000).
  EXPECT_NE(trace.find("\"name\":\"walk_batch\""), std::string::npos);
  EXPECT_NE(trace.find("\"ts\":10,\"dur\":8,"), std::string::npos);
  EXPECT_NE(trace.find("\"ts\":20,\"dur\":8,"), std::string::npos);
}

TEST(ExporterTest, ChromeTraceGivesEachRunItsOwnProcess) {
  MemoryTracer tracer;
  tracer.Emit(RunBeginEvent{"first"});
  tracer.Emit(TickEvent{});
  tracer.Emit(RunBeginEvent{"second"});
  tracer.Emit(TickEvent{});
  const std::string trace = RenderChromeTrace(tracer.events());
  EXPECT_NE(trace.find("\"name\":\"first\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"second\""), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":2"), std::string::npos);
}

TEST(ExporterTest, SummaryRendersAllSections) {
  Registry registry;
  registry.GetCounter("net.messages", {{"category", "walk_hop"}})
      ->Increment(12);
  registry.GetGauge("engine.rho_hat")->Set(0.75);
  registry.GetHistogram("walk.hops_per_sample", {1.0, 2.0})->Observe(1.5);
  const std::string summary = RenderSummary(registry);
  EXPECT_NE(summary.find("== counters =="), std::string::npos);
  EXPECT_NE(summary.find("net.messages{category=walk_hop}  12"),
            std::string::npos);
  EXPECT_NE(summary.find("== gauges =="), std::string::npos);
  EXPECT_NE(summary.find("engine.rho_hat"), std::string::npos);
  EXPECT_NE(summary.find("== histograms =="), std::string::npos);
  EXPECT_NE(summary.find("count=1"), std::string::npos);

  Registry empty;
  EXPECT_EQ(RenderSummary(empty), "(registry is empty)\n");
}

TEST(BridgeTest, MessageMeterCategoriesMirrorIntoRegistry) {
  MessageMeter meter;
  meter.AddWalkHop();
  meter.AddWalkHop();
  meter.AddWeightProbe();
  meter.AddSampleTransfer();
  meter.AddRefresh(3);
  meter.AddPush(4);
  meter.AddRetry();
  meter.AddAgentRestart();
  meter.AddLoss();
  Registry registry;
  BridgeMessageMeter(meter, &registry);
  EXPECT_EQ(registry.CounterValue("net.messages{category=walk_hop}"), 2u);
  EXPECT_EQ(registry.CounterValue("net.messages{category=weight_probe}"),
            1u);
  EXPECT_EQ(registry.CounterValue("net.messages{category=sample_transfer}"),
            1u);
  EXPECT_EQ(registry.CounterValue("net.messages{category=refresh}"), 3u);
  EXPECT_EQ(registry.CounterValue("net.messages{category=push}"), 4u);
  EXPECT_EQ(registry.CounterValue("net.messages{category=retry}"), 1u);
  EXPECT_EQ(registry.CounterValue("net.messages{category=agent_restart}"),
            1u);
  EXPECT_EQ(registry.CounterValue("net.messages{category=loss}"), 1u);
  EXPECT_EQ(registry.CounterValue("net.messages_total"), meter.Total());
  EXPECT_EQ(registry.CounterValue("net.fault_overhead"),
            meter.FaultOverhead());
  // Bridging again accumulates (counter semantics).
  BridgeMessageMeter(meter, &registry);
  EXPECT_EQ(registry.CounterValue("net.messages{category=walk_hop}"), 4u);
  BridgeMessageMeter(meter, nullptr);  // Null registry: no-op.
}

TEST(BridgeTest, EngineStatsExportIsIdempotentPerValue) {
  EngineStats stats;
  stats.ticks = 10;
  stats.snapshots = 4;
  stats.result_updates = 3;
  stats.total_samples = 200;
  stats.fresh_samples = 150;
  stats.retained_samples = 50;
  stats.degraded_ticks = 1;
  Registry registry;
  ExportToRegistry(stats, &registry, "runA");
  EXPECT_EQ(registry.CounterValue("engine.ticks{run=runA}"), 10u);
  EXPECT_EQ(registry.CounterValue("engine.snapshots{run=runA}"), 4u);
  EXPECT_EQ(registry.CounterValue("engine.fresh_samples{run=runA}"), 150u);
  // Re-exporting the same stats does not double-count...
  ExportToRegistry(stats, &registry, "runA");
  EXPECT_EQ(registry.CounterValue("engine.ticks{run=runA}"), 10u);
  // ...and exporting grown stats raises to the new cumulative value.
  stats.ticks = 25;
  ExportToRegistry(stats, &registry, "runA");
  EXPECT_EQ(registry.CounterValue("engine.ticks{run=runA}"), 25u);
  // Unlabeled export lands on separate instruments.
  ExportToRegistry(stats, &registry);
  EXPECT_EQ(registry.CounterValue("engine.ticks"), 25u);
  ExportToRegistry(stats, nullptr);  // Null registry: no-op.
}

}  // namespace
}  // namespace obs
}  // namespace digest
