// Acceptance battery for the deterministic parallel walk executor: for
// the same seed and options, estimates, MessageMeter totals, engine
// stats, and exported trace event sequences (lane stamps included) must
// be bit-identical for num_threads in {1, 2, 4, 8} — clean runs,
// fault-injected runs, hedged runs, and budget-cut partial runs alike.
// Also checks the serial path (num_threads == 0) emits no lane fields,
// so legacy traces stay byte-identical. Runs under ThreadSanitizer in
// CI (DIGEST_SANITIZE=thread).
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/digest_node.h"
#include "core/engine.h"
#include "db/p2p_database.h"
#include "diag/diag.h"
#include "net/fault_plan.h"
#include "net/message_meter.h"
#include "net/topology.h"
#include "numeric/rng.h"
#include "obs/exporters.h"
#include "obs/tracer.h"
#include "sampling/sampling_operator.h"
#include "sampling/weight.h"
#include "workload/workload.h"

namespace digest {
namespace {

/// Static-membership workload (same shape as recovery_stress_test):
/// every node hosts kTuplesPerNode tuples whose attribute follows an
/// AR(1) process, so truth drifts while the overlay stays fixed.
class StaticDriftWorkload : public Workload {
 public:
  static constexpr size_t kTuplesPerNode = 8;

  StaticDriftWorkload(Graph graph, uint64_t seed)
      : graph_(std::move(graph)),
        rng_(seed),
        db_(std::make_unique<P2PDatabase>(
            Schema::Create({"load"}).value())) {
    for (NodeId node : graph_.LiveNodes()) {
      (void)db_->AddNode(node);
      LocalStore* store = db_->StoreAt(node).value();
      for (size_t i = 0; i < kTuplesPerNode; ++i) {
        Entry entry;
        entry.node = node;
        entry.value = rng_.NextGaussian(50.0, 10.0);
        entry.id = store->Insert({entry.value});
        entries_.push_back(entry);
      }
    }
  }

  Graph& graph() override { return graph_; }
  const Graph& graph() const override { return graph_; }
  P2PDatabase& db() override { return *db_; }
  const P2PDatabase& db() const override { return *db_; }
  const char* attribute() const override { return "load"; }
  int64_t now() const override { return now_; }

  Status Advance() override {
    ++now_;
    for (Entry& entry : entries_) {
      entry.value =
          50.0 + 0.8 * (entry.value - 50.0) + rng_.NextGaussian(0.0, 2.0);
      DIGEST_ASSIGN_OR_RETURN(LocalStore * store, db_->StoreAt(entry.node));
      DIGEST_RETURN_IF_ERROR(
          store->UpdateAttribute(entry.id, 0, entry.value));
    }
    return Status::OK();
  }

 private:
  struct Entry {
    NodeId node = kInvalidNode;
    LocalTupleId id = 0;
    double value = 0.0;
  };

  Graph graph_;
  Rng rng_;
  std::unique_ptr<P2PDatabase> db_;
  std::vector<Entry> entries_;
  int64_t now_ = 0;
};

struct DriveConfig {
  size_t num_threads = 1;
  bool with_faults = false;
  FaultPlanConfig faults;
  SchedulerKind scheduler = SchedulerKind::kPred;
  bool hedge = false;
  bool allow_partial = false;
  double hop_budget_factor = 8.0;
  size_t ticks = 24;
};

struct DriveResult {
  std::vector<double> reported;
  std::vector<double> ci;
  size_t partial_ticks = 0;
  size_t degraded_ticks = 0;
  EngineStats stats;
  MessageMeter meter;
  SessionHealth health = SessionHealth::kHealthy;
  uint64_t outcome_total = 0;
  std::vector<std::string> trace;  ///< Normalized JSONL (seq stripped).
  std::string diag_summary;        ///< SamplerDiag::SummaryJson().
};

/// Renders events as JSONL with the per-tracer `seq` stamp stripped.
/// Everything from the sim-time stamp on is kept — including the lane
/// field the parallel executor adds — so trace comparison covers event
/// kind, payload, ordering, AND lane attribution.
std::vector<std::string> NormalizeTrace(
    const std::vector<obs::TraceEvent>& events) {
  std::vector<std::string> out;
  for (const obs::TraceEvent& event : events) {
    const std::string line = obs::EventToJsonLine(event);
    out.push_back(line.substr(line.find(",\"t\":")));
  }
  return out;
}

constexpr uint64_t kWorkloadSeed = 777;
constexpr uint64_t kFaultSeed = 4242;
constexpr uint64_t kEngineSeed = 11;

/// Drives one engine session over the standard mesh workload with the
/// configured thread count and returns every observable output.
Result<DriveResult> Drive(const DriveConfig& cfg) {
  StaticDriftWorkload workload(MakeMesh(8, 8).value(), kWorkloadSeed);
  DIGEST_ASSIGN_OR_RETURN(
      const ContinuousQuerySpec spec,
      ContinuousQuerySpec::Create("SELECT AVG(load) FROM R",
                                  PrecisionSpec{1.0, 4.0, 0.9}));
  std::optional<FaultPlan> plan;
  if (cfg.with_faults) {
    DIGEST_RETURN_IF_ERROR(cfg.faults.Validate());
    plan.emplace(cfg.faults, kFaultSeed);
  }
  obs::MemoryTracer tracer;
  // The sampler diagnostics ride every drive: their folded state is part
  // of the bit-identity contract across thread counts, and they consume
  // no RNG, so attaching them never perturbs the run itself.
  diag::SamplerDiag diag;
  DigestEngineOptions options;
  options.scheduler = cfg.scheduler;
  options.estimator = EstimatorKind::kRepeated;
  options.num_threads = cfg.num_threads;
  options.diag = &diag;
  options.sampling_options.walk_length = 16;
  options.sampling_options.reset_length = 4;
  options.sampling_options.retry.hop_budget_factor = cfg.hop_budget_factor;
  options.sampling_options.hedge.enabled = cfg.hedge;
  options.estimator_options.allow_partial = cfg.allow_partial;
  options.fault_plan = plan ? &*plan : nullptr;
  options.tracer = &tracer;
  if (plan) plan->SetTracer(&tracer);

  DriveResult out;
  Rng rng(kEngineSeed);
  DIGEST_ASSIGN_OR_RETURN(NodeId querying,
                          workload.graph().RandomLiveNode(rng));
  workload.ProtectNode(querying);
  DIGEST_ASSIGN_OR_RETURN(
      std::unique_ptr<DigestEngine> engine,
      DigestEngine::Create(&workload.graph(), &workload.db(), spec,
                           querying, rng.Fork(), &out.meter, options));
  for (size_t t = 0; t < cfg.ticks; ++t) {
    DIGEST_RETURN_IF_ERROR(workload.Advance());
    if (plan) plan->set_now(workload.now());
    DIGEST_ASSIGN_OR_RETURN(EngineTickResult tick,
                            engine->Tick(workload.now()));
    out.reported.push_back(tick.reported_value);
    out.ci.push_back(tick.ci_halfwidth);
    if (tick.partial) ++out.partial_ticks;
    if (tick.degraded) ++out.degraded_ticks;
  }
  out.stats = engine->stats();
  out.health = engine->health();
  for (size_t i = 0; i < kNumSnapshotOutcomes; ++i) {
    out.outcome_total +=
        engine->supervisor().outcome_count(static_cast<SnapshotOutcome>(i));
  }
  out.trace = NormalizeTrace(tracer.events());
  out.diag_summary = diag.SummaryJson();
  return out;
}

void ExpectBitIdentical(const DriveResult& a, const DriveResult& b) {
  ASSERT_EQ(a.reported.size(), b.reported.size());
  for (size_t i = 0; i < a.reported.size(); ++i) {
    EXPECT_EQ(a.reported[i], b.reported[i]) << "tick " << i;
    EXPECT_EQ(a.ci[i], b.ci[i]) << "tick " << i;
  }
  EXPECT_EQ(a.partial_ticks, b.partial_ticks);
  EXPECT_EQ(a.degraded_ticks, b.degraded_ticks);
  for (size_t i = 0; i < MessageMeter::kNumCategories; ++i) {
    const auto c = static_cast<MessageMeter::Category>(i);
    EXPECT_EQ(a.meter.Count(c), b.meter.Count(c)) << "category " << i;
  }
  EXPECT_EQ(a.meter.losses(), b.meter.losses());
  EXPECT_EQ(a.stats.snapshots, b.stats.snapshots);
  EXPECT_EQ(a.stats.total_samples, b.stats.total_samples);
  EXPECT_EQ(a.stats.fresh_samples, b.stats.fresh_samples);
  EXPECT_EQ(a.stats.retained_samples, b.stats.retained_samples);
  EXPECT_EQ(a.stats.degraded_ticks, b.stats.degraded_ticks);
  EXPECT_EQ(a.stats.partial_snapshots, b.stats.partial_snapshots);
  EXPECT_EQ(a.health, b.health);
  EXPECT_EQ(a.outcome_total, b.outcome_total);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i], b.trace[i]) << "event " << i;
  }
  // The %.17g diag summary is the strictest scalar digest of the walk
  // schedule: byte-equality means every fold happened in the same order
  // with the same visits on every thread count.
  EXPECT_EQ(a.diag_summary, b.diag_summary);
}

bool TraceContains(const DriveResult& run, const std::string& event_name) {
  const std::string needle = "\"event\":\"" + event_name + "\"";
  for (const std::string& line : run.trace) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

FaultPlanConfig ModerateFaults() {
  FaultPlanConfig faults;
  faults.message_loss = 0.05;
  faults.agent_drop = 0.02;
  faults.stall_fraction = 0.2;
  faults.stall_every = 8;
  faults.stall_length = 2;
  return faults;
}

FaultPlanConfig HeavyStallFaults() {
  FaultPlanConfig faults;
  faults.message_loss = 0.10;
  faults.stall_fraction = 0.3;
  faults.stall_every = 6;
  faults.stall_length = 3;
  return faults;
}

TEST(ParallelDeterminismTest, CleanRunBitIdenticalAcrossThreadCounts) {
  DriveConfig cfg;  // No faults: the pure walk/estimator pipeline.
  cfg.num_threads = 1;
  Result<DriveResult> reference = Drive(cfg);
  ASSERT_TRUE(reference.ok()) << reference.status().message();
  // The diagnostics actually watched walks (not a vacuous comparison).
  EXPECT_EQ(reference->diag_summary.find("\"batches\":0,"),
            std::string::npos);
  for (size_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    cfg.num_threads = threads;
    Result<DriveResult> run = Drive(cfg);
    ASSERT_TRUE(run.ok()) << run.status().message();
    ExpectBitIdentical(*reference, *run);
  }
}

TEST(ParallelDeterminismTest, FaultedRunBitIdenticalAcrossThreadCounts) {
  DriveConfig cfg;
  cfg.with_faults = true;
  cfg.faults = ModerateFaults();
  cfg.scheduler = SchedulerKind::kAll;
  cfg.allow_partial = true;
  cfg.num_threads = 1;
  Result<DriveResult> reference = Drive(cfg);
  ASSERT_TRUE(reference.ok()) << reference.status().message();
  // The faulted path really ran (retries/losses appear in the trace).
  EXPECT_GT(reference->meter.losses(), 0u);
  for (size_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    cfg.num_threads = threads;
    Result<DriveResult> run = Drive(cfg);
    ASSERT_TRUE(run.ok()) << run.status().message();
    ExpectBitIdentical(*reference, *run);
  }
}

TEST(ParallelDeterminismTest,
     HedgedPartialBudgetRunBitIdenticalAcrossThreadCounts) {
  // The hardest configuration: heavy stalls, hedged walks racing in
  // virtual time, partial snapshots on a tight hop budget. Every
  // branch of the parallel merge (boundary cut, self-cap, hedge win,
  // agent restart) must resolve identically on any schedule.
  DriveConfig cfg;
  cfg.with_faults = true;
  cfg.faults = HeavyStallFaults();
  cfg.scheduler = SchedulerKind::kAll;
  cfg.hedge = true;
  cfg.allow_partial = true;
  cfg.hop_budget_factor = 2.0;
  cfg.ticks = 30;
  cfg.num_threads = 1;
  Result<DriveResult> reference = Drive(cfg);
  ASSERT_TRUE(reference.ok()) << reference.status().message();
  // The stress configuration exercised the interesting paths.
  EXPECT_GT(reference->stats.partial_snapshots, 0u);
  EXPECT_TRUE(TraceContains(*reference, "hop_budget_exhausted"));
  for (size_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    cfg.num_threads = threads;
    Result<DriveResult> run = Drive(cfg);
    ASSERT_TRUE(run.ok()) << run.status().message();
    ExpectBitIdentical(*reference, *run);
  }
}

TEST(ParallelDeterminismTest, ParallelTraceCarriesLanesSerialDoesNot) {
  // Walk-scoped events in parallel mode carry the deterministic lane
  // (walk index); the legacy serial path must stay byte-identical to
  // pre-parallel releases, i.e. no lane field anywhere.
  DriveConfig cfg;
  cfg.with_faults = true;
  cfg.faults = ModerateFaults();
  cfg.num_threads = 0;
  Result<DriveResult> serial = Drive(cfg);
  ASSERT_TRUE(serial.ok()) << serial.status().message();
  for (const std::string& line : serial->trace) {
    ASSERT_EQ(line.find("\"lane\":"), std::string::npos) << line;
  }
  cfg.num_threads = 2;
  Result<DriveResult> parallel = Drive(cfg);
  ASSERT_TRUE(parallel.ok()) << parallel.status().message();
  size_t laned = 0;
  for (const std::string& line : parallel->trace) {
    if (line.find("\"lane\":") != std::string::npos) ++laned;
  }
  EXPECT_GT(laned, 0u);
}

// ---------------------------------------------------------------------
// Operator-level determinism: raw SampleNodes / SampleNodesPartial
// outputs, meter accounting, telemetry, and saved state must match for
// any thread count, without the engine in the way.
// ---------------------------------------------------------------------

struct OperatorRun {
  std::vector<NodeId> samples;
  std::vector<bool> timed_out;
  MessageMeter meter;
  WalkTelemetry telemetry;
  SamplingOperator::State state;
};

OperatorRun RunOperatorBatches(size_t num_threads, bool with_faults) {
  const Graph graph = MakeMesh(8, 8).value();
  MessageMeter meter;
  SamplingOperatorOptions options;
  options.walk_length = 16;
  options.reset_length = 4;
  options.num_threads = num_threads;
  options.retry.hop_budget_factor = with_faults ? 3.0 : 8.0;
  SamplingOperator op(&graph, UniformWeight(), Rng(2024), &meter, options);
  std::optional<FaultPlan> plan;
  if (with_faults) {
    plan.emplace(ModerateFaults(), kFaultSeed);
    op.SetFaultPlan(&*plan);
  }
  const NodeId origin = *graph.LiveNodes().begin();
  OperatorRun run;
  for (int batch = 0; batch < 6; ++batch) {
    if (plan) plan->set_now(batch + 1);
    Result<PartialBatch> result =
        op.SampleNodesPartial(origin, /*n=*/12);
    EXPECT_TRUE(result.ok()) << result.status().message();
    if (!result.ok()) break;
    run.samples.insert(run.samples.end(), result->nodes.begin(),
                       result->nodes.end());
    run.timed_out.push_back(result->timed_out);
  }
  run.meter = meter;
  run.telemetry = op.last_telemetry();
  run.state = op.SaveState();
  return run;
}

void ExpectOperatorRunsEqual(const OperatorRun& a, const OperatorRun& b) {
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.timed_out, b.timed_out);
  for (size_t i = 0; i < MessageMeter::kNumCategories; ++i) {
    const auto c = static_cast<MessageMeter::Category>(i);
    EXPECT_EQ(a.meter.Count(c), b.meter.Count(c)) << "category " << i;
  }
  EXPECT_EQ(a.meter.losses(), b.meter.losses());
  EXPECT_EQ(a.telemetry.attempts, b.telemetry.attempts);
  EXPECT_EQ(a.telemetry.retries, b.telemetry.retries);
  EXPECT_EQ(a.telemetry.losses, b.telemetry.losses);
  EXPECT_EQ(a.telemetry.drops, b.telemetry.drops);
  EXPECT_EQ(a.telemetry.abandoned, b.telemetry.abandoned);
  EXPECT_EQ(a.telemetry.stale_probes, b.telemetry.stale_probes);
  EXPECT_EQ(a.telemetry.stalled_steps, b.telemetry.stalled_steps);
  EXPECT_EQ(a.telemetry.proposals, b.telemetry.proposals);
  EXPECT_EQ(a.telemetry.accepted, b.telemetry.accepted);
  EXPECT_EQ(a.telemetry.backoff_units, b.telemetry.backoff_units);
  EXPECT_EQ(a.telemetry.hedges, b.telemetry.hedges);
  EXPECT_EQ(a.telemetry.hedge_wins, b.telemetry.hedge_wins);
  EXPECT_EQ(a.state.agent_positions, b.state.agent_positions);
  EXPECT_EQ(a.state.next_agent, b.state.next_agent);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a.state.rng.words[i], b.state.rng.words[i]) << "word " << i;
  }
  EXPECT_EQ(a.state.done_walks, b.state.done_walks);
  EXPECT_EQ(a.state.done_attempts, b.state.done_attempts);
  EXPECT_EQ(a.state.done_steps, b.state.done_steps);
}

TEST(ParallelDeterminismTest, OperatorBatchesBitIdenticalClean) {
  const OperatorRun reference = RunOperatorBatches(1, /*with_faults=*/false);
  EXPECT_EQ(reference.samples.size(), 6u * 12u);
  for (size_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectOperatorRunsEqual(reference,
                            RunOperatorBatches(threads, false));
  }
}

TEST(ParallelDeterminismTest, OperatorBatchesBitIdenticalUnderFaults) {
  const OperatorRun reference = RunOperatorBatches(1, /*with_faults=*/true);
  // Faults really fired (otherwise this test proves nothing).
  EXPECT_GT(reference.meter.losses() + reference.telemetry.stalled_steps,
            0u);
  for (size_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectOperatorRunsEqual(reference,
                            RunOperatorBatches(threads, true));
  }
}

// ---------------------------------------------------------------------
// Multi-query node: the coalescing scheduler must preserve the same
// bit-identity contract — N concurrent queries over one shared walk
// batch produce identical results, meters, and traces at any thread
// count, including across a mid-run whole-node checkpoint/restore.

struct NodeDriveResult {
  std::vector<double> reported;  ///< Per tick, per query (id order).
  std::vector<double> ci;
  MessageMeter meter;
  uint64_t coalesced_ticks = 0;
  std::vector<uint64_t> query_messages;  ///< Attribution, by id order.
  std::vector<std::string> trace;
};

/// Drives a 3-query node for `ticks`; when `restore_at` > 0, the run is
/// interrupted there — the node checkpoints, a freshly built node (same
/// seed and issue history) restores the blob, and the tail continues on
/// the restored node.
Result<NodeDriveResult> DriveNode(size_t num_threads, size_t ticks,
                                  size_t restore_at) {
  StaticDriftWorkload workload(MakeMesh(8, 8).value(), kWorkloadSeed);
  obs::MemoryTracer tracer;
  NodeDriveResult out;

  auto build = [&]() -> Result<std::unique_ptr<DigestNode>> {
    DigestEngineOptions options;
    options.scheduler = SchedulerKind::kAll;
    options.estimator = EstimatorKind::kRepeated;
    options.num_threads = num_threads;
    options.sampling_options.walk_length = 16;
    options.sampling_options.reset_length = 4;
    options.tracer = &tracer;
    Rng rng(kEngineSeed);
    DIGEST_ASSIGN_OR_RETURN(NodeId self,
                            workload.graph().RandomLiveNode(rng));
    workload.ProtectNode(self);
    DIGEST_ASSIGN_OR_RETURN(
        std::unique_ptr<DigestNode> node,
        DigestNode::Create(&workload.graph(), &workload.db(), self,
                           rng.Fork(), &out.meter, options));
    for (double eps : {2.0, 4.0, 6.0}) {
      DIGEST_ASSIGN_OR_RETURN(
          const ContinuousQuerySpec spec,
          ContinuousQuerySpec::Create("SELECT AVG(load) FROM R",
                                      PrecisionSpec{1.0, eps, 0.9}));
      DIGEST_RETURN_IF_ERROR(node->IssueQuery(spec).status());
    }
    return node;
  };

  DIGEST_ASSIGN_OR_RETURN(std::unique_ptr<DigestNode> node, build());
  for (size_t t = 0; t < ticks; ++t) {
    if (restore_at > 0 && t == restore_at) {
      DIGEST_ASSIGN_OR_RETURN(const std::string blob, node->Checkpoint());
      // The restored node's meter is `out.meter` too: the engine blobs
      // re-install the same counters the live meter already holds.
      DIGEST_ASSIGN_OR_RETURN(node, build());
      DIGEST_RETURN_IF_ERROR(node->Restore(blob));
    }
    DIGEST_RETURN_IF_ERROR(workload.Advance());
    DIGEST_ASSIGN_OR_RETURN(auto results, node->Tick(workload.now()));
    for (const auto& [id, tick] : results) {
      out.reported.push_back(tick.reported_value);
      out.ci.push_back(tick.ci_halfwidth);
    }
  }
  out.coalesced_ticks = node->coalesced_ticks();
  for (QueryId id : {QueryId{1}, QueryId{2}, QueryId{3}}) {
    DIGEST_ASSIGN_OR_RETURN(const QueryCost cost, node->query_cost(id));
    out.query_messages.push_back(cost.messages);
  }
  out.trace = NormalizeTrace(tracer.events());
  return out;
}

void ExpectNodeRunsEqual(const NodeDriveResult& a,
                         const NodeDriveResult& b) {
  ASSERT_EQ(a.reported.size(), b.reported.size());
  for (size_t i = 0; i < a.reported.size(); ++i) {
    EXPECT_EQ(a.reported[i], b.reported[i]) << "entry " << i;
    EXPECT_EQ(a.ci[i], b.ci[i]) << "entry " << i;
  }
  for (size_t i = 0; i < MessageMeter::kNumCategories; ++i) {
    const auto c = static_cast<MessageMeter::Category>(i);
    EXPECT_EQ(a.meter.Count(c), b.meter.Count(c)) << "category " << i;
  }
  EXPECT_EQ(a.coalesced_ticks, b.coalesced_ticks);
  EXPECT_EQ(a.query_messages, b.query_messages);
}

TEST(ParallelDeterminismTest, MultiQueryNodeBitIdenticalAcrossThreads) {
  Result<NodeDriveResult> reference = DriveNode(1, 12, /*restore_at=*/0);
  ASSERT_TRUE(reference.ok()) << reference.status().message();
  EXPECT_GT(reference->coalesced_ticks, 0u);
  for (size_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Result<NodeDriveResult> run = DriveNode(threads, 12, 0);
    ASSERT_TRUE(run.ok()) << run.status().message();
    ExpectNodeRunsEqual(*reference, *run);
    // Trace lanes (QueryIds and walk indices alike) are part of the
    // contract — byte-compare the normalized JSONL too.
    ASSERT_EQ(reference->trace.size(), run->trace.size());
    for (size_t i = 0; i < reference->trace.size(); ++i) {
      EXPECT_EQ(reference->trace[i], run->trace[i]) << "event " << i;
    }
  }
}

TEST(ParallelDeterminismTest,
     MultiQueryNodeCheckpointRestoreBitIdenticalAcrossThreads) {
  // The uninterrupted single-threaded run is the reference; every other
  // run checkpoints mid-way, restores into a fresh node (at a different
  // thread count), and must land on the same bits. Traces are not
  // compared here: the interrupted runs interleave checkpoint/restore
  // events and re-issue run_begin markers.
  Result<NodeDriveResult> reference = DriveNode(1, 12, /*restore_at=*/0);
  ASSERT_TRUE(reference.ok()) << reference.status().message();
  for (size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Result<NodeDriveResult> run = DriveNode(threads, 12, /*restore_at=*/6);
    ASSERT_TRUE(run.ok()) << run.status().message();
    ExpectNodeRunsEqual(*reference, *run);
  }
}

}  // namespace
}  // namespace digest
