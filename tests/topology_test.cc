#include "net/topology.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace digest {
namespace {

TEST(TopologyTest, RingProperties) {
  Result<Graph> g = MakeRing(8);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NodeCount(), 8u);
  EXPECT_EQ(g->EdgeCount(), 8u);
  for (NodeId id : g->LiveNodes()) EXPECT_EQ(g->Degree(id), 2u);
  EXPECT_TRUE(g->IsConnected());
  EXPECT_FALSE(MakeRing(2).ok());
}

TEST(TopologyTest, CompleteProperties) {
  Result<Graph> g = MakeComplete(6);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NodeCount(), 6u);
  EXPECT_EQ(g->EdgeCount(), 15u);
  for (NodeId id : g->LiveNodes()) EXPECT_EQ(g->Degree(id), 5u);
  EXPECT_FALSE(MakeComplete(1).ok());
}

TEST(TopologyTest, MeshProperties) {
  Result<Graph> g = MakeMesh(3, 4);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NodeCount(), 12u);
  // Grid edges: r*(c-1) + (r-1)*c = 3*3 + 2*4 = 17.
  EXPECT_EQ(g->EdgeCount(), 17u);
  EXPECT_TRUE(g->IsConnected());
  // Corner degree 2, edge degree 3, interior degree 4.
  EXPECT_EQ(g->Degree(0), 2u);
  EXPECT_EQ(g->Degree(1), 3u);
  EXPECT_EQ(g->Degree(5), 4u);
  EXPECT_FALSE(MakeMesh(1, 5).ok());
}

TEST(TopologyTest, TorusMeshIsRegular) {
  Result<Graph> g = MakeMesh(4, 5, /*torus=*/true);
  ASSERT_TRUE(g.ok());
  for (NodeId id : g->LiveNodes()) EXPECT_EQ(g->Degree(id), 4u);
  EXPECT_EQ(g->EdgeCount(), 2u * 20u);
}

TEST(TopologyTest, ErdosRenyiIsAlwaysConnected) {
  Rng rng(42);
  for (int trial = 0; trial < 5; ++trial) {
    Result<Graph> g = MakeErdosRenyi(40, 0.02, rng);  // Sparse: needs repair.
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->NodeCount(), 40u);
    EXPECT_TRUE(g->IsConnected());
  }
  EXPECT_FALSE(MakeErdosRenyi(40, 1.5, rng).ok());
  EXPECT_FALSE(MakeErdosRenyi(1, 0.5, rng).ok());
}

TEST(TopologyTest, ErdosRenyiDenseEdgeCount) {
  Rng rng(7);
  Result<Graph> g = MakeErdosRenyi(50, 0.5, rng);
  ASSERT_TRUE(g.ok());
  const double expected = 0.5 * 50 * 49 / 2;
  EXPECT_NEAR(static_cast<double>(g->EdgeCount()), expected, 120.0);
}

TEST(TopologyTest, BarabasiAlbertBasics) {
  Rng rng(11);
  Result<Graph> g = MakeBarabasiAlbert(200, 3, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NodeCount(), 200u);
  EXPECT_TRUE(g->IsConnected());
  // Each non-seed node adds exactly m edges.
  const size_t seed_edges = 3 * 4 / 2;
  EXPECT_EQ(g->EdgeCount(), seed_edges + (200 - 4) * 3);
  for (NodeId id : g->LiveNodes()) EXPECT_GE(g->Degree(id), 3u);
  EXPECT_FALSE(MakeBarabasiAlbert(3, 3, rng).ok());
  EXPECT_FALSE(MakeBarabasiAlbert(10, 0, rng).ok());
}

TEST(TopologyTest, BarabasiAlbertIsHeavyTailed) {
  Rng rng(13);
  Result<Graph> g = MakeBarabasiAlbert(600, 2, rng);
  ASSERT_TRUE(g.ok());
  size_t max_degree = 0;
  size_t at_minimum = 0;
  for (NodeId id : g->LiveNodes()) {
    max_degree = std::max(max_degree, g->Degree(id));
    if (g->Degree(id) <= 3) ++at_minimum;
  }
  // Hubs far above the minimum degree, most nodes near it: the power-law
  // signature (vs. an ER graph where degrees concentrate).
  EXPECT_GT(max_degree, 30u);
  EXPECT_GT(at_minimum, 600u / 3);
}

TEST(TopologyTest, RepairConnectivityJoinsComponents) {
  Graph g;
  for (int i = 0; i < 6; ++i) g.AddNode();
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  ASSERT_TRUE(g.AddEdge(4, 5).ok());
  Rng rng(17);
  const size_t added = RepairConnectivity(g, rng);
  EXPECT_EQ(added, 2u);
  EXPECT_TRUE(g.IsConnected());
  // Idempotent on a connected graph.
  EXPECT_EQ(RepairConnectivity(g, rng), 0u);
}

// Property sweep: every generator yields a connected graph whose live
// node count matches the request, across sizes.
struct GeneratorCase {
  const char* name;
  size_t n;
};

class GeneratorConnectivity : public ::testing::TestWithParam<size_t> {};

TEST_P(GeneratorConnectivity, AllGeneratorsConnected) {
  const size_t n = GetParam();
  Rng rng(n);
  Result<Graph> ring = MakeRing(n);
  ASSERT_TRUE(ring.ok());
  EXPECT_TRUE(ring->IsConnected());
  Result<Graph> ba = MakeBarabasiAlbert(n, 2, rng);
  ASSERT_TRUE(ba.ok());
  EXPECT_TRUE(ba->IsConnected());
  EXPECT_EQ(ba->NodeCount(), n);
  Result<Graph> er = MakeErdosRenyi(n, 3.0 / static_cast<double>(n), rng);
  ASSERT_TRUE(er.ok());
  EXPECT_TRUE(er->IsConnected());
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratorConnectivity,
                         ::testing::Values(8, 16, 64, 128, 350));

}  // namespace
}  // namespace digest
