// Whole-system integration: the features added across the repository
// working together in one scenario — trace-recorded data replayed on a
// fresh overlay, a DigestNode running AVG-with-WHERE, SUM (sampled size
// oracle), and MEDIAN queries concurrently over shared MCMC sampling,
// all verified against the oracle.
#include <gtest/gtest.h>

#include <cmath>

#include "core/digest_node.h"
#include "workload/memory.h"
#include "workload/trace.h"

namespace digest {
namespace {

TEST(FullIntegrationTest, TraceReplayMultiQueryNode) {
  // 1. Record a churning MEMORY workload into a trace.
  MemoryConfig source_config;
  source_config.num_units = 250;
  source_config.num_nodes = 120;
  auto source = MemoryWorkload::Create(source_config).value();
  Trace trace = RecordWorkload(*source, 60).value();

  // 2. Replay it on a different overlay.
  TraceWorkloadConfig replay_config;
  replay_config.num_nodes = 80;
  replay_config.attribute = "memory";
  replay_config.topology = TraceTopology::kPowerLaw;
  auto workload = TraceWorkload::Create(trace, replay_config).value();

  // 3. One peer, three concurrent continuous queries.
  MessageMeter meter;
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kAll;
  options.estimator = EstimatorKind::kRepeated;
  options.sampler = SamplerKind::kTwoStageMcmc;
  options.sampling_options.walk_length = 60;
  options.sampling_options.reset_length = 15;
  Rng rng(9);
  const NodeId self = workload->graph().RandomLiveNode(rng).value();
  auto node = DigestNode::Create(&workload->graph(), &workload->db(), self,
                                 rng.Fork(), &meter, options)
                  .value();

  const QueryId avg_q =
      node->IssueQuery(
              ContinuousQuerySpec::Create(
                  "SELECT AVG(memory) FROM R WHERE memory BETWEEN 5 AND 60",
                  PrecisionSpec{1.0, 2.0, 0.95})
                  .value())
          .value();
  DigestEngineOptions sum_options = options;
  sum_options.size_oracle = SizeOracleKind::kSampled;
  sum_options.size_estimator_options.collision_target = 60;
  const QueryId sum_q =
      node->IssueQuery(ContinuousQuerySpec::Create(
                           "SELECT SUM(memory) FROM R",
                           PrecisionSpec{100.0, 600.0, 0.95})
                           .value(),
                       sum_options)
          .value();
  const QueryId med_q =
      node->IssueQuery(ContinuousQuerySpec::Create(
                           "SELECT MEDIAN(memory) FROM R",
                           PrecisionSpec{1.0, 0.06, 0.95})
                           .value())
          .value();
  ASSERT_EQ(node->active_queries(), 3u);

  // 4. Drive the replay; every query must stay near its oracle.
  int avg_ok = 0, sum_ok = 0, med_ok = 0;
  const int ticks = 40;
  for (int t = 1; t <= ticks; ++t) {
    ASSERT_TRUE(workload->Advance().ok());
    auto results = node->Tick(t);
    ASSERT_TRUE(results.ok()) << results.status();
    for (const auto& [id, tick] : *results) {
      if (!tick.has_result) continue;
      const auto* engine = node->engine(id).value();
      const double truth =
          workload->db().ExactAggregate(engine->spec().query).value();
      const double err = std::fabs(tick.reported_value - truth);
      if (id == avg_q && err <= 4.0) ++avg_ok;
      if (id == sum_q && err <= 0.35 * truth) ++sum_ok;
      if (id == med_q && err <= 0.25 * truth) ++med_ok;
    }
  }
  EXPECT_GE(avg_ok, ticks * 3 / 4);
  EXPECT_GE(sum_ok, ticks * 3 / 4);
  EXPECT_GE(med_ok, ticks * 3 / 4);
  EXPECT_GT(meter.walk_hops(), 0u);
  EXPECT_GT(meter.refreshes(), 0u);  // RPT retained samples in play.
}

}  // namespace
}  // namespace digest
