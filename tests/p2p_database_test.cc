#include "db/p2p_database.h"

#include <gtest/gtest.h>

namespace digest {
namespace {

P2PDatabase MakeDb() {
  return P2PDatabase(Schema::Create({"x", "y"}).value());
}

TEST(P2PDatabaseTest, NodeLifecycle) {
  P2PDatabase db = MakeDb();
  ASSERT_TRUE(db.AddNode(0).ok());
  EXPECT_TRUE(db.HasNode(0));
  EXPECT_EQ(db.AddNode(0).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(db.RemoveNode(0).ok());
  EXPECT_FALSE(db.HasNode(0));
  EXPECT_EQ(db.RemoveNode(0).code(), StatusCode::kNotFound);
}

TEST(P2PDatabaseTest, ContentSizeAndTotals) {
  P2PDatabase db = MakeDb();
  ASSERT_TRUE(db.AddNode(0).ok());
  ASSERT_TRUE(db.AddNode(1).ok());
  db.StoreAt(0).value()->Insert({1.0, 2.0});
  db.StoreAt(0).value()->Insert({3.0, 4.0});
  db.StoreAt(1).value()->Insert({5.0, 6.0});
  EXPECT_EQ(db.ContentSize(0), 2u);
  EXPECT_EQ(db.ContentSize(1), 1u);
  EXPECT_EQ(db.ContentSize(99), 0u);
  EXPECT_EQ(db.TotalTuples(), 3u);
  EXPECT_EQ(db.Nodes().size(), 2u);
}

TEST(P2PDatabaseTest, StoreAtMissingNodeFails) {
  P2PDatabase db = MakeDb();
  EXPECT_EQ(db.StoreAt(3).status().code(), StatusCode::kNotFound);
}

TEST(P2PDatabaseTest, GetTupleDistinguishesFailureModes) {
  P2PDatabase db = MakeDb();
  ASSERT_TRUE(db.AddNode(0).ok());
  const LocalTupleId id = db.StoreAt(0).value()->Insert({1.0, 2.0});
  Result<Tuple> ok = db.GetTuple(TupleRef{0, id});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, (Tuple{1.0, 2.0}));
  // Deleted tuple -> NotFound.
  ASSERT_TRUE(db.StoreAt(0).value()->Erase(id).ok());
  EXPECT_EQ(db.GetTuple(TupleRef{0, id}).status().code(),
            StatusCode::kNotFound);
  // Departed node -> Unavailable.
  EXPECT_EQ(db.GetTuple(TupleRef{9, 0}).status().code(),
            StatusCode::kUnavailable);
}

TEST(P2PDatabaseTest, ExactAvg) {
  P2PDatabase db = MakeDb();
  ASSERT_TRUE(db.AddNode(0).ok());
  ASSERT_TRUE(db.AddNode(1).ok());
  db.StoreAt(0).value()->Insert({1.0, 10.0});
  db.StoreAt(0).value()->Insert({2.0, 20.0});
  db.StoreAt(1).value()->Insert({3.0, 30.0});
  AggregateQuery q = AggregateQuery::Parse("SELECT AVG(x) FROM R").value();
  Result<double> avg = db.ExactAggregate(q);
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(*avg, 2.0);
}

TEST(P2PDatabaseTest, ExactSumOverExpression) {
  P2PDatabase db = MakeDb();
  ASSERT_TRUE(db.AddNode(0).ok());
  db.StoreAt(0).value()->Insert({1.0, 10.0});
  db.StoreAt(0).value()->Insert({2.0, 20.0});
  AggregateQuery q =
      AggregateQuery::Parse("SELECT SUM(x + y) FROM R").value();
  Result<double> sum = db.ExactAggregate(q);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(*sum, 33.0);
}

TEST(P2PDatabaseTest, ExactCount) {
  P2PDatabase db = MakeDb();
  ASSERT_TRUE(db.AddNode(0).ok());
  db.StoreAt(0).value()->Insert({1.0, 1.0});
  db.StoreAt(0).value()->Insert({2.0, 2.0});
  AggregateQuery q = AggregateQuery::Parse("SELECT COUNT(*) FROM R").value();
  Result<double> count = db.ExactAggregate(q);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(*count, 2.0);
}

TEST(P2PDatabaseTest, AvgOverEmptyRelationFails) {
  P2PDatabase db = MakeDb();
  AggregateQuery q = AggregateQuery::Parse("SELECT AVG(x) FROM R").value();
  EXPECT_EQ(db.ExactAggregate(q).status().code(),
            StatusCode::kFailedPrecondition);
  // SUM and COUNT of the empty relation are 0.
  AggregateQuery sum = AggregateQuery::Parse("SELECT SUM(x) FROM R").value();
  EXPECT_DOUBLE_EQ(db.ExactAggregate(sum).value(), 0.0);
  AggregateQuery cnt =
      AggregateQuery::Parse("SELECT COUNT(*) FROM R").value();
  EXPECT_DOUBLE_EQ(db.ExactAggregate(cnt).value(), 0.0);
}

TEST(P2PDatabaseTest, AggregateWithUnknownAttributeFails) {
  P2PDatabase db = MakeDb();
  ASSERT_TRUE(db.AddNode(0).ok());
  db.StoreAt(0).value()->Insert({1.0, 1.0});
  AggregateQuery q = AggregateQuery::Parse("SELECT AVG(zzz) FROM R").value();
  EXPECT_EQ(db.ExactAggregate(q).status().code(), StatusCode::kNotFound);
}

TEST(P2PDatabaseTest, RemoveNodeDropsItsTuples) {
  P2PDatabase db = MakeDb();
  ASSERT_TRUE(db.AddNode(0).ok());
  ASSERT_TRUE(db.AddNode(1).ok());
  db.StoreAt(0).value()->Insert({1.0, 0.0});
  db.StoreAt(1).value()->Insert({100.0, 0.0});
  ASSERT_TRUE(db.RemoveNode(1).ok());
  EXPECT_EQ(db.TotalTuples(), 1u);
  AggregateQuery q = AggregateQuery::Parse("SELECT AVG(x) FROM R").value();
  EXPECT_DOUBLE_EQ(db.ExactAggregate(q).value(), 1.0);
}

TEST(SchemaTest, CreateValidation) {
  EXPECT_FALSE(Schema::Create({}).ok());
  EXPECT_FALSE(Schema::Create({""}).ok());
  EXPECT_FALSE(Schema::Create({"a", "a"}).ok());
  Result<Schema> s = Schema::Create({"a", "b"});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->NumAttributes(), 2u);
  EXPECT_EQ(s->AttributeName(1), "b");
  EXPECT_EQ(s->AttributeIndex("b").value(), 1u);
  EXPECT_EQ(s->AttributeIndex("c").status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace digest
