// Failure-injection tests: the full Digest stack under aggressive
// membership churn and adversarial conditions — the situations a
// deployment hits that the paper's clean analysis glosses over.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/engine.h"
#include "diag/diag.h"
#include "net/topology.h"
#include "workload/experiment.h"
#include "workload/memory.h"

namespace digest {
namespace {

TEST(ChurnStressTest, EngineSurvivesHeavyChurn) {
  MemoryConfig config;
  config.num_units = 300;
  config.num_nodes = 150;
  config.join_rate = 4.0;   // ~2.7% of the network churning per tick.
  config.leave_rate = 4.0;
  auto workload = MemoryWorkload::Create(config).value();
  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(memory) FROM R",
                                  PrecisionSpec{3.0, 3.0, 0.95})
          .value();
  DigestEngineOptions options;
  options.sampler = SamplerKind::kTwoStageMcmc;
  options.sampling_options.walk_length = 60;
  options.sampling_options.reset_length = 15;
  Result<RunResult> run =
      RunEngineExperiment(*workload, spec, options, 120, 1);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_GT(run->stats.snapshots, 0u);
  // Even under heavy churn the estimate stays in the right region most
  // of the time.
  EXPECT_GT(run->precision.within_tolerance_fraction, 0.5);
}

TEST(ChurnStressTest, QueryingNodeProtectedThroughHeavyChurn) {
  MemoryConfig config;
  config.num_units = 200;
  config.num_nodes = 100;
  config.join_rate = 6.0;
  config.leave_rate = 6.0;
  auto workload = MemoryWorkload::Create(config).value();
  Rng rng(2);
  const NodeId querying_node =
      workload->graph().RandomLiveNode(rng).value();
  workload->ProtectNode(querying_node);
  for (int t = 0; t < 150; ++t) {
    ASSERT_TRUE(workload->Advance().ok());
    ASSERT_TRUE(workload->graph().HasNode(querying_node)) << "tick " << t;
    ASSERT_TRUE(workload->graph().IsConnected()) << "tick " << t;
  }
}

TEST(ChurnStressTest, SamplingOperatorSurvivesMassDeparture) {
  // Remove 60% of the network between two batches; warm agents stranded
  // on dead nodes must restart cleanly.
  Rng topo(3);
  Graph graph = MakeBarabasiAlbert(100, 3, topo).value();
  SamplingOperatorOptions options;
  options.walk_length = 50;
  options.reset_length = 15;
  SamplingOperator op(&graph, UniformWeight(), Rng(4), nullptr, options);
  ASSERT_TRUE(op.SampleNodes(0, 20).ok());

  Rng rng(5);
  size_t removed = 0;
  for (NodeId victim : graph.LiveNodes()) {
    if (victim == 0) continue;  // Keep the origin.
    if (rng.NextBernoulli(0.6)) {
      ASSERT_TRUE(graph.RemoveNode(victim).ok());
      ++removed;
    }
  }
  ASSERT_GT(removed, 30u);
  RepairConnectivity(graph, rng);

  Result<std::vector<NodeId>> nodes = op.SampleNodes(0, 20);
  ASSERT_TRUE(nodes.ok()) << nodes.status();
  for (NodeId v : *nodes) EXPECT_TRUE(graph.HasNode(v));
}

struct ChurnDiagRun {
  std::vector<NodeId> first_batch;
  std::vector<NodeId> second_batch;
  size_t live_after = 0;
  uint64_t live_peers_before = 0;
  uint64_t live_peers_after = 0;
  uint64_t batches = 0;
  std::string summary;
};

/// Two sampling batches with a 60% mass departure in between, with the
/// sampler diagnostics optionally attached. Same fixed seeds every
/// call, so any two runs must produce identical samples.
ChurnDiagRun DriveChurnedBatches(diag::SamplerDiag* diag) {
  Rng topo(3);
  Graph graph = MakeBarabasiAlbert(100, 3, topo).value();
  SamplingOperatorOptions options;
  options.walk_length = 50;
  options.reset_length = 15;
  SamplingOperator op(&graph, UniformWeight(), Rng(4), nullptr, options);
  if (diag != nullptr) op.SetDiag(diag);

  ChurnDiagRun run;
  run.first_batch = op.SampleNodes(0, 20).value();
  if (diag != nullptr) run.live_peers_before = diag->last_batch().live_peers;

  Rng rng(5);
  for (NodeId victim : graph.LiveNodes()) {
    if (victim == 0) continue;  // Keep the origin.
    if (rng.NextBernoulli(0.6)) EXPECT_TRUE(graph.RemoveNode(victim).ok());
  }
  RepairConnectivity(graph, rng);
  run.live_after = graph.NodeCount();

  run.second_batch = op.SampleNodes(0, 20).value();
  if (diag != nullptr) {
    run.live_peers_after = diag->last_batch().live_peers;
    run.batches = diag->batches();
    run.summary = diag->SummaryJson();
  }
  for (NodeId v : run.second_batch) EXPECT_TRUE(graph.HasNode(v));
  return run;
}

TEST(ChurnStressTest, DiagVisitTargetRebasesAfterMassDeparture) {
  // Sampler-introspection under churn: after 60% of the network leaves,
  // the next batch's stationary target is rebased on the survivors —
  // departed peers contribute no target mass — and attaching the
  // diagnostics never perturbs the walk schedule.
  diag::SamplerDiag diag;
  const ChurnDiagRun diagnosed = DriveChurnedBatches(&diag);
  ASSERT_EQ(diagnosed.batches, 2u);
  EXPECT_EQ(diagnosed.live_peers_before, 100u);
  EXPECT_EQ(diagnosed.live_peers_after, diagnosed.live_after);
  EXPECT_LT(diagnosed.live_peers_after, 60u);  // The departure happened.
  // Live visits land only on survivors, so the post-churn histogram is
  // still a probability distribution over the rebased target: TV ≤ 1.
  EXPECT_GT(diag.last_batch().live_visits, 0u);
  EXPECT_LE(diag.last_batch().tv_distance, 1.0);

  // Determinism, both ways: a diag-free run draws the same samples
  // (observation is pure), and a second diagnosed run reproduces the
  // summary byte-for-byte.
  const ChurnDiagRun plain = DriveChurnedBatches(nullptr);
  EXPECT_EQ(diagnosed.first_batch, plain.first_batch);
  EXPECT_EQ(diagnosed.second_batch, plain.second_batch);
  diag::SamplerDiag diag2;
  const ChurnDiagRun repeat = DriveChurnedBatches(&diag2);
  ASSERT_FALSE(diagnosed.summary.empty());
  EXPECT_EQ(diagnosed.summary, repeat.summary);
}

TEST(ChurnStressTest, RetainedPoolSurvivesDepartureOfSampledNodes) {
  // RPT carries a retained sample pool across occasions. When the nodes
  // hosting retained samples depart between occasions, the refresh pass
  // must fall back to the samples it can still reach — answering every
  // tick with an unbiased regression — instead of failing or letting
  // vanished pairs skew ρ̂.
  Graph graph = MakeComplete(40).value();
  P2PDatabase db(Schema::Create({"v"}).value());
  Rng data(11);
  for (NodeId node : graph.LiveNodes()) {
    ASSERT_TRUE(db.AddNode(node).ok());
    for (int i = 0; i < 20; ++i) {
      db.StoreAt(node).value()->Insert({data.NextGaussian(100, 5)});
    }
  }
  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(v) FROM R",
                                  PrecisionSpec{2.0, 2.0, 0.9})
          .value();
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kAll;
  options.estimator = EstimatorKind::kRepeated;
  options.sampler = SamplerKind::kTwoStageMcmc;
  options.sampling_options.walk_length = 20;
  options.sampling_options.reset_length = 5;
  auto engine =
      DigestEngine::Create(&graph, &db, spec, 0, Rng(12), nullptr, options)
          .value();
  // A few occasions to populate the retained pool.
  for (int64_t t = 1; t <= 4; ++t) ASSERT_TRUE(engine->Tick(t).ok());

  // Half the network leaves with its content — including whatever
  // retained samples it hosted.
  Rng rng(13);
  size_t removed = 0;
  for (NodeId victim : graph.LiveNodes()) {
    if (victim == 0) continue;  // Keep the querying node.
    if (rng.NextBernoulli(0.5)) {
      ASSERT_TRUE(graph.RemoveNode(victim).ok());
      ASSERT_TRUE(db.RemoveNode(victim).ok());
      ++removed;
    }
  }
  ASSERT_GT(removed, 10u);
  RepairConnectivity(graph, rng);

  for (int64_t t = 5; t <= 10; ++t) {
    Result<EngineTickResult> r = engine->Tick(t);
    ASSERT_TRUE(r.ok()) << r.status();
    const double truth = db.ExactAggregate(spec.query).value();
    EXPECT_NEAR(r->reported_value, truth, 5.0) << "tick " << t;
  }
  // A regression biased by vanished pairs would push ρ̂ out of range
  // (or to NaN); the fallback must keep it a valid correlation.
  const double rho = engine->correlation_estimate();
  EXPECT_TRUE(std::isfinite(rho));
  EXPECT_LE(std::fabs(rho), 1.0);
}

TEST(ChurnStressTest, TwoStageSamplerFailsCleanlyOnEmptyStores) {
  // A network whose stores are all empty must produce kUnavailable, not
  // an infinite retry loop.
  Graph graph = MakeComplete(5).value();
  P2PDatabase db(Schema::Create({"v"}).value());
  for (NodeId node : graph.LiveNodes()) ASSERT_TRUE(db.AddNode(node).ok());
  // One tuple exists so TotalTuples() > 0, then it is deleted while the
  // content-size weights still remember it... simulate by inserting on a
  // node that immediately leaves the *graph* (weights see the db).
  const LocalTupleId id = db.StoreAt(4).value()->Insert({1.0});
  ASSERT_TRUE(graph.RemoveNode(4).ok());
  (void)id;
  SamplingOperatorOptions options;
  options.walk_length = 10;
  SamplingOperator op(&graph, ContentSizeWeight(db), Rng(6), nullptr,
                      options);
  TwoStageTupleSampler sampler(&db, &op, Rng(7));
  Result<std::vector<TupleSample>> batch = sampler.SampleBatch(0, 5);
  EXPECT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kUnavailable);
}

TEST(ChurnStressTest, EngineRejectsDeadQueryingNodeAtCreate) {
  Graph graph = MakeComplete(4).value();
  P2PDatabase db(Schema::Create({"v"}).value());
  for (NodeId node : graph.LiveNodes()) {
    ASSERT_TRUE(db.AddNode(node).ok());
    db.StoreAt(node).value()->Insert({1.0});
  }
  ASSERT_TRUE(graph.RemoveNode(2).ok());
  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(v) FROM R",
                                  PrecisionSpec{1.0, 1.0, 0.95})
          .value();
  EXPECT_FALSE(
      DigestEngine::Create(&graph, &db, spec, 2, Rng(8), nullptr).ok());
}

TEST(ChurnStressTest, EngineKeepsWorkingWhenOriginLosesAllContent) {
  // The querying node's own store empties out mid-query; sampling must
  // keep pulling from the rest of the network.
  Graph graph = MakeComplete(6).value();
  P2PDatabase db(Schema::Create({"v"}).value());
  Rng data(9);
  std::vector<LocalTupleId> origin_tuples;
  for (NodeId node : graph.LiveNodes()) {
    ASSERT_TRUE(db.AddNode(node).ok());
    for (int i = 0; i < 50; ++i) {
      const LocalTupleId id =
          db.StoreAt(node).value()->Insert({data.NextGaussian(10, 2)});
      if (node == 0) origin_tuples.push_back(id);
    }
  }
  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(v) FROM R",
                                  PrecisionSpec{0.5, 1.0, 0.95})
          .value();
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kAll;
  options.sampler = SamplerKind::kTwoStageMcmc;
  options.sampling_options.walk_length = 30;
  auto engine =
      DigestEngine::Create(&graph, &db, spec, 0, Rng(10), nullptr, options)
          .value();
  ASSERT_TRUE(engine->Tick(1).ok());
  for (LocalTupleId id : origin_tuples) {
    ASSERT_TRUE(db.StoreAt(0).value()->Erase(id).ok());
  }
  Result<EngineTickResult> r = engine->Tick(2);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NEAR(r->reported_value, 10.0, 2.0);
}

}  // namespace
}  // namespace digest
