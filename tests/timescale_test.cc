#include "workload/timescale.h"

#include <gtest/gtest.h>

#include <cmath>

#include "numeric/stats.h"

#include "workload/temperature.h"

namespace digest {
namespace {

struct Fixture {
  std::unique_ptr<TemperatureWorkload> workload;
  std::unique_ptr<ExactTupleSampler> sampler;
  std::unique_ptr<ExactSampleSource> inner;

  Fixture() {
    TemperatureConfig config;
    config.num_units = 400;
    config.num_nodes = 25;
    workload = TemperatureWorkload::Create(config).value();
    sampler = std::make_unique<ExactTupleSampler>(&workload->db(), Rng(1),
                                                  nullptr);
    inner = std::make_unique<ExactSampleSource>(sampler.get());
  }
};

TEST(InterleavingSourceTest, LargeQuotaNeverAdvances) {
  Fixture f;
  InterleavingSampleSource source(f.inner.get(), f.workload.get(), 1 << 20);
  Result<std::vector<TupleSample>> batch = source.DrawFresh(0, 200);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 200u);
  EXPECT_EQ(source.mid_occasion_advances(), 0u);
  EXPECT_EQ(f.workload->now(), 0);
}

TEST(InterleavingSourceTest, AdvancesEveryKDraws) {
  Fixture f;
  InterleavingSampleSource source(f.inner.get(), f.workload.get(), 10);
  ASSERT_TRUE(source.DrawFresh(0, 35).ok());
  EXPECT_EQ(source.mid_occasion_advances(), 3u);
  EXPECT_EQ(f.workload->now(), 3);
  // The quota carries across calls: 5 pending + 5 more = one advance.
  ASSERT_TRUE(source.DrawFresh(0, 5).ok());
  EXPECT_EQ(source.mid_occasion_advances(), 4u);
}

TEST(InterleavingSourceTest, ZeroQuotaBehavesAsOne) {
  Fixture f;
  InterleavingSampleSource source(f.inner.get(), f.workload.get(), 0);
  ASSERT_TRUE(source.DrawFresh(0, 7).ok());
  EXPECT_EQ(source.mid_occasion_advances(), 7u);
}

TEST(InterleavingSourceTest, FastChangeDegradesSnapshotAccuracy) {
  // The §VIII #3 effect: with the workload frozen during the occasion,
  // the estimate matches the end oracle tightly; advancing every few
  // draws smears it. Compare mean absolute error over trials.
  auto run = [&](size_t k) {
    RunningStats err;
    for (int trial = 0; trial < 12; ++trial) {
      TemperatureConfig config;
      config.num_units = 400;
      config.num_nodes = 25;
      config.seed = 77 + trial;
      auto workload = TemperatureWorkload::Create(config).value();
      for (int t = 0; t < 3; ++t) EXPECT_TRUE(workload->Advance().ok());
      ExactTupleSampler sampler(&workload->db(), Rng(10 + trial), nullptr);
      ExactSampleSource inner(&sampler);
      InterleavingSampleSource source(&inner, workload.get(), k);
      ContinuousQuerySpec spec =
          ContinuousQuerySpec::Create("SELECT AVG(temperature) FROM R",
                                      PrecisionSpec{1.0, 0.5, 0.95})
              .value();
      IndependentEstimator est(spec, &workload->db(), &source, nullptr,
                               nullptr, Rng(100 + trial));
      Result<SnapshotEstimate> e = est.Evaluate(0);
      EXPECT_TRUE(e.ok());
      if (!e.ok()) continue;
      AggregateQuery q = spec.query;
      const double oracle = workload->db().ExactAggregate(q).value();
      err.Add(std::fabs(e->value - oracle));
    }
    return err.Mean();
  };
  const double err_static = run(1 << 20);
  const double err_fast = run(2);
  EXPECT_LT(err_static, err_fast);
}

}  // namespace
}  // namespace digest
