#include "db/predicate.h"

#include <gtest/gtest.h>

#include "db/query.h"

namespace digest {
namespace {

Schema TestSchema() {
  return Schema::Create({"cpu", "memory", "storage", "bandwidth"}).value();
}

bool Eval(const std::string& text, const Tuple& tuple) {
  Result<Predicate> pred = Predicate::Parse(text);
  EXPECT_TRUE(pred.ok()) << text << ": " << pred.status();
  if (!pred.ok()) return false;
  Schema schema = TestSchema();
  EXPECT_TRUE(pred->Bind(schema).ok());
  Result<bool> v = pred->Evaluate(tuple);
  EXPECT_TRUE(v.ok()) << v.status();
  return v.value_or(false);
}

TEST(PredicateTest, TrivialPredicateIsAlwaysTrue) {
  Predicate p;
  EXPECT_TRUE(p.IsTrivial());
  EXPECT_TRUE(p.bound());
  EXPECT_TRUE(p.Evaluate({1.0}).value());
  EXPECT_EQ(p.ToString(), "TRUE");
}

TEST(PredicateTest, Comparisons) {
  const Tuple t = {4.0, 8.0, 16.0, 2.0};  // cpu memory storage bandwidth
  EXPECT_TRUE(Eval("cpu < memory", t));
  EXPECT_FALSE(Eval("cpu > memory", t));
  EXPECT_TRUE(Eval("cpu <= 4", t));
  EXPECT_TRUE(Eval("cpu >= 4", t));
  EXPECT_FALSE(Eval("cpu < 4", t));
  EXPECT_TRUE(Eval("cpu = 4", t));
  EXPECT_TRUE(Eval("cpu == 4", t));
  EXPECT_TRUE(Eval("cpu != 5", t));
  EXPECT_TRUE(Eval("cpu <> 5", t));
  EXPECT_FALSE(Eval("cpu != 4", t));
}

TEST(PredicateTest, ArithmeticInComparisons) {
  const Tuple t = {4.0, 8.0, 16.0, 2.0};
  EXPECT_TRUE(Eval("memory + storage > 20", t));
  EXPECT_TRUE(Eval("2 * cpu = memory", t));
  EXPECT_TRUE(Eval("(memory + storage) / 2 >= 12", t));
  EXPECT_TRUE(Eval("-cpu < 0", t));
}

TEST(PredicateTest, BooleanConnectives) {
  const Tuple t = {4.0, 8.0, 16.0, 2.0};
  EXPECT_TRUE(Eval("cpu > 1 AND memory > 1", t));
  EXPECT_FALSE(Eval("cpu > 1 AND memory > 100", t));
  EXPECT_TRUE(Eval("cpu > 100 OR memory > 1", t));
  EXPECT_FALSE(Eval("cpu > 100 OR memory > 100", t));
  EXPECT_TRUE(Eval("NOT cpu > 100", t));
  EXPECT_FALSE(Eval("NOT cpu > 1", t));
  // Precedence: AND binds tighter than OR.
  EXPECT_TRUE(Eval("cpu > 100 AND memory > 1 OR storage > 1", t));
  EXPECT_FALSE(Eval("cpu > 100 AND (memory > 1 OR storage > 1)", t));
}

TEST(PredicateTest, KeywordsAreCaseInsensitive) {
  const Tuple t = {4.0, 8.0, 16.0, 2.0};
  EXPECT_TRUE(Eval("cpu > 1 and memory > 1", t));
  EXPECT_TRUE(Eval("not cpu > 100 Or memory > 100", t));
}

TEST(PredicateTest, ParenthesizedBooleanVsArithmetic) {
  const Tuple t = {4.0, 8.0, 16.0, 2.0};
  // '(a) > 1' — parenthesized arithmetic on the left of a comparison.
  EXPECT_TRUE(Eval("(cpu) > 1", t));
  EXPECT_TRUE(Eval("(cpu + memory) > 10", t));
  // '(a > 1)' — parenthesized boolean.
  EXPECT_TRUE(Eval("(cpu > 1)", t));
  EXPECT_TRUE(Eval("(cpu > 1 AND memory > 1) OR bandwidth > 100", t));
}

TEST(PredicateTest, IdentifiersContainingKeywordLetters) {
  // Attribute names that merely *start* with AND/OR/NOT must not be
  // mistaken for keywords.
  Result<Predicate> pred = Predicate::Parse("android > 1");
  ASSERT_TRUE(pred.ok());
  ASSERT_EQ(pred->attributes().size(), 1u);
  EXPECT_EQ(pred->attributes()[0], "android");
}

TEST(PredicateTest, ParseErrors) {
  EXPECT_FALSE(Predicate::Parse("").ok());
  EXPECT_FALSE(Predicate::Parse("cpu").ok());        // No comparison.
  EXPECT_FALSE(Predicate::Parse("cpu >").ok());
  EXPECT_FALSE(Predicate::Parse("cpu > 1 AND").ok());
  EXPECT_FALSE(Predicate::Parse("(cpu > 1").ok());
  EXPECT_FALSE(Predicate::Parse("cpu > 1 extra").ok());
  EXPECT_FALSE(Predicate::Parse("> 1").ok());
}

TEST(PredicateTest, BindFailsOnUnknownAttribute) {
  Result<Predicate> pred = Predicate::Parse("ghost > 1");
  ASSERT_TRUE(pred.ok());
  Schema schema = TestSchema();
  EXPECT_EQ(pred->Bind(schema).code(), StatusCode::kNotFound);
}

TEST(PredicateTest, EvaluateWithoutBindFails) {
  Result<Predicate> pred = Predicate::Parse("cpu > 1");
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->Evaluate({1.0}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(PredicateTest, ArithmeticErrorsPropagate) {
  Result<Predicate> pred = Predicate::Parse("1 / cpu > 0");
  ASSERT_TRUE(pred.ok());
  Schema schema = TestSchema();
  ASSERT_TRUE(pred->Bind(schema).ok());
  EXPECT_EQ(pred->Evaluate({0.0, 0, 0, 0}).status().code(),
            StatusCode::kNumericError);
}

TEST(PredicateTest, ToStringRoundTripsSemantics) {
  Result<Predicate> pred =
      Predicate::Parse("NOT (cpu > 1 AND memory <= 3) OR storage != 2");
  ASSERT_TRUE(pred.ok());
  Result<Predicate> reparsed = Predicate::Parse(pred->ToString());
  ASSERT_TRUE(reparsed.ok()) << pred->ToString();
  Schema schema = TestSchema();
  ASSERT_TRUE(pred->Bind(schema).ok());
  ASSERT_TRUE(reparsed->Bind(schema).ok());
  for (double cpu : {0.0, 2.0}) {
    for (double mem : {1.0, 5.0}) {
      for (double sto : {2.0, 7.0}) {
        const Tuple t = {cpu, mem, sto, 0.0};
        EXPECT_EQ(pred->Evaluate(t).value(), reparsed->Evaluate(t).value());
      }
    }
  }
}

TEST(QueryWhereTest, ParsesWhereClause) {
  Result<AggregateQuery> q = AggregateQuery::Parse(
      "SELECT AVG(memory) FROM R WHERE cpu > 2 AND memory < 100");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_FALSE(q->where.IsTrivial());
  EXPECT_EQ(q->where.attributes().size(), 2u);
}

TEST(QueryWhereTest, NoWhereIsTrivial) {
  Result<AggregateQuery> q =
      AggregateQuery::Parse("SELECT AVG(memory) FROM R");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->where.IsTrivial());
}

TEST(QueryWhereTest, WhereWithSemicolon) {
  Result<AggregateQuery> q =
      AggregateQuery::Parse("SELECT SUM(cpu) FROM R WHERE cpu >= 1;");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_FALSE(q->where.IsTrivial());
}

TEST(QueryWhereTest, EmptyWhereFails) {
  EXPECT_FALSE(AggregateQuery::Parse("SELECT AVG(a) FROM R WHERE").ok());
  EXPECT_FALSE(AggregateQuery::Parse("SELECT AVG(a) FROM R WHERE ;").ok());
}

TEST(QueryWhereTest, ToStringIncludesWhere) {
  Result<AggregateQuery> q = AggregateQuery::Parse(
      "select count(*) from R where bandwidth >= 10");
  ASSERT_TRUE(q.ok());
  const std::string text = q->ToString();
  EXPECT_NE(text.find("WHERE"), std::string::npos);
  Result<AggregateQuery> reparsed = AggregateQuery::Parse(text);
  ASSERT_TRUE(reparsed.ok()) << text;
}

}  // namespace
}  // namespace digest
