#include "workload/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "workload/calibration.h"
#include "workload/memory.h"
#include "workload/temperature.h"

namespace digest {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceTest, FromRecordsSortsAndValidates) {
  Result<Trace> trace = Trace::FromRecords({
      {2, 1, 5.0, false},
      {0, 1, 1.0, false},
      {1, 1, 3.0, false},
  });
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace->records().size(), 3u);
  EXPECT_EQ(trace->records()[0].tick, 0);
  EXPECT_EQ(trace->records()[2].tick, 2);
  EXPECT_EQ(trace->max_tick(), 2);
  EXPECT_EQ(trace->num_units(), 1u);
}

TEST(TraceTest, RejectsInvalidSequences) {
  // Delete of a never-inserted unit.
  EXPECT_FALSE(Trace::FromRecords({{0, 1, 0.0, true}}).ok());
  // Update after delete.
  EXPECT_FALSE(Trace::FromRecords({{0, 1, 1.0, false},
                                   {1, 1, 0.0, true},
                                   {2, 1, 2.0, false}})
                   .ok());
  // Negative tick.
  EXPECT_FALSE(Trace::FromRecords({{-1, 1, 1.0, false}}).ok());
  // Non-finite value.
  EXPECT_FALSE(
      Trace::FromRecords({{0, 1, std::nan(""), false}}).ok());
}

TEST(TraceTest, CsvRoundTrip) {
  Trace original = Trace::FromRecords({{0, 0, 1.25, false},
                                       {0, 1, -3.5, false},
                                       {1, 0, 2.0, false},
                                       {2, 1, 0.0, true}})
                       .value();
  const std::string path = TempPath("trace.csv");
  ASSERT_TRUE(original.SaveCsv(path).ok());
  Result<Trace> loaded = Trace::LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->records().size(), original.records().size());
  for (size_t i = 0; i < original.records().size(); ++i) {
    EXPECT_EQ(loaded->records()[i].tick, original.records()[i].tick);
    EXPECT_EQ(loaded->records()[i].unit, original.records()[i].unit);
    EXPECT_EQ(loaded->records()[i].value, original.records()[i].value);
    EXPECT_EQ(loaded->records()[i].deleted, original.records()[i].deleted);
  }
  std::remove(path.c_str());
}

TEST(TraceTest, LoadRejectsMalformedFiles) {
  const std::string path = TempPath("bad_trace.csv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("wrong,header\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(Trace::LoadCsv(path).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("tick,unit,value,deleted\nnot-a-number,0,1,0\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(Trace::LoadCsv(path).ok());
  EXPECT_FALSE(Trace::LoadCsv("/does/not/exist.csv").ok());
  std::remove(path.c_str());
}

TEST(TraceTest, LoadErrorPathsReportPreciseCauses) {
  const std::string path = TempPath("bad_trace2.csv");
  auto write = [&](const char* body) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs(body, f);
    std::fclose(f);
  };

  // A zero-byte file is a parse error, not "no records".
  write("");
  Result<Trace> empty = Trace::LoadCsv(path);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kParseError);
  EXPECT_NE(empty.status().message().find("empty trace file"),
            std::string::npos);

  // Missing (reordered) header names the offending line.
  write("unit,tick,value,deleted\n0,0,1,0\n");
  Result<Trace> header = Trace::LoadCsv(path);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kParseError);
  EXPECT_NE(header.status().message().find("unexpected trace header"),
            std::string::npos);

  // A malformed row names its 1-based line number.
  write("tick,unit,value,deleted\n0,0,1.0,0\n3,7,oops,0\n");
  Result<Trace> row = Trace::LoadCsv(path);
  ASSERT_FALSE(row.ok());
  EXPECT_EQ(row.status().code(), StatusCode::kParseError);
  EXPECT_NE(row.status().message().find("malformed trace line 3"),
            std::string::npos);

  // A row whose value is non-finite parses but fails validation.
  write("tick,unit,value,deleted\n0,0,nan,0\n");
  EXPECT_FALSE(Trace::LoadCsv(path).ok());

  // Update-after-delete surfaces through LoadCsv via FromRecords: the
  // per-unit lifecycle check runs on loaded traces too.
  write("tick,unit,value,deleted\n0,5,1.0,0\n1,5,0.0,1\n2,5,2.0,0\n");
  Result<Trace> zombie = Trace::LoadCsv(path);
  ASSERT_FALSE(zombie.ok());
  EXPECT_EQ(zombie.status().code(), StatusCode::kInvalidArgument);

  // Blank lines between valid rows are tolerated, not an error.
  write("tick,unit,value,deleted\n0,1,1.5,0\n\n1,1,2.5,0\n");
  Result<Trace> blank = Trace::LoadCsv(path);
  ASSERT_TRUE(blank.ok()) << blank.status();
  EXPECT_EQ(blank->records().size(), 2u);
  std::remove(path.c_str());
}

TEST(TraceTest, ReplayReproducesAggregateSeries) {
  // Record a temperature workload, replay the trace, and check the
  // oracle AVG series matches tick for tick.
  TemperatureConfig config;
  config.num_units = 300;
  config.num_nodes = 25;
  auto original = TemperatureWorkload::Create(config).value();
  AggregateQuery q =
      AggregateQuery::Parse("SELECT AVG(temperature) FROM R").value();
  // Capture the series while recording.
  auto source = TemperatureWorkload::Create(config).value();
  std::vector<double> expected;
  for (int t = 0; t < 30; ++t) {
    ASSERT_TRUE(source->Advance().ok());
    expected.push_back(source->db().ExactAggregate(q).value());
  }
  Trace trace = RecordWorkload(*original, 30).value();
  EXPECT_EQ(trace.max_tick(), 30);
  EXPECT_EQ(trace.num_units(), 300u);

  TraceWorkloadConfig replay_config;
  replay_config.num_nodes = 25;
  replay_config.attribute = "temperature";
  replay_config.topology = TraceTopology::kMesh;
  auto replay = TraceWorkload::Create(trace, replay_config).value();
  EXPECT_EQ(replay->db().TotalTuples(), 300u);
  for (int t = 0; t < 30; ++t) {
    ASSERT_TRUE(replay->Advance().ok());
    EXPECT_NEAR(replay->db().ExactAggregate(q).value(), expected[t], 1e-9)
        << "tick " << t;
  }
  // Past the end of the trace the data is quiescent.
  const double last = replay->db().ExactAggregate(q).value();
  ASSERT_TRUE(replay->Advance().ok());
  EXPECT_DOUBLE_EQ(replay->db().ExactAggregate(q).value(), last);
}

TEST(TraceTest, ReplayCarriesChurnAsInsertsAndDeletes) {
  MemoryConfig config;
  config.num_units = 120;
  config.num_nodes = 70;
  auto original = MemoryWorkload::Create(config).value();
  Trace trace = RecordWorkload(*original, 40).value();

  TraceWorkloadConfig replay_config;
  replay_config.num_nodes = 50;  // Different overlay is fine.
  replay_config.attribute = "memory";
  auto replay = TraceWorkload::Create(trace, replay_config).value();
  Result<DatasetStatistics> stats = MeasureWorkloadStatistics(*replay, 40);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->joins, 0u);   // SETI@home churn shows up in the data.
  EXPECT_GT(stats->leaves, 0u);
}

TEST(TraceTest, ReplayValidation) {
  Trace trace = Trace::FromRecords({{0, 0, 1.0, false}}).value();
  TraceWorkloadConfig config;
  config.num_nodes = 2;
  EXPECT_FALSE(TraceWorkload::Create(trace, config).ok());
}

}  // namespace
}  // namespace digest
