#include "core/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "net/message_meter.h"

namespace digest {
namespace {

PrecisionSpec Spec(double delta, double epsilon) {
  return PrecisionSpec{delta, epsilon, 0.95};
}

TEST(MetricsTest, PerfectSeries) {
  const std::vector<double> series = {1.0, 2.0, 3.0};
  Result<PrecisionReport> r = EvaluatePrecision(series, series, Spec(1, 1));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->mean_abs_error, 0.0);
  EXPECT_DOUBLE_EQ(r->max_abs_error, 0.0);
  EXPECT_DOUBLE_EQ(r->within_tolerance_fraction, 1.0);
  EXPECT_EQ(r->ticks, 3u);
}

TEST(MetricsTest, KnownErrors) {
  const std::vector<double> reported = {1.0, 2.0, 10.0};
  const std::vector<double> truth = {1.5, 2.0, 4.0};
  Result<PrecisionReport> r =
      EvaluatePrecision(reported, truth, Spec(1.0, 1.0));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->mean_abs_error, (0.5 + 0.0 + 6.0) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(r->max_abs_error, 6.0);
  // Tolerance = delta + epsilon = 2: first two ticks qualify.
  EXPECT_NEAR(r->within_tolerance_fraction, 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, RejectsBadInput) {
  EXPECT_FALSE(EvaluatePrecision({}, {}, Spec(1, 1)).ok());
  EXPECT_FALSE(EvaluatePrecision({1.0}, {1.0, 2.0}, Spec(1, 1)).ok());
  PrecisionSpec bad = Spec(1, 1);
  bad.confidence = 0.0;
  EXPECT_FALSE(EvaluatePrecision({1.0}, {1.0}, bad).ok());
}

TEST(PrecisionSpecTest, Validation) {
  EXPECT_TRUE((PrecisionSpec{0.0, 1.0, 0.5}).Validate().ok());
  EXPECT_FALSE((PrecisionSpec{-1.0, 1.0, 0.5}).Validate().ok());
  EXPECT_FALSE((PrecisionSpec{0.0, 0.0, 0.5}).Validate().ok());
  EXPECT_FALSE((PrecisionSpec{0.0, 1.0, 0.0}).Validate().ok());
  EXPECT_FALSE((PrecisionSpec{0.0, 1.0, 1.0}).Validate().ok());
}

TEST(MetricsTest, WidenedContractUsesPerTickIntervals) {
  const std::vector<double> reported = {1.0, 2.0, 10.0};
  const std::vector<double> truth = {1.5, 2.0, 4.0};
  // Plain contract (δ=1, ε=1 → tolerance 2): last tick misses by 6.
  Result<PrecisionReport> plain =
      EvaluatePrecision(reported, truth, Spec(1.0, 1.0));
  ASSERT_TRUE(plain.ok());
  EXPECT_NEAR(plain->within_tolerance_fraction, 2.0 / 3.0, 1e-12);
  // Widened: the last tick was answered degraded with ci = 5, so its
  // tolerance is max(ε, 5) + δ = 6 and the miss becomes a hit.
  Result<PrecisionReport> widened = EvaluatePrecisionWidened(
      reported, truth, {1.0, 1.0, 5.0}, Spec(1.0, 1.0));
  ASSERT_TRUE(widened.ok());
  EXPECT_DOUBLE_EQ(widened->within_tolerance_fraction, 1.0);
  // With all-ε intervals the widened contract reduces to the plain one.
  Result<PrecisionReport> same = EvaluatePrecisionWidened(
      reported, truth, {1.0, 1.0, 1.0}, Spec(1.0, 1.0));
  ASSERT_TRUE(same.ok());
  EXPECT_DOUBLE_EQ(same->within_tolerance_fraction,
                   plain->within_tolerance_fraction);
  // Misaligned ci series is rejected.
  EXPECT_FALSE(
      EvaluatePrecisionWidened(reported, truth, {1.0}, Spec(1, 1)).ok());
}

TEST(MessageMeterTest, TotalCoversSendCategoriesButNotLosses) {
  MessageMeter meter;
  meter.AddWalkHop(3);
  meter.AddWeightProbe(5);
  meter.AddSampleTransfer(7);
  meter.AddRefresh(11);
  meter.AddPush(13);
  meter.AddRetry(17);
  meter.AddAgentRestart(19);
  meter.AddLoss(23);  // Annotation only: already charged elsewhere.
  EXPECT_EQ(meter.Total(), 3u + 5u + 7u + 11u + 13u + 17u + 19u);
  EXPECT_EQ(meter.losses(), 23u);
  EXPECT_EQ(meter.FaultOverhead(), 17u + 19u);
}

TEST(MessageMeterTest, TotalSaturatesInsteadOfWrapping) {
  MessageMeter meter;
  meter.AddWalkHop(UINT64_MAX);
  meter.AddPush(1);
  // Before the fix this wrapped to 0; now it pins at the ceiling.
  EXPECT_EQ(meter.Total(), UINT64_MAX);
  meter.AddRetry(100);
  EXPECT_EQ(meter.Total(), UINT64_MAX);
}

TEST(MessageMeterTest, CategoryCountersSaturateIndividually) {
  MessageMeter meter;
  meter.AddRetry(UINT64_MAX);
  meter.AddRetry(5);
  EXPECT_EQ(meter.retries(), UINT64_MAX);
  meter.AddAgentRestart(UINT64_MAX);
  EXPECT_EQ(meter.FaultOverhead(), UINT64_MAX);
}

TEST(PrecisionMetricsTest, ToleranceBoundaryIsInclusive) {
  // |X̂ − X| == ε + δ exactly is within tolerance (the contract is ≤),
  // and the next representable overshoot is not. δ=2, ε=1 → bound 3.
  const PrecisionSpec spec{2.0, 1.0, 0.95};
  const std::vector<double> truth = {10.0, 10.0, 10.0};
  const std::vector<double> reported = {
      13.0,                 // exactly on the ε + δ boundary: a hit
      10.0 + 3.0 + 1e-9,    // just past the boundary: a miss
      7.0};                 // exactly on the boundary from below: a hit
  Result<PrecisionReport> report =
      EvaluatePrecision(reported, truth, spec);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->within_tolerance_fraction, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(report->max_abs_error, 3.0 + 1e-9);
}

TEST(PrecisionMetricsTest, WidenedBoundaryUsesMaxOfEpsilonAndCi) {
  // Per-tick bound is max(ε, ci[i]) + δ, inclusive. δ=2, ε=1.
  const PrecisionSpec spec{2.0, 1.0, 0.95};
  const std::vector<double> truth = {0.0, 0.0, 0.0, 0.0};
  const std::vector<double> ci = {4.0, 0.5, 4.0, 0.5};
  const std::vector<double> reported = {
      6.0,          // ci dominates: max(1, 4) + 2 = 6 exactly — hit
      3.0,          // ε dominates: max(1, 0.5) + 2 = 3 exactly — hit
      6.0 + 1e-9,   // past the widened bound — miss
      3.0 + 1e-9};  // past the ε bound; the small ci cannot save it
  Result<PrecisionReport> report =
      EvaluatePrecisionWidened(reported, truth, ci, spec);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->within_tolerance_fraction, 0.5);
}

TEST(PrecisionMetricsTest, RejectsEmptyAndMismatchedSeries) {
  const PrecisionSpec spec{2.0, 1.0, 0.95};
  EXPECT_FALSE(EvaluatePrecision({}, {}, spec).ok());
  EXPECT_FALSE(EvaluatePrecision({1.0}, {}, spec).ok());
  EXPECT_FALSE(EvaluatePrecision({1.0}, {1.0, 2.0}, spec).ok());
  EXPECT_FALSE(EvaluatePrecisionWidened({}, {}, {}, spec).ok());
  EXPECT_FALSE(
      EvaluatePrecisionWidened({1.0}, {1.0}, {1.0, 2.0}, spec).ok());
  EXPECT_FALSE(EvaluatePrecisionWidened({1.0}, {1.0}, {}, spec).ok());
}

TEST(MessageMeterTest, ResetZeroesEveryCategory) {
  MessageMeter meter;
  meter.AddWalkHop(2);
  meter.AddWeightProbe(2);
  meter.AddSampleTransfer(2);
  meter.AddRefresh(2);
  meter.AddPush(2);
  meter.AddRetry(2);
  meter.AddAgentRestart(2);
  meter.AddLoss(2);
  meter.Reset();
  EXPECT_EQ(meter.Total(), 0u);
  EXPECT_EQ(meter.walk_hops(), 0u);
  EXPECT_EQ(meter.weight_probes(), 0u);
  EXPECT_EQ(meter.sample_transfers(), 0u);
  EXPECT_EQ(meter.refreshes(), 0u);
  EXPECT_EQ(meter.pushes(), 0u);
  EXPECT_EQ(meter.retries(), 0u);
  EXPECT_EQ(meter.agent_restarts(), 0u);
  EXPECT_EQ(meter.losses(), 0u);
}

TEST(ContinuousQuerySpecTest, CreateParsesAndValidates) {
  Result<ContinuousQuerySpec> spec = ContinuousQuerySpec::Create(
      "SELECT AVG(temperature) FROM R", PrecisionSpec{2.0, 1.0, 0.95});
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->query.op, AggregateOp::kAvg);
  EXPECT_NE(spec->ToString().find("delta=2"), std::string::npos);
  EXPECT_FALSE(ContinuousQuerySpec::Create(
                   "SELECT MAX(a) FROM R", PrecisionSpec{1, 1, 0.95})
                   .ok());
  EXPECT_FALSE(ContinuousQuerySpec::Create(
                   "SELECT AVG(a) FROM R", PrecisionSpec{1, -1, 0.95})
                   .ok());
}

}  // namespace
}  // namespace digest
