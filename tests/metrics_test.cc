#include "core/metrics.h"

#include <gtest/gtest.h>

namespace digest {
namespace {

PrecisionSpec Spec(double delta, double epsilon) {
  return PrecisionSpec{delta, epsilon, 0.95};
}

TEST(MetricsTest, PerfectSeries) {
  const std::vector<double> series = {1.0, 2.0, 3.0};
  Result<PrecisionReport> r = EvaluatePrecision(series, series, Spec(1, 1));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->mean_abs_error, 0.0);
  EXPECT_DOUBLE_EQ(r->max_abs_error, 0.0);
  EXPECT_DOUBLE_EQ(r->within_tolerance_fraction, 1.0);
  EXPECT_EQ(r->ticks, 3u);
}

TEST(MetricsTest, KnownErrors) {
  const std::vector<double> reported = {1.0, 2.0, 10.0};
  const std::vector<double> truth = {1.5, 2.0, 4.0};
  Result<PrecisionReport> r =
      EvaluatePrecision(reported, truth, Spec(1.0, 1.0));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->mean_abs_error, (0.5 + 0.0 + 6.0) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(r->max_abs_error, 6.0);
  // Tolerance = delta + epsilon = 2: first two ticks qualify.
  EXPECT_NEAR(r->within_tolerance_fraction, 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, RejectsBadInput) {
  EXPECT_FALSE(EvaluatePrecision({}, {}, Spec(1, 1)).ok());
  EXPECT_FALSE(EvaluatePrecision({1.0}, {1.0, 2.0}, Spec(1, 1)).ok());
  PrecisionSpec bad = Spec(1, 1);
  bad.confidence = 0.0;
  EXPECT_FALSE(EvaluatePrecision({1.0}, {1.0}, bad).ok());
}

TEST(PrecisionSpecTest, Validation) {
  EXPECT_TRUE((PrecisionSpec{0.0, 1.0, 0.5}).Validate().ok());
  EXPECT_FALSE((PrecisionSpec{-1.0, 1.0, 0.5}).Validate().ok());
  EXPECT_FALSE((PrecisionSpec{0.0, 0.0, 0.5}).Validate().ok());
  EXPECT_FALSE((PrecisionSpec{0.0, 1.0, 0.0}).Validate().ok());
  EXPECT_FALSE((PrecisionSpec{0.0, 1.0, 1.0}).Validate().ok());
}

TEST(ContinuousQuerySpecTest, CreateParsesAndValidates) {
  Result<ContinuousQuerySpec> spec = ContinuousQuerySpec::Create(
      "SELECT AVG(temperature) FROM R", PrecisionSpec{2.0, 1.0, 0.95});
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->query.op, AggregateOp::kAvg);
  EXPECT_NE(spec->ToString().find("delta=2"), std::string::npos);
  EXPECT_FALSE(ContinuousQuerySpec::Create(
                   "SELECT MAX(a) FROM R", PrecisionSpec{1, 1, 0.95})
                   .ok());
  EXPECT_FALSE(ContinuousQuerySpec::Create(
                   "SELECT AVG(a) FROM R", PrecisionSpec{1, -1, 0.95})
                   .ok());
}

}  // namespace
}  // namespace digest
