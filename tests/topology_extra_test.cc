// Tests for the extended topology generators (Watts–Strogatz small
// world, random regular) and their interaction with the sampling
// operator.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/topology.h"
#include "sampling/metropolis.h"

namespace digest {
namespace {

TEST(WattsStrogatzTest, ZeroBetaIsPureLattice) {
  Rng rng(1);
  Result<Graph> g = MakeWattsStrogatz(20, 2, 0.0, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NodeCount(), 20u);
  EXPECT_EQ(g->EdgeCount(), 40u);  // n * k.
  for (NodeId id : g->LiveNodes()) EXPECT_EQ(g->Degree(id), 4u);
  EXPECT_TRUE(g->IsConnected());
  // Lattice structure: i adjacent to i±1, i±2.
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_TRUE(g->HasEdge(0, 2));
  EXPECT_TRUE(g->HasEdge(0, 19));
  EXPECT_TRUE(g->HasEdge(0, 18));
  EXPECT_FALSE(g->HasEdge(0, 3));
}

TEST(WattsStrogatzTest, RewiringShortensPaths) {
  Rng rng(2);
  Result<Graph> lattice = MakeWattsStrogatz(200, 2, 0.0, rng);
  Result<Graph> small_world = MakeWattsStrogatz(200, 2, 0.2, rng);
  ASSERT_TRUE(lattice.ok());
  ASSERT_TRUE(small_world.ok());
  auto mean_distance = [](const Graph& g) {
    std::vector<int> dist = g.BfsDistances(0).value();
    double sum = 0.0;
    size_t count = 0;
    for (NodeId id : g.LiveNodes()) {
      if (dist[id] > 0) {
        sum += dist[id];
        ++count;
      }
    }
    return sum / static_cast<double>(count);
  };
  EXPECT_LT(mean_distance(*small_world), 0.6 * mean_distance(*lattice));
}

TEST(WattsStrogatzTest, EdgeCountPreservedByRewiring) {
  Rng rng(3);
  Result<Graph> g = MakeWattsStrogatz(100, 3, 0.5, rng);
  ASSERT_TRUE(g.ok());
  // Rewiring moves edges, never creates or destroys them (up to the
  // rare connectivity repair).
  EXPECT_NEAR(static_cast<double>(g->EdgeCount()), 300.0, 3.0);
  EXPECT_TRUE(g->IsConnected());
}

TEST(WattsStrogatzTest, RejectsBadParameters) {
  Rng rng(4);
  EXPECT_FALSE(MakeWattsStrogatz(4, 2, 0.1, rng).ok());
  EXPECT_FALSE(MakeWattsStrogatz(10, 0, 0.1, rng).ok());
  EXPECT_FALSE(MakeWattsStrogatz(10, 2, 1.5, rng).ok());
  EXPECT_FALSE(MakeWattsStrogatz(10, 2, -0.1, rng).ok());
}

TEST(RandomRegularTest, ExactDegrees) {
  Rng rng(5);
  Result<Graph> g = MakeRandomRegular(50, 4, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NodeCount(), 50u);
  EXPECT_TRUE(g->IsConnected());
  size_t regular = 0;
  for (NodeId id : g->LiveNodes()) {
    if (g->Degree(id) == 4u) ++regular;
  }
  // Connectivity repair may perturb a couple of nodes at most.
  EXPECT_GE(regular, 48u);
}

TEST(RandomRegularTest, RejectsBadParameters) {
  Rng rng(6);
  EXPECT_FALSE(MakeRandomRegular(5, 3, rng).ok());   // n*d odd.
  EXPECT_FALSE(MakeRandomRegular(4, 1, rng).ok());   // degree < 2.
  EXPECT_FALSE(MakeRandomRegular(3, 4, rng).ok());   // n <= degree.
}

TEST(RandomRegularTest, DifferentSeedsDifferentGraphs) {
  Rng a(7), b(8);
  Result<Graph> ga = MakeRandomRegular(30, 3, a);
  Result<Graph> gb = MakeRandomRegular(30, 3, b);
  ASSERT_TRUE(ga.ok());
  ASSERT_TRUE(gb.ok());
  size_t differing = 0;
  for (NodeId i = 0; i < 30; ++i) {
    for (NodeId j = static_cast<NodeId>(i + 1); j < 30; ++j) {
      if (ga->HasEdge(i, j) != gb->HasEdge(i, j)) ++differing;
    }
  }
  EXPECT_GT(differing, 10u);
}

// The Metropolis machinery must work on the new topologies too.
class NewTopologySampling : public ::testing::TestWithParam<int> {};

TEST_P(NewTopologySampling, StationarityHolds) {
  Rng rng(100 + GetParam());
  Result<Graph> g = (GetParam() % 2 == 0)
                        ? MakeWattsStrogatz(24, 2, 0.3, rng)
                        : MakeRandomRegular(24, 4, rng);
  ASSERT_TRUE(g.ok());
  WeightFn weight = [](NodeId v) { return 1.0 + (v % 3); };
  Result<ForwardingMatrix> fm = BuildForwardingMatrix(*g, weight);
  ASSERT_TRUE(fm.ok());
  std::vector<double> pi_p = fm->p.VecMat(fm->pi);
  for (size_t i = 0; i < pi_p.size(); ++i) {
    EXPECT_NEAR(pi_p[i], fm->pi[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Both, NewTopologySampling, ::testing::Range(0, 6));

}  // namespace
}  // namespace digest
