#include "core/sampling_plan.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/snapshot_estimator.h"
#include "net/topology.h"

namespace digest {
namespace {

TEST(CltSampleSizeTest, MatchesEq6) {
  // n = (z σ / ε)²: z=1.96, σ=8, ε=2 → 61.4 → 62.
  Result<size_t> n = CltSampleSize(8.0, 2.0, 1.96);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 62u);
  EXPECT_EQ(CltSampleSize(0.0, 1.0, 1.96).value(), 1u);
}

TEST(CltSampleSizeTest, ScalesQuadratically) {
  const size_t base = CltSampleSize(10.0, 1.0, 2.0).value();
  EXPECT_EQ(CltSampleSize(20.0, 1.0, 2.0).value(), 4 * base);
  EXPECT_EQ(CltSampleSize(10.0, 0.5, 2.0).value(), 4 * base);
}

TEST(CltSampleSizeTest, RejectsBadInputs) {
  EXPECT_FALSE(CltSampleSize(-1.0, 1.0, 2.0).ok());
  EXPECT_FALSE(CltSampleSize(1.0, 0.0, 2.0).ok());
  EXPECT_FALSE(CltSampleSize(1.0, 1.0, 0.0).ok());
}

TEST(HoeffdingSampleSizeTest, KnownValue) {
  // n = ln(2/0.05) · 100² / (2·2²) = 3.689·10000/8 ≈ 4611.4 → 4612.
  Result<size_t> n = HoeffdingSampleSize(100.0, 2.0, 0.95);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4612u);
}

TEST(HoeffdingSampleSizeTest, MoreConservativeThanCltForGaussianData) {
  // For σ=8 data confined to ±4σ (range 64), Hoeffding demands far more
  // samples than the CLT size at the same (ε, p).
  const size_t clt = CltSampleSize(8.0, 2.0, 1.96).value();
  const size_t hoeffding = HoeffdingSampleSize(64.0, 2.0, 0.95).value();
  EXPECT_GT(hoeffding, 10 * clt);
}

TEST(HoeffdingSampleSizeTest, RejectsBadInputs) {
  EXPECT_FALSE(HoeffdingSampleSize(0.0, 1.0, 0.95).ok());
  EXPECT_FALSE(HoeffdingSampleSize(1.0, 0.0, 0.95).ok());
  EXPECT_FALSE(HoeffdingSampleSize(1.0, 1.0, 0.0).ok());
  EXPECT_FALSE(HoeffdingSampleSize(1.0, 1.0, 1.0).ok());
}

TEST(PlanTest, ZeroCorrelationIsIndependentSampling) {
  // ρ = 0: total = CLT size, half retained half fresh... no — Eq. 9 at
  // ρ=0: r=1, g = n/2, f = n/2, and total = σ²·2·z²/(2ε²) = CLT size.
  RepeatedSamplingPlan plan =
      PlanRepeatedOccasion(8.0, 0.0, 2.0, 1.96).value();
  EXPECT_EQ(plan.total, CltSampleSize(8.0, 2.0, 1.96).value());
  EXPECT_NEAR(static_cast<double>(plan.retained),
              static_cast<double>(plan.total) / 2.0, 1.0);
  EXPECT_EQ(plan.retained + plan.fresh, plan.total);
}

TEST(PlanTest, HighCorrelationShrinksTotalAndRetention) {
  RepeatedSamplingPlan low = PlanRepeatedOccasion(8.0, 0.3, 2.0, 1.96).value();
  RepeatedSamplingPlan high =
      PlanRepeatedOccasion(8.0, 0.95, 2.0, 1.96).value();
  // Higher ρ → smaller total (Eq. 10) ...
  EXPECT_LT(high.total, low.total);
  // ... and a smaller *retained fraction* (corrected Eq. 9: g/n = r/(1+r)
  // falls as ρ rises — the regression estimate saturates at ρ²·var(prev),
  // so marginal samples are better spent fresh).
  const double low_frac =
      static_cast<double>(low.retained) / static_cast<double>(low.total);
  const double high_frac =
      static_cast<double>(high.retained) / static_cast<double>(high.total);
  EXPECT_LT(high_frac, low_frac);
}

TEST(PlanTest, PlanAchievesEq10Variance) {
  // Plugging the plan into Eq. 8 must reproduce var_min of Eq. 10.
  for (double rho : {0.3, 0.68, 0.89, 0.95}) {
    RepeatedSamplingPlan plan =
        PlanRepeatedOccasion(1.0, rho, 0.05, 1.96).value();
    const double var =
        CombinedVarianceFactor(plan.total, plan.fresh, rho).value();
    const double root = std::sqrt(1.0 - rho * rho);
    const double var_min =
        (1.0 + root) / (2.0 * static_cast<double>(plan.total));
    EXPECT_NEAR(var, var_min, 0.02 * var_min) << "rho=" << rho;
  }
}

TEST(PlanTest, Eq8ExtremesEqualIndependentVariance) {
  // g = 0 (all fresh): var = σ²/n exactly. g ≈ n (f → 1): also ~σ²/n.
  const size_t n = 200;
  EXPECT_NEAR(CombinedVarianceFactor(n, n, 0.9).value(), 1.0 / n,
              1e-12);  // f = n means g = 0.
  EXPECT_NEAR(CombinedVarianceFactor(n, 1, 0.9).value(), 1.0 / n,
              0.01 / n);  // Nearly all retained.
}

TEST(PlanTest, OptimumBeatsOtherPartitions) {
  const double rho = 0.89;
  RepeatedSamplingPlan plan =
      PlanRepeatedOccasion(1.0, rho, 0.05, 1.96).value();
  const double at_opt =
      CombinedVarianceFactor(plan.total, plan.fresh, rho).value();
  for (size_t f = 1; f <= plan.total; f += plan.total / 10) {
    EXPECT_LE(at_opt,
              CombinedVarianceFactor(plan.total, f, rho).value() + 1e-12);
  }
}

TEST(PlanTest, ImprovementRatioMatchesEq11) {
  EXPECT_NEAR(OptimalImprovementRatio(0.0), 1.0, 1e-12);
  EXPECT_NEAR(OptimalImprovementRatio(1.0), 2.0, 1e-12);
  EXPECT_NEAR(OptimalImprovementRatio(0.89),
              2.0 / (1.0 + std::sqrt(1.0 - 0.89 * 0.89)), 1e-12);
}

TEST(PlanTest, Validation) {
  EXPECT_FALSE(PlanRepeatedOccasion(-1.0, 0.5, 1.0, 2.0).ok());
  EXPECT_FALSE(PlanRepeatedOccasion(1.0, 0.5, 0.0, 2.0).ok());
  EXPECT_FALSE(CombinedVarianceFactor(10, 0, 0.5).ok());
  EXPECT_FALSE(CombinedVarianceFactor(10, 11, 0.5).ok());
  EXPECT_FALSE(CombinedVarianceFactor(10, 5, 1.5).ok());
}

TEST(HoeffdingEstimatorTest, PolicyDrawsTheHoeffdingSize) {
  Graph graph = MakeComplete(6).value();
  P2PDatabase db(Schema::Create({"v"}).value());
  Rng data(1);
  for (NodeId node : graph.LiveNodes()) {
    ASSERT_TRUE(db.AddNode(node).ok());
    for (int i = 0; i < 100; ++i) {
      // Bounded support [0, 20].
      db.StoreAt(node).value()->Insert({data.NextDouble() * 20.0});
    }
  }
  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(v) FROM R",
                                  PrecisionSpec{0.0, 1.0, 0.95})
          .value();
  ExactTupleSampler sampler(&db, Rng(2), nullptr);
  ExactSampleSource source(&sampler);
  EstimatorOptions options;
  options.sample_size_policy = SampleSizePolicy::kHoeffding;
  options.value_range = 20.0;
  IndependentEstimator est(spec, &db, &source, nullptr, nullptr, Rng(3),
                           options);
  Result<SnapshotEstimate> e = est.Evaluate(0);
  ASSERT_TRUE(e.ok()) << e.status();
  const size_t expected = HoeffdingSampleSize(20.0, 1.0, 0.95).value();
  EXPECT_EQ(e->total_samples, expected);
  EXPECT_NEAR(e->value, 10.0, 1.0);

  // The repeated estimator rejects the policy explicitly.
  RepeatedSamplingEstimator rpt(spec, &db, &source, nullptr, nullptr,
                                Rng(4), options);
  EXPECT_EQ(rpt.Evaluate(0).status().code(), StatusCode::kInvalidArgument);

  // Missing range fails cleanly.
  EstimatorOptions no_range = options;
  no_range.value_range = 0.0;
  IndependentEstimator bad(spec, &db, &source, nullptr, nullptr, Rng(5),
                           no_range);
  EXPECT_FALSE(bad.Evaluate(0).ok());
}

}  // namespace
}  // namespace digest
