// Unit tests for the retry/timeout/backoff policy: budget exhaustion
// surfaces as a degraded status (never a crash), the backoff sequence is
// deterministic, and meter retry counters reconcile exactly against the
// injected losses.
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.h"
#include "net/fault_plan.h"
#include "net/message_meter.h"
#include "net/topology.h"
#include "sampling/sampling_operator.h"
#include "sampling/weight.h"
#include "workload/memory.h"

namespace digest {
namespace {

MemoryConfig SmallMemoryConfig() {
  MemoryConfig config;
  config.num_units = 120;
  config.num_nodes = 80;
  config.join_rate = 0.0;   // No churn: isolate the injected faults.
  config.leave_rate = 0.0;
  return config;
}

TEST(RetryBackoffTest, BackoffSequenceIsDeterministicAndCapped) {
  RetryPolicy policy;
  policy.backoff_base = 2;
  EXPECT_EQ(policy.BackoffCost(1), 2u);
  EXPECT_EQ(policy.BackoffCost(2), 4u);
  EXPECT_EQ(policy.BackoffCost(3), 8u);
  EXPECT_EQ(policy.BackoffCost(10), static_cast<size_t>(2) << 9);
  // The shift saturates at 20 so the cost cannot overflow.
  EXPECT_EQ(policy.BackoffCost(21), static_cast<size_t>(2) << 20);
  EXPECT_EQ(policy.BackoffCost(40), static_cast<size_t>(2) << 20);
  // Same policy, same inputs, same costs — no hidden state.
  RetryPolicy twin;
  twin.backoff_base = 2;
  for (size_t k = 1; k < 32; ++k) {
    EXPECT_EQ(policy.BackoffCost(k), twin.BackoffCost(k));
  }
}

TEST(RetryBackoffTest, BackoffCostSaturatesInsteadOfWrapping) {
  // Property: for ANY backoff_base and ANY attempt index — including
  // adversarial max_attempts far beyond what validation would admit —
  // the cost sequence is monotone non-decreasing and saturates at
  // SIZE_MAX rather than wrapping. A wrapped cost would under-charge
  // the hop budget and turn a timeout into an infinite retry loop.
  const size_t kMax = static_cast<size_t>(-1);
  for (size_t base :
       {static_cast<size_t>(1), static_cast<size_t>(3),
        static_cast<size_t>(1) << 40, kMax / 2, kMax - 1, kMax}) {
    RetryPolicy policy;
    policy.backoff_base = base;
    size_t previous = 0;
    for (size_t k = 1; k < 64; ++k) {
      const size_t cost = policy.BackoffCost(k);
      EXPECT_GE(cost, previous) << "base=" << base << " k=" << k;
      EXPECT_GE(cost, base) << "base=" << base << " k=" << k;
      previous = cost;
    }
    // Deep attempts pin to the shift-cap plateau (base << 20), which
    // itself saturates to SIZE_MAX when the base is too large for the
    // doubling to be representable.
    EXPECT_EQ(policy.BackoffCost(1000), policy.BackoffCost(21))
        << "base=" << base;
    if (base > (kMax >> 20)) {
      EXPECT_EQ(policy.BackoffCost(1000), kMax) << "base=" << base;
    }
  }
  // The exact saturation boundary: the last exactly-representable cost
  // is base << 20; one doubling past SIZE_MAX pins to SIZE_MAX.
  RetryPolicy policy;
  policy.backoff_base = (kMax >> 20);  // Largest base with exact k=21.
  EXPECT_EQ(policy.BackoffCost(21), (kMax >> 20) << 20);
  policy.backoff_base = (kMax >> 20) + 1;
  EXPECT_EQ(policy.BackoffCost(21), kMax);
  // k=0 is charged like k=1 (no shift) — defensive, not reachable from
  // the retry loop, but it must not underflow the shift count.
  EXPECT_EQ(policy.BackoffCost(0), policy.backoff_base);
}

TEST(RetryBackoffTest, SaturatedBackoffStillReconcilesWithMeter) {
  // An adversarial policy whose very first retransmission exhausts any
  // budget: the walk times out cleanly, and the meter still reconciles
  // losses against the plan — saturation never double-counts or loses
  // a retry category.
  const Graph graph = MakeComplete(12).value();
  SamplingOperatorOptions options;
  options.walk_length = 16;
  options.reset_length = 4;
  options.retry.max_attempts = static_cast<size_t>(-1);  // Adversarial.
  options.retry.backoff_base = static_cast<size_t>(-1) / 2;
  options.retry.hop_budget_factor = 8.0;
  MessageMeter meter;
  SamplingOperator op(&graph, DegreeWeight(graph), Rng(19), &meter, options);
  FaultPlanConfig config;
  config.message_loss = 1.0;
  FaultPlan plan(config, 29);
  op.SetFaultPlan(&plan);

  Result<std::vector<NodeId>> res = op.SampleNodes(0, 4);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kUnavailable);
  EXPECT_GT(meter.losses(), 0u);
  EXPECT_EQ(meter.losses(), plan.losses_injected());
  // Each loss was answered by at most one (budget-charged) retry; the
  // saturated backoff cost forces timeout rather than an unbounded
  // retry storm.
  EXPECT_LE(meter.retries(), meter.losses());
  EXPECT_EQ(meter.FaultOverhead(), meter.retries() + meter.agent_restarts());
}

TEST(RetryBackoffTest, BudgetExhaustionReturnsUnavailableNotCrash) {
  const Graph graph = MakeComplete(12).value();
  SamplingOperatorOptions options;
  options.walk_length = 16;
  options.reset_length = 4;
  options.laziness = 0.0;  // Every step probes: deterministic exhaustion.
  options.retry.max_attempts = 3;
  options.retry.hop_budget_factor = 1.0;
  MessageMeter meter;
  SamplingOperator op(&graph, DegreeWeight(graph), Rng(9), &meter, options);
  FaultPlanConfig config;
  config.message_loss = 1.0;
  FaultPlan plan(config, 13);
  op.SetFaultPlan(&plan);

  Result<std::vector<NodeId>> res = op.SampleNodes(0, 4);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kUnavailable);
  EXPECT_GT(op.last_telemetry().abandoned, 0u);
  EXPECT_GT(meter.losses(), 0u);

  // A second call degrades the same way rather than wedging.
  Result<std::vector<NodeId>> again = op.SampleNodes(0, 4);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kUnavailable);

  // Healing the network lets the same operator instance succeed.
  ASSERT_TRUE(plan.set_message_loss(0.0).ok());
  Result<std::vector<NodeId>> healed = op.SampleNodes(0, 4);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->size(), 4u);
  EXPECT_EQ(op.last_telemetry().abandoned, 0u);
}

TEST(RetryBackoffTest, MeterRetriesMatchInjectedLossesExactly) {
  Rng topo(4);
  const Graph graph = MakeBarabasiAlbert(60, 3, topo).value();
  SamplingOperatorOptions options;
  options.walk_length = 30;
  options.reset_length = 8;
  options.retry.max_attempts = 100;  // Deep retries: nothing abandoned.
  options.retry.hop_budget_factor = 64.0;
  MessageMeter meter;
  SamplingOperator op(&graph, DegreeWeight(graph), Rng(31), &meter, options);
  FaultPlanConfig config;
  config.message_loss = 0.25;
  config.edge_spread = 0.5;
  FaultPlan plan(config, 17);
  op.SetFaultPlan(&plan);

  Result<std::vector<NodeId>> res = op.SampleNodes(0, 20);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->size(), 20u);
  EXPECT_GT(plan.losses_injected(), 0u);
  // Every injected loss is annotated once in the meter and answered by
  // exactly one retransmission (attempts never run out at this depth),
  // so all three counters agree exactly.
  EXPECT_EQ(meter.losses(), plan.losses_injected());
  EXPECT_EQ(meter.retries(), plan.losses_injected());
  EXPECT_EQ(op.last_telemetry().retries, meter.retries());
  EXPECT_EQ(op.last_telemetry().losses, meter.losses());
  EXPECT_EQ(op.last_telemetry().abandoned, 0u);
  EXPECT_EQ(meter.FaultOverhead(), meter.retries());
}

TEST(RetryBackoffTest, TotalAgentDropTimesOutWithRestartsAccounted) {
  const Graph graph = MakeComplete(10).value();
  SamplingOperatorOptions options;
  options.walk_length = 12;
  options.reset_length = 4;
  options.retry.hop_budget_factor = 4.0;
  MessageMeter meter;
  SamplingOperator op(&graph, DegreeWeight(graph), Rng(8), &meter, options);
  FaultPlanConfig config;
  config.agent_drop = 1.0;  // Every completed hop loses the agent.
  FaultPlan plan(config, 23);
  op.SetFaultPlan(&plan);

  Result<std::vector<NodeId>> res = op.SampleNodes(0, 3);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kUnavailable);
  EXPECT_GT(op.last_telemetry().drops, 0u);
  EXPECT_GT(meter.agent_restarts(), 0u);
  EXPECT_EQ(meter.agent_restarts(), plan.drops_injected());
}

TEST(RetryBackoffTest, RepeatedEstimatorDegradesAndRecovers) {
  auto workload = MemoryWorkload::Create(SmallMemoryConfig()).value();
  const ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(memory) FROM R",
                                  PrecisionSpec{1.0, 2.0, 0.9})
          .value();
  FaultPlan plan(FaultPlanConfig{}, 21);
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kAll;
  options.estimator = EstimatorKind::kRepeated;
  options.sampling_options.walk_length = 20;
  options.sampling_options.reset_length = 6;
  options.sampling_options.retry.hop_budget_factor = 2.0;
  options.fault_plan = &plan;
  MessageMeter meter;
  Rng rng(3);
  const NodeId origin = workload->graph().RandomLiveNode(rng).value();
  workload->ProtectNode(origin);
  auto engine = DigestEngine::Create(&workload->graph(), &workload->db(),
                                     spec, origin, rng.Fork(), &meter,
                                     options)
                    .value();

  // Healthy warm-up: several occasions so the retained pool exists.
  EngineTickResult last;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(workload->Advance().ok());
    plan.set_now(workload->now());
    Result<EngineTickResult> tick = engine->Tick(workload->now());
    ASSERT_TRUE(tick.ok());
    last = *tick;
  }
  EXPECT_TRUE(last.has_result);
  EXPECT_FALSE(last.degraded);
  EXPECT_DOUBLE_EQ(last.ci_halfwidth, spec.precision.epsilon);
  EXPECT_EQ(engine->stats().degraded_ticks, 0u);

  // Sever the network: every transmission is lost, fresh sampling times
  // out, and the engine answers from the retained pool with an honest,
  // widened interval instead of failing the tick.
  ASSERT_TRUE(plan.set_message_loss(1.0).ok());
  ASSERT_TRUE(workload->Advance().ok());
  plan.set_now(workload->now());
  Result<EngineTickResult> degraded = engine->Tick(workload->now());
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->degraded);
  EXPECT_TRUE(degraded->has_result);
  EXPECT_GE(degraded->ci_halfwidth, spec.precision.epsilon);
  EXPECT_EQ(engine->stats().degraded_ticks, 1u);

  // Heal: the next tick samples fresh again under the contract ε.
  ASSERT_TRUE(plan.set_message_loss(0.0).ok());
  ASSERT_TRUE(workload->Advance().ok());
  plan.set_now(workload->now());
  Result<EngineTickResult> healed = engine->Tick(workload->now());
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(healed->degraded);
  EXPECT_DOUBLE_EQ(healed->ci_halfwidth, spec.precision.epsilon);
}

TEST(RetryBackoffTest, IndependentEstimatorHoldsWithDoublingInterval) {
  auto workload = MemoryWorkload::Create(SmallMemoryConfig()).value();
  const ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(memory) FROM R",
                                  PrecisionSpec{1.0, 2.0, 0.9})
          .value();
  FaultPlan plan(FaultPlanConfig{}, 37);
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kAll;
  options.estimator = EstimatorKind::kIndependent;
  options.sampling_options.walk_length = 20;
  options.sampling_options.reset_length = 6;
  options.sampling_options.retry.hop_budget_factor = 2.0;
  options.fault_plan = &plan;
  MessageMeter meter;
  Rng rng(6);
  const NodeId origin = workload->graph().RandomLiveNode(rng).value();
  workload->ProtectNode(origin);
  auto engine = DigestEngine::Create(&workload->graph(), &workload->db(),
                                     spec, origin, rng.Fork(), &meter,
                                     options)
                    .value();

  double healthy_value = 0.0;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(workload->Advance().ok());
    plan.set_now(workload->now());
    Result<EngineTickResult> tick = engine->Tick(workload->now());
    ASSERT_TRUE(tick.ok());
    healthy_value = tick->reported_value;
  }

  // INDEP has no retained pool: under total loss the engine holds the
  // previous result and doubles the uncertainty band every failed
  // snapshot, rather than crashing or blocking.
  const double epsilon = spec.precision.epsilon;
  ASSERT_TRUE(plan.set_message_loss(1.0).ok());
  ASSERT_TRUE(workload->Advance().ok());
  plan.set_now(workload->now());
  Result<EngineTickResult> first = engine->Tick(workload->now());
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->degraded);
  EXPECT_FALSE(first->snapshot_executed);
  EXPECT_DOUBLE_EQ(first->reported_value, healthy_value);
  EXPECT_DOUBLE_EQ(first->ci_halfwidth, 2.0 * epsilon);

  ASSERT_TRUE(workload->Advance().ok());
  plan.set_now(workload->now());
  Result<EngineTickResult> second = engine->Tick(workload->now());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->degraded);
  EXPECT_DOUBLE_EQ(second->reported_value, healthy_value);
  EXPECT_DOUBLE_EQ(second->ci_halfwidth, 4.0 * epsilon);
  EXPECT_EQ(engine->stats().degraded_ticks, 2u);

  // Recovery snaps the interval back to the contract ε.
  ASSERT_TRUE(plan.set_message_loss(0.0).ok());
  ASSERT_TRUE(workload->Advance().ok());
  plan.set_now(workload->now());
  Result<EngineTickResult> healed = engine->Tick(workload->now());
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(healed->degraded);
  EXPECT_TRUE(healed->snapshot_executed);
  EXPECT_DOUBLE_EQ(healed->ci_halfwidth, epsilon);
}

}  // namespace
}  // namespace digest
