#include "sampling/size_estimator.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "net/topology.h"

namespace digest {
namespace {

// A database with known total tuples spread over the graph's nodes.
struct Fixture {
  Graph graph;
  std::unique_ptr<P2PDatabase> db;
  size_t total_tuples = 0;

  Fixture(Graph g, size_t tuples_per_node, uint64_t seed) : graph(std::move(g)) {
    db = std::make_unique<P2PDatabase>(Schema::Create({"v"}).value());
    Rng rng(seed);
    for (NodeId node : graph.LiveNodes()) {
      EXPECT_TRUE(db->AddNode(node).ok());
      // Vary content sizes around the average.
      const size_t count = 1 + rng.NextIndex(2 * tuples_per_node - 1);
      for (size_t i = 0; i < count; ++i) {
        db->StoreAt(node).value()->Insert({1.0});
        ++total_tuples;
      }
    }
  }
};

SamplingOperatorOptions FastWalks() {
  SamplingOperatorOptions options;
  options.walk_length = 80;
  options.reset_length = 25;
  return options;
}

TEST(SizeEstimatorTest, EstimatesNetworkSizeWithinTolerance) {
  Rng topo(1);
  Fixture f(MakeBarabasiAlbert(100, 3, topo).value(), 4, 2);
  SamplingOperator op(&f.graph, UniformWeight(), Rng(3), nullptr,
                      FastWalks());
  SizeEstimatorOptions options;
  options.collision_target = 60;  // Tight for a deterministic test.
  CollisionSizeEstimator est(f.db.get(), &op, 0, options);
  Result<double> n = est.EstimateNetworkSize();
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_NEAR(*n, 100.0, 30.0);
}

TEST(SizeEstimatorTest, EstimatesRelationSizeWithinTolerance) {
  Rng topo(4);
  Fixture f(MakeBarabasiAlbert(80, 3, topo).value(), 5, 5);
  SamplingOperator op(&f.graph, UniformWeight(), Rng(6), nullptr,
                      FastWalks());
  SizeEstimatorOptions options;
  options.collision_target = 60;
  CollisionSizeEstimator est(f.db.get(), &op, 0, options);
  Result<double> n = est.EstimateRelationSize();
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_NEAR(*n, static_cast<double>(f.total_tuples),
              0.35 * static_cast<double>(f.total_tuples));
}

TEST(SizeEstimatorTest, CachingHonorsRefreshPeriod) {
  Rng topo(7);
  Fixture f(MakeComplete(30).value(), 3, 8);
  MessageMeter meter;
  SamplingOperator op(&f.graph, UniformWeight(), Rng(9), &meter,
                      FastWalks());
  SizeEstimatorOptions options;
  options.refresh_period = 100;
  CollisionSizeEstimator est(f.db.get(), &op, 0, options);
  ASSERT_TRUE(est.EstimateRelationSize().ok());
  const uint64_t after_first = meter.Total();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(est.EstimateRelationSize().ok());
  }
  EXPECT_EQ(meter.Total(), after_first);  // All served from cache.
  est.Invalidate();
  ASSERT_TRUE(est.EstimateRelationSize().ok());
  EXPECT_GT(meter.Total(), after_first);
}

TEST(SizeEstimatorTest, RefreshPeriodZeroAlwaysRecomputes) {
  Rng topo(10);
  Fixture f(MakeComplete(20).value(), 3, 11);
  MessageMeter meter;
  SamplingOperator op(&f.graph, UniformWeight(), Rng(12), &meter,
                      FastWalks());
  SizeEstimatorOptions options;
  options.refresh_period = 0;
  CollisionSizeEstimator est(f.db.get(), &op, 0, options);
  ASSERT_TRUE(est.EstimateRelationSize().ok());
  const uint64_t after_first = meter.Total();
  ASSERT_TRUE(est.EstimateRelationSize().ok());
  EXPECT_GT(meter.Total(), after_first);
}

TEST(SizeEstimatorTest, BudgetExhaustionFailsCleanly) {
  Rng topo(13);
  Fixture f(MakeBarabasiAlbert(300, 2, topo).value(), 2, 14);
  SamplingOperator op(&f.graph, UniformWeight(), Rng(15), nullptr,
                      FastWalks());
  SizeEstimatorOptions options;
  options.initial_samples = 2;
  options.max_samples = 4;  // Far too few for any collision at N=300.
  options.collision_target = 10;
  CollisionSizeEstimator est(f.db.get(), &op, 0, options);
  Result<double> n = est.EstimateNetworkSize();
  // Either a clean kUnavailable, or (rarely) a lucky collision.
  if (!n.ok()) {
    EXPECT_EQ(n.status().code(), StatusCode::kUnavailable);
  }
}

// Property sweep: relative accuracy holds across network sizes.
class SizeEstimatorAccuracy : public ::testing::TestWithParam<size_t> {};

TEST_P(SizeEstimatorAccuracy, NetworkSizeWithin40Percent) {
  const size_t n = GetParam();
  Rng topo(100 + n);
  Fixture f(MakeBarabasiAlbert(n, 3, topo).value(), 3, 200 + n);
  SamplingOperator op(&f.graph, UniformWeight(), Rng(300 + n), nullptr,
                      FastWalks());
  SizeEstimatorOptions options;
  options.collision_target = 40;
  CollisionSizeEstimator est(f.db.get(), &op, 0, options);
  Result<double> estimate = est.EstimateNetworkSize();
  ASSERT_TRUE(estimate.ok()) << estimate.status();
  EXPECT_NEAR(*estimate, static_cast<double>(n), 0.4 * n) << "N=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeEstimatorAccuracy,
                         ::testing::Values(40, 80, 160, 320));

TEST(SizeEstimatorEngineTest, SumQueryWithSampledOracle) {
  // End-to-end: a SUM query whose N comes from the distributed
  // estimator instead of ground truth.
  Rng topo(16);
  Graph graph = MakeBarabasiAlbert(60, 3, topo).value();
  P2PDatabase db(Schema::Create({"v"}).value());
  Rng data(17);
  for (NodeId node : graph.LiveNodes()) {
    ASSERT_TRUE(db.AddNode(node).ok());
    for (int i = 0; i < 5; ++i) {
      db.StoreAt(node).value()->Insert({data.NextGaussian(10.0, 2.0)});
    }
  }
  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT SUM(v) FROM R",
                                  PrecisionSpec{10.0, 150.0, 0.95})
          .value();
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kAll;
  options.estimator = EstimatorKind::kIndependent;
  options.sampler = SamplerKind::kTwoStageMcmc;
  options.size_oracle = SizeOracleKind::kSampled;
  options.sampling_options.walk_length = 60;
  options.sampling_options.reset_length = 20;
  options.size_estimator_options.collision_target = 80;
  auto engine = DigestEngine::Create(&graph, &db, spec, 0, Rng(18), nullptr,
                                     options)
                    .value();
  Result<EngineTickResult> r = engine->Tick(1);
  ASSERT_TRUE(r.ok()) << r.status();
  const double truth = db.ExactAggregate(spec.query).value();
  // N is itself estimated (rel. error ~ 1/sqrt(collision_target)), so
  // allow a generous band.
  EXPECT_NEAR(r->reported_value, truth, 0.3 * truth);
}

}  // namespace
}  // namespace digest
