#include "numeric/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <utility>
#include <vector>

namespace digest {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextIndexRespectsBound) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const uint64_t x = rng.NextIndex(7);
    ASSERT_LT(x, 7u);
    ++counts[x];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 500);  // ~5 sigma of binomial noise.
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = rng.NextInt(-3, 3);
    ASSERT_GE(x, -3);
    ASSERT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(31);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const size_t idx = rng.NextWeightedIndex(weights);
    ASSERT_LT(idx, 4u);
    ++counts[idx];
  }
  EXPECT_EQ(counts[2], 0);  // Zero weight never picked.
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.6, 0.01);
}

TEST(RngTest, WeightedIndexAllZeroReturnsSize) {
  Rng rng(41);
  EXPECT_EQ(rng.NextWeightedIndex({0.0, 0.0}), 2u);
  EXPECT_EQ(rng.NextWeightedIndex({}), 0u);
}

TEST(RngTest, ForkedStreamsAreIndependentButDeterministic) {
  Rng a(99);
  Rng fork1 = a.Fork();
  Rng b(99);
  Rng fork2 = b.Fork();
  // Same parent seed -> same fork.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(fork1.NextU64(), fork2.NextU64());
  }
  // Fork differs from parent stream.
  Rng c(99);
  Rng fork3 = c.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (c.NextU64() == fork3.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, SplitIsDeterministicAndPure) {
  // Split is a pure function of (parent state, index): same parent
  // state and index give the same substream, and splitting never
  // advances the parent.
  Rng parent(4242);
  Rng witness(4242);  // Never split: the reference output stream.
  Rng s1 = parent.Split(7);
  Rng s2 = parent.Split(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(s1.NextU64(), s2.NextU64());
  }
  (void)parent.Split(123456);  // More splits still do not advance.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(parent.NextU64(), witness.NextU64());
  }
}

TEST(RngTest, SplitDependsOnParentStateAndIndex) {
  Rng a(1);
  Rng b(1);
  (void)b.NextU64();  // Advance b: same seed, different state.
  // Different indices give unrelated streams.
  Rng s0 = a.Split(0);
  Rng s1 = a.Split(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (s0.NextU64() == s1.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
  // Same index from a different parent state also differs.
  Rng sa = a.Split(5);
  Rng sb = b.Split(5);
  equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (sa.NextU64() == sb.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, SplitDiffersFromForkAndParent) {
  // Split(i) must collide with neither the parent stream nor Fork()
  // (which advances the parent), so the parallel sampler can use both
  // on one seed without correlated draws.
  Rng parent(2718);
  Rng split = parent.Split(0);
  Rng parent2(2718);
  Rng fork = parent2.Fork();
  int equal_parent = 0, equal_fork = 0;
  for (int i = 0; i < 64; ++i) {
    const uint64_t s = split.NextU64();
    if (s == parent2.NextU64()) ++equal_parent;
    if (s == fork.NextU64()) ++equal_fork;
  }
  EXPECT_LT(equal_parent, 2);
  EXPECT_LT(equal_fork, 2);
}

TEST(RngTest, TenThousandSplitsHaveNoCollisions) {
  // The parallel executor keys one substream per walk; a collision
  // between substreams would correlate two walks' entire futures. Over
  // 10k splits, the 128-bit (first two outputs) substream fingerprints
  // must all be distinct — and so must the seeds reconstructed from
  // consecutive even/odd indices (the walk/fault split pattern).
  Rng parent(123456789);
  std::set<std::pair<uint64_t, uint64_t>> fingerprints;
  for (uint64_t i = 0; i < 10000; ++i) {
    Rng sub = parent.Split(i);
    const uint64_t first = sub.NextU64();
    const uint64_t second = sub.NextU64();
    EXPECT_TRUE(fingerprints.emplace(first, second).second)
        << "collision at index " << i;
  }
  EXPECT_EQ(fingerprints.size(), 10000u);
}

TEST(RngTest, SplitSubstreamsAreStatisticallyIndependent) {
  // Substream quality: pooled first draws across 10k substreams are
  // uniform (mean, variance), and adjacent substreams (the walk/fault
  // pairs Split(2i)/Split(2i+1)) are uncorrelated.
  Rng parent(31337);
  const int n = 10000;
  double sum = 0.0, sumsq = 0.0, cross = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = parent.Split(2 * i).NextDouble();
    const double y = parent.Split(2 * i + 1).NextDouble();
    sum += x + y;
    sumsq += x * x + y * y;
    cross += (x - 0.5) * (y - 0.5);
  }
  const double mean = sum / (2 * n);
  const double var = sumsq / (2 * n) - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);  // Uniform(0,1) variance.
  // Pearson-style cross term: for independent uniforms the correlation
  // is 0 with sd ~ 1/(12*sqrt(n)) — 0.005 is ~6 sigma.
  EXPECT_NEAR(cross / n, 0.0, 0.005);
}

TEST(RngTest, SplitStreamsPassIndexUniformity) {
  // Draws taken *within* one substream are as uniform as the parent's:
  // the walk loop draws neighbors via NextIndex on the substream.
  Rng parent(555);
  Rng sub = parent.Split(42);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const uint64_t x = sub.NextIndex(7);
    ASSERT_LT(x, 7u);
    ++counts[x];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 500);
  }
}

// Property sweep: uniformity of NextIndex across several bounds.
class RngIndexUniformity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngIndexUniformity, ChiSquareWithinBounds) {
  const uint64_t bound = GetParam();
  Rng rng(bound * 7919 + 1);
  const int n = 20000 * static_cast<int>(bound);
  std::vector<int> counts(bound, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.NextIndex(bound)];
  const double expected = static_cast<double>(n) / bound;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // Very generous: P(chi2 > 3*df) is negligible for these df.
  EXPECT_LT(chi2, 3.0 * bound + 20.0);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngIndexUniformity,
                         ::testing::Values(2, 3, 5, 10, 17));

}  // namespace
}  // namespace digest
