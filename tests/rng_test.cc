#include "numeric/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace digest {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextIndexRespectsBound) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const uint64_t x = rng.NextIndex(7);
    ASSERT_LT(x, 7u);
    ++counts[x];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 500);  // ~5 sigma of binomial noise.
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = rng.NextInt(-3, 3);
    ASSERT_GE(x, -3);
    ASSERT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(31);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const size_t idx = rng.NextWeightedIndex(weights);
    ASSERT_LT(idx, 4u);
    ++counts[idx];
  }
  EXPECT_EQ(counts[2], 0);  // Zero weight never picked.
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.6, 0.01);
}

TEST(RngTest, WeightedIndexAllZeroReturnsSize) {
  Rng rng(41);
  EXPECT_EQ(rng.NextWeightedIndex({0.0, 0.0}), 2u);
  EXPECT_EQ(rng.NextWeightedIndex({}), 0u);
}

TEST(RngTest, ForkedStreamsAreIndependentButDeterministic) {
  Rng a(99);
  Rng fork1 = a.Fork();
  Rng b(99);
  Rng fork2 = b.Fork();
  // Same parent seed -> same fork.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(fork1.NextU64(), fork2.NextU64());
  }
  // Fork differs from parent stream.
  Rng c(99);
  Rng fork3 = c.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (c.NextU64() == fork3.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// Property sweep: uniformity of NextIndex across several bounds.
class RngIndexUniformity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngIndexUniformity, ChiSquareWithinBounds) {
  const uint64_t bound = GetParam();
  Rng rng(bound * 7919 + 1);
  const int n = 20000 * static_cast<int>(bound);
  std::vector<int> counts(bound, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.NextIndex(bound)];
  const double expected = static_cast<double>(n) / bound;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // Very generous: P(chi2 > 3*df) is negligible for these df.
  EXPECT_LT(chi2, 3.0 * bound + 20.0);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngIndexUniformity,
                         ::testing::Values(2, 3, 5, 10, 17));

}  // namespace
}  // namespace digest
