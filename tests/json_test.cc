// common/json.h parser: the checkpoint blob round-trip contract.
// Strictness (trailing garbage, trailing commas, bad escapes) and the
// lossless numeric conversions (%.17g doubles, uint64-as-string).
#include "common/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

namespace digest {
namespace json {
namespace {

Value MustParse(const std::string& text) {
  Result<Value> parsed = Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().message() << " in: " << text;
  return std::move(parsed).value();
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_TRUE(MustParse("true").bool_value());
  EXPECT_FALSE(MustParse("false").bool_value());
  EXPECT_EQ(MustParse("\"hi\"").string_value(), "hi");
  EXPECT_EQ(MustParse("42").number_text(), "42");
  EXPECT_EQ(MustParse("  -1.5e-3 ").number_text(), "-1.5e-3");
}

TEST(JsonParseTest, NestedContainers) {
  const Value v = MustParse(
      R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "a": 9})");
  ASSERT_TRUE(v.is_object());
  const Value* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_EQ(a->array()[0].number_text(), "1");
  EXPECT_TRUE(a->array()[2].Find("b")->bool_value());
  // Find returns the FIRST member with the key (source order).
  EXPECT_TRUE(a->is_array());
  ASSERT_NE(v.Find("c"), nullptr);
  EXPECT_TRUE(v.Find("c")->Find("d")->is_null());
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(MustParse(R"("a\"b\\c\/d\n\t\r\b\f")").string_value(),
            "a\"b\\c/d\n\t\r\b\f");
  EXPECT_EQ(MustParse(R"("\u0041\u00e9")").string_value(), "A\xc3\xa9");
}

TEST(JsonParseTest, StrictnessErrors) {
  const char* bad[] = {
      "",            // empty
      "{",           // unterminated object
      "[1, 2",       // unterminated array
      "[1, 2,]",     // trailing comma
      "{\"a\":1,}",  // trailing comma in object
      "{a: 1}",      // unquoted key
      "1 2",         // trailing garbage
      "\"a",         // unterminated string
      "\"\x01\"",    // raw control character
      "\"\\x41\"",   // bad escape
      "nul",         // truncated keyword
      "01",          // leading zero
      "+1",          // leading plus
      "1.",          // missing fraction digits
      "--1",         // double sign
  };
  for (const char* text : bad) {
    Result<Value> parsed = Parse(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(JsonNumericTest, DoubleRoundTripsAt17Digits) {
  // The checkpoint writer prints doubles with %.17g; strtod must give
  // back the exact bits for every value the engine can produce.
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.0 / 3.0,
                           3.141592653589793,
                           1e-308,
                           1.7976931348623157e308,
                           5e-324,
                           123456.789012345678};
  for (double v : values) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    Result<double> back = MustParse(buf).AsDouble();
    ASSERT_TRUE(back.ok()) << buf;
    EXPECT_EQ(std::signbit(back.value()), std::signbit(v)) << buf;
    EXPECT_EQ(back.value(), v) << buf;
  }
}

TEST(JsonNumericTest, UInt64AsDecimalString) {
  // uint64 values ride as strings because a double cannot hold 2^64-1.
  const Value v = MustParse(R"({"x": "18446744073709551615", "y": 7})");
  Result<uint64_t> x = v.GetUInt64("x");
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x.value(), std::numeric_limits<uint64_t>::max());
  // Plain JSON integers are accepted too.
  Result<uint64_t> y = v.GetUInt64("y");
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y.value(), 7u);
}

TEST(JsonNumericTest, IntegerConversionRejectsLossyText) {
  EXPECT_FALSE(MustParse("1.5").AsInt64().ok());
  EXPECT_FALSE(MustParse("1e3").AsUInt64().ok());
  EXPECT_FALSE(MustParse("-1").AsUInt64().ok());
  // One past the int64 range.
  EXPECT_FALSE(MustParse("9223372036854775808").AsInt64().ok());
  // 2^64 overflows uint64.
  EXPECT_FALSE(MustParse("18446744073709551616").AsUInt64().ok());
  Result<int64_t> min = MustParse("-9223372036854775808").AsInt64();
  ASSERT_TRUE(min.ok());
  EXPECT_EQ(min.value(), std::numeric_limits<int64_t>::min());
}

TEST(JsonNumericTest, DoubleConversionRejectsRangeErrors) {
  // Overflow: a syntactically valid literal no double can hold must not
  // silently become ±inf.
  EXPECT_FALSE(MustParse("1e999").AsDouble().ok());
  EXPECT_FALSE(MustParse("-1e999").AsDouble().ok());
  EXPECT_FALSE(MustParse("1.7976931348623157e400").AsDouble().ok());
  // Full underflow: a nonzero literal flushed all the way to 0.
  EXPECT_FALSE(MustParse("1e-999").AsDouble().ok());
  EXPECT_FALSE(MustParse("-1e-999").AsDouble().ok());
  // Denormals remain representable and must keep round-tripping even
  // though strtod may flag them ERANGE.
  Result<double> denormal = MustParse("5e-324").AsDouble();
  ASSERT_TRUE(denormal.ok());
  EXPECT_EQ(denormal.value(), 5e-324);
  // strtod's "inf"/"nan" spellings ride in via the string form; neither
  // is a usable number.
  const Value v = MustParse(R"({"i": "inf", "n": "nan", "m": "-infinity"})");
  EXPECT_FALSE(v.GetDouble("i").ok());
  EXPECT_FALSE(v.GetDouble("n").ok());
  EXPECT_FALSE(v.GetDouble("m").ok());
}

TEST(JsonTypedLookupTest, ErrorsOnMissingOrWrongType) {
  const Value v = MustParse(R"({"s": "text", "n": 1, "b": true, "a": []})");
  EXPECT_FALSE(v.GetDouble("s").ok());
  EXPECT_FALSE(v.GetString("n").ok());
  EXPECT_FALSE(v.GetBool("a").ok());
  EXPECT_FALSE(v.GetArray("b").ok());
  EXPECT_FALSE(v.GetObject("a").ok());
  EXPECT_FALSE(v.GetDouble("nope").ok());
  ASSERT_TRUE(v.GetBool("b").ok());
  ASSERT_TRUE(v.GetString("s").ok());
  ASSERT_TRUE(v.GetArray("a").ok());
}

}  // namespace
}  // namespace json
}  // namespace digest
