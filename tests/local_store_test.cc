#include "db/local_store.h"

#include <gtest/gtest.h>

#include <set>

namespace digest {
namespace {

TEST(LocalStoreTest, InsertAssignsFreshIds) {
  LocalStore store;
  const LocalTupleId a = store.Insert({1.0});
  const LocalTupleId b = store.Insert({2.0});
  EXPECT_NE(a, b);
  EXPECT_EQ(store.Size(), 2u);
  EXPECT_TRUE(store.Contains(a));
  EXPECT_TRUE(store.Contains(b));
}

TEST(LocalStoreTest, GetReturnsInsertedTuple) {
  LocalStore store;
  const LocalTupleId id = store.Insert({1.5, 2.5});
  Result<Tuple> t = store.Get(id);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, (Tuple{1.5, 2.5}));
  EXPECT_EQ(store.Get(999).status().code(), StatusCode::kNotFound);
}

TEST(LocalStoreTest, UpdateReplacesTuple) {
  LocalStore store;
  const LocalTupleId id = store.Insert({1.0});
  ASSERT_TRUE(store.Update(id, {9.0, 10.0}).ok());
  EXPECT_EQ(store.Get(id).value(), (Tuple{9.0, 10.0}));
  EXPECT_EQ(store.Update(999, {1.0}).code(), StatusCode::kNotFound);
}

TEST(LocalStoreTest, UpdateAttribute) {
  LocalStore store;
  const LocalTupleId id = store.Insert({1.0, 2.0});
  ASSERT_TRUE(store.UpdateAttribute(id, 1, 7.0).ok());
  EXPECT_EQ(store.Get(id).value(), (Tuple{1.0, 7.0}));
  EXPECT_EQ(store.UpdateAttribute(id, 5, 1.0).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(store.UpdateAttribute(999, 0, 1.0).code(),
            StatusCode::kNotFound);
}

TEST(LocalStoreTest, EraseRemovesAndNeverReusesIds) {
  LocalStore store;
  const LocalTupleId a = store.Insert({1.0});
  const LocalTupleId b = store.Insert({2.0});
  const LocalTupleId c = store.Insert({3.0});
  ASSERT_TRUE(store.Erase(b).ok());
  EXPECT_FALSE(store.Contains(b));
  EXPECT_EQ(store.Size(), 2u);
  EXPECT_EQ(store.Erase(b).code(), StatusCode::kNotFound);
  // Swap-remove must not corrupt the other tuples.
  EXPECT_EQ(store.Get(a).value(), (Tuple{1.0}));
  EXPECT_EQ(store.Get(c).value(), (Tuple{3.0}));
  const LocalTupleId d = store.Insert({4.0});
  EXPECT_NE(d, b);
}

TEST(LocalStoreTest, EraseHeavyChurnKeepsIndexConsistent) {
  LocalStore store;
  std::vector<LocalTupleId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(store.Insert({double(i)}));
  // Erase every third tuple.
  for (size_t i = 0; i < ids.size(); i += 3) {
    ASSERT_TRUE(store.Erase(ids[i]).ok());
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i % 3 == 0) {
      EXPECT_FALSE(store.Contains(ids[i]));
    } else {
      ASSERT_TRUE(store.Contains(ids[i]));
      EXPECT_EQ(store.Get(ids[i]).value()[0], double(i));
    }
  }
}

TEST(LocalStoreTest, UniformSampleFailsWhenEmpty) {
  LocalStore store;
  Rng rng(1);
  EXPECT_EQ(store.UniformSample(rng).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(LocalStoreTest, UniformSampleIsUniform) {
  LocalStore store;
  std::vector<LocalTupleId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(store.Insert({double(i)}));
  Rng rng(2);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) {
    Result<std::pair<LocalTupleId, Tuple>> pick = store.UniformSample(rng);
    ASSERT_TRUE(pick.ok());
    ++counts[static_cast<size_t>(pick->second[0])];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(LocalStoreTest, ForEachVisitsEveryTupleOnce) {
  LocalStore store;
  std::set<LocalTupleId> expected;
  for (int i = 0; i < 20; ++i) expected.insert(store.Insert({double(i)}));
  std::set<LocalTupleId> seen;
  store.ForEach([&](LocalTupleId id, const Tuple& tuple) {
    EXPECT_TRUE(expected.count(id));
    EXPECT_EQ(tuple.size(), 1u);
    EXPECT_TRUE(seen.insert(id).second) << "visited twice";
  });
  EXPECT_EQ(seen.size(), expected.size());
}

}  // namespace
}  // namespace digest
