// Randomized property tests for the numeric substrate: solvers checked
// against defining identities on random well-conditioned inputs, and
// spectral analysis checked on random reversible chains. Deterministic
// (seeded).
#include <gtest/gtest.h>

#include <cmath>

#include "net/topology.h"
#include "numeric/matrix.h"
#include "numeric/polynomial.h"
#include "numeric/rng.h"
#include "sampling/metropolis.h"

namespace digest {
namespace {

Matrix RandomDiagonallyDominant(size_t n, Rng& rng) {
  Matrix a(n, n);
  for (size_t r = 0; r < n; ++r) {
    double off = 0.0;
    for (size_t c = 0; c < n; ++c) {
      if (r == c) continue;
      a(r, c) = rng.NextGaussian();
      off += std::fabs(a(r, c));
    }
    a(r, r) = off + 1.0 + rng.NextDouble();  // Guarantees invertibility.
  }
  return a;
}

class SolverProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverProperty, SolveSatisfiesSystem) {
  Rng rng(GetParam());
  for (size_t n : {2, 5, 11, 23}) {
    Matrix a = RandomDiagonallyDominant(n, rng);
    std::vector<double> b(n);
    for (double& v : b) v = rng.NextGaussian(0.0, 3.0);
    Result<std::vector<double>> x = SolveLinearSystem(a, b);
    ASSERT_TRUE(x.ok()) << "n=" << n;
    std::vector<double> ax = a.MatVec(*x);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(ax[i], b[i], 1e-8) << "n=" << n << " row " << i;
    }
  }
}

TEST_P(SolverProperty, LeastSquaresResidualOrthogonality) {
  Rng rng(GetParam() + 1);
  for (auto [m, n] : {std::pair<size_t, size_t>{6, 2},
                      {12, 4},
                      {30, 7}}) {
    Matrix a(m, n);
    for (size_t r = 0; r < m; ++r) {
      for (size_t c = 0; c < n; ++c) a(r, c) = rng.NextGaussian();
    }
    std::vector<double> b(m);
    for (double& v : b) v = rng.NextGaussian();
    Result<std::vector<double>> x = SolveLeastSquares(a, b);
    ASSERT_TRUE(x.ok());
    std::vector<double> r = a.MatVec(*x);
    for (size_t i = 0; i < m; ++i) r[i] -= b[i];
    std::vector<double> atr = a.VecMat(r);
    for (size_t c = 0; c < n; ++c) {
      EXPECT_NEAR(atr[c], 0.0, 1e-8) << m << "x" << n << " col " << c;
    }
  }
}

TEST_P(SolverProperty, PolynomialInterpolationIsExact) {
  Rng rng(GetParam() + 2);
  for (size_t degree : {1, 2, 3, 5}) {
    std::vector<double> coeffs(degree + 1);
    for (double& c : coeffs) c = rng.NextGaussian();
    Polynomial truth(coeffs);
    std::vector<double> xs, ys;
    for (size_t i = 0; i <= degree; ++i) {
      // Distinct, moderately spread abscissae.
      const double x = static_cast<double>(i) - 0.5 * degree +
                       0.1 * rng.NextDouble();
      xs.push_back(x);
      ys.push_back(truth.Evaluate(x));
    }
    Result<Polynomial> fit = FitPolynomialLeastSquares(xs, ys, degree);
    ASSERT_TRUE(fit.ok()) << "degree " << degree;
    for (double probe : {-1.5, 0.3, 2.2}) {
      EXPECT_NEAR(fit->Evaluate(probe), truth.Evaluate(probe), 1e-6)
          << "degree " << degree;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverProperty,
                         ::testing::Values(10, 77, 5150));

class SpectralProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpectralProperty, EigenvalueIsInvariantUnderPowers) {
  // |λ₂(P²)| = |λ₂(P)|² for reversible chains — a strong consistency
  // check on the deflated power iteration.
  Rng rng(GetParam());
  Graph g = MakeErdosRenyi(14, 0.35, rng).value();
  WeightFn weight = [](NodeId v) { return 1.0 + (v % 3); };
  ForwardingMatrix fm = BuildForwardingMatrix(g, weight).value();
  const double l2 = SecondEigenvalueMagnitude(fm.p, fm.pi).value();
  Matrix p2 = fm.p.MatMul(fm.p);
  const double l2_sq = SecondEigenvalueMagnitude(p2, fm.pi).value();
  EXPECT_NEAR(l2_sq, l2 * l2, 1e-6);
}

TEST_P(SpectralProperty, MixingObeysEigengapBound) {
  Rng rng(GetParam() + 3);
  Graph g = MakeBarabasiAlbert(14, 2, rng).value();
  ForwardingMatrix fm =
      BuildForwardingMatrix(g, UniformWeight()).value();
  const double l2 = SecondEigenvalueMagnitude(fm.p, fm.pi).value();
  double pi_min = 1.0;
  for (double p : fm.pi) pi_min = std::min(pi_min, p);
  for (double gamma : {0.1, 0.01}) {
    const size_t tau = MixingTime(fm, gamma).value();
    const double bound = std::log(1.0 / (pi_min * gamma)) / (1.0 - l2);
    EXPECT_LE(static_cast<double>(tau), bound + 1.0) << "gamma " << gamma;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpectralProperty,
                         ::testing::Values(21, 84, 333));

}  // namespace
}  // namespace digest
