// Unit tests of the sampler-introspection aggregator (src/diag/):
// closed-form checks of the stationary-gap statistics (TV distance,
// chi-square) and the burn-in diagnostics (lag-1 autocorrelation, ESS,
// R-hat) on hand-built walk buffers, churn rebasing of the visit
// target, hot-peer detection, the breach read-and-clear handshake with
// the engine, and determinism of the JSON summary.
#include "diag/diag.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <variant>
#include <vector>

#include "net/graph.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace digest {
namespace diag {
namespace {

/// A triangle: three live nodes 0,1,2, every pair adjacent.
Graph MakeTriangle() {
  Graph g;
  const NodeId a = g.AddNode();
  const NodeId b = g.AddNode();
  const NodeId c = g.AddNode();
  EXPECT_TRUE(g.AddEdge(a, b).ok());
  EXPECT_TRUE(g.AddEdge(b, c).ok());
  EXPECT_TRUE(g.AddEdge(a, c).ok());
  return g;
}

double UnitWeight(NodeId) { return 1.0; }

TEST(SamplerDiagTest, TvAndChiSquareAgainstUniformTarget) {
  // Unit weights on a triangle make the stationary target uniform 1/3.
  // Six visits, all to node 0: empirical = (1, 0, 0), so
  //   TV  = ½(|1−⅓| + ⅓ + ⅓) = ⅔
  //   χ²  = ((⅔)² + (⅓)² + (⅓)²) / ⅓ = 2
  Graph g = MakeTriangle();
  DiagOptions options;
  options.min_visits = 1;
  SamplerDiag diag(options);
  WalkDiagBuffer walk;
  for (int i = 0; i < 6; ++i) walk.RecordVisit(0);
  diag.FoldWalk(walk);
  diag.FinishBatch(g, UnitWeight, /*proposals=*/0, /*accepted=*/0,
                   /*tracer=*/nullptr, /*registry=*/nullptr);
  const BatchDiagnostics& d = diag.last_batch();
  EXPECT_EQ(d.walks, 1u);
  EXPECT_EQ(d.steps, 6u);
  EXPECT_EQ(d.live_visits, 6u);
  EXPECT_EQ(d.live_peers, 3u);
  EXPECT_NEAR(d.tv_distance, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(d.chi_square, 2.0, 1e-12);
  EXPECT_TRUE(d.breach);  // ⅔ > default threshold 0.25, min_visits met.
}

TEST(SamplerDiagTest, PerfectHistogramHasZeroGap) {
  // Visits exactly proportional to the (non-uniform) weights: TV and
  // chi-square both vanish.
  Graph g = MakeTriangle();
  SamplerDiag diag;
  WalkDiagBuffer walk;
  // w = (1, 2, 3); 6 visits split 1:2:3.
  walk.RecordVisit(0);
  walk.RecordVisit(1);
  walk.RecordVisit(1);
  for (int i = 0; i < 3; ++i) walk.RecordVisit(2);
  diag.FoldWalk(walk);
  diag.FinishBatch(
      g, [](NodeId v) { return static_cast<double>(v) + 1.0; },
      /*proposals=*/0, /*accepted=*/0, nullptr, nullptr);
  EXPECT_NEAR(diag.last_batch().tv_distance, 0.0, 1e-12);
  EXPECT_NEAR(diag.last_batch().chi_square, 0.0, 1e-12);
  EXPECT_FALSE(diag.last_batch().breach);
}

TEST(SamplerDiagTest, MinVisitsGuardSuppressesBreach) {
  // A terrible histogram built from fewer than min_visits live visits
  // is not evidence of poor mixing — no breach.
  Graph g = MakeTriangle();
  DiagOptions options;
  options.min_visits = 32;
  SamplerDiag diag(options);
  WalkDiagBuffer walk;
  for (int i = 0; i < 6; ++i) walk.RecordVisit(0);
  diag.FoldWalk(walk);
  diag.FinishBatch(g, UnitWeight, 0, 0, nullptr, nullptr);
  EXPECT_GT(diag.last_batch().tv_distance, 0.25);
  EXPECT_FALSE(diag.last_batch().breach);
  EXPECT_FALSE(diag.TakeBreachSinceLastRead());
}

TEST(SamplerDiagTest, ChurnRebasesTargetAndPrunesDeadVisits) {
  // Walks visited all three corners, then node 2 left the overlay
  // before the batch closed: its visits are pruned (but counted) and
  // the target is rebased on the two survivors.
  Graph g = MakeTriangle();
  SamplerDiag diag;
  WalkDiagBuffer walk;
  for (int i = 0; i < 4; ++i) walk.RecordVisit(0);
  for (int i = 0; i < 4; ++i) walk.RecordVisit(1);
  for (int i = 0; i < 8; ++i) walk.RecordVisit(2);
  diag.FoldWalk(walk);
  ASSERT_TRUE(g.RemoveNode(2).ok());
  diag.FinishBatch(g, UnitWeight, 0, 0, nullptr, nullptr);
  const BatchDiagnostics& d = diag.last_batch();
  EXPECT_EQ(d.steps, 16u);
  EXPECT_EQ(d.live_visits, 8u);
  EXPECT_EQ(d.dropped_dead_visits, 8u);
  EXPECT_EQ(d.live_peers, 2u);
  // Survivors got 4 visits each out of 8 live: a perfect uniform match.
  EXPECT_NEAR(d.tv_distance, 0.0, 1e-12);
  EXPECT_FALSE(d.breach);
}

TEST(SamplerDiagTest, Lag1AndEssClosedForm) {
  // One walk over nodes with weights w = (1, 3); the visit series
  // 0,0,1,1 maps to x = 1,1,3,3: mean 2, centered (−1,−1,1,1), so
  //   var0 = 4, cov1 = 1, ρ = ¼, ESS = n(1−ρ)/(1+ρ) = 4·0.75/1.25 = 2.4.
  Graph g = MakeTriangle();
  SamplerDiag diag;
  WalkDiagBuffer walk;
  walk.RecordVisit(0);
  walk.RecordVisit(0);
  walk.RecordVisit(1);
  walk.RecordVisit(1);
  diag.FoldWalk(walk);
  diag.FinishBatch(
      g, [](NodeId v) { return v == 0 ? 1.0 : 3.0; }, 0, 0, nullptr,
      nullptr);
  EXPECT_NEAR(diag.last_batch().lag1_autocorr, 0.25, 1e-12);
  EXPECT_NEAR(diag.last_batch().ess, 2.4, 1e-12);
  // A single walk gives no between-walk contrast: R̂ stays at its
  // neutral default.
  EXPECT_EQ(diag.last_batch().rhat, 1.0);
}

TEST(SamplerDiagTest, RhatSeparatesDisagreeingWalks) {
  // Two walks stuck in different modes (constant series at different
  // levels) have zero within-walk variance contrast and disjoint means;
  // mix in slight within-walk noise so R̂ is finite, then check it is
  // far above the ≈1 of two well-mixed (identical) walks.
  Graph g = MakeTriangle();
  const auto weight = [](NodeId v) { return static_cast<double>(v) + 1.0; };

  SamplerDiag disagreeing;
  WalkDiagBuffer low;   // x: 1,2,1,2 — hovers low.
  WalkDiagBuffer high;  // x: 3,2,3,2 — hovers high.
  for (int i = 0; i < 2; ++i) {
    low.RecordVisit(0);
    low.RecordVisit(1);
    high.RecordVisit(2);
    high.RecordVisit(1);
  }
  disagreeing.FoldWalk(low);
  disagreeing.FoldWalk(high);
  disagreeing.FinishBatch(g, weight, 0, 0, nullptr, nullptr);

  SamplerDiag agreeing;
  WalkDiagBuffer same1 = low;
  WalkDiagBuffer same2 = low;
  agreeing.FoldWalk(same1);
  agreeing.FoldWalk(same2);
  agreeing.FinishBatch(g, weight, 0, 0, nullptr, nullptr);

  EXPECT_GT(disagreeing.last_batch().rhat, 1.2);
  EXPECT_NEAR(agreeing.last_batch().rhat, std::sqrt(3.0 / 4.0), 1e-12);
}

TEST(SamplerDiagTest, HotPeerDetectionOnStarLoad) {
  // Star-shaped message load: every hop lands on node 0. With four
  // leaves each touched once and the hub touched four times, the hub
  // exceeds hot_peer_factor × mean and is flagged.
  Graph g;
  const NodeId hub = g.AddNode();
  std::vector<NodeId> leaves;
  for (int i = 0; i < 4; ++i) {
    leaves.push_back(g.AddNode());
    ASSERT_TRUE(g.AddEdge(hub, leaves.back()).ok());
  }
  SamplerDiag diag;
  WalkDiagBuffer walk;
  for (const NodeId leaf : leaves) walk.RecordHop(leaf, hub);
  diag.FoldWalk(walk);
  diag.FinishBatch(g, UnitWeight, 0, 0, nullptr, nullptr);
  const BatchDiagnostics& d = diag.last_batch();
  EXPECT_EQ(d.loaded_peers, 5u);
  EXPECT_EQ(d.loaded_links, 4u);
  EXPECT_EQ(d.hot_peer, hub);
  EXPECT_EQ(d.max_load, 4u);
  EXPECT_NEAR(d.mean_load, 8.0 / 5.0, 1e-12);  // 8 touches, 5 peers.
  EXPECT_TRUE(d.hot);  // 4 > 2.0 × 1.6.
}

TEST(SamplerDiagTest, BalancedLoadIsNotHot) {
  // A cycle of hops spreads load evenly: max == mean, nothing is hot.
  Graph g = MakeTriangle();
  SamplerDiag diag;
  WalkDiagBuffer walk;
  walk.RecordHop(0, 1);
  walk.RecordHop(1, 2);
  walk.RecordHop(2, 0);
  diag.FoldWalk(walk);
  diag.FinishBatch(g, UnitWeight, 0, 0, nullptr, nullptr);
  EXPECT_EQ(diag.last_batch().max_load, 2u);
  EXPECT_NEAR(diag.last_batch().mean_load, 2.0, 1e-12);
  EXPECT_FALSE(diag.last_batch().hot);
}

TEST(SamplerDiagTest, BreachFlagIsReadAndClear) {
  Graph g = MakeTriangle();
  DiagOptions options;
  options.min_visits = 1;
  SamplerDiag diag(options);

  WalkDiagBuffer bad;
  for (int i = 0; i < 6; ++i) bad.RecordVisit(0);
  diag.FoldWalk(bad);
  diag.FinishBatch(g, UnitWeight, 0, 0, nullptr, nullptr);
  ASSERT_TRUE(diag.LastBatchBreach());

  // A clean batch after the breach: the sticky since-last-read flag
  // still reports the earlier breach exactly once.
  WalkDiagBuffer good;
  good.RecordVisit(0);
  good.RecordVisit(1);
  good.RecordVisit(2);
  diag.FoldWalk(good);
  diag.FinishBatch(g, UnitWeight, 0, 0, nullptr, nullptr);
  EXPECT_FALSE(diag.LastBatchBreach());
  EXPECT_TRUE(diag.TakeBreachSinceLastRead());
  EXPECT_FALSE(diag.TakeBreachSinceLastRead());
}

TEST(SamplerDiagTest, AcceptanceCountersAndRate) {
  Graph g = MakeTriangle();
  SamplerDiag diag;
  WalkDiagBuffer walk;
  walk.RecordVisit(0);
  diag.FoldWalk(walk);
  diag.FinishBatch(g, UnitWeight, /*proposals=*/10, /*accepted=*/7,
                   nullptr, nullptr);
  EXPECT_EQ(diag.last_batch().proposals, 10u);
  EXPECT_EQ(diag.last_batch().accepted, 7u);
  EXPECT_NEAR(diag.last_batch().acceptance_rate, 0.7, 1e-12);
}

TEST(SamplerDiagTest, EmitsFourEventsAndRegistryKeysPerBatch) {
  Graph g = MakeTriangle();
  obs::MemoryTracer tracer;
  obs::Registry registry;
  DiagOptions options;
  options.min_visits = 1;
  SamplerDiag diag(options);
  WalkDiagBuffer walk;
  for (int i = 0; i < 6; ++i) walk.RecordVisit(0);
  walk.RecordProbe(0, 1);
  walk.RecordHop(0, 1);
  diag.FoldWalk(walk);
  diag.FinishBatch(g, UnitWeight, /*proposals=*/1, /*accepted=*/1, &tracer,
                   &registry);

  ASSERT_EQ(tracer.events().size(), 4u);
  EXPECT_TRUE(std::holds_alternative<obs::WalkMixingEvent>(
      tracer.events()[0].payload));
  EXPECT_TRUE(std::holds_alternative<obs::StationaryGapEvent>(
      tracer.events()[1].payload));
  EXPECT_TRUE(std::holds_alternative<obs::PeerLoadEvent>(
      tracer.events()[2].payload));
  EXPECT_TRUE(std::holds_alternative<obs::AcceptanceRateEvent>(
      tracer.events()[3].payload));

  EXPECT_EQ(registry.GetCounter("diag.batches")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("diag.visits")->value(), 6u);
  EXPECT_EQ(registry.GetCounter("diag.stationary_breaches")->value(), 1u);
  EXPECT_NEAR(registry.GetGauge("diag.acceptance_rate")->value(), 1.0,
              1e-12);
  EXPECT_GT(registry.GetGauge("diag.tv_distance")->value(), 0.25);
}

TEST(SamplerDiagTest, SummaryJsonIsDeterministicAndResetRestoresFresh) {
  Graph g = MakeTriangle();
  const auto run_once = [&g]() {
    SamplerDiag diag;
    WalkDiagBuffer walk;
    walk.RecordVisit(0);
    walk.RecordVisit(1);
    walk.RecordHop(0, 1);
    diag.FoldWalk(walk);
    diag.FinishBatch(g, UnitWeight, 3, 2, nullptr, nullptr);
    return diag.SummaryJson();
  };
  const std::string first = run_once();
  EXPECT_EQ(first, run_once());
  EXPECT_NE(first.find("\"batches\":1"), std::string::npos);
  EXPECT_NE(first.find("\"proposals\":3"), std::string::npos);

  SamplerDiag diag;
  const std::string fresh = diag.SummaryJson();
  WalkDiagBuffer walk;
  walk.RecordVisit(0);
  diag.FoldWalk(walk);
  diag.FinishBatch(g, UnitWeight, 1, 1, nullptr, nullptr);
  EXPECT_NE(diag.SummaryJson(), fresh);
  EXPECT_EQ(diag.batches(), 1u);
  diag.Reset();
  EXPECT_EQ(diag.batches(), 0u);
  EXPECT_EQ(diag.SummaryJson(), fresh);
  EXPECT_FALSE(diag.TakeBreachSinceLastRead());
}

TEST(SamplerDiagTest, UnfinishedFoldsDoNotLeakAcrossFinish) {
  // FinishBatch closes the batch: a second FinishBatch with no folds in
  // between summarizes an empty batch, not the previous one again.
  Graph g = MakeTriangle();
  SamplerDiag diag;
  WalkDiagBuffer walk;
  walk.RecordVisit(0);
  diag.FoldWalk(walk);
  diag.FinishBatch(g, UnitWeight, 0, 0, nullptr, nullptr);
  EXPECT_EQ(diag.last_batch().walks, 1u);
  diag.FinishBatch(g, UnitWeight, 0, 0, nullptr, nullptr);
  EXPECT_EQ(diag.last_batch().walks, 0u);
  EXPECT_EQ(diag.last_batch().steps, 0u);
  EXPECT_EQ(diag.batches(), 2u);
}

}  // namespace
}  // namespace diag
}  // namespace digest
