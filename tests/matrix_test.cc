#include "numeric/matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace digest {
namespace {

TEST(MatrixTest, IdentityAndAccess) {
  Matrix m = Matrix::Identity(3);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 0.0);
  m(0, 1) = 5.0;
  EXPECT_EQ(m(0, 1), 5.0);
}

TEST(MatrixTest, MatVec) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  std::vector<double> y = m.MatVec({1.0, 1.0, 1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(MatrixTest, VecMatIsTransposeProduct) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  std::vector<double> y = m.VecMat({1.0, 2.0});
  EXPECT_DOUBLE_EQ(y[0], 7.0);   // 1*1 + 2*3
  EXPECT_DOUBLE_EQ(y[1], 10.0);  // 1*2 + 2*4
}

TEST(MatrixTest, MatMulAgainstIdentity) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  Matrix p = m.MatMul(Matrix::Identity(2));
  EXPECT_EQ(p.MaxAbsDiff(m), 0.0);
}

TEST(MatrixTest, TransposedTwiceIsIdentityOp) {
  Matrix m(2, 3);
  m(0, 2) = 7.0;
  m(1, 0) = -2.0;
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t(2, 0), 7.0);
  EXPECT_EQ(t.Transposed().MaxAbsDiff(m), 0.0);
}

TEST(SolveTest, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  Result<std::vector<double>> x = SolveLinearSystem(a, {5.0, 10.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(SolveTest, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  Result<std::vector<double>> x = SolveLinearSystem(a, {2.0, 3.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(SolveTest, SingularSystemFails) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_FALSE(SolveLinearSystem(a, {1.0, 2.0}).ok());
}

TEST(SolveTest, ShapeMismatchFails) {
  Matrix a(2, 3);
  EXPECT_FALSE(SolveLinearSystem(a, {1.0, 2.0}).ok());
  Matrix b(2, 2);
  EXPECT_FALSE(SolveLinearSystem(b, {1.0}).ok());
}

TEST(LeastSquaresTest, ExactSystemIsInterpolated) {
  // Square, well-conditioned: least squares == solve.
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  Result<std::vector<double>> x = SolveLeastSquares(a, {3.0, 5.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(LeastSquaresTest, OverdeterminedMinimizesResidual) {
  // Fit y = c0 + c1 x to 4 points of y = 1 + 2x with one outlier-free
  // exact structure -> recovers exactly.
  Matrix a(4, 2);
  std::vector<double> b(4);
  const double xs[] = {0.0, 1.0, 2.0, 3.0};
  for (int i = 0; i < 4; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = xs[i];
    b[i] = 1.0 + 2.0 * xs[i];
  }
  Result<std::vector<double>> x = SolveLeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-10);
  EXPECT_NEAR((*x)[1], 2.0, 1e-10);
}

TEST(LeastSquaresTest, ResidualIsOrthogonalToColumns) {
  Matrix a(5, 2);
  std::vector<double> b = {1.0, -2.0, 0.5, 4.0, 3.0};
  for (int i = 0; i < 5; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = static_cast<double>(i * i);
  }
  Result<std::vector<double>> x = SolveLeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  std::vector<double> residual = a.MatVec(*x);
  for (int i = 0; i < 5; ++i) residual[i] -= b[i];
  // A^T r == 0 characterizes the least-squares solution.
  std::vector<double> atr = a.VecMat(residual);
  EXPECT_NEAR(atr[0], 0.0, 1e-9);
  EXPECT_NEAR(atr[1], 0.0, 1e-9);
}

TEST(LeastSquaresTest, UnderdeterminedFails) {
  Matrix a(1, 2);
  EXPECT_FALSE(SolveLeastSquares(a, {1.0}).ok());
}

TEST(LeastSquaresTest, RankDeficientFails) {
  Matrix a(3, 2);
  for (int i = 0; i < 3; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = 2.0;  // Column 2 = 2 * column 1.
  }
  EXPECT_FALSE(SolveLeastSquares(a, {1.0, 2.0, 3.0}).ok());
}

TEST(EigenTest, TwoStateChainSecondEigenvalue) {
  // P = [[1-a, a], [b, 1-b]] has eigenvalues 1 and 1-a-b.
  const double alpha = 0.3, beta = 0.2;
  Matrix p(2, 2);
  p(0, 0) = 1 - alpha;
  p(0, 1) = alpha;
  p(1, 0) = beta;
  p(1, 1) = 1 - beta;
  const std::vector<double> pi = {beta / (alpha + beta),
                                  alpha / (alpha + beta)};
  Result<double> l2 = SecondEigenvalueMagnitude(p, pi);
  ASSERT_TRUE(l2.ok());
  EXPECT_NEAR(*l2, 1.0 - alpha - beta, 1e-8);
}

TEST(EigenTest, LazyUniformCompleteChain) {
  // Lazy walk on K_n with uniform target: P = 1/2 I + 1/2 (J-I)/(n-1).
  // Second eigenvalue is 1/2 - 1/(2(n-1)).
  const size_t n = 5;
  Matrix p(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      p(i, j) = (i == j) ? 0.5 : 0.5 / static_cast<double>(n - 1);
    }
  }
  const std::vector<double> pi(n, 1.0 / n);
  Result<double> l2 = SecondEigenvalueMagnitude(p, pi);
  ASSERT_TRUE(l2.ok());
  EXPECT_NEAR(*l2, 0.5 - 0.5 / static_cast<double>(n - 1), 1e-8);
}

TEST(EigenTest, RejectsNonPositivePi) {
  Matrix p = Matrix::Identity(2);
  EXPECT_FALSE(SecondEigenvalueMagnitude(p, {1.0, 0.0}).ok());
  EXPECT_FALSE(SecondEigenvalueMagnitude(p, {1.0}).ok());
}

}  // namespace
}  // namespace digest
