// Integration tests: the full experiment harness driving Digest engines
// and baselines over the synthetic workloads — the same code path the
// benchmark binaries use to regenerate the paper's figures, at reduced
// scale.
#include "workload/experiment.h"

#include <gtest/gtest.h>

#include "workload/memory.h"
#include "workload/temperature.h"

namespace digest {
namespace {

TemperatureConfig TinyTemperature() {
  TemperatureConfig config;
  config.num_units = 400;
  config.num_nodes = 36;
  return config;
}

MemoryConfig TinyMemory() {
  MemoryConfig config;
  config.num_units = 150;
  config.num_nodes = 80;
  config.join_rate = 0.4;
  config.leave_rate = 0.4;
  return config;
}

ContinuousQuerySpec TempSpec(double delta, double epsilon) {
  return ContinuousQuerySpec::Create("SELECT AVG(temperature) FROM R",
                                     PrecisionSpec{delta, epsilon, 0.95})
      .value();
}

DigestEngineOptions Options(SchedulerKind s, EstimatorKind e,
                            SamplerKind sampler = SamplerKind::kExactCentral) {
  DigestEngineOptions options;
  options.scheduler = s;
  options.estimator = e;
  options.sampler = sampler;
  options.sampling_options.walk_length = 60;
  options.sampling_options.reset_length = 12;
  return options;
}

TEST(ExperimentTest, EngineRunProducesAlignedSeries) {
  auto w = TemperatureWorkload::Create(TinyTemperature()).value();
  Result<RunResult> run = RunEngineExperiment(
      *w, TempSpec(2.0, 2.0),
      Options(SchedulerKind::kPred, EstimatorKind::kRepeated), 100, 1);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->reported.size(), 100u);
  EXPECT_EQ(run->truth.size(), 100u);
  EXPECT_GT(run->stats.snapshots, 0u);
  EXPECT_GT(run->stats.total_samples, 0u);
  EXPECT_EQ(run->precision.ticks, 100u);
}

TEST(ExperimentTest, PredExecutesFewerSnapshotsThanAll) {
  // The Fig. 4-a effect at test scale.
  auto w_all = TemperatureWorkload::Create(TinyTemperature()).value();
  auto w_pred = TemperatureWorkload::Create(TinyTemperature()).value();
  const ContinuousQuerySpec spec = TempSpec(/*delta=*/8.0, 2.0);
  Result<RunResult> all = RunEngineExperiment(
      *w_all, spec, Options(SchedulerKind::kAll, EstimatorKind::kIndependent),
      120, 2);
  Result<RunResult> pred = RunEngineExperiment(
      *w_pred, spec,
      Options(SchedulerKind::kPred, EstimatorKind::kIndependent), 120, 2);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(all->stats.snapshots, 120u);
  EXPECT_LT(pred->stats.snapshots, all->stats.snapshots);
}

TEST(ExperimentTest, RepeatedUsesFewerFreshSamplesThanIndependent) {
  // The Fig. 4-b / 5-a effect at test scale.
  auto w_indep = TemperatureWorkload::Create(TinyTemperature()).value();
  auto w_rpt = TemperatureWorkload::Create(TinyTemperature()).value();
  const ContinuousQuerySpec spec = TempSpec(/*delta=*/0.0, 1.5);
  Result<RunResult> indep = RunEngineExperiment(
      *w_indep, spec,
      Options(SchedulerKind::kAll, EstimatorKind::kIndependent), 60, 3);
  Result<RunResult> rpt = RunEngineExperiment(
      *w_rpt, spec, Options(SchedulerKind::kAll, EstimatorKind::kRepeated),
      60, 3);
  ASSERT_TRUE(indep.ok());
  ASSERT_TRUE(rpt.ok());
  EXPECT_LT(rpt->stats.total_samples, indep->stats.total_samples);
  EXPECT_LT(rpt->stats.fresh_samples, indep->stats.fresh_samples);
  EXPECT_GT(rpt->correlation_estimate, 0.3);
}

TEST(ExperimentTest, EnginePrecisionHolds) {
  auto w = TemperatureWorkload::Create(TinyTemperature()).value();
  Result<RunResult> run = RunEngineExperiment(
      *w, TempSpec(2.0, 1.0),
      Options(SchedulerKind::kPred, EstimatorKind::kRepeated), 150, 4);
  ASSERT_TRUE(run.ok());
  // Within delta+epsilon on the vast majority of ticks (the prediction
  // can lag a tick or two occasionally).
  EXPECT_GT(run->precision.within_tolerance_fraction, 0.85);
}

TEST(ExperimentTest, PushAllIsExactButExpensive) {
  auto w_push = TemperatureWorkload::Create(TinyTemperature()).value();
  auto w_digest = TemperatureWorkload::Create(TinyTemperature()).value();
  const ContinuousQuerySpec spec = TempSpec(2.0, 2.0);
  Result<RunResult> push = RunPushAllExperiment(*w_push, spec, 60, 5);
  ASSERT_TRUE(push.ok());
  EXPECT_DOUBLE_EQ(push->precision.max_abs_error, 0.0);

  Result<RunResult> digest = RunEngineExperiment(
      *w_digest, spec,
      Options(SchedulerKind::kPred, EstimatorKind::kRepeated,
              SamplerKind::kTwoStageMcmc),
      60, 5);
  ASSERT_TRUE(digest.ok());
  // Fig. 5-b shape: Digest beats push-everything by a wide margin.
  EXPECT_LT(digest->meter.Total(), push->meter.Total() / 4);
}

TEST(ExperimentTest, FilterBaselineIsBetweenDigestAndPushAll) {
  auto w_filter = TemperatureWorkload::Create(TinyTemperature()).value();
  auto w_push = TemperatureWorkload::Create(TinyTemperature()).value();
  const ContinuousQuerySpec spec = TempSpec(2.0, 2.0);
  Result<RunResult> filter = RunFilterExperiment(*w_filter, spec, 60, 6);
  Result<RunResult> push = RunPushAllExperiment(*w_push, spec, 60, 6);
  ASSERT_TRUE(filter.ok()) << filter.status();
  ASSERT_TRUE(push.ok());
  EXPECT_LT(filter->meter.Total(), push->meter.Total());
  EXPECT_GT(filter->precision.within_tolerance_fraction, 0.9);
}

TEST(ExperimentTest, MemoryWorkloadUnderChurnEndToEnd) {
  auto w = MemoryWorkload::Create(TinyMemory()).value();
  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(memory) FROM R",
                                  PrecisionSpec{3.0, 3.0, 0.95})
          .value();
  Result<RunResult> run = RunEngineExperiment(
      *w, spec,
      Options(SchedulerKind::kPred, EstimatorKind::kRepeated,
              SamplerKind::kTwoStageMcmc),
      80, 7);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_GT(run->stats.snapshots, 0u);
  EXPECT_GT(run->precision.within_tolerance_fraction, 0.6);
}

TEST(ExperimentTest, SameSeedSameResult) {
  auto a = TemperatureWorkload::Create(TinyTemperature()).value();
  auto b = TemperatureWorkload::Create(TinyTemperature()).value();
  const ContinuousQuerySpec spec = TempSpec(2.0, 2.0);
  const DigestEngineOptions options =
      Options(SchedulerKind::kPred, EstimatorKind::kRepeated);
  Result<RunResult> r1 = RunEngineExperiment(*a, spec, options, 50, 11);
  Result<RunResult> r2 = RunEngineExperiment(*b, spec, options, 50, 11);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->stats.total_samples, r2->stats.total_samples);
  EXPECT_EQ(r1->reported, r2->reported);
}

}  // namespace
}  // namespace digest
