#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/result.h"

namespace digest {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NumericError("x").code(), StatusCode::kNumericError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  Status s = Status::ParseError("bad token");
  EXPECT_EQ(s.ToString(), "parse-error: bad token");
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), "parse-error: bad token");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNumericError),
               "numeric-error");
}

Status FailsIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnMacro(int x) {
  DIGEST_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::AlreadyExists("reached end");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnMacro(-1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(UsesReturnMacro(1).code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r = 7;
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  DIGEST_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> q = Quarter(8);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(5).status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ArrowOperatorAccessesMembers) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace digest
