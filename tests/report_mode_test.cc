// Tests of the between-occasion reporting modes (§II: hold vs
// interpolation/extrapolation of X̂[t]).
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "net/topology.h"

namespace digest {
namespace {

// Linear-drift database (same shape as engine_test's fixture).
class DriftingDatabase {
 public:
  DriftingDatabase(size_t tuples_per_node, double slope, uint64_t seed)
      : slope_(slope), rng_(seed) {
    graph = MakeComplete(4).value();
    db = std::make_unique<P2PDatabase>(Schema::Create({"v"}).value());
    for (NodeId node : graph.LiveNodes()) {
      EXPECT_TRUE(db->AddNode(node).ok());
      for (size_t i = 0; i < tuples_per_node; ++i) {
        const LocalTupleId id = db->StoreAt(node).value()->Insert(
            {rng_.NextGaussian(100.0, 2.0)});
        refs_.push_back(TupleRef{node, id});
      }
    }
  }

  void Advance() {
    for (const TupleRef& ref : refs_) {
      const double v = db->GetTuple(ref).value()[0];
      EXPECT_TRUE(db->StoreAt(ref.node)
                      .value()
                      ->UpdateAttribute(ref.local, 0, v + slope_)
                      .ok());
    }
  }

  double TrueAvg() const {
    AggregateQuery q = AggregateQuery::Parse("SELECT AVG(v) FROM R").value();
    return db->ExactAggregate(q).value();
  }

  Graph graph;
  std::unique_ptr<P2PDatabase> db;

 private:
  std::vector<TupleRef> refs_;
  double slope_;
  Rng rng_;
};

DigestEngineOptions Options(ReportMode mode) {
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kPred;
  options.estimator = EstimatorKind::kIndependent;
  options.sampler = SamplerKind::kExactCentral;
  options.report_mode = mode;
  return options;
}

ContinuousQuerySpec Spec() {
  return ContinuousQuerySpec::Create("SELECT AVG(v) FROM R",
                                     PrecisionSpec{3.0, 0.3, 0.95})
      .value();
}

TEST(ReportModeTest, HoldKeepsValueConstantBetweenOccasions) {
  DriftingDatabase data(100, 0.5, 1);
  auto engine = DigestEngine::Create(&data.graph, data.db.get(), Spec(), 0,
                                     Rng(2), nullptr,
                                     Options(ReportMode::kHold))
                    .value();
  double last_snapshot_value = 0.0;
  for (int t = 1; t <= 40; ++t) {
    data.Advance();
    EngineTickResult r = engine->Tick(t).value();
    if (r.snapshot_executed) {
      last_snapshot_value = r.reported_value;
    } else if (r.has_result) {
      EXPECT_DOUBLE_EQ(r.reported_value, last_snapshot_value);
    }
  }
}

TEST(ReportModeTest, ExtrapolateTracksLinearDriftBetweenOccasions) {
  // With hold, per-tick error between occasions grows to ~delta; with
  // extrapolation the fitted line tracks the drift, so the mean error
  // across all ticks should be clearly lower.
  auto run = [&](ReportMode mode) {
    DriftingDatabase data(100, 0.5, 3);
    auto engine = DigestEngine::Create(&data.graph, data.db.get(), Spec(),
                                       0, Rng(4), nullptr, Options(mode))
                      .value();
    double total_err = 0.0;
    int ticks = 0;
    for (int t = 1; t <= 60; ++t) {
      data.Advance();
      EngineTickResult r = engine->Tick(t).value();
      if (r.has_result) {
        total_err += std::fabs(r.reported_value - data.TrueAvg());
        ++ticks;
      }
    }
    return total_err / ticks;
  };
  const double hold_err = run(ReportMode::kHold);
  const double extrapolate_err = run(ReportMode::kExtrapolate);
  EXPECT_LT(extrapolate_err, 0.7 * hold_err);
}

TEST(ReportModeTest, ExtrapolationDoesNotChangeEfficiencyCounters) {
  auto run = [&](ReportMode mode, EngineStats& stats) {
    DriftingDatabase data(100, 0.5, 5);
    auto engine = DigestEngine::Create(&data.graph, data.db.get(), Spec(),
                                       0, Rng(6), nullptr, Options(mode))
                      .value();
    for (int t = 1; t <= 40; ++t) {
      data.Advance();
      ASSERT_TRUE(engine->Tick(t).ok());
    }
    stats = engine->stats();
  };
  EngineStats hold_stats, extrapolate_stats;
  run(ReportMode::kHold, hold_stats);
  run(ReportMode::kExtrapolate, extrapolate_stats);
  EXPECT_EQ(hold_stats.snapshots, extrapolate_stats.snapshots);
  EXPECT_EQ(hold_stats.total_samples, extrapolate_stats.total_samples);
  EXPECT_EQ(hold_stats.result_updates, extrapolate_stats.result_updates);
}

}  // namespace
}  // namespace digest
