// Unit battery for the precision audit ledger (src/audit/): coverage
// accounting and budget math, structural miss attribution precedence,
// the skip-path δ-compliance fold, EWMA/CUSUM drift detection with the
// supervisor breach flip, the State JSON codec, and the engine-level
// checkpoint-v2 integration (audit state rides the blob; presence
// mismatches are rejected both ways).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "audit/audit.h"
#include "common/json.h"
#include "core/engine.h"
#include "core/supervisor.h"
#include "db/p2p_database.h"
#include "net/message_meter.h"
#include "net/topology.h"
#include "numeric/rng.h"
#include "obs/tracer.h"

namespace digest {
namespace audit {
namespace {

SnapshotObservation MakeObs(int64_t tick, double estimate, double ci) {
  SnapshotObservation obs;
  obs.tick = tick;
  obs.estimate = estimate;
  obs.ci_halfwidth = ci;
  obs.total_samples = 10;
  obs.fresh_samples = 10;
  obs.message_cost = 100;
  return obs;
}

TEST(MissCauseTest, NamesAreStable) {
  EXPECT_STREQ(MissCauseName(MissCause::kNone), "none");
  EXPECT_STREQ(MissCauseName(MissCause::kVarianceUndershoot),
               "variance_undershoot");
  EXPECT_STREQ(MissCauseName(MissCause::kPredResidual), "pred_residual");
  EXPECT_STREQ(MissCauseName(MissCause::kPartialSnapshot),
               "partial_snapshot");
  EXPECT_STREQ(MissCauseName(MissCause::kRetainedPoolFallback),
               "retained_pool");
  EXPECT_STREQ(MissCauseName(MissCause::kHedgeTimeout), "hedge_timeout");
  EXPECT_STREQ(MissCauseName(MissCause::kPoorMixing), "poor_mixing");
}

TEST(AuditOptionsTest, ValidateRejectsBadTuning) {
  EXPECT_TRUE(AuditOptions().Validate().ok());
  AuditOptions bad_alpha;
  bad_alpha.ewma_alpha = 0.0;
  EXPECT_EQ(bad_alpha.Validate().code(), StatusCode::kInvalidArgument);
  bad_alpha.ewma_alpha = 1.5;
  EXPECT_EQ(bad_alpha.Validate().code(), StatusCode::kInvalidArgument);
  AuditOptions bad_slack;
  bad_slack.cusum_slack = -0.1;
  EXPECT_EQ(bad_slack.Validate().code(), StatusCode::kInvalidArgument);
  AuditOptions bad_threshold;
  bad_threshold.cusum_threshold = 0.0;
  EXPECT_EQ(bad_threshold.Validate().code(), StatusCode::kInvalidArgument);
  AuditOptions bad_patience;
  bad_patience.breach_patience = 0;
  EXPECT_EQ(bad_patience.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(PrecisionAuditorTest, CoverageAndBudgetMath) {
  PrecisionAuditor auditor;
  auditor.AttachContract(/*delta=*/0.0, /*epsilon=*/2.0,
                         /*confidence=*/0.9);
  auditor.BeginRun("budget");
  // 10 occasions: 8 hits (estimate == truth), 2 misses (error beyond
  // the reported CI).
  for (int64_t t = 1; t <= 10; ++t) {
    const bool miss = t <= 2;
    auditor.RecordSnapshot(MakeObs(t, miss ? 10.0 : 50.0, 1.0));
    auditor.RecordTruth(t, 50.0);
  }
  const PrecisionAuditor::Summary s = auditor.Summarize();
  EXPECT_EQ(s.occasions, 10u);
  EXPECT_EQ(s.hits, 8u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_DOUBLE_EQ(s.coverage, 0.8);
  // Floor: p − 2·sqrt(p(1 − p)/n) with p = 0.9, n = 10.
  const double floor = 0.9 - 2.0 * std::sqrt(0.9 * 0.1 / 10.0);
  EXPECT_DOUBLE_EQ(s.coverage_floor, floor);
  EXPECT_TRUE(s.coverage_ok);  // 0.8 >= 0.710...
  // Burn: miss_rate / (1 − p) = 0.2 / 0.1 = 2 budgets burned.
  EXPECT_DOUBLE_EQ(s.budget_burn, 2.0);
  EXPECT_DOUBLE_EQ(s.budget_remaining, 0.0);
  EXPECT_EQ(s.ledger_records, 10u);
}

TEST(PrecisionAuditorTest, EmptyRunPassesVacuously) {
  PrecisionAuditor auditor;
  auditor.AttachContract(1.0, 2.0, 0.9);
  auditor.BeginRun("empty");
  const PrecisionAuditor::Summary s = auditor.Summarize();
  EXPECT_EQ(s.occasions, 0u);
  EXPECT_DOUBLE_EQ(s.coverage, 1.0);
  EXPECT_DOUBLE_EQ(s.coverage_floor, 0.0);
  EXPECT_TRUE(s.coverage_ok);
  EXPECT_DOUBLE_EQ(s.delta_compliance, 1.0);
  EXPECT_DOUBLE_EQ(s.budget_burn, 0.0);
}

TEST(PrecisionAuditorTest, AttributionPrecedence) {
  PrecisionAuditor auditor;
  auditor.AttachContract(0.0, 2.0, 0.9);
  auditor.BeginRun("attribution");
  // Every occasion misses (estimate 0 vs truth 50, ci 1); the flags
  // decide the cause. Worst state wins: timeout > degraded (retained
  // pool) > partial > poor mixing > clean variance undershoot.
  SnapshotObservation degraded_partial = MakeObs(1, 0.0, 1.0);
  degraded_partial.degraded = true;
  degraded_partial.partial = true;
  auditor.RecordSnapshot(degraded_partial);
  auditor.RecordTruth(1, 50.0);

  SnapshotObservation partial = MakeObs(2, 0.0, 1.0);
  partial.partial = true;
  // A stationary-gap breach rides along but loses to the structural
  // partial-snapshot flag.
  partial.mixing_breach = true;
  auditor.RecordSnapshot(partial);
  auditor.RecordTruth(2, 50.0);

  auditor.RecordSnapshot(MakeObs(3, 0.0, 1.0));  // Clean miss.
  auditor.RecordTruth(3, 50.0);

  auditor.RecordTimeout(/*tick=*/4, /*held_value=*/0.0,
                        /*ci_halfwidth=*/1.0, /*message_cost=*/40,
                        /*health=*/1);
  auditor.RecordTruth(4, 50.0);

  // A structurally clean miss whose walk batches breached the
  // stationary-gap tolerance: re-attributed to the sampler.
  SnapshotObservation poorly_mixed = MakeObs(5, 0.0, 1.0);
  poorly_mixed.mixing_breach = true;
  auditor.RecordSnapshot(poorly_mixed);
  auditor.RecordTruth(5, 50.0);

  const PrecisionAuditor::Summary s = auditor.Summarize();
  EXPECT_EQ(s.misses, 5u);
  EXPECT_EQ(s.cause_counts[static_cast<size_t>(
                MissCause::kRetainedPoolFallback)], 1u);
  EXPECT_EQ(s.cause_counts[static_cast<size_t>(
                MissCause::kPartialSnapshot)], 1u);
  EXPECT_EQ(s.cause_counts[static_cast<size_t>(
                MissCause::kVarianceUndershoot)], 1u);
  EXPECT_EQ(s.cause_counts[static_cast<size_t>(MissCause::kHedgeTimeout)],
            1u);
  EXPECT_EQ(s.cause_counts[static_cast<size_t>(MissCause::kPoorMixing)],
            1u);
  // The ledger kept the structural flags.
  ASSERT_EQ(auditor.records().size(), 5u);
  EXPECT_TRUE(auditor.records()[0].degraded);
  EXPECT_TRUE(auditor.records()[1].partial);
  EXPECT_TRUE(auditor.records()[1].mixing_breach);
  EXPECT_TRUE(auditor.records()[3].timeout);
  EXPECT_TRUE(auditor.records()[4].mixing_breach);
  EXPECT_FALSE(auditor.records()[4].partial);
}

TEST(PrecisionAuditorTest, SkipPathDeltaCompliance) {
  PrecisionAuditor auditor;
  auditor.AttachContract(/*delta=*/1.0, /*epsilon=*/2.0,
                         /*confidence=*/0.9);
  auditor.BeginRun("skips");
  // Widened skip contract: |reported − truth| <= max(ε, ci) + δ = 3.
  auditor.RecordSkip(/*tick=*/1, /*reported=*/10.0, /*ci=*/0.5);
  auditor.RecordTruth(1, 12.9);  // Within: compliant.
  auditor.RecordSkip(2, 10.0, 0.5);
  auditor.RecordTruth(2, 13.1);  // Beyond: a δ miss.
  const PrecisionAuditor::Summary s = auditor.Summarize();
  EXPECT_EQ(s.occasions, 0u);  // Skips are not snapshot occasions.
  EXPECT_EQ(s.delta_ticks, 2u);
  EXPECT_EQ(s.delta_misses, 1u);
  EXPECT_DOUBLE_EQ(s.delta_compliance, 0.5);
  EXPECT_EQ(s.cause_counts[static_cast<size_t>(MissCause::kPredResidual)],
            1u);
}

TEST(PrecisionAuditorTest, UnresolvedAndUnmatchedObservations) {
  PrecisionAuditor auditor;
  auditor.AttachContract(0.0, 2.0, 0.9);
  auditor.BeginRun("pending");
  auditor.RecordSnapshot(MakeObs(1, 50.0, 1.0));
  // Never resolved: the next observation flushes it to the ledger as a
  // truth-less record that counts no coverage occasion.
  auditor.RecordSnapshot(MakeObs(2, 50.0, 1.0));
  auditor.RecordTruth(2, 50.0);
  auditor.RecordTruth(7, 50.0);  // No pending tick 7: counted, ignored.
  auditor.FinalizeRun();
  ASSERT_EQ(auditor.records().size(), 2u);
  EXPECT_FALSE(auditor.records()[0].has_truth);
  EXPECT_TRUE(auditor.records()[1].has_truth);
  const PrecisionAuditor::Summary s = auditor.Summarize();
  EXPECT_EQ(s.occasions, 1u);
  EXPECT_EQ(s.ledger_records, 2u);
}

TEST(PrecisionAuditorTest, SustainedErrorDriftFlipsSupervisor) {
  AuditOptions options;
  options.cusum_threshold = 2.0;
  options.breach_patience = 2;
  PrecisionAuditor auditor(options);
  obs::MemoryTracer tracer;
  auditor.SetTracer(&tracer);
  auditor.AttachContract(0.0, /*epsilon=*/1.0, 0.9);
  auditor.BeginRun("drift");
  // Standardized error +2ε per occasion: CUSUM pos grows by
  // (2 − slack) = 1.5 per resolution → in breach from the 2nd
  // resolution (3.0 > 2.0), flip after patience = 2 in-breach
  // resolutions.
  int flips = 0;
  for (int64_t t = 1; t <= 3; ++t) {
    tracer.set_now(t);
    auditor.RecordSnapshot(MakeObs(t, 52.0, 1.0));
    auditor.RecordTruth(t, 50.0);
    while (auditor.TakePendingBreachFlip()) ++flips;
  }
  EXPECT_EQ(flips, 1);
  EXPECT_FALSE(auditor.TakePendingBreachFlip());
  const PrecisionAuditor::Summary s = auditor.Summarize();
  EXPECT_EQ(s.supervisor_flips, 1u);
  EXPECT_GE(s.error_breaches, 2u);
  // The breach trail is visible in the trace.
  int drift_events = 0;
  int flip_events = 0;
  for (const obs::TraceEvent& event : tracer.events()) {
    if (const auto* drift =
            std::get_if<obs::AuditDriftEvent>(&event.payload)) {
      ++drift_events;
      EXPECT_EQ(drift->detector, "signed_error");
      if (drift->flip) ++flip_events;
    }
  }
  EXPECT_EQ(drift_events, 2);
  EXPECT_EQ(flip_events, 1);
  // The flip reset the detector: its one-sided sums re-arm from zero.
  const PrecisionAuditor::State state = auditor.SaveState();
  EXPECT_DOUBLE_EQ(state.error_detector.cusum_pos, 0.0);
  EXPECT_EQ(state.error_detector.streak, 0u);
}

TEST(SupervisorAuditBreachTest, OnlyDegradesFromHealthy) {
  SessionSupervisor supervisor;
  EXPECT_EQ(supervisor.RecordAuditBreach(), SessionHealth::kDegraded);
  EXPECT_EQ(supervisor.transitions(), 1u);
  // Already degraded: the breach carries no extra news.
  EXPECT_EQ(supervisor.RecordAuditBreach(), SessionHealth::kDegraded);
  EXPECT_EQ(supervisor.transitions(), 1u);
}

TEST(PrecisionAuditorTest, StateJsonRoundTrips) {
  PrecisionAuditor auditor;
  auditor.AttachContract(1.0, 2.0, 0.9);
  auditor.BeginRun("round-trip");
  auditor.RecordSnapshot(MakeObs(1, 50.0, 1.0));
  auditor.RecordTruth(1, 50.0);
  SnapshotObservation degraded = MakeObs(2, 10.0, 1.0);
  degraded.degraded = true;
  auditor.RecordSnapshot(degraded);
  auditor.RecordTruth(2, 50.0);
  auditor.RecordSkip(3, 50.0, 0.5);
  auditor.RecordTruth(3, 90.0);
  SnapshotObservation breached = MakeObs(4, 10.0, 1.0);
  breached.mixing_breach = true;  // The codec must carry the flag.
  auditor.RecordSnapshot(breached);
  auditor.RecordTruth(4, 50.0);
  auditor.RecordSnapshot(MakeObs(5, 50.0, 1.0));  // Left pending.

  const PrecisionAuditor::State state = auditor.SaveState();
  EXPECT_TRUE(state.pending_snapshot);
  std::string encoded;
  PrecisionAuditor::AppendStateJson(state, &encoded);
  const Result<json::Value> parsed = json::Parse(encoded);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Result<PrecisionAuditor::State> decoded =
      PrecisionAuditor::ParseStateJson(parsed.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  PrecisionAuditor restored;
  restored.AttachContract(1.0, 2.0, 0.9);
  restored.RestoreState(decoded.value());
  EXPECT_EQ(restored.SummaryJson(), auditor.SummaryJson());
  // The breached record survived the round trip with flag and cause.
  ASSERT_FALSE(restored.records().empty());
  const CoverageRecord& breached_restored = restored.records().back();
  EXPECT_EQ(breached_restored.tick, 4);
  EXPECT_TRUE(breached_restored.mixing_breach);
  EXPECT_EQ(breached_restored.cause, MissCause::kPoorMixing);
  // The pending observation survived: resolving it after restore works.
  restored.RecordTruth(5, 50.0);
  auditor.RecordTruth(5, 50.0);
  EXPECT_EQ(restored.SummaryJson(), auditor.SummaryJson());
  // Re-encoding the restored state is byte-identical.
  std::string re_encoded;
  PrecisionAuditor::AppendStateJson(restored.SaveState(), &re_encoded);
  std::string original_after;
  PrecisionAuditor::AppendStateJson(auditor.SaveState(), &original_after);
  EXPECT_EQ(re_encoded, original_after);
}

TEST(PrecisionAuditorTest, ParseStateJsonRejectsMalformedInput) {
  const Result<json::Value> not_object = json::Parse("[1,2]");
  ASSERT_TRUE(not_object.ok());
  EXPECT_EQ(PrecisionAuditor::ParseStateJson(not_object.value())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // A record with an out-of-range cause index must not install.
  PrecisionAuditor::State state;
  CoverageRecord bad;
  bad.cause = static_cast<MissCause>(99);
  state.records.push_back(bad);
  std::string encoded;
  PrecisionAuditor::AppendStateJson(state, &encoded);
  const Result<json::Value> parsed = json::Parse(encoded);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(
      PrecisionAuditor::ParseStateJson(parsed.value()).status().code(),
      StatusCode::kInvalidArgument);
}

// --- Engine-level checkpoint-v2 integration ---

/// Minimal static-membership session fixture: a mesh whose per-node
/// "load" values drift by AR(1), driven directly (no Workload harness).
struct SessionFixture {
  static constexpr uint64_t kSeed = 311;

  SessionFixture()
      : graph(MakeMesh(6, 6).value()),
        rng(kSeed),
        db(Schema::Create({"load"}).value()) {
    for (NodeId node : graph.LiveNodes()) {
      (void)db.AddNode(node);
      LocalStore* store = db.StoreAt(node).value();
      Entry entry;
      entry.node = node;
      entry.value = rng.NextGaussian(50.0, 10.0);
      entry.id = store->Insert({entry.value});
      entries.push_back(entry);
    }
  }

  void Advance() {
    ++now;
    for (Entry& entry : entries) {
      entry.value =
          50.0 + 0.8 * (entry.value - 50.0) + rng.NextGaussian(0.0, 2.0);
      ASSERT_OK_OR_DIE(db.StoreAt(entry.node).value()->UpdateAttribute(
          entry.id, 0, entry.value));
    }
  }

  static void ASSERT_OK_OR_DIE(const Status& status) {
    ASSERT_TRUE(status.ok()) << status.ToString();
  }

  struct Entry {
    NodeId node = kInvalidNode;
    LocalTupleId id = 0;
    double value = 0.0;
  };

  Graph graph;
  Rng rng;
  P2PDatabase db;
  std::vector<Entry> entries;
  int64_t now = 0;
};

DigestEngineOptions EngineOptions(PrecisionAuditor* auditor) {
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kAll;
  options.estimator = EstimatorKind::kRepeated;
  options.sampling_options.walk_length = 12;
  options.sampling_options.reset_length = 4;
  options.auditor = auditor;
  return options;
}

std::unique_ptr<DigestEngine> MakeEngine(SessionFixture* fixture,
                                         const ContinuousQuerySpec& spec,
                                         MessageMeter* meter,
                                         const DigestEngineOptions& options) {
  Rng rng(7);
  const NodeId querying = fixture->graph.RandomLiveNode(rng).value();
  return DigestEngine::Create(&fixture->graph, &fixture->db, spec, querying,
                              rng.Fork(), meter, options)
      .value();
}

TEST(AuditCheckpointTest, LedgerRidesTheBlobBitIdentically) {
  const ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(load) FROM R",
                                  PrecisionSpec{1.0, 4.0, 0.9})
          .value();
  constexpr size_t kTicks = 16;
  constexpr size_t kKillAfter = 8;

  // Uninterrupted audited session.
  std::string uninterrupted_summary;
  {
    SessionFixture fixture;
    PrecisionAuditor auditor;
    MessageMeter meter;
    auto engine =
        MakeEngine(&fixture, spec, &meter, EngineOptions(&auditor));
    auditor.BeginRun("recovery");
    for (size_t t = 0; t < kTicks; ++t) {
      fixture.Advance();
      const double truth = fixture.db.ExactAggregate(spec.query).value();
      ASSERT_TRUE(engine->Tick(fixture.now).ok());
      auditor.RecordTruth(fixture.now, truth);
    }
    auditor.FinalizeRun();
    uninterrupted_summary = auditor.SummaryJson();
  }

  // Same session killed mid-run: the rebuilt process starts with a
  // fresh auditor whose ledger is restored from the blob.
  std::string recovered_summary;
  {
    SessionFixture fixture;
    auto auditor = std::make_unique<PrecisionAuditor>();
    MessageMeter meter;
    auto engine =
        MakeEngine(&fixture, spec, &meter, EngineOptions(auditor.get()));
    auditor->BeginRun("recovery");
    for (size_t t = 0; t < kTicks; ++t) {
      fixture.Advance();
      const double truth = fixture.db.ExactAggregate(spec.query).value();
      ASSERT_TRUE(engine->Tick(fixture.now).ok());
      auditor->RecordTruth(fixture.now, truth);
      if (t == kKillAfter) {
        const std::string blob = engine->Checkpoint().value();
        engine.reset();
        meter.Reset();
        auditor = std::make_unique<PrecisionAuditor>();  // Fresh process.
        engine = MakeEngine(&fixture, spec, &meter,
                            EngineOptions(auditor.get()));
        ASSERT_TRUE(engine->Restore(blob).ok());
      }
    }
    auditor->FinalizeRun();
    recovered_summary = auditor->SummaryJson();
  }
  EXPECT_EQ(recovered_summary, uninterrupted_summary);
}

TEST(AuditCheckpointTest, PresenceMismatchIsRejectedBothWays) {
  const ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(load) FROM R",
                                  PrecisionSpec{1.0, 4.0, 0.9})
          .value();

  // Audited blob into an unaudited engine.
  SessionFixture fixture_a;
  PrecisionAuditor auditor;
  MessageMeter meter_a;
  auto audited =
      MakeEngine(&fixture_a, spec, &meter_a, EngineOptions(&auditor));
  fixture_a.Advance();
  ASSERT_TRUE(audited->Tick(fixture_a.now).ok());
  const std::string audited_blob = audited->Checkpoint().value();

  SessionFixture fixture_b;
  MessageMeter meter_b;
  auto unaudited =
      MakeEngine(&fixture_b, spec, &meter_b, EngineOptions(nullptr));
  EXPECT_EQ(unaudited->Restore(audited_blob).code(),
            StatusCode::kInvalidArgument);

  // Unaudited blob into an audited engine.
  fixture_b.Advance();
  ASSERT_TRUE(unaudited->Tick(fixture_b.now).ok());
  const std::string unaudited_blob = unaudited->Checkpoint().value();
  SessionFixture fixture_c;
  PrecisionAuditor auditor_c;
  MessageMeter meter_c;
  auto audited_c =
      MakeEngine(&fixture_c, spec, &meter_c, EngineOptions(&auditor_c));
  EXPECT_EQ(audited_c->Restore(unaudited_blob).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace audit
}  // namespace digest
