#include "net/churn.h"

#include <gtest/gtest.h>

#include "net/topology.h"

namespace digest {
namespace {

TEST(ChurnTest, ZeroRatesDoNothing) {
  Rng rng(1);
  Result<Graph> g = MakeRing(10);
  ASSERT_TRUE(g.ok());
  ChurnProcess churn(ChurnConfig{});
  for (int i = 0; i < 20; ++i) {
    Result<ChurnEvents> events = churn.Tick(*g, rng);
    ASSERT_TRUE(events.ok());
    EXPECT_TRUE(events->joined.empty());
    EXPECT_TRUE(events->left.empty());
  }
  EXPECT_EQ(g->NodeCount(), 10u);
}

TEST(ChurnTest, JoinRateGrowsNetwork) {
  Rng rng(2);
  Result<Graph> g = MakeRing(10);
  ASSERT_TRUE(g.ok());
  ChurnConfig config;
  config.join_rate = 2.0;
  ChurnProcess churn(config);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(churn.Tick(*g, rng).ok());
  }
  EXPECT_EQ(g->NodeCount(), 10u + 100u);
  EXPECT_TRUE(g->IsConnected());
}

TEST(ChurnTest, FractionalRatesAverageOut) {
  Rng rng(3);
  Result<Graph> g = MakeRing(10);
  ASSERT_TRUE(g.ok());
  ChurnConfig config;
  config.join_rate = 0.25;
  ChurnProcess churn(config);
  size_t joins = 0;
  for (int i = 0; i < 4000; ++i) {
    Result<ChurnEvents> events = churn.Tick(*g, rng);
    ASSERT_TRUE(events.ok());
    joins += events->joined.size();
  }
  EXPECT_NEAR(static_cast<double>(joins), 1000.0, 100.0);
}

TEST(ChurnTest, BalancedChurnKeepsConnectivityAndRoughSize) {
  Rng rng(4);
  Result<Graph> g = MakeRing(50);
  ASSERT_TRUE(g.ok());
  ChurnConfig config;
  config.join_rate = 1.0;
  config.leave_rate = 1.0;
  config.attach_edges = 2;
  ChurnProcess churn(config);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(churn.Tick(*g, rng).ok());
    ASSERT_TRUE(g->IsConnected()) << "disconnected at tick " << i;
  }
  EXPECT_GT(g->NodeCount(), 20u);
  EXPECT_LT(g->NodeCount(), 120u);
}

TEST(ChurnTest, MinNodesFloorHolds) {
  Rng rng(5);
  Result<Graph> g = MakeRing(6);
  ASSERT_TRUE(g.ok());
  ChurnConfig config;
  config.leave_rate = 3.0;
  config.min_nodes = 4;
  ChurnProcess churn(config);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(churn.Tick(*g, rng).ok());
  }
  EXPECT_EQ(g->NodeCount(), 4u);
}

TEST(ChurnTest, ProtectedNodeNeverLeaves) {
  Rng rng(6);
  Result<Graph> g = MakeRing(30);
  ASSERT_TRUE(g.ok());
  ChurnConfig config;
  config.join_rate = 1.0;
  config.leave_rate = 1.5;
  config.min_nodes = 3;
  config.protected_node = 7;
  ChurnProcess churn(config);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(churn.Tick(*g, rng).ok());
    ASSERT_TRUE(g->HasNode(7)) << "protected node left at tick " << i;
  }
}

TEST(ChurnTest, PreferentialAttachmentFavorsHubs) {
  Rng rng(7);
  // Star + ring: node 0 is a hub.
  Result<Graph> g = MakeRing(20);
  ASSERT_TRUE(g.ok());
  for (NodeId i = 2; i < 19; ++i) {
    if (!g->HasEdge(0, i)) {
      ASSERT_TRUE(g->AddEdge(0, i).ok());
    }
  }
  const size_t hub_degree_before = g->Degree(0);
  ChurnConfig config;
  config.join_rate = 5.0;
  config.attach_edges = 1;
  config.preferential_attachment = true;
  ChurnProcess churn(config);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(churn.Tick(*g, rng).ok());
  }
  // The hub should capture far more than a 1/n share of ~300 new edges.
  EXPECT_GT(g->Degree(0), hub_degree_before + 30);
}

}  // namespace
}  // namespace digest
