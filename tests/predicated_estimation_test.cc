// End-to-end tests of WHERE-clause aggregate estimation (the select-
// predicate extension of §VIII): oracle semantics plus sample-based
// estimation for all three ops and both estimators.
#include <gtest/gtest.h>

#include <cmath>

#include "core/snapshot_estimator.h"
#include "net/topology.h"

namespace digest {
namespace {

// A two-attribute database: `kind` partitions tuples into classes 0/1/2,
// `v` carries a class-dependent value distribution.
struct Fixture {
  Graph graph;
  std::unique_ptr<P2PDatabase> db;
  std::vector<TupleRef> refs;

  explicit Fixture(size_t tuples_per_node = 120, uint64_t seed = 5) {
    graph = MakeComplete(6).value();
    db = std::make_unique<P2PDatabase>(
        Schema::Create({"kind", "v"}).value());
    Rng rng(seed);
    for (NodeId node : graph.LiveNodes()) {
      EXPECT_TRUE(db->AddNode(node).ok());
      for (size_t i = 0; i < tuples_per_node; ++i) {
        const double kind = static_cast<double>(rng.NextIndex(3));
        const double v = rng.NextGaussian(10.0 + 20.0 * kind, 3.0);
        const LocalTupleId id =
            db->StoreAt(node).value()->Insert({kind, v});
        refs.push_back(TupleRef{node, id});
      }
    }
  }

  // Mild value drift keeping `kind` fixed.
  void Perturb(Rng& rng) {
    for (const TupleRef& ref : refs) {
      Tuple t = db->GetTuple(ref).value();
      t[1] += rng.NextGaussian(0.0, 0.3);
      EXPECT_TRUE(db->StoreAt(ref.node).value()->Update(ref.local, t).ok());
    }
  }
};

ContinuousQuerySpec MakeSpec(const std::string& query, double epsilon) {
  return ContinuousQuerySpec::Create(query,
                                     PrecisionSpec{0.0, epsilon, 0.95})
      .value();
}

TEST(PredicatedOracleTest, CountAvgSumRespectWhere) {
  Fixture f;
  AggregateQuery count_q =
      AggregateQuery::Parse("SELECT COUNT(*) FROM R WHERE kind = 1")
          .value();
  AggregateQuery avg_q =
      AggregateQuery::Parse("SELECT AVG(v) FROM R WHERE kind = 1").value();
  AggregateQuery sum_q =
      AggregateQuery::Parse("SELECT SUM(v) FROM R WHERE kind = 1").value();
  const double count = f.db->ExactAggregate(count_q).value();
  const double avg = f.db->ExactAggregate(avg_q).value();
  const double sum = f.db->ExactAggregate(sum_q).value();
  EXPECT_GT(count, 0.0);
  EXPECT_LT(count, static_cast<double>(f.db->TotalTuples()));
  EXPECT_NEAR(avg, 30.0, 1.0);  // kind=1 population mean.
  EXPECT_NEAR(sum, avg * count, 1e-6);
}

TEST(PredicatedOracleTest, EmptyQualifyingSet) {
  Fixture f;
  AggregateQuery avg_q =
      AggregateQuery::Parse("SELECT AVG(v) FROM R WHERE kind > 99").value();
  EXPECT_EQ(f.db->ExactAggregate(avg_q).status().code(),
            StatusCode::kFailedPrecondition);
  AggregateQuery cnt_q =
      AggregateQuery::Parse("SELECT COUNT(*) FROM R WHERE kind > 99")
          .value();
  EXPECT_DOUBLE_EQ(f.db->ExactAggregate(cnt_q).value(), 0.0);
}

TEST(PredicatedIndependentTest, AvgOverQualifyingSubpopulation) {
  Fixture f;
  ContinuousQuerySpec spec =
      MakeSpec("SELECT AVG(v) FROM R WHERE kind = 2", 1.0);
  ExactTupleSampler sampler(f.db.get(), Rng(6), nullptr);
  ExactSampleSource source(&sampler);
  IndependentEstimator est(spec, f.db.get(), &source, nullptr, nullptr,
                           Rng(7));
  Result<SnapshotEstimate> e = est.Evaluate(0);
  ASSERT_TRUE(e.ok()) << e.status();
  const double truth = f.db->ExactAggregate(spec.query).value();
  EXPECT_NEAR(e->value, truth, 2.0);
  // ~1/3 of draws qualify, so drawn far exceeds contributing.
  EXPECT_GT(e->total_samples, e->contributing_samples);
  EXPECT_GE(e->contributing_samples, 30u);  // Pilot in qualifying units.
}

TEST(PredicatedIndependentTest, SumAndCountScaleByRelationSize) {
  Fixture f;
  ExactTupleSampler sampler(f.db.get(), Rng(8), nullptr);
  ExactSampleSource source(&sampler);
  ExactSizeOracle oracle(f.db.get());

  ContinuousQuerySpec cnt_spec =
      MakeSpec("SELECT COUNT(*) FROM R WHERE kind = 0", 30.0);
  IndependentEstimator cnt(cnt_spec, f.db.get(), &source, &oracle, nullptr,
                           Rng(9));
  Result<SnapshotEstimate> ce = cnt.Evaluate(0);
  ASSERT_TRUE(ce.ok()) << ce.status();
  const double cnt_truth = f.db->ExactAggregate(cnt_spec.query).value();
  EXPECT_NEAR(ce->value, cnt_truth, 60.0);

  ContinuousQuerySpec sum_spec =
      MakeSpec("SELECT SUM(v) FROM R WHERE kind = 0", 400.0);
  IndependentEstimator sum(sum_spec, f.db.get(), &source, &oracle, nullptr,
                           Rng(10));
  Result<SnapshotEstimate> se = sum.Evaluate(0);
  ASSERT_TRUE(se.ok()) << se.status();
  const double sum_truth = f.db->ExactAggregate(sum_spec.query).value();
  EXPECT_NEAR(se->value, sum_truth, 800.0);
}

TEST(PredicatedIndependentTest, ZeroSelectivityFailsCleanly) {
  Fixture f;
  ContinuousQuerySpec spec =
      MakeSpec("SELECT AVG(v) FROM R WHERE kind > 99", 1.0);
  ExactTupleSampler sampler(f.db.get(), Rng(11), nullptr);
  ExactSampleSource source(&sampler);
  IndependentEstimator est(spec, f.db.get(), &source, nullptr, nullptr,
                           Rng(12));
  EXPECT_EQ(est.Evaluate(0).status().code(), StatusCode::kUnavailable);
}

TEST(PredicatedRepeatedTest, TracksQualifyingAvgAcrossOccasions) {
  Fixture f;
  ContinuousQuerySpec spec =
      MakeSpec("SELECT AVG(v) FROM R WHERE kind = 1", 1.0);
  ExactTupleSampler sampler(f.db.get(), Rng(13), nullptr);
  ExactSampleSource source(&sampler);
  RepeatedSamplingEstimator est(spec, f.db.get(), &source, nullptr, nullptr,
                                Rng(14));
  Rng drift(15);
  int within = 0;
  const int occasions = 10;
  for (int k = 0; k < occasions; ++k) {
    Result<SnapshotEstimate> e = est.Evaluate(0);
    ASSERT_TRUE(e.ok()) << e.status();
    const double truth = f.db->ExactAggregate(spec.query).value();
    if (std::fabs(e->value - truth) <= 1.0) ++within;
    if (k > 0) {
      EXPECT_GT(e->retained_samples, 0u) << "occasion " << k;
    }
    f.Perturb(drift);
  }
  EXPECT_GE(within, occasions * 7 / 10);
}

TEST(PredicatedRepeatedTest, RetainedSamplesLeavingPredicateAreReplaced) {
  Fixture f;
  ContinuousQuerySpec spec =
      MakeSpec("SELECT AVG(v) FROM R WHERE v < 25", 1.5);
  ExactTupleSampler sampler(f.db.get(), Rng(16), nullptr);
  ExactSampleSource source(&sampler);
  RepeatedSamplingEstimator est(spec, f.db.get(), &source, nullptr, nullptr,
                                Rng(17));
  ASSERT_TRUE(est.Evaluate(0).ok());
  // Push many kind-0 tuples (v ~ 10) above the v < 25 boundary: their
  // retained samples stop qualifying and must be replaced by fresh ones.
  Rng jump(18);
  for (const TupleRef& ref : f.refs) {
    Tuple t = f.db->GetTuple(ref).value();
    if (t[0] == 0.0 && jump.NextBernoulli(0.5)) {
      t[1] = 40.0;
      ASSERT_TRUE(f.db->StoreAt(ref.node).value()->Update(ref.local, t).ok());
    }
  }
  Result<SnapshotEstimate> e2 = est.Evaluate(0);
  ASSERT_TRUE(e2.ok()) << e2.status();
  const double truth = f.db->ExactAggregate(spec.query).value();
  EXPECT_NEAR(e2->value, truth, 2.5);
  EXPECT_GT(e2->fresh_samples, 0u);
}

}  // namespace
}  // namespace digest
