#include "net/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace digest {
namespace {

TEST(GraphTest, AddNodesAssignsSequentialIds) {
  Graph g;
  EXPECT_EQ(g.AddNode(), 0u);
  EXPECT_EQ(g.AddNode(), 1u);
  EXPECT_EQ(g.NodeCount(), 2u);
  EXPECT_TRUE(g.HasNode(0));
  EXPECT_TRUE(g.HasNode(1));
  EXPECT_FALSE(g.HasNode(2));
}

TEST(GraphTest, EdgesAreUndirected) {
  Graph g;
  g.AddNode();
  g.AddNode();
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_EQ(g.EdgeCount(), 1u);
}

TEST(GraphTest, RejectsSelfLoopsAndDuplicates) {
  Graph g;
  g.AddNode();
  g.AddNode();
  EXPECT_EQ(g.AddEdge(0, 0).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_EQ(g.AddEdge(0, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.AddEdge(1, 0).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.AddEdge(0, 5).code(), StatusCode::kNotFound);
}

TEST(GraphTest, RemoveEdge) {
  Graph g;
  g.AddNode();
  g.AddNode();
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.RemoveEdge(0, 1).ok());
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.EdgeCount(), 0u);
  EXPECT_EQ(g.RemoveEdge(0, 1).code(), StatusCode::kNotFound);
}

TEST(GraphTest, RemoveNodeDetachesEdgesAndKeepsIdsStable) {
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddNode();
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  ASSERT_TRUE(g.RemoveNode(1).ok());
  EXPECT_FALSE(g.HasNode(1));
  EXPECT_EQ(g.NodeCount(), 3u);
  EXPECT_EQ(g.EdgeCount(), 1u);
  EXPECT_EQ(g.Degree(0), 0u);
  EXPECT_EQ(g.Degree(2), 1u);
  EXPECT_EQ(g.RemoveNode(1).code(), StatusCode::kNotFound);
  // New nodes never reuse the dead id.
  EXPECT_EQ(g.AddNode(), 4u);
}

TEST(GraphTest, LiveNodesAscending) {
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddNode();
  ASSERT_TRUE(g.RemoveNode(2).ok());
  std::vector<NodeId> live = g.LiveNodes();
  EXPECT_EQ(live, (std::vector<NodeId>{0, 1, 3, 4}));
}

TEST(GraphTest, NeighborsReflectsMutations) {
  Graph g;
  for (int i = 0; i < 3; ++i) g.AddNode();
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  std::vector<NodeId> nbs = g.Neighbors(0);
  std::sort(nbs.begin(), nbs.end());
  EXPECT_EQ(nbs, (std::vector<NodeId>{1, 2}));
  EXPECT_TRUE(g.Neighbors(9).empty());
}

TEST(GraphTest, RandomLiveNodeOnlyReturnsLive) {
  Graph g;
  for (int i = 0; i < 10; ++i) g.AddNode();
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(g.RemoveNode(i * 2).ok());
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    Result<NodeId> pick = g.RandomLiveNode(rng);
    ASSERT_TRUE(pick.ok());
    EXPECT_TRUE(g.HasNode(*pick));
  }
}

TEST(GraphTest, RandomLiveNodeFailsOnEmpty) {
  Graph g;
  Rng rng(3);
  EXPECT_FALSE(g.RandomLiveNode(rng).ok());
}

TEST(GraphTest, RandomNeighborUniform) {
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddNode();
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(0, 3).ok());
  Rng rng(5);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 30000; ++i) {
    Result<NodeId> nb = g.RandomNeighbor(0, rng);
    ASSERT_TRUE(nb.ok());
    ++counts[*nb];
  }
  EXPECT_EQ(counts[0], 0);
  for (int i = 1; i < 4; ++i) EXPECT_NEAR(counts[i], 10000, 600);
}

TEST(GraphTest, RandomNeighborFailsForIsolatedOrDead) {
  Graph g;
  g.AddNode();
  Rng rng(5);
  EXPECT_EQ(g.RandomNeighbor(0, rng).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(g.RandomNeighbor(7, rng).status().code(), StatusCode::kNotFound);
}

TEST(GraphTest, ConnectivityDetection) {
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddNode();
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  EXPECT_FALSE(g.IsConnected());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  EXPECT_TRUE(g.IsConnected());
  Graph empty;
  EXPECT_TRUE(empty.IsConnected());
}

TEST(GraphTest, BfsDistancesOnPath) {
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddNode();
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(g.AddEdge(i, i + 1).ok());
  Result<std::vector<int>> dist = g.BfsDistances(0);
  ASSERT_TRUE(dist.ok());
  for (int i = 0; i < 5; ++i) EXPECT_EQ((*dist)[i], i);
}

TEST(GraphTest, BfsMarksUnreachable) {
  Graph g;
  for (int i = 0; i < 3; ++i) g.AddNode();
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  Result<std::vector<int>> dist = g.BfsDistances(0);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ((*dist)[2], -1);
  EXPECT_FALSE(g.BfsDistances(9).ok());
}

}  // namespace
}  // namespace digest
