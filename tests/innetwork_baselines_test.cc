// Tests of the in-network aggregation comparators from §VII: push-sum
// gossip and TAG-style tree aggregation (including the churn fragility
// the paper criticizes trees for).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/push_sum.h"
#include "baselines/tree_aggregation.h"
#include "net/topology.h"

namespace digest {
namespace {

struct Fixture {
  Graph graph;
  std::unique_ptr<P2PDatabase> db;

  explicit Fixture(size_t nodes, uint64_t seed = 3) {
    Rng topo(seed);
    graph = MakeBarabasiAlbert(nodes, 3, topo).value();
    db = std::make_unique<P2PDatabase>(Schema::Create({"v"}).value());
    Rng data(seed + 1);
    for (NodeId node : graph.LiveNodes()) {
      EXPECT_TRUE(db->AddNode(node).ok());
      const size_t count = 1 + data.NextIndex(4);
      for (size_t i = 0; i < count; ++i) {
        db->StoreAt(node).value()->Insert({data.NextGaussian(20.0, 5.0)});
      }
    }
  }

  double Truth(const AggregateQuery& q) const {
    return db->ExactAggregate(q).value();
  }
};

AggregateQuery Query(const char* text) {
  return AggregateQuery::Parse(text).value();
}

TEST(PushSumTest, ConvergesToAvg) {
  Fixture f(40);
  AggregateQuery q = Query("SELECT AVG(v) FROM R");
  PushSumAggregator gossip(&f.graph, f.db.get(), q, 0, nullptr, Rng(4));
  Result<PushSumResult> r = gossip.Run();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->converged);
  EXPECT_NEAR(r->value, f.Truth(q), 0.05 * std::fabs(f.Truth(q)));
}

TEST(PushSumTest, ConvergesToSumAndCount) {
  Fixture f(30);
  for (const char* text :
       {"SELECT SUM(v) FROM R", "SELECT COUNT(*) FROM R"}) {
    AggregateQuery q = Query(text);
    PushSumAggregator gossip(&f.graph, f.db.get(), q, 2, nullptr, Rng(5));
    Result<PushSumResult> r = gossip.Run();
    ASSERT_TRUE(r.ok()) << text;
    EXPECT_NEAR(r->value, f.Truth(q), 0.05 * std::fabs(f.Truth(q)))
        << text;
  }
}

TEST(PushSumTest, HonorsWhereClause) {
  Fixture f(30);
  AggregateQuery q = Query("SELECT AVG(v) FROM R WHERE v > 20");
  PushSumAggregator gossip(&f.graph, f.db.get(), q, 0, nullptr, Rng(6));
  Result<PushSumResult> r = gossip.Run();
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->value, f.Truth(q), 0.05 * f.Truth(q));
}

TEST(PushSumTest, CostScalesWithNetworkSize) {
  // The paper's critique: O(N) messages per round regardless of who
  // asks.
  MessageMeter small_meter, large_meter;
  {
    Fixture f(20);
    PushSumAggregator g(&f.graph, f.db.get(), Query("SELECT AVG(v) FROM R"),
                        0, &small_meter, Rng(7));
    ASSERT_TRUE(g.Run().ok());
  }
  {
    Fixture f(200);
    PushSumAggregator g(&f.graph, f.db.get(), Query("SELECT AVG(v) FROM R"),
                        0, &large_meter, Rng(8));
    ASSERT_TRUE(g.Run().ok());
  }
  EXPECT_GT(large_meter.Total(), 4 * small_meter.Total());
}

TEST(PushSumTest, FailsOnDeadQuerier) {
  Fixture f(10);
  ASSERT_TRUE(f.graph.RemoveNode(3).ok());
  PushSumAggregator gossip(&f.graph, f.db.get(),
                           Query("SELECT AVG(v) FROM R"), 3, nullptr,
                           Rng(9));
  EXPECT_FALSE(gossip.Run().ok());
}

TEST(TreeAggregationTest, ExactOnStaticNetwork) {
  Fixture f(50);
  AggregateQuery q = Query("SELECT AVG(v) FROM R");
  MessageMeter meter;
  TreeAggregator tree(&f.graph, f.db.get(), q, 0, &meter);
  Result<TreeAggregationResult> r = tree.Tick();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->rebuilt);
  EXPECT_DOUBLE_EQ(r->value, f.Truth(q));
  EXPECT_EQ(r->lost_tuples, 0u);
  EXPECT_EQ(r->covered_tuples, f.db->TotalTuples());
  EXPECT_GT(meter.Total(), 0u);
}

TEST(TreeAggregationTest, SumCountAndWhere) {
  Fixture f(30);
  for (const char* text :
       {"SELECT SUM(v) FROM R", "SELECT COUNT(*) FROM R",
        "SELECT AVG(v) FROM R WHERE v > 20"}) {
    AggregateQuery q = Query(text);
    TreeAggregator tree(&f.graph, f.db.get(), q, 1, nullptr);
    Result<TreeAggregationResult> r = tree.Tick();
    ASSERT_TRUE(r.ok()) << text;
    EXPECT_DOUBLE_EQ(r->value, f.Truth(q)) << text;
  }
}

TEST(TreeAggregationTest, ChurnOrphansSubtrees) {
  // The §VII critique in vivo: after nodes leave between rebuilds, the
  // stale tree silently drops the orphaned subtrees' tuples.
  Fixture f(60);
  AggregateQuery q = Query("SELECT COUNT(*) FROM R");
  TreeAggregationOptions options;
  options.rebuild_period = 1000;  // Never rebuild during the test.
  TreeAggregator tree(&f.graph, f.db.get(), q, 0, nullptr, options);
  Result<TreeAggregationResult> before = tree.Tick();
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->lost_tuples, 0u);

  // Remove a handful of (non-root) nodes; their subtrees go dark even
  // though the *database* still has other live content.
  Rng rng(10);
  size_t removed = 0;
  for (NodeId victim : f.graph.LiveNodes()) {
    if (victim == 0 || removed >= 6) continue;
    if (rng.NextBernoulli(0.3)) {
      ASSERT_TRUE(f.graph.RemoveNode(victim).ok());
      ASSERT_TRUE(f.db->RemoveNode(victim).ok());
      ++removed;
    }
  }
  ASSERT_GT(removed, 0u);
  Result<TreeAggregationResult> after = tree.Tick();
  ASSERT_TRUE(after.ok());
  const double truth_now = f.Truth(q);
  // The stale tree undercounts (or at best matches when no orphan had
  // surviving descendants).
  EXPECT_LE(after->value, truth_now);
  // A rebuild restores exactness.
  tree.InvalidateTree();
  Result<TreeAggregationResult> rebuilt = tree.Tick();
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE(rebuilt->rebuilt);
  EXPECT_DOUBLE_EQ(rebuilt->value, truth_now);
  EXPECT_EQ(rebuilt->lost_tuples, 0u);
}

TEST(TreeAggregationTest, LostTuplesAreAccounted) {
  Fixture f(40);
  AggregateQuery q = Query("SELECT COUNT(*) FROM R");
  TreeAggregationOptions options;
  options.rebuild_period = 1000;
  TreeAggregator tree(&f.graph, f.db.get(), q, 0, nullptr, options);
  ASSERT_TRUE(tree.Tick().ok());
  // Kill one high-degree hub (likely to orphan others).
  NodeId hub = 1;
  size_t best = 0;
  for (NodeId id : f.graph.LiveNodes()) {
    if (id != 0 && f.graph.Degree(id) > best) {
      best = f.graph.Degree(id);
      hub = id;
    }
  }
  ASSERT_TRUE(f.graph.RemoveNode(hub).ok());
  ASSERT_TRUE(f.db->RemoveNode(hub).ok());
  Result<TreeAggregationResult> r = tree.Tick();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->covered_tuples + r->lost_tuples, f.db->TotalTuples());
}

TEST(TreeAggregationTest, FailsOnDeadRoot) {
  Fixture f(10);
  ASSERT_TRUE(f.graph.RemoveNode(2).ok());
  ASSERT_TRUE(f.db->RemoveNode(2).ok());
  TreeAggregator tree(&f.graph, f.db.get(), Query("SELECT AVG(v) FROM R"),
                      2, nullptr);
  EXPECT_FALSE(tree.Tick().ok());
}

}  // namespace
}  // namespace digest
