// Determinism guarantees of the observability layer:
//  1. two same-seed traced runs export byte-identical JSONL / Chrome
//     trace / registry JSON — events are stamped with simulated time
//     and sequence numbers only, never wall clock;
//  2. tracing is pure observation — a fully traced run produces
//     bit-identical engine estimates and MessageMeter totals to an
//     untraced run of the same seed (the null fast path changes
//     nothing).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "audit/audit.h"
#include "core/engine.h"
#include "diag/diag.h"
#include "db/p2p_database.h"
#include "net/fault_plan.h"
#include "net/topology.h"
#include "numeric/rng.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "workload/experiment.h"
#include "workload/workload.h"

namespace digest {
namespace {

/// Same static-membership AR(1) workload as the fault battery: a fixed
/// overlay with drifting values, reproducible from the seed alone.
class DriftWorkload : public Workload {
 public:
  explicit DriftWorkload(uint64_t seed)
      : graph_(MakeMesh(6, 6).value()),
        rng_(seed),
        db_(std::make_unique<P2PDatabase>(
            Schema::Create({"load"}).value())) {
    for (NodeId node : graph_.LiveNodes()) {
      (void)db_->AddNode(node);
      LocalStore* store = db_->StoreAt(node).value();
      for (size_t i = 0; i < 5; ++i) {
        Entry entry;
        entry.node = node;
        entry.value = rng_.NextGaussian(50.0, 10.0);
        entry.id = store->Insert({entry.value});
        entries_.push_back(entry);
      }
    }
  }

  Graph& graph() override { return graph_; }
  const Graph& graph() const override { return graph_; }
  P2PDatabase& db() override { return *db_; }
  const P2PDatabase& db() const override { return *db_; }
  const char* attribute() const override { return "load"; }
  int64_t now() const override { return now_; }

  Status Advance() override {
    ++now_;
    for (Entry& entry : entries_) {
      entry.value =
          50.0 + 0.8 * (entry.value - 50.0) + rng_.NextGaussian(0.0, 2.0);
      DIGEST_ASSIGN_OR_RETURN(LocalStore * store, db_->StoreAt(entry.node));
      DIGEST_RETURN_IF_ERROR(
          store->UpdateAttribute(entry.id, 0, entry.value));
    }
    return Status::OK();
  }

 private:
  struct Entry {
    NodeId node = kInvalidNode;
    LocalTupleId id = 0;
    double value = 0.0;
  };

  Graph graph_;
  Rng rng_;
  std::unique_ptr<P2PDatabase> db_;
  std::vector<Entry> entries_;
  int64_t now_ = 0;
};

constexpr size_t kTicks = 14;

struct TracedRun {
  RunResult result;
  std::string jsonl;
  std::string chrome;
  std::string metrics_json;
};

TracedRun RunTraced(bool with_faults) {
  DriftWorkload workload(/*seed=*/99);
  const ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(load) FROM R",
                                  PrecisionSpec{1.0, 4.0, 0.9})
          .value();
  FaultPlanConfig config;
  config.message_loss = with_faults ? 0.06 : 0.0;
  config.agent_drop = with_faults ? 0.03 : 0.0;
  FaultPlan plan(config, /*seed=*/31);

  obs::MemoryTracer tracer;
  obs::Registry registry;
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kPred;
  options.estimator = EstimatorKind::kRepeated;
  options.sampling_options.walk_length = 14;
  options.sampling_options.reset_length = 4;
  if (with_faults) options.fault_plan = &plan;
  options.tracer = &tracer;
  options.registry = &registry;

  TracedRun out;
  out.result = RunEngineExperiment(workload, spec, options, kTicks,
                                   /*seed=*/7, "determinism")
                   .value();
  out.jsonl = obs::RenderJsonLines(tracer.events());
  out.chrome = obs::RenderChromeTrace(tracer.events());
  out.metrics_json = registry.ToJson();
  return out;
}

RunResult RunUntraced(bool with_faults) {
  DriftWorkload workload(/*seed=*/99);
  const ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(load) FROM R",
                                  PrecisionSpec{1.0, 4.0, 0.9})
          .value();
  FaultPlanConfig config;
  config.message_loss = with_faults ? 0.06 : 0.0;
  config.agent_drop = with_faults ? 0.03 : 0.0;
  FaultPlan plan(config, /*seed=*/31);

  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kPred;
  options.estimator = EstimatorKind::kRepeated;
  options.sampling_options.walk_length = 14;
  options.sampling_options.reset_length = 4;
  if (with_faults) options.fault_plan = &plan;
  return RunEngineExperiment(workload, spec, options, kTicks, /*seed=*/7)
      .value();
}

TEST(ObsDeterminismTest, SameSeedRunsExportByteIdenticalTraces) {
  const TracedRun a = RunTraced(/*with_faults=*/true);
  const TracedRun b = RunTraced(/*with_faults=*/true);
  ASSERT_FALSE(a.jsonl.empty());
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_EQ(a.chrome, b.chrome);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

TEST(ObsDeterminismTest, TracingIsPureObservationCleanRun) {
  const TracedRun traced = RunTraced(/*with_faults=*/false);
  const RunResult plain = RunUntraced(/*with_faults=*/false);
  ASSERT_EQ(traced.result.reported.size(), plain.reported.size());
  for (size_t i = 0; i < plain.reported.size(); ++i) {
    EXPECT_EQ(traced.result.reported[i], plain.reported[i]) << "tick " << i;
    EXPECT_EQ(traced.result.ci_halfwidths[i], plain.ci_halfwidths[i]);
  }
  EXPECT_EQ(traced.result.meter.Total(), plain.meter.Total());
  EXPECT_EQ(traced.result.meter.walk_hops(), plain.meter.walk_hops());
  EXPECT_EQ(traced.result.meter.weight_probes(),
            plain.meter.weight_probes());
  EXPECT_EQ(traced.result.stats.snapshots, plain.stats.snapshots);
  EXPECT_EQ(traced.result.stats.total_samples, plain.stats.total_samples);
  EXPECT_EQ(traced.result.correlation_estimate,
            plain.correlation_estimate);
}

TEST(ObsDeterminismTest, TracingIsPureObservationFaultyRun) {
  const TracedRun traced = RunTraced(/*with_faults=*/true);
  const RunResult plain = RunUntraced(/*with_faults=*/true);
  ASSERT_EQ(traced.result.reported.size(), plain.reported.size());
  for (size_t i = 0; i < plain.reported.size(); ++i) {
    EXPECT_EQ(traced.result.reported[i], plain.reported[i]) << "tick " << i;
    EXPECT_EQ(traced.result.ci_halfwidths[i], plain.ci_halfwidths[i]);
  }
  EXPECT_EQ(traced.result.meter.Total(), plain.meter.Total());
  EXPECT_EQ(traced.result.meter.losses(), plain.meter.losses());
  EXPECT_EQ(traced.result.meter.retries(), plain.meter.retries());
  EXPECT_EQ(traced.result.meter.agent_restarts(),
            plain.meter.agent_restarts());
  EXPECT_EQ(traced.result.stats.degraded_ticks,
            plain.stats.degraded_ticks);
}

/// Renders the trace as JSONL lines with the seq stamp stripped and —
/// when `drop_audit` / `drop_diag` — the audit_* / sampler-diagnostic
/// lines removed, so an instrumented trace can be compared
/// line-for-line against a plain one (extra events shift every later
/// seq).
std::vector<std::string> NormalizedLines(
    const std::vector<obs::TraceEvent>& events, bool drop_audit,
    bool drop_diag = false) {
  std::vector<std::string> out;
  for (const obs::TraceEvent& event : events) {
    if (drop_audit &&
        (std::holds_alternative<obs::AuditCoverageEvent>(event.payload) ||
         std::holds_alternative<obs::AuditBudgetEvent>(event.payload) ||
         std::holds_alternative<obs::AuditDriftEvent>(event.payload) ||
         std::holds_alternative<obs::AuditSloEvent>(event.payload))) {
      continue;
    }
    if (drop_diag &&
        (std::holds_alternative<obs::WalkMixingEvent>(event.payload) ||
         std::holds_alternative<obs::StationaryGapEvent>(event.payload) ||
         std::holds_alternative<obs::PeerLoadEvent>(event.payload) ||
         std::holds_alternative<obs::AcceptanceRateEvent>(event.payload))) {
      continue;
    }
    const std::string line = obs::EventToJsonLine(event);
    out.push_back(line.substr(line.find(",\"t\":")));
  }
  return out;
}

struct AuditedRun {
  RunResult result;
  std::string summary_json;
  uint64_t supervisor_flips = 0;
  std::vector<obs::TraceEvent> events;
};

AuditedRun RunAudited(bool with_audit, bool with_faults,
                      size_t num_threads = 0) {
  DriftWorkload workload(/*seed=*/99);
  const ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(load) FROM R",
                                  PrecisionSpec{1.0, 4.0, 0.9})
          .value();
  FaultPlanConfig config;
  config.message_loss = with_faults ? 0.06 : 0.0;
  config.agent_drop = with_faults ? 0.03 : 0.0;
  FaultPlan plan(config, /*seed=*/31);

  obs::MemoryTracer tracer;
  audit::PrecisionAuditor auditor;
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kPred;
  options.estimator = EstimatorKind::kRepeated;
  options.sampling_options.walk_length = 14;
  options.sampling_options.reset_length = 4;
  options.num_threads = num_threads;
  if (with_faults) options.fault_plan = &plan;
  options.tracer = &tracer;
  if (with_audit) options.auditor = &auditor;

  AuditedRun out;
  out.result = RunEngineExperiment(workload, spec, options, kTicks,
                                   /*seed=*/7, "determinism")
                   .value();
  out.summary_json = auditor.SummaryJson();
  out.supervisor_flips = auditor.Summarize().supervisor_flips;
  out.events = tracer.events();
  return out;
}

TEST(ObsDeterminismTest, AuditOffIsBitIdenticalToUnaudited) {
  // With the auditor detached (the null fast path), the run must match
  // an audited run of the same seed in everything except the audit_*
  // events — the auditor observes but never steers. (Holds as long as
  // no drift breach flips the supervisor; this config has none, which
  // the flip counter pins down.)
  const AuditedRun audited =
      RunAudited(/*with_audit=*/true, /*with_faults=*/true);
  const AuditedRun plain =
      RunAudited(/*with_audit=*/false, /*with_faults=*/true);
  ASSERT_EQ(audited.supervisor_flips, 0u);
  ASSERT_EQ(audited.result.reported.size(), plain.result.reported.size());
  for (size_t i = 0; i < plain.result.reported.size(); ++i) {
    EXPECT_EQ(audited.result.reported[i], plain.result.reported[i])
        << "tick " << i;
    EXPECT_EQ(audited.result.ci_halfwidths[i],
              plain.result.ci_halfwidths[i]);
  }
  EXPECT_EQ(audited.result.meter.Total(), plain.result.meter.Total());
  EXPECT_EQ(audited.result.meter.walk_hops(),
            plain.result.meter.walk_hops());
  EXPECT_EQ(audited.result.stats.snapshots, plain.result.stats.snapshots);
  EXPECT_EQ(audited.result.stats.total_samples,
            plain.result.stats.total_samples);
  EXPECT_EQ(audited.result.final_health, plain.result.final_health);
  const std::vector<std::string> audited_lines =
      NormalizedLines(audited.events, /*drop_audit=*/true);
  const std::vector<std::string> plain_lines =
      NormalizedLines(plain.events, /*drop_audit=*/false);
  ASSERT_EQ(audited_lines.size(), plain_lines.size());
  for (size_t i = 0; i < plain_lines.size(); ++i) {
    EXPECT_EQ(audited_lines[i], plain_lines[i]) << "line " << i;
  }
  // And the audited trace really did carry audit events.
  EXPECT_GT(audited.events.size(), plain.events.size());
}

TEST(ObsDeterminismTest, AuditLedgerIsThreadCountInvariant) {
  // The ledger is a pure fold over the observation sequence, which the
  // deterministic parallel executor keeps identical for every worker
  // count: the full summary (coverage, attribution, drift state,
  // quantiles) must be byte-identical for 1 vs 4 threads.
  const AuditedRun serial =
      RunAudited(/*with_audit=*/true, /*with_faults=*/true,
                 /*num_threads=*/1);
  const AuditedRun parallel =
      RunAudited(/*with_audit=*/true, /*with_faults=*/true,
                 /*num_threads=*/4);
  ASSERT_FALSE(serial.summary_json.empty());
  EXPECT_EQ(serial.summary_json, parallel.summary_json);
  EXPECT_EQ(obs::RenderJsonLines(serial.events),
            obs::RenderJsonLines(parallel.events));
}

struct DiaggedRun {
  RunResult result;
  std::string diag_summary;
  std::vector<obs::TraceEvent> events;
};

DiaggedRun RunDiagged(bool with_diag, bool with_faults,
                      size_t num_threads = 0) {
  DriftWorkload workload(/*seed=*/99);
  const ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(load) FROM R",
                                  PrecisionSpec{1.0, 4.0, 0.9})
          .value();
  FaultPlanConfig config;
  config.message_loss = with_faults ? 0.06 : 0.0;
  config.agent_drop = with_faults ? 0.03 : 0.0;
  FaultPlan plan(config, /*seed=*/31);

  obs::MemoryTracer tracer;
  diag::SamplerDiag diag;
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kPred;
  options.estimator = EstimatorKind::kRepeated;
  options.sampling_options.walk_length = 14;
  options.sampling_options.reset_length = 4;
  options.num_threads = num_threads;
  if (with_faults) options.fault_plan = &plan;
  options.tracer = &tracer;
  if (with_diag) options.diag = &diag;

  DiaggedRun out;
  out.result = RunEngineExperiment(workload, spec, options, kTicks,
                                   /*seed=*/7, "determinism")
                   .value();
  out.diag_summary = diag.SummaryJson();
  out.events = tracer.events();
  return out;
}

TEST(ObsDeterminismTest, DiagOffIsBitIdenticalToUndiagged) {
  // With the sampler diagnostics detached (the null fast path), the run
  // must match a diagnosed run of the same seed in everything except the
  // four per-batch diagnostic events — SamplerDiag observes the walks
  // but consumes no RNG and never steers them.
  const DiaggedRun diagged =
      RunDiagged(/*with_diag=*/true, /*with_faults=*/true);
  const DiaggedRun plain =
      RunDiagged(/*with_diag=*/false, /*with_faults=*/true);
  ASSERT_EQ(diagged.result.reported.size(), plain.result.reported.size());
  for (size_t i = 0; i < plain.result.reported.size(); ++i) {
    EXPECT_EQ(diagged.result.reported[i], plain.result.reported[i])
        << "tick " << i;
    EXPECT_EQ(diagged.result.ci_halfwidths[i],
              plain.result.ci_halfwidths[i]);
  }
  EXPECT_EQ(diagged.result.meter.Total(), plain.result.meter.Total());
  EXPECT_EQ(diagged.result.meter.walk_hops(),
            plain.result.meter.walk_hops());
  EXPECT_EQ(diagged.result.meter.weight_probes(),
            plain.result.meter.weight_probes());
  EXPECT_EQ(diagged.result.stats.snapshots, plain.result.stats.snapshots);
  EXPECT_EQ(diagged.result.stats.total_samples,
            plain.result.stats.total_samples);
  EXPECT_EQ(diagged.result.final_health, plain.result.final_health);
  const std::vector<std::string> diagged_lines = NormalizedLines(
      diagged.events, /*drop_audit=*/false, /*drop_diag=*/true);
  const std::vector<std::string> plain_lines =
      NormalizedLines(plain.events, /*drop_audit=*/false);
  ASSERT_EQ(diagged_lines.size(), plain_lines.size());
  for (size_t i = 0; i < plain_lines.size(); ++i) {
    EXPECT_EQ(diagged_lines[i], plain_lines[i]) << "line " << i;
  }
  // And the diagnosed trace really did carry the diagnostic events.
  EXPECT_GT(diagged.events.size(), plain.events.size());
}

TEST(ObsDeterminismTest, DiagStateIsThreadCountInvariant) {
  // The diagnostics fold per-walk buffers in walk-index order on the
  // main thread, so the full run summary (counts, TV, ESS, R-hat — all
  // %.17g) must be byte-identical for 1 vs 4 worker threads, and so
  // must the exported trace.
  const DiaggedRun serial =
      RunDiagged(/*with_diag=*/true, /*with_faults=*/true,
                 /*num_threads=*/1);
  const DiaggedRun parallel =
      RunDiagged(/*with_diag=*/true, /*with_faults=*/true,
                 /*num_threads=*/4);
  ASSERT_FALSE(serial.diag_summary.empty());
  EXPECT_EQ(serial.diag_summary, parallel.diag_summary);
  EXPECT_EQ(obs::RenderJsonLines(serial.events),
            obs::RenderJsonLines(parallel.events));
}

TEST(ObsDeterminismTest, NullTracerMatchesNoTracer) {
  // A NullTracer attached through the whole stack must behave exactly
  // like no tracer: enabled() == false short-circuits before payload
  // assembly.
  DriftWorkload workload(/*seed=*/12);
  const ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(load) FROM R",
                                  PrecisionSpec{1.0, 4.0, 0.9})
          .value();
  obs::NullTracer null_tracer;
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kAll;
  options.estimator = EstimatorKind::kIndependent;
  options.sampling_options.walk_length = 14;
  options.sampling_options.reset_length = 4;
  options.tracer = &null_tracer;
  const RunResult with_null =
      RunEngineExperiment(workload, spec, options, kTicks, /*seed=*/2)
          .value();
  EXPECT_EQ(null_tracer.events_emitted(), 0u);

  DriftWorkload workload2(/*seed=*/12);
  options.tracer = nullptr;
  const RunResult without =
      RunEngineExperiment(workload2, spec, options, kTicks, /*seed=*/2)
          .value();
  ASSERT_EQ(with_null.reported.size(), without.reported.size());
  for (size_t i = 0; i < without.reported.size(); ++i) {
    EXPECT_EQ(with_null.reported[i], without.reported[i]);
  }
  EXPECT_EQ(with_null.meter.Total(), without.meter.Total());
}

}  // namespace
}  // namespace digest
