// Additional engine-level behaviours: SUM/COUNT continuous queries,
// PRED degenerate cases, and scheduler equivalences.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "net/topology.h"

namespace digest {
namespace {

class GrowingDatabase {
 public:
  // COUNT grows over time: inserts per tick.
  GrowingDatabase(size_t nodes, size_t initial_per_node, uint64_t seed)
      : rng_(seed) {
    graph = MakeComplete(nodes).value();
    db = std::make_unique<P2PDatabase>(Schema::Create({"v"}).value());
    for (NodeId node : graph.LiveNodes()) {
      EXPECT_TRUE(db->AddNode(node).ok());
      for (size_t i = 0; i < initial_per_node; ++i) Insert(node);
    }
  }

  void Insert(NodeId node) {
    db->StoreAt(node).value()->Insert({rng_.NextGaussian(10.0, 2.0)});
  }

  void AdvanceInserting(size_t inserts) {
    std::vector<NodeId> nodes = db->Nodes();
    for (size_t i = 0; i < inserts; ++i) {
      Insert(nodes[rng_.NextIndex(nodes.size())]);
    }
  }

  Graph graph;
  std::unique_ptr<P2PDatabase> db;

 private:
  Rng rng_;
};

DigestEngineOptions ExactOptions(SchedulerKind scheduler,
                                 EstimatorKind estimator) {
  DigestEngineOptions options;
  options.scheduler = scheduler;
  options.estimator = estimator;
  options.sampler = SamplerKind::kExactCentral;
  return options;
}

TEST(EngineExtraTest, ContinuousCountTracksGrowth) {
  GrowingDatabase data(4, 50, 1);
  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT COUNT(*) FROM R",
                                  PrecisionSpec{20.0, 5.0, 0.95})
          .value();
  auto engine =
      DigestEngine::Create(&data.graph, data.db.get(), spec, 0, Rng(2),
                           nullptr,
                           ExactOptions(SchedulerKind::kAll,
                                        EstimatorKind::kIndependent))
          .value();
  for (int t = 1; t <= 20; ++t) {
    data.AdvanceInserting(15);
    Result<EngineTickResult> r = engine->Tick(t);
    ASSERT_TRUE(r.ok());
    // Trivial-predicate COUNT is exact via the oracle scaling.
    EXPECT_NEAR(r->reported_value,
                static_cast<double>(data.db->TotalTuples()), 20.0 + 1e-9);
  }
  EXPECT_GT(engine->stats().result_updates, 5u);
}

TEST(EngineExtraTest, ContinuousSumWithRepeatedSampling) {
  GrowingDatabase data(4, 200, 3);
  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT SUM(v) FROM R",
                                  PrecisionSpec{200.0, 300.0, 0.95})
          .value();
  auto engine =
      DigestEngine::Create(&data.graph, data.db.get(), spec, 0, Rng(4),
                           nullptr,
                           ExactOptions(SchedulerKind::kAll,
                                        EstimatorKind::kRepeated))
          .value();
  AggregateQuery q = spec.query;
  int within = 0;
  for (int t = 1; t <= 15; ++t) {
    data.AdvanceInserting(10);
    Result<EngineTickResult> r = engine->Tick(t);
    ASSERT_TRUE(r.ok()) << r.status();
    const double truth = data.db->ExactAggregate(q).value();
    if (std::fabs(r->reported_value - truth) <= 200.0 + 300.0) ++within;
  }
  EXPECT_GE(within, 12);
  EXPECT_GT(engine->stats().retained_samples, 0u);
}

TEST(EngineExtraTest, PredWithZeroDeltaEqualsAll) {
  auto run = [&](SchedulerKind scheduler) {
    GrowingDatabase data(4, 100, 5);
    ContinuousQuerySpec spec =
        ContinuousQuerySpec::Create("SELECT AVG(v) FROM R",
                                    PrecisionSpec{0.0, 0.5, 0.95})
            .value();
    auto engine =
        DigestEngine::Create(&data.graph, data.db.get(), spec, 0, Rng(6),
                             nullptr,
                             ExactOptions(scheduler,
                                          EstimatorKind::kIndependent))
            .value();
    for (int t = 1; t <= 25; ++t) {
      data.AdvanceInserting(5);
      EXPECT_TRUE(engine->Tick(t).ok());
    }
    return engine->stats().snapshots;
  };
  // delta = 0 means exact resolution: PRED must degenerate to ALL.
  EXPECT_EQ(run(SchedulerKind::kPred), run(SchedulerKind::kAll));
}

TEST(EngineExtraTest, HugeDeltaMeansFewSnapshotsUnderPred) {
  GrowingDatabase data(4, 100, 7);
  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(v) FROM R",
                                  PrecisionSpec{1e6, 0.5, 0.95})
          .value();
  DigestEngineOptions options =
      ExactOptions(SchedulerKind::kPred, EstimatorKind::kIndependent);
  options.extrapolator.history_points = 3;
  options.extrapolator.max_skip = 16;
  auto engine = DigestEngine::Create(&data.graph, data.db.get(), spec, 0,
                                     Rng(8), nullptr, options)
                    .value();
  for (int t = 1; t <= 60; ++t) {
    EXPECT_TRUE(engine->Tick(t).ok());
  }
  // Bootstrap (3) + max_skip-paced probes thereafter.
  EXPECT_LE(engine->stats().snapshots, 3u + 60u / 16u + 2u);
  EXPECT_EQ(engine->stats().result_updates, 1u);
}

TEST(EngineExtraTest, TickGapsLargerThanScheduleAreHandled) {
  // Callers may tick sparsely (e.g., only when their own clock fires);
  // the engine must treat a late tick as "time to snapshot".
  GrowingDatabase data(4, 100, 9);
  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(v) FROM R",
                                  PrecisionSpec{0.5, 0.5, 0.95})
          .value();
  auto engine =
      DigestEngine::Create(&data.graph, data.db.get(), spec, 0, Rng(10),
                           nullptr,
                           ExactOptions(SchedulerKind::kAll,
                                        EstimatorKind::kIndependent))
          .value();
  ASSERT_TRUE(engine->Tick(1).ok());
  Result<EngineTickResult> r = engine->Tick(100);  // Big jump.
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->snapshot_executed);
  ASSERT_TRUE(engine->Tick(101).ok());
}

}  // namespace
}  // namespace digest
