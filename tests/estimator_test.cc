#include "core/snapshot_estimator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "net/topology.h"

namespace digest {
namespace {

// A database whose tuple values evolve as AR(1) around per-tuple means,
// giving a controllable inter-occasion correlation.
class Ar1Database {
 public:
  Ar1Database(size_t nodes, size_t tuples_per_node, double mean,
              double sigma, double ar, uint64_t seed)
      : ar_(ar), noise_sigma_(sigma * std::sqrt(1.0 - ar * ar)), rng_(seed) {
    graph = MakeComplete(nodes).value();
    db = std::make_unique<P2PDatabase>(Schema::Create({"v"}).value());
    for (NodeId node : graph.LiveNodes()) {
      EXPECT_TRUE(db->AddNode(node).ok());
      for (size_t i = 0; i < tuples_per_node; ++i) {
        const double base = rng_.NextGaussian(mean, sigma);
        const LocalTupleId id = db->StoreAt(node).value()->Insert({base});
        tuples_.push_back({TupleRef{node, id}, base});
      }
    }
  }

  // One occasion step: v' = base + ar*(v-base) + noise. Stationary
  // per-tuple variance stays sigma-ish; lag-1 correlation ~ ar for the
  // value *around its base*... the cross-sectional pooled correlation is
  // dominated by the stable bases, making it high, like TEMPERATURE.
  void Advance() {
    for (auto& [ref, base] : tuples_) {
      const double v = db->GetTuple(ref).value()[0];
      const double nv =
          base + ar_ * (v - base) + rng_.NextGaussian(0.0, noise_sigma_);
      EXPECT_TRUE(
          db->StoreAt(ref.node).value()->UpdateAttribute(ref.local, 0, nv)
              .ok());
    }
  }

  double TrueAvg() const {
    AggregateQuery q = AggregateQuery::Parse("SELECT AVG(v) FROM R").value();
    return db->ExactAggregate(q).value();
  }

  Graph graph;
  std::unique_ptr<P2PDatabase> db;

 private:
  struct Entry {
    TupleRef ref;
    double base;
  };
  std::vector<Entry> tuples_;
  double ar_;
  double noise_sigma_;
  Rng rng_;
};

ContinuousQuerySpec AvgSpec(double delta, double epsilon, double p) {
  return ContinuousQuerySpec::Create("SELECT AVG(v) FROM R",
                                     PrecisionSpec{delta, epsilon, p})
      .value();
}

TEST(IndependentEstimatorTest, EstimateWithinEpsilonMostOfTheTime) {
  Ar1Database data(8, 100, 50.0, 10.0, 0.8, 1);
  ContinuousQuerySpec spec = AvgSpec(0.0, 1.0, 0.95);
  ExactTupleSampler sampler(data.db.get(), Rng(2), nullptr);
  ExactSampleSource source(&sampler);
  int within = 0;
  const int trials = 60;
  for (int i = 0; i < trials; ++i) {
    IndependentEstimator est(spec, data.db.get(), &source, nullptr, nullptr,
                             Rng(100 + i));
    Result<SnapshotEstimate> e = est.Evaluate(0);
    ASSERT_TRUE(e.ok()) << e.status();
    if (std::fabs(e->value - data.TrueAvg()) <= 1.0) ++within;
  }
  // 95% nominal; allow sampling noise down to 85%.
  EXPECT_GE(within, trials * 85 / 100);
}

TEST(IndependentEstimatorTest, SampleSizeMatchesCltFormula) {
  Ar1Database data(8, 200, 50.0, 10.0, 0.8, 3);
  ExactTupleSampler sampler(data.db.get(), Rng(4), nullptr);
  ExactSampleSource source(&sampler);
  ContinuousQuerySpec spec = AvgSpec(0.0, 1.0, 0.95);
  IndependentEstimator est(spec, data.db.get(), &source, nullptr, nullptr,
                           Rng(5));
  Result<SnapshotEstimate> e = est.Evaluate(0);
  ASSERT_TRUE(e.ok());
  // n = (z sigma / eps)^2 ~= (1.96 * 10 / 1)^2 ~= 384.
  EXPECT_GT(e->total_samples, 250u);
  EXPECT_LT(e->total_samples, 700u);
  EXPECT_EQ(e->fresh_samples, e->total_samples);
  EXPECT_EQ(e->retained_samples, 0u);
}

TEST(IndependentEstimatorTest, TighterEpsilonNeedsMoreSamples) {
  Ar1Database data(8, 300, 50.0, 10.0, 0.8, 6);
  ExactTupleSampler sampler(data.db.get(), Rng(7), nullptr);
  ExactSampleSource source(&sampler);
  size_t last = 0;
  for (double eps : {4.0, 2.0, 1.0, 0.5}) {
    IndependentEstimator est(AvgSpec(0.0, eps, 0.95), data.db.get(),
                             &source, nullptr, nullptr, Rng(8));
    Result<SnapshotEstimate> e = est.Evaluate(0);
    ASSERT_TRUE(e.ok());
    EXPECT_GT(e->total_samples, last) << "eps=" << eps;
    last = e->total_samples;
  }
}

TEST(IndependentEstimatorTest, HigherConfidenceNeedsMoreSamples) {
  Ar1Database data(8, 300, 50.0, 10.0, 0.8, 9);
  ExactTupleSampler sampler(data.db.get(), Rng(10), nullptr);
  ExactSampleSource source(&sampler);
  IndependentEstimator low(AvgSpec(0.0, 1.0, 0.80), data.db.get(), &source,
                           nullptr, nullptr, Rng(11));
  IndependentEstimator high(AvgSpec(0.0, 1.0, 0.99), data.db.get(), &source,
                            nullptr, nullptr, Rng(11));
  Result<SnapshotEstimate> e_low = low.Evaluate(0);
  Result<SnapshotEstimate> e_high = high.Evaluate(0);
  ASSERT_TRUE(e_low.ok());
  ASSERT_TRUE(e_high.ok());
  EXPECT_GT(e_high->total_samples, e_low->total_samples);
}

TEST(IndependentEstimatorTest, SumNeedsSizeOracle) {
  Ar1Database data(4, 50, 50.0, 10.0, 0.8, 12);
  ExactTupleSampler sampler(data.db.get(), Rng(13), nullptr);
  ExactSampleSource source(&sampler);
  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT SUM(v) FROM R",
                                  PrecisionSpec{0.0, 200.0, 0.95})
          .value();
  IndependentEstimator no_oracle(spec, data.db.get(), &source, nullptr,
                                 nullptr, Rng(14));
  EXPECT_EQ(no_oracle.Evaluate(0).status().code(),
            StatusCode::kFailedPrecondition);

  ExactSizeOracle oracle(data.db.get());
  IndependentEstimator with_oracle(spec, data.db.get(), &source, &oracle,
                                   nullptr, Rng(14));
  Result<SnapshotEstimate> e = with_oracle.Evaluate(0);
  ASSERT_TRUE(e.ok());
  AggregateQuery q = AggregateQuery::Parse("SELECT SUM(v) FROM R").value();
  const double truth = data.db->ExactAggregate(q).value();
  EXPECT_NEAR(e->value, truth, 400.0);  // 2x the epsilon budget.
}

TEST(IndependentEstimatorTest, CountIsExactViaOracle) {
  Ar1Database data(4, 25, 50.0, 10.0, 0.8, 15);
  ExactTupleSampler sampler(data.db.get(), Rng(16), nullptr);
  ExactSampleSource source(&sampler);
  ExactSizeOracle oracle(data.db.get());
  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT COUNT(*) FROM R",
                                  PrecisionSpec{0.0, 1.0, 0.95})
          .value();
  IndependentEstimator est(spec, data.db.get(), &source, &oracle, nullptr,
                           Rng(17));
  Result<SnapshotEstimate> e = est.Evaluate(0);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(e->value, 100.0);
}

TEST(IndependentEstimatorTest, InvalidSpecRejected) {
  Ar1Database data(4, 25, 50.0, 10.0, 0.8, 18);
  ExactTupleSampler sampler(data.db.get(), Rng(19), nullptr);
  ExactSampleSource source(&sampler);
  ContinuousQuerySpec spec = AvgSpec(0.0, 1.0, 0.95);
  spec.precision.epsilon = -1.0;
  IndependentEstimator est(spec, data.db.get(), &source, nullptr, nullptr,
                           Rng(20));
  EXPECT_FALSE(est.Evaluate(0).ok());
}

TEST(RepeatedSamplingTest, FirstOccasionMatchesIndependent) {
  Ar1Database data(8, 100, 50.0, 10.0, 0.8, 21);
  ExactTupleSampler sampler(data.db.get(), Rng(22), nullptr);
  ExactSampleSource source(&sampler);
  RepeatedSamplingEstimator est(AvgSpec(0.0, 1.0, 0.95), data.db.get(),
                                &source, nullptr, nullptr, Rng(23));
  Result<SnapshotEstimate> e = est.Evaluate(0);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->retained_samples, 0u);
  EXPECT_GT(e->fresh_samples, 100u);
}

TEST(RepeatedSamplingTest, LaterOccasionsRetainSamples) {
  Ar1Database data(8, 200, 50.0, 10.0, 0.9, 24);
  ExactTupleSampler sampler(data.db.get(), Rng(25), nullptr);
  ExactSampleSource source(&sampler);
  RepeatedSamplingEstimator est(AvgSpec(0.0, 1.0, 0.95), data.db.get(),
                                &source, nullptr, nullptr, Rng(26));
  ASSERT_TRUE(est.Evaluate(0).ok());
  data.Advance();
  Result<SnapshotEstimate> e2 = est.Evaluate(0);
  ASSERT_TRUE(e2.ok());
  EXPECT_GT(e2->retained_samples, 0u);
  EXPECT_GT(e2->fresh_samples, 0u);
  EXPECT_EQ(e2->total_samples, e2->retained_samples + e2->fresh_samples);
}

TEST(RepeatedSamplingTest, LearnsHighPooledCorrelation) {
  // Pooled across tuples, values are dominated by stable per-tuple bases:
  // correlation should be high (like the TEMPERATURE dataset).
  Ar1Database data(8, 300, 50.0, 10.0, 0.7, 27);
  ExactTupleSampler sampler(data.db.get(), Rng(28), nullptr);
  ExactSampleSource source(&sampler);
  RepeatedSamplingEstimator est(AvgSpec(0.0, 1.0, 0.95), data.db.get(),
                                &source, nullptr, nullptr, Rng(29));
  for (int occasion = 0; occasion < 6; ++occasion) {
    ASSERT_TRUE(est.Evaluate(0).ok());
    data.Advance();
  }
  EXPECT_GT(est.correlation_estimate(), 0.5);
  EXPECT_LE(est.correlation_estimate(), 1.0);
}

TEST(RepeatedSamplingTest, FewerSamplesThanIndependentUnderCorrelation) {
  // The headline property (Fig. 4-b): with correlated occasions RPT needs
  // fewer total samples per snapshot than INDEP at equal confidence.
  Ar1Database data(8, 400, 50.0, 10.0, 0.9, 30);
  ExactTupleSampler sampler(data.db.get(), Rng(31), nullptr);
  ExactSampleSource source(&sampler);
  ContinuousQuerySpec spec = AvgSpec(0.0, 1.0, 0.95);

  RepeatedSamplingEstimator rpt(spec, data.db.get(), &source, nullptr,
                                nullptr, Rng(32));
  IndependentEstimator indep(spec, data.db.get(), &source, nullptr, nullptr,
                             Rng(33));
  size_t rpt_samples = 0, indep_samples = 0;
  const int occasions = 8;
  for (int k = 0; k < occasions; ++k) {
    Result<SnapshotEstimate> er = rpt.Evaluate(0);
    Result<SnapshotEstimate> ei = indep.Evaluate(0);
    ASSERT_TRUE(er.ok());
    ASSERT_TRUE(ei.ok());
    if (k > 0) {  // Skip the identical bootstrap occasion.
      rpt_samples += er->total_samples;
      indep_samples += ei->total_samples;
    }
    data.Advance();
  }
  EXPECT_LT(rpt_samples, indep_samples);
  // Theory bound: improvement cannot exceed 2x (Eq. 11).
  EXPECT_GT(2 * rpt_samples, indep_samples);
}

TEST(RepeatedSamplingTest, StaysAccurateAcrossOccasions) {
  Ar1Database data(8, 300, 50.0, 10.0, 0.85, 34);
  ExactTupleSampler sampler(data.db.get(), Rng(35), nullptr);
  ExactSampleSource source(&sampler);
  RepeatedSamplingEstimator est(AvgSpec(0.0, 1.0, 0.95), data.db.get(),
                                &source, nullptr, nullptr, Rng(36));
  int within = 0;
  const int occasions = 20;
  for (int k = 0; k < occasions; ++k) {
    Result<SnapshotEstimate> e = est.Evaluate(0);
    ASSERT_TRUE(e.ok());
    if (std::fabs(e->value - data.TrueAvg()) <= 1.0) ++within;
    data.Advance();
  }
  EXPECT_GE(within, occasions * 4 / 5);
}

TEST(RepeatedSamplingTest, RefreshMessagesChargedForRetainedSamples) {
  Ar1Database data(8, 200, 50.0, 10.0, 0.9, 37);
  ExactTupleSampler sampler(data.db.get(), Rng(38), nullptr);
  ExactSampleSource source(&sampler);
  MessageMeter meter;
  RepeatedSamplingEstimator est(AvgSpec(0.0, 1.0, 0.95), data.db.get(),
                                &source, nullptr, &meter, Rng(39));
  ASSERT_TRUE(est.Evaluate(0).ok());
  EXPECT_EQ(meter.refreshes(), 0u);
  data.Advance();
  Result<SnapshotEstimate> e2 = est.Evaluate(0);
  ASSERT_TRUE(e2.ok());
  EXPECT_GE(meter.refreshes(), e2->retained_samples);
}

TEST(RepeatedSamplingTest, DeletedTuplesAreReplaced) {
  Ar1Database data(8, 100, 50.0, 10.0, 0.9, 40);
  ExactTupleSampler sampler(data.db.get(), Rng(41), nullptr);
  ExactSampleSource source(&sampler);
  RepeatedSamplingEstimator est(AvgSpec(0.0, 1.5, 0.95), data.db.get(),
                                &source, nullptr, nullptr, Rng(42));
  ASSERT_TRUE(est.Evaluate(0).ok());
  // Wipe two whole nodes: their retained samples dangle.
  ASSERT_TRUE(data.db->RemoveNode(0).ok());
  ASSERT_TRUE(data.db->RemoveNode(1).ok());
  Result<SnapshotEstimate> e2 = est.Evaluate(2);
  ASSERT_TRUE(e2.ok()) << e2.status();
  EXPECT_GT(e2->fresh_samples, 0u);
}

TEST(RepeatedSamplingTest, ResetForgetsOccasions) {
  Ar1Database data(8, 150, 50.0, 10.0, 0.9, 43);
  ExactTupleSampler sampler(data.db.get(), Rng(44), nullptr);
  ExactSampleSource source(&sampler);
  RepeatedSamplingEstimator est(AvgSpec(0.0, 1.0, 0.95), data.db.get(),
                                &source, nullptr, nullptr, Rng(45));
  ASSERT_TRUE(est.Evaluate(0).ok());
  data.Advance();
  est.Reset();
  Result<SnapshotEstimate> e = est.Evaluate(0);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->retained_samples, 0u);  // Back to the bootstrap occasion.
}

}  // namespace
}  // namespace digest
