// MessageMeter accounting invariants: per-category counts always sum to
// Total() (including at saturation), losses stay out of the total, and
// the checkpoint-restore overwrites behave.
#include "net/message_meter.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace digest {
namespace {

constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();

uint64_t SumOfCategories(const MessageMeter& meter) {
  uint64_t sum = 0;
  bool saturated = false;
  for (size_t i = 0; i < MessageMeter::kNumCategories; ++i) {
    const uint64_t c =
        meter.Count(static_cast<MessageMeter::Category>(i));
    if (kMax - sum < c) saturated = true;
    sum = saturated ? kMax : sum + c;
  }
  return sum;
}

TEST(MessageMeterTest, EveryCategoryCountsTowardTotal) {
  MessageMeter meter;
  // Charge each category a distinct amount through the typed helpers so
  // a helper wired to the wrong slot shows up as a mismatch.
  meter.AddWalkHop(1);
  meter.AddWeightProbe(2);
  meter.AddSampleTransfer(3);
  meter.AddRefresh(4);
  meter.AddPush(5);
  meter.AddRetry(6);
  meter.AddAgentRestart(7);
  meter.AddHedgeLaunch(8);
  meter.AddHedgedDuplicate(9);
  EXPECT_EQ(meter.walk_hops(), 1u);
  EXPECT_EQ(meter.weight_probes(), 2u);
  EXPECT_EQ(meter.sample_transfers(), 3u);
  EXPECT_EQ(meter.refreshes(), 4u);
  EXPECT_EQ(meter.pushes(), 5u);
  EXPECT_EQ(meter.retries(), 6u);
  EXPECT_EQ(meter.agent_restarts(), 7u);
  EXPECT_EQ(meter.hedge_launches(), 8u);
  EXPECT_EQ(meter.hedged_duplicates(), 9u);
  EXPECT_EQ(meter.Total(), 45u);
  EXPECT_EQ(meter.Total(), SumOfCategories(meter));
  EXPECT_EQ(meter.FaultOverhead(), 6u + 7u + 8u + 9u);
}

TEST(MessageMeterTest, LossesAnnotateButDoNotCount) {
  MessageMeter meter;
  meter.AddWalkHop(10);
  meter.AddLoss(3);
  EXPECT_EQ(meter.losses(), 3u);
  EXPECT_EQ(meter.Total(), 10u);
}

TEST(MessageMeterTest, CategorySaturationPropagatesToTotal) {
  MessageMeter meter;
  meter.AddWalkHop(kMax - 1);
  meter.AddWalkHop(5);  // Saturates the category, not wraps.
  EXPECT_EQ(meter.walk_hops(), kMax);
  EXPECT_EQ(meter.Total(), kMax);
  // More traffic in another category cannot wrap the total either.
  meter.AddPush(12345);
  EXPECT_EQ(meter.Total(), kMax);
  EXPECT_EQ(meter.Total(), SumOfCategories(meter));
}

TEST(MessageMeterTest, TotalSaturatesAcrossCategories) {
  MessageMeter meter;
  meter.AddWalkHop(kMax / 2 + 1);
  meter.AddPush(kMax / 2 + 1);
  // Neither category is saturated, but their sum overflows.
  EXPECT_EQ(meter.Total(), kMax);
  EXPECT_EQ(meter.Total(), SumOfCategories(meter));
}

TEST(MessageMeterTest, ResetClearsEverything) {
  MessageMeter meter;
  meter.AddRetry(4);
  meter.AddLoss(2);
  meter.Reset();
  EXPECT_EQ(meter.Total(), 0u);
  EXPECT_EQ(meter.losses(), 0u);
}

TEST(MessageMeterTest, RestoreCountOverwritesExactly) {
  MessageMeter meter;
  meter.AddWalkHop(100);
  meter.RestoreCount(MessageMeter::Category::kWalkHop, 7);
  meter.RestoreCount(MessageMeter::Category::kHedgedDuplicate, 2);
  meter.RestoreLosses(5);
  EXPECT_EQ(meter.walk_hops(), 7u);
  EXPECT_EQ(meter.hedged_duplicates(), 2u);
  EXPECT_EQ(meter.losses(), 5u);
  EXPECT_EQ(meter.Total(), 9u);
}

}  // namespace
}  // namespace digest
