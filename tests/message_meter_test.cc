// MessageMeter accounting invariants: per-category counts always sum to
// Total() (including at saturation), losses stay out of the total, and
// the checkpoint-restore overwrites behave.
#include "net/message_meter.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace digest {
namespace {

constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();

uint64_t SumOfCategories(const MessageMeter& meter) {
  uint64_t sum = 0;
  bool saturated = false;
  for (size_t i = 0; i < MessageMeter::kNumCategories; ++i) {
    const uint64_t c =
        meter.Count(static_cast<MessageMeter::Category>(i));
    if (kMax - sum < c) saturated = true;
    sum = saturated ? kMax : sum + c;
  }
  return sum;
}

TEST(MessageMeterTest, EveryCategoryCountsTowardTotal) {
  MessageMeter meter;
  // Charge each category a distinct amount through the typed helpers so
  // a helper wired to the wrong slot shows up as a mismatch.
  meter.AddWalkHop(1);
  meter.AddWeightProbe(2);
  meter.AddSampleTransfer(3);
  meter.AddRefresh(4);
  meter.AddPush(5);
  meter.AddRetry(6);
  meter.AddAgentRestart(7);
  meter.AddHedgeLaunch(8);
  meter.AddHedgedDuplicate(9);
  EXPECT_EQ(meter.walk_hops(), 1u);
  EXPECT_EQ(meter.weight_probes(), 2u);
  EXPECT_EQ(meter.sample_transfers(), 3u);
  EXPECT_EQ(meter.refreshes(), 4u);
  EXPECT_EQ(meter.pushes(), 5u);
  EXPECT_EQ(meter.retries(), 6u);
  EXPECT_EQ(meter.agent_restarts(), 7u);
  EXPECT_EQ(meter.hedge_launches(), 8u);
  EXPECT_EQ(meter.hedged_duplicates(), 9u);
  EXPECT_EQ(meter.Total(), 45u);
  EXPECT_EQ(meter.Total(), SumOfCategories(meter));
  EXPECT_EQ(meter.FaultOverhead(), 6u + 7u + 8u + 9u);
}

TEST(MessageMeterTest, LossesAnnotateButDoNotCount) {
  MessageMeter meter;
  meter.AddWalkHop(10);
  meter.AddLoss(3);
  EXPECT_EQ(meter.losses(), 3u);
  EXPECT_EQ(meter.Total(), 10u);
}

TEST(MessageMeterTest, CategorySaturationPropagatesToTotal) {
  MessageMeter meter;
  meter.AddWalkHop(kMax - 1);
  meter.AddWalkHop(5);  // Saturates the category, not wraps.
  EXPECT_EQ(meter.walk_hops(), kMax);
  EXPECT_EQ(meter.Total(), kMax);
  // More traffic in another category cannot wrap the total either.
  meter.AddPush(12345);
  EXPECT_EQ(meter.Total(), kMax);
  EXPECT_EQ(meter.Total(), SumOfCategories(meter));
}

TEST(MessageMeterTest, TotalSaturatesAcrossCategories) {
  MessageMeter meter;
  meter.AddWalkHop(kMax / 2 + 1);
  meter.AddPush(kMax / 2 + 1);
  // Neither category is saturated, but their sum overflows.
  EXPECT_EQ(meter.Total(), kMax);
  EXPECT_EQ(meter.Total(), SumOfCategories(meter));
}

TEST(MessageMeterTest, ResetClearsEverything) {
  MessageMeter meter;
  meter.AddRetry(4);
  meter.AddLoss(2);
  meter.Reset();
  EXPECT_EQ(meter.Total(), 0u);
  EXPECT_EQ(meter.losses(), 0u);
}

TEST(MessageMeterTest, RestoreCountOverwritesExactly) {
  MessageMeter meter;
  meter.AddWalkHop(100);
  meter.RestoreCount(MessageMeter::Category::kWalkHop, 7);
  meter.RestoreCount(MessageMeter::Category::kHedgedDuplicate, 2);
  meter.RestoreLosses(5);
  EXPECT_EQ(meter.walk_hops(), 7u);
  EXPECT_EQ(meter.hedged_duplicates(), 2u);
  EXPECT_EQ(meter.losses(), 5u);
  EXPECT_EQ(meter.Total(), 9u);
}

// ---------------------------------------------------------------------
// Merge algebra. The parallel walk executor accumulates each walk's
// messages into a thread-local meter and folds them into the shared
// meter post-barrier with Merge; determinism of the fold requires Merge
// to be commutative and associative (including at saturation), which
// these property tests pin down.
// ---------------------------------------------------------------------

/// Deterministic pseudo-random meter: charges every category (and
/// losses) an amount derived from `seed`, occasionally near-saturated.
MessageMeter ArbitraryMeter(uint64_t seed) {
  MessageMeter meter;
  uint64_t x = seed * 0x9e3779b97f4a7c15ULL + 1;
  for (size_t i = 0; i < MessageMeter::kNumCategories; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    // Roughly 1 in 8 slots sits within a few units of saturation so
    // merged sums routinely cross UINT64_MAX.
    const uint64_t amount = (x % 8 == 0) ? kMax - (x % 5) : x % 100000;
    meter.Add(static_cast<MessageMeter::Category>(i), amount);
  }
  x ^= x << 13;
  x ^= x >> 7;
  meter.AddLoss(x % 1000);
  return meter;
}

void ExpectMetersEqual(const MessageMeter& a, const MessageMeter& b) {
  for (size_t i = 0; i < MessageMeter::kNumCategories; ++i) {
    const auto c = static_cast<MessageMeter::Category>(i);
    EXPECT_EQ(a.Count(c), b.Count(c)) << "category " << i;
  }
  EXPECT_EQ(a.losses(), b.losses());
}

TEST(MessageMeterTest, MergeAddsEveryCategoryAndLosses) {
  MessageMeter a;
  a.AddWalkHop(3);
  a.AddLoss(1);
  MessageMeter b;
  b.AddWalkHop(4);
  b.AddWeightProbe(7);
  b.AddLoss(2);
  a.Merge(b);
  EXPECT_EQ(a.Count(MessageMeter::Category::kWalkHop), 7u);
  EXPECT_EQ(a.Count(MessageMeter::Category::kWeightProbe), 7u);
  EXPECT_EQ(a.losses(), 3u);
  // The merged-from meter is untouched.
  EXPECT_EQ(b.Count(MessageMeter::Category::kWalkHop), 4u);
}

TEST(MessageMeterTest, MergeIsCommutative) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    MessageMeter ab = ArbitraryMeter(seed);
    ab.Merge(ArbitraryMeter(seed + 1000));
    MessageMeter ba = ArbitraryMeter(seed + 1000);
    ba.Merge(ArbitraryMeter(seed));
    ExpectMetersEqual(ab, ba);
  }
}

TEST(MessageMeterTest, MergeIsAssociative) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    // (a + b) + c
    MessageMeter left = ArbitraryMeter(seed);
    left.Merge(ArbitraryMeter(seed + 1000));
    left.Merge(ArbitraryMeter(seed + 2000));
    // a + (b + c)
    MessageMeter bc = ArbitraryMeter(seed + 1000);
    bc.Merge(ArbitraryMeter(seed + 2000));
    MessageMeter right = ArbitraryMeter(seed);
    right.Merge(bc);
    ExpectMetersEqual(left, right);
  }
}

TEST(MessageMeterTest, MergeSaturatesPerCategory) {
  MessageMeter a;
  a.AddWalkHop(kMax - 1);
  MessageMeter b;
  b.AddWalkHop(5);
  b.AddRefresh(2);
  a.Merge(b);
  EXPECT_EQ(a.Count(MessageMeter::Category::kWalkHop), kMax);
  EXPECT_EQ(a.Count(MessageMeter::Category::kRefresh), 2u);
  // Saturation is absorbing: further merges keep the slot pinned while
  // other slots keep counting.
  a.Merge(b);
  EXPECT_EQ(a.Count(MessageMeter::Category::kWalkHop), kMax);
  EXPECT_EQ(a.Count(MessageMeter::Category::kRefresh), 4u);
}

TEST(MessageMeterTest, MergeOfEmptyMeterIsIdentity) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    MessageMeter a = ArbitraryMeter(seed);
    const MessageMeter before = a;
    a.Merge(MessageMeter());
    ExpectMetersEqual(a, before);
    // Empty + a == a as well.
    MessageMeter empty;
    empty.Merge(before);
    ExpectMetersEqual(empty, before);
  }
}

}  // namespace
}  // namespace digest
