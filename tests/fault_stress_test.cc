// Full-engine robustness battery: sweeps message-loss and agent-drop
// rates over ring / mesh / power-law overlays and checks that the
// (ε, p) contract degrades gracefully — wider intervals, honest
// degraded flags — with no tick ever failing.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "db/p2p_database.h"
#include "net/fault_plan.h"
#include "net/topology.h"
#include "numeric/rng.h"
#include "workload/experiment.h"
#include "workload/workload.h"

namespace digest {
namespace {

/// Static-membership workload over an arbitrary topology: every node
/// hosts kTuplesPerNode tuples whose single attribute follows an AR(1)
/// process, so ground truth drifts while the overlay stays fixed —
/// isolating the injected faults from churn effects.
class StaticDriftWorkload : public Workload {
 public:
  static constexpr size_t kTuplesPerNode = 8;

  StaticDriftWorkload(Graph graph, uint64_t seed)
      : graph_(std::move(graph)),
        rng_(seed),
        db_(std::make_unique<P2PDatabase>(
            Schema::Create({"load"}).value())) {
    for (NodeId node : graph_.LiveNodes()) {
      (void)db_->AddNode(node);
      LocalStore* store = db_->StoreAt(node).value();
      for (size_t i = 0; i < kTuplesPerNode; ++i) {
        Entry entry;
        entry.node = node;
        entry.value = rng_.NextGaussian(50.0, 10.0);
        entry.id = store->Insert({entry.value});
        entries_.push_back(entry);
      }
    }
  }

  Graph& graph() override { return graph_; }
  const Graph& graph() const override { return graph_; }
  P2PDatabase& db() override { return *db_; }
  const P2PDatabase& db() const override { return *db_; }
  const char* attribute() const override { return "load"; }
  int64_t now() const override { return now_; }

  Status Advance() override {
    ++now_;
    for (Entry& entry : entries_) {
      entry.value =
          50.0 + 0.8 * (entry.value - 50.0) + rng_.NextGaussian(0.0, 2.0);
      DIGEST_ASSIGN_OR_RETURN(LocalStore * store, db_->StoreAt(entry.node));
      DIGEST_RETURN_IF_ERROR(
          store->UpdateAttribute(entry.id, 0, entry.value));
    }
    return Status::OK();
  }

 private:
  struct Entry {
    NodeId node = kInvalidNode;
    LocalTupleId id = 0;
    double value = 0.0;
  };

  Graph graph_;
  Rng rng_;
  std::unique_ptr<P2PDatabase> db_;
  std::vector<Entry> entries_;
  int64_t now_ = 0;
};

Graph MakeTopology(const std::string& name) {
  if (name == "ring") return MakeRing(60).value();
  if (name == "mesh") return MakeMesh(8, 8).value();
  Rng rng(2024);
  return MakeBarabasiAlbert(80, 3, rng).value();
}

constexpr size_t kTicks = 20;

Result<RunResult> RunStress(const std::string& topology, double loss,
                            double drop, FaultPlanConfig extra = {}) {
  StaticDriftWorkload workload(MakeTopology(topology), /*seed=*/777);
  DIGEST_ASSIGN_OR_RETURN(
      const ContinuousQuerySpec spec,
      ContinuousQuerySpec::Create("SELECT AVG(load) FROM R",
                                  PrecisionSpec{1.0, 4.0, 0.9}));
  FaultPlanConfig config = extra;
  config.message_loss = loss;
  config.agent_drop = drop;
  DIGEST_RETURN_IF_ERROR(config.Validate());
  FaultPlan plan(config, /*seed=*/4242);
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kAll;
  options.estimator = EstimatorKind::kRepeated;
  options.sampling_options.walk_length = 16;
  options.sampling_options.reset_length = 4;
  options.fault_plan = &plan;
  return RunEngineExperiment(workload, spec, options, kTicks, /*seed=*/11);
}

void CheckSweep(const std::string& topology) {
  for (double loss : {0.0, 0.05, 0.10}) {
    for (double drop : {0.0, 0.05}) {
      SCOPED_TRACE(topology + " loss=" + std::to_string(loss) +
                   " drop=" + std::to_string(drop));
      Result<RunResult> run = RunStress(topology, loss, drop);
      // Every tick must produce an answer: a fault never fails the run.
      ASSERT_TRUE(run.ok());
      EXPECT_EQ(run->reported.size(), kTicks);
      EXPECT_EQ(run->ci_halfwidths.size(), kTicks);
      if (loss == 0.0 && drop == 0.0) {
        // The fault-free lane of the sweep is the control: nothing
        // injected, nothing degraded, no retry overhead.
        EXPECT_EQ(run->degraded_ticks, 0u);
        EXPECT_EQ(run->stats.degraded_ticks, 0u);
        EXPECT_EQ(run->meter.losses(), 0u);
        EXPECT_EQ(run->meter.FaultOverhead(), 0u);
      } else if (loss > 0.0) {
        // Faults really were exercised, and every loss was retried.
        EXPECT_GT(run->meter.losses(), 0u);
        EXPECT_GT(run->meter.retries(), 0u);
      }
      // The widened per-tick contract (max(ε, ci[t]) + δ) holds for a
      // clear majority of ticks even at 10% loss; p = 0.9 with modest
      // sample sizes justifies a conservative floor.
      EXPECT_GE(run->widened_precision.within_tolerance_fraction, 0.5);
      // Degraded ticks never report an interval tighter than ε.
      for (size_t t = 0; t < run->ci_halfwidths.size(); ++t) {
        EXPECT_GE(run->ci_halfwidths[t], 0.0);
      }
    }
  }
}

TEST(FaultStressTest, RingSweepAnswersEveryTickWithinWidenedContract) {
  CheckSweep("ring");
}

TEST(FaultStressTest, MeshSweepAnswersEveryTickWithinWidenedContract) {
  CheckSweep("mesh");
}

TEST(FaultStressTest, PowerLawSweepAnswersEveryTickWithinWidenedContract) {
  CheckSweep("power-law");
}

TEST(FaultStressTest, StallsAndStaleProbesStillAnswerEveryTick) {
  FaultPlanConfig extra;
  extra.stall_fraction = 0.2;
  extra.stall_every = 8;
  extra.stall_length = 2;
  extra.stale_probe = 0.2;
  extra.edge_spread = 0.5;
  Result<RunResult> run = RunStress("mesh", 0.05, 0.02, extra);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->reported.size(), kTicks);
  EXPECT_GE(run->widened_precision.within_tolerance_fraction, 0.5);
}

}  // namespace
}  // namespace digest
