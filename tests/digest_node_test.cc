#include "core/digest_node.h"

#include <gtest/gtest.h>

#include <cmath>

#include "net/topology.h"

namespace digest {
namespace {

struct Fixture {
  Graph graph;
  std::unique_ptr<P2PDatabase> db;

  Fixture() {
    Rng topo(1);
    graph = MakeBarabasiAlbert(30, 3, topo).value();
    db = std::make_unique<P2PDatabase>(
        Schema::Create({"cpu", "memory"}).value());
    Rng data(2);
    for (NodeId node : graph.LiveNodes()) {
      EXPECT_TRUE(db->AddNode(node).ok());
      for (int i = 0; i < 20; ++i) {
        db->StoreAt(node).value()->Insert(
            {data.NextGaussian(4.0, 1.0), data.NextGaussian(16.0, 4.0)});
      }
    }
  }
};

ContinuousQuerySpec Spec(const char* text, double eps) {
  return ContinuousQuerySpec::Create(text, PrecisionSpec{0.5, eps, 0.95})
      .value();
}

DigestEngineOptions FastOptions() {
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kAll;
  options.estimator = EstimatorKind::kIndependent;
  options.sampler = SamplerKind::kTwoStageMcmc;
  options.sampling_options.walk_length = 40;
  options.sampling_options.reset_length = 10;
  return options;
}

TEST(DigestNodeTest, CreateValidatesNode) {
  Fixture f;
  EXPECT_FALSE(
      DigestNode::Create(&f.graph, f.db.get(), 999, Rng(3), nullptr).ok());
  EXPECT_TRUE(
      DigestNode::Create(&f.graph, f.db.get(), 0, Rng(3), nullptr).ok());
}

TEST(DigestNodeTest, MultipleConcurrentQueries) {
  Fixture f;
  MessageMeter meter;
  auto node = DigestNode::Create(&f.graph, f.db.get(), 0, Rng(4), &meter,
                                 FastOptions())
                  .value();
  const QueryId cpu_query =
      node->IssueQuery(Spec("SELECT AVG(cpu) FROM R", 0.5)).value();
  const QueryId mem_query =
      node->IssueQuery(Spec("SELECT AVG(memory) FROM R", 1.0)).value();
  EXPECT_EQ(node->active_queries(), 2u);
  EXPECT_NE(cpu_query, mem_query);

  auto results = node->Tick(1).value();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& [id, tick] : results) {
    EXPECT_TRUE(tick.snapshot_executed) << "query " << id;
  }
  EXPECT_NEAR(node->engine(cpu_query).value()->reported_value(), 4.0, 0.7);
  EXPECT_NEAR(node->engine(mem_query).value()->reported_value(), 16.0,
              1.5);
}

TEST(DigestNodeTest, SharedOperatorMakesSecondQueryCheaper) {
  // Warm agents are shared: a second query's first occasion should cost
  // clearly less than the first query's first occasion.
  Fixture f;
  MessageMeter meter;
  auto node = DigestNode::Create(&f.graph, f.db.get(), 0, Rng(5), &meter,
                                 FastOptions())
                  .value();
  const QueryId q1 =
      node->IssueQuery(Spec("SELECT AVG(cpu) FROM R", 0.5)).value();
  ASSERT_TRUE(node->Tick(1).ok());
  const uint64_t after_first = meter.Total();
  const size_t q1_samples =
      node->engine(q1).value()->stats().total_samples;

  const QueryId q2 =
      node->IssueQuery(Spec("SELECT AVG(cpu) FROM R", 0.5)).value();
  ASSERT_TRUE(node->CancelQuery(q1).ok());
  ASSERT_TRUE(node->Tick(2).ok());
  const uint64_t second_cost = meter.Total() - after_first;
  const size_t q2_samples =
      node->engine(q2).value()->stats().total_samples;
  // Similar sample counts, but the second run walks only reset lengths.
  EXPECT_NEAR(static_cast<double>(q2_samples),
              static_cast<double>(q1_samples),
              0.5 * static_cast<double>(q1_samples));
  EXPECT_LT(second_cost, after_first / 2);
}

TEST(DigestNodeTest, CancelQuery) {
  Fixture f;
  auto node = DigestNode::Create(&f.graph, f.db.get(), 0, Rng(6), nullptr,
                                 FastOptions())
                  .value();
  const QueryId id =
      node->IssueQuery(Spec("SELECT AVG(cpu) FROM R", 1.0)).value();
  EXPECT_TRUE(node->CancelQuery(id).ok());
  EXPECT_EQ(node->active_queries(), 0u);
  EXPECT_EQ(node->CancelQuery(id).code(), StatusCode::kNotFound);
  EXPECT_EQ(node->engine(id).status().code(), StatusCode::kNotFound);
  // Ticking with no queries is a no-op.
  EXPECT_TRUE(node->Tick(1).ok());
  EXPECT_TRUE(node->Tick(2).value().empty());
}

TEST(DigestNodeTest, MismatchedSamplerRejected) {
  Fixture f;
  auto node = DigestNode::Create(&f.graph, f.db.get(), 0, Rng(7), nullptr,
                                 FastOptions())
                  .value();
  DigestEngineOptions exact = FastOptions();
  exact.sampler = SamplerKind::kExactCentral;
  EXPECT_EQ(node->IssueQuery(Spec("SELECT AVG(cpu) FROM R", 1.0), exact)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(DigestNodeTest, PerQueryOptionsRespected) {
  Fixture f;
  auto node = DigestNode::Create(&f.graph, f.db.get(), 0, Rng(8), nullptr,
                                 FastOptions())
                  .value();
  DigestEngineOptions rpt = FastOptions();
  rpt.estimator = EstimatorKind::kRepeated;
  const QueryId id =
      node->IssueQuery(Spec("SELECT AVG(memory) FROM R", 1.0), rpt)
          .value();
  ASSERT_TRUE(node->Tick(1).ok());
  ASSERT_TRUE(node->Tick(2).ok());
  EXPECT_GT(node->engine(id).value()->stats().retained_samples, 0u);
}

}  // namespace
}  // namespace digest
