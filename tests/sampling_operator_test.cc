#include "sampling/sampling_operator.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/topology.h"
#include "sampling/metropolis.h"

namespace digest {
namespace {

TEST(SamplingOperatorTest, AutoLengthsScaleWithSize) {
  Rng rng(1);
  Result<Graph> small = MakeRing(8);
  Result<Graph> large = MakeBarabasiAlbert(512, 2, rng);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  SamplingOperator op_small(&*small, UniformWeight(), Rng(1), nullptr);
  SamplingOperator op_large(&*large, UniformWeight(), Rng(1), nullptr);
  EXPECT_LT(op_small.EffectiveWalkLength(), op_large.EffectiveWalkLength());
  EXPECT_LT(op_small.EffectiveResetLength(),
            op_small.EffectiveWalkLength());
}

TEST(SamplingOperatorTest, ExplicitLengthsRespected) {
  Result<Graph> g = MakeRing(8);
  ASSERT_TRUE(g.ok());
  SamplingOperatorOptions options;
  options.walk_length = 77;
  options.reset_length = 9;
  SamplingOperator op(&*g, UniformWeight(), Rng(2), nullptr, options);
  EXPECT_EQ(op.EffectiveWalkLength(), 77u);
  EXPECT_EQ(op.EffectiveResetLength(), 9u);
}

TEST(SamplingOperatorTest, SamplesAreLiveNodes) {
  Rng rng(3);
  Result<Graph> g = MakeBarabasiAlbert(40, 2, rng);
  ASSERT_TRUE(g.ok());
  SamplingOperator op(&*g, UniformWeight(), Rng(3), nullptr);
  for (int i = 0; i < 50; ++i) {
    Result<NodeId> node = op.SampleNode(0);
    ASSERT_TRUE(node.ok());
    EXPECT_TRUE(g->HasNode(*node));
  }
}

TEST(SamplingOperatorTest, EmptyGraphFails) {
  Graph g;
  SamplingOperator op(&g, UniformWeight(), Rng(4), nullptr);
  EXPECT_EQ(op.SampleNode(0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SamplingOperatorTest, DeadOriginFallsBackToRandomNode) {
  Result<Graph> g = MakeComplete(6);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(g->RemoveNode(0).ok());
  SamplingOperator op(&*g, UniformWeight(), Rng(5), nullptr);
  Result<NodeId> node = op.SampleNode(0);
  ASSERT_TRUE(node.ok());
  EXPECT_TRUE(g->HasNode(*node));
}

TEST(SamplingOperatorTest, WarmWalksCostLessThanColdWalks) {
  Rng rng(6);
  Result<Graph> g = MakeBarabasiAlbert(64, 3, rng);
  ASSERT_TRUE(g.ok());

  MessageMeter warm_meter;
  SamplingOperatorOptions warm_options;
  warm_options.warm_walks = true;
  SamplingOperator warm(&*g, UniformWeight(), Rng(7), &warm_meter,
                        warm_options);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(warm.SampleNode(0).ok());

  MessageMeter cold_meter;
  SamplingOperatorOptions cold_options;
  cold_options.warm_walks = false;
  SamplingOperator cold(&*g, UniformWeight(), Rng(7), &cold_meter,
                        cold_options);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(cold.SampleNode(0).ok());

  EXPECT_LT(warm_meter.Total(), cold_meter.Total());
}

TEST(SamplingOperatorTest, BatchReturnsRequestedCount) {
  Rng rng(8);
  Result<Graph> g = MakeBarabasiAlbert(32, 2, rng);
  ASSERT_TRUE(g.ok());
  SamplingOperator op(&*g, UniformWeight(), Rng(8), nullptr);
  Result<std::vector<NodeId>> nodes = op.SampleNodes(0, 17);
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(nodes->size(), 17u);
}

TEST(SamplingOperatorTest, EverySampleChargesATransferMessage) {
  Result<Graph> g = MakeComplete(5);
  ASSERT_TRUE(g.ok());
  MessageMeter meter;
  SamplingOperator op(&*g, UniformWeight(), Rng(9), &meter);
  ASSERT_TRUE(op.SampleNodes(0, 12).ok());
  EXPECT_EQ(meter.sample_transfers(), 12u);
}

// The central statistical property (Theorem 2): the empirical node
// distribution of operator samples converges to w_v / Σ w_u, for uniform
// and nonuniform weights on different topologies.
struct DistCase {
  int topology;  // 0 ring, 1 mesh, 2 BA.
  int weight;    // 0 uniform, 1 id-proportional.
};

class OperatorDistribution
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OperatorDistribution, EmpiricalMatchesTarget) {
  const auto [topology, weight_kind] = GetParam();
  Rng rng(100 + topology * 10 + weight_kind);
  Result<Graph> g = (topology == 0)   ? MakeRing(12)
                    : (topology == 1) ? MakeMesh(3, 4)
                                      : MakeBarabasiAlbert(12, 2, rng);
  ASSERT_TRUE(g.ok());
  WeightFn weight = (weight_kind == 0)
                        ? UniformWeight()
                        : WeightFn([](NodeId v) { return 1.0 + v; });
  Result<ForwardingMatrix> fm = BuildForwardingMatrix(*g, weight);
  ASSERT_TRUE(fm.ok());

  SamplingOperatorOptions options;
  // Walk long enough to actually mix on the slowest case (the ring).
  options.walk_length = 400;
  options.reset_length = 120;
  SamplingOperator op(&*g, weight, Rng(42 + topology), nullptr, options);

  const int n_samples = 30000;
  std::vector<double> counts(g->NextId(), 0.0);
  Result<std::vector<NodeId>> nodes = op.SampleNodes(0, n_samples);
  ASSERT_TRUE(nodes.ok());
  for (NodeId v : *nodes) counts[v] += 1.0;

  std::vector<double> empirical(fm->nodes.size());
  for (size_t r = 0; r < fm->nodes.size(); ++r) {
    empirical[r] = counts[fm->nodes[r]] / n_samples;
  }
  Result<double> tv = TotalVariationDistance(empirical, fm->pi);
  ASSERT_TRUE(tv.ok());
  EXPECT_LT(*tv, 0.035) << "topology=" << topology
                        << " weight=" << weight_kind;
}

INSTANTIATE_TEST_SUITE_P(Sweep, OperatorDistribution,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(0, 1)));

}  // namespace
}  // namespace digest
