// Acceptance battery for the peer-health layer under correlated
// partition/heal episodes: quarantine-aware routing must keep the
// un-widened (ε, p) coverage at or above the binomial floor while an
// ablated run (breakers disabled, everything else identical) breaches
// it; the health state must be bit-identical across worker-thread
// counts and across a mid-partition checkpoint/restore. Runs under
// ASan/UBSan and TSan in CI (the partition battery).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/metrics.h"
#include "db/p2p_database.h"
#include "net/fault_plan.h"
#include "net/message_meter.h"
#include "net/peer_health.h"
#include "net/topology.h"
#include "numeric/rng.h"
#include "workload/workload.h"

namespace digest {
namespace {

/// Static-membership workload whose truth TRENDS: every tuple follows a
/// random walk with a common positive drift, so the exact aggregate
/// moves steadily and a session that answers from a stale held value
/// accumulates error tick over tick. That is exactly the failure mode
/// partitions induce — the ablated run keeps timing out and holding,
/// the quarantine-aware run routes around the dead component and keeps
/// sampling fresh.
class TrendingWorkload : public Workload {
 public:
  static constexpr size_t kTuplesPerNode = 8;
  static constexpr double kDrift = 1.5;  ///< Truth moves this much per tick.

  TrendingWorkload(Graph graph, uint64_t seed)
      : graph_(std::move(graph)),
        rng_(seed),
        db_(std::make_unique<P2PDatabase>(
            Schema::Create({"load"}).value())) {
    for (NodeId node : graph_.LiveNodes()) {
      (void)db_->AddNode(node);
      LocalStore* store = db_->StoreAt(node).value();
      for (size_t i = 0; i < kTuplesPerNode; ++i) {
        Entry entry;
        entry.node = node;
        entry.value = rng_.NextGaussian(50.0, 6.0);
        entry.id = store->Insert({entry.value});
        entries_.push_back(entry);
      }
    }
  }

  Graph& graph() override { return graph_; }
  const Graph& graph() const override { return graph_; }
  P2PDatabase& db() override { return *db_; }
  const P2PDatabase& db() const override { return *db_; }
  const char* attribute() const override { return "load"; }
  int64_t now() const override { return now_; }

  Status Advance() override {
    ++now_;
    for (Entry& entry : entries_) {
      entry.value += kDrift + rng_.NextGaussian(0.0, 0.5);
      DIGEST_ASSIGN_OR_RETURN(LocalStore * store, db_->StoreAt(entry.node));
      DIGEST_RETURN_IF_ERROR(
          store->UpdateAttribute(entry.id, 0, entry.value));
    }
    return Status::OK();
  }

 private:
  struct Entry {
    NodeId node = kInvalidNode;
    LocalTupleId id = 0;
    double value = 0.0;
  };

  Graph graph_;
  Rng rng_;
  std::unique_ptr<P2PDatabase> db_;
  std::vector<Entry> entries_;
  int64_t now_ = 0;
};

constexpr uint64_t kWorkloadSeed = 909;
constexpr uint64_t kFaultSeed = 2026;
constexpr uint64_t kEngineSeed = 5;
constexpr size_t kTicks = 48;

/// Seeded partition/heal schedule: every 16 ticks a fresh episode
/// splits the overlay in two (a different hash seam each time) for 8
/// ticks, on top of mild heterogeneous, asymmetric background loss.
FaultPlanConfig PartitionFaults() {
  FaultPlanConfig faults;
  faults.message_loss = 0.02;
  faults.edge_spread = 0.5;
  faults.loss_asymmetry = 0.5;
  faults.partition_every = 16;
  faults.partition_length = 8;
  faults.partition_components = 2;
  return faults;
}

struct DriveConfig {
  bool breakers = true;    ///< false = ablated control.
  size_t num_threads = 0;  ///< 0 = serial path.
  int kill_after = -1;     ///< Checkpoint/kill/restore after this tick.
  size_t ticks = kTicks;
};

struct DriveResult {
  std::vector<double> reported;
  std::vector<double> truth;
  std::vector<double> ci;
  size_t degraded_ticks = 0;
  double coverage = 0.0;  ///< Un-widened |err| <= eps + delta fraction.
  SessionHealth final_health = SessionHealth::kHealthy;
  uint64_t opens = 0;
  uint64_t reopens = 0;
  uint64_t closes = 0;
  double flap_rate = 0.0;
  std::string health_summary;  ///< PeerHealthMonitor::SummaryJson().
  std::string health_state;    ///< AppendStateJson(SaveState()).
};

Result<DriveResult> Drive(const DriveConfig& cfg) {
  TrendingWorkload workload(MakeMesh(11, 11).value(), kWorkloadSeed);
  DIGEST_ASSIGN_OR_RETURN(
      const ContinuousQuerySpec spec,
      ContinuousQuerySpec::Create("SELECT AVG(load) FROM R",
                                  PrecisionSpec{2.0, 1.5, 0.9}));
  FaultPlan plan(PartitionFaults(), kFaultSeed);

  PeerHealthConfig health_config;
  health_config.breakers_enabled = cfg.breakers;
  PeerHealthMonitor monitor(health_config);

  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kAll;
  options.estimator = EstimatorKind::kIndependent;
  options.sampler = SamplerKind::kTwoStageMcmc;
  options.num_threads = cfg.num_threads;
  options.sampling_options.walk_length = 16;
  options.sampling_options.reset_length = 4;
  // A tight hop budget and no partial finalization make budget burn
  // the failure mode the breakers fight: a walk that keeps proposing
  // cross-seam neighbors pays retry + backoff for every abandoned
  // transmission and blows the 2x budget, failing the occasion, and
  // the INDEP session then holds its previous value while the truth
  // trends away. Quarantine-aware routing stops proposing the dead
  // half and stays comfortably inside the same budget.
  options.sampling_options.retry.hop_budget_factor = 2.0;
  options.estimator_options.allow_partial = false;
  options.fault_plan = &plan;
  options.health = &monitor;

  // The session starts on a healthy overlay: the 16/8 partition
  // schedule's first window covers ticks 0..7, and a session that
  // cannot even bootstrap has no previous result to hold — a different
  // failure mode than the steady-state one under test. Advancing the
  // workload past the first window puts the engine's first occasions
  // on healed ground (ticks 9..15) and the later windows (16..23,
  // 32..39, 48..55) mid-session.
  for (int warm = 0; warm < 8; ++warm) {
    DIGEST_RETURN_IF_ERROR(workload.Advance());
  }

  DriveResult out;
  MessageMeter meter;
  Rng rng(kEngineSeed);
  DIGEST_ASSIGN_OR_RETURN(NodeId querying,
                          workload.graph().RandomLiveNode(rng));
  workload.ProtectNode(querying);
  DIGEST_ASSIGN_OR_RETURN(
      std::unique_ptr<DigestEngine> engine,
      DigestEngine::Create(&workload.graph(), &workload.db(), spec,
                           querying, rng.Fork(), &meter, options));
  for (size_t t = 0; t < cfg.ticks; ++t) {
    DIGEST_RETURN_IF_ERROR(workload.Advance());
    plan.set_now(workload.now());
    DIGEST_ASSIGN_OR_RETURN(const double oracle,
                            workload.db().ExactAggregate(spec.query));
    DIGEST_ASSIGN_OR_RETURN(EngineTickResult tick,
                            engine->Tick(workload.now()));
    out.reported.push_back(tick.reported_value);
    out.truth.push_back(oracle);
    out.ci.push_back(tick.ci_halfwidth);
    if (tick.degraded) ++out.degraded_ticks;
    if (static_cast<int>(t) == cfg.kill_after) {
      // Kill mid-run: checkpoint, drop the engine, wipe the monitor (a
      // fresh process starts with a blank one), reconstruct, restore.
      DIGEST_ASSIGN_OR_RETURN(std::string blob, engine->Checkpoint());
      engine.reset();
      monitor.Reset();
      meter.Reset();
      Rng fresh_rng(kEngineSeed);
      DIGEST_ASSIGN_OR_RETURN(NodeId fresh_querying,
                              workload.graph().RandomLiveNode(fresh_rng));
      DIGEST_ASSIGN_OR_RETURN(
          engine, DigestEngine::Create(&workload.graph(), &workload.db(),
                                       spec, fresh_querying,
                                       fresh_rng.Fork(), &meter, options));
      DIGEST_RETURN_IF_ERROR(engine->Restore(blob));
    }
  }
  DIGEST_ASSIGN_OR_RETURN(
      const PrecisionReport report,
      EvaluatePrecision(out.reported, out.truth, spec.precision));
  out.coverage = report.within_tolerance_fraction;
  out.final_health = engine->health();
  out.opens = monitor.opens();
  out.reopens = monitor.reopens();
  out.closes = monitor.closes();
  out.flap_rate = monitor.FlapRate();
  out.health_summary = monitor.SummaryJson();
  PeerHealthMonitor::AppendStateJson(monitor.SaveState(),
                                     &out.health_state);
  return out;
}

/// Binomial floor for the (ε, p) contract over n occasions — the same
/// two-sigma allowance the precision auditor grants
/// (audit::CoverageFloor): p minus two standard errors of a p-coin
/// estimate from n flips.
double CoverageFloor(double p, size_t n) {
  return p - 2.0 * std::sqrt(p * (1.0 - p) / static_cast<double>(n));
}

TEST(PartitionTest, QuarantineAwareRoutingHoldsCoverageAblationBreaches) {
  DriveConfig aware_cfg;
  Result<DriveResult> aware = Drive(aware_cfg);
  ASSERT_TRUE(aware.ok()) << aware.status().message();

  DriveConfig ablated_cfg;
  ablated_cfg.breakers = false;
  Result<DriveResult> ablated = Drive(ablated_cfg);
  ASSERT_TRUE(ablated.ok()) << ablated.status().message();

  const double floor = CoverageFloor(0.9, kTicks);

  // The scenario is non-trivial on both sides: the aware run actually
  // opened breakers, the ablated run never did.
  EXPECT_GT(aware->opens, 0u);
  EXPECT_EQ(ablated->opens, 0u);

  // The robustness headline: same faults, same seeds, same engine —
  // quarantine-aware routing meets the binomial coverage floor, the
  // ablation breaches it.
  EXPECT_GE(aware->coverage, floor)
      << "aware coverage " << aware->coverage << " vs floor " << floor
      << " (degraded " << aware->degraded_ticks << "/" << kTicks << ")";
  EXPECT_LT(ablated->coverage, floor)
      << "ablated coverage " << ablated->coverage << " vs floor " << floor
      << " (degraded " << ablated->degraded_ticks << "/" << kTicks << ")";

  // Mechanism check, not just outcome: routing around the dead
  // component means fewer ticks spent degraded-holding a stale value.
  EXPECT_LT(aware->degraded_ticks, ablated->degraded_ticks);
  // Breakers hold rather than bounce (the health_report.py gate, at
  // test scale).
  EXPECT_LE(aware->flap_rate, 0.5)
      << "opens=" << aware->opens << " reopens=" << aware->reopens;
}

TEST(PartitionTest, HealthStateBitIdenticalAcrossThreadCounts) {
  DriveConfig cfg;
  cfg.num_threads = 1;
  Result<DriveResult> reference = Drive(cfg);
  ASSERT_TRUE(reference.ok()) << reference.status().message();
  ASSERT_GT(reference->opens, 0u)
      << "no breaker ever opened: the comparison would be vacuous";

  for (size_t threads : {4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    cfg.num_threads = threads;
    Result<DriveResult> run = Drive(cfg);
    ASSERT_TRUE(run.ok()) << run.status().message();
    // Byte-identical health state: same peers, same breaker ladder
    // positions, same counters — the walk-index-ordered fold leaves no
    // room for scheduling to leak in.
    EXPECT_EQ(reference->health_state, run->health_state);
    EXPECT_EQ(reference->health_summary, run->health_summary);
    // And the steered estimates agree exactly, tick for tick.
    ASSERT_EQ(reference->reported.size(), run->reported.size());
    for (size_t i = 0; i < reference->reported.size(); ++i) {
      EXPECT_EQ(reference->reported[i], run->reported[i]) << "tick " << i;
      EXPECT_EQ(reference->ci[i], run->ci[i]) << "tick " << i;
    }
    EXPECT_EQ(reference->degraded_ticks, run->degraded_ticks);
    EXPECT_EQ(reference->final_health, run->final_health);
  }
}

TEST(PartitionTest, CheckpointRestoreMidPartitionIsBitIdentical) {
  // Loop index 26 is workload tick 35 — inside the 32..39 partition
  // window of the 16/8 schedule: breakers are open, trial windows are
  // pending, and the quarantine picture is non-trivial at kill time.
  DriveConfig uninterrupted_cfg;
  Result<DriveResult> uninterrupted = Drive(uninterrupted_cfg);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status().message();

  DriveConfig restored_cfg;
  restored_cfg.kill_after = 26;
  Result<DriveResult> restored = Drive(restored_cfg);
  ASSERT_TRUE(restored.ok()) << restored.status().message();

  ASSERT_GT(uninterrupted->opens, 0u);

  // The restored session continues exactly where the killed one left
  // off: same reported series, same degraded ticks, and a byte-
  // identical final health state — quarantine survived the restart.
  ASSERT_EQ(uninterrupted->reported.size(), restored->reported.size());
  for (size_t i = 0; i < uninterrupted->reported.size(); ++i) {
    EXPECT_EQ(uninterrupted->reported[i], restored->reported[i])
        << "tick " << i;
    EXPECT_EQ(uninterrupted->ci[i], restored->ci[i]) << "tick " << i;
  }
  EXPECT_EQ(uninterrupted->degraded_ticks, restored->degraded_ticks);
  EXPECT_EQ(uninterrupted->health_state, restored->health_state);
  EXPECT_EQ(uninterrupted->health_summary, restored->health_summary);
  EXPECT_EQ(uninterrupted->final_health, restored->final_health);
}

TEST(PartitionTest, CheckpointWithoutMonitorRejectsMonitoredBlob) {
  // A blob checkpointed WITH a health section must not restore into an
  // engine running WITHOUT a monitor (and vice versa): silently
  // dropping quarantine state on restore would un-quarantine every
  // peer without anyone noticing.
  TrendingWorkload workload(MakeMesh(6, 6).value(), kWorkloadSeed);
  const ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(load) FROM R",
                                  PrecisionSpec{2.0, 1.5, 0.9})
          .value();
  PeerHealthMonitor monitor;
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kAll;
  options.sampling_options.walk_length = 12;
  options.sampling_options.reset_length = 4;
  options.health = &monitor;

  MessageMeter meter;
  Rng rng(kEngineSeed);
  const NodeId querying = workload.graph().RandomLiveNode(rng).value();
  workload.ProtectNode(querying);
  auto engine = DigestEngine::Create(&workload.graph(), &workload.db(),
                                     spec, querying, rng.Fork(), &meter,
                                     options)
                    .value();
  ASSERT_TRUE(workload.Advance().ok());
  ASSERT_TRUE(engine->Tick(workload.now()).ok());
  const std::string monitored_blob = engine->Checkpoint().value();

  DigestEngineOptions bare_options = options;
  bare_options.health = nullptr;
  MessageMeter bare_meter;
  Rng bare_rng(kEngineSeed);
  auto bare_engine =
      DigestEngine::Create(&workload.graph(), &workload.db(), spec,
                           querying, bare_rng.Fork(), &bare_meter,
                           bare_options)
          .value();
  EXPECT_EQ(bare_engine->Restore(monitored_blob).code(),
            StatusCode::kInvalidArgument);

  const std::string bare_blob = bare_engine->Checkpoint().value();
  EXPECT_EQ(engine->Restore(bare_blob).code(),
            StatusCode::kInvalidArgument);

  // Matching presence still round-trips.
  EXPECT_TRUE(engine->Restore(monitored_blob).ok());
  EXPECT_TRUE(bare_engine->Restore(bare_blob).ok());
}

}  // namespace
}  // namespace digest
