#include "workload/calibration.h"
#include "workload/memory.h"
#include "workload/temperature.h"

#include <gtest/gtest.h>

namespace digest {
namespace {

TemperatureConfig SmallTemperature() {
  TemperatureConfig config;
  config.num_units = 800;
  config.num_nodes = 53;
  config.ticks = 200;
  return config;
}

MemoryConfig SmallMemory() {
  MemoryConfig config;
  config.num_units = 200;
  config.num_nodes = 120;
  config.ticks = 128;
  return config;
}

TEST(TemperatureWorkloadTest, CreateMatchesConfig) {
  auto w = TemperatureWorkload::Create(SmallTemperature());
  ASSERT_TRUE(w.ok());
  EXPECT_GE((*w)->graph().NodeCount(), 53u);
  EXPECT_EQ((*w)->db().TotalTuples(), 800u);
  EXPECT_TRUE((*w)->graph().IsConnected());
  EXPECT_STREQ((*w)->attribute(), "temperature");
  EXPECT_EQ((*w)->now(), 0);
}

TEST(TemperatureWorkloadTest, RejectsBadConfig) {
  TemperatureConfig config;
  config.num_units = 0;
  EXPECT_FALSE(TemperatureWorkload::Create(config).ok());
  config = TemperatureConfig();
  config.num_nodes = 2;
  EXPECT_FALSE(TemperatureWorkload::Create(config).ok());
}

TEST(TemperatureWorkloadTest, AdvanceUpdatesEveryTuple) {
  auto w = TemperatureWorkload::Create(SmallTemperature()).value();
  AggregateQuery q =
      AggregateQuery::Parse("SELECT AVG(temperature) FROM R").value();
  const double before = w->db().ExactAggregate(q).value();
  ASSERT_TRUE(w->Advance().ok());
  EXPECT_EQ(w->now(), 1);
  const double after = w->db().ExactAggregate(q).value();
  EXPECT_NE(before, after);
  // Stable membership: node and tuple counts never change.
  EXPECT_EQ(w->db().TotalTuples(), 800u);
}

TEST(TemperatureWorkloadTest, DeterministicBySeed) {
  auto a = TemperatureWorkload::Create(SmallTemperature()).value();
  auto b = TemperatureWorkload::Create(SmallTemperature()).value();
  AggregateQuery q =
      AggregateQuery::Parse("SELECT AVG(temperature) FROM R").value();
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(a->Advance().ok());
    ASSERT_TRUE(b->Advance().ok());
    EXPECT_DOUBLE_EQ(a->db().ExactAggregate(q).value(),
                     b->db().ExactAggregate(q).value());
  }
}

TEST(TemperatureWorkloadTest, CalibrationNearTableII) {
  // ρ ≈ 0.89, σ ≈ 8 per Table II. The synthetic generator is calibrated;
  // accept a band around the targets.
  auto w = TemperatureWorkload::Create(SmallTemperature()).value();
  Result<DatasetStatistics> stats = MeasureWorkloadStatistics(*w, 150);
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats->rho, 0.89, 0.06);
  EXPECT_NEAR(stats->sigma, 8.0, 1.5);
  EXPECT_EQ(stats->joins, 0u);
  EXPECT_EQ(stats->leaves, 0u);
  EXPECT_GT(stats->updates, 0u);
}

TEST(MemoryWorkloadTest, CreateMatchesConfig) {
  auto w = MemoryWorkload::Create(SmallMemory());
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_EQ((*w)->graph().NodeCount(), 120u);
  EXPECT_GE((*w)->db().TotalTuples(), 200u);
  EXPECT_TRUE((*w)->graph().IsConnected());
  EXPECT_STREQ((*w)->attribute(), "memory");
}

TEST(MemoryWorkloadTest, RejectsBadConfig) {
  MemoryConfig config;
  config.num_nodes = 2;
  config.attach_edges = 3;
  EXPECT_FALSE(MemoryWorkload::Create(config).ok());
}

TEST(MemoryWorkloadTest, ChurnChangesMembership) {
  auto w = MemoryWorkload::Create(SmallMemory()).value();
  for (int t = 0; t < 64; ++t) {
    ASSERT_TRUE(w->Advance().ok());
    ASSERT_TRUE(w->graph().IsConnected());
    // Database membership mirrors graph membership.
    for (NodeId node : w->db().Nodes()) {
      EXPECT_TRUE(w->graph().HasNode(node));
    }
  }
  Result<DatasetStatistics> stats = MeasureWorkloadStatistics(*w, 64);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->joins, 0u);
  EXPECT_GT(stats->leaves, 0u);
}

TEST(MemoryWorkloadTest, ProtectNodeSurvivesChurn) {
  MemoryConfig config = SmallMemory();
  config.leave_rate = 3.0;
  config.join_rate = 3.0;
  auto w = MemoryWorkload::Create(config).value();
  const NodeId protected_node = w->graph().LiveNodes().front();
  w->ProtectNode(protected_node);
  for (int t = 0; t < 100; ++t) {
    ASSERT_TRUE(w->Advance().ok());
    ASSERT_TRUE(w->graph().HasNode(protected_node));
  }
}

TEST(MemoryWorkloadTest, ValuesStayWithinCapacity) {
  auto w = MemoryWorkload::Create(SmallMemory()).value();
  for (int t = 0; t < 30; ++t) ASSERT_TRUE(w->Advance().ok());
  for (NodeId node : w->db().Nodes()) {
    w->db().StoreAt(node).value()->ForEach(
        [](LocalTupleId, const Tuple& tuple) {
          EXPECT_GE(tuple[0], 0.0);
          EXPECT_LT(tuple[0], 200.0);  // Far below any sane capacity cap.
        });
  }
}

TEST(MemoryWorkloadTest, CalibrationNearTableII) {
  // ρ ≈ 0.68, σ ≈ 10 per Table II.
  auto w = MemoryWorkload::Create(SmallMemory()).value();
  Result<DatasetStatistics> stats = MeasureWorkloadStatistics(*w, 100);
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats->rho, 0.68, 0.10);
  EXPECT_NEAR(stats->sigma, 10.0, 2.5);
}

TEST(MemoryWorkloadTest, LowerCorrelationThanTemperature) {
  // The paper attributes RPT's larger gains on TEMPERATURE to its higher
  // ρ and lower churn; the generators must preserve that ordering.
  auto temp = TemperatureWorkload::Create(SmallTemperature()).value();
  auto mem = MemoryWorkload::Create(SmallMemory()).value();
  Result<DatasetStatistics> ts = MeasureWorkloadStatistics(*temp, 100);
  Result<DatasetStatistics> ms = MeasureWorkloadStatistics(*mem, 100);
  ASSERT_TRUE(ts.ok());
  ASSERT_TRUE(ms.ok());
  EXPECT_GT(ts->rho, ms->rho);
  EXPECT_EQ(ts->leaves, 0u);
  EXPECT_GT(ms->leaves, 0u);
}

TEST(CalibrationTest, RejectsTooFewTicks) {
  auto w = TemperatureWorkload::Create(SmallTemperature()).value();
  EXPECT_FALSE(MeasureWorkloadStatistics(*w, 1).ok());
}

}  // namespace
}  // namespace digest
