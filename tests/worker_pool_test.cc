// Concurrency battery for exec::WorkerPool: startup/shutdown across
// thread counts, exactly-once item execution under work stealing,
// schedule-independent failure selection (lowest item index, Status and
// exception alike), no-early-abort side-effect guarantees, and reuse of
// one pool across many batches. Runs under ThreadSanitizer in CI
// (DIGEST_SANITIZE=thread).
#include "exec/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace digest {
namespace exec {
namespace {

TEST(WorkerPoolTest, ConstructsAndDestructsIdleAcrossThreadCounts) {
  for (size_t threads : {0u, 1u, 2u, 4u, 8u}) {
    WorkerPool pool(threads);
    EXPECT_EQ(pool.num_threads(), std::max<size_t>(threads, 1));
    // Destructor joins with no batch ever submitted.
  }
}

TEST(WorkerPoolTest, EmptyRangeIsANoOp) {
  WorkerPool pool(4);
  size_t calls = 0;
  EXPECT_TRUE(pool.ParallelFor(0, [&](size_t, size_t) {
                    ++calls;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(calls, 0u);
}

TEST(WorkerPoolTest, RunsEveryItemExactlyOnce) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    WorkerPool pool(threads);
    const size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    ASSERT_TRUE(pool.ParallelFor(n, [&](size_t item, size_t worker) {
                      EXPECT_LT(worker, pool.num_threads());
                      hits[item].fetch_add(1, std::memory_order_relaxed);
                      return Status::OK();
                    })
                    .ok());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "item " << i;
    }
  }
}

TEST(WorkerPoolTest, StealingCoversImbalancedShards) {
  // Shard 0's items are much slower than the rest: workers that finish
  // their own shard must steal to terminate promptly. Correctness (every
  // item exactly once) is what we assert; the sleep just shapes load.
  WorkerPool pool(4);
  const size_t n = 64;
  std::vector<std::atomic<int>> hits(n);
  ASSERT_TRUE(pool.ParallelFor(n, [&](size_t item, size_t) {
                    if (item < n / 4) {
                      std::this_thread::sleep_for(
                          std::chrono::microseconds(200));
                    }
                    hits[item].fetch_add(1, std::memory_order_relaxed);
                    return Status::OK();
                  })
                  .ok());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(WorkerPoolTest, ReportsLowestIndexStatusFailureOnAnySchedule) {
  for (size_t threads : {1u, 2u, 8u}) {
    WorkerPool pool(threads);
    for (int round = 0; round < 20; ++round) {
      const Status s = pool.ParallelFor(100, [&](size_t item, size_t) {
        if (item == 17 || item == 83) {
          return Status::InvalidArgument("item " + std::to_string(item));
        }
        return Status::OK();
      });
      ASSERT_FALSE(s.ok());
      EXPECT_EQ(s.message(), "item 17") << "threads=" << threads;
    }
  }
}

TEST(WorkerPoolTest, AllItemsStillRunWhenSomeFail) {
  // No early abort: a failure must not suppress later items' side
  // effects (the parallel sampler relies on this for deterministic
  // outcome slots).
  WorkerPool pool(4);
  const size_t n = 200;
  std::vector<std::atomic<int>> hits(n);
  const Status s = pool.ParallelFor(n, [&](size_t item, size_t) {
    hits[item].fetch_add(1, std::memory_order_relaxed);
    if (item % 3 == 0) return Status::Internal("fail");
    return Status::OK();
  });
  EXPECT_FALSE(s.ok());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(WorkerPoolTest, RethrowsLowestIndexException) {
  for (size_t threads : {1u, 4u}) {
    WorkerPool pool(threads);
    try {
      (void)pool.ParallelFor(50, [&](size_t item, size_t) -> Status {
        if (item == 7 || item == 31) {
          throw std::runtime_error("boom " + std::to_string(item));
        }
        return Status::OK();
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 7");
    }
  }
}

TEST(WorkerPoolTest, ExceptionBeatsLaterStatusAndViceVersa) {
  WorkerPool pool(2);
  // Lowest failing index returned a Status: the Status wins even though
  // a later item threw.
  const Status s = pool.ParallelFor(20, [&](size_t item, size_t) -> Status {
    if (item == 3) return Status::Unavailable("status first");
    if (item == 11) throw std::runtime_error("exception later");
    return Status::OK();
  });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "status first");
  // And the mirror: the exception at the lower index is rethrown.
  EXPECT_THROW(
      (void)pool.ParallelFor(20,
                             [&](size_t item, size_t) -> Status {
                               if (item == 3) {
                                 throw std::runtime_error("exception first");
                               }
                               if (item == 11) {
                                 return Status::Unavailable("status later");
                               }
                               return Status::OK();
                             }),
      std::runtime_error);
}

TEST(WorkerPoolTest, PoolIsReusableAcrossManyBatches) {
  WorkerPool pool(4);
  for (int batch = 0; batch < 50; ++batch) {
    const size_t n = 1 + static_cast<size_t>(batch % 7) * 13;
    std::vector<std::atomic<int>> hits(n);
    ASSERT_TRUE(pool.ParallelFor(n, [&](size_t item, size_t) {
                      hits[item].fetch_add(1, std::memory_order_relaxed);
                      return Status::OK();
                    })
                    .ok());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "batch " << batch << " item " << i;
    }
  }
}

TEST(WorkerPoolTest, ResultsKeyedByItemAreScheduleIndependent) {
  // The canonical usage pattern: each item writes only its own slot, so
  // the gathered output is identical for any thread count.
  auto run = [](size_t threads) {
    WorkerPool pool(threads);
    std::vector<uint64_t> slots(257, 0);
    EXPECT_TRUE(pool.ParallelFor(slots.size(),
                                 [&](size_t item, size_t) {
                                   slots[item] = item * 2654435761u;
                                   return Status::OK();
                                 })
                    .ok());
    return slots;
  };
  const std::vector<uint64_t> reference = run(1);
  EXPECT_EQ(run(2), reference);
  EXPECT_EQ(run(4), reference);
  EXPECT_EQ(run(8), reference);
}

}  // namespace
}  // namespace exec
}  // namespace digest
