// Reconciliation of the three observability views over a faulty engine
// run: EngineStats (engine's own counters), MessageMeter (network
// accounting), FaultPlan injection counters, the metrics registry both
// views bridge into, and the structured event trace. Each view is
// produced independently; the test pins down the exact identities and
// inequalities that must hold between them.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "db/p2p_database.h"
#include "net/fault_plan.h"
#include "net/topology.h"
#include "numeric/rng.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "workload/experiment.h"
#include "workload/workload.h"

namespace digest {
namespace {

/// Static-membership workload: AR(1) values on a fixed mesh so injected
/// faults are the only source of disruption.
class DriftWorkload : public Workload {
 public:
  explicit DriftWorkload(uint64_t seed)
      : graph_(MakeMesh(7, 7).value()),
        rng_(seed),
        db_(std::make_unique<P2PDatabase>(
            Schema::Create({"load"}).value())) {
    for (NodeId node : graph_.LiveNodes()) {
      (void)db_->AddNode(node);
      LocalStore* store = db_->StoreAt(node).value();
      for (size_t i = 0; i < 6; ++i) {
        Entry entry;
        entry.node = node;
        entry.value = rng_.NextGaussian(50.0, 10.0);
        entry.id = store->Insert({entry.value});
        entries_.push_back(entry);
      }
    }
  }

  Graph& graph() override { return graph_; }
  const Graph& graph() const override { return graph_; }
  P2PDatabase& db() override { return *db_; }
  const P2PDatabase& db() const override { return *db_; }
  const char* attribute() const override { return "load"; }
  int64_t now() const override { return now_; }

  Status Advance() override {
    ++now_;
    for (Entry& entry : entries_) {
      entry.value =
          50.0 + 0.8 * (entry.value - 50.0) + rng_.NextGaussian(0.0, 2.0);
      DIGEST_ASSIGN_OR_RETURN(LocalStore * store, db_->StoreAt(entry.node));
      DIGEST_RETURN_IF_ERROR(
          store->UpdateAttribute(entry.id, 0, entry.value));
    }
    return Status::OK();
  }

 private:
  struct Entry {
    NodeId node = kInvalidNode;
    LocalTupleId id = 0;
    double value = 0.0;
  };

  Graph graph_;
  Rng rng_;
  std::unique_ptr<P2PDatabase> db_;
  std::vector<Entry> entries_;
  int64_t now_ = 0;
};

constexpr size_t kTicks = 16;

template <typename Payload>
size_t CountEvents(const std::vector<obs::TraceEvent>& events) {
  size_t n = 0;
  for (const obs::TraceEvent& event : events) {
    n += std::holds_alternative<Payload>(event.payload);
  }
  return n;
}

TEST(ObsReconcileTest, ViewsAgreeOverFaultyRun) {
  DriftWorkload workload(/*seed=*/777);
  const ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(load) FROM R",
                                  PrecisionSpec{1.0, 4.0, 0.9})
          .value();
  FaultPlanConfig config;
  config.message_loss = 0.08;
  config.agent_drop = 0.04;
  ASSERT_TRUE(config.Validate().ok());
  FaultPlan plan(config, /*seed=*/4242);

  obs::MemoryTracer tracer;
  obs::Registry registry;
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kAll;
  options.estimator = EstimatorKind::kRepeated;
  options.sampling_options.walk_length = 16;
  options.sampling_options.reset_length = 4;
  options.fault_plan = &plan;
  options.tracer = &tracer;
  options.registry = &registry;

  Result<RunResult> run =
      RunEngineExperiment(workload, spec, options, kTicks, /*seed=*/11,
                          "reconcile");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const EngineStats& stats = run->stats;
  const MessageMeter& meter = run->meter;

  // The run actually exercised faults.
  EXPECT_GT(plan.losses_injected(), 0u);
  EXPECT_GT(plan.drops_injected(), 0u);

  // --- MessageMeter vs EngineStats ---------------------------------
  // Every fresh sample is reported back as one transfer message, but a
  // batch that times out mid-way has already charged transfers for its
  // completed agents, and node-level samples that yield no qualifying
  // tuple also cost a transfer — so transfers dominate fresh samples.
  EXPECT_GE(meter.sample_transfers(), stats.fresh_samples);

  // --- MessageMeter vs FaultPlan -----------------------------------
  // Agents are only dropped by the plan, and every drop is metered as
  // exactly one restart message: the two views must agree exactly.
  EXPECT_EQ(meter.agent_restarts(), plan.drops_injected());
  // Blackholed receivers lose transmissions without consulting
  // LoseMessage, so the meter (which counts both) dominates the plan's
  // own injection counter.
  EXPECT_GE(meter.losses(), plan.losses_injected());

  // --- Trace vs FaultPlan / meter ----------------------------------
  const std::vector<obs::TraceEvent>& events = tracer.events();
  ASSERT_FALSE(events.empty());
  // LoseMessage emits one FaultLossEvent per injected loss.
  EXPECT_EQ(CountEvents<obs::FaultLossEvent>(events),
            plan.losses_injected());
  // The operator emits one AgentRestartEvent per observed drop.
  EXPECT_EQ(CountEvents<obs::AgentRestartEvent>(events),
            plan.drops_injected());
  // One TickEvent per engine tick, stamped with increasing sim time.
  EXPECT_EQ(CountEvents<obs::TickEvent>(events), stats.ticks);
  int64_t prev_time = -1;
  uint64_t prev_seq = 0;
  for (const obs::TraceEvent& event : events) {
    EXPECT_GE(event.sim_time, prev_time);
    if (&event != &events.front()) EXPECT_GT(event.seq, prev_seq);
    prev_time = std::max(prev_time, event.sim_time);
    prev_seq = event.seq;
  }
  // ALL scheduler: one SnapshotEvent per successful occasion.
  EXPECT_EQ(CountEvents<obs::SnapshotEvent>(events), stats.snapshots);

  // --- Registry vs both ad-hoc views -------------------------------
  // RunEngineExperiment bridges the final meter and stats; the bridged
  // counters must equal the originals.
  EXPECT_EQ(registry.CounterValue("net.messages{category=sample_transfer}"),
            meter.sample_transfers());
  EXPECT_EQ(registry.CounterValue("net.messages{category=agent_restart}"),
            meter.agent_restarts());
  EXPECT_EQ(registry.CounterValue("net.messages{category=loss}"),
            meter.losses());
  EXPECT_EQ(registry.CounterValue("net.messages{category=retry}"),
            meter.retries());
  EXPECT_EQ(registry.CounterValue("net.messages_total"), meter.Total());
  EXPECT_EQ(registry.CounterValue("engine.ticks{run=reconcile}"),
            stats.ticks);
  EXPECT_EQ(registry.CounterValue("engine.snapshots{run=reconcile}"),
            stats.snapshots);
  EXPECT_EQ(registry.CounterValue("engine.fresh_samples{run=reconcile}"),
            stats.fresh_samples);
  // The operator-level restart counter sees the same drops the plan
  // injected (every drop happens inside a SampleNodes batch).
  EXPECT_EQ(registry.CounterValue("walk.agent_restarts"),
            plan.drops_injected());
}

TEST(ObsReconcileTest, FaultFreeRunReconcilesExactly) {
  DriftWorkload workload(/*seed=*/5);
  const ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(load) FROM R",
                                  PrecisionSpec{1.0, 4.0, 0.9})
          .value();
  obs::MemoryTracer tracer;
  obs::Registry registry;
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kAll;
  options.estimator = EstimatorKind::kRepeated;
  options.sampling_options.walk_length = 16;
  options.sampling_options.reset_length = 4;
  options.tracer = &tracer;
  options.registry = &registry;

  Result<RunResult> run =
      RunEngineExperiment(workload, spec, options, kTicks, /*seed=*/3,
                          "clean");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // No faults: no fault events, no restarts, no degradation anywhere.
  EXPECT_EQ(CountEvents<obs::FaultLossEvent>(tracer.events()), 0u);
  EXPECT_EQ(CountEvents<obs::AgentRestartEvent>(tracer.events()), 0u);
  EXPECT_EQ(CountEvents<obs::DegradedFallbackEvent>(tracer.events()), 0u);
  EXPECT_EQ(run->meter.agent_restarts(), 0u);
  EXPECT_EQ(registry.CounterValue("walk.timeouts"), 0u);
  // With no timeouts, every fresh tuple sample maps 1:1 onto node
  // samples drawn by walk batches.
  EXPECT_EQ(registry.CounterValue("net.messages{category=sample_transfer}"),
            run->meter.sample_transfers());
  // Walk instrumentation fired on the clean path too.
  EXPECT_GT(registry.CounterValue("walk.batches"), 0u);
  EXPECT_GT(registry.CounterValue("walk.samples"), 0u);

  // --- Metropolis counters vs MessageMeter -------------------------
  // Every proposal sends exactly one weight probe and every accepted
  // move exactly one forwarding hop (the lazy half-steps send nothing),
  // so on the fault-free path the operator's registry counters must
  // equal the network accounting to the message.
  EXPECT_GT(registry.CounterValue("walk.proposals"), 0u);
  EXPECT_EQ(registry.CounterValue("walk.proposals"),
            run->meter.weight_probes());
  EXPECT_EQ(registry.CounterValue("walk.accepted"),
            run->meter.walk_hops());
  EXPECT_EQ(registry.CounterValue("walk.rejected"),
            run->meter.weight_probes() - run->meter.walk_hops());
  // Lazy Metropolis accepts most proposals (the degree correction only
  // rejects into the tail): a grossly low acceptance rate would mean
  // the counters drifted apart.
  EXPECT_GE(2 * registry.CounterValue("walk.accepted"),
            registry.CounterValue("walk.proposals"));
}

}  // namespace
}  // namespace digest
