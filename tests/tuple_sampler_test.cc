#include "sampling/tuple_sampler.h"

#include <gtest/gtest.h>

#include <map>

#include "net/topology.h"

namespace digest {
namespace {

// A small database with deliberately skewed content sizes: node i holds
// i+1 tuples whose single attribute encodes a unique tuple index.
struct Fixture {
  Graph graph;
  std::unique_ptr<P2PDatabase> db;
  size_t total_tuples = 0;

  explicit Fixture(size_t nodes) {
    graph = MakeComplete(nodes).value();
    db = std::make_unique<P2PDatabase>(Schema::Create({"v"}).value());
    double next_value = 0.0;
    for (NodeId node : graph.LiveNodes()) {
      EXPECT_TRUE(db->AddNode(node).ok());
      for (size_t i = 0; i <= node; ++i) {
        db->StoreAt(node).value()->Insert({next_value});
        next_value += 1.0;
        ++total_tuples;
      }
    }
  }
};

TEST(TwoStageSamplerTest, SamplesComeFromTheDatabase) {
  Fixture f(6);
  SamplingOperator op(&f.graph, ContentSizeWeight(*f.db), Rng(1), nullptr);
  TwoStageTupleSampler sampler(f.db.get(), &op, Rng(2));
  Result<std::vector<TupleSample>> batch = sampler.SampleBatch(0, 40);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 40u);
  for (const TupleSample& s : *batch) {
    Result<Tuple> stored = f.db->GetTuple(s.ref);
    ASSERT_TRUE(stored.ok());
    EXPECT_EQ(*stored, s.tuple);
  }
}

TEST(TwoStageSamplerTest, EmptyRelationFails) {
  Graph g = MakeComplete(3).value();
  P2PDatabase db(Schema::Create({"v"}).value());
  for (NodeId node : g.LiveNodes()) ASSERT_TRUE(db.AddNode(node).ok());
  SamplingOperator op(&g, ContentSizeWeight(db), Rng(3), nullptr);
  TwoStageTupleSampler sampler(&db, &op, Rng(4));
  EXPECT_EQ(sampler.Sample(0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(TwoStageSamplerTest, TupleDistributionIsUniform) {
  // Two-stage sampling with the content-size weight must be uniform over
  // *tuples* even though node content sizes range from 1 to 6.
  Fixture f(6);
  SamplingOperatorOptions options;
  options.walk_length = 200;
  options.reset_length = 60;
  SamplingOperator op(&f.graph, ContentSizeWeight(*f.db), Rng(5), nullptr,
                      options);
  TwoStageTupleSampler sampler(f.db.get(), &op, Rng(6));

  const int n = 42000;
  std::map<double, int> counts;
  Result<std::vector<TupleSample>> batch = sampler.SampleBatch(0, n);
  ASSERT_TRUE(batch.ok());
  for (const TupleSample& s : *batch) counts[s.tuple[0]] += 1;

  const double expected = static_cast<double>(n) / f.total_tuples;
  ASSERT_EQ(f.total_tuples, 21u);
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(count, expected, expected * 0.25)
        << "tuple value " << value;
  }
}

TEST(ExactSamplerTest, UniformOverTuples) {
  Fixture f(6);
  MessageMeter meter;
  ExactTupleSampler sampler(f.db.get(), Rng(7), &meter);
  const int n = 42000;
  std::map<double, int> counts;
  Result<std::vector<TupleSample>> batch = sampler.SampleBatch(n);
  ASSERT_TRUE(batch.ok());
  for (const TupleSample& s : *batch) counts[s.tuple[0]] += 1;
  const double expected = static_cast<double>(n) / f.total_tuples;
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(count, expected, expected * 0.2) << "tuple " << value;
  }
  EXPECT_EQ(meter.sample_transfers(), static_cast<uint64_t>(n));
  EXPECT_EQ(meter.walk_hops(), 0u);  // Centralized: no walking.
}

TEST(ExactSamplerTest, EmptyRelationFails) {
  Graph g = MakeComplete(3).value();
  P2PDatabase db(Schema::Create({"v"}).value());
  for (NodeId node : g.LiveNodes()) ASSERT_TRUE(db.AddNode(node).ok());
  ExactTupleSampler sampler(&db, Rng(8), nullptr);
  EXPECT_FALSE(sampler.Sample().ok());
}

TEST(ClusterSamplerTest, ReturnsWholeNodeContent) {
  Fixture f(5);
  // Uniform node weight: classic cluster sampling.
  SamplingOperator op(&f.graph, UniformWeight(), Rng(9), nullptr);
  ClusterSampler sampler(f.db.get(), &op);
  Result<std::vector<TupleSample>> cluster = sampler.SampleCluster(0);
  ASSERT_TRUE(cluster.ok());
  ASSERT_FALSE(cluster->empty());
  const NodeId node = cluster->front().ref.node;
  EXPECT_EQ(cluster->size(), f.db->ContentSize(node));
  for (const TupleSample& s : *cluster) EXPECT_EQ(s.ref.node, node);
}

TEST(ClusterSamplerTest, ClusterEstimateIsWorseUnderIntraNodeCorrelation) {
  // Build a database where values cluster per node (high intra-node
  // correlation, as §III argues for P2P content). Cluster-sample means
  // should scatter far more than equal-size two-stage samples.
  Graph g = MakeComplete(8).value();
  P2PDatabase db(Schema::Create({"v"}).value());
  Rng data_rng(10);
  for (NodeId node : g.LiveNodes()) {
    ASSERT_TRUE(db.AddNode(node).ok());
    const double node_level = static_cast<double>(node) * 10.0;
    for (int i = 0; i < 8; ++i) {
      db.StoreAt(node).value()->Insert(
          {node_level + data_rng.NextGaussian(0.0, 0.5)});
    }
  }
  AggregateQuery q = AggregateQuery::Parse("SELECT AVG(v) FROM R").value();
  const double truth = db.ExactAggregate(q).value();

  SamplingOperatorOptions options;
  options.walk_length = 60;
  SamplingOperator uniform_op(&g, UniformWeight(), Rng(11), nullptr,
                              options);
  SamplingOperator content_op(&g, ContentSizeWeight(db), Rng(12), nullptr,
                              options);
  ClusterSampler cluster(&db, &uniform_op);
  TwoStageTupleSampler two_stage(&db, &content_op, Rng(13));

  auto mean_of = [](const std::vector<TupleSample>& samples) {
    double acc = 0.0;
    for (const TupleSample& s : samples) acc += s.tuple[0];
    return acc / static_cast<double>(samples.size());
  };
  double cluster_sq_err = 0.0;
  double two_stage_sq_err = 0.0;
  const int trials = 120;
  for (int i = 0; i < trials; ++i) {
    Result<std::vector<TupleSample>> c = cluster.SampleCluster(0);
    ASSERT_TRUE(c.ok());
    const double ce = mean_of(*c) - truth;
    cluster_sq_err += ce * ce;
    Result<std::vector<TupleSample>> t = two_stage.SampleBatch(0, c->size());
    ASSERT_TRUE(t.ok());
    const double te = mean_of(*t) - truth;
    two_stage_sq_err += te * te;
  }
  EXPECT_GT(cluster_sq_err, 3.0 * two_stage_sq_err);
}

}  // namespace
}  // namespace digest
