// Randomized round-trip tests of the expression and predicate grammars:
// generate random ASTs, print them, reparse, and check the reparsed tree
// evaluates identically on random tuples. Deterministic (seeded).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "db/expression.h"
#include "db/predicate.h"
#include "numeric/rng.h"

namespace digest {
namespace {

const char* kAttrs[] = {"a", "b", "c", "d"};

Schema TestSchema() {
  return Schema::Create({"a", "b", "c", "d"}).value();
}

// Random arithmetic expression text of bounded depth.
std::string RandomArith(Rng& rng, int depth) {
  if (depth <= 0 || rng.NextBernoulli(0.3)) {
    if (rng.NextBernoulli(0.5)) {
      return kAttrs[rng.NextIndex(4)];
    }
    char buf[32];
    // Small positive constants keep divisions finite in most trees.
    std::snprintf(buf, sizeof(buf), "%.3f", 0.5 + rng.NextDouble() * 9.5);
    return buf;
  }
  const uint64_t pick = rng.NextIndex(5);
  if (pick == 4) {
    return "-(" + RandomArith(rng, depth - 1) + ")";
  }
  static const char* kOps[] = {" + ", " - ", " * ", " / "};
  return "(" + RandomArith(rng, depth - 1) + kOps[pick] +
         RandomArith(rng, depth - 1) + ")";
}

// Random predicate text of bounded depth.
std::string RandomPredicate(Rng& rng, int depth) {
  if (depth <= 0 || rng.NextBernoulli(0.4)) {
    static const char* kCmps[] = {" < ", " <= ", " > ", " >= ", " = ",
                                  " != "};
    return RandomArith(rng, 2) + kCmps[rng.NextIndex(6)] +
           RandomArith(rng, 2);
  }
  const uint64_t pick = rng.NextIndex(3);
  if (pick == 0) {
    return "NOT (" + RandomPredicate(rng, depth - 1) + ")";
  }
  const char* op = pick == 1 ? " AND " : " OR ";
  return "(" + RandomPredicate(rng, depth - 1) + op +
         RandomPredicate(rng, depth - 1) + ")";
}

Tuple RandomTuple(Rng& rng) {
  return Tuple{rng.NextGaussian(5.0, 3.0), rng.NextGaussian(5.0, 3.0),
               rng.NextGaussian(5.0, 3.0), rng.NextGaussian(5.0, 3.0)};
}

class ExpressionRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExpressionRoundTrip, PrintedFormEvaluatesIdentically) {
  Rng rng(GetParam());
  Schema schema = TestSchema();
  for (int trial = 0; trial < 200; ++trial) {
    const std::string text = RandomArith(rng, 4);
    Result<Expression> parsed = Expression::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status();
    Result<Expression> reparsed = Expression::Parse(parsed->ToString());
    ASSERT_TRUE(reparsed.ok()) << parsed->ToString();
    ASSERT_TRUE(parsed->Bind(schema).ok());
    ASSERT_TRUE(reparsed->Bind(schema).ok());
    for (int probe = 0; probe < 5; ++probe) {
      const Tuple t = RandomTuple(rng);
      Result<double> v1 = parsed->Evaluate(t);
      Result<double> v2 = reparsed->Evaluate(t);
      ASSERT_EQ(v1.ok(), v2.ok()) << text;
      if (v1.ok()) {
        // Identical trees must produce bit-identical results.
        ASSERT_EQ(*v1, *v2) << text;
        ASSERT_TRUE(std::isfinite(*v1));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpressionRoundTrip,
                         ::testing::Values(3, 11, 2024));

class PredicateRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PredicateRoundTrip, PrintedFormEvaluatesIdentically) {
  Rng rng(GetParam());
  Schema schema = TestSchema();
  for (int trial = 0; trial < 150; ++trial) {
    const std::string text = RandomPredicate(rng, 3);
    Result<Predicate> parsed = Predicate::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status();
    Result<Predicate> reparsed = Predicate::Parse(parsed->ToString());
    ASSERT_TRUE(reparsed.ok()) << parsed->ToString();
    ASSERT_TRUE(parsed->Bind(schema).ok());
    ASSERT_TRUE(reparsed->Bind(schema).ok());
    for (int probe = 0; probe < 5; ++probe) {
      const Tuple t = RandomTuple(rng);
      Result<bool> v1 = parsed->Evaluate(t);
      Result<bool> v2 = reparsed->Evaluate(t);
      ASSERT_EQ(v1.ok(), v2.ok()) << text;
      if (v1.ok()) {
        ASSERT_EQ(*v1, *v2) << text;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateRoundTrip,
                         ::testing::Values(5, 13, 4096));

TEST(ExpressionFuzzTest, GarbageInputsNeverCrash) {
  Rng rng(777);
  const std::string alphabet = "abc123+-*/()<>=!&| .";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string text;
    const size_t len = rng.NextIndex(24);
    for (size_t i = 0; i < len; ++i) {
      text += alphabet[rng.NextIndex(alphabet.size())];
    }
    // Must never crash; any Status outcome is fine.
    Result<Expression> e = Expression::Parse(text);
    Result<Predicate> p = Predicate::Parse(text);
    if (e.ok()) {
      Schema schema = TestSchema();
      if (e->Bind(schema).ok()) {
        (void)e->Evaluate(RandomTuple(rng));
      }
    }
    if (p.ok()) {
      Schema schema = TestSchema();
      if (p->Bind(schema).ok()) {
        (void)p->Evaluate(RandomTuple(rng));
      }
    }
  }
}

}  // namespace
}  // namespace digest
