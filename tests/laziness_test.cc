// Tests of the configurable walk laziness (design-choice ablation #1)
// and the eigengap-based walk-length recommendation.
#include <gtest/gtest.h>

#include "net/topology.h"
#include "sampling/metropolis.h"
#include "sampling/sampling_operator.h"

namespace digest {
namespace {

TEST(LazinessTest, ForwardingMatrixValidatesLaziness) {
  Graph g = MakeComplete(4).value();
  EXPECT_TRUE(BuildForwardingMatrix(g, UniformWeight(), 0.0).ok());
  EXPECT_TRUE(BuildForwardingMatrix(g, UniformWeight(), 0.9).ok());
  EXPECT_FALSE(BuildForwardingMatrix(g, UniformWeight(), 1.0).ok());
  EXPECT_FALSE(BuildForwardingMatrix(g, UniformWeight(), -0.1).ok());
}

TEST(LazinessTest, StationarityHoldsForAnyLaziness) {
  Rng rng(1);
  Graph g = MakeBarabasiAlbert(20, 2, rng).value();
  WeightFn weight = [](NodeId v) { return 1.0 + (v % 4); };
  for (double lam : {0.0, 0.25, 0.5, 0.75}) {
    ForwardingMatrix fm =
        BuildForwardingMatrix(g, weight, lam).value();
    std::vector<double> pi_p = fm.p.VecMat(fm.pi);
    for (size_t i = 0; i < pi_p.size(); ++i) {
      EXPECT_NEAR(pi_p[i], fm.pi[i], 1e-12) << "laziness " << lam;
    }
  }
}

TEST(LazinessTest, NonLazyOscillatesOnBipartiteGraph) {
  // An even ring is bipartite: the non-lazy chain is periodic, so a
  // deterministic start never converges in TV — alternating between the
  // two sides. The lazy chain converges fine.
  Graph ring = MakeRing(12).value();
  ForwardingMatrix nonlazy =
      BuildForwardingMatrix(ring, UniformWeight(), 0.0).value();
  ForwardingMatrix lazy =
      BuildForwardingMatrix(ring, UniformWeight(), 0.5).value();
  std::vector<double> start(12, 0.0);
  start[0] = 1.0;
  const double tv_nonlazy = TotalVariationDistance(
      DistributionAfter(nonlazy, start, 600).value(), nonlazy.pi)
                                .value();
  const double tv_lazy = TotalVariationDistance(
      DistributionAfter(lazy, start, 600).value(), lazy.pi)
                             .value();
  EXPECT_GT(tv_nonlazy, 0.45);  // Stuck at ~1/2 (mass on one side).
  EXPECT_LT(tv_lazy, 0.01);
}

TEST(LazinessTest, NonLazyMixesFasterOnNonBipartiteGraph) {
  Rng rng(2);
  Graph g = MakeBarabasiAlbert(24, 3, rng).value();
  ForwardingMatrix nonlazy =
      BuildForwardingMatrix(g, UniformWeight(), 0.0).value();
  ForwardingMatrix lazy =
      BuildForwardingMatrix(g, UniformWeight(), 0.5).value();
  std::vector<double> start(g.NodeCount(), 0.0);
  start[0] = 1.0;
  const size_t steps = 30;
  const double tv_nonlazy = TotalVariationDistance(
      DistributionAfter(nonlazy, start, steps).value(), nonlazy.pi)
                                .value();
  const double tv_lazy = TotalVariationDistance(
      DistributionAfter(lazy, start, steps).value(), lazy.pi)
                             .value();
  // Halving the hold probability roughly doubles progress per step.
  EXPECT_LT(tv_nonlazy, tv_lazy);
}

TEST(LazinessTest, OperatorRespectsLaziness) {
  // With laziness ~0 every step issues a weight probe; with high
  // laziness most steps are free.
  Rng rng(3);
  Graph g = MakeBarabasiAlbert(30, 3, rng).value();
  auto probes_for = [&](double lam) {
    MessageMeter meter;
    SamplingOperatorOptions options;
    options.walk_length = 400;
    options.warm_walks = false;
    options.laziness = lam;
    SamplingOperator op(&g, UniformWeight(), Rng(4), &meter, options);
    EXPECT_TRUE(op.SampleNode(0).ok());
    return meter.weight_probes();
  };
  const uint64_t probes_eager = probes_for(0.0);
  const uint64_t probes_lazy = probes_for(0.75);
  EXPECT_EQ(probes_eager, 400u);
  EXPECT_NEAR(static_cast<double>(probes_lazy), 100.0, 40.0);
}

TEST(RecommendWalkLengthTest, BoundIsSufficientForConvergence) {
  Rng rng(5);
  Graph g = MakeBarabasiAlbert(24, 2, rng).value();
  const double gamma = 0.02;
  const size_t steps =
      RecommendWalkLength(g, UniformWeight(), gamma).value();
  ForwardingMatrix fm = BuildForwardingMatrix(g, UniformWeight()).value();
  // Worst deterministic start must be within gamma after `steps`.
  for (NodeId s : g.LiveNodes()) {
    std::vector<double> start(fm.p.rows(), 0.0);
    for (size_t r = 0; r < fm.nodes.size(); ++r) {
      if (fm.nodes[r] == s) start[r] = 1.0;
    }
    const double tv = TotalVariationDistance(
        DistributionAfter(fm, start, steps).value(), fm.pi)
                          .value();
    EXPECT_LE(tv, gamma) << "start " << s;
  }
}

TEST(RecommendWalkLengthTest, SlowTopologiesNeedLongerWalks) {
  Rng rng(6);
  Graph ring = MakeRing(16).value();
  Graph complete = MakeComplete(16).value();
  const size_t ring_len =
      RecommendWalkLength(ring, UniformWeight(), 0.01).value();
  const size_t complete_len =
      RecommendWalkLength(complete, UniformWeight(), 0.01).value();
  EXPECT_GT(ring_len, 2 * complete_len);
}

TEST(RecommendWalkLengthTest, Validation) {
  Graph g = MakeComplete(4).value();
  EXPECT_FALSE(RecommendWalkLength(g, UniformWeight(), 0.0).ok());
  EXPECT_FALSE(RecommendWalkLength(g, UniformWeight(), 1.0).ok());
  Graph disconnected;
  disconnected.AddNode();
  disconnected.AddNode();
  EXPECT_FALSE(
      RecommendWalkLength(disconnected, UniformWeight(), 0.1).ok());
}

}  // namespace
}  // namespace digest
