// Model-based randomized tests: long random operation sequences applied
// simultaneously to the production data structures and to trivially
// correct reference models, checking equivalence after every step.
// Deterministic (seeded) so failures reproduce.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>

#include "db/local_store.h"
#include "net/graph.h"
#include "numeric/rng.h"

namespace digest {
namespace {

// ---------------------------------------------------------------------
// Graph vs adjacency-set reference model.
// ---------------------------------------------------------------------

class GraphModel {
 public:
  NodeId AddNode() {
    const NodeId id = next_id_++;
    live_.insert(id);
    return id;
  }
  bool RemoveNode(NodeId id) {
    if (!live_.count(id)) return false;
    live_.erase(id);
    for (auto it = edges_.begin(); it != edges_.end();) {
      if (it->first == id || it->second == id) {
        it = edges_.erase(it);
      } else {
        ++it;
      }
    }
    return true;
  }
  bool AddEdge(NodeId a, NodeId b) {
    if (a == b || !live_.count(a) || !live_.count(b)) return false;
    return edges_.insert(Norm(a, b)).second;
  }
  bool RemoveEdge(NodeId a, NodeId b) { return edges_.erase(Norm(a, b)); }
  bool HasEdge(NodeId a, NodeId b) const {
    return edges_.count(Norm(a, b)) > 0;
  }
  size_t Degree(NodeId id) const {
    size_t d = 0;
    for (const auto& e : edges_) {
      if (e.first == id || e.second == id) ++d;
    }
    return d;
  }
  const std::set<NodeId>& live() const { return live_; }
  size_t edge_count() const { return edges_.size(); }

 private:
  static std::pair<NodeId, NodeId> Norm(NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }
  NodeId next_id_ = 0;
  std::set<NodeId> live_;
  std::set<std::pair<NodeId, NodeId>> edges_;
};

class GraphFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphFuzz, MatchesReferenceModel) {
  Rng rng(GetParam());
  Graph graph;
  GraphModel model;
  for (int step = 0; step < 3000; ++step) {
    const uint64_t op = rng.NextIndex(10);
    const NodeId bound =
        static_cast<NodeId>(std::max<uint64_t>(graph.NextId() + 2, 4));
    const NodeId a = static_cast<NodeId>(rng.NextIndex(bound));
    const NodeId b = static_cast<NodeId>(rng.NextIndex(bound));
    if (op < 2) {
      EXPECT_EQ(graph.AddNode(), model.AddNode());
    } else if (op < 3) {
      EXPECT_EQ(graph.RemoveNode(a).ok(), model.RemoveNode(a));
    } else if (op < 7) {
      EXPECT_EQ(graph.AddEdge(a, b).ok(), model.AddEdge(a, b));
    } else {
      EXPECT_EQ(graph.RemoveEdge(a, b).ok(), model.RemoveEdge(a, b) > 0);
    }
    // Invariants after every step.
    ASSERT_EQ(graph.NodeCount(), model.live().size()) << "step " << step;
    ASSERT_EQ(graph.EdgeCount(), model.edge_count()) << "step " << step;
    // Spot-check a few random entities.
    for (int probe = 0; probe < 4; ++probe) {
      const NodeId x = static_cast<NodeId>(rng.NextIndex(bound));
      const NodeId y = static_cast<NodeId>(rng.NextIndex(bound));
      ASSERT_EQ(graph.HasNode(x), model.live().count(x) > 0);
      ASSERT_EQ(graph.HasEdge(x, y), model.HasEdge(x, y));
      if (model.live().count(x)) {
        ASSERT_EQ(graph.Degree(x), model.Degree(x));
      }
    }
  }
  EXPECT_EQ(graph.LiveNodes(),
            std::vector<NodeId>(model.live().begin(), model.live().end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphFuzz,
                         ::testing::Values(1, 7, 42, 1234, 99999));

// ---------------------------------------------------------------------
// LocalStore vs std::map reference model.
// ---------------------------------------------------------------------

class StoreFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StoreFuzz, MatchesReferenceModel) {
  Rng rng(GetParam());
  LocalStore store;
  std::map<LocalTupleId, Tuple> model;
  LocalTupleId id_bound = 4;
  for (int step = 0; step < 5000; ++step) {
    const uint64_t op = rng.NextIndex(10);
    const LocalTupleId target = rng.NextIndex(id_bound);
    if (op < 3) {
      Tuple t = {rng.NextDouble(), rng.NextDouble()};
      const LocalTupleId id = store.Insert(t);
      ASSERT_TRUE(model.emplace(id, std::move(t)).second)
          << "id reuse at step " << step;
      id_bound = id + 2;
    } else if (op < 5) {
      Tuple t = {rng.NextDouble()};
      const bool expect = model.count(target) > 0;
      ASSERT_EQ(store.Update(target, t).ok(), expect);
      if (expect) model[target] = std::move(t);
    } else if (op < 6) {
      const bool expect = model.count(target) > 0 &&
                          !model[target].empty();
      const double v = rng.NextDouble();
      const bool ok = store.UpdateAttribute(target, 0, v).ok();
      ASSERT_EQ(ok, expect);
      if (expect) model[target][0] = v;
    } else if (op < 8) {
      ASSERT_EQ(store.Erase(target).ok(), model.erase(target) > 0);
    } else {
      Result<Tuple> got = store.Get(target);
      auto it = model.find(target);
      ASSERT_EQ(got.ok(), it != model.end());
      if (got.ok()) {
        ASSERT_EQ(*got, it->second);
      }
    }
    ASSERT_EQ(store.Size(), model.size()) << "step " << step;
  }
  // Final sweep: every model entry is present and equal.
  for (const auto& [id, tuple] : model) {
    Result<Tuple> got = store.Get(id);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, tuple);
  }
  // ForEach visits exactly the model's keys.
  std::set<LocalTupleId> visited;
  store.ForEach([&](LocalTupleId id, const Tuple&) { visited.insert(id); });
  EXPECT_EQ(visited.size(), model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreFuzz,
                         ::testing::Values(2, 17, 404, 31337));

}  // namespace
}  // namespace digest
