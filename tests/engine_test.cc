#include "core/engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "net/topology.h"

namespace digest {
namespace {

// A database whose average drifts linearly: every tuple gains `slope`
// per tick plus small noise.
class DriftingDatabase {
 public:
  DriftingDatabase(size_t nodes, size_t tuples_per_node, double slope,
                   uint64_t seed)
      : slope_(slope), rng_(seed) {
    graph = MakeComplete(nodes).value();
    db = std::make_unique<P2PDatabase>(Schema::Create({"v"}).value());
    for (NodeId node : graph.LiveNodes()) {
      EXPECT_TRUE(db->AddNode(node).ok());
      for (size_t i = 0; i < tuples_per_node; ++i) {
        const LocalTupleId id = db->StoreAt(node).value()->Insert(
            {rng_.NextGaussian(100.0, 5.0)});
        refs_.push_back(TupleRef{node, id});
      }
    }
  }

  void Advance() {
    for (const TupleRef& ref : refs_) {
      const double v = db->GetTuple(ref).value()[0];
      EXPECT_TRUE(db->StoreAt(ref.node)
                      .value()
                      ->UpdateAttribute(ref.local, 0,
                                        v + slope_ +
                                            rng_.NextGaussian(0.0, 0.05))
                      .ok());
    }
  }

  double TrueAvg() const {
    AggregateQuery q = AggregateQuery::Parse("SELECT AVG(v) FROM R").value();
    return db->ExactAggregate(q).value();
  }

  Graph graph;
  std::unique_ptr<P2PDatabase> db;

 private:
  std::vector<TupleRef> refs_;
  double slope_;
  Rng rng_;
};

ContinuousQuerySpec Spec(double delta, double epsilon, double p = 0.95) {
  return ContinuousQuerySpec::Create("SELECT AVG(v) FROM R",
                                     PrecisionSpec{delta, epsilon, p})
      .value();
}

DigestEngineOptions FastOptions(SchedulerKind scheduler,
                                EstimatorKind estimator) {
  DigestEngineOptions options;
  options.scheduler = scheduler;
  options.estimator = estimator;
  options.sampler = SamplerKind::kExactCentral;  // Fast path for tests.
  return options;
}

TEST(EngineTest, CreateValidatesInputs) {
  DriftingDatabase data(4, 20, 0.1, 1);
  EXPECT_FALSE(DigestEngine::Create(&data.graph, data.db.get(),
                                    Spec(1.0, 1.0), /*querying_node=*/99,
                                    Rng(2), nullptr)
                   .ok());
  ContinuousQuerySpec bad = Spec(1.0, 1.0);
  bad.precision.confidence = 2.0;
  EXPECT_FALSE(
      DigestEngine::Create(&data.graph, data.db.get(), bad, 0, Rng(2),
                           nullptr)
          .ok());
}

TEST(EngineTest, TicksMustIncrease) {
  DriftingDatabase data(4, 20, 0.1, 3);
  auto engine = DigestEngine::Create(&data.graph, data.db.get(),
                                     Spec(1.0, 1.0), 0, Rng(4), nullptr,
                                     FastOptions(SchedulerKind::kAll,
                                                 EstimatorKind::kIndependent))
                    .value();
  ASSERT_TRUE(engine->Tick(1).ok());
  EXPECT_FALSE(engine->Tick(1).ok());
  EXPECT_FALSE(engine->Tick(0).ok());
  EXPECT_TRUE(engine->Tick(2).ok());
}

TEST(EngineTest, AllSchedulerSnapshotsEveryTick) {
  DriftingDatabase data(4, 50, 0.2, 5);
  auto engine = DigestEngine::Create(&data.graph, data.db.get(),
                                     Spec(1.0, 0.5), 0, Rng(6), nullptr,
                                     FastOptions(SchedulerKind::kAll,
                                                 EstimatorKind::kIndependent))
                    .value();
  for (int t = 1; t <= 30; ++t) {
    data.Advance();
    Result<EngineTickResult> r = engine->Tick(t);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->snapshot_executed);
  }
  EXPECT_EQ(engine->stats().snapshots, 30u);
  EXPECT_EQ(engine->stats().ticks, 30u);
}

TEST(EngineTest, PredSchedulerSkipsTicksOnSmoothDrift) {
  DriftingDatabase data(4, 50, 0.2, 7);
  DigestEngineOptions options =
      FastOptions(SchedulerKind::kPred, EstimatorKind::kIndependent);
  options.extrapolator.history_points = 3;
  auto engine = DigestEngine::Create(&data.graph, data.db.get(),
                                     Spec(/*delta=*/2.0, 0.3), 0, Rng(8),
                                     nullptr, options)
                    .value();
  for (int t = 1; t <= 60; ++t) {
    data.Advance();
    ASSERT_TRUE(engine->Tick(t).ok());
  }
  // Drift 0.2/tick, delta 2: a snapshot every ~10 ticks after bootstrap.
  EXPECT_LT(engine->stats().snapshots, 25u);
  EXPECT_GT(engine->stats().snapshots, 5u);
}

TEST(EngineTest, ReportedValueHoldsBetweenUpdates) {
  DriftingDatabase data(4, 50, 0.0, 9);  // No drift.
  auto engine = DigestEngine::Create(&data.graph, data.db.get(),
                                     Spec(/*delta=*/5.0, 0.5), 0, Rng(10),
                                     nullptr,
                                     FastOptions(SchedulerKind::kAll,
                                                 EstimatorKind::kIndependent))
                    .value();
  data.Advance();
  Result<EngineTickResult> first = engine->Tick(1);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->result_updated);
  const double reported = first->reported_value;
  for (int t = 2; t <= 20; ++t) {
    data.Advance();
    Result<EngineTickResult> r = engine->Tick(t);
    ASSERT_TRUE(r.ok());
    // Static aggregate: never drifts delta, so the result never updates.
    EXPECT_FALSE(r->result_updated);
    EXPECT_DOUBLE_EQ(r->reported_value, reported);
  }
  EXPECT_EQ(engine->stats().result_updates, 1u);
}

TEST(EngineTest, ResolutionSemanticsUpdateOnDelta) {
  DriftingDatabase data(4, 80, 0.5, 11);
  auto engine = DigestEngine::Create(&data.graph, data.db.get(),
                                     Spec(/*delta=*/3.0, 0.2), 0, Rng(12),
                                     nullptr,
                                     FastOptions(SchedulerKind::kAll,
                                                 EstimatorKind::kIndependent))
                    .value();
  double last_update_value = 0.0;
  bool have_update = false;
  for (int t = 1; t <= 40; ++t) {
    data.Advance();
    Result<EngineTickResult> r = engine->Tick(t);
    ASSERT_TRUE(r.ok());
    if (r->result_updated) {
      if (have_update) {
        EXPECT_GE(std::fabs(r->reported_value - last_update_value), 3.0);
      }
      last_update_value = r->reported_value;
      have_update = true;
    }
  }
  EXPECT_GT(engine->stats().result_updates, 3u);
}

TEST(EngineTest, StrictModeTracksDriftWithinTolerance) {
  DriftingDatabase data(4, 100, 0.3, 13);
  DigestEngineOptions options =
      FastOptions(SchedulerKind::kPred, EstimatorKind::kRepeated);
  options.strict_resolution = true;
  auto engine = DigestEngine::Create(&data.graph, data.db.get(),
                                     Spec(/*delta=*/1.0, 0.3), 0, Rng(14),
                                     nullptr, options)
                    .value();
  int violations = 0;
  for (int t = 1; t <= 80; ++t) {
    data.Advance();
    Result<EngineTickResult> r = engine->Tick(t);
    ASSERT_TRUE(r.ok());
    // delta + epsilon is the per-tick contract; allow two extra ticks of
    // drift (2 * 0.3) of slack for prediction overshoot.
    if (std::fabs(r->reported_value - data.TrueAvg()) > 1.0 + 0.3 + 0.6) {
      ++violations;
    }
  }
  EXPECT_LE(violations, 8);
}

TEST(EngineTest, StrictModeTradesSnapshotsForResolution) {
  // The documented trade-off: strict mode executes at least as many
  // snapshots and achieves at-most-equal worst-case lag.
  auto run = [](bool strict, size_t& snapshots, double& worst_lag) {
    DriftingDatabase data(4, 100, 0.3, 21);
    DigestEngineOptions options =
        FastOptions(SchedulerKind::kPred, EstimatorKind::kIndependent);
    options.strict_resolution = strict;
    auto engine = DigestEngine::Create(&data.graph, data.db.get(),
                                       Spec(1.0, 0.3), 0, Rng(22), nullptr,
                                       options)
                      .value();
    worst_lag = 0.0;
    for (int t = 1; t <= 100; ++t) {
      data.Advance();
      Result<EngineTickResult> r = engine->Tick(t);
      ASSERT_TRUE(r.ok());
      worst_lag = std::max(
          worst_lag, std::fabs(r->reported_value - data.TrueAvg()));
    }
    snapshots = engine->stats().snapshots;
  };
  size_t strict_snapshots = 0, loose_snapshots = 0;
  double strict_lag = 0.0, loose_lag = 0.0;
  run(true, strict_snapshots, strict_lag);
  run(false, loose_snapshots, loose_lag);
  EXPECT_GE(strict_snapshots, loose_snapshots);
  EXPECT_LE(strict_lag, loose_lag + 0.5);
}

TEST(EngineTest, RepeatedEstimatorReportsCorrelation) {
  DriftingDatabase data(4, 100, 0.1, 15);
  auto engine = DigestEngine::Create(&data.graph, data.db.get(),
                                     Spec(0.5, 0.5), 0, Rng(16), nullptr,
                                     FastOptions(SchedulerKind::kAll,
                                                 EstimatorKind::kRepeated))
                    .value();
  for (int t = 1; t <= 10; ++t) {
    data.Advance();
    ASSERT_TRUE(engine->Tick(t).ok());
  }
  EXPECT_GT(engine->correlation_estimate(), 0.5);
  EXPECT_GT(engine->stats().retained_samples, 0u);
}

TEST(EngineTest, IndependentEngineHasZeroCorrelationEstimate) {
  DriftingDatabase data(4, 50, 0.1, 17);
  auto engine = DigestEngine::Create(&data.graph, data.db.get(),
                                     Spec(0.5, 0.5), 0, Rng(18), nullptr,
                                     FastOptions(SchedulerKind::kAll,
                                                 EstimatorKind::kIndependent))
                    .value();
  data.Advance();
  ASSERT_TRUE(engine->Tick(1).ok());
  EXPECT_EQ(engine->correlation_estimate(), 0.0);
  EXPECT_EQ(engine->stats().retained_samples, 0u);
}

TEST(EngineTest, McmcSamplerEndToEnd) {
  // Full production path: MCMC two-stage sampling on a mesh.
  DriftingDatabase data(9, 30, 0.0, 19);
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kAll;
  options.estimator = EstimatorKind::kIndependent;
  options.sampler = SamplerKind::kTwoStageMcmc;
  options.sampling_options.walk_length = 40;
  options.sampling_options.reset_length = 10;
  MessageMeter meter;
  auto engine = DigestEngine::Create(&data.graph, data.db.get(),
                                     Spec(1.0, 2.0), 0, Rng(20), &meter,
                                     options)
                    .value();
  data.Advance();
  Result<EngineTickResult> r = engine->Tick(1);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->reported_value, data.TrueAvg(), 4.0);
  EXPECT_GT(meter.walk_hops(), 0u);
  EXPECT_GT(meter.sample_transfers(), 0u);
}

}  // namespace
}  // namespace digest
