#include "sampling/metropolis.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "net/peer_health.h"
#include "net/topology.h"
#include "sampling/random_walk.h"

namespace digest {
namespace {

TEST(MetropolisAcceptanceTest, SymmetricCaseAlwaysAccepts) {
  // Equal weights, equal degrees: ratio 1.
  EXPECT_DOUBLE_EQ(MetropolisAcceptance(1.0, 4, 1.0, 4), 1.0);
}

TEST(MetropolisAcceptanceTest, RatioBelowOne) {
  // Moving toward lower weight-per-degree is damped by the ratio.
  EXPECT_DOUBLE_EQ(MetropolisAcceptance(2.0, 2, 1.0, 2), 0.5);
  EXPECT_DOUBLE_EQ(MetropolisAcceptance(1.0, 2, 2.0, 2), 1.0);
  // Degrees enter the ratio: w_j d_i / (w_i d_j).
  EXPECT_DOUBLE_EQ(MetropolisAcceptance(1.0, 1, 1.0, 4), 0.25);
}

TEST(MetropolisAcceptanceTest, ZeroWeights) {
  EXPECT_DOUBLE_EQ(MetropolisAcceptance(1.0, 2, 0.0, 2), 0.0);
  EXPECT_DOUBLE_EQ(MetropolisAcceptance(0.0, 2, 1.0, 2), 1.0);
}

TEST(ForwardingMatrixTest, RowsAreStochastic) {
  Rng rng(1);
  Result<Graph> g = MakeBarabasiAlbert(30, 2, rng);
  ASSERT_TRUE(g.ok());
  Result<ForwardingMatrix> fm =
      BuildForwardingMatrix(*g, UniformWeight());
  ASSERT_TRUE(fm.ok());
  const size_t n = fm->p.rows();
  ASSERT_EQ(n, 30u);
  for (size_t r = 0; r < n; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < n; ++c) {
      EXPECT_GE(fm->p(r, c), 0.0);
      sum += fm->p(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
    // Laziness: self-loop probability at least 1/2.
    EXPECT_GE(fm->p(r, r), 0.5 - 1e-12);
  }
}

TEST(ForwardingMatrixTest, StationarityOfTarget) {
  // π P = π for the Metropolis chain (Theorem 2), for a nonuniform
  // weight on an irregular graph.
  Rng rng(2);
  Result<Graph> g = MakeErdosRenyi(25, 0.2, rng);
  ASSERT_TRUE(g.ok());
  WeightFn weight = [](NodeId v) { return 1.0 + (v % 5); };
  Result<ForwardingMatrix> fm = BuildForwardingMatrix(*g, weight);
  ASSERT_TRUE(fm.ok());
  std::vector<double> pi_p = fm->p.VecMat(fm->pi);
  for (size_t i = 0; i < pi_p.size(); ++i) {
    EXPECT_NEAR(pi_p[i], fm->pi[i], 1e-12);
  }
}

TEST(ForwardingMatrixTest, DetailedBalanceHolds) {
  Rng rng(3);
  Result<Graph> g = MakeBarabasiAlbert(20, 2, rng);
  ASSERT_TRUE(g.ok());
  WeightFn weight = [](NodeId v) { return (v % 3 == 0) ? 4.0 : 1.0; };
  Result<ForwardingMatrix> fm = BuildForwardingMatrix(*g, weight);
  ASSERT_TRUE(fm.ok());
  const size_t n = fm->p.rows();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(fm->pi[i] * fm->p(i, j), fm->pi[j] * fm->p(j, i), 1e-13);
    }
  }
}

TEST(ForwardingMatrixTest, RequiresConnectedGraphAndPositiveWeights) {
  Graph g;
  g.AddNode();
  g.AddNode();
  EXPECT_EQ(BuildForwardingMatrix(g, UniformWeight()).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_TRUE(BuildForwardingMatrix(g, UniformWeight()).ok());
  WeightFn zero = [](NodeId v) { return v == 0 ? 0.0 : 1.0; };
  EXPECT_EQ(BuildForwardingMatrix(g, zero).status().code(),
            StatusCode::kInvalidArgument);
  Graph empty;
  EXPECT_FALSE(BuildForwardingMatrix(empty, UniformWeight()).ok());
}

TEST(TotalVariationTest, KnownValues) {
  EXPECT_DOUBLE_EQ(
      TotalVariationDistance({0.5, 0.5}, {0.5, 0.5}).value(), 0.0);
  EXPECT_DOUBLE_EQ(
      TotalVariationDistance({1.0, 0.0}, {0.0, 1.0}).value(), 1.0);
  EXPECT_DOUBLE_EQ(
      TotalVariationDistance({0.7, 0.3}, {0.5, 0.5}).value(), 0.2);
  EXPECT_FALSE(TotalVariationDistance({1.0}, {0.5, 0.5}).ok());
}

TEST(DistributionAfterTest, ConvergesToStationary) {
  Rng rng(4);
  Result<Graph> g = MakeErdosRenyi(20, 0.3, rng);
  ASSERT_TRUE(g.ok());
  Result<ForwardingMatrix> fm = BuildForwardingMatrix(*g, UniformWeight());
  ASSERT_TRUE(fm.ok());
  std::vector<double> start(fm->p.rows(), 0.0);
  start[0] = 1.0;  // Deterministic start.
  Result<std::vector<double>> after =
      DistributionAfter(*fm, start, 400);
  ASSERT_TRUE(after.ok());
  Result<double> tv = TotalVariationDistance(*after, fm->pi);
  ASSERT_TRUE(tv.ok());
  EXPECT_LT(*tv, 1e-6);
}

TEST(DistributionAfterTest, ZeroStepsIsIdentity) {
  Result<Graph> g = MakeRing(5);
  ASSERT_TRUE(g.ok());
  Result<ForwardingMatrix> fm = BuildForwardingMatrix(*g, UniformWeight());
  ASSERT_TRUE(fm.ok());
  std::vector<double> start = {1.0, 0.0, 0.0, 0.0, 0.0};
  EXPECT_EQ(DistributionAfter(*fm, start, 0).value(), start);
}

TEST(MixingTimeTest, MonotoneInGamma) {
  Result<Graph> g = MakeRing(12);
  ASSERT_TRUE(g.ok());
  Result<ForwardingMatrix> fm = BuildForwardingMatrix(*g, UniformWeight());
  ASSERT_TRUE(fm.ok());
  Result<size_t> loose = MixingTime(*fm, 0.25);
  Result<size_t> tight = MixingTime(*fm, 0.01);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(tight.ok());
  EXPECT_LE(*loose, *tight);
  EXPECT_GT(*tight, 0u);
}

TEST(MixingTimeTest, CompleteGraphMixesFasterThanRing) {
  const size_t n = 14;
  Result<Graph> ring = MakeRing(n);
  Result<Graph> complete = MakeComplete(n);
  ASSERT_TRUE(ring.ok());
  ASSERT_TRUE(complete.ok());
  Result<ForwardingMatrix> fm_ring =
      BuildForwardingMatrix(*ring, UniformWeight());
  Result<ForwardingMatrix> fm_complete =
      BuildForwardingMatrix(*complete, UniformWeight());
  ASSERT_TRUE(fm_ring.ok());
  ASSERT_TRUE(fm_complete.ok());
  Result<size_t> t_ring = MixingTime(*fm_ring, 0.05);
  Result<size_t> t_complete = MixingTime(*fm_complete, 0.05);
  ASSERT_TRUE(t_ring.ok());
  ASSERT_TRUE(t_complete.ok());
  EXPECT_LT(*t_complete, *t_ring);
}

TEST(MixingTimeTest, EigengapBoundHolds) {
  // Theorem 3: τ(γ) ≤ θ⁻¹ ln(1/(π_min γ)).
  Rng rng(5);
  Result<Graph> g = MakeBarabasiAlbert(16, 2, rng);
  ASSERT_TRUE(g.ok());
  Result<ForwardingMatrix> fm = BuildForwardingMatrix(*g, UniformWeight());
  ASSERT_TRUE(fm.ok());
  Result<double> lambda2 = SecondEigenvalueMagnitude(fm->p, fm->pi);
  ASSERT_TRUE(lambda2.ok());
  const double gap = 1.0 - *lambda2;
  ASSERT_GT(gap, 0.0);
  double pi_min = 1.0;
  for (double p : fm->pi) pi_min = std::min(pi_min, p);
  const double gamma = 0.01;
  const double bound = std::log(1.0 / (pi_min * gamma)) / gap;
  Result<size_t> tau = MixingTime(*fm, gamma);
  ASSERT_TRUE(tau.ok());
  EXPECT_LE(static_cast<double>(*tau), bound + 1.0);
}

// Long-run acceptance for quarantine-aware routing: with an OPEN
// breaker set (peers removed from the proposal distribution by the
// peer-health monitor), the lazy Metropolis walk with live-degree
// corrections is exactly the Metropolis chain on the induced live
// subgraph — so its empirical visit histogram must converge to the
// weight-proportional stationary target over the LIVE nodes, and the
// quarantined nodes must never be visited. This is the same TV gate
// the src/diag stationary_gap check applies to engine runs, driven
// here at chain granularity.
TEST(QuarantineMetropolisTest, VisitHistogramMeetsStationaryTargetTV) {
  const Graph graph = MakeMesh(5, 5).value();  // Degrees 2/3/4.
  const WeightFn weight = [](NodeId v) {
    return 1.0 + static_cast<double>(v % 4);
  };

  // Open two interior breakers via the real monitor (not a hand-rolled
  // view): sustained failures, exactly as folded walk outcomes would.
  PeerHealthMonitor monitor;
  monitor.set_now(0);
  for (NodeId peer : {NodeId{7}, NodeId{17}}) {
    for (int i = 0; i < 5; ++i) {
      WalkHealthBuffer buffer;
      buffer.RecordFailure(peer);
      monitor.FoldWalk(buffer);
    }
    ASSERT_EQ(monitor.StateOf(peer), BreakerState::kOpen);
  }
  const QuarantineView view = monitor.SnapshotView();
  ASSERT_EQ(view.count(), 2u);

  // The induced live subgraph must be connected or the walk cannot
  // reach every live node (BFS over non-quarantined neighbors).
  {
    std::vector<bool> reached(graph.NodeCount(), false);
    std::vector<NodeId> frontier = {0};
    reached[0] = true;
    size_t live_reached = 1;
    while (!frontier.empty()) {
      const NodeId at = frontier.back();
      frontier.pop_back();
      for (NodeId next : graph.Neighbors(at)) {
        if (view.Quarantined(next) || reached[next]) continue;
        reached[next] = true;
        ++live_reached;
        frontier.push_back(next);
      }
    }
    ASSERT_EQ(live_reached, graph.NodeCount() - view.count());
  }

  // Weight-proportional target over the live nodes only.
  double total_weight = 0.0;
  for (NodeId v = 0; v < static_cast<NodeId>(graph.NodeCount()); ++v) {
    if (!view.Quarantined(v)) total_weight += weight(v);
  }

  RandomWalk walk(/*origin=*/0);
  Rng rng(4242);
  std::vector<uint64_t> visits(graph.NodeCount(), 0);
  const size_t kBurnIn = 2000;
  const size_t kSteps = 300000;
  for (size_t i = 0; i < kBurnIn + kSteps; ++i) {
    ASSERT_TRUE(walk.Step(graph, weight, rng, /*meter=*/nullptr,
                          /*fallback=*/0, /*faults=*/nullptr,
                          /*retry=*/nullptr, /*telemetry=*/nullptr,
                          /*diag=*/nullptr, &view)
                    .ok());
    if (i >= kBurnIn) ++visits[walk.current()];
  }

  std::vector<double> empirical, target;
  for (NodeId v = 0; v < static_cast<NodeId>(graph.NodeCount()); ++v) {
    if (view.Quarantined(v)) {
      // The quarantine is airtight: an open peer is NEVER proposed.
      EXPECT_EQ(visits[v], 0u) << "visited quarantined node " << v;
      continue;
    }
    empirical.push_back(static_cast<double>(visits[v]) /
                        static_cast<double>(kSteps));
    target.push_back(weight(v) / total_weight);
  }
  const Result<double> tv = TotalVariationDistance(empirical, target);
  ASSERT_TRUE(tv.ok());
  // 300k recorded steps on 23 live nodes: sampling noise alone is
  // ~0.006 TV; 0.02 leaves headroom while still catching any
  // stationary-target bias from the live-degree corrections.
  EXPECT_LT(*tv, 0.02);

  // Control: the SAME chain without the quarantine view targets the
  // full graph — the restriction really is doing the re-weighting.
  RandomWalk free_walk(/*origin=*/0);
  Rng free_rng(4242);
  std::vector<uint64_t> free_visits(graph.NodeCount(), 0);
  for (size_t i = 0; i < kBurnIn + kSteps; ++i) {
    ASSERT_TRUE(free_walk
                    .Step(graph, weight, free_rng, nullptr, 0)
                    .ok());
    if (i >= kBurnIn) ++free_visits[free_walk.current()];
  }
  EXPECT_GT(free_visits[7], 0u);
  EXPECT_GT(free_visits[17], 0u);
}

// Property sweep: stationarity holds for every topology × weight combo.
class StationarityProperty : public ::testing::TestWithParam<int> {};

TEST_P(StationarityProperty, PiIsStationary) {
  const int combo = GetParam();
  Rng rng(1000 + combo);
  Result<Graph> g = (combo % 3 == 0)   ? MakeRing(17)
                    : (combo % 3 == 1) ? MakeMesh(4, 5)
                                       : MakeBarabasiAlbert(22, 2, rng);
  ASSERT_TRUE(g.ok());
  WeightFn weight;
  switch (combo / 3) {
    case 0:
      weight = UniformWeight();
      break;
    case 1:
      weight = [](NodeId v) { return 1.0 + v; };
      break;
    default:
      weight = [](NodeId v) { return (v % 2 == 0) ? 0.5 : 8.0; };
      break;
  }
  Result<ForwardingMatrix> fm = BuildForwardingMatrix(*g, weight);
  ASSERT_TRUE(fm.ok());
  std::vector<double> pi_p = fm->p.VecMat(fm->pi);
  for (size_t i = 0; i < pi_p.size(); ++i) {
    EXPECT_NEAR(pi_p[i], fm->pi[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Combos, StationarityProperty,
                         ::testing::Range(0, 9));

}  // namespace
}  // namespace digest
