#include "core/extrapolator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace digest {
namespace {

TEST(ExtrapolatorTest, BootstrapIsContinuousQuerying) {
  ExtrapolatorOptions options;
  options.history_points = 4;
  Extrapolator ex(options);
  EXPECT_FALSE(ex.Bootstrapped());
  EXPECT_FALSE(ex.PredictNextSnapshotTime(1.0).ok());  // No data at all.
  ASSERT_TRUE(ex.AddObservation(0, 10.0).ok());
  EXPECT_FALSE(ex.Bootstrapped());
  // Under-populated history: predict the very next tick.
  EXPECT_EQ(ex.PredictNextSnapshotTime(1.0).value(), 1);
  ASSERT_TRUE(ex.AddObservation(1, 10.5).ok());
  ASSERT_TRUE(ex.AddObservation(2, 11.0).ok());
  EXPECT_EQ(ex.PredictNextSnapshotTime(1.0).value(), 3);
  ASSERT_TRUE(ex.AddObservation(3, 11.5).ok());
  EXPECT_TRUE(ex.Bootstrapped());
}

TEST(ExtrapolatorTest, RejectsNonIncreasingTicks) {
  Extrapolator ex;
  ASSERT_TRUE(ex.AddObservation(5, 1.0).ok());
  EXPECT_FALSE(ex.AddObservation(5, 2.0).ok());
  EXPECT_FALSE(ex.AddObservation(4, 2.0).ok());
  EXPECT_TRUE(ex.AddObservation(6, 2.0).ok());
}

TEST(ExtrapolatorTest, RejectsNegativeDelta) {
  Extrapolator ex;
  ASSERT_TRUE(ex.AddObservation(0, 1.0).ok());
  EXPECT_FALSE(ex.PredictNextSnapshotTime(-1.0).ok());
}

TEST(ExtrapolatorTest, ZeroDeltaIsContinuous) {
  ExtrapolatorOptions options;
  options.history_points = 2;
  Extrapolator ex(options);
  ASSERT_TRUE(ex.AddObservation(0, 1.0).ok());
  ASSERT_TRUE(ex.AddObservation(1, 2.0).ok());
  EXPECT_EQ(ex.PredictNextSnapshotTime(0.0).value(), 2);
}

TEST(ExtrapolatorTest, LinearTrendPredictsCrossingTime) {
  // X grows by 1 per tick; with delta = 5 the next snapshot should land
  // roughly 5 ticks out (remainder shrinks it at most slightly).
  ExtrapolatorOptions options;
  options.history_points = 2;  // Degree-1 Taylor polynomial.
  Extrapolator ex(options);
  for (int t = 0; t <= 4; ++t) {
    ASSERT_TRUE(ex.AddObservation(t, 100.0 + t).ok());
  }
  Result<int64_t> next = ex.PredictNextSnapshotTime(5.0);
  ASSERT_TRUE(next.ok());
  EXPECT_GE(*next, 4 + 4);
  EXPECT_LE(*next, 4 + 6);
}

TEST(ExtrapolatorTest, SteeperSlopeMeansEarlierSnapshot) {
  ExtrapolatorOptions options;
  options.history_points = 2;
  Extrapolator slow(options), fast(options);
  for (int t = 0; t <= 3; ++t) {
    ASSERT_TRUE(slow.AddObservation(t, 0.5 * t).ok());
    ASSERT_TRUE(fast.AddObservation(t, 4.0 * t).ok());
  }
  const int64_t next_slow = slow.PredictNextSnapshotTime(8.0).value();
  const int64_t next_fast = fast.PredictNextSnapshotTime(8.0).value();
  EXPECT_GT(next_slow, next_fast);
}

TEST(ExtrapolatorTest, FlatlineSkipsToMaxSkip) {
  ExtrapolatorOptions options;
  options.history_points = 3;
  options.max_skip = 32;
  Extrapolator ex(options);
  for (int t = 0; t < 6; ++t) {
    ASSERT_TRUE(ex.AddObservation(t, 42.0).ok());
  }
  EXPECT_EQ(ex.PredictNextSnapshotTime(10.0).value(), 5 + 32);
}

TEST(ExtrapolatorTest, QuadraticSeriesFitsWithDegreeTwo) {
  // X(t) = t^2: with history 3 (degree 2) the fit is exact, so the
  // predicted crossing matches the analytic drift t_last^2 -> (t_last+s)^2.
  ExtrapolatorOptions options;
  options.history_points = 3;
  Extrapolator ex(options);
  for (int t = 0; t <= 5; ++t) {
    ASSERT_TRUE(ex.AddObservation(t, static_cast<double>(t * t)).ok());
  }
  // Drift from t=5: (5+s)^2 - 25 = 10s + s^2 > 20 -> s = 2.
  Result<int64_t> next = ex.PredictNextSnapshotTime(20.0);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 7);
}

TEST(ExtrapolatorTest, LevMarAndLeastSquaresAgree) {
  // Polynomial fitting is a linear problem: both fitting backends must
  // produce the same schedule (the paper's LM choice is about robustness,
  // not a different optimum).
  for (int degree_points = 2; degree_points <= 4; ++degree_points) {
    ExtrapolatorOptions lm_options;
    lm_options.history_points = static_cast<size_t>(degree_points);
    lm_options.use_levmar = true;
    ExtrapolatorOptions ls_options = lm_options;
    ls_options.use_levmar = false;
    Extrapolator lm(lm_options), ls(ls_options);
    for (int t = 0; t < 8; ++t) {
      const double x = 3.0 + 0.8 * t - 0.05 * t * t;
      ASSERT_TRUE(lm.AddObservation(t, x).ok());
      ASSERT_TRUE(ls.AddObservation(t, x).ok());
    }
    EXPECT_EQ(lm.PredictNextSnapshotTime(2.0).value(),
              ls.PredictNextSnapshotTime(2.0).value())
        << "history=" << degree_points;
  }
}

TEST(ExtrapolatorTest, RemainderInflationIsConservative) {
  ExtrapolatorOptions loose;
  loose.history_points = 3;
  loose.remainder_inflation = 1.0;
  ExtrapolatorOptions tight = loose;
  tight.remainder_inflation = 50.0;
  Extrapolator a(loose), b(tight);
  for (int t = 0; t < 6; ++t) {
    const double x = std::sin(0.3 * t) * 10.0;
    ASSERT_TRUE(a.AddObservation(t, x).ok());
    ASSERT_TRUE(b.AddObservation(t, x).ok());
  }
  EXPECT_LE(b.PredictNextSnapshotTime(4.0).value(),
            a.PredictNextSnapshotTime(4.0).value());
}

TEST(ExtrapolatorTest, ExtrapolatedValueTracksTrend) {
  ExtrapolatorOptions options;
  options.history_points = 2;
  Extrapolator ex(options);
  EXPECT_FALSE(ex.ExtrapolatedValue(0).ok());
  ASSERT_TRUE(ex.AddObservation(0, 10.0).ok());
  // Bootstrapping: hold the last value.
  EXPECT_DOUBLE_EQ(ex.ExtrapolatedValue(5).value(), 10.0);
  ASSERT_TRUE(ex.AddObservation(1, 12.0).ok());
  EXPECT_NEAR(ex.ExtrapolatedValue(3).value(), 16.0, 1e-6);
}

TEST(ExtrapolatorTest, ResetForgetsHistory) {
  Extrapolator ex;
  for (int t = 0; t < 6; ++t) {
    ASSERT_TRUE(ex.AddObservation(t, 1.0 * t).ok());
  }
  EXPECT_TRUE(ex.Bootstrapped());
  ex.Reset();
  EXPECT_FALSE(ex.Bootstrapped());
  EXPECT_TRUE(ex.AddObservation(0, 5.0).ok());  // Ticks restart.
}

// Property: for a linear series the predicted gap scales inversely with
// the slope, across PRED-k depths.
class PredKLinearScaling : public ::testing::TestWithParam<size_t> {};

TEST_P(PredKLinearScaling, GapInverselyProportionalToSlope) {
  const size_t k = GetParam();
  ExtrapolatorOptions options;
  options.history_points = k;
  options.max_skip = 1000;
  Extrapolator ex(options);
  const double slope = 0.25;
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(ex.AddObservation(t, slope * t).ok());
  }
  const double delta = 6.0;
  Result<int64_t> next = ex.PredictNextSnapshotTime(delta);
  ASSERT_TRUE(next.ok());
  const int64_t gap = *next - 9;
  // Ideal gap is delta/slope = 24; the remainder bound can only shorten
  // it, and for exact linear data it is ~0 for k >= 2.
  EXPECT_GE(gap, 20);
  EXPECT_LE(gap, 25);
}

INSTANTIATE_TEST_SUITE_P(HistoryDepths, PredKLinearScaling,
                         ::testing::Values(2, 3, 4, 5));

}  // namespace
}  // namespace digest
