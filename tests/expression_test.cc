#include "db/expression.h"

#include <gtest/gtest.h>

namespace digest {
namespace {

Schema TestSchema() {
  return Schema::Create({"cpu", "memory", "storage", "bandwidth"}).value();
}

double Eval(const std::string& text, const Tuple& tuple) {
  Result<Expression> expr = Expression::Parse(text);
  EXPECT_TRUE(expr.ok()) << expr.status();
  Schema schema = TestSchema();
  EXPECT_TRUE(expr->Bind(schema).ok());
  Result<double> v = expr->Evaluate(tuple);
  EXPECT_TRUE(v.ok()) << v.status();
  return v.value_or(-1e308);
}

TEST(ExpressionTest, Constants) {
  EXPECT_DOUBLE_EQ(Eval("42", {0, 0, 0, 0}), 42.0);
  EXPECT_DOUBLE_EQ(Eval("3.5", {0, 0, 0, 0}), 3.5);
  EXPECT_DOUBLE_EQ(Eval("1e3", {0, 0, 0, 0}), 1000.0);
  EXPECT_DOUBLE_EQ(Eval("2.5e-2", {0, 0, 0, 0}), 0.025);
}

TEST(ExpressionTest, Attributes) {
  EXPECT_DOUBLE_EQ(Eval("cpu", {7, 0, 0, 0}), 7.0);
  EXPECT_DOUBLE_EQ(Eval("bandwidth", {0, 0, 0, 9}), 9.0);
}

TEST(ExpressionTest, PaperExampleMemoryPlusStorage) {
  // The running example of §II: SUM(memory + storage).
  EXPECT_DOUBLE_EQ(Eval("memory + storage", {0, 4, 6, 0}), 10.0);
}

TEST(ExpressionTest, Precedence) {
  EXPECT_DOUBLE_EQ(Eval("2 + 3 * 4", {0, 0, 0, 0}), 14.0);
  EXPECT_DOUBLE_EQ(Eval("(2 + 3) * 4", {0, 0, 0, 0}), 20.0);
  EXPECT_DOUBLE_EQ(Eval("2 * cpu + memory", {3, 5, 0, 0}), 11.0);
  EXPECT_DOUBLE_EQ(Eval("10 - 4 - 3", {0, 0, 0, 0}), 3.0);  // Left assoc.
  EXPECT_DOUBLE_EQ(Eval("16 / 4 / 2", {0, 0, 0, 0}), 2.0);
}

TEST(ExpressionTest, UnaryMinus) {
  EXPECT_DOUBLE_EQ(Eval("-cpu", {5, 0, 0, 0}), -5.0);
  EXPECT_DOUBLE_EQ(Eval("--cpu", {5, 0, 0, 0}), 5.0);
  EXPECT_DOUBLE_EQ(Eval("3 * -2", {0, 0, 0, 0}), -6.0);
  EXPECT_DOUBLE_EQ(Eval("-(cpu + memory)", {1, 2, 0, 0}), -3.0);
}

TEST(ExpressionTest, WhitespaceInsensitive) {
  EXPECT_DOUBLE_EQ(Eval("  memory+storage ", {0, 1, 2, 0}), 3.0);
  EXPECT_DOUBLE_EQ(Eval("\tmemory\n+\nstorage\t", {0, 1, 2, 0}), 3.0);
}

TEST(ExpressionTest, ParseErrors) {
  EXPECT_FALSE(Expression::Parse("").ok());
  EXPECT_FALSE(Expression::Parse("1 +").ok());
  EXPECT_FALSE(Expression::Parse("(1 + 2").ok());
  EXPECT_FALSE(Expression::Parse("1 2").ok());
  EXPECT_FALSE(Expression::Parse("a $ b").ok());
  EXPECT_FALSE(Expression::Parse("* 3").ok());
  EXPECT_EQ(Expression::Parse("+").status().code(), StatusCode::kParseError);
}

TEST(ExpressionTest, AttributesAreCollectedOnce) {
  Result<Expression> expr = Expression::Parse("cpu + memory * cpu");
  ASSERT_TRUE(expr.ok());
  ASSERT_EQ(expr->attributes().size(), 2u);
  EXPECT_EQ(expr->attributes()[0], "cpu");
  EXPECT_EQ(expr->attributes()[1], "memory");
}

TEST(ExpressionTest, BindFailsOnUnknownAttribute) {
  Result<Expression> expr = Expression::Parse("nonexistent + 1");
  ASSERT_TRUE(expr.ok());
  Schema schema = TestSchema();
  EXPECT_EQ(expr->Bind(schema).code(), StatusCode::kNotFound);
}

TEST(ExpressionTest, EvaluateWithoutBindFails) {
  Result<Expression> expr = Expression::Parse("cpu");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr->Evaluate({1.0}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ExpressionTest, ConstantExpressionNeedsNoBind) {
  Result<Expression> expr = Expression::Parse("2 * 21");
  ASSERT_TRUE(expr.ok());
  EXPECT_TRUE(expr->bound());
  Result<double> v = expr->Evaluate({});
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 42.0);
}

TEST(ExpressionTest, DivisionByZeroFails) {
  Result<Expression> expr = Expression::Parse("1 / cpu");
  ASSERT_TRUE(expr.ok());
  Schema schema = TestSchema();
  ASSERT_TRUE(expr->Bind(schema).ok());
  EXPECT_EQ(expr->Evaluate({0.0, 0, 0, 0}).status().code(),
            StatusCode::kNumericError);
  Result<double> ok = expr->Evaluate({2.0, 0, 0, 0});
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(*ok, 0.5);
}

TEST(ExpressionTest, NarrowTupleFails) {
  Result<Expression> expr = Expression::Parse("bandwidth");
  ASSERT_TRUE(expr.ok());
  Schema schema = TestSchema();
  ASSERT_TRUE(expr->Bind(schema).ok());
  EXPECT_EQ(expr->Evaluate({1.0, 2.0}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(ExpressionTest, FactoryHelpers) {
  Expression attr = Expression::Attribute("memory");
  Schema schema = TestSchema();
  ASSERT_TRUE(attr.Bind(schema).ok());
  Result<double> v = attr.Evaluate({0, 8, 0, 0});
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 8.0);

  Expression c = Expression::Constant(2.5);
  Result<double> cv = c.Evaluate({});
  ASSERT_TRUE(cv.ok());
  EXPECT_DOUBLE_EQ(*cv, 2.5);
}

TEST(ExpressionTest, ToStringRoundTripsSemantics) {
  Result<Expression> expr = Expression::Parse("2*(cpu + -3)/memory");
  ASSERT_TRUE(expr.ok());
  Result<Expression> reparsed = Expression::Parse(expr->ToString());
  ASSERT_TRUE(reparsed.ok()) << expr->ToString();
  Schema schema = TestSchema();
  ASSERT_TRUE(expr->Bind(schema).ok());
  ASSERT_TRUE(reparsed->Bind(schema).ok());
  const Tuple t = {5, 4, 0, 0};
  EXPECT_DOUBLE_EQ(expr->Evaluate(t).value(), reparsed->Evaluate(t).value());
}

TEST(ExpressionTest, CopyIsIndependent) {
  Result<Expression> expr = Expression::Parse("cpu + 1");
  ASSERT_TRUE(expr.ok());
  Expression copy = *expr;
  Schema schema = TestSchema();
  ASSERT_TRUE(copy.Bind(schema).ok());
  EXPECT_TRUE(copy.bound());
  EXPECT_FALSE(expr->bound());  // Original unaffected.
}

}  // namespace
}  // namespace digest
