// Tests of the BETWEEN / IN predicate sugar (desugared onto the core
// comparison and boolean nodes).
#include <gtest/gtest.h>

#include "db/predicate.h"
#include "db/query.h"

namespace digest {
namespace {

Schema TestSchema() {
  return Schema::Create({"cpu", "memory", "storage", "bandwidth"}).value();
}

bool Eval(const std::string& text, const Tuple& tuple) {
  Result<Predicate> pred = Predicate::Parse(text);
  EXPECT_TRUE(pred.ok()) << text << ": " << pred.status();
  if (!pred.ok()) return false;
  Schema schema = TestSchema();
  EXPECT_TRUE(pred->Bind(schema).ok());
  Result<bool> v = pred->Evaluate(tuple);
  EXPECT_TRUE(v.ok()) << v.status();
  return v.value_or(false);
}

TEST(BetweenTest, InclusiveBounds) {
  const Tuple t = {4.0, 8.0, 16.0, 2.0};
  EXPECT_TRUE(Eval("cpu BETWEEN 2 AND 6", t));
  EXPECT_TRUE(Eval("cpu BETWEEN 4 AND 4", t));
  EXPECT_FALSE(Eval("cpu BETWEEN 5 AND 9", t));
  EXPECT_FALSE(Eval("cpu BETWEEN 1 AND 3", t));
}

TEST(BetweenTest, ArithmeticBounds) {
  const Tuple t = {4.0, 8.0, 16.0, 2.0};
  EXPECT_TRUE(Eval("memory BETWEEN cpu AND storage", t));
  EXPECT_TRUE(Eval("cpu + bandwidth BETWEEN 5 AND memory - 1", t));
}

TEST(BetweenTest, AndAfterBetweenIsConjunction) {
  const Tuple t = {4.0, 8.0, 16.0, 2.0};
  // The first AND binds to BETWEEN, the second is boolean conjunction.
  EXPECT_TRUE(Eval("cpu BETWEEN 2 AND 6 AND memory > 5", t));
  EXPECT_FALSE(Eval("cpu BETWEEN 2 AND 6 AND memory > 50", t));
}

TEST(BetweenTest, ParseErrors) {
  EXPECT_FALSE(Predicate::Parse("cpu BETWEEN 2").ok());
  EXPECT_FALSE(Predicate::Parse("cpu BETWEEN 2 OR 3").ok());
  EXPECT_FALSE(Predicate::Parse("cpu BETWEEN AND 3").ok());
}

TEST(InTest, MatchesListMembers) {
  const Tuple t = {4.0, 8.0, 16.0, 2.0};
  EXPECT_TRUE(Eval("cpu IN (1, 4, 9)", t));
  EXPECT_FALSE(Eval("cpu IN (1, 5, 9)", t));
  EXPECT_TRUE(Eval("cpu IN (4)", t));
  EXPECT_TRUE(Eval("memory IN (cpu * 2, 99)", t));
}

TEST(InTest, NotIn) {
  const Tuple t = {4.0, 8.0, 16.0, 2.0};
  EXPECT_FALSE(Eval("cpu NOT IN (1, 4, 9)", t));
  EXPECT_TRUE(Eval("cpu NOT IN (1, 5, 9)", t));
  // Prefix NOT on an IN comparison still works.
  EXPECT_TRUE(Eval("NOT cpu IN (1, 5, 9)", t));
}

TEST(InTest, CombinesWithConnectives) {
  const Tuple t = {4.0, 8.0, 16.0, 2.0};
  EXPECT_TRUE(Eval("cpu IN (3, 4) AND memory IN (8, 9)", t));
  EXPECT_TRUE(Eval("cpu IN (9) OR bandwidth BETWEEN 1 AND 3", t));
}

TEST(InTest, ParseErrors) {
  EXPECT_FALSE(Predicate::Parse("cpu IN").ok());
  EXPECT_FALSE(Predicate::Parse("cpu IN ()").ok());
  EXPECT_FALSE(Predicate::Parse("cpu IN (1,").ok());
  EXPECT_FALSE(Predicate::Parse("cpu IN (1 2)").ok());
  EXPECT_FALSE(Predicate::Parse("cpu NOT (1)").ok());
}

TEST(SugarTest, RoundTripsThroughToString) {
  for (const char* text :
       {"cpu BETWEEN 2 AND 6", "cpu IN (1, 4, 9)",
        "memory NOT IN (2, 3) AND cpu BETWEEN 0 AND 10"}) {
    Result<Predicate> pred = Predicate::Parse(text);
    ASSERT_TRUE(pred.ok()) << text;
    Result<Predicate> reparsed = Predicate::Parse(pred->ToString());
    ASSERT_TRUE(reparsed.ok()) << pred->ToString();
    Schema schema = TestSchema();
    ASSERT_TRUE(pred->Bind(schema).ok());
    ASSERT_TRUE(reparsed->Bind(schema).ok());
    for (double cpu : {0.0, 4.0, 20.0}) {
      const Tuple t = {cpu, 2.5, 0.0, 0.0};
      EXPECT_EQ(pred->Evaluate(t).value(), reparsed->Evaluate(t).value())
          << text << " at cpu=" << cpu;
    }
  }
}

TEST(SugarTest, WorksInWhereClauses) {
  Result<AggregateQuery> q = AggregateQuery::Parse(
      "SELECT AVG(memory) FROM R WHERE cpu BETWEEN 2 AND 6 AND "
      "bandwidth NOT IN (0, 99)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_FALSE(q->where.IsTrivial());
}

TEST(SugarTest, IdentifiersPrefixedWithKeywordsStillParse) {
  // "inbound"/"betweenX" must not be eaten as keywords.
  Result<Predicate> p = Predicate::Parse("inbound > 1");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->attributes()[0], "inbound");
  p = Predicate::Parse("between_calls < 2");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->attributes()[0], "between_calls");
}

}  // namespace
}  // namespace digest
