// The wall-clock profiling layer (src/prof/):
//  * aggregate per-phase accounting, span capture, and the span cap;
//  * the null fast path — a ScopedTimer with a null profiler records
//    nothing and an engine run with profiling attached is bit-identical
//    to an unprofiled run (same contract the tracer is held to);
//  * export integration — the `prof` section / wall track appear with a
//    profiler and the deterministic outputs are byte-identical without.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "db/p2p_database.h"
#include "net/fault_plan.h"
#include "net/topology.h"
#include "numeric/rng.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "prof/profiler.h"
#include "workload/experiment.h"
#include "workload/workload.h"

namespace digest {
namespace {

using prof::Phase;
using prof::Profiler;
using prof::ProfilerOptions;
using prof::ScopedTimer;

TEST(ProfilerTest, PhaseNamesAreStable) {
  // Pinned by tools/check_trace.py (PROF_PHASES) and the JSON schema.
  EXPECT_STREQ(prof::PhaseName(Phase::kEngineTick), "engine_tick");
  EXPECT_STREQ(prof::PhaseName(Phase::kExtrapolatorFit),
               "extrapolator_fit");
  EXPECT_STREQ(prof::PhaseName(Phase::kExtrapolatorPredict),
               "extrapolator_predict");
  EXPECT_STREQ(prof::PhaseName(Phase::kEstimatorEvaluate),
               "estimator_evaluate");
  EXPECT_STREQ(prof::PhaseName(Phase::kWalkBatch), "walk_batch");
  EXPECT_STREQ(prof::PhaseName(Phase::kWalkAdvance), "walk_advance");
  EXPECT_STREQ(prof::PhaseName(Phase::kFaultDraw), "fault_draw");
}

TEST(ProfilerTest, RecordAccumulatesPhaseStats) {
  Profiler profiler;
  profiler.Record(Phase::kWalkAdvance, 100, 150, 3);
  profiler.Record(Phase::kWalkAdvance, 200, 220, 2);
  profiler.Record(Phase::kWalkAdvance, 300, 400, 0);
  const prof::PhaseStats& s = profiler.stats(Phase::kWalkAdvance);
  EXPECT_EQ(s.calls, 3u);
  EXPECT_EQ(s.total_ns, 50u + 20u + 100u);
  EXPECT_EQ(s.min_ns, 20u);
  EXPECT_EQ(s.max_ns, 100u);
  EXPECT_EQ(s.items, 5u);
  // Untouched phases stay zero.
  EXPECT_EQ(profiler.stats(Phase::kEngineTick).calls, 0u);
}

TEST(ProfilerTest, RecordToleratesNonMonotoneClockReadings) {
  Profiler profiler;
  profiler.Record(Phase::kEngineTick, 500, 400, 0);  // end < start
  EXPECT_EQ(profiler.stats(Phase::kEngineTick).calls, 1u);
  EXPECT_EQ(profiler.stats(Phase::kEngineTick).total_ns, 0u);
}

TEST(ProfilerTest, SpanCaptureOnlyForCoarsePhases) {
  Profiler profiler;
  profiler.Record(Phase::kEngineTick, 0, 10, 0);      // captured
  profiler.Record(Phase::kWalkBatch, 10, 20, 4);      // captured
  profiler.Record(Phase::kWalkAdvance, 20, 30, 100);  // counters only
  profiler.Record(Phase::kFaultDraw, 30, 31, 1);      // counters only
  ASSERT_EQ(profiler.spans().size(), 2u);
  EXPECT_EQ(profiler.spans()[0].phase, Phase::kEngineTick);
  EXPECT_EQ(profiler.spans()[1].phase, Phase::kWalkBatch);
  EXPECT_EQ(profiler.spans()[1].items, 4u);
  EXPECT_EQ(profiler.spans_dropped(), 0u);
  // The high-frequency phases still aggregated.
  EXPECT_EQ(profiler.stats(Phase::kWalkAdvance).items, 100u);
}

TEST(ProfilerTest, SpanCapBoundsMemoryAndCountsDrops) {
  ProfilerOptions options;
  options.max_spans = 2;
  Profiler profiler(options);
  for (int i = 0; i < 5; ++i) {
    profiler.Record(Phase::kEngineTick, i * 10, i * 10 + 5, 0);
  }
  EXPECT_EQ(profiler.spans().size(), 2u);
  EXPECT_EQ(profiler.spans_dropped(), 3u);
  // Aggregates are unaffected by the cap.
  EXPECT_EQ(profiler.stats(Phase::kEngineTick).calls, 5u);
}

TEST(ProfilerTest, CaptureSpansFalseKeepsOnlyAggregates) {
  ProfilerOptions options;
  options.capture_spans = false;
  Profiler profiler(options);
  profiler.Record(Phase::kEngineTick, 0, 10, 0);
  EXPECT_TRUE(profiler.spans().empty());
  EXPECT_EQ(profiler.spans_dropped(), 0u);
  EXPECT_EQ(profiler.stats(Phase::kEngineTick).calls, 1u);
}

TEST(ProfilerTest, ResetClearsCountersAndSpans) {
  Profiler profiler;
  profiler.Record(Phase::kEngineTick, 0, 10, 0);
  profiler.AddItems(Phase::kWalkAdvance, 7);
  profiler.Reset();
  EXPECT_EQ(profiler.stats(Phase::kEngineTick).calls, 0u);
  EXPECT_EQ(profiler.stats(Phase::kWalkAdvance).items, 0u);
  EXPECT_TRUE(profiler.spans().empty());
}

TEST(ProfilerTest, ToJsonOmitsEmptyPhasesAndOrdersByEnum) {
  Profiler profiler;
  EXPECT_EQ(profiler.ToJson(),
            "{\"phases\":{},\"spans_captured\":0,\"spans_dropped\":0}");
  profiler.Record(Phase::kWalkAdvance, 0, 40, 8);
  profiler.Record(Phase::kEngineTick, 0, 100, 0);
  EXPECT_EQ(profiler.ToJson(),
            "{\"phases\":{"
            "\"engine_tick\":{\"calls\":1,\"total_ns\":100,\"min_ns\":100,"
            "\"max_ns\":100,\"items\":0},"
            "\"walk_advance\":{\"calls\":1,\"total_ns\":40,\"min_ns\":40,"
            "\"max_ns\":40,\"items\":8}"
            "},\"spans_captured\":1,\"spans_dropped\":0}");
}

TEST(ProfilerTest, ScopedTimerRecordsIntervalAndItems) {
  Profiler profiler;
  {
    ScopedTimer timer(&profiler, Phase::kEstimatorEvaluate);
    timer.AddItems(12);
  }
  const prof::PhaseStats& s = profiler.stats(Phase::kEstimatorEvaluate);
  EXPECT_EQ(s.calls, 1u);
  EXPECT_EQ(s.items, 12u);
  EXPECT_GE(s.max_ns, s.min_ns);
}

TEST(ProfilerTest, ScopedTimerWithNullProfilerIsANoOp) {
  ScopedTimer timer(nullptr, Phase::kEngineTick);
  timer.AddItems(5);  // Must not crash; nothing to record into.
}

TEST(ProfilerTest, RenderProfSummaryListsRecordedPhases) {
  Profiler profiler;
  const std::string empty = prof::RenderProfSummary(profiler);
  EXPECT_NE(empty.find("(no phases recorded)"), std::string::npos);
  profiler.Record(Phase::kWalkBatch, 0, 2000000, 50);
  const std::string out = prof::RenderProfSummary(profiler);
  EXPECT_NE(out.find("walk_batch"), std::string::npos);
  EXPECT_EQ(out.find("engine_tick"), std::string::npos);
}

// ---------------------------------------------------------------------
// Engine integration: the same drifting-overlay workload the obs
// determinism battery uses, reproducible from its seed alone.

class DriftWorkload : public Workload {
 public:
  explicit DriftWorkload(uint64_t seed)
      : graph_(MakeMesh(6, 6).value()),
        rng_(seed),
        db_(std::make_unique<P2PDatabase>(
            Schema::Create({"load"}).value())) {
    for (NodeId node : graph_.LiveNodes()) {
      (void)db_->AddNode(node);
      LocalStore* store = db_->StoreAt(node).value();
      for (size_t i = 0; i < 5; ++i) {
        Entry entry;
        entry.node = node;
        entry.value = rng_.NextGaussian(50.0, 10.0);
        entry.id = store->Insert({entry.value});
        entries_.push_back(entry);
      }
    }
  }

  Graph& graph() override { return graph_; }
  const Graph& graph() const override { return graph_; }
  P2PDatabase& db() override { return *db_; }
  const P2PDatabase& db() const override { return *db_; }
  const char* attribute() const override { return "load"; }
  int64_t now() const override { return now_; }

  Status Advance() override {
    ++now_;
    for (Entry& entry : entries_) {
      entry.value =
          50.0 + 0.8 * (entry.value - 50.0) + rng_.NextGaussian(0.0, 2.0);
      DIGEST_ASSIGN_OR_RETURN(LocalStore * store, db_->StoreAt(entry.node));
      DIGEST_RETURN_IF_ERROR(
          store->UpdateAttribute(entry.id, 0, entry.value));
    }
    return Status::OK();
  }

 private:
  struct Entry {
    NodeId node = kInvalidNode;
    LocalTupleId id = 0;
    double value = 0.0;
  };

  Graph graph_;
  Rng rng_;
  std::unique_ptr<P2PDatabase> db_;
  std::vector<Entry> entries_;
  int64_t now_ = 0;
};

constexpr size_t kTicks = 14;

RunResult RunEngine(Profiler* profiler, bool with_faults) {
  DriftWorkload workload(/*seed=*/99);
  const ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(load) FROM R",
                                  PrecisionSpec{1.0, 4.0, 0.9})
          .value();
  FaultPlanConfig config;
  config.message_loss = with_faults ? 0.06 : 0.0;
  config.agent_drop = with_faults ? 0.03 : 0.0;
  FaultPlan plan(config, /*seed=*/31);

  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kPred;
  options.estimator = EstimatorKind::kRepeated;
  options.sampling_options.walk_length = 14;
  options.sampling_options.reset_length = 4;
  if (with_faults) options.fault_plan = &plan;
  options.profiler = profiler;
  return RunEngineExperiment(workload, spec, options, kTicks, /*seed=*/7,
                             "prof")
      .value();
}

void ExpectBitIdentical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.reported.size(), b.reported.size());
  for (size_t i = 0; i < b.reported.size(); ++i) {
    EXPECT_EQ(a.reported[i], b.reported[i]) << "tick " << i;
    EXPECT_EQ(a.ci_halfwidths[i], b.ci_halfwidths[i]) << "tick " << i;
  }
  EXPECT_EQ(a.meter.Total(), b.meter.Total());
  EXPECT_EQ(a.meter.walk_hops(), b.meter.walk_hops());
  EXPECT_EQ(a.meter.losses(), b.meter.losses());
  EXPECT_EQ(a.meter.retries(), b.meter.retries());
  EXPECT_EQ(a.meter.agent_restarts(), b.meter.agent_restarts());
  EXPECT_EQ(a.stats.snapshots, b.stats.snapshots);
  EXPECT_EQ(a.stats.total_samples, b.stats.total_samples);
  EXPECT_EQ(a.stats.degraded_ticks, b.stats.degraded_ticks);
  EXPECT_EQ(a.correlation_estimate, b.correlation_estimate);
}

TEST(ProfilerEngineTest, ProfilingIsPureObservationCleanRun) {
  Profiler profiler;
  const RunResult profiled = RunEngine(&profiler, /*with_faults=*/false);
  const RunResult plain = RunEngine(nullptr, /*with_faults=*/false);
  ExpectBitIdentical(profiled, plain);
}

TEST(ProfilerEngineTest, ProfilingIsPureObservationFaultyRun) {
  Profiler profiler;
  const RunResult profiled = RunEngine(&profiler, /*with_faults=*/true);
  const RunResult plain = RunEngine(nullptr, /*with_faults=*/true);
  ExpectBitIdentical(profiled, plain);
}

TEST(ProfilerEngineTest, EngineRunPopulatesExpectedPhases) {
  Profiler profiler;
  const RunResult run = RunEngine(&profiler, /*with_faults=*/true);
  EXPECT_EQ(profiler.stats(Phase::kEngineTick).calls, kTicks);
  // Every snapshot occasion evaluates at least once (degraded occasions
  // evaluate twice).
  EXPECT_GE(profiler.stats(Phase::kEstimatorEvaluate).calls,
            run.stats.snapshots);
  EXPECT_GT(profiler.stats(Phase::kWalkBatch).calls, 0u);
  EXPECT_GT(profiler.stats(Phase::kWalkAdvance).items, 0u);
  // PRED fits history and predicts gaps once warm.
  EXPECT_GT(profiler.stats(Phase::kExtrapolatorFit).calls, 0u);
  EXPECT_GT(profiler.stats(Phase::kExtrapolatorPredict).calls, 0u);
  // Faulty run: the plan drew randomness under the timer.
  EXPECT_GT(profiler.stats(Phase::kFaultDraw).calls, 0u);
  // Coarse phases captured spans on the one shared wall axis.
  EXPECT_FALSE(profiler.spans().empty());
  for (const prof::WallSpan& span : profiler.spans()) {
    EXPECT_TRUE(prof::PhaseCapturesSpans(span.phase));
  }
}

TEST(ProfilerEngineTest, FaultDrawsUntimedWithoutProfiler) {
  // Sanity for the null path through the fault plan: no profiler, no
  // crash, and the injected schedule is the same (covered bit-exactly
  // by ProfilingIsPureObservationFaultyRun above).
  const RunResult run = RunEngine(nullptr, /*with_faults=*/true);
  EXPECT_GT(run.meter.Total(), 0u);
}

// ---------------------------------------------------------------------
// Exporter integration.

TEST(ProfilerExportTest, NullProfilerLeavesExportsByteIdentical) {
  obs::MemoryTracer tracer;
  obs::Registry registry;
  registry.GetCounter("walk.batches")->Increment(3);
  tracer.Emit(obs::RunBeginEvent{"x"});

  EXPECT_EQ(obs::RenderJsonLines(tracer.events()),
            obs::RenderJsonLines(tracer.events(), nullptr));
  EXPECT_EQ(obs::RenderChromeTrace(tracer.events()),
            obs::RenderChromeTrace(tracer.events(), nullptr));
  EXPECT_EQ(obs::RenderMetricsJson(registry, nullptr), registry.ToJson());
}

TEST(ProfilerExportTest, ProfilerAppendsProfSectionsToAllFormats) {
  obs::MemoryTracer tracer;
  obs::Registry registry;
  registry.GetCounter("walk.batches")->Increment(3);
  tracer.Emit(obs::RunBeginEvent{"x"});

  Profiler profiler;
  profiler.Record(Phase::kEngineTick, 1000, 51000, 0);
  profiler.Record(Phase::kWalkAdvance, 2000, 3000, 9);

  const std::string jsonl =
      obs::RenderJsonLines(tracer.events(), &profiler);
  EXPECT_NE(jsonl.find("\"event\":\"prof_phase\",\"phase\":\"engine_tick\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"phase\":\"walk_advance\""), std::string::npos);
  // prof lines trail the event lines.
  EXPECT_LT(jsonl.find("run_begin"), jsonl.find("prof_phase"));

  const std::string chrome =
      obs::RenderChromeTrace(tracer.events(), &profiler);
  EXPECT_NE(chrome.find("wall-clock profiler"), std::string::npos);
  // Only span-capturing phases appear on the wall track.
  EXPECT_NE(chrome.find("\"name\":\"engine_tick\",\"cat\":\"wall\""),
            std::string::npos);
  EXPECT_EQ(chrome.find("\"name\":\"walk_advance\",\"cat\":\"wall\""),
            std::string::npos);

  const std::string metrics = obs::RenderMetricsJson(registry, &profiler);
  EXPECT_NE(metrics.find("\"prof\":{\"phases\":{\"engine_tick\""),
            std::string::npos);
  // The registry body is untouched ahead of the prof splice.
  EXPECT_EQ(metrics.compare(0, registry.ToJson().size() - 1,
                            registry.ToJson(), 0,
                            registry.ToJson().size() - 1),
            0);
}

TEST(ProfilerExportTest, WallSpansSortedByStartInChromeTrace) {
  obs::MemoryTracer tracer;
  tracer.Emit(obs::RunBeginEvent{"x"});
  Profiler profiler;
  // Recorded out of order (completion order); export must sort.
  profiler.Record(Phase::kWalkBatch, 5000, 6000, 1);
  profiler.Record(Phase::kEngineTick, 1000, 9000, 0);
  const std::string chrome =
      obs::RenderChromeTrace(tracer.events(), &profiler);
  const size_t tick_pos =
      chrome.find("\"name\":\"engine_tick\",\"cat\":\"wall\"");
  const size_t batch_pos =
      chrome.find("\"name\":\"walk_batch\",\"cat\":\"wall\"");
  ASSERT_NE(tick_pos, std::string::npos);
  ASSERT_NE(batch_pos, std::string::npos);
  EXPECT_LT(tick_pos, batch_pos);
}

}  // namespace
}  // namespace digest
