#include "common/strings.h"

#include <gtest/gtest.h>

namespace digest {
namespace {

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  abc  "), "abc");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
  EXPECT_EQ(StripWhitespace("\t a b \n"), "a b");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringsTest, SplitAndTrim) {
  auto pieces = SplitAndTrim("a, b , c", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto pieces = SplitAndTrim("a,,b", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[1], "");
}

TEST(StringsTest, SplitSinglePiece) {
  auto pieces = SplitAndTrim("only", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "only");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("AvG", "aVg"));
  EXPECT_FALSE(EqualsIgnoreCase("SUM", "SU"));
  EXPECT_FALSE(EqualsIgnoreCase("SUM", "AVG"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(StringsTest, ToUpperAscii) {
  EXPECT_EQ(ToUpperAscii("select avg(x)"), "SELECT AVG(X)");
  EXPECT_EQ(ToUpperAscii("123_ab"), "123_AB");
}

TEST(StringsTest, JsonEscapePassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape(""), "");
  EXPECT_EQ(JsonEscape("plain text 123 {}[],:"), "plain text 123 {}[],:");
}

TEST(StringsTest, JsonEscapeQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("a\\b\\\\c"), "a\\\\b\\\\\\\\c");
}

TEST(StringsTest, JsonEscapeNamedControlCharacters) {
  EXPECT_EQ(JsonEscape("a\nb\tc\rd\be\ff"), "a\\nb\\tc\\rd\\be\\ff");
}

TEST(StringsTest, JsonEscapeOtherControlBytesAsUnicode) {
  EXPECT_EQ(JsonEscape(std::string("\x00", 1)), "\\u0000");
  EXPECT_EQ(JsonEscape("\x1b[0m"), "\\u001b[0m");
}

TEST(StringsTest, AppendJsonEscapedAppendsInPlace) {
  std::string out = "{\"k\":\"";
  AppendJsonEscaped(&out, "v\"1\n");
  out += "\"}";
  EXPECT_EQ(out, "{\"k\":\"v\\\"1\\n\"}");
}

}  // namespace
}  // namespace digest
