#include "numeric/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "numeric/rng.h"

namespace digest {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.PopulationVariance(), 0.0);
  EXPECT_EQ(s.SampleVariance(), 0.0);
}

TEST(RunningStatsTest, CheckedMeanFailsWhenEmpty) {
  RunningStats s;
  Result<double> mean = s.CheckedMean();
  ASSERT_FALSE(mean.ok());
  EXPECT_EQ(mean.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RunningStatsTest, CheckedMeanMatchesMeanWhenNonEmpty) {
  RunningStats s;
  s.Add(3.0);
  s.Add(-1.0);
  Result<double> mean = s.CheckedMean();
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ(mean.value(), s.Mean());
  EXPECT_DOUBLE_EQ(mean.value(), 1.0);
  // A genuine zero mean is distinguishable from the empty case.
  RunningStats zero;
  zero.Add(2.0);
  zero.Add(-2.0);
  ASSERT_TRUE(zero.CheckedMean().ok());
  EXPECT_DOUBLE_EQ(zero.CheckedMean().value(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.Mean(), 5.0);
  EXPECT_EQ(s.SampleVariance(), 0.0);
}

TEST(RunningStatsTest, MatchesBatchFormulas) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats s;
  for (double x : xs) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Mean(), Mean(xs));
  EXPECT_NEAR(s.SampleVariance(), SampleVariance(xs), 1e-12);
  EXPECT_NEAR(s.PopulationVariance(), PopulationVariance(xs), 1e-12);
  EXPECT_NEAR(s.SampleStdDev(), std::sqrt(SampleVariance(xs)), 1e-12);
}

TEST(RunningStatsTest, KnownVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.PopulationVariance(), 4.0);
}

TEST(RunningStatsTest, MergeEqualsConcatenation) {
  Rng rng(5);
  RunningStats left, right, all;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.NextGaussian(3.0, 2.0);
    left.Add(x);
    all.Add(x);
  }
  for (int i = 0; i < 57; ++i) {
    const double x = rng.NextGaussian(-1.0, 0.5);
    right.Add(x);
    all.Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.Mean(), all.Mean(), 1e-10);
  EXPECT_NEAR(left.SampleVariance(), all.SampleVariance(), 1e-9);
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.Mean(), 2.0);
}

TEST(StatsTest, MeanOfEmptyIsZero) { EXPECT_EQ(Mean({}), 0.0); }

TEST(StatsTest, CovarianceKnownValue) {
  // Perfectly linear y = 2x -> cov = 2*var(x).
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  Result<double> cov = SampleCovariance(xs, ys);
  ASSERT_TRUE(cov.ok());
  EXPECT_NEAR(*cov, 2.0 * SampleVariance(xs), 1e-12);
}

TEST(StatsTest, CovarianceRejectsBadInput) {
  EXPECT_FALSE(SampleCovariance({1.0}, {1.0}).ok());
  EXPECT_FALSE(SampleCovariance({1.0, 2.0}, {1.0}).ok());
}

TEST(StatsTest, CorrelationBounds) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  Result<double> pos = PearsonCorrelation(xs, {2, 4, 6, 8, 10});
  ASSERT_TRUE(pos.ok());
  EXPECT_DOUBLE_EQ(*pos, 1.0);
  Result<double> neg = PearsonCorrelation(xs, {10, 8, 6, 4, 2});
  ASSERT_TRUE(neg.ok());
  EXPECT_DOUBLE_EQ(*neg, -1.0);
}

TEST(StatsTest, CorrelationOfConstantFails) {
  EXPECT_FALSE(PearsonCorrelation({1, 1, 1}, {1, 2, 3}).ok());
}

TEST(StatsTest, CorrelationOfNoisyAr1MatchesCoefficient) {
  // AR(1) with coefficient a has lag-1 autocorrelation a.
  Rng rng(77);
  const double a = 0.7;
  std::vector<double> series;
  double x = 0.0;
  for (int i = 0; i < 60000; ++i) {
    x = a * x + rng.NextGaussian();
    series.push_back(x);
  }
  Result<double> rho = Autocorrelation(series, 1);
  ASSERT_TRUE(rho.ok());
  EXPECT_NEAR(*rho, a, 0.02);
  Result<double> rho2 = Autocorrelation(series, 2);
  ASSERT_TRUE(rho2.ok());
  EXPECT_NEAR(*rho2, a * a, 0.03);
}

TEST(StatsTest, AutocorrelationRejectsShortOrConstant) {
  EXPECT_FALSE(Autocorrelation({1.0, 2.0}, 2).ok());
  EXPECT_FALSE(Autocorrelation({3.0, 3.0, 3.0, 3.0}, 1).ok());
}

TEST(StatsTest, LinearRegressionRecoversLine) {
  const std::vector<double> xs = {0, 1, 2, 3, 4};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.5 - 2.0 * x);
  Result<LinearFit> fit = SimpleLinearRegression(xs, ys);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->intercept, 3.5, 1e-12);
  EXPECT_NEAR(fit->slope, -2.0, 1e-12);
}

TEST(StatsTest, LinearRegressionWithNoiseIsClose) {
  Rng rng(123);
  std::vector<double> xs, ys;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.NextDouble() * 10.0;
    xs.push_back(x);
    ys.push_back(1.0 + 0.5 * x + rng.NextGaussian(0.0, 0.3));
  }
  Result<LinearFit> fit = SimpleLinearRegression(xs, ys);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->intercept, 1.0, 0.05);
  EXPECT_NEAR(fit->slope, 0.5, 0.01);
}

TEST(StatsTest, LinearRegressionRejectsConstantX) {
  EXPECT_FALSE(SimpleLinearRegression({2, 2, 2}, {1, 2, 3}).ok());
}

// Property: correlation is invariant to affine transforms of both series.
class CorrelationInvariance
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(CorrelationInvariance, AffineTransformPreservesCorrelation) {
  const auto [scale, shift] = GetParam();
  Rng rng(314);
  std::vector<double> xs, ys, xs2, ys2;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.NextGaussian();
    const double y = 0.6 * x + 0.8 * rng.NextGaussian();
    xs.push_back(x);
    ys.push_back(y);
    xs2.push_back(scale * x + shift);
    ys2.push_back(scale * y - shift);
  }
  Result<double> base = PearsonCorrelation(xs, ys);
  Result<double> transformed = PearsonCorrelation(xs2, ys2);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(transformed.ok());
  EXPECT_NEAR(*base, *transformed, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Transforms, CorrelationInvariance,
    ::testing::Values(std::make_pair(2.0, 0.0), std::make_pair(0.5, 10.0),
                      std::make_pair(100.0, -7.0),
                      std::make_pair(1e-3, 1e3)));

}  // namespace
}  // namespace digest
