// Recovery battery for the parallel executor: a session checkpointed
// while running on N threads must restore and replay bit-identically on
// M threads, for any N, M >= 1 — the checkpoint captures per-batch
// substream keys implicitly through the operator RNG stream, so thread
// count is a pure execution detail, not session state. Runs under
// ThreadSanitizer in CI (DIGEST_SANITIZE=thread).
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "db/p2p_database.h"
#include "net/fault_plan.h"
#include "net/topology.h"
#include "numeric/rng.h"
#include "obs/exporters.h"
#include "obs/tracer.h"
#include "workload/workload.h"

namespace digest {
namespace {

/// Static-membership AR(1) workload, same shape as the serial recovery
/// battery, so the two suites stress the same session dynamics.
class StaticDriftWorkload : public Workload {
 public:
  static constexpr size_t kTuplesPerNode = 8;

  StaticDriftWorkload(Graph graph, uint64_t seed)
      : graph_(std::move(graph)),
        rng_(seed),
        db_(std::make_unique<P2PDatabase>(
            Schema::Create({"load"}).value())) {
    for (NodeId node : graph_.LiveNodes()) {
      (void)db_->AddNode(node);
      LocalStore* store = db_->StoreAt(node).value();
      for (size_t i = 0; i < kTuplesPerNode; ++i) {
        Entry entry;
        entry.node = node;
        entry.value = rng_.NextGaussian(50.0, 10.0);
        entry.id = store->Insert({entry.value});
        entries_.push_back(entry);
      }
    }
  }

  Graph& graph() override { return graph_; }
  const Graph& graph() const override { return graph_; }
  P2PDatabase& db() override { return *db_; }
  const P2PDatabase& db() const override { return *db_; }
  const char* attribute() const override { return "load"; }
  int64_t now() const override { return now_; }

  Status Advance() override {
    ++now_;
    for (Entry& entry : entries_) {
      entry.value =
          50.0 + 0.8 * (entry.value - 50.0) + rng_.NextGaussian(0.0, 2.0);
      DIGEST_ASSIGN_OR_RETURN(LocalStore * store, db_->StoreAt(entry.node));
      DIGEST_RETURN_IF_ERROR(
          store->UpdateAttribute(entry.id, 0, entry.value));
    }
    return Status::OK();
  }

 private:
  struct Entry {
    NodeId node = kInvalidNode;
    LocalTupleId id = 0;
    double value = 0.0;
  };

  Graph graph_;
  Rng rng_;
  std::unique_ptr<P2PDatabase> db_;
  std::vector<Entry> entries_;
  int64_t now_ = 0;
};

struct DriveConfig {
  size_t num_threads = 4;
  bool with_faults = false;
  FaultPlanConfig faults;
  bool hedge = false;
  bool allow_partial = false;
  double hop_budget_factor = 8.0;
  size_t ticks = 24;
};

struct DriveResult {
  std::vector<double> reported;
  std::vector<double> ci;
  EngineStats stats;
  MessageMeter meter;
  SessionHealth health = SessionHealth::kHealthy;
  uint64_t outcome_total = 0;
  std::vector<std::string> trace;  ///< Normalized JSONL (seq stripped).
};

bool IsLifecycleEvent(const obs::TraceEvent& event) {
  return std::holds_alternative<obs::CheckpointEvent>(event.payload) ||
         std::holds_alternative<obs::RestoreEvent>(event.payload);
}

std::vector<std::string> NormalizeTrace(
    const std::vector<obs::TraceEvent>& events) {
  std::vector<std::string> out;
  for (const obs::TraceEvent& event : events) {
    if (IsLifecycleEvent(event)) continue;
    const std::string line = obs::EventToJsonLine(event);
    out.push_back(line.substr(line.find(",\"t\":")));
  }
  return out;
}

constexpr uint64_t kWorkloadSeed = 777;
constexpr uint64_t kFaultSeed = 4242;
constexpr uint64_t kEngineSeed = 11;

DigestEngineOptions MakeOptions(const DriveConfig& cfg, size_t threads,
                                FaultPlan* plan, obs::Tracer* tracer) {
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kAll;
  options.estimator = EstimatorKind::kRepeated;
  options.num_threads = threads;
  options.sampling_options.walk_length = 16;
  options.sampling_options.reset_length = 4;
  options.sampling_options.retry.hop_budget_factor = cfg.hop_budget_factor;
  options.sampling_options.hedge.enabled = cfg.hedge;
  options.estimator_options.allow_partial = cfg.allow_partial;
  options.fault_plan = plan;
  options.tracer = tracer;
  return options;
}

/// Drives a session on cfg.num_threads. With kill_after >= 0, the
/// engine is checkpointed after that tick, destroyed, rebuilt with
/// restore_threads workers, and restored — simulating recovery onto a
/// machine with a different core count.
Result<DriveResult> Drive(const DriveConfig& cfg, int kill_after = -1,
                          size_t restore_threads = 0) {
  StaticDriftWorkload workload(MakeMesh(8, 8).value(), kWorkloadSeed);
  DIGEST_ASSIGN_OR_RETURN(
      const ContinuousQuerySpec spec,
      ContinuousQuerySpec::Create("SELECT AVG(load) FROM R",
                                  PrecisionSpec{1.0, 4.0, 0.9}));
  std::optional<FaultPlan> plan;
  if (cfg.with_faults) {
    DIGEST_RETURN_IF_ERROR(cfg.faults.Validate());
    plan.emplace(cfg.faults, kFaultSeed);
  }
  obs::MemoryTracer tracer;
  const DigestEngineOptions options =
      MakeOptions(cfg, cfg.num_threads, plan ? &*plan : nullptr, &tracer);
  if (plan) plan->SetTracer(&tracer);

  DriveResult out;
  Rng rng(kEngineSeed);
  DIGEST_ASSIGN_OR_RETURN(NodeId querying,
                          workload.graph().RandomLiveNode(rng));
  workload.ProtectNode(querying);
  DIGEST_ASSIGN_OR_RETURN(
      std::unique_ptr<DigestEngine> engine,
      DigestEngine::Create(&workload.graph(), &workload.db(), spec,
                           querying, rng.Fork(), &out.meter, options));
  for (size_t t = 0; t < cfg.ticks; ++t) {
    DIGEST_RETURN_IF_ERROR(workload.Advance());
    if (plan) plan->set_now(workload.now());
    DIGEST_ASSIGN_OR_RETURN(EngineTickResult tick,
                            engine->Tick(workload.now()));
    out.reported.push_back(tick.reported_value);
    out.ci.push_back(tick.ci_halfwidth);
    if (static_cast<int>(t) == kill_after) {
      DIGEST_ASSIGN_OR_RETURN(std::string blob, engine->Checkpoint());
      engine.reset();     // Kill the session process.
      out.meter.Reset();  // The fresh process starts with a zero meter.
      const DigestEngineOptions restore_options = MakeOptions(
          cfg, restore_threads, plan ? &*plan : nullptr, &tracer);
      Rng fresh_rng(kEngineSeed);
      DIGEST_ASSIGN_OR_RETURN(NodeId fresh_querying,
                              workload.graph().RandomLiveNode(fresh_rng));
      DIGEST_ASSIGN_OR_RETURN(
          engine, DigestEngine::Create(&workload.graph(), &workload.db(),
                                       spec, fresh_querying,
                                       fresh_rng.Fork(), &out.meter,
                                       restore_options));
      DIGEST_RETURN_IF_ERROR(engine->Restore(blob));
    }
  }
  out.stats = engine->stats();
  out.health = engine->health();
  for (size_t i = 0; i < kNumSnapshotOutcomes; ++i) {
    out.outcome_total +=
        engine->supervisor().outcome_count(static_cast<SnapshotOutcome>(i));
  }
  out.trace = NormalizeTrace(tracer.events());
  return out;
}

void ExpectBitIdentical(const DriveResult& a, const DriveResult& b) {
  ASSERT_EQ(a.reported.size(), b.reported.size());
  for (size_t i = 0; i < a.reported.size(); ++i) {
    EXPECT_EQ(a.reported[i], b.reported[i]) << "tick " << i;
    EXPECT_EQ(a.ci[i], b.ci[i]) << "tick " << i;
  }
  for (size_t i = 0; i < MessageMeter::kNumCategories; ++i) {
    const auto c = static_cast<MessageMeter::Category>(i);
    EXPECT_EQ(a.meter.Count(c), b.meter.Count(c)) << "category " << i;
  }
  EXPECT_EQ(a.meter.losses(), b.meter.losses());
  EXPECT_EQ(a.stats.snapshots, b.stats.snapshots);
  EXPECT_EQ(a.stats.total_samples, b.stats.total_samples);
  EXPECT_EQ(a.stats.fresh_samples, b.stats.fresh_samples);
  EXPECT_EQ(a.stats.retained_samples, b.stats.retained_samples);
  EXPECT_EQ(a.stats.degraded_ticks, b.stats.degraded_ticks);
  EXPECT_EQ(a.stats.partial_snapshots, b.stats.partial_snapshots);
  EXPECT_EQ(a.health, b.health);
  EXPECT_EQ(a.outcome_total, b.outcome_total);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i], b.trace[i]) << "event " << i;
  }
}

FaultPlanConfig ModerateFaults() {
  FaultPlanConfig faults;
  faults.message_loss = 0.05;
  faults.agent_drop = 0.02;
  faults.stall_fraction = 0.2;
  faults.stall_every = 8;
  faults.stall_length = 2;
  return faults;
}

TEST(ParallelRecoveryStressTest, RestoreOntoDifferentThreadCountsClean) {
  DriveConfig cfg;  // 4-thread uninterrupted run is the reference.
  cfg.num_threads = 4;
  Result<DriveResult> uninterrupted = Drive(cfg);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status().message();
  for (size_t restore_threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("restore_threads=" + std::to_string(restore_threads));
    Result<DriveResult> recovered =
        Drive(cfg, /*kill_after=*/9, restore_threads);
    ASSERT_TRUE(recovered.ok()) << recovered.status().message();
    ExpectBitIdentical(*uninterrupted, *recovered);
  }
}

TEST(ParallelRecoveryStressTest, RestoreOntoDifferentThreadCountsFaulted) {
  DriveConfig cfg;
  cfg.num_threads = 4;
  cfg.with_faults = true;
  cfg.faults = ModerateFaults();
  cfg.hedge = true;
  cfg.allow_partial = true;
  Result<DriveResult> uninterrupted = Drive(cfg);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status().message();
  for (size_t restore_threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("restore_threads=" + std::to_string(restore_threads));
    Result<DriveResult> recovered =
        Drive(cfg, /*kill_after=*/11, restore_threads);
    ASSERT_TRUE(recovered.ok()) << recovered.status().message();
    ExpectBitIdentical(*uninterrupted, *recovered);
  }
}

TEST(ParallelRecoveryStressTest, KillAtEveryPhaseReplaysOnOtherCounts) {
  // Checkpoint completeness is schedule-independent: kill early (no
  // retained pool yet), after the first occasion, and deep into the
  // run, restoring each time onto a different worker count.
  DriveConfig cfg;
  cfg.num_threads = 2;
  cfg.with_faults = true;
  cfg.faults = ModerateFaults();
  Result<DriveResult> uninterrupted = Drive(cfg);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status().message();
  const size_t restore_threads[] = {8, 1, 4};
  const int kill_after[] = {0, 1, 17};
  for (int i = 0; i < 3; ++i) {
    SCOPED_TRACE("kill_after=" + std::to_string(kill_after[i]) +
                 " restore_threads=" +
                 std::to_string(restore_threads[i]));
    Result<DriveResult> recovered =
        Drive(cfg, kill_after[i], restore_threads[i]);
    ASSERT_TRUE(recovered.ok()) << recovered.status().message();
    ExpectBitIdentical(*uninterrupted, *recovered);
  }
}

}  // namespace
}  // namespace digest
