// Session-health state machine: transition rules, streak thresholds,
// trace emission, registry export, and checkpoint round-trip.
#include "core/supervisor.h"

#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace digest {
namespace {

using Outcome = SnapshotOutcome;

TEST(SupervisorOptionsTest, ValidatesThresholds) {
  SupervisorOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.stale_threshold = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.stale_threshold = 1;
  options.recovery_successes = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SupervisorTest, StartsHealthyAndStaysHealthyOnSuccess) {
  SessionSupervisor sup;
  EXPECT_EQ(sup.health(), SessionHealth::kHealthy);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sup.RecordOutcome(Outcome::kMetContract),
              SessionHealth::kHealthy);
  }
  EXPECT_EQ(sup.transitions(), 0u);
  EXPECT_EQ(sup.outcome_count(Outcome::kMetContract), 5u);
}

TEST(SupervisorTest, AnyFailureDegradesAndOneSuccessHeals) {
  for (Outcome failure :
       {Outcome::kWidenedCi, Outcome::kPartial, Outcome::kTimeout}) {
    SessionSupervisor sup;
    EXPECT_EQ(sup.RecordOutcome(failure), SessionHealth::kDegraded);
    // Shallow degradation heals on a single contract-meeting snapshot.
    EXPECT_EQ(sup.RecordOutcome(Outcome::kMetContract),
              SessionHealth::kHealthy);
  }
}

TEST(SupervisorTest, FailureStreakReachesStale) {
  SupervisorOptions options;
  options.stale_threshold = 3;
  SessionSupervisor sup(options);
  EXPECT_EQ(sup.RecordOutcome(Outcome::kTimeout), SessionHealth::kDegraded);
  EXPECT_EQ(sup.RecordOutcome(Outcome::kTimeout), SessionHealth::kDegraded);
  EXPECT_EQ(sup.RecordOutcome(Outcome::kTimeout), SessionHealth::kStale);
  // Further failures keep it stale.
  EXPECT_EQ(sup.RecordOutcome(Outcome::kWidenedCi), SessionHealth::kStale);
}

TEST(SupervisorTest, RecoveryRequiresSuccessStreak) {
  SupervisorOptions options;
  options.stale_threshold = 2;
  options.recovery_successes = 2;
  SessionSupervisor sup(options);
  sup.RecordOutcome(Outcome::kTimeout);
  sup.RecordOutcome(Outcome::kTimeout);
  ASSERT_EQ(sup.health(), SessionHealth::kStale);
  // First success: probation, not trust.
  EXPECT_EQ(sup.RecordOutcome(Outcome::kMetContract),
            SessionHealth::kRecovering);
  // Relapse during probation drops straight back to stale.
  EXPECT_EQ(sup.RecordOutcome(Outcome::kPartial), SessionHealth::kStale);
  // A full success streak climbs out.
  EXPECT_EQ(sup.RecordOutcome(Outcome::kMetContract),
            SessionHealth::kRecovering);
  EXPECT_EQ(sup.RecordOutcome(Outcome::kMetContract),
            SessionHealth::kHealthy);
}

TEST(SupervisorTest, SingleRecoverySuccessSkipsProbation) {
  SupervisorOptions options;
  options.stale_threshold = 1;
  options.recovery_successes = 1;
  SessionSupervisor sup(options);
  // HEALTHY always degrades first; the stale threshold applies to the
  // failure streak observed while already degraded.
  EXPECT_EQ(sup.RecordOutcome(Outcome::kTimeout), SessionHealth::kDegraded);
  EXPECT_EQ(sup.RecordOutcome(Outcome::kTimeout), SessionHealth::kStale);
  EXPECT_EQ(sup.RecordOutcome(Outcome::kMetContract),
            SessionHealth::kHealthy);
}

TEST(SupervisorTest, EmitsSupervisorStateEventsOnTransitionsOnly) {
  obs::MemoryTracer tracer;
  SessionSupervisor sup;
  sup.SetTracer(&tracer);
  sup.RecordOutcome(Outcome::kMetContract);  // No transition, no event.
  sup.RecordOutcome(Outcome::kTimeout);      // HEALTHY -> DEGRADED.
  sup.RecordOutcome(Outcome::kTimeout);      // No transition yet.
  ASSERT_EQ(tracer.events().size(), 1u);
  const auto* ev = std::get_if<obs::SupervisorStateEvent>(
      &tracer.events()[0].payload);
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->from, "healthy");
  EXPECT_EQ(ev->to, "degraded");
  EXPECT_EQ(ev->outcome, "timeout");
  EXPECT_EQ(ev->consecutive, 1u);
}

TEST(SupervisorTest, ExportsOutcomeAndTransitionCounters) {
  SessionSupervisor sup;
  sup.RecordOutcome(Outcome::kMetContract);
  sup.RecordOutcome(Outcome::kTimeout);    // healthy -> degraded
  sup.RecordOutcome(Outcome::kMetContract);  // degraded -> healthy
  obs::Registry registry;
  sup.ExportToRegistry(&registry);
  EXPECT_EQ(registry
                .GetCounter("supervisor.outcomes",
                            {{"outcome", "met_contract"}})
                ->value(),
            2u);
  EXPECT_EQ(registry
                .GetCounter("supervisor.outcomes", {{"outcome", "timeout"}})
                ->value(),
            1u);
  EXPECT_EQ(registry
                .GetCounter("supervisor.transitions",
                            {{"from", "healthy"}, {"to", "degraded"}})
                ->value(),
            1u);
  EXPECT_EQ(registry
                .GetCounter("supervisor.transitions",
                            {{"from", "degraded"}, {"to", "healthy"}})
                ->value(),
            1u);
  EXPECT_EQ(registry.GetGauge("supervisor.state")->value(), 0.0);
}

TEST(SupervisorTest, SaveRestoreRoundTripsTheMachine) {
  SupervisorOptions options;
  options.stale_threshold = 2;
  SessionSupervisor sup(options);
  sup.RecordOutcome(Outcome::kTimeout);
  sup.RecordOutcome(Outcome::kPartial);
  ASSERT_EQ(sup.health(), SessionHealth::kStale);
  const SessionSupervisor::State saved = sup.SaveState();

  SessionSupervisor restored(options);
  restored.RestoreState(saved);
  EXPECT_EQ(restored.health(), SessionHealth::kStale);
  EXPECT_EQ(restored.consecutive_failures(), sup.consecutive_failures());
  EXPECT_EQ(restored.outcome_count(Outcome::kPartial), 1u);
  EXPECT_EQ(restored.transitions(), sup.transitions());
  // The restored machine continues exactly where the original would:
  // both see the same next transition.
  EXPECT_EQ(restored.RecordOutcome(Outcome::kMetContract),
            sup.RecordOutcome(Outcome::kMetContract));
}

TEST(SupervisorTest, NamesAreStable) {
  EXPECT_STREQ(SessionHealthName(SessionHealth::kHealthy), "healthy");
  EXPECT_STREQ(SessionHealthName(SessionHealth::kDegraded), "degraded");
  EXPECT_STREQ(SessionHealthName(SessionHealth::kStale), "stale");
  EXPECT_STREQ(SessionHealthName(SessionHealth::kRecovering), "recovering");
  EXPECT_STREQ(SnapshotOutcomeName(Outcome::kMetContract), "met_contract");
  EXPECT_STREQ(SnapshotOutcomeName(Outcome::kWidenedCi), "widened_ci");
  EXPECT_STREQ(SnapshotOutcomeName(Outcome::kPartial), "partial");
  EXPECT_STREQ(SnapshotOutcomeName(Outcome::kTimeout), "timeout");
}

}  // namespace
}  // namespace digest
