#include "numeric/levmar.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "numeric/rng.h"

namespace digest {
namespace {

TEST(LevMarTest, FitsLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 + 0.5 * i);
  }
  auto model = [](double x, const std::vector<double>& p) {
    return p[0] + p[1] * x;
  };
  Result<LevMarResult> fit = FitModelLevMar(model, xs, ys, {0.0, 0.0});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->parameters[0], 2.0, 1e-6);
  EXPECT_NEAR(fit->parameters[1], 0.5, 1e-6);
  EXPECT_LT(fit->final_cost, 1e-10);
}

TEST(LevMarTest, FitsCubicPolynomial) {
  std::vector<double> xs, ys;
  for (int i = -5; i <= 5; ++i) {
    const double x = 0.4 * i;
    xs.push_back(x);
    ys.push_back(1.0 - 2.0 * x + 0.3 * x * x + 0.1 * x * x * x);
  }
  auto model = [](double x, const std::vector<double>& p) {
    double acc = 0.0;
    for (size_t i = p.size(); i-- > 0;) acc = acc * x + p[i];
    return acc;
  };
  Result<LevMarResult> fit =
      FitModelLevMar(model, xs, ys, {0.0, 0.0, 0.0, 0.0});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->parameters[0], 1.0, 1e-5);
  EXPECT_NEAR(fit->parameters[1], -2.0, 1e-5);
  EXPECT_NEAR(fit->parameters[2], 0.3, 1e-5);
  EXPECT_NEAR(fit->parameters[3], 0.1, 1e-5);
}

TEST(LevMarTest, FitsNonlinearExponentialModel) {
  // y = a * exp(b x): genuinely nonlinear in parameters.
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    const double x = 0.1 * i;
    xs.push_back(x);
    ys.push_back(3.0 * std::exp(-1.5 * x));
  }
  auto model = [](double x, const std::vector<double>& p) {
    return p[0] * std::exp(p[1] * x);
  };
  Result<LevMarResult> fit = FitModelLevMar(model, xs, ys, {1.0, 0.0});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->parameters[0], 3.0, 1e-4);
  EXPECT_NEAR(fit->parameters[1], -1.5, 1e-4);
}

TEST(LevMarTest, NoisyDataStillConverges) {
  Rng rng(2024);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    const double x = 0.05 * i;
    xs.push_back(x);
    ys.push_back(4.0 + 1.2 * x + rng.NextGaussian(0.0, 0.05));
  }
  auto model = [](double x, const std::vector<double>& p) {
    return p[0] + p[1] * x;
  };
  Result<LevMarResult> fit = FitModelLevMar(model, xs, ys, {0.0, 0.0});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->parameters[0], 4.0, 0.05);
  EXPECT_NEAR(fit->parameters[1], 1.2, 0.02);
}

TEST(LevMarTest, RosenbrockStyleResidualsConverge) {
  // Classic LM stress: residuals r1 = 10(y - x^2), r2 = 1 - x.
  ResidualFn fn = [](const std::vector<double>& p,
                     std::vector<double>& r) {
    r[0] = 10.0 * (p[1] - p[0] * p[0]);
    r[1] = 1.0 - p[0];
  };
  LevMarOptions options;
  options.max_iterations = 500;
  Result<LevMarResult> fit =
      LevenbergMarquardt(fn, {-1.2, 1.0}, 2, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->parameters[0], 1.0, 1e-4);
  EXPECT_NEAR(fit->parameters[1], 1.0, 1e-4);
}

TEST(LevMarTest, RejectsUnderdeterminedProblems) {
  ResidualFn fn = [](const std::vector<double>&, std::vector<double>& r) {
    r[0] = 0.0;
  };
  EXPECT_FALSE(LevenbergMarquardt(fn, {1.0, 2.0}, 1).ok());
  EXPECT_FALSE(LevenbergMarquardt(fn, {}, 1).ok());
}

TEST(LevMarTest, MismatchedDataFails) {
  auto model = [](double, const std::vector<double>&) { return 0.0; };
  EXPECT_FALSE(FitModelLevMar(model, {1.0, 2.0}, {1.0}, {0.0}).ok());
}

TEST(LevMarTest, AlreadyOptimalStopsImmediately) {
  std::vector<double> xs = {0.0, 1.0, 2.0};
  std::vector<double> ys = {1.0, 2.0, 3.0};
  auto model = [](double x, const std::vector<double>& p) {
    return p[0] + p[1] * x;
  };
  Result<LevMarResult> fit = FitModelLevMar(model, xs, ys, {1.0, 1.0});
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit->converged);
  EXPECT_LE(fit->iterations, 3u);
}

}  // namespace
}  // namespace digest
