// Recovery battery for the query-session supervisor stack: checkpoint →
// kill → restore → run must replay the uninterrupted run bit-identically
// (estimates, meter, trace modulo the checkpoint/restore events), hedged
// walks and partial snapshots must activate only under faults, and
// Restore must reject malformed or mismatched blobs without touching the
// engine.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "core/engine.h"
#include "db/p2p_database.h"
#include "net/fault_plan.h"
#include "net/topology.h"
#include "numeric/rng.h"
#include "obs/exporters.h"
#include "obs/tracer.h"
#include "workload/workload.h"

namespace digest {
namespace {

/// Static-membership workload (same shape as fault_stress_test): every
/// node hosts kTuplesPerNode tuples whose attribute follows an AR(1)
/// process, so truth drifts while the overlay stays fixed.
class StaticDriftWorkload : public Workload {
 public:
  static constexpr size_t kTuplesPerNode = 8;

  StaticDriftWorkload(Graph graph, uint64_t seed)
      : graph_(std::move(graph)),
        rng_(seed),
        db_(std::make_unique<P2PDatabase>(
            Schema::Create({"load"}).value())) {
    for (NodeId node : graph_.LiveNodes()) {
      (void)db_->AddNode(node);
      LocalStore* store = db_->StoreAt(node).value();
      for (size_t i = 0; i < kTuplesPerNode; ++i) {
        Entry entry;
        entry.node = node;
        entry.value = rng_.NextGaussian(50.0, 10.0);
        entry.id = store->Insert({entry.value});
        entries_.push_back(entry);
      }
    }
  }

  Graph& graph() override { return graph_; }
  const Graph& graph() const override { return graph_; }
  P2PDatabase& db() override { return *db_; }
  const P2PDatabase& db() const override { return *db_; }
  const char* attribute() const override { return "load"; }
  int64_t now() const override { return now_; }

  Status Advance() override {
    ++now_;
    for (Entry& entry : entries_) {
      entry.value =
          50.0 + 0.8 * (entry.value - 50.0) + rng_.NextGaussian(0.0, 2.0);
      DIGEST_ASSIGN_OR_RETURN(LocalStore * store, db_->StoreAt(entry.node));
      DIGEST_RETURN_IF_ERROR(
          store->UpdateAttribute(entry.id, 0, entry.value));
    }
    return Status::OK();
  }

 private:
  struct Entry {
    NodeId node = kInvalidNode;
    LocalTupleId id = 0;
    double value = 0.0;
  };

  Graph graph_;
  Rng rng_;
  std::unique_ptr<P2PDatabase> db_;
  std::vector<Entry> entries_;
  int64_t now_ = 0;
};

struct DriveConfig {
  bool with_faults = false;
  FaultPlanConfig faults;
  SchedulerKind scheduler = SchedulerKind::kPred;
  bool hedge = false;
  bool allow_partial = false;
  double hop_budget_factor = 8.0;
  size_t ticks = 24;
};

struct DriveResult {
  std::vector<double> reported;
  std::vector<double> ci;
  size_t partial_ticks = 0;
  size_t degraded_ticks = 0;
  EngineStats stats;
  MessageMeter meter;
  SessionHealth health = SessionHealth::kHealthy;
  uint64_t outcome_total = 0;
  std::vector<std::string> trace;  ///< Normalized JSONL (seq stripped).
};

bool IsLifecycleEvent(const obs::TraceEvent& event) {
  return std::holds_alternative<obs::CheckpointEvent>(event.payload) ||
         std::holds_alternative<obs::RestoreEvent>(event.payload);
}

/// Renders events as JSONL with the per-tracer `seq` stamp stripped and
/// the checkpoint/restore lifecycle events dropped, so an interrupted
/// trace can be compared line-for-line against an uninterrupted one.
std::vector<std::string> NormalizeTrace(
    const std::vector<obs::TraceEvent>& events) {
  std::vector<std::string> out;
  for (const obs::TraceEvent& event : events) {
    if (IsLifecycleEvent(event)) continue;
    const std::string line = obs::EventToJsonLine(event);
    out.push_back(line.substr(line.find(",\"t\":")));
  }
  return out;
}

constexpr uint64_t kWorkloadSeed = 777;
constexpr uint64_t kFaultSeed = 4242;
constexpr uint64_t kEngineSeed = 11;

DigestEngineOptions MakeOptions(const DriveConfig& cfg, FaultPlan* plan,
                                obs::Tracer* tracer) {
  DigestEngineOptions options;
  options.scheduler = cfg.scheduler;
  options.estimator = EstimatorKind::kRepeated;
  options.sampling_options.walk_length = 16;
  options.sampling_options.reset_length = 4;
  options.sampling_options.retry.hop_budget_factor = cfg.hop_budget_factor;
  options.sampling_options.hedge.enabled = cfg.hedge;
  options.estimator_options.allow_partial = cfg.allow_partial;
  options.fault_plan = plan;
  options.tracer = tracer;
  return options;
}

/// Drives one engine session over the standard mesh workload. With
/// kill_after >= 0, the engine is checkpointed after recording that tick,
/// destroyed, rebuilt with identical construction, and restored — the
/// simulated process kill the recovery contract is about. The fault plan
/// and workload survive the kill (they are the network, not the session).
Result<DriveResult> Drive(const DriveConfig& cfg, int kill_after = -1) {
  StaticDriftWorkload workload(MakeMesh(8, 8).value(), kWorkloadSeed);
  DIGEST_ASSIGN_OR_RETURN(
      const ContinuousQuerySpec spec,
      ContinuousQuerySpec::Create("SELECT AVG(load) FROM R",
                                  PrecisionSpec{1.0, 4.0, 0.9}));
  std::optional<FaultPlan> plan;
  if (cfg.with_faults) {
    DIGEST_RETURN_IF_ERROR(cfg.faults.Validate());
    plan.emplace(cfg.faults, kFaultSeed);
  }
  obs::MemoryTracer tracer;
  const DigestEngineOptions options =
      MakeOptions(cfg, plan ? &*plan : nullptr, &tracer);
  if (plan) plan->SetTracer(&tracer);

  DriveResult out;
  Rng rng(kEngineSeed);
  DIGEST_ASSIGN_OR_RETURN(NodeId querying,
                          workload.graph().RandomLiveNode(rng));
  workload.ProtectNode(querying);
  DIGEST_ASSIGN_OR_RETURN(
      std::unique_ptr<DigestEngine> engine,
      DigestEngine::Create(&workload.graph(), &workload.db(), spec,
                           querying, rng.Fork(), &out.meter, options));
  for (size_t t = 0; t < cfg.ticks; ++t) {
    DIGEST_RETURN_IF_ERROR(workload.Advance());
    if (plan) plan->set_now(workload.now());
    DIGEST_ASSIGN_OR_RETURN(EngineTickResult tick,
                            engine->Tick(workload.now()));
    out.reported.push_back(tick.reported_value);
    out.ci.push_back(tick.ci_halfwidth);
    if (tick.partial) ++out.partial_ticks;
    if (tick.degraded) ++out.degraded_ticks;
    if (static_cast<int>(t) == kill_after) {
      DIGEST_ASSIGN_OR_RETURN(std::string blob, engine->Checkpoint());
      engine.reset();     // Kill the session process.
      out.meter.Reset();  // The fresh process starts with a zero meter...
      Rng fresh_rng(kEngineSeed);  // ...and reconstructs identically.
      DIGEST_ASSIGN_OR_RETURN(NodeId fresh_querying,
                              workload.graph().RandomLiveNode(fresh_rng));
      DIGEST_ASSIGN_OR_RETURN(
          engine, DigestEngine::Create(&workload.graph(), &workload.db(),
                                       spec, fresh_querying,
                                       fresh_rng.Fork(), &out.meter,
                                       options));
      DIGEST_RETURN_IF_ERROR(engine->Restore(blob));
    }
  }
  out.stats = engine->stats();
  out.health = engine->health();
  for (size_t i = 0; i < kNumSnapshotOutcomes; ++i) {
    out.outcome_total +=
        engine->supervisor().outcome_count(static_cast<SnapshotOutcome>(i));
  }
  out.trace = NormalizeTrace(tracer.events());
  return out;
}

void ExpectBitIdentical(const DriveResult& a, const DriveResult& b) {
  ASSERT_EQ(a.reported.size(), b.reported.size());
  for (size_t i = 0; i < a.reported.size(); ++i) {
    EXPECT_EQ(a.reported[i], b.reported[i]) << "tick " << i;
    EXPECT_EQ(a.ci[i], b.ci[i]) << "tick " << i;
  }
  for (size_t i = 0; i < MessageMeter::kNumCategories; ++i) {
    const auto c = static_cast<MessageMeter::Category>(i);
    EXPECT_EQ(a.meter.Count(c), b.meter.Count(c)) << "category " << i;
  }
  EXPECT_EQ(a.meter.losses(), b.meter.losses());
  EXPECT_EQ(a.stats.snapshots, b.stats.snapshots);
  EXPECT_EQ(a.stats.total_samples, b.stats.total_samples);
  EXPECT_EQ(a.stats.fresh_samples, b.stats.fresh_samples);
  EXPECT_EQ(a.stats.retained_samples, b.stats.retained_samples);
  EXPECT_EQ(a.stats.degraded_ticks, b.stats.degraded_ticks);
  EXPECT_EQ(a.stats.partial_snapshots, b.stats.partial_snapshots);
  EXPECT_EQ(a.health, b.health);
  EXPECT_EQ(a.outcome_total, b.outcome_total);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i], b.trace[i]) << "event " << i;
  }
}

bool TraceContains(const DriveResult& run, const std::string& event_name) {
  const std::string needle = "\"event\":\"" + event_name + "\"";
  for (const std::string& line : run.trace) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

FaultPlanConfig ModerateFaults() {
  FaultPlanConfig faults;
  faults.message_loss = 0.05;
  faults.agent_drop = 0.02;
  faults.stall_fraction = 0.2;
  faults.stall_every = 8;
  faults.stall_length = 2;
  return faults;
}

FaultPlanConfig HeavyStallFaults() {
  FaultPlanConfig faults;
  faults.message_loss = 0.10;
  faults.stall_fraction = 0.3;
  faults.stall_every = 6;
  faults.stall_length = 3;
  return faults;
}

TEST(RecoveryStressTest, CheckpointRestoreReplaysBitIdenticalNoFaults) {
  DriveConfig cfg;  // PRED + RPT, no faults: the richest session state.
  Result<DriveResult> uninterrupted = Drive(cfg);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status().message();
  Result<DriveResult> recovered = Drive(cfg, /*kill_after=*/9);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  ExpectBitIdentical(*uninterrupted, *recovered);
}

TEST(RecoveryStressTest, CheckpointRestoreReplaysBitIdenticalUnderFaults) {
  DriveConfig cfg;
  cfg.with_faults = true;
  cfg.faults = ModerateFaults();
  cfg.scheduler = SchedulerKind::kAll;
  cfg.hedge = true;
  cfg.allow_partial = true;
  Result<DriveResult> uninterrupted = Drive(cfg);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status().message();
  Result<DriveResult> recovered = Drive(cfg, /*kill_after=*/11);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  ExpectBitIdentical(*uninterrupted, *recovered);
}

TEST(RecoveryStressTest, KillAtEveryPhaseOfTheSessionStillReplays) {
  // The checkpoint must be complete at any point of the session's
  // lifecycle: before the retained pool exists, right after the first
  // occasion, and deep into the regression recursion.
  DriveConfig cfg;
  cfg.with_faults = true;
  cfg.faults = ModerateFaults();
  Result<DriveResult> uninterrupted = Drive(cfg);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status().message();
  for (int kill_after : {0, 1, 17}) {
    SCOPED_TRACE("kill_after=" + std::to_string(kill_after));
    Result<DriveResult> recovered = Drive(cfg, kill_after);
    ASSERT_TRUE(recovered.ok()) << recovered.status().message();
    ExpectBitIdentical(*uninterrupted, *recovered);
  }
}

TEST(RecoveryStressTest, HedgingEnabledWithoutFaultsIsBitIdentical) {
  // Arming hedging and partial snapshots must cost nothing when no
  // fault plan is attached: same draws, same meter, same trace.
  DriveConfig baseline;
  DriveConfig armed;
  armed.hedge = true;
  armed.allow_partial = true;
  Result<DriveResult> a = Drive(baseline);
  Result<DriveResult> b = Drive(armed);
  ASSERT_TRUE(a.ok()) << a.status().message();
  ASSERT_TRUE(b.ok()) << b.status().message();
  ExpectBitIdentical(*a, *b);
  EXPECT_EQ(b->meter.hedge_launches(), 0u);
  EXPECT_EQ(b->meter.hedged_duplicates(), 0u);
  EXPECT_EQ(b->stats.partial_snapshots, 0u);
  EXPECT_EQ(b->health, SessionHealth::kHealthy);
  // Fault-free occasions all meet the contract.
  EXPECT_EQ(b->outcome_total, b->stats.snapshots);
}

TEST(RecoveryStressTest, HedgedWalksLaunchUnderHeavyStalls) {
  DriveConfig cfg;
  cfg.with_faults = true;
  cfg.faults = HeavyStallFaults();
  cfg.scheduler = SchedulerKind::kAll;
  cfg.hedge = true;
  cfg.ticks = 30;
  Result<DriveResult> run = Drive(cfg);
  ASSERT_TRUE(run.ok()) << run.status().message();
  // Stragglers existed and were raced; every tick still answered.
  EXPECT_EQ(run->reported.size(), cfg.ticks);
  EXPECT_GT(run->meter.hedge_launches(), 0u);
  EXPECT_LE(run->meter.hedged_duplicates(), run->meter.hedge_launches());
  EXPECT_TRUE(TraceContains(*run, "walk_hedged"));
  // The same configuration without hedging pays zero hedge traffic.
  cfg.hedge = false;
  Result<DriveResult> unhedged = Drive(cfg);
  ASSERT_TRUE(unhedged.ok()) << unhedged.status().message();
  EXPECT_EQ(unhedged->meter.hedge_launches(), 0u);
  EXPECT_EQ(unhedged->meter.hedged_duplicates(), 0u);
}

TEST(RecoveryStressTest, PartialSnapshotsFinalizeEarlyOnTightBudget) {
  DriveConfig cfg;
  cfg.with_faults = true;
  cfg.faults = HeavyStallFaults();
  cfg.scheduler = SchedulerKind::kAll;
  cfg.allow_partial = true;
  cfg.hop_budget_factor = 2.0;
  cfg.ticks = 30;
  Result<DriveResult> run = Drive(cfg);
  ASSERT_TRUE(run.ok()) << run.status().message();
  EXPECT_EQ(run->reported.size(), cfg.ticks);
  // The budget really did cut snapshots short, and the engine answered
  // from the collected samples instead of stalling or failing.
  EXPECT_GT(run->stats.partial_snapshots, 0u);
  EXPECT_GT(run->partial_ticks, 0u);
  EXPECT_TRUE(TraceContains(*run, "partial_snapshot"));
  // Partial outcomes drive the health machine off HEALTHY.
  EXPECT_TRUE(TraceContains(*run, "supervisor_state"));
  // Partial ticks never pretend to the contract interval.
  for (size_t t = 0; t < run->ci.size(); ++t) {
    EXPECT_GE(run->ci[t], 0.0);
  }
  // Every sampling occasion was folded into the supervisor.
  EXPECT_GT(run->outcome_total, 0u);
  EXPECT_GE(run->outcome_total, run->stats.snapshots);
}

TEST(RecoveryStressTest, RestoreRejectsBadBlobsWithoutTouchingTheEngine) {
  StaticDriftWorkload workload(MakeMesh(8, 8).value(), kWorkloadSeed);
  const ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(load) FROM R",
                                  PrecisionSpec{1.0, 4.0, 0.9})
          .value();
  DigestEngineOptions options;
  options.scheduler = SchedulerKind::kAll;
  options.estimator = EstimatorKind::kRepeated;
  options.sampling_options.walk_length = 16;
  options.sampling_options.reset_length = 4;

  MessageMeter meter;
  Rng rng(kEngineSeed);
  const NodeId querying = workload.graph().RandomLiveNode(rng).value();
  workload.ProtectNode(querying);
  std::unique_ptr<DigestEngine> engine =
      DigestEngine::Create(&workload.graph(), &workload.db(), spec,
                           querying, rng.Fork(), &meter, options)
          .value();
  ASSERT_TRUE(workload.Advance().ok());
  ASSERT_TRUE(engine->Tick(workload.now()).ok());
  const std::string blob = engine->Checkpoint().value();

  // Garbage and truncation.
  EXPECT_EQ(engine->Restore("not json").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine->Restore("{").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine->Restore("{}").code(), StatusCode::kInvalidArgument);

  // Unknown version.
  std::string tampered = blob;
  const size_t at = tampered.find("digest-checkpoint-v3");
  ASSERT_NE(at, std::string::npos);
  tampered.replace(at, 20, "digest-checkpoint-v9");
  EXPECT_EQ(engine->Restore(tampered).code(),
            StatusCode::kInvalidArgument);

  // Blob from a different sampler construction.
  DigestEngineOptions exact_options = options;
  exact_options.sampler = SamplerKind::kExactCentral;
  MessageMeter exact_meter;
  Rng exact_rng(kEngineSeed);
  std::unique_ptr<DigestEngine> exact_engine =
      DigestEngine::Create(&workload.graph(), &workload.db(), spec,
                           querying, exact_rng.Fork(), &exact_meter,
                           exact_options)
          .value();
  EXPECT_EQ(exact_engine->Restore(blob).code(),
            StatusCode::kInvalidArgument);

  // Every rejection left the engine intact: it keeps ticking, and a
  // valid round-trip still works.
  ASSERT_TRUE(workload.Advance().ok());
  ASSERT_TRUE(engine->Tick(workload.now()).ok());
  EXPECT_TRUE(engine->Restore(engine->Checkpoint().value()).ok());
}

}  // namespace
}  // namespace digest
