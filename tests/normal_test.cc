#include "numeric/normal.h"

#include <gtest/gtest.h>

#include <cmath>

namespace digest {
namespace {

TEST(NormalTest, PdfKnownValues) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-14);
  EXPECT_NEAR(NormalPdf(1.0), 0.24197072451914337, 1e-14);
  EXPECT_NEAR(NormalPdf(-1.0), NormalPdf(1.0), 1e-15);
}

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-14);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(NormalCdf(-1.959963984540054), 0.025, 1e-12);
  EXPECT_NEAR(NormalCdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormalTest, CdfIsMonotone) {
  double prev = 0.0;
  for (double x = -6.0; x <= 6.0; x += 0.05) {
    const double c = NormalCdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(NormalTest, QuantileKnownValues) {
  Result<double> q = NormalQuantile(0.975);
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(*q, 1.959963984540054, 1e-10);
  q = NormalQuantile(0.5);
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(*q, 0.0, 1e-12);
  q = NormalQuantile(0.1);
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(*q, -1.2815515655446004, 1e-10);
}

TEST(NormalTest, QuantileRejectsOutOfRange) {
  EXPECT_FALSE(NormalQuantile(0.0).ok());
  EXPECT_FALSE(NormalQuantile(1.0).ok());
  EXPECT_FALSE(NormalQuantile(-0.1).ok());
  EXPECT_FALSE(NormalQuantile(1.1).ok());
}

TEST(NormalTest, TwoSidedZKnownValues) {
  Result<double> z = TwoSidedZ(0.95);
  ASSERT_TRUE(z.ok());
  EXPECT_NEAR(*z, 1.959963984540054, 1e-9);
  z = TwoSidedZ(0.99);
  ASSERT_TRUE(z.ok());
  EXPECT_NEAR(*z, 2.5758293035489004, 1e-9);
  EXPECT_FALSE(TwoSidedZ(0.0).ok());
  EXPECT_FALSE(TwoSidedZ(1.0).ok());
}

// Property: Φ(Φ⁻¹(p)) = p across the whole open interval, including the
// extreme tails the Acklam low-p branch covers.
class QuantileRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(QuantileRoundTrip, CdfOfQuantileIsIdentity) {
  const double p = GetParam();
  Result<double> q = NormalQuantile(p);
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(NormalCdf(*q), p, 1e-11) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuantileRoundTrip,
    ::testing::Values(1e-10, 1e-6, 1e-3, 0.01, 0.023, 0.1, 0.25, 0.5, 0.75,
                      0.9, 0.975, 0.99, 0.999, 1.0 - 1e-6, 1.0 - 1e-10));

// Property: quantile is antisymmetric, Φ⁻¹(1−p) = −Φ⁻¹(p).
class QuantileSymmetry : public ::testing::TestWithParam<double> {};

TEST_P(QuantileSymmetry, Antisymmetric) {
  const double p = GetParam();
  Result<double> a = NormalQuantile(p);
  Result<double> b = NormalQuantile(1.0 - p);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(*a, -*b, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantileSymmetry,
                         ::testing::Values(1e-8, 1e-4, 0.05, 0.2, 0.4));

}  // namespace
}  // namespace digest
