#include "baselines/olston_filter.h"
#include "baselines/push_all.h"

#include <gtest/gtest.h>

#include <cmath>

#include "net/topology.h"

namespace digest {
namespace {

struct Fixture {
  Graph graph;
  std::unique_ptr<P2PDatabase> db;
  std::vector<TupleRef> refs;
  Rng rng{99};

  explicit Fixture(size_t n = 9) {
    graph = MakeMesh(3, n / 3).value();
    db = std::make_unique<P2PDatabase>(Schema::Create({"v"}).value());
    for (NodeId node : graph.LiveNodes()) {
      EXPECT_TRUE(db->AddNode(node).ok());
      for (int i = 0; i < 4; ++i) {
        const LocalTupleId id = db->StoreAt(node).value()->Insert(
            {rng.NextGaussian(50.0, 5.0)});
        refs.push_back(TupleRef{node, id});
      }
    }
  }

  void Perturb(double scale) {
    for (const TupleRef& ref : refs) {
      if (!db->HasNode(ref.node)) continue;
      const double v = db->GetTuple(ref).value()[0];
      EXPECT_TRUE(db->StoreAt(ref.node)
                      .value()
                      ->UpdateAttribute(ref.local, 0,
                                        v + rng.NextGaussian(0.0, scale))
                      .ok());
    }
  }

  double TrueAvg() const {
    AggregateQuery q = AggregateQuery::Parse("SELECT AVG(v) FROM R").value();
    return db->ExactAggregate(q).value();
  }
};

AggregateQuery AvgQuery() {
  return AggregateQuery::Parse("SELECT AVG(v) FROM R").value();
}

TEST(PushAllTest, ReturnsExactValue) {
  Fixture f;
  PushAllBaseline baseline(&f.graph, f.db.get(), AvgQuery(), 0, nullptr);
  Result<double> v = baseline.Tick();
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, f.TrueAvg());
  f.Perturb(2.0);
  EXPECT_DOUBLE_EQ(baseline.Tick().value(), f.TrueAvg());
  EXPECT_EQ(baseline.ticks(), 2u);
}

TEST(PushAllTest, ChargesTuplesTimesHops) {
  Fixture f;
  MessageMeter meter;
  PushAllBaseline baseline(&f.graph, f.db.get(), AvgQuery(), 0, &meter);
  ASSERT_TRUE(baseline.Tick().ok());
  // Expected: sum over nodes of m_v * BFS distance from node 0.
  std::vector<int> dist = f.graph.BfsDistances(0).value();
  uint64_t expected = 0;
  for (NodeId node : f.db->Nodes()) {
    expected += static_cast<uint64_t>(dist[node]) * f.db->ContentSize(node);
  }
  EXPECT_EQ(meter.pushes(), expected);
  EXPECT_GT(meter.pushes(), 0u);
  // Cost repeats every tick.
  ASSERT_TRUE(baseline.Tick().ok());
  EXPECT_EQ(meter.pushes(), 2 * expected);
}

TEST(OlstonFilterTest, FirstTickRegistersAllSources) {
  Fixture f;
  MessageMeter meter;
  OlstonFilterBaseline baseline(&f.graph, f.db.get(), AvgQuery(), 0, 1.0,
                                &meter);
  Result<double> v = baseline.Tick();
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, f.TrueAvg());  // All sources just reported.
  EXPECT_EQ(baseline.pushed_updates(), f.db->TotalTuples());
}

TEST(OlstonFilterTest, QuietDataPushesNothingAfterRegistration) {
  Fixture f;
  MessageMeter meter;
  OlstonFilterBaseline baseline(&f.graph, f.db.get(), AvgQuery(), 0, 1.0,
                                &meter);
  ASSERT_TRUE(baseline.Tick().ok());
  const uint64_t after_registration = baseline.pushed_updates();
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(baseline.Tick().ok());  // No data changes.
  }
  EXPECT_EQ(baseline.pushed_updates(), after_registration);
}

TEST(OlstonFilterTest, ErrorStaysNearEpsilon) {
  Fixture f;
  const double epsilon = 1.0;
  OlstonFilterBaseline baseline(&f.graph, f.db.get(), AvgQuery(), 0,
                                epsilon, nullptr);
  double worst = 0.0;
  for (int t = 0; t < 40; ++t) {
    f.Perturb(0.5);
    Result<double> v = baseline.Tick();
    ASSERT_TRUE(v.ok());
    worst = std::max(worst, std::fabs(*v - f.TrueAvg()));
  }
  // Per-source filters of width 2ε bound the AVG error by ε.
  EXPECT_LE(worst, epsilon + 1e-9);
}

TEST(OlstonFilterTest, CheaperThanPushAllOnSlowData) {
  Fixture filter_fixture;
  Fixture push_fixture;
  MessageMeter filter_meter, push_meter;
  OlstonFilterBaseline filter(&filter_fixture.graph, filter_fixture.db.get(),
                              AvgQuery(), 0, 2.0, &filter_meter);
  PushAllBaseline push(&push_fixture.graph, push_fixture.db.get(),
                       AvgQuery(), 0, &push_meter);
  for (int t = 0; t < 30; ++t) {
    filter_fixture.Perturb(0.1);
    push_fixture.Perturb(0.1);
    ASSERT_TRUE(filter.Tick().ok());
    ASSERT_TRUE(push.Tick().ok());
  }
  EXPECT_LT(filter_meter.Total(), push_meter.Total() / 3);
}

TEST(OlstonFilterTest, VolatileSourcesEarnWiderFilters) {
  // One source far noisier than the rest: after adaptation it should
  // hold a wider filter than a quiet source.
  Fixture f;
  OlstonFilterOptions options;
  options.adjustment_period = 4;
  options.shrink_fraction = 0.2;
  OlstonFilterBaseline baseline(&f.graph, f.db.get(), AvgQuery(), 0, 1.0,
                                nullptr, options);
  const TupleRef noisy = f.refs.front();
  Rng rng(7);
  uint64_t before = 0;
  for (int t = 0; t < 40; ++t) {
    // Only the noisy source moves.
    const double v = f.db->GetTuple(noisy).value()[0];
    ASSERT_TRUE(f.db->StoreAt(noisy.node)
                    .value()
                    ->UpdateAttribute(noisy.local, 0,
                                      v + rng.NextGaussian(0.0, 5.0))
                    .ok());
    ASSERT_TRUE(baseline.Tick().ok());
    if (t == 20) before = baseline.pushed_updates();
  }
  // Adaptation should slow the noisy source's push rate over time:
  // second half pushes fewer updates than first half.
  const uint64_t second_half = baseline.pushed_updates() - before;
  EXPECT_LE(second_half, before);
}

TEST(OlstonFilterTest, RejectsNonAvgAndBadEpsilon) {
  Fixture f;
  AggregateQuery sum = AggregateQuery::Parse("SELECT SUM(v) FROM R").value();
  OlstonFilterBaseline bad_op(&f.graph, f.db.get(), sum, 0, 1.0, nullptr);
  EXPECT_EQ(bad_op.Tick().status().code(), StatusCode::kInvalidArgument);
  OlstonFilterBaseline bad_eps(&f.graph, f.db.get(), AvgQuery(), 0, 0.0,
                               nullptr);
  EXPECT_FALSE(bad_eps.Tick().ok());
}

TEST(OlstonFilterTest, HandlesInsertionsAndDeletions) {
  Fixture f;
  OlstonFilterBaseline baseline(&f.graph, f.db.get(), AvgQuery(), 0, 1.0,
                                nullptr);
  ASSERT_TRUE(baseline.Tick().ok());
  // Insert a new tuple and delete one.
  f.db->StoreAt(1).value()->Insert({120.0});
  ASSERT_TRUE(
      f.db->StoreAt(f.refs[5].node).value()->Erase(f.refs[5].local).ok());
  Result<double> v = baseline.Tick();
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(*v, f.TrueAvg(), 1.0 + 1e-9);
}

}  // namespace
}  // namespace digest
