#include "numeric/polynomial.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace digest {
namespace {

TEST(PolynomialTest, EvaluateHorner) {
  // p(t) = 1 + 2t + 3t^2
  Polynomial p({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(p.Evaluate(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.Evaluate(1.0), 6.0);
  EXPECT_DOUBLE_EQ(p.Evaluate(2.0), 17.0);
  EXPECT_DOUBLE_EQ(p.Evaluate(-1.0), 2.0);
}

TEST(PolynomialTest, ZeroPolynomial) {
  Polynomial p;
  EXPECT_EQ(p.Degree(), 0u);
  EXPECT_DOUBLE_EQ(p.Evaluate(17.0), 0.0);
}

TEST(PolynomialTest, Derivative) {
  Polynomial p({1.0, 2.0, 3.0, 4.0});  // 1 + 2t + 3t^2 + 4t^3
  Polynomial d = p.Derivative();       // 2 + 6t + 12t^2
  ASSERT_EQ(d.coefficients().size(), 3u);
  EXPECT_DOUBLE_EQ(d.coefficients()[0], 2.0);
  EXPECT_DOUBLE_EQ(d.coefficients()[1], 6.0);
  EXPECT_DOUBLE_EQ(d.coefficients()[2], 12.0);
  EXPECT_DOUBLE_EQ(Polynomial({5.0}).Derivative().Evaluate(3.0), 0.0);
}

TEST(PolynomialTest, EvaluateShifted) {
  Polynomial p({0.0, 1.0});  // p(s) = s
  EXPECT_DOUBLE_EQ(p.EvaluateShifted(10.0, 7.0), 3.0);
}

TEST(FitTest, ExactInterpolationOfQuadratic) {
  // Through 3 points a degree-2 fit is interpolation.
  const std::vector<double> xs = {-1.0, 0.0, 1.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.0 - x + 0.5 * x * x);
  Result<Polynomial> fit = FitPolynomialLeastSquares(xs, ys, 2);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->coefficients()[0], 2.0, 1e-10);
  EXPECT_NEAR(fit->coefficients()[1], -1.0, 1e-10);
  EXPECT_NEAR(fit->coefficients()[2], 0.5, 1e-10);
}

TEST(FitTest, OverdeterminedSmoothsNoise) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    const double x = -2.0 + 0.08 * i;
    xs.push_back(x);
    // Alternating tiny perturbation around a line.
    ys.push_back(1.0 + 3.0 * x + ((i % 2 == 0) ? 1e-3 : -1e-3));
  }
  Result<Polynomial> fit = FitPolynomialLeastSquares(xs, ys, 1);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->coefficients()[0], 1.0, 1e-3);
  EXPECT_NEAR(fit->coefficients()[1], 3.0, 1e-3);
}

TEST(FitTest, RejectsTooFewPoints) {
  EXPECT_FALSE(FitPolynomialLeastSquares({1.0, 2.0}, {1.0, 2.0}, 2).ok());
  EXPECT_FALSE(FitPolynomialLeastSquares({1.0}, {1.0, 2.0}, 0).ok());
}

TEST(DividedDifferencesTest, LinearFunction) {
  // f(x) = 3x + 1: f[x0] = f(x0), f[x0,x1] = 3, higher orders = 0.
  const std::vector<double> xs = {0.0, 1.0, 2.0, 4.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * x + 1.0);
  Result<std::vector<double>> dd = DividedDifferences(xs, ys);
  ASSERT_TRUE(dd.ok());
  ASSERT_EQ(dd->size(), 4u);
  EXPECT_NEAR((*dd)[0], 1.0, 1e-12);
  EXPECT_NEAR((*dd)[1], 3.0, 1e-12);
  EXPECT_NEAR((*dd)[2], 0.0, 1e-12);
  EXPECT_NEAR((*dd)[3], 0.0, 1e-12);
}

TEST(DividedDifferencesTest, HighestOrderApproximatesDerivativeOverFactorial) {
  // For f(x) = x^3 the order-3 divided difference equals f'''/3! = 1
  // exactly, independent of the grid.
  const std::vector<double> xs = {-0.5, 0.3, 1.1, 2.7};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(x * x * x);
  Result<std::vector<double>> dd = DividedDifferences(xs, ys);
  ASSERT_TRUE(dd.ok());
  EXPECT_NEAR(dd->back(), 1.0, 1e-10);
}

TEST(DividedDifferencesTest, NewtonFormReconstructsValues) {
  // The Newton-form polynomial built from the divided differences must
  // interpolate the original points.
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys = {1.0, -1.0, 4.0, 2.0};
  Result<std::vector<double>> dd = DividedDifferences(xs, ys);
  ASSERT_TRUE(dd.ok());
  auto newton = [&](double x) {
    double acc = 0.0;
    double basis = 1.0;
    for (size_t i = 0; i < dd->size(); ++i) {
      acc += (*dd)[i] * basis;
      basis *= (x - xs[i]);
    }
    return acc;
  };
  for (size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(newton(xs[i]), ys[i], 1e-10);
  }
}

TEST(DividedDifferencesTest, RejectsRepeatedAbscissae) {
  EXPECT_FALSE(DividedDifferences({1.0, 1.0}, {2.0, 3.0}).ok());
  EXPECT_FALSE(DividedDifferences({}, {}).ok());
  EXPECT_FALSE(DividedDifferences({1.0}, {1.0, 2.0}).ok());
}

}  // namespace
}  // namespace digest
