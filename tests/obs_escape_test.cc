// Exporter string escaping: label values and event fields containing
// quotes, backslashes, newlines, and control bytes must round-trip
// through every JSON emitter (JSONL trace, Chrome trace, registry
// dump). A tiny JSON-string decoder in this file closes the loop:
// decode(emit(s)) == s for each hostile input.
#include <gtest/gtest.h>

#include <string>

#include "common/strings.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace digest {
namespace {

// Decodes the body of a JSON string literal (the inverse of
// AppendJsonEscaped). Asserts on malformed escapes so a bad emitter
// fails the test rather than slipping through.
std::string JsonUnescape(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out.push_back(s[i]);
      continue;
    }
    ++i;
    EXPECT_LT(i, s.size()) << "dangling backslash";
    switch (s[i]) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      case 'r': out.push_back('\r'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'u': {
        EXPECT_LE(i + 4, s.size() - 1) << "truncated \\u escape";
        out.push_back(static_cast<char>(
            std::stoi(s.substr(i + 1, 4), nullptr, 16)));
        i += 4;
        break;
      }
      default:
        ADD_FAILURE() << "unknown escape '\\" << s[i] << "'";
    }
  }
  return out;
}

// The hostile inputs every case below reuses.
const char* kNasty[] = {
    "quote\"inside",
    "back\\slash",
    "line\nbreak",
    "tab\there",
    "cr\rlf\n",
    "bell\x07null-ish\x01",
    "\"\\\n mixed \\\" end\\",
};

TEST(JsonEscapeTest, RoundTripsHostileStrings) {
  for (const char* raw : kNasty) {
    const std::string escaped = JsonEscape(raw);
    // The escaped body must not contain raw quotes, backslashes (except
    // as escape introducers), or control bytes.
    for (char c : escaped) {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
          << "raw control byte in " << escaped;
    }
    EXPECT_EQ(JsonUnescape(escaped), raw);
  }
}

TEST(JsonEscapeTest, AppendMatchesReturnVariant) {
  std::string out = "prefix:";
  AppendJsonEscaped(&out, "a\"b\\c\nd");
  EXPECT_EQ(out, "prefix:" + JsonEscape("a\"b\\c\nd"));
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(JsonEscapeTest, ControlBytesUseUnicodeEscapes) {
  EXPECT_EQ(JsonEscape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(JsonEscape("\b\f"), "\\b\\f");
}

TEST(ExporterEscapeTest, RunLabelRoundTripsThroughJsonl) {
  for (const char* raw : kNasty) {
    obs::MemoryTracer tracer;
    tracer.Emit(obs::RunBeginEvent{raw});
    const std::string line = obs::EventToJsonLine(tracer.events()[0]);
    const std::string key = "\"label\":\"";
    const size_t start = line.find(key);
    ASSERT_NE(start, std::string::npos) << line;
    // The label value is the last field; find its closing quote by
    // scanning for an unescaped '"'.
    size_t end = start + key.size();
    while (end < line.size()) {
      if (line[end] == '\\') {
        end += 2;
      } else if (line[end] == '"') {
        break;
      } else {
        ++end;
      }
    }
    ASSERT_LT(end, line.size()) << line;
    EXPECT_EQ(JsonUnescape(line.substr(start + key.size(),
                                       end - start - key.size())),
              raw)
        << line;
    // No raw newline may survive into the line-oriented format.
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;
  }
}

TEST(ExporterEscapeTest, RunLabelEscapedInChromeProcessName) {
  obs::MemoryTracer tracer;
  tracer.Emit(obs::RunBeginEvent{"run \"A\"\nwith\\stuff"});
  const std::string chrome = obs::RenderChromeTrace(tracer.events());
  EXPECT_NE(chrome.find("run \\\"A\\\"\\nwith\\\\stuff"),
            std::string::npos)
      << chrome;
  EXPECT_EQ(chrome.find('\n'), std::string::npos) << chrome;
}

TEST(ExporterEscapeTest, RegistryLabelValuesRoundTripThroughToJson) {
  obs::Registry registry;
  const std::string raw = "label\"with\\nasty\nchars";
  registry.GetCounter("test.counter", {{"run", raw}})->Increment(1);
  const std::string json = registry.ToJson();
  // The instrument key renders as name{run=<raw>}, escaped as one JSON
  // string.
  const std::string expected =
      "\"test.counter{run=" + JsonEscape(raw) + "}\":1";
  EXPECT_NE(json.find(expected), std::string::npos) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos) << json;
}

TEST(ExporterEscapeTest, SummaryAndJsonAgreeOnHostileLabels) {
  obs::Registry registry;
  registry.GetGauge("g", {{"k", "v\"\\"}})->Set(1.5);
  // ToJson stays parseable: balanced quotes via the round-trip decoder.
  const std::string json = registry.ToJson();
  const std::string key = "\"g{k=" + JsonEscape("v\"\\") + "}\"";
  EXPECT_NE(json.find(key), std::string::npos) << json;
}

}  // namespace
}  // namespace digest
