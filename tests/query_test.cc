#include "db/query.h"

#include <gtest/gtest.h>

namespace digest {
namespace {

TEST(QueryTest, ParsesAvg) {
  Result<AggregateQuery> q = AggregateQuery::Parse("SELECT AVG(a) FROM R");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->op, AggregateOp::kAvg);
  EXPECT_EQ(q->relation, "R");
  ASSERT_EQ(q->expression.attributes().size(), 1u);
  EXPECT_EQ(q->expression.attributes()[0], "a");
}

TEST(QueryTest, ParsesPaperExample) {
  // §II's running example.
  Result<AggregateQuery> q =
      AggregateQuery::Parse("SELECT SUM(memory + storage) FROM R");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->op, AggregateOp::kSum);
  ASSERT_EQ(q->expression.attributes().size(), 2u);
}

TEST(QueryTest, CaseInsensitiveKeywords) {
  EXPECT_TRUE(AggregateQuery::Parse("select avg(x) from r").ok());
  EXPECT_TRUE(AggregateQuery::Parse("SeLeCt SuM(x) FrOm R").ok());
}

TEST(QueryTest, CountStar) {
  Result<AggregateQuery> q = AggregateQuery::Parse("SELECT COUNT(*) FROM R");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->op, AggregateOp::kCount);
  Result<double> v = q->expression.Evaluate({});
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 1.0);
}

TEST(QueryTest, CountExpression) {
  Result<AggregateQuery> q = AggregateQuery::Parse("SELECT COUNT(x) FROM R");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->op, AggregateOp::kCount);
}

TEST(QueryTest, NestedParenthesesInExpression) {
  Result<AggregateQuery> q =
      AggregateQuery::Parse("SELECT AVG((a + b) * (c - d)) FROM R");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->expression.attributes().size(), 4u);
}

TEST(QueryTest, TrailingSemicolonAndWhitespace) {
  EXPECT_TRUE(AggregateQuery::Parse("  SELECT AVG(a) FROM R;  ").ok());
  EXPECT_TRUE(AggregateQuery::Parse("SELECT AVG(a)\nFROM\nR").ok());
}

TEST(QueryTest, RejectsMalformedQueries) {
  EXPECT_FALSE(AggregateQuery::Parse("").ok());
  EXPECT_FALSE(AggregateQuery::Parse("AVG(a) FROM R").ok());
  EXPECT_FALSE(AggregateQuery::Parse("SELECT MIN(a) FROM R").ok());
  EXPECT_FALSE(AggregateQuery::Parse("SELECT AVG a FROM R").ok());
  EXPECT_FALSE(AggregateQuery::Parse("SELECT AVG(a FROM R").ok());
  EXPECT_FALSE(AggregateQuery::Parse("SELECT AVG(a)").ok());
  EXPECT_FALSE(AggregateQuery::Parse("SELECT AVG(a) FROM").ok());
  EXPECT_FALSE(AggregateQuery::Parse("SELECT AVG(a) FROM R extra").ok());
  EXPECT_FALSE(AggregateQuery::Parse("SELECT AVG() FROM R").ok());
  EXPECT_FALSE(AggregateQuery::Parse("SELECTAVG(a) FROM R").ok());
  EXPECT_EQ(AggregateQuery::Parse("bogus").status().code(),
            StatusCode::kParseError);
}

TEST(QueryTest, AggregateOpNames) {
  EXPECT_STREQ(AggregateOpName(AggregateOp::kAvg), "AVG");
  EXPECT_STREQ(AggregateOpName(AggregateOp::kSum), "SUM");
  EXPECT_STREQ(AggregateOpName(AggregateOp::kCount), "COUNT");
}

TEST(QueryTest, ToStringRoundTrips) {
  Result<AggregateQuery> q =
      AggregateQuery::Parse("select sum( memory + storage ) from Pool");
  ASSERT_TRUE(q.ok());
  const std::string text = q->ToString();
  Result<AggregateQuery> reparsed = AggregateQuery::Parse(text);
  ASSERT_TRUE(reparsed.ok()) << text;
  EXPECT_EQ(reparsed->op, q->op);
  EXPECT_EQ(reparsed->relation, "Pool");
}

}  // namespace
}  // namespace digest
