// The paper's peer-to-peer computing example (§I-II):
//
//   "Notify me whenever the total amount of available memory is more
//    than 4 GB" — a SUM query over R(memory) on a churning SETI@home-
//    style network, used by a task scheduler to decide when enough
//    aggregate capacity is free.
//
// Digest evaluates SUM via the per-tuple mean and a relation-size
// oracle; the scheduler fires when the running estimate crosses the
// threshold upward.
//
//   ./grid_scheduler [ticks] [threshold]
#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "workload/memory.h"

using namespace digest;

int main(int argc, char** argv) {
  const int ticks = argc > 1 ? std::atoi(argv[1]) : 120;
  // Values are in units of 100 MB; default threshold 0.55x the expected
  // total so crossings actually happen.
  MemoryConfig config;
  config.num_units = 400;
  config.num_nodes = 250;
  auto workload = MemoryWorkload::Create(config).value();

  const double expected_total =
      static_cast<double>(workload->db().TotalTuples()) * config.level_mean;
  const double threshold =
      argc > 2 ? std::atof(argv[2]) : 1.05 * expected_total;

  char query[64];
  std::snprintf(query, sizeof(query), "SELECT SUM(memory) FROM R");
  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create(
          query, PrecisionSpec{/*delta=*/expected_total * 0.04,
                               /*epsilon=*/expected_total * 0.05,
                               /*p=*/0.95})
          .value();

  MessageMeter meter;
  Rng rng(23);
  const NodeId querying_node =
      workload->graph().RandomLiveNode(rng).value();
  workload->ProtectNode(querying_node);
  auto engine = DigestEngine::Create(&workload->graph(), &workload->db(),
                                     spec, querying_node, rng.Fork(),
                                     &meter)
                    .value();

  std::printf(
      "grid scheduler at node %u: fire when total free memory exceeds "
      "%.0f (x100MB)\n\n",
      querying_node, threshold);
  bool above = false;
  int firings = 0;
  for (int t = 1; t <= ticks; ++t) {
    (void)workload->Advance();
    EngineTickResult tick = engine->Tick(workload->now()).value();
    if (!tick.has_result) continue;
    const bool now_above = tick.reported_value >= threshold;
    if (now_above && !above) {
      ++firings;
      const double truth =
          workload->db().ExactAggregate(spec.query).value();
      std::printf(
          "tick %4d  SCHEDULE BATCH #%d: estimated %.0f free "
          "(true %.0f), %zu peers online\n",
          t, firings, tick.reported_value, truth,
          workload->graph().NodeCount());
    }
    above = now_above;
  }
  const EngineStats& stats = engine->stats();
  std::printf(
      "\n%d scheduling opportunities detected in %d ticks under churn.\n"
      "%zu snapshot queries, %zu samples, %llu messages.\n",
      firings, ticks, stats.snapshots, stats.total_samples,
      static_cast<unsigned long long>(meter.Total()));
  return 0;
}
