// Using the bottom tier directly: the distributed sampling operator S
// (paper §III, §V) as a standalone service. Draws node samples under
// three different weight functions on a power-law overlay and compares
// the empirical distributions against their targets — the operator works
// for *any* locally computable weight, not just Digest's content-size
// weight.
//
//   ./sampling_survey [nodes] [samples]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "net/topology.h"
#include "sampling/metropolis.h"
#include "sampling/sampling_operator.h"

using namespace digest;

namespace {

void Survey(const char* label, const Graph& graph, const WeightFn& weight,
            size_t samples) {
  ForwardingMatrix fm = BuildForwardingMatrix(graph, weight).value();

  MessageMeter meter;
  SamplingOperator op(&graph, weight, Rng(5), &meter);
  std::vector<double> counts(graph.NextId(), 0.0);
  for (size_t i = 0; i < samples; ++i) {
    counts[op.SampleNode(0).value()] += 1.0;
  }
  std::vector<double> empirical(fm.nodes.size());
  for (size_t r = 0; r < fm.nodes.size(); ++r) {
    empirical[r] = counts[fm.nodes[r]] / static_cast<double>(samples);
  }
  const double tv = TotalVariationDistance(empirical, fm.pi).value();
  std::printf(
      "%-28s TV(empirical, target) = %.4f   %.1f msgs/sample\n", label, tv,
      static_cast<double>(meter.Total()) / static_cast<double>(samples));

  // Show the five most-probable nodes under the target vs empirically.
  std::printf("  top nodes (target -> empirical):");
  for (int k = 0; k < 5; ++k) {
    size_t best = 0;
    for (size_t r = 1; r < fm.pi.size(); ++r) {
      if (fm.pi[r] > fm.pi[best]) best = r;
    }
    std::printf("  %u(%.3f->%.3f)", fm.nodes[best], fm.pi[best],
                empirical[best]);
    fm.pi[best] = -1.0;  // Consume.
  }
  std::printf("\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  const size_t nodes = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
  const size_t samples =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000;

  Rng rng(1);
  Graph graph = MakeBarabasiAlbert(nodes, 2, rng).value();
  std::printf("power-law overlay: %zu nodes, %zu edges; %zu samples per "
              "survey\n\n",
              graph.NodeCount(), graph.EdgeCount(), samples);

  Survey("uniform  (w = 1)", graph, UniformWeight(), samples);
  Survey("degree   (w = deg v)", graph, DegreeWeight(graph), samples);
  Survey("custom   (w = 1 + v mod 5)", graph,
         [](NodeId v) { return 1.0 + (v % 5); }, samples);

  std::printf(
      "every survey used only local information at each hop: a node\n"
      "asks a proposed neighbor for its weight and applies the\n"
      "Metropolis acceptance rule (Eq. 12). No global state anywhere.\n");
  return 0;
}
