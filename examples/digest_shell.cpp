// An interactive shell over a simulated peer-to-peer database: load a
// workload, type a continuous aggregate query (WHERE clauses supported),
// pick precision and engine policies, and step simulated time while the
// running result updates. Also works non-interactively:
//
//   echo "workload temperature 800 53
//         precision 2 1 0.95
//         query SELECT AVG(temperature) FROM R
//         run 40
//         stats" | ./digest_shell
#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "common/strings.h"
#include "core/engine.h"
#include "workload/memory.h"
#include "workload/temperature.h"

using namespace digest;

namespace {

struct ShellState {
  std::unique_ptr<Workload> workload;
  std::unique_ptr<DigestEngine> engine;
  ContinuousQuerySpec spec;
  PrecisionSpec precision{2.0, 1.0, 0.95};
  DigestEngineOptions options;
  MessageMeter meter;
  NodeId querying_node = kInvalidNode;
  uint64_t seed = 42;
  bool has_query = false;
};

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  workload temperature|memory [units] [nodes]   load a dataset\n"
      "  precision <delta> <epsilon> <p>                set the contract\n"
      "  mode <all|pred> <indep|rpt> <exact|mcmc>       engine policies\n"
      "  query SELECT <op>(<expr>) FROM R [WHERE ...]   start a query\n"
      "      op: AVG | SUM | COUNT | MEDIAN; WHERE supports comparisons,\n"
      "      AND/OR/NOT, BETWEEN a AND b, [NOT] IN (...)\n"
      "  run <ticks>                                    advance time\n"
      "  truth                                          oracle value\n"
      "  stats                                          counters so far\n"
      "  help | quit\n");
}

bool LoadWorkload(ShellState& state, std::istringstream& args) {
  std::string kind;
  size_t units = 0, nodes = 0;
  args >> kind >> units >> nodes;
  if (EqualsIgnoreCase(kind, "temperature")) {
    TemperatureConfig config;
    if (units > 0) config.num_units = units;
    if (nodes > 0) config.num_nodes = nodes;
    config.seed = state.seed;
    auto w = TemperatureWorkload::Create(config);
    if (!w.ok()) {
      std::printf("error: %s\n", w.status().ToString().c_str());
      return false;
    }
    state.workload = std::move(*w);
  } else if (EqualsIgnoreCase(kind, "memory")) {
    MemoryConfig config;
    if (units > 0) config.num_units = units;
    if (nodes > 0) config.num_nodes = nodes;
    config.seed = state.seed;
    auto w = MemoryWorkload::Create(config);
    if (!w.ok()) {
      std::printf("error: %s\n", w.status().ToString().c_str());
      return false;
    }
    state.workload = std::move(*w);
  } else {
    std::printf("unknown workload '%s' (temperature|memory)\n",
                kind.c_str());
    return false;
  }
  state.engine.reset();
  state.has_query = false;
  std::printf("loaded %s: %zu nodes, %zu tuples, attribute '%s'\n",
              kind.c_str(), state.workload->graph().NodeCount(),
              state.workload->db().TotalTuples(),
              state.workload->attribute());
  return true;
}

bool StartQuery(ShellState& state, const std::string& query_text) {
  if (state.workload == nullptr) {
    std::printf("load a workload first\n");
    return false;
  }
  auto spec = ContinuousQuerySpec::Create(query_text, state.precision);
  if (!spec.ok()) {
    std::printf("error: %s\n", spec.status().ToString().c_str());
    return false;
  }
  state.spec = std::move(*spec);
  Rng rng(state.seed + 1);
  auto node = state.workload->graph().RandomLiveNode(rng);
  if (!node.ok()) {
    std::printf("error: %s\n", node.status().ToString().c_str());
    return false;
  }
  state.querying_node = *node;
  state.workload->ProtectNode(state.querying_node);
  state.meter.Reset();
  auto engine = DigestEngine::Create(
      &state.workload->graph(), &state.workload->db(), state.spec,
      state.querying_node, rng.Fork(), &state.meter, state.options);
  if (!engine.ok()) {
    std::printf("error: %s\n", engine.status().ToString().c_str());
    return false;
  }
  state.engine = std::move(*engine);
  state.has_query = true;
  std::printf("running %s at node %u\n", state.spec.ToString().c_str(),
              state.querying_node);
  return true;
}

void Run(ShellState& state, int ticks) {
  if (!state.has_query) {
    std::printf("start a query first\n");
    return;
  }
  for (int i = 0; i < ticks; ++i) {
    Status s = state.workload->Advance();
    if (!s.ok()) {
      std::printf("workload error: %s\n", s.ToString().c_str());
      return;
    }
    auto tick = state.engine->Tick(state.workload->now());
    if (!tick.ok()) {
      std::printf("engine error: %s\n", tick.status().ToString().c_str());
      return;
    }
    if (tick->result_updated) {
      auto truth = state.workload->db().ExactAggregate(state.spec.query);
      std::printf("tick %-6lld UPDATE  X^ = %.3f  (truth %.3f)\n",
                  static_cast<long long>(state.workload->now()),
                  tick->reported_value,
                  truth.ok() ? *truth : std::nan(""));
    }
  }
  std::printf("now at tick %lld, X^ = %.3f\n",
              static_cast<long long>(state.workload->now()),
              state.engine->reported_value());
}

void PrintStats(const ShellState& state) {
  if (!state.has_query) {
    std::printf("no query running\n");
    return;
  }
  const EngineStats& s = state.engine->stats();
  std::printf(
      "ticks=%zu snapshots=%zu updates=%zu samples=%zu (fresh=%zu "
      "retained=%zu)\nmessages=%llu (walk=%llu probe=%llu transfer=%llu "
      "refresh=%llu)\ncorrelation estimate rho^=%.3f\n",
      s.ticks, s.snapshots, s.result_updates, s.total_samples,
      s.fresh_samples, s.retained_samples,
      static_cast<unsigned long long>(state.meter.Total()),
      static_cast<unsigned long long>(state.meter.walk_hops()),
      static_cast<unsigned long long>(state.meter.weight_probes()),
      static_cast<unsigned long long>(state.meter.sample_transfers()),
      static_cast<unsigned long long>(state.meter.refreshes()),
      state.engine->correlation_estimate());
}

}  // namespace

int main() {
  ShellState state;
  std::printf("Digest shell — 'help' for commands\n");
  std::string line;
  while (true) {
    std::printf("digest> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    const std::string trimmed(StripWhitespace(line));
    if (trimmed.empty()) continue;
    std::istringstream args(trimmed);
    std::string command;
    args >> command;
    if (EqualsIgnoreCase(command, "quit") ||
        EqualsIgnoreCase(command, "exit")) {
      break;
    } else if (EqualsIgnoreCase(command, "help")) {
      PrintHelp();
    } else if (EqualsIgnoreCase(command, "workload")) {
      LoadWorkload(state, args);
    } else if (EqualsIgnoreCase(command, "precision")) {
      double delta, epsilon, p;
      if (args >> delta >> epsilon >> p) {
        PrecisionSpec candidate{delta, epsilon, p};
        Status s = candidate.Validate();
        if (s.ok()) {
          state.precision = candidate;
          std::printf("precision: delta=%g epsilon=%g p=%g\n", delta,
                      epsilon, p);
        } else {
          std::printf("error: %s\n", s.ToString().c_str());
        }
      } else {
        std::printf("usage: precision <delta> <epsilon> <p>\n");
      }
    } else if (EqualsIgnoreCase(command, "mode")) {
      std::string sched, est, sampler;
      args >> sched >> est >> sampler;
      state.options.scheduler = EqualsIgnoreCase(sched, "all")
                                    ? SchedulerKind::kAll
                                    : SchedulerKind::kPred;
      state.options.estimator = EqualsIgnoreCase(est, "indep")
                                    ? EstimatorKind::kIndependent
                                    : EstimatorKind::kRepeated;
      state.options.sampler = EqualsIgnoreCase(sampler, "exact")
                                  ? SamplerKind::kExactCentral
                                  : SamplerKind::kTwoStageMcmc;
      std::printf("mode: %s + %s over %s sampling\n",
                  state.options.scheduler == SchedulerKind::kAll ? "ALL"
                                                                 : "PRED",
                  state.options.estimator == EstimatorKind::kIndependent
                      ? "INDEP"
                      : "RPT",
                  state.options.sampler == SamplerKind::kExactCentral
                      ? "exact"
                      : "MCMC");
    } else if (EqualsIgnoreCase(command, "query")) {
      const size_t at = trimmed.find_first_of(" \t");
      if (at == std::string::npos) {
        std::printf("usage: query SELECT ...\n");
      } else {
        StartQuery(state, trimmed.substr(at + 1));
      }
    } else if (EqualsIgnoreCase(command, "run")) {
      int ticks = 0;
      if (args >> ticks && ticks > 0) {
        Run(state, ticks);
      } else {
        std::printf("usage: run <ticks>\n");
      }
    } else if (EqualsIgnoreCase(command, "truth")) {
      if (state.has_query) {
        auto truth = state.workload->db().ExactAggregate(state.spec.query);
        if (truth.ok()) {
          std::printf("oracle: %.3f\n", *truth);
        } else {
          std::printf("error: %s\n", truth.status().ToString().c_str());
        }
      } else {
        std::printf("no query running\n");
      }
    } else if (EqualsIgnoreCase(command, "stats")) {
      PrintStats(state);
    } else {
      std::printf("unknown command '%s' — try 'help'\n", command.c_str());
    }
  }
  std::printf("\n");
  return 0;
}
