// The paper's motivating weather example (§I):
//
//   "Over next 24 hours, notify me whenever the average temperature of
//    the area changes more than 2 °F."
//
// Runs Digest over the synthetic TEMPERATURE workload (a mesh network of
// weather stations, Table II) and prints one alarm line per result
// update. Every update is an occasion where Digest decided the area
// average moved by at least delta = 2 °F.
//
//   ./weather_monitor [days]
#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "workload/temperature.h"

using namespace digest;

int main(int argc, char** argv) {
  const int days = argc > 1 ? std::atoi(argv[1]) : 30;
  const size_t ticks = static_cast<size_t>(days) * 2;  // 12-h readings.

  TemperatureConfig config;
  config.num_units = 2000;
  config.num_nodes = 132;
  auto workload = TemperatureWorkload::Create(config).value();

  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create(
          "SELECT AVG(temperature) FROM R",
          PrecisionSpec{/*delta=*/2.0, /*epsilon=*/0.5, /*p=*/0.95})
          .value();

  MessageMeter meter;
  Rng rng(11);
  const NodeId querying_node =
      workload->graph().RandomLiveNode(rng).value();
  auto engine = DigestEngine::Create(&workload->graph(), &workload->db(),
                                     spec, querying_node, rng.Fork(),
                                     &meter)
                    .value();

  std::printf("monitoring %d days (%zu readings) from station %u...\n\n",
              days, ticks, querying_node);
  int alarms = 0;
  for (size_t t = 1; t <= ticks; ++t) {
    (void)workload->Advance();
    EngineTickResult tick = engine->Tick(workload->now()).value();
    if (tick.result_updated) {
      ++alarms;
      const double truth =
          workload->db().ExactAggregate(spec.query).value();
      std::printf(
          "day %5.1f  ALARM #%d: area average is now %.1f F "
          "(true %.1f F, error %+.2f)\n",
          static_cast<double>(t) / 2.0, alarms, tick.reported_value, truth,
          tick.reported_value - truth);
    }
  }
  const EngineStats& stats = engine->stats();
  std::printf(
      "\n%d alarms raised. %zu of %zu readings needed a snapshot query "
      "(%zu samples, %llu messages).\n",
      alarms, stats.snapshots, stats.ticks, stats.total_samples,
      static_cast<unsigned long long>(meter.Total()));
  std::printf(
      "a naive monitor would have run %zu snapshot queries; the "
      "extrapolation algorithm skipped %.0f%% of them.\n",
      stats.ticks,
      100.0 * (1.0 - static_cast<double>(stats.snapshots) /
                         static_cast<double>(stats.ticks)));
  return 0;
}
