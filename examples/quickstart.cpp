// Quickstart: build a small peer-to-peer database by hand, issue a
// fixed-precision approximate continuous AVG query through Digest, and
// watch the running result track the (oracle) truth.
//
//   ./quickstart
#include <cmath>
#include <cstdio>

#include "core/engine.h"
#include "net/topology.h"

using namespace digest;

int main() {
  // 1. An overlay network: 16 peers on a power-law (unstructured) graph.
  Rng rng(7);
  Graph graph = MakeBarabasiAlbert(16, 2, rng).value();

  // 2. The relation R(load), horizontally partitioned: each peer stores
  //    a handful of tuples describing its local measurements.
  P2PDatabase db(Schema::Create({"load"}).value());
  for (NodeId node : graph.LiveNodes()) {
    (void)db.AddNode(node);
    LocalStore* store = db.StoreAt(node).value();
    for (int i = 0; i < 10; ++i) {
      store->Insert({rng.NextGaussian(50.0, 10.0)});
    }
  }

  // 3. A fixed-precision approximate continuous aggregate query:
  //    resolution delta = 1.0, confidence interval epsilon = 0.5 with
  //    probability p = 0.95.
  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(load) FROM R",
                                  PrecisionSpec{1.0, 0.5, 0.95})
          .value();

  // 4. A Digest engine at the querying peer. Defaults give the full
  //    production stack: PRED extrapolation + repeated sampling over the
  //    two-stage Metropolis MCMC sampling operator.
  MessageMeter meter;
  auto engine =
      DigestEngine::Create(&graph, &db, spec, /*querying_node=*/0, Rng(42),
                           &meter)
          .value();

  // 5. Drive it: every tick the database drifts a little, the engine
  //    decides whether to probe the network, and the reported result
  //    moves only when the aggregate moved by at least delta.
  std::printf("tick  truth   reported  snapshot?  updated?\n");
  Rng drift(3);
  for (int64_t t = 1; t <= 25; ++t) {
    // The world changes: every tuple drifts upward slowly.
    for (NodeId node : db.Nodes()) {
      LocalStore* store = db.StoreAt(node).value();
      std::vector<LocalTupleId> ids;
      store->ForEach([&](LocalTupleId id, const Tuple&) {
        ids.push_back(id);
      });
      for (LocalTupleId id : ids) {
        Tuple tuple = store->Get(id).value();
        tuple[0] += 0.3 + drift.NextGaussian(0.0, 0.1);
        (void)store->Update(id, tuple);
      }
    }
    const double truth = db.ExactAggregate(spec.query).value();
    EngineTickResult tick = engine->Tick(t).value();
    std::printf("%4lld  %6.2f  %8.2f  %9s  %8s\n",
                static_cast<long long>(t), truth, tick.reported_value,
                tick.snapshot_executed ? "yes" : "-",
                tick.result_updated ? "yes" : "-");
  }

  const EngineStats& stats = engine->stats();
  std::printf(
      "\n%zu ticks, %zu snapshot queries, %zu samples (%zu fresh), "
      "%llu messages total\n",
      stats.ticks, stats.snapshots, stats.total_samples,
      stats.fresh_samples,
      static_cast<unsigned long long>(meter.Total()));
  std::printf("final estimate %.2f vs truth %.2f\n",
              engine->reported_value(),
              db.ExactAggregate(spec.query).value());
  return 0;
}
