// Record / replay: capture a synthetic workload into the paper's
// dataset format (timestamped per-unit attribute modifications), save it
// as CSV, reload it, and run a continuous query against the replay — the
// exact path a user with *real* measurements (weather logs, host
// telemetry) would take to feed them into Digest.
//
//   ./trace_replay [trace.csv]
#include <cstdio>
#include <string>

#include "core/engine.h"
#include "workload/temperature.h"
#include "workload/trace.h"

using namespace digest;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/digest_trace.csv";

  // 1. Record: 60 ticks (30 days) of the TEMPERATURE generator.
  TemperatureConfig config;
  config.num_units = 500;
  config.num_nodes = 36;
  auto source = TemperatureWorkload::Create(config).value();
  Trace trace = RecordWorkload(*source, 60).value();
  std::printf("recorded %zu units over %lld ticks (%zu records)\n",
              trace.num_units(), static_cast<long long>(trace.max_tick()),
              trace.records().size());

  // 2. Persist + reload (the CSV is the interchange format for real
  //    datasets: tick,unit,value,deleted).
  if (Status s = trace.SaveCsv(path); !s.ok()) {
    std::printf("save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  Trace loaded = Trace::LoadCsv(path).value();
  std::printf("saved and reloaded %s\n", path.c_str());

  // 3. Replay on a fresh overlay and run Digest over it.
  TraceWorkloadConfig replay_config;
  replay_config.num_nodes = 36;
  replay_config.topology = TraceTopology::kMesh;
  replay_config.attribute = "temperature";
  auto replay = TraceWorkload::Create(loaded, replay_config).value();

  ContinuousQuerySpec spec =
      ContinuousQuerySpec::Create("SELECT AVG(temperature) FROM R",
                                  PrecisionSpec{2.0, 1.0, 0.95})
          .value();
  MessageMeter meter;
  auto engine = DigestEngine::Create(&replay->graph(), &replay->db(), spec,
                                     0, Rng(7), &meter)
                    .value();
  int updates = 0;
  for (int t = 0; t < 60; ++t) {
    (void)replay->Advance();
    EngineTickResult tick = engine->Tick(replay->now()).value();
    if (tick.result_updated) {
      ++updates;
      std::printf("tick %2lld: area average moved to %.2f F\n",
                  static_cast<long long>(replay->now()),
                  tick.reported_value);
    }
  }
  std::printf(
      "\n%d updates from %zu snapshots over the replayed trace "
      "(%llu messages)\n",
      updates, engine->stats().snapshots,
      static_cast<unsigned long long>(meter.Total()));
  return 0;
}
