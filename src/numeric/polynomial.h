#ifndef DIGEST_NUMERIC_POLYNOMIAL_H_
#define DIGEST_NUMERIC_POLYNOMIAL_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace digest {

/// Polynomial in one variable, coefficients in increasing-degree order:
/// p(t) = c₀ + c₁·t + c₂·t² + …
///
/// Used by the extrapolation algorithm to represent the fitted Taylor
/// polynomial of the running aggregate value (paper §IV-A).
class Polynomial {
 public:
  /// Constructs the zero polynomial.
  Polynomial() = default;

  /// Constructs from coefficients c₀, c₁, …; trailing zeros are kept (the
  /// caller controls the nominal degree).
  explicit Polynomial(std::vector<double> coefficients)
      : coefficients_(std::move(coefficients)) {}

  /// Nominal degree (coefficients().size() - 1); 0 for the zero polynomial.
  size_t Degree() const {
    return coefficients_.empty() ? 0 : coefficients_.size() - 1;
  }

  const std::vector<double>& coefficients() const { return coefficients_; }

  /// Evaluates p(t) by Horner's rule.
  double Evaluate(double t) const;

  /// The derivative polynomial p'(t).
  Polynomial Derivative() const;

  /// Returns p evaluated at (t - shift), i.e., the same polynomial
  /// re-centered so that its argument is an offset from `shift`.
  double EvaluateShifted(double t, double shift) const {
    return Evaluate(t - shift);
  }

 private:
  std::vector<double> coefficients_;
};

/// Fits a degree-`degree` polynomial to the points (xs[i], ys[i]) by linear
/// least squares (QR). Requires xs.size() == ys.size() and at least
/// degree+1 distinct points. For numerical stability, callers should
/// center xs near zero (the extrapolator passes time offsets).
Result<Polynomial> FitPolynomialLeastSquares(const std::vector<double>& xs,
                                             const std::vector<double>& ys,
                                             size_t degree);

/// Newton divided differences of (xs, ys): returns coefficients
/// f[x₀], f[x₀,x₁], …, f[x₀..x_{n-1}]. The highest-order divided
/// difference approximates f⁽ⁿ⁾(ξ)/n!, which the extrapolator uses to
/// estimate the Lagrange-remainder constant (paper Eq. 2).
/// Fails on mismatched sizes, empty input, or repeated x values.
Result<std::vector<double>> DividedDifferences(const std::vector<double>& xs,
                                               const std::vector<double>& ys);

}  // namespace digest

#endif  // DIGEST_NUMERIC_POLYNOMIAL_H_
