#include "numeric/polynomial.h"

#include <cmath>

#include "numeric/matrix.h"

namespace digest {

double Polynomial::Evaluate(double t) const {
  double acc = 0.0;
  for (size_t i = coefficients_.size(); i-- > 0;) {
    acc = acc * t + coefficients_[i];
  }
  return acc;
}

Polynomial Polynomial::Derivative() const {
  if (coefficients_.size() <= 1) return Polynomial({0.0});
  std::vector<double> d(coefficients_.size() - 1);
  for (size_t i = 1; i < coefficients_.size(); ++i) {
    d[i - 1] = coefficients_[i] * static_cast<double>(i);
  }
  return Polynomial(std::move(d));
}

Result<Polynomial> FitPolynomialLeastSquares(const std::vector<double>& xs,
                                             const std::vector<double>& ys,
                                             size_t degree) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("fit requires equal-length xs and ys");
  }
  if (xs.size() < degree + 1) {
    return Status::InvalidArgument(
        "fit requires at least degree+1 points");
  }
  const size_t m = xs.size();
  const size_t n = degree + 1;
  Matrix a(m, n);
  for (size_t r = 0; r < m; ++r) {
    double pow = 1.0;
    for (size_t c = 0; c < n; ++c) {
      a(r, c) = pow;
      pow *= xs[r];
    }
  }
  DIGEST_ASSIGN_OR_RETURN(std::vector<double> coeffs,
                          SolveLeastSquares(a, ys));
  return Polynomial(std::move(coeffs));
}

Result<std::vector<double>> DividedDifferences(const std::vector<double>& xs,
                                               const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument(
        "divided differences require equal-length xs and ys");
  }
  if (xs.empty()) {
    return Status::InvalidArgument("divided differences require points");
  }
  const size_t n = xs.size();
  std::vector<double> table = ys;
  std::vector<double> out;
  out.reserve(n);
  out.push_back(table[0]);
  for (size_t level = 1; level < n; ++level) {
    for (size_t i = 0; i + level < n; ++i) {
      const double denom = xs[i + level] - xs[i];
      if (std::fabs(denom) < 1e-300) {
        return Status::InvalidArgument(
            "divided differences require distinct x values");
      }
      table[i] = (table[i + 1] - table[i]) / denom;
    }
    out.push_back(table[0]);
  }
  return out;
}

}  // namespace digest
