#ifndef DIGEST_NUMERIC_NORMAL_H_
#define DIGEST_NUMERIC_NORMAL_H_

#include "common/result.h"

namespace digest {

/// Standard normal density φ(x).
double NormalPdf(double x);

/// Standard normal CDF Φ(x), computed from erfc (double precision).
double NormalCdf(double x);

/// Standard normal quantile Φ⁻¹(p) for p in (0, 1), via the
/// Acklam rational approximation refined with one Halley step
/// (relative error below 1e-12). Fails for p outside (0, 1).
Result<double> NormalQuantile(double p);

/// The two-sided z-value z_p with Φ(z_p) = (1+p)/2 — the factor used by
/// the CLT sample-size formula (Eq. 6 of the paper): the estimate lies
/// within ±z_p·σ/√n of the truth with probability `p`.
/// Fails for confidence levels outside (0, 1).
Result<double> TwoSidedZ(double confidence);

}  // namespace digest

#endif  // DIGEST_NUMERIC_NORMAL_H_
