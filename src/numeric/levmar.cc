#include "numeric/levmar.h"

#include <cmath>

#include "numeric/matrix.h"

namespace digest {
namespace {

double CostOf(const std::vector<double>& residuals) {
  double acc = 0.0;
  for (double r : residuals) acc += r * r;
  return 0.5 * acc;
}

}  // namespace

Result<LevMarResult> LevenbergMarquardt(const ResidualFn& fn,
                                        std::vector<double> initial,
                                        size_t residual_count,
                                        const LevMarOptions& options) {
  const size_t n_params = initial.size();
  if (n_params == 0) {
    return Status::InvalidArgument("LM requires at least one parameter");
  }
  if (residual_count < n_params) {
    return Status::InvalidArgument(
        "LM requires at least as many residuals as parameters");
  }

  std::vector<double> params = std::move(initial);
  std::vector<double> residuals(residual_count, 0.0);
  fn(params, residuals);
  double cost = CostOf(residuals);

  double lambda = options.initial_lambda;
  LevMarResult out;
  out.iterations = 0;

  std::vector<double> perturbed = params;
  std::vector<double> res_perturbed(residual_count, 0.0);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    out.iterations = iter + 1;
    // Finite-difference Jacobian J (residual_count × n_params).
    Matrix jac(residual_count, n_params);
    for (size_t p = 0; p < n_params; ++p) {
      const double h =
          options.jacobian_eps * std::max(1.0, std::fabs(params[p]));
      perturbed = params;
      perturbed[p] += h;
      fn(perturbed, res_perturbed);
      for (size_t r = 0; r < residual_count; ++r) {
        jac(r, p) = (res_perturbed[r] - residuals[r]) / h;
      }
    }
    // Gradient g = Jᵀ r and Gauss-Newton Hessian H = Jᵀ J.
    std::vector<double> grad(n_params, 0.0);
    Matrix hess(n_params, n_params);
    for (size_t r = 0; r < residual_count; ++r) {
      for (size_t p = 0; p < n_params; ++p) {
        grad[p] += jac(r, p) * residuals[r];
      }
    }
    for (size_t p = 0; p < n_params; ++p) {
      for (size_t q = p; q < n_params; ++q) {
        double acc = 0.0;
        for (size_t r = 0; r < residual_count; ++r) {
          acc += jac(r, p) * jac(r, q);
        }
        hess(p, q) = acc;
        hess(q, p) = acc;
      }
    }
    double grad_inf = 0.0;
    for (double g : grad) grad_inf = std::max(grad_inf, std::fabs(g));
    if (grad_inf < options.gradient_tol) {
      out.converged = true;
      break;
    }
    // Inner damping loop: retry with larger lambda until a step reduces
    // the cost or the damping overflows.
    bool stepped = false;
    while (lambda < 1e12) {
      Matrix damped = hess;
      for (size_t p = 0; p < n_params; ++p) {
        damped(p, p) += lambda * std::max(hess(p, p), 1e-12);
      }
      std::vector<double> neg_grad(n_params);
      for (size_t p = 0; p < n_params; ++p) neg_grad[p] = -grad[p];
      Result<std::vector<double>> step = SolveLinearSystem(damped, neg_grad);
      if (!step.ok()) {
        lambda *= options.lambda_up;
        continue;
      }
      std::vector<double> candidate = params;
      double step_norm = 0.0;
      double param_norm = 0.0;
      for (size_t p = 0; p < n_params; ++p) {
        candidate[p] += (*step)[p];
        step_norm += (*step)[p] * (*step)[p];
        param_norm += params[p] * params[p];
      }
      fn(candidate, res_perturbed);
      const double candidate_cost = CostOf(res_perturbed);
      if (candidate_cost < cost) {
        params = std::move(candidate);
        residuals = res_perturbed;
        cost = candidate_cost;
        lambda = std::max(lambda * options.lambda_down, 1e-12);
        stepped = true;
        if (step_norm <= options.step_tol * (param_norm + options.step_tol)) {
          out.converged = true;
        }
        break;
      }
      lambda *= options.lambda_up;
    }
    if (!stepped || out.converged) {
      // No productive step exists at any damping: local minimum reached.
      out.converged = true;
      break;
    }
  }
  out.parameters = std::move(params);
  out.final_cost = cost;
  return out;
}

Result<LevMarResult> FitModelLevMar(
    const std::function<double(double, const std::vector<double>&)>& model,
    const std::vector<double>& xs, const std::vector<double>& ys,
    std::vector<double> initial, const LevMarOptions& options) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("fit requires equal-length xs and ys");
  }
  const auto& x_ref = xs;
  const auto& y_ref = ys;
  ResidualFn fn = [&model, &x_ref, &y_ref](const std::vector<double>& params,
                                           std::vector<double>& residuals) {
    for (size_t i = 0; i < x_ref.size(); ++i) {
      residuals[i] = model(x_ref[i], params) - y_ref[i];
    }
  };
  return LevenbergMarquardt(fn, std::move(initial), xs.size(), options);
}

}  // namespace digest
