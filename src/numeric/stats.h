#ifndef DIGEST_NUMERIC_STATS_H_
#define DIGEST_NUMERIC_STATS_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace digest {

/// Single-pass running moments (Welford's algorithm).
///
/// Numerically stable accumulation of count, mean, and variance; used by
/// the estimators to avoid a second pass over sample sets.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const RunningStats& other);

  /// Number of observations added.
  size_t count() const { return count_; }

  /// Sample mean; 0 when empty. Callers that cannot prove the
  /// accumulator is non-empty should use CheckedMean() instead — an
  /// empty accumulator's 0.0 is indistinguishable from a genuine zero
  /// mean and can mask use-before-add bugs (estimator warm-up paths).
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Sample mean, or FailedPrecondition when no observation was added.
  Result<double> CheckedMean() const {
    if (count_ == 0) {
      return Status::FailedPrecondition(
          "RunningStats::CheckedMean on an empty accumulator");
    }
    return mean_;
  }

  /// Population variance (divide by n); 0 when fewer than 1 observation.
  double PopulationVariance() const;

  /// Sample variance (divide by n-1); 0 when fewer than 2 observations.
  double SampleVariance() const;

  /// sqrt(SampleVariance()).
  double SampleStdDev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Mean of `xs`; 0 for an empty vector.
double Mean(const std::vector<double>& xs);

/// Population variance (divide by n) of `xs`.
double PopulationVariance(const std::vector<double>& xs);

/// Sample variance (divide by n-1) of `xs`; 0 when size < 2.
double SampleVariance(const std::vector<double>& xs);

/// Sample covariance of paired `xs`, `ys` (divide by n-1).
/// Fails if the sizes differ or size < 2.
Result<double> SampleCovariance(const std::vector<double>& xs,
                                const std::vector<double>& ys);

/// Pearson correlation coefficient of paired `xs`, `ys` in [-1, 1].
/// Fails if sizes differ, size < 2, or either series is constant.
Result<double> PearsonCorrelation(const std::vector<double>& xs,
                                  const std::vector<double>& ys);

/// Lag-`lag` autocorrelation of the series `xs` (biased estimator,
/// normalized by the overall variance). Fails if xs.size() <= lag or the
/// series is constant.
Result<double> Autocorrelation(const std::vector<double>& xs, size_t lag);

/// Simple linear regression of y on x: returns {intercept, slope}.
/// Fails on mismatched sizes, size < 2, or constant x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
Result<LinearFit> SimpleLinearRegression(const std::vector<double>& xs,
                                         const std::vector<double>& ys);

}  // namespace digest

#endif  // DIGEST_NUMERIC_STATS_H_
