#include "numeric/stats.h"

#include <cmath>

namespace digest {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
}

double RunningStats::PopulationVariance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::SampleVariance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::SampleStdDev() const {
  return std::sqrt(SampleVariance());
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double PopulationVariance(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.Add(x);
  return s.PopulationVariance();
}

double SampleVariance(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.Add(x);
  return s.SampleVariance();
}

Result<double> SampleCovariance(const std::vector<double>& xs,
                                const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("covariance requires equal-length series");
  }
  if (xs.size() < 2) {
    return Status::InvalidArgument("covariance requires at least 2 points");
  }
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double acc = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    acc += (xs[i] - mx) * (ys[i] - my);
  }
  return acc / static_cast<double>(xs.size() - 1);
}

Result<double> PearsonCorrelation(const std::vector<double>& xs,
                                  const std::vector<double>& ys) {
  DIGEST_ASSIGN_OR_RETURN(double cov, SampleCovariance(xs, ys));
  const double vx = SampleVariance(xs);
  const double vy = SampleVariance(ys);
  if (vx <= 0.0 || vy <= 0.0) {
    return Status::NumericError("correlation undefined for constant series");
  }
  double rho = cov / std::sqrt(vx * vy);
  // Clamp tiny floating-point excursions outside [-1, 1].
  if (rho > 1.0) rho = 1.0;
  if (rho < -1.0) rho = -1.0;
  return rho;
}

Result<double> Autocorrelation(const std::vector<double>& xs, size_t lag) {
  if (xs.size() <= lag) {
    return Status::InvalidArgument("series shorter than requested lag");
  }
  const double m = Mean(xs);
  double denom = 0.0;
  for (double x : xs) denom += (x - m) * (x - m);
  if (denom <= 0.0) {
    return Status::NumericError(
        "autocorrelation undefined for constant series");
  }
  double num = 0.0;
  for (size_t i = 0; i + lag < xs.size(); ++i) {
    num += (xs[i] - m) * (xs[i + lag] - m);
  }
  return num / denom;
}

Result<LinearFit> SimpleLinearRegression(const std::vector<double>& xs,
                                         const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("regression requires equal-length series");
  }
  if (xs.size() < 2) {
    return Status::InvalidArgument("regression requires at least 2 points");
  }
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  if (sxx <= 0.0) {
    return Status::NumericError("regression undefined for constant x");
  }
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

}  // namespace digest
