#ifndef DIGEST_NUMERIC_RNG_H_
#define DIGEST_NUMERIC_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace digest {

/// Deterministic pseudo-random number generator (xoshiro256++).
///
/// The whole library draws randomness through this class so that every
/// simulation, test, and benchmark is reproducible from a single seed.
/// The generator is splittable via Fork(), which derives an independent
/// stream (used to give every node / walker its own stream).
class Rng {
 public:
  /// Seeds the generator; equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection to
  /// avoid modulo bias.
  uint64_t NextIndex(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal variate (Marsaglia polar method).
  double NextGaussian();

  /// Normal variate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// True with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Exponential variate with rate `lambda` (> 0).
  double NextExponential(double lambda);

  /// Index drawn proportionally to non-negative `weights`. Returns
  /// weights.size() if all weights are zero/empty.
  size_t NextWeightedIndex(const std::vector<double>& weights);

  /// Derives an independent generator from this one (SplitMix-style jump).
  Rng Fork();

  /// Derives the `index`-th substream of this generator WITHOUT advancing
  /// it. Unlike Fork() — which consumes one draw, so the k-th fork depends
  /// on how many forks preceded it — Split(i) is a pure function of
  /// (current state, i): any caller holding an equal-state generator gets
  /// the same substream for the same index, in any order and from any
  /// thread. The parallel walk executor keys one substream per walk index
  /// so that walk i draws identically no matter which worker runs it.
  ///
  /// Derivation: the four state words are hashed together with the index
  /// through SplitMix64's finalizer into a 64-bit substream seed. The
  /// mixing constants are SplitMix64's published ones — the golden-ratio
  /// increment 0x9e3779b97f4a7c15 (weyl sequence step) and the
  /// variance-maximizing multipliers 0xbf58476d1ce4e5b9 /
  /// 0x94d049bb133111eb from Stafford's Mix13 finalizer — giving full
  /// avalanche between adjacent indices. Per-word salts (distinct odd
  /// constants) keep permuted state words from colliding.
  Rng Split(uint64_t index) const;

  /// Complete serializable generator state. Restoring a saved state makes
  /// the generator resume its stream exactly where the save happened —
  /// used by the engine checkpoint/restore path, which must replay the
  /// same draws an uninterrupted run would have made.
  struct State {
    uint64_t words[4] = {0, 0, 0, 0};
    bool has_spare_gaussian = false;
    double spare_gaussian = 0.0;
  };

  State SaveState() const {
    State s;
    s.words[0] = state_[0];
    s.words[1] = state_[1];
    s.words[2] = state_[2];
    s.words[3] = state_[3];
    s.has_spare_gaussian = has_spare_gaussian_;
    s.spare_gaussian = spare_gaussian_;
    return s;
  }

  void RestoreState(const State& s) {
    state_[0] = s.words[0];
    state_[1] = s.words[1];
    state_[2] = s.words[2];
    state_[3] = s.words[3];
    has_spare_gaussian_ = s.has_spare_gaussian;
    spare_gaussian_ = s.spare_gaussian;
  }

 private:
  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace digest

#endif  // DIGEST_NUMERIC_RNG_H_
