#include "numeric/matrix.h"

#include <cmath>

namespace digest {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::MatVec(const std::vector<double>& x) const {
  std::vector<double> y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

std::vector<double> Matrix::VecMat(const std::vector<double>& x) const {
  std::vector<double> y(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row = &data_[r * cols_];
    for (size_t c = 0; c < cols_; ++c) y[c] += xr * row[c];
  }
  return y;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  double worst = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
  }
  return worst;
}

Result<std::vector<double>> SolveLinearSystem(const Matrix& a,
                                              const std::vector<double>& b) {
  const size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("SolveLinearSystem requires a square A");
  }
  if (b.size() != n) {
    return Status::InvalidArgument("rhs size does not match matrix");
  }
  Matrix m = a;
  std::vector<double> rhs = b;
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    double best = std::fabs(m(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(m(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) {
      return Status::NumericError("singular system in SolveLinearSystem");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(m(col, c), m(pivot, c));
      std::swap(rhs[col], rhs[pivot]);
    }
    const double inv = 1.0 / m(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = m(r, col) * inv;
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) m(r, c) -= factor * m(col, c);
      rhs[r] -= factor * rhs[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t r = n; r-- > 0;) {
    double acc = rhs[r];
    for (size_t c = r + 1; c < n; ++c) acc -= m(r, c) * x[c];
    x[r] = acc / m(r, r);
  }
  return x;
}

Result<std::vector<double>> SolveLeastSquares(const Matrix& a,
                                              const std::vector<double>& b) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (m < n) {
    return Status::InvalidArgument(
        "least squares requires at least as many rows as columns");
  }
  if (b.size() != m) {
    return Status::InvalidArgument("rhs size does not match matrix");
  }
  // Householder QR, transforming [A | b] in place.
  Matrix r = a;
  std::vector<double> rhs = b;
  for (size_t k = 0; k < n; ++k) {
    double norm = 0.0;
    for (size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm < 1e-300) {
      return Status::NumericError("rank-deficient matrix in least squares");
    }
    const double alpha = (r(k, k) > 0.0) ? -norm : norm;
    // Householder vector v (stored locally).
    std::vector<double> v(m - k, 0.0);
    v[0] = r(k, k) - alpha;
    for (size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    double vtv = 0.0;
    for (double vi : v) vtv += vi * vi;
    if (vtv < 1e-300) continue;  // Column already triangular.
    const double beta = 2.0 / vtv;
    // Apply H = I - beta v vT to remaining columns and rhs.
    for (size_t c = k; c < n; ++c) {
      double dot = 0.0;
      for (size_t i = k; i < m; ++i) dot += v[i - k] * r(i, c);
      dot *= beta;
      for (size_t i = k; i < m; ++i) r(i, c) -= dot * v[i - k];
    }
    double dot = 0.0;
    for (size_t i = k; i < m; ++i) dot += v[i - k] * rhs[i];
    dot *= beta;
    for (size_t i = k; i < m; ++i) rhs[i] -= dot * v[i - k];
  }
  // Back substitution on the upper-triangular n×n block.
  std::vector<double> x(n, 0.0);
  for (size_t row = n; row-- > 0;) {
    double acc = rhs[row];
    for (size_t c = row + 1; c < n; ++c) acc -= r(row, c) * x[c];
    const double diag = r(row, row);
    if (std::fabs(diag) < 1e-300) {
      return Status::NumericError("rank-deficient matrix in least squares");
    }
    x[row] = acc / diag;
  }
  return x;
}

Result<double> SecondEigenvalueMagnitude(const Matrix& p,
                                         const std::vector<double>& pi,
                                         size_t max_iters, double tol) {
  const size_t n = p.rows();
  if (p.cols() != n || pi.size() != n) {
    return Status::InvalidArgument("shape mismatch in eigenvalue analysis");
  }
  for (double v : pi) {
    if (!(v > 0.0)) {
      return Status::InvalidArgument(
          "stationary distribution must be strictly positive");
    }
  }
  // Symmetrize: S(i,j) = sqrt(pi_i/pi_j) * P(i,j). Reversibility makes S
  // symmetric with the same eigenvalues as P.
  Matrix s(n, n);
  std::vector<double> sqrt_pi(n);
  for (size_t i = 0; i < n; ++i) sqrt_pi[i] = std::sqrt(pi[i]);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      s(i, j) = sqrt_pi[i] * p(i, j) / sqrt_pi[j];
    }
  }
  // Top eigenvector of S is sqrt(pi) (eigenvalue 1). Power-iterate on the
  // orthogonal complement.
  double norm_sqrt_pi = 0.0;
  for (double v : sqrt_pi) norm_sqrt_pi += v * v;
  norm_sqrt_pi = std::sqrt(norm_sqrt_pi);
  std::vector<double> top(n);
  for (size_t i = 0; i < n; ++i) top[i] = sqrt_pi[i] / norm_sqrt_pi;

  // Deterministic starting vector with nonzero overlap in general position.
  std::vector<double> x(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = 1.0 + 0.37 * std::sin(static_cast<double>(i) * 1.7 + 0.3);
  }
  auto deflate = [&](std::vector<double>& v) {
    double dot = 0.0;
    for (size_t i = 0; i < n; ++i) dot += v[i] * top[i];
    for (size_t i = 0; i < n; ++i) v[i] -= dot * top[i];
  };
  auto normalize = [&](std::vector<double>& v) -> double {
    double norm = 0.0;
    for (double vi : v) norm += vi * vi;
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (double& vi : v) vi /= norm;
    }
    return norm;
  };
  deflate(x);
  if (normalize(x) == 0.0) {
    // The complement is trivial (n == 1): no second eigenvalue.
    return 0.0;
  }
  double lambda = 0.0;
  for (size_t iter = 0; iter < max_iters; ++iter) {
    std::vector<double> y = s.MatVec(x);
    deflate(y);
    const double norm = normalize(y);
    if (norm == 0.0) return 0.0;  // x was in the kernel: |λ₂| ≈ 0.
    // Rayleigh-style magnitude estimate: |λ| ≈ ‖S x‖ since x is a unit
    // vector converging to the dominant complement eigenvector.
    const double prev = lambda;
    lambda = norm;
    x = std::move(y);
    if (iter > 10 && std::fabs(lambda - prev) < tol) {
      return lambda;
    }
  }
  return Status::NumericError("power iteration did not converge");
}

}  // namespace digest
