#ifndef DIGEST_NUMERIC_LEVMAR_H_
#define DIGEST_NUMERIC_LEVMAR_H_

#include <functional>
#include <vector>

#include "common/result.h"

namespace digest {

/// Options for the Levenberg–Marquardt solver.
struct LevMarOptions {
  size_t max_iterations = 200;    ///< Outer iteration cap.
  double initial_lambda = 1e-3;   ///< Initial damping factor.
  double lambda_up = 10.0;        ///< Damping multiplier on rejected steps.
  double lambda_down = 0.1;       ///< Damping multiplier on accepted steps.
  double gradient_tol = 1e-12;    ///< Stop when ‖JᵀR‖∞ drops below this.
  double step_tol = 1e-12;        ///< Stop when the relative step is tiny.
  double jacobian_eps = 1e-6;     ///< Finite-difference step for Jacobian.
};

/// Result of a Levenberg–Marquardt run.
struct LevMarResult {
  std::vector<double> parameters;  ///< Optimized parameter vector.
  double final_cost = 0.0;         ///< ½·Σ residual² at the optimum.
  size_t iterations = 0;           ///< Outer iterations performed.
  bool converged = false;          ///< True if a tolerance triggered the stop.
};

/// A model residual function: given parameters θ, fill `residuals` with
/// r_i(θ) (the solver minimizes ½‖r(θ)‖²). The residual count must stay
/// constant across calls.
using ResidualFn =
    std::function<void(const std::vector<double>& params,
                       std::vector<double>& residuals)>;

/// Minimizes ½‖r(θ)‖² from the starting point `initial` using the
/// Levenberg–Marquardt trust-region method with a finite-difference
/// Jacobian (the fitting method the paper names for its Taylor-polynomial
/// extrapolation, §IV-A).
///
/// Fails if `residual_count` is smaller than the parameter count or if
/// the damped normal equations become unsolvable.
Result<LevMarResult> LevenbergMarquardt(const ResidualFn& fn,
                                        std::vector<double> initial,
                                        size_t residual_count,
                                        const LevMarOptions& options = {});

/// Convenience wrapper: fits params of a scalar model y = f(x; θ) to data
/// by LM. `model(x, params)` returns the prediction at x.
Result<LevMarResult> FitModelLevMar(
    const std::function<double(double, const std::vector<double>&)>& model,
    const std::vector<double>& xs, const std::vector<double>& ys,
    std::vector<double> initial, const LevMarOptions& options = {});

}  // namespace digest

#endif  // DIGEST_NUMERIC_LEVMAR_H_
