#include "numeric/rng.h"

#include <cmath>

namespace digest {
namespace {

// SplitMix64, used for seeding and forking.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // All-zero state would be absorbing; SplitMix64 of any seed avoids it
  // with overwhelming probability, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x1ULL;
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextIndex(uint64_t bound) {
  // Lemire-style rejection sampling.
  if (bound == 0) return 0;
  uint64_t threshold = (-bound) % bound;
  while (true) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextIndex(span));
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return u * mul;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double lambda) {
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return -std::log(u) / lambda;
}

size_t Rng::NextWeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return weights.size();
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    r -= weights[i];
    if (r < 0.0) return i;
  }
  // Floating-point slack: return last positive-weight index.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size();
}

Rng Rng::Fork() { return Rng(NextU64()); }

Rng Rng::Split(uint64_t index) const {
  // Hash (state, index) down to one substream seed without touching
  // state_. Each word gets its own odd salt so permutations of the state
  // words cannot cancel; the SplitMix64 finalizer between accumulation
  // steps provides avalanche, so Split(i) and Split(i+1) share no
  // structure (see rng_test.cc's collision/statistical battery).
  uint64_t acc = 0x9e3779b97f4a7c15ULL;
  const uint64_t salts[4] = {0xa0761d6478bd642fULL, 0xe7037ed1a0b428dbULL,
                             0x8ebc6af09c88c6e3ULL, 0x589965cc75374cc3ULL};
  for (int i = 0; i < 4; ++i) {
    acc ^= state_[i] * salts[i];
    acc = SplitMix64(acc);
  }
  acc ^= index;
  acc = SplitMix64(acc);
  return Rng(acc);
}

}  // namespace digest
