#ifndef DIGEST_NUMERIC_MATRIX_H_
#define DIGEST_NUMERIC_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace digest {

/// Dense row-major matrix of doubles.
///
/// Sized for the library's needs: normal-equation solves for curve
/// fitting (tiny systems) and spectral analysis of forwarding matrices for
/// networks up to a few thousand nodes (test/bench scale).
class Matrix {
 public:
  /// Creates a rows×cols zero matrix.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Creates the n×n identity.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Matrix-vector product. `x.size()` must equal cols().
  std::vector<double> MatVec(const std::vector<double>& x) const;

  /// Row-vector–matrix product xᵀA. `x.size()` must equal rows().
  std::vector<double> VecMat(const std::vector<double>& x) const;

  /// Matrix product; `other.rows()` must equal cols().
  Matrix MatMul(const Matrix& other) const;

  /// Transposed copy.
  Matrix Transposed() const;

  /// Max-abs-element difference with `other` (must be same shape).
  double MaxAbsDiff(const Matrix& other) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Solves the square system A·x = b by Gaussian elimination with partial
/// pivoting. Fails if A is not square, shapes mismatch, or A is singular
/// to working precision.
Result<std::vector<double>> SolveLinearSystem(const Matrix& a,
                                              const std::vector<double>& b);

/// Solves the (possibly overdetermined) least-squares problem
/// min ‖A·x − b‖₂ via Householder QR. Requires rows ≥ cols and full
/// column rank; fails otherwise.
Result<std::vector<double>> SolveLeastSquares(const Matrix& a,
                                              const std::vector<double>& b);

/// Spectral analysis of a reversible row-stochastic matrix.
///
/// For a Metropolis forwarding matrix P reversible w.r.t. the stationary
/// distribution π, SecondEigenvalueMagnitude computes |λ₂| by power
/// iteration on the symmetrized matrix S = D^{1/2} P D^{-1/2}
/// (D = diag(π)), deflating the known top eigenvector √π.
/// The eigengap 1 − |λ₂| governs the mixing time (Theorem 3).
/// Fails if shapes mismatch or the iteration does not converge.
Result<double> SecondEigenvalueMagnitude(const Matrix& p,
                                         const std::vector<double>& pi,
                                         size_t max_iters = 10000,
                                         double tol = 1e-10);

}  // namespace digest

#endif  // DIGEST_NUMERIC_MATRIX_H_
