#include "workload/memory.h"

#include <algorithm>
#include <cmath>

#include "net/topology.h"

namespace digest {

Result<std::unique_ptr<MemoryWorkload>> MemoryWorkload::Create(
    MemoryConfig config) {
  if (config.num_units == 0 || config.num_nodes <= config.attach_edges) {
    return Status::InvalidArgument(
        "memory workload needs units and more nodes than attach_edges");
  }
  std::unique_ptr<MemoryWorkload> w(new MemoryWorkload(config));
  DIGEST_ASSIGN_OR_RETURN(
      w->graph_, MakeBarabasiAlbert(config.num_nodes, config.attach_edges,
                                    w->rng_));
  DIGEST_ASSIGN_OR_RETURN(Schema schema, Schema::Create({"memory"}));
  w->db_ = std::make_unique<P2PDatabase>(schema);
  std::vector<NodeId> nodes = w->graph_.LiveNodes();
  for (NodeId node : nodes) {
    DIGEST_RETURN_IF_ERROR(w->db_->AddNode(node));
  }
  // Every node hosts at least one computing unit; the surplus lands on
  // random nodes (clusters with several units, §VI-A).
  for (size_t i = 0; i < config.num_units; ++i) {
    const NodeId node = i < nodes.size()
                            ? nodes[i]
                            : nodes[w->rng_.NextIndex(nodes.size())];
    DIGEST_RETURN_IF_ERROR(w->SpawnUnit(node));
  }
  return w;
}

double MemoryWorkload::DrawLevel(double capacity) {
  // Free levels are drawn from a common distribution (independent of the
  // unit's exact capacity) so the cross-unit level spread matches the
  // calibration in MemoryConfig; clamped into the feasible range.
  const double level =
      rng_.NextGaussian(config_.level_mean, config_.level_stddev);
  return std::clamp(level, 0.0, capacity);
}

Status MemoryWorkload::SpawnUnit(NodeId node) {
  Unit unit;
  unit.capacity = std::max(
      4.0, rng_.NextGaussian(config_.capacity_mean, config_.capacity_stddev));
  unit.level = DrawLevel(unit.capacity);
  unit.value = unit.level;
  DIGEST_ASSIGN_OR_RETURN(LocalStore * store, db_->StoreAt(node));
  const double stored =
      std::clamp(unit.value + common_load_, 0.0, unit.capacity);
  const LocalTupleId local = store->Insert(Tuple{stored});
  unit.ref = TupleRef{node, local};
  units_.push_back(unit);
  return Status::OK();
}

Status MemoryWorkload::Advance() {
  ++now_;
  const double ar = config_.common_load_ar;
  common_load_ =
      ar * common_load_ +
      rng_.NextGaussian(0.0, config_.common_load_stddev *
                                 std::sqrt(std::max(1.0 - ar * ar, 1e-9)));

  // Membership churn: leaving peers take their units (tuple deletions),
  // joining peers bring fresh ones (insertions).
  DIGEST_ASSIGN_OR_RETURN(ChurnEvents events, churn_.Tick(graph_, rng_));
  for (NodeId gone : events.left) {
    DIGEST_RETURN_IF_ERROR(db_->RemoveNode(gone));
    units_.erase(std::remove_if(units_.begin(), units_.end(),
                                [gone](const Unit& u) {
                                  return u.ref.node == gone;
                                }),
                 units_.end());
  }
  const size_t avg_units_per_node =
      std::max<size_t>(1, config_.num_units / config_.num_nodes);
  for (NodeId fresh : events.joined) {
    DIGEST_RETURN_IF_ERROR(db_->AddNode(fresh));
    for (size_t i = 0; i < avg_units_per_node; ++i) {
      DIGEST_RETURN_IF_ERROR(SpawnUnit(fresh));
    }
  }

  // Value evolution: mean-reverting jitter with occasional task
  // start/stop jumps that re-target the free level.
  for (Unit& unit : units_) {
    if (rng_.NextBernoulli(config_.jump_probability)) {
      unit.level = DrawLevel(unit.capacity);
    }
    const double pulled =
        unit.level +
        config_.ar_coefficient * (unit.value - unit.level) +
        rng_.NextGaussian(0.0, config_.noise_stddev);
    unit.value = std::clamp(pulled, 0.0, unit.capacity);
    const double stored =
        std::clamp(unit.value + common_load_, 0.0, unit.capacity);
    DIGEST_ASSIGN_OR_RETURN(LocalStore * store, db_->StoreAt(unit.ref.node));
    DIGEST_RETURN_IF_ERROR(
        store->UpdateAttribute(unit.ref.local, 0, stored));
  }
  return Status::OK();
}

}  // namespace digest
