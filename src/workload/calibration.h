#ifndef DIGEST_WORKLOAD_CALIBRATION_H_
#define DIGEST_WORKLOAD_CALIBRATION_H_

#include <cstddef>

#include "common/result.h"
#include "workload/workload.h"

namespace digest {

/// Measured dataset statistics, comparable to Table II of the paper.
struct DatasetStatistics {
  /// Pooled lag-1 per-tuple correlation ρ: correlation between each
  /// tuple's value at tick t and tick t+1, pooled over all tuples and
  /// ticks (only tuples alive in both ticks contribute).
  double rho = 0.0;

  /// Time-averaged cross-sectional dispersion σ: the standard deviation
  /// of tuple values at a tick, averaged over ticks (the σ entering the
  /// CLT sample-size formula).
  double sigma = 0.0;

  size_t tuples_end = 0;     ///< |R| at the end of the window.
  size_t nodes_end = 0;      ///< Live nodes at the end of the window.
  size_t updates = 0;        ///< Tuple-value modifications observed.
  size_t joins = 0;          ///< Tuples inserted during the window.
  size_t leaves = 0;         ///< Tuples deleted during the window.
};

/// Advances `workload` by `ticks` and measures its statistics. Consumes
/// the workload's ticks (run it on a fresh instance).
Result<DatasetStatistics> MeasureWorkloadStatistics(Workload& workload,
                                                    size_t ticks);

}  // namespace digest

#endif  // DIGEST_WORKLOAD_CALIBRATION_H_
