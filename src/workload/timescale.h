#ifndef DIGEST_WORKLOAD_TIMESCALE_H_
#define DIGEST_WORKLOAD_TIMESCALE_H_

#include <cstddef>

#include "core/snapshot_estimator.h"
#include "workload/workload.h"

namespace digest {

/// Breaks the snapshot assumption (§II assumes the database is static
/// during a sampling occasion; §VIII #3 asks what happens when the
/// time-scale of data changes is comparable to the sampling time).
///
/// This SampleSource decorator advances the underlying workload by one
/// tick after every `draws_per_advance` fresh samples, so the estimator
/// reads a *moving* population mid-occasion. With draws_per_advance far
/// above the per-occasion sample count the wrapper is inert; as it
/// approaches 1, each occasion smears over many data versions and the
/// estimate converges to a time-average rather than a snapshot —
/// `bench_timescale` quantifies the degradation.
class InterleavingSampleSource : public SampleSource {
 public:
  /// Neither pointer is owned; both must outlive the source.
  InterleavingSampleSource(SampleSource* inner, Workload* workload,
                           size_t draws_per_advance)
      : inner_(inner),
        workload_(workload),
        draws_per_advance_(draws_per_advance == 0 ? 1
                                                  : draws_per_advance) {}

  Result<std::vector<TupleSample>> DrawFresh(NodeId origin,
                                             size_t n) override {
    std::vector<TupleSample> out;
    out.reserve(n);
    while (out.size() < n) {
      const size_t quota = draws_per_advance_ - pending_draws_;
      const size_t chunk = std::min(n - out.size(), quota);
      DIGEST_ASSIGN_OR_RETURN(std::vector<TupleSample> batch,
                              inner_->DrawFresh(origin, chunk));
      pending_draws_ += batch.size();
      for (TupleSample& s : batch) out.push_back(std::move(s));
      if (pending_draws_ >= draws_per_advance_) {
        DIGEST_RETURN_IF_ERROR(workload_->Advance());
        ++mid_occasion_advances_;
        pending_draws_ = 0;
      }
    }
    return out;
  }

  /// Ticks the world advanced from inside sampling occasions.
  size_t mid_occasion_advances() const { return mid_occasion_advances_; }

 private:
  SampleSource* inner_;
  Workload* workload_;
  size_t draws_per_advance_;
  size_t pending_draws_ = 0;
  size_t mid_occasion_advances_ = 0;
};

}  // namespace digest

#endif  // DIGEST_WORKLOAD_TIMESCALE_H_
