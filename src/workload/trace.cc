#include "workload/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "net/topology.h"

namespace digest {

Result<Trace> Trace::FromRecords(std::vector<TraceRecord> records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     if (a.tick != b.tick) return a.tick < b.tick;
                     return a.unit < b.unit;
                   });
  std::set<uint64_t> live;
  std::set<uint64_t> dead;
  for (const TraceRecord& r : records) {
    if (r.tick < 0) {
      return Status::InvalidArgument("trace ticks must be >= 0");
    }
    if (r.deleted) {
      if (!live.count(r.unit)) {
        return Status::InvalidArgument(
            "trace deletes unit " + std::to_string(r.unit) +
            " that is not live");
      }
      live.erase(r.unit);
      dead.insert(r.unit);
    } else {
      if (dead.count(r.unit)) {
        return Status::InvalidArgument(
            "trace updates deleted unit " + std::to_string(r.unit) +
            " (re-use a fresh unit id instead)");
      }
      if (!std::isfinite(r.value)) {
        return Status::InvalidArgument("trace values must be finite");
      }
      live.insert(r.unit);
    }
  }
  Trace trace;
  trace.records_ = std::move(records);
  return trace;
}

Result<Trace> Trace::LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::Unavailable("cannot open trace '" + path + "'");
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("empty trace file");
  }
  if (line != "tick,unit,value,deleted") {
    return Status::ParseError("unexpected trace header: " + line);
  }
  std::vector<TraceRecord> records;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    TraceRecord r;
    long long tick = 0;
    unsigned long long unit = 0;
    double value = 0.0;
    int deleted = 0;
    if (std::sscanf(line.c_str(), "%lld,%llu,%lf,%d", &tick, &unit, &value,
                    &deleted) != 4) {
      return Status::ParseError("malformed trace line " +
                                std::to_string(line_no) + ": " + line);
    }
    r.tick = tick;
    r.unit = unit;
    r.value = value;
    r.deleted = deleted != 0;
    records.push_back(r);
  }
  return FromRecords(std::move(records));
}

Status Trace::SaveCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open '" + path + "' for writing");
  }
  std::fputs("tick,unit,value,deleted\n", f);
  for (const TraceRecord& r : records_) {
    std::fprintf(f, "%lld,%llu,%.10g,%d\n",
                 static_cast<long long>(r.tick),
                 static_cast<unsigned long long>(r.unit), r.value,
                 r.deleted ? 1 : 0);
  }
  if (std::fclose(f) != 0) {
    return Status::Unavailable("error closing '" + path + "'");
  }
  return Status::OK();
}

int64_t Trace::max_tick() const {
  return records_.empty() ? 0 : records_.back().tick;
}

size_t Trace::num_units() const {
  std::set<uint64_t> units;
  for (const TraceRecord& r : records_) units.insert(r.unit);
  return units.size();
}

Result<Trace> RecordWorkload(Workload& workload, size_t ticks) {
  // Dense unit ids for (node, local-id) pairs; a re-created tuple gets a
  // fresh unit id (satisfying the trace's no-update-after-delete rule).
  std::map<std::pair<NodeId, LocalTupleId>, uint64_t> unit_of;
  uint64_t next_unit = 0;
  std::vector<TraceRecord> records;

  auto snapshot = [&](int64_t tick,
                      std::map<std::pair<NodeId, LocalTupleId>, double>&
                          current) {
    current.clear();
    for (NodeId node : workload.db().Nodes()) {
      Result<const LocalStore*> store =
          static_cast<const P2PDatabase&>(workload.db()).StoreAt(node);
      if (!store.ok()) continue;
      (*store)->ForEach([&](LocalTupleId id, const Tuple& tuple) {
        if (!tuple.empty()) current[{node, id}] = tuple[0];
      });
    }
    (void)tick;
  };

  std::map<std::pair<NodeId, LocalTupleId>, double> prev, cur;
  snapshot(0, prev);
  for (const auto& [key, value] : prev) {
    unit_of[key] = next_unit;
    records.push_back(TraceRecord{0, next_unit, value, false});
    ++next_unit;
  }
  for (size_t t = 1; t <= ticks; ++t) {
    DIGEST_RETURN_IF_ERROR(workload.Advance());
    snapshot(static_cast<int64_t>(t), cur);
    // Deletions: in prev, not in cur.
    for (const auto& [key, value] : prev) {
      (void)value;
      if (!cur.count(key)) {
        records.push_back(TraceRecord{static_cast<int64_t>(t),
                                      unit_of[key], 0.0, true});
        unit_of.erase(key);
      }
    }
    // Insertions and updates.
    for (const auto& [key, value] : cur) {
      auto it = unit_of.find(key);
      if (it == unit_of.end()) {
        unit_of[key] = next_unit;
        records.push_back(
            TraceRecord{static_cast<int64_t>(t), next_unit, value, false});
        ++next_unit;
      } else if (prev[key] != value) {
        records.push_back(TraceRecord{static_cast<int64_t>(t), it->second,
                                      value, false});
      }
    }
    prev = std::move(cur);
  }
  return Trace::FromRecords(std::move(records));
}

Result<std::unique_ptr<TraceWorkload>> TraceWorkload::Create(
    Trace trace, TraceWorkloadConfig config) {
  if (config.num_nodes < 4) {
    return Status::InvalidArgument("trace replay needs at least 4 nodes");
  }
  std::unique_ptr<TraceWorkload> w(
      new TraceWorkload(std::move(trace), std::move(config)));
  w->placement_rng_ = Rng(w->config_.seed);
  switch (w->config_.topology) {
    case TraceTopology::kMesh: {
      const size_t rows = static_cast<size_t>(
          std::floor(std::sqrt(static_cast<double>(w->config_.num_nodes))));
      DIGEST_ASSIGN_OR_RETURN(
          w->graph_,
          MakeMesh(rows, (w->config_.num_nodes + rows - 1) / rows));
      break;
    }
    case TraceTopology::kPowerLaw:
      DIGEST_ASSIGN_OR_RETURN(
          w->graph_,
          MakeBarabasiAlbert(w->config_.num_nodes, 3, w->placement_rng_));
      break;
  }
  DIGEST_ASSIGN_OR_RETURN(Schema schema,
                          Schema::Create({w->config_.attribute}));
  w->db_ = std::make_unique<P2PDatabase>(schema);
  w->nodes_ = w->graph_.LiveNodes();
  for (NodeId node : w->nodes_) {
    DIGEST_RETURN_IF_ERROR(w->db_->AddNode(node));
  }
  // Apply the initial state (tick 0 records).
  DIGEST_RETURN_IF_ERROR(w->ApplyTick(0));
  return w;
}

Status TraceWorkload::ApplyTick(int64_t tick) {
  const auto& records = trace_.records();
  while (cursor_ < records.size() && records[cursor_].tick == tick) {
    const TraceRecord& r = records[cursor_];
    ++cursor_;
    auto it = unit_refs_.find(r.unit);
    if (r.deleted) {
      if (it == unit_refs_.end()) {
        return Status::Internal("trace deletes unknown unit");
      }
      DIGEST_ASSIGN_OR_RETURN(LocalStore * store,
                              db_->StoreAt(it->second.node));
      DIGEST_RETURN_IF_ERROR(store->Erase(it->second.local));
      unit_refs_.erase(it);
      continue;
    }
    if (it == unit_refs_.end()) {
      // Insertion: place the unit on a random node.
      const NodeId node = nodes_[placement_rng_.NextIndex(nodes_.size())];
      DIGEST_ASSIGN_OR_RETURN(LocalStore * store, db_->StoreAt(node));
      const LocalTupleId local = store->Insert(Tuple{r.value});
      unit_refs_[r.unit] = TupleRef{node, local};
    } else {
      DIGEST_ASSIGN_OR_RETURN(LocalStore * store,
                              db_->StoreAt(it->second.node));
      DIGEST_RETURN_IF_ERROR(
          store->UpdateAttribute(it->second.local, 0, r.value));
    }
  }
  return Status::OK();
}

Status TraceWorkload::Advance() {
  ++now_;
  return ApplyTick(now_);
}

}  // namespace digest
