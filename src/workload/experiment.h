#ifndef DIGEST_WORKLOAD_EXPERIMENT_H_
#define DIGEST_WORKLOAD_EXPERIMENT_H_

#include <string>
#include <vector>

#include "baselines/olston_filter.h"
#include "common/result.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "net/message_meter.h"
#include "workload/workload.h"

namespace digest {

/// Outcome of driving one query-answering configuration over a workload.
struct RunResult {
  EngineStats stats;                ///< Zeroed for push baselines.
  MessageMeter meter;               ///< Communication-cost breakdown.
  std::vector<double> reported;     ///< X̂[t], tick-aligned.
  std::vector<double> truth;        ///< Oracle X[t], tick-aligned.
  std::vector<double> ci_halfwidths;///< Reported CI half-widths (engine runs).
  PrecisionReport precision;        ///< reported vs truth, uniform ε.
  /// reported vs truth under the per-tick widened contract
  /// (max(ε, ci[t]) + δ) — what a fault-injected run promises.
  PrecisionReport widened_precision;
  size_t degraded_ticks = 0;        ///< Ticks answered degraded.
  double correlation_estimate = 0;  ///< ρ̂ at the end (RPT engines).
  /// Session health at the end of the run (engine runs; push/filter
  /// baselines report kHealthy).
  SessionHealth final_health = SessionHealth::kHealthy;
};

/// Runs a Digest engine configuration over `ticks` ticks of `workload`.
/// A querying node is drawn with `seed`; the workload is consumed (pass
/// a fresh instance per run — identical seeds give identical data).
/// If options.fault_plan is set, the plan's clock is advanced in step
/// with the workload so stall windows track simulation time.
///
/// With options.tracer set, the run opens with a RunBeginEvent labelled
/// `run_label` (exporters map each run to its own process lane) and the
/// fault plan, if any, shares the tracer. With options.registry set,
/// the run's final EngineStats and MessageMeter are bridged into it
/// (engine.* / net.* counters) when the run completes.
///
/// With options.auditor set, the harness opens an audit run labelled
/// `run_label`, resolves every tick's audit occasion against the
/// workload's exact-aggregate oracle (RecordTruth), finalizes the run
/// (emitting one audit_slo event when tracing), and bridges the
/// auditor's counters/gauges/histograms into the registry when set.
Result<RunResult> RunEngineExperiment(Workload& workload,
                                      const ContinuousQuerySpec& spec,
                                      const DigestEngineOptions& options,
                                      size_t ticks, uint64_t seed,
                                      const std::string& run_label = "");

/// Runs the ALL+ALL push-everything baseline (exact results).
Result<RunResult> RunPushAllExperiment(Workload& workload,
                                       const ContinuousQuerySpec& spec,
                                       size_t ticks, uint64_t seed);

/// Runs the ALL+FILTER adaptive-filter baseline.
Result<RunResult> RunFilterExperiment(Workload& workload,
                                      const ContinuousQuerySpec& spec,
                                      size_t ticks, uint64_t seed,
                                      OlstonFilterOptions filter_options = {});

}  // namespace digest

#endif  // DIGEST_WORKLOAD_EXPERIMENT_H_
