#include "workload/csv_export.h"

#include <cmath>
#include <cstdio>

namespace digest {
namespace {

bool NeedsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

void WriteCell(std::FILE* f, const std::string& cell) {
  if (!NeedsQuoting(cell)) {
    std::fputs(cell.c_str(), f);
    return;
  }
  std::fputc('"', f);
  for (char c : cell) {
    if (c == '"') std::fputc('"', f);
    std::fputc(c, f);
  }
  std::fputc('"', f);
}

}  // namespace

Status WriteRunResultCsv(const RunResult& result, const std::string& path) {
  if (result.reported.size() != result.truth.size()) {
    return Status::InvalidArgument("run result series are not aligned");
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open '" + path + "' for writing");
  }
  std::fputs("tick,reported,truth,abs_error\n", f);
  for (size_t t = 0; t < result.reported.size(); ++t) {
    std::fprintf(f, "%zu,%.10g,%.10g,%.10g\n", t, result.reported[t],
                 result.truth[t],
                 std::fabs(result.reported[t] - result.truth[t]));
  }
  if (std::fclose(f) != 0) {
    return Status::Unavailable("error closing '" + path + "'");
  }
  return Status::OK();
}

Status WriteTableCsv(const std::vector<std::string>& header,
                     const std::vector<std::vector<std::string>>& rows,
                     const std::string& path) {
  if (header.empty()) {
    return Status::InvalidArgument("CSV table needs a header");
  }
  for (const auto& row : rows) {
    if (row.size() != header.size()) {
      return Status::InvalidArgument("ragged CSV row");
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open '" + path + "' for writing");
  }
  auto write_row = [f](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) std::fputc(',', f);
      WriteCell(f, row[i]);
    }
    std::fputc('\n', f);
  };
  write_row(header);
  for (const auto& row : rows) write_row(row);
  if (std::fclose(f) != 0) {
    return Status::Unavailable("error closing '" + path + "'");
  }
  return Status::OK();
}

}  // namespace digest
