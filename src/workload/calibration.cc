#include "workload/calibration.h"

#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "numeric/stats.h"

namespace digest {
namespace {

using ValueMap = std::map<std::pair<NodeId, LocalTupleId>, double>;

// Snapshot of every tuple's first attribute, keyed by its reference.
ValueMap SnapshotValues(const P2PDatabase& db) {
  ValueMap out;
  for (NodeId node : db.Nodes()) {
    Result<const LocalStore*> store = db.StoreAt(node);
    if (!store.ok()) continue;
    (*store)->ForEach([&](LocalTupleId id, const Tuple& tuple) {
      if (!tuple.empty()) out[{node, id}] = tuple[0];
    });
  }
  return out;
}

}  // namespace

Result<DatasetStatistics> MeasureWorkloadStatistics(Workload& workload,
                                                    size_t ticks) {
  if (ticks < 2) {
    return Status::InvalidArgument("calibration needs at least 2 ticks");
  }
  DatasetStatistics out;
  ValueMap prev = SnapshotValues(workload.db());

  std::vector<double> lag_x, lag_y;
  RunningStats sigma_acc;
  for (size_t t = 0; t < ticks; ++t) {
    DIGEST_RETURN_IF_ERROR(workload.Advance());
    ValueMap cur = SnapshotValues(workload.db());
    // Pool lag-1 pairs over tuples alive across the tick boundary.
    size_t survivors = 0;
    for (const auto& [key, value] : cur) {
      auto it = prev.find(key);
      if (it != prev.end()) {
        lag_x.push_back(it->second);
        lag_y.push_back(value);
        ++survivors;
        if (value != it->second) ++out.updates;
      } else {
        ++out.joins;
        ++out.updates;  // Insertion is a modification of R.
      }
    }
    out.leaves += prev.size() - survivors;
    // Cross-sectional dispersion at this tick.
    RunningStats tick_stats;
    for (const auto& [key, value] : cur) {
      (void)key;
      tick_stats.Add(value);
    }
    sigma_acc.Add(tick_stats.SampleStdDev());
    prev = std::move(cur);
  }
  DIGEST_ASSIGN_OR_RETURN(out.rho, PearsonCorrelation(lag_x, lag_y));
  // CheckedMean: a zero-tick calibration window has no dispersion
  // samples; surfacing that beats silently reporting sigma = 0.
  DIGEST_ASSIGN_OR_RETURN(out.sigma, sigma_acc.CheckedMean());
  out.tuples_end = workload.db().TotalTuples();
  out.nodes_end = workload.graph().NodeCount();
  return out;
}

}  // namespace digest
