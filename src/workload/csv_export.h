#ifndef DIGEST_WORKLOAD_CSV_EXPORT_H_
#define DIGEST_WORKLOAD_CSV_EXPORT_H_

#include <string>

#include "common/result.h"
#include "workload/experiment.h"

namespace digest {

/// Writes a RunResult's tick-aligned series to a CSV file with header
/// `tick,reported,truth,abs_error` — the format the plotting scripts of
/// a typical reproduction pipeline consume. Overwrites `path`.
Status WriteRunResultCsv(const RunResult& result, const std::string& path);

/// Writes an arbitrary rectangular table (header + rows) as CSV. Cells
/// are quoted only when they contain commas or quotes. Fails on ragged
/// rows or I/O errors.
Status WriteTableCsv(const std::vector<std::string>& header,
                     const std::vector<std::vector<std::string>>& rows,
                     const std::string& path);

}  // namespace digest

#endif  // DIGEST_WORKLOAD_CSV_EXPORT_H_
