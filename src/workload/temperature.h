#ifndef DIGEST_WORKLOAD_TEMPERATURE_H_
#define DIGEST_WORKLOAD_TEMPERATURE_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "numeric/rng.h"
#include "workload/workload.h"

namespace digest {

/// Configuration of the synthetic TEMPERATURE workload. Defaults follow
/// Table II: 8000 sensor units spread over 530 stations, 18 months of
/// twice-a-day readings (1095 ticks of 12 h), stable membership, mesh
/// overlay; the value process is calibrated so the per-tuple lag-1
/// correlation ρ ≈ 0.89 and cross-sectional dispersion σ ≈ 8 °F.
struct TemperatureConfig {
  size_t num_units = 8000;
  size_t num_nodes = 530;
  size_t ticks = 1095;       ///< 18 months at 2 updates/day.
  uint64_t seed = 20080407;  ///< ICDE'08 vintage.

  // Value-process parameters (°F). A value is
  //   base_u + seasonal_u(t) + diurnal_u(t) + noise_u(t) + regional(t)
  // where regional(t) is an AR(1) weather front shared by every station
  // (it moves the area average X[t] — the paper's real data shows such
  // common movement — without affecting the cross-sectional σ).
  // Calibrated so the pooled lag-1 per-tuple correlation is ρ ≈ 0.89 and
  // the cross-sectional dispersion σ ≈ 8:
  //   σ² = 4.9² + 7²/2 + 3.0²/(1−0.62²) + 1² ≈ 64   (regional excluded)
  //   ρ  = (24 + 24.5 + 0.62·14.6 − 1 + 0.9·49) / (64 + 49) ≈ 0.89
  double base_mean = 62.0;       ///< Mean station climate.
  double base_stddev = 4.9;      ///< Cross-station climate spread.
  double seasonal_amplitude = 7.0;
  double seasonal_period = 730.0;  ///< One year in 12-h ticks.
  double diurnal_amplitude = 1.0;  ///< Day/night offset (aliased, period 2).
  double ar_coefficient = 0.62;    ///< AR(1) pull of the weather noise.
  double noise_stddev = 3.0;       ///< AR(1) innovation stddev.
  double regional_stddev = 7.0;    ///< Stationary sd of the shared front.
  double regional_ar = 0.9;        ///< Persistence of the shared front.
};

/// Builds the TEMPERATURE workload: a mesh overlay of num_nodes stations,
/// units assigned randomly (so station content sizes vary, exercising the
/// nonuniform content-size weight), one tuple per unit with a single
/// `temperature` attribute, every tuple updated every tick.
class TemperatureWorkload : public Workload {
 public:
  static Result<std::unique_ptr<TemperatureWorkload>> Create(
      TemperatureConfig config);

  Graph& graph() override { return graph_; }
  const Graph& graph() const override { return graph_; }
  P2PDatabase& db() override { return *db_; }
  const P2PDatabase& db() const override { return *db_; }
  Status Advance() override;
  int64_t now() const override { return now_; }
  const char* attribute() const override { return "temperature"; }

  const TemperatureConfig& config() const { return config_; }

 private:
  struct Unit {
    TupleRef ref;
    double base;          // Station climate level.
    double season_phase;  // Phase offset of the seasonal cycle.
    double diurnal_phase; // 0 or π: morning vs evening reading bias.
    double noise;         // Current AR(1) noise state.
  };

  explicit TemperatureWorkload(TemperatureConfig config)
      : config_(config), rng_(config.seed) {}

  double UnitValue(const Unit& unit, int64_t t) const;

  TemperatureConfig config_;
  Rng rng_;
  Graph graph_;
  std::unique_ptr<P2PDatabase> db_;
  std::vector<Unit> units_;
  double regional_ = 0.0;  // Current shared weather-front offset.
  int64_t now_ = 0;
};

}  // namespace digest

#endif  // DIGEST_WORKLOAD_TEMPERATURE_H_
