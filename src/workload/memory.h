#ifndef DIGEST_WORKLOAD_MEMORY_H_
#define DIGEST_WORKLOAD_MEMORY_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "net/churn.h"
#include "numeric/rng.h"
#include "workload/workload.h"

namespace digest {

/// Configuration of the synthetic MEMORY workload. Defaults follow
/// Table II: ~1000 computing units over 820 SETI@home-style peers on a
/// power-law overlay, continuously updating available-memory readings,
/// with visible membership churn; calibrated to per-tuple lag-1
/// correlation ρ ≈ 0.68 and cross-sectional dispersion σ ≈ 10 (in
/// 100-MB units).
struct MemoryConfig {
  size_t num_units = 1000;
  size_t num_nodes = 820;
  size_t ticks = 512;
  uint64_t seed = 19990517;  ///< SETI@home launch vintage.
  size_t attach_edges = 3;   ///< Power-law overlay growth parameter.

  // Value-process parameters (units of 100 MB), calibrated so the
  // pooled lag-1 correlation (free levels persist with prob 1−p_jump,
  // AR(1) jitter at coefficient a) and cross-sectional variance solve to
  // ρ ≈ 0.68 and σ ≈ 10:
  //   σ² = 8.0² + 6.4²/(1−0.62²) ≈ 130, compressed ≈ 100 by the
  //        clamping of values into [0, capacity]
  //   ρ  = (0.75·64 + 0.62·66) / 130 ≈ 0.68 (clamping compresses both
  //        components alike, leaving ρ roughly unchanged)
  double capacity_mean = 40.0;   ///< Mean per-unit installed memory.
  double capacity_stddev = 9.0;  ///< Cross-unit capacity spread.
  double level_mean = 20.0;      ///< Mean long-run free level.
  double level_stddev = 8.0;     ///< Cross-unit free-level spread.
  double ar_coefficient = 0.62;  ///< Pull toward the unit's free level.
  double noise_stddev = 6.4;     ///< Allocation jitter per tick.
  double jump_probability = 0.25;///< Chance a task starts/stops per tick.
  /// Shared system-load swing (a workunit batch arriving for everyone):
  /// an AR(1) offset common to all units, moving the total X[t] without
  /// affecting the cross-sectional σ.
  double common_load_stddev = 4.0;
  double common_load_ar = 0.8;

  // Churn (§VI-A: SETI@home nodes join and leave frequently).
  double join_rate = 0.8;   ///< Expected node joins per tick.
  double leave_rate = 0.8;  ///< Expected node leaves per tick.
};

/// Builds the MEMORY workload: a Barabási–Albert power-law overlay, one
/// or more computing-unit tuples per node (single `memory` attribute),
/// every tuple re-sampled every tick from an AR(1)-with-jumps process,
/// and node churn that inserts/deletes tuples as peers come and go.
class MemoryWorkload : public Workload {
 public:
  static Result<std::unique_ptr<MemoryWorkload>> Create(MemoryConfig config);

  Graph& graph() override { return graph_; }
  const Graph& graph() const override { return graph_; }
  P2PDatabase& db() override { return *db_; }
  const P2PDatabase& db() const override { return *db_; }
  Status Advance() override;
  int64_t now() const override { return now_; }
  const char* attribute() const override { return "memory"; }

  const MemoryConfig& config() const { return config_; }

  void ProtectNode(NodeId node) override {
    churn_.set_protected_node(node);
  }

 private:
  struct Unit {
    TupleRef ref;
    double capacity;  // Installed memory of the unit.
    double level;     // Long-run free level the AR(1) reverts to.
    double value;     // Current free memory.
  };

  explicit MemoryWorkload(MemoryConfig config)
      : config_(config),
        rng_(config.seed),
        churn_(ChurnConfig{config.join_rate, config.leave_rate,
                           config.attach_edges,
                           /*preferential_attachment=*/true,
                           /*min_nodes=*/8}) {}

  /// Draws a fresh long-run free level, clamped into [0, capacity].
  double DrawLevel(double capacity);

  /// Creates a fresh unit (tuple) on `node`.
  Status SpawnUnit(NodeId node);

  MemoryConfig config_;
  Rng rng_;
  ChurnProcess churn_;
  Graph graph_;
  std::unique_ptr<P2PDatabase> db_;
  std::vector<Unit> units_;
  double common_load_ = 0.0;  // Current shared free-memory offset.
  int64_t now_ = 0;
};

}  // namespace digest

#endif  // DIGEST_WORKLOAD_MEMORY_H_
