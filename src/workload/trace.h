#ifndef DIGEST_WORKLOAD_TRACE_H_
#define DIGEST_WORKLOAD_TRACE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "numeric/rng.h"
#include "workload/workload.h"

namespace digest {

/// One row of a dataset trace, in the paper's dataset format (§VI-A):
/// "each tuple records the current value of the attribute at a
/// particular time at a particular unit", with a unit's first record
/// acting as an insertion and a `deleted` record as its removal.
struct TraceRecord {
  int64_t tick = 0;      ///< Time of the modification (0 = initial state).
  uint64_t unit = 0;     ///< Stable unit (sensor/computing-unit) id.
  double value = 0.0;    ///< New attribute value (ignored when deleted).
  bool deleted = false;  ///< True: the unit disappears at this tick.
};

/// An immutable, tick-ordered dataset trace. This is the bridge for
/// *real* datasets: record a synthetic workload to a file, or load a
/// file prepared from actual measurements (CSV: `tick,unit,value,
/// deleted`), and replay it as a Workload.
class Trace {
 public:
  /// Builds a trace from records; sorts by (tick, unit) and validates
  /// (no negative ticks, no updates to never-inserted units, no updates
  /// after deletion).
  static Result<Trace> FromRecords(std::vector<TraceRecord> records);

  /// Loads the CSV form (header `tick,unit,value,deleted` then rows).
  static Result<Trace> LoadCsv(const std::string& path);

  /// Writes the CSV form. Overwrites `path`.
  Status SaveCsv(const std::string& path) const;

  const std::vector<TraceRecord>& records() const { return records_; }

  /// Largest tick in the trace (0 for an initial-state-only trace).
  int64_t max_tick() const;

  /// Number of distinct units ever seen.
  size_t num_units() const;

 private:
  std::vector<TraceRecord> records_;
};

/// Records `ticks` ticks of a live workload into a Trace (tick 0 holds
/// the initial state). Unit ids are synthesized densely; a tuple deleted
/// and re-created counts as a fresh unit. Consumes the workload's ticks.
Result<Trace> RecordWorkload(Workload& workload, size_t ticks);

/// Overlay shape for trace replay.
enum class TraceTopology { kMesh, kPowerLaw };

/// Configuration of a trace replay.
struct TraceWorkloadConfig {
  size_t num_nodes = 64;
  TraceTopology topology = TraceTopology::kPowerLaw;
  uint64_t seed = 1;          ///< Unit→node placement (and topology).
  std::string attribute = "value";
};

/// Replays a Trace as a Workload: units are placed on uniformly random
/// nodes of a generated overlay, and every Advance() applies the next
/// tick's insertions/updates/deletions. Membership of the *overlay* is
/// static (the trace carries data dynamics; pair with MemoryWorkload for
/// overlay churn experiments).
class TraceWorkload : public Workload {
 public:
  static Result<std::unique_ptr<TraceWorkload>> Create(
      Trace trace, TraceWorkloadConfig config);

  Graph& graph() override { return graph_; }
  const Graph& graph() const override { return graph_; }
  P2PDatabase& db() override { return *db_; }
  const P2PDatabase& db() const override { return *db_; }

  /// Applies the records of tick now()+1. Advancing past max_tick() is
  /// allowed and leaves the data unchanged (a quiescent tail).
  Status Advance() override;

  int64_t now() const override { return now_; }
  const char* attribute() const override {
    return config_.attribute.c_str();
  }

 private:
  TraceWorkload(Trace trace, TraceWorkloadConfig config)
      : trace_(std::move(trace)), config_(std::move(config)) {}

  /// Applies all records with the given tick, starting at cursor_.
  Status ApplyTick(int64_t tick);

  Trace trace_;
  TraceWorkloadConfig config_;
  Graph graph_;
  std::unique_ptr<P2PDatabase> db_;
  Rng placement_rng_{0};
  std::vector<NodeId> nodes_;  // Live overlay nodes (static).
  // unit -> current location; absent = not live.
  std::map<uint64_t, TupleRef> unit_refs_;
  size_t cursor_ = 0;  // Next unapplied record.
  int64_t now_ = 0;
};

}  // namespace digest

#endif  // DIGEST_WORKLOAD_TRACE_H_
