#include "workload/experiment.h"

#include "audit/audit.h"
#include "baselines/push_all.h"
#include "diag/diag.h"
#include "net/peer_health.h"
#include "numeric/rng.h"
#include "obs/bridge.h"
#include "obs/tracer.h"

namespace digest {

Result<RunResult> RunEngineExperiment(Workload& workload,
                                      const ContinuousQuerySpec& spec,
                                      const DigestEngineOptions& options,
                                      size_t ticks, uint64_t seed,
                                      const std::string& run_label) {
  Rng rng(seed);
  DIGEST_ASSIGN_OR_RETURN(NodeId querying_node,
                          workload.graph().RandomLiveNode(rng));
  workload.ProtectNode(querying_node);

  if (obs::Tracing(options.tracer)) {
    // Rewind the shared tracer clock to this run's start so a marker
    // left over from a previous run cannot stamp it with stale time.
    options.tracer->set_now(workload.now());
    options.tracer->Emit(obs::RunBeginEvent{
        run_label.empty() ? "engine-run" : run_label});
  }
  if (options.fault_plan != nullptr) {
    options.fault_plan->SetTracer(options.tracer);
    options.fault_plan->SetProfiler(options.profiler);
  }
  if (options.auditor != nullptr) {
    options.auditor->BeginRun(run_label.empty() ? "engine-run" : run_label);
  }
  if (options.diag != nullptr) {
    // Mirror the auditor: a shared diagnostics aggregator starts every
    // run from a clean slate, so repeat runs accumulate identically.
    options.diag->Reset();
  }
  if (options.health != nullptr) {
    // Same clean-slate discipline for the peer-health monitor: breaker
    // and quarantine state never leaks across runs.
    options.health->Reset();
  }

  RunResult out;
  DIGEST_ASSIGN_OR_RETURN(
      std::unique_ptr<DigestEngine> engine,
      DigestEngine::Create(&workload.graph(), &workload.db(), spec,
                           querying_node, rng.Fork(), &out.meter, options));
  out.reported.reserve(ticks);
  out.truth.reserve(ticks);
  out.ci_halfwidths.reserve(ticks);
  for (size_t t = 0; t < ticks; ++t) {
    DIGEST_RETURN_IF_ERROR(workload.Advance());
    if (options.fault_plan != nullptr) {
      options.fault_plan->set_now(workload.now());
    }
    DIGEST_ASSIGN_OR_RETURN(double truth,
                            workload.db().ExactAggregate(spec.query));
    DIGEST_ASSIGN_OR_RETURN(EngineTickResult tick,
                            engine->Tick(workload.now()));
    out.truth.push_back(truth);
    out.reported.push_back(tick.reported_value);
    out.ci_halfwidths.push_back(tick.ci_halfwidth);
    if (tick.degraded) ++out.degraded_ticks;
    if (options.auditor != nullptr) {
      // The simulation oracle resolves each tick's audit occasion right
      // after the engine reports it.
      options.auditor->RecordTruth(workload.now(), truth);
    }
  }
  out.stats = engine->stats();
  out.correlation_estimate = engine->correlation_estimate();
  out.final_health = engine->health();
  if (options.auditor != nullptr) options.auditor->FinalizeRun();
  if (options.registry != nullptr) {
    ExportToRegistry(out.stats, options.registry, run_label);
    obs::BridgeMessageMeter(out.meter, options.registry);
    engine->supervisor().ExportToRegistry(options.registry);
    if (options.auditor != nullptr) {
      options.auditor->ExportToRegistry(options.registry);
    }
    if (options.health != nullptr) {
      options.health->ExportToRegistry(options.registry);
    }
  }
  DIGEST_ASSIGN_OR_RETURN(
      out.precision,
      EvaluatePrecision(out.reported, out.truth, spec.precision));
  DIGEST_ASSIGN_OR_RETURN(
      out.widened_precision,
      EvaluatePrecisionWidened(out.reported, out.truth, out.ci_halfwidths,
                               spec.precision));
  return out;
}

Result<RunResult> RunPushAllExperiment(Workload& workload,
                                       const ContinuousQuerySpec& spec,
                                       size_t ticks, uint64_t seed) {
  Rng rng(seed);
  DIGEST_ASSIGN_OR_RETURN(NodeId querying_node,
                          workload.graph().RandomLiveNode(rng));
  workload.ProtectNode(querying_node);

  RunResult out;
  PushAllBaseline baseline(&workload.graph(), &workload.db(), spec.query,
                           querying_node, &out.meter);
  for (size_t t = 0; t < ticks; ++t) {
    DIGEST_RETURN_IF_ERROR(workload.Advance());
    DIGEST_ASSIGN_OR_RETURN(double value, baseline.Tick());
    out.truth.push_back(value);  // Push-all is exact.
    out.reported.push_back(value);
  }
  DIGEST_ASSIGN_OR_RETURN(
      out.precision,
      EvaluatePrecision(out.reported, out.truth, spec.precision));
  return out;
}

Result<RunResult> RunFilterExperiment(Workload& workload,
                                      const ContinuousQuerySpec& spec,
                                      size_t ticks, uint64_t seed,
                                      OlstonFilterOptions filter_options) {
  Rng rng(seed);
  DIGEST_ASSIGN_OR_RETURN(NodeId querying_node,
                          workload.graph().RandomLiveNode(rng));
  workload.ProtectNode(querying_node);

  RunResult out;
  // §VI-B3 sets the filter precision interval so that H − L < 2ε,
  // matching Digest's confidence interval.
  OlstonFilterBaseline baseline(&workload.graph(), &workload.db(),
                                spec.query, querying_node,
                                spec.precision.epsilon, &out.meter,
                                filter_options);
  for (size_t t = 0; t < ticks; ++t) {
    DIGEST_RETURN_IF_ERROR(workload.Advance());
    DIGEST_ASSIGN_OR_RETURN(double value, baseline.Tick());
    DIGEST_ASSIGN_OR_RETURN(double truth,
                            workload.db().ExactAggregate(spec.query));
    out.truth.push_back(truth);
    out.reported.push_back(value);
  }
  DIGEST_ASSIGN_OR_RETURN(
      out.precision,
      EvaluatePrecision(out.reported, out.truth, spec.precision));
  return out;
}

}  // namespace digest
