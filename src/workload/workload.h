#ifndef DIGEST_WORKLOAD_WORKLOAD_H_
#define DIGEST_WORKLOAD_WORKLOAD_H_

#include <cstdint>

#include "common/result.h"
#include "db/p2p_database.h"
#include "net/graph.h"

namespace digest {

/// A simulated peer-to-peer database workload: an overlay graph, the
/// partitioned relation living on it, and a per-tick data-evolution
/// process (value updates; for churning workloads also node join/leave
/// with tuple insertion/deletion).
///
/// The two concrete workloads mirror the paper's datasets (Table II):
/// TemperatureWorkload (JPL/NASA weather stations, mesh overlay, stable
/// membership) and MemoryWorkload (SETI@home available memory, power-law
/// overlay, churning membership). Both are synthetic generators
/// calibrated to the table's (ρ, σ) — see DESIGN.md's substitution notes.
class Workload {
 public:
  virtual ~Workload() = default;

  /// The overlay. Mutable because churny workloads rewire it.
  virtual Graph& graph() = 0;
  virtual const Graph& graph() const = 0;

  /// The partitioned relation.
  virtual P2PDatabase& db() = 0;
  virtual const P2PDatabase& db() const = 0;

  /// Advances the data (and membership) by one tick.
  virtual Status Advance() = 0;

  /// Ticks advanced so far.
  virtual int64_t now() const = 0;

  /// Name of the single measured attribute ("temperature" / "memory").
  virtual const char* attribute() const = 0;

  /// Exempts `node` from any membership churn (the querying node stays
  /// online while its continuous query runs). Default: no-op for
  /// churn-free workloads.
  virtual void ProtectNode(NodeId node) { (void)node; }
};

}  // namespace digest

#endif  // DIGEST_WORKLOAD_WORKLOAD_H_
