#include "workload/temperature.h"

#include <cmath>

#include "net/topology.h"

namespace digest {

Result<std::unique_ptr<TemperatureWorkload>> TemperatureWorkload::Create(
    TemperatureConfig config) {
  if (config.num_units == 0 || config.num_nodes < 4) {
    return Status::InvalidArgument(
        "temperature workload needs units and at least 4 nodes");
  }
  std::unique_ptr<TemperatureWorkload> w(new TemperatureWorkload(config));
  // Start the shared weather front at its stationary distribution.
  w->regional_ = w->rng_.NextGaussian(0.0, config.regional_stddev);

  // Mesh overlay sized as close to num_nodes as a rectangle allows
  // (§VI-A simulates the weather network with a mesh topology).
  const size_t rows = static_cast<size_t>(
      std::floor(std::sqrt(static_cast<double>(config.num_nodes))));
  const size_t cols = (config.num_nodes + rows - 1) / rows;
  DIGEST_ASSIGN_OR_RETURN(w->graph_, MakeMesh(rows, cols));

  DIGEST_ASSIGN_OR_RETURN(Schema schema, Schema::Create({"temperature"}));
  w->db_ = std::make_unique<P2PDatabase>(schema);
  std::vector<NodeId> nodes = w->graph_.LiveNodes();
  for (NodeId node : nodes) {
    DIGEST_RETURN_IF_ERROR(w->db_->AddNode(node));
  }

  // Units are placed on uniformly random stations, so content sizes m_v
  // vary (binomially) around num_units / num_nodes.
  w->units_.reserve(config.num_units);
  for (size_t u = 0; u < config.num_units; ++u) {
    Unit unit;
    unit.base = w->rng_.NextGaussian(config.base_mean, config.base_stddev);
    unit.season_phase = w->rng_.NextDouble() * 2.0 * M_PI;
    unit.diurnal_phase = w->rng_.NextBernoulli(0.5) ? 0.0 : M_PI;
    // Start the AR(1) noise at its stationary distribution.
    const double a = config.ar_coefficient;
    const double stationary_sd =
        config.noise_stddev / std::sqrt(std::max(1.0 - a * a, 1e-9));
    unit.noise = w->rng_.NextGaussian(0.0, stationary_sd);

    const NodeId node = nodes[w->rng_.NextIndex(nodes.size())];
    DIGEST_ASSIGN_OR_RETURN(LocalStore * store, w->db_->StoreAt(node));
    const double v = w->UnitValue(unit, 0);
    const LocalTupleId local = store->Insert(Tuple{v});
    unit.ref = TupleRef{node, local};
    w->units_.push_back(unit);
  }
  return w;
}

double TemperatureWorkload::UnitValue(const Unit& unit, int64_t t) const {
  const double td = static_cast<double>(t);
  const double seasonal =
      config_.seasonal_amplitude *
      std::sin(2.0 * M_PI * td / config_.seasonal_period + unit.season_phase);
  // With 12-hour ticks the diurnal cycle aliases to an alternating
  // offset: cos(π·t + phase) = ±(−1)^t flips sign every tick.
  const double diurnal =
      config_.diurnal_amplitude * std::cos(M_PI * td + unit.diurnal_phase);
  return unit.base + seasonal + diurnal + unit.noise + regional_;
}

Status TemperatureWorkload::Advance() {
  ++now_;
  const double ar = config_.regional_ar;
  regional_ = ar * regional_ +
              rng_.NextGaussian(0.0, config_.regional_stddev *
                                         std::sqrt(std::max(
                                             1.0 - ar * ar, 1e-9)));
  for (Unit& unit : units_) {
    unit.noise = config_.ar_coefficient * unit.noise +
                 rng_.NextGaussian(0.0, config_.noise_stddev);
    const double v = UnitValue(unit, now_);
    DIGEST_ASSIGN_OR_RETURN(LocalStore * store, db_->StoreAt(unit.ref.node));
    DIGEST_RETURN_IF_ERROR(store->UpdateAttribute(unit.ref.local, 0, v));
  }
  return Status::OK();
}

}  // namespace digest
