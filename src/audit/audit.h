#ifndef DIGEST_AUDIT_AUDIT_H_
#define DIGEST_AUDIT_AUDIT_H_

// Continuous precision auditing for one continuous-query session: the
// runtime layer that *verifies* the paper's fixed-precision promise
// instead of assuming it. Per snapshot occasion the auditor records a
// CoverageRecord (estimate, reported CI, oracle truth when the driver
// has one, hit/miss, sample cost, fault/degradation state); per run it
// maintains rolling (ε, p) empirical coverage, δ-compliance of
// extrapolated (skipped-tick) answers, an error-budget burn meter over
// the allowed 1 − p miss budget, and EWMA/CUSUM drift detectors on the
// signed estimation error and on message-cost-per-snapshot.
//
// Attribution is structural, not heuristic: every miss is tagged with
// the dominant cause using state the subsystems already expose
// (degraded/partial/timeout flags from the estimator and engine, the
// skip path from the PRED scheduler) — see MissCause.
//
// Determinism contract, same discipline as the profiler and tracer:
//  - the auditor consumes no RNG and reads no wall clock; every
//    readout is a pure fold over the observation sequence;
//  - a null auditor pointer is the fast path — no audit code runs and
//    the run is bit-identical to a pre-audit build (test-enforced);
//  - an attached auditor observes but never steers: estimates, meter
//    counts, and RNG streams are unchanged. The single intentional
//    exception is the supervisor flip: a sustained drift breach asks
//    the engine (via TakePendingBreachFlip) to degrade the session
//    health machine, which is itself a pure observer.
//
// The auditor has no core/ dependency (health rides as the ladder
// index, the contract as three doubles), so audit sits between obs and
// core in the link DAG: digest_audit -> digest_obs/digest_common, and
// digest_core -> digest_audit.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace digest {
namespace audit {

/// Dominant structural cause of one coverage miss. Precedence for
/// snapshot occasions (worst subsystem state wins): hedge_timeout >
/// retained_pool > partial_snapshot > peer_quarantine > poor_mixing >
/// variance_undershoot; misses on skipped (extrapolated/held) ticks are
/// always pred_residual.
enum class MissCause {
  kNone = 0,                 ///< The occasion hit (or is unresolved).
  kVarianceUndershoot = 1,   ///< Healthy fresh snapshot whose variance
                             ///< estimate undershot: truth outside ±ε.
  kPredResidual = 2,         ///< Extrapolated answer on a skipped tick
                             ///< drifted past the widened δ contract.
  kPartialSnapshot = 3,      ///< Deadline-budgeted early finalization.
  kRetainedPoolFallback = 4, ///< Degraded retained-pool answer.
  kHedgeTimeout = 5,         ///< The occasion produced nothing; the
                             ///< engine held the result under a
                             ///< doubling interval.
  kPoorMixing = 6,           ///< Would-be variance_undershoot whose
                             ///< occasion coincided with a sampler
                             ///< stationary-gap breach (src/diag): the
                             ///< walks had not mixed, so the sample was
                             ///< not weight-proportional and the
                             ///< variance estimate is untrustworthy.
  kPeerQuarantine = 7,       ///< The batches feeding this occasion
                             ///< routed around quarantined peers
                             ///< (src/net/peer_health): coverage of the
                             ///< quarantined nodes' values was traded
                             ///< for reachability, so the sample frame
                             ///< excluded part of the population.
};

constexpr size_t kNumMissCauses = 8;

/// Stable lower-snake name (trace events, metric labels, bench extras).
const char* MissCauseName(MissCause cause);

/// Drift-detector tuning. Errors are standardized by ε before the CUSUM
/// fold, so the defaults are workload-independent.
struct AuditOptions {
  /// EWMA smoothing for the signed-error and cost baselines.
  double ewma_alpha = 0.25;
  /// CUSUM slack k (in ε units for the error detector; in relative
  /// cost excess for the cost detector).
  double cusum_slack = 0.5;
  /// CUSUM decision threshold h: a one-sided sum exceeding it puts the
  /// detector in breach.
  double cusum_threshold = 8.0;
  /// Consecutive in-breach resolutions before the supervisor is asked
  /// to degrade; the detector then resets and re-arms.
  size_t breach_patience = 3;

  Status Validate() const;
};

/// What the engine observed at one snapshot occasion (the audit-facing
/// slice of EngineTickResult + SnapshotEstimate, kept core-free).
struct SnapshotObservation {
  int64_t tick = 0;
  double estimate = 0.0;      ///< Reported value after this occasion.
  double ci_halfwidth = 0.0;  ///< Reported (possibly widened) CI.
  bool degraded = false;
  bool partial = false;
  uint64_t total_samples = 0;
  uint64_t fresh_samples = 0;
  uint64_t retained_samples = 0;
  uint64_t message_cost = 0;  ///< Meter delta attributable to the tick.
  int health = 0;             ///< SessionHealth ladder index after fold.
  /// The sampler diagnostics declared a stationary-gap breach for a
  /// batch feeding this occasion (SamplerDiag::TakeBreachSinceLastRead;
  /// always false when --diag is off).
  bool mixing_breach = false;
  /// A batch feeding this occasion routed against a non-empty
  /// quarantine set (PeerHealthMonitor::TakeQuarantineSinceLastRead;
  /// always false when no monitor is attached).
  bool quarantine = false;
};

/// One ledger row: a snapshot occasion, resolved against the oracle
/// when the driver supplied truth for its tick.
struct CoverageRecord {
  int64_t tick = 0;
  double estimate = 0.0;
  double ci_halfwidth = 0.0;
  double truth = 0.0;
  bool has_truth = false;
  bool hit = false;  ///< |estimate − truth| ≤ ci_halfwidth.
  MissCause cause = MissCause::kNone;
  bool degraded = false;
  bool partial = false;
  bool timeout = false;  ///< Held-result path (occasion yielded nothing).
  bool mixing_breach = false;  ///< Sampler stationary gap out of tolerance.
  bool quarantine = false;     ///< Sampled while peers were quarantined.
  int health = 0;
  uint64_t total_samples = 0;
  uint64_t fresh_samples = 0;
  uint64_t retained_samples = 0;
  uint64_t message_cost = 0;
};

/// EWMA + two-sided CUSUM over one scalar stream. Plain serializable
/// state; the fold lives in PrecisionAuditor.
struct DriftDetector {
  double ewma = 0.0;
  bool initialized = false;
  double cusum_pos = 0.0;
  double cusum_neg = 0.0;
  uint64_t breaches = 0;  ///< Resolutions that ended in breach.
  uint64_t streak = 0;    ///< Consecutive in-breach resolutions.
};

/// The per-session precision audit ledger. Wiring (mirrors the
/// profiler):
///  - the engine holds a non-owning pointer (DigestEngineOptions::
///    auditor) and feeds RecordSnapshot/RecordTimeout/RecordSkip from
///    its tick paths, draining TakePendingBreachFlip into the
///    supervisor at the top of each tick;
///  - the driver (experiment runner or bench scenario) brackets each
///    run with BeginRun/FinalizeRun and resolves ticks against its
///    oracle via RecordTruth(t, truth) after each Tick.
class PrecisionAuditor {
 public:
  explicit PrecisionAuditor(AuditOptions options = AuditOptions());

  const AuditOptions& options() const { return options_; }

  /// Attaches (or detaches, with nullptr) the trace sink for audit_*
  /// events. Not owned; must outlive the auditor.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Installs the precision contract the session runs under. Called by
  /// the engine at Create; ε must be > 0 and p in (0, 1) (the spec the
  /// engine validated).
  void AttachContract(double delta, double epsilon, double confidence);

  /// Resets all per-run rolling state (ledger, coverage, detectors,
  /// pending flips) and labels the run. Cross-run summaries accumulated
  /// by FinalizeRun survive.
  void BeginRun(const std::string& label);

  // --- Engine-side observations (one per tick, at most) ---

  /// A snapshot occasion completed (fresh, degraded, or partial).
  void RecordSnapshot(const SnapshotObservation& observation);

  /// The occasion produced nothing; the engine held `held_value` under
  /// a doubled interval.
  void RecordTimeout(int64_t tick, double held_value, double ci_halfwidth,
                     uint64_t message_cost, int health);

  /// The scheduler skipped this tick; `reported` is the held or
  /// extrapolated answer shown under `ci_halfwidth`.
  void RecordSkip(int64_t tick, double reported, double ci_halfwidth);

  /// True once per sustained drift breach since the last call: the
  /// engine drains this at the top of each Tick and degrades the
  /// supervisor for each true return.
  bool TakePendingBreachFlip();

  // --- Driver-side resolution ---

  /// Resolves the pending observation for `tick` against the oracle
  /// value. Unmatched ticks are counted and ignored.
  void RecordTruth(int64_t tick, double truth);

  /// Closes the run: flushes any unresolved observation to the ledger,
  /// emits one audit_slo trace event, and appends the run's Summary to
  /// completed_runs().
  void FinalizeRun();

  /// End-of-run SLO verdict (pure readout; FinalizeRun not required).
  struct Summary {
    std::string label;
    double p = 0.0;
    double epsilon = 0.0;
    double delta = 0.0;
    uint64_t occasions = 0;  ///< Snapshot occasions resolved vs oracle.
    uint64_t hits = 0;
    uint64_t misses = 0;
    double coverage = 1.0;
    /// Binomial-stderr gate: p − 2·sqrt(p(1 − p)/occasions). Empirical
    /// coverage below this floor fails the CI audit gate.
    double coverage_floor = 0.0;
    bool coverage_ok = true;
    uint64_t delta_ticks = 0;  ///< Skipped ticks resolved vs oracle.
    uint64_t delta_misses = 0;
    double delta_compliance = 1.0;
    double budget_burn = 0.0;       ///< miss_rate / (1 − p).
    double budget_remaining = 1.0;  ///< max(0, 1 − burn).
    uint64_t ledger_records = 0;    ///< Includes truth-less occasions.
    uint64_t cause_counts[kNumMissCauses] = {};
    uint64_t error_breaches = 0;
    uint64_t cost_breaches = 0;
    uint64_t supervisor_flips = 0;
    double p50_abs_error_eps = 0.0;  ///< Median |error|/ε (hist est.).
    double p90_abs_error_eps = 0.0;
    double p90_snapshot_cost = 0.0;  ///< Messages per occasion (hist est.).
  };
  Summary Summarize() const;

  /// Summarize() as one stable JSON object (%.17g doubles, fixed key
  /// order) — spliced into bench extras and compared byte-for-byte by
  /// the repeat-stability and thread-invariance gates.
  std::string SummaryJson() const;

  /// Runs closed by FinalizeRun since construction, in order.
  const std::vector<Summary>& completed_runs() const {
    return completed_runs_;
  }

  /// Dumps rolling coverage/budget/attribution/drift instruments into
  /// `registry` under the audit.* namespace, labelled with the run.
  /// Null registry is a no-op.
  void ExportToRegistry(obs::Registry* registry) const;

  /// The run's ledger so far (snapshot occasions only; skipped ticks
  /// fold into the δ-compliance counters).
  const std::vector<CoverageRecord>& records() const { return records_; }

  /// Serializable per-run state for the engine checkpoint (v2 blobs).
  /// completed_runs() is session-, not run-state, and deliberately
  /// stays out.
  struct State {
    std::string run_label;
    std::vector<CoverageRecord> records;
    bool pending_snapshot = false;
    CoverageRecord pending_record;
    bool pending_skip = false;
    int64_t skip_tick = 0;
    double skip_reported = 0.0;
    double skip_ci = 0.0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t delta_ticks = 0;
    uint64_t delta_misses = 0;
    uint64_t unmatched_truths = 0;
    uint64_t cause_counts[kNumMissCauses] = {};
    DriftDetector error_detector;
    DriftDetector cost_detector;
    uint64_t supervisor_flips = 0;
    uint64_t pending_flips = 0;
  };
  State SaveState() const;
  /// Installs `state`, rebuilding the quantile histograms by replaying
  /// the ledger. The contract (AttachContract) is configuration, not
  /// state, matching the checkpoint discipline.
  void RestoreState(const State& state);

  /// JSON codec for State, used by the engine checkpoint ("audit"
  /// section of digest-checkpoint-v2 and later). Append emits a stable
  /// object;
  /// Parse validates everything before returning (so the engine's
  /// parse-all-then-install discipline extends to audit state).
  static void AppendStateJson(const State& state, std::string* out);
  static Result<State> ParseStateJson(const json::Value& value);

 private:
  void FlushPending();
  void ResolveSnapshot(double truth);
  void ResolveSkip(double truth);
  /// Folds one standardized observation into `detector`, emitting
  /// audit_drift on breach and requesting a supervisor flip when the
  /// breach streak reaches patience. Returns true on breach.
  bool UpdateDetector(DriftDetector* detector, const char* name,
                      double value, double ewma_next);
  void RebuildHistograms();

  AuditOptions options_;
  obs::Tracer* tracer_ = nullptr;
  double delta_ = 0.0;
  double epsilon_ = 1.0;
  double confidence_ = 0.95;
  std::string run_label_;

  std::vector<CoverageRecord> records_;
  bool pending_snapshot_ = false;
  CoverageRecord pending_record_;
  bool pending_skip_ = false;
  int64_t skip_tick_ = 0;
  double skip_reported_ = 0.0;
  double skip_ci_ = 0.0;

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t delta_ticks_ = 0;
  uint64_t delta_misses_ = 0;
  uint64_t unmatched_truths_ = 0;
  uint64_t cause_counts_[kNumMissCauses] = {};
  DriftDetector error_detector_;
  DriftDetector cost_detector_;
  uint64_t supervisor_flips_ = 0;
  uint64_t pending_flips_ = 0;

  obs::Histogram abs_error_hist_;  ///< |error|/ε of resolved occasions.
  obs::Histogram cost_hist_;       ///< Message cost per occasion.

  std::vector<Summary> completed_runs_;
};

/// Aligned per-run SLO table over `runs` (the completed_runs() of one
/// or more auditors) — the end-of-bench human-facing readout.
std::string RenderSloTable(const std::vector<PrecisionAuditor::Summary>& runs);

}  // namespace audit
}  // namespace digest

#endif  // DIGEST_AUDIT_AUDIT_H_
