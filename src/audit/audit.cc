#include "audit/audit.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/strings.h"

namespace digest {
namespace audit {
namespace {

// Fixed, spec-independent bucket layouts: errors are standardized by ε
// before observation, so the same edges audit every workload and the
// exported histograms aggregate across runs.
std::vector<double> AbsErrorBounds() {
  return obs::LinearBuckets(0.125, 4.0, 32);
}
std::vector<double> CostBounds() {
  return obs::ExponentialBuckets(1.0, 2.0, 24);
}

void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

void AppendU64(std::string* out, uint64_t v) {
  // Checkpoint convention: uint64 counters ride as decimal strings
  // (exact for the full range; see engine_checkpoint.cc).
  *out += '"';
  *out += std::to_string(v);
  *out += '"';
}

void AppendBool(std::string* out, bool v) { *out += v ? "true" : "false"; }

void AppendRecordJson(std::string* out, const CoverageRecord& r) {
  *out += "{\"tick\":";
  *out += std::to_string(r.tick);
  *out += ",\"estimate\":";
  AppendDouble(out, r.estimate);
  *out += ",\"ci_halfwidth\":";
  AppendDouble(out, r.ci_halfwidth);
  *out += ",\"truth\":";
  AppendDouble(out, r.truth);
  *out += ",\"has_truth\":";
  AppendBool(out, r.has_truth);
  *out += ",\"hit\":";
  AppendBool(out, r.hit);
  *out += ",\"cause\":";
  AppendU64(out, static_cast<uint64_t>(r.cause));
  *out += ",\"degraded\":";
  AppendBool(out, r.degraded);
  *out += ",\"partial\":";
  AppendBool(out, r.partial);
  *out += ",\"timeout\":";
  AppendBool(out, r.timeout);
  *out += ",\"mixing_breach\":";
  AppendBool(out, r.mixing_breach);
  *out += ",\"quarantine\":";
  AppendBool(out, r.quarantine);
  *out += ",\"health\":";
  *out += std::to_string(r.health);
  *out += ",\"total_samples\":";
  AppendU64(out, r.total_samples);
  *out += ",\"fresh_samples\":";
  AppendU64(out, r.fresh_samples);
  *out += ",\"retained_samples\":";
  AppendU64(out, r.retained_samples);
  *out += ",\"message_cost\":";
  AppendU64(out, r.message_cost);
  *out += '}';
}

Result<CoverageRecord> ParseRecordJson(const json::Value& v) {
  CoverageRecord r;
  DIGEST_ASSIGN_OR_RETURN(r.tick, v.GetInt64("tick"));
  DIGEST_ASSIGN_OR_RETURN(r.estimate, v.GetDouble("estimate"));
  DIGEST_ASSIGN_OR_RETURN(r.ci_halfwidth, v.GetDouble("ci_halfwidth"));
  DIGEST_ASSIGN_OR_RETURN(r.truth, v.GetDouble("truth"));
  DIGEST_ASSIGN_OR_RETURN(r.has_truth, v.GetBool("has_truth"));
  DIGEST_ASSIGN_OR_RETURN(r.hit, v.GetBool("hit"));
  uint64_t cause;
  DIGEST_ASSIGN_OR_RETURN(cause, v.GetUInt64("cause"));
  if (cause >= kNumMissCauses) {
    return Status::InvalidArgument("audit: miss cause out of range");
  }
  r.cause = static_cast<MissCause>(cause);
  DIGEST_ASSIGN_OR_RETURN(r.degraded, v.GetBool("degraded"));
  DIGEST_ASSIGN_OR_RETURN(r.partial, v.GetBool("partial"));
  DIGEST_ASSIGN_OR_RETURN(r.timeout, v.GetBool("timeout"));
  DIGEST_ASSIGN_OR_RETURN(r.mixing_breach, v.GetBool("mixing_breach"));
  DIGEST_ASSIGN_OR_RETURN(r.quarantine, v.GetBool("quarantine"));
  int64_t health;
  DIGEST_ASSIGN_OR_RETURN(health, v.GetInt64("health"));
  r.health = static_cast<int>(health);
  DIGEST_ASSIGN_OR_RETURN(r.total_samples, v.GetUInt64("total_samples"));
  DIGEST_ASSIGN_OR_RETURN(r.fresh_samples, v.GetUInt64("fresh_samples"));
  DIGEST_ASSIGN_OR_RETURN(r.retained_samples,
                          v.GetUInt64("retained_samples"));
  DIGEST_ASSIGN_OR_RETURN(r.message_cost, v.GetUInt64("message_cost"));
  return r;
}

void AppendDetectorJson(std::string* out, const DriftDetector& d) {
  *out += "{\"ewma\":";
  AppendDouble(out, d.ewma);
  *out += ",\"initialized\":";
  AppendBool(out, d.initialized);
  *out += ",\"cusum_pos\":";
  AppendDouble(out, d.cusum_pos);
  *out += ",\"cusum_neg\":";
  AppendDouble(out, d.cusum_neg);
  *out += ",\"breaches\":";
  AppendU64(out, d.breaches);
  *out += ",\"streak\":";
  AppendU64(out, d.streak);
  *out += '}';
}

Result<DriftDetector> ParseDetectorJson(const json::Value& v) {
  DriftDetector d;
  DIGEST_ASSIGN_OR_RETURN(d.ewma, v.GetDouble("ewma"));
  DIGEST_ASSIGN_OR_RETURN(d.initialized, v.GetBool("initialized"));
  DIGEST_ASSIGN_OR_RETURN(d.cusum_pos, v.GetDouble("cusum_pos"));
  DIGEST_ASSIGN_OR_RETURN(d.cusum_neg, v.GetDouble("cusum_neg"));
  DIGEST_ASSIGN_OR_RETURN(d.breaches, v.GetUInt64("breaches"));
  DIGEST_ASSIGN_OR_RETURN(d.streak, v.GetUInt64("streak"));
  return d;
}

}  // namespace

const char* MissCauseName(MissCause cause) {
  switch (cause) {
    case MissCause::kNone:
      return "none";
    case MissCause::kVarianceUndershoot:
      return "variance_undershoot";
    case MissCause::kPredResidual:
      return "pred_residual";
    case MissCause::kPartialSnapshot:
      return "partial_snapshot";
    case MissCause::kRetainedPoolFallback:
      return "retained_pool";
    case MissCause::kHedgeTimeout:
      return "hedge_timeout";
    case MissCause::kPoorMixing:
      return "poor_mixing";
    case MissCause::kPeerQuarantine:
      return "peer_quarantine";
  }
  return "unknown";
}

Status AuditOptions::Validate() const {
  if (!(ewma_alpha > 0.0) || ewma_alpha > 1.0) {
    return Status::InvalidArgument("audit: ewma_alpha must be in (0, 1]");
  }
  if (!(cusum_slack >= 0.0)) {
    return Status::InvalidArgument("audit: cusum_slack must be >= 0");
  }
  if (!(cusum_threshold > 0.0)) {
    return Status::InvalidArgument("audit: cusum_threshold must be > 0");
  }
  if (breach_patience < 1) {
    return Status::InvalidArgument("audit: breach_patience must be >= 1");
  }
  return Status::OK();
}

PrecisionAuditor::PrecisionAuditor(AuditOptions options)
    : options_(options),
      abs_error_hist_(AbsErrorBounds()),
      cost_hist_(CostBounds()) {}

void PrecisionAuditor::AttachContract(double delta, double epsilon,
                                      double confidence) {
  delta_ = delta;
  epsilon_ = epsilon;
  confidence_ = confidence;
}

void PrecisionAuditor::BeginRun(const std::string& label) {
  run_label_ = label;
  records_.clear();
  pending_snapshot_ = false;
  pending_record_ = CoverageRecord();
  pending_skip_ = false;
  skip_tick_ = 0;
  skip_reported_ = 0.0;
  skip_ci_ = 0.0;
  hits_ = 0;
  misses_ = 0;
  delta_ticks_ = 0;
  delta_misses_ = 0;
  unmatched_truths_ = 0;
  std::memset(cause_counts_, 0, sizeof(cause_counts_));
  error_detector_ = DriftDetector();
  cost_detector_ = DriftDetector();
  supervisor_flips_ = 0;
  pending_flips_ = 0;
  abs_error_hist_ = obs::Histogram(AbsErrorBounds());
  cost_hist_ = obs::Histogram(CostBounds());
}

void PrecisionAuditor::FlushPending() {
  if (pending_snapshot_) {
    // No oracle resolved this occasion: it joins the ledger (and the
    // cost stream) but stays out of the coverage denominator.
    records_.push_back(pending_record_);
    cost_hist_.Observe(static_cast<double>(pending_record_.message_cost));
    pending_snapshot_ = false;
  }
  pending_skip_ = false;  // An unresolved skip carries no information.
}

void PrecisionAuditor::RecordSnapshot(const SnapshotObservation& o) {
  FlushPending();
  pending_record_ = CoverageRecord();
  pending_record_.tick = o.tick;
  pending_record_.estimate = o.estimate;
  pending_record_.ci_halfwidth = o.ci_halfwidth;
  pending_record_.degraded = o.degraded;
  pending_record_.partial = o.partial;
  pending_record_.health = o.health;
  pending_record_.total_samples = o.total_samples;
  pending_record_.fresh_samples = o.fresh_samples;
  pending_record_.retained_samples = o.retained_samples;
  pending_record_.message_cost = o.message_cost;
  pending_record_.mixing_breach = o.mixing_breach;
  pending_record_.quarantine = o.quarantine;
  pending_snapshot_ = true;
}

void PrecisionAuditor::RecordTimeout(int64_t tick, double held_value,
                                     double ci_halfwidth,
                                     uint64_t message_cost, int health) {
  FlushPending();
  pending_record_ = CoverageRecord();
  pending_record_.tick = tick;
  pending_record_.estimate = held_value;
  pending_record_.ci_halfwidth = ci_halfwidth;
  pending_record_.degraded = true;
  pending_record_.timeout = true;
  pending_record_.health = health;
  pending_record_.message_cost = message_cost;
  pending_snapshot_ = true;
}

void PrecisionAuditor::RecordSkip(int64_t tick, double reported,
                                  double ci_halfwidth) {
  FlushPending();
  pending_skip_ = true;
  skip_tick_ = tick;
  skip_reported_ = reported;
  skip_ci_ = ci_halfwidth;
}

bool PrecisionAuditor::TakePendingBreachFlip() {
  if (pending_flips_ == 0) return false;
  --pending_flips_;
  return true;
}

void PrecisionAuditor::RecordTruth(int64_t tick, double truth) {
  if (pending_snapshot_ && pending_record_.tick == tick) {
    ResolveSnapshot(truth);
  } else if (pending_skip_ && skip_tick_ == tick) {
    ResolveSkip(truth);
  } else {
    ++unmatched_truths_;
  }
}

void PrecisionAuditor::ResolveSnapshot(double truth) {
  CoverageRecord r = pending_record_;
  pending_snapshot_ = false;
  r.truth = truth;
  r.has_truth = true;
  const double error = r.estimate - truth;
  r.hit = std::fabs(error) <= r.ci_halfwidth;
  if (r.hit) {
    r.cause = MissCause::kNone;
    ++hits_;
  } else {
    // Structural attribution, worst subsystem state first: the flags
    // were stamped by the engine/estimator when the occasion ran.
    r.cause = r.timeout         ? MissCause::kHedgeTimeout
              : r.degraded      ? MissCause::kRetainedPoolFallback
              : r.partial       ? MissCause::kPartialSnapshot
              : r.quarantine    ? MissCause::kPeerQuarantine
              : r.mixing_breach ? MissCause::kPoorMixing
                                : MissCause::kVarianceUndershoot;
    ++misses_;
    ++cause_counts_[static_cast<size_t>(r.cause)];
  }
  records_.push_back(r);
  abs_error_hist_.Observe(std::fabs(error) / epsilon_);
  cost_hist_.Observe(static_cast<double>(r.message_cost));

  const uint64_t occasions = hits_ + misses_;
  if (obs::Tracing(tracer_)) {
    tracer_->Emit(obs::AuditCoverageEvent{r.estimate, truth, r.ci_halfwidth,
                                          r.hit, MissCauseName(r.cause),
                                          occasions, misses_});
    if (!r.hit) {
      const double miss_rate = static_cast<double>(misses_) /
                               static_cast<double>(occasions);
      const double burn = miss_rate / (1.0 - confidence_);
      tracer_->Emit(obs::AuditBudgetEvent{burn, std::max(0.0, 1.0 - burn),
                                          occasions, misses_});
    }
  }

  // Drift detectors, both standardized so thresholds are
  // workload-independent: error in ε units, cost as relative excess
  // over its own EWMA baseline.
  const double s = error / epsilon_;
  const double a = options_.ewma_alpha;
  const double error_ewma_next =
      error_detector_.initialized ? (1.0 - a) * error_detector_.ewma + a * s
                                  : s;
  UpdateDetector(&error_detector_, "signed_error", s, error_ewma_next);

  const double cost = static_cast<double>(r.message_cost);
  double relative_excess = 0.0;
  double cost_ewma_next = cost;
  if (cost_detector_.initialized) {
    relative_excess = cost / std::max(cost_detector_.ewma, 1e-12) - 1.0;
    cost_ewma_next = (1.0 - a) * cost_detector_.ewma + a * cost;
  }
  UpdateDetector(&cost_detector_, "message_cost", relative_excess,
                 cost_ewma_next);
}

void PrecisionAuditor::ResolveSkip(double truth) {
  pending_skip_ = false;
  ++delta_ticks_;
  // The per-tick widened contract (EvaluatePrecisionWidened): the
  // extrapolated/held answer must sit within max(ε, ci) + δ of truth.
  const double bound = std::max(epsilon_, skip_ci_) + delta_;
  if (std::fabs(skip_reported_ - truth) > bound) {
    ++delta_misses_;
    ++cause_counts_[static_cast<size_t>(MissCause::kPredResidual)];
  }
}

bool PrecisionAuditor::UpdateDetector(DriftDetector* detector,
                                      const char* name, double value,
                                      double ewma_next) {
  detector->ewma = ewma_next;
  detector->initialized = true;
  const double k = options_.cusum_slack;
  detector->cusum_pos = std::max(0.0, detector->cusum_pos + value - k);
  detector->cusum_neg = std::max(0.0, detector->cusum_neg - value - k);
  const bool breached =
      std::max(detector->cusum_pos, detector->cusum_neg) >
      options_.cusum_threshold;
  if (!breached) {
    detector->streak = 0;
    return false;
  }
  ++detector->breaches;
  ++detector->streak;
  const bool flip = detector->streak >= options_.breach_patience;
  if (obs::Tracing(tracer_)) {
    tracer_->Emit(obs::AuditDriftEvent{
        name, detector->ewma, detector->cusum_pos, detector->cusum_neg,
        options_.cusum_threshold, detector->streak, flip});
  }
  if (flip) {
    // Sustained breach: request one supervisor degradation (the engine
    // drains the flip at its next tick) and re-arm the detector.
    ++supervisor_flips_;
    ++pending_flips_;
    detector->cusum_pos = 0.0;
    detector->cusum_neg = 0.0;
    detector->streak = 0;
  }
  return true;
}

void PrecisionAuditor::FinalizeRun() {
  FlushPending();
  Summary s = Summarize();
  if (obs::Tracing(tracer_)) {
    tracer_->Emit(obs::AuditSloEvent{
        s.label, s.p, s.epsilon, s.delta, s.occasions, s.hits, s.misses,
        s.coverage, s.coverage_floor, s.coverage_ok, s.delta_ticks,
        s.delta_misses, s.delta_compliance, s.budget_burn,
        s.budget_remaining});
  }
  completed_runs_.push_back(std::move(s));
}

PrecisionAuditor::Summary PrecisionAuditor::Summarize() const {
  Summary s;
  s.label = run_label_;
  s.p = confidence_;
  s.epsilon = epsilon_;
  s.delta = delta_;
  s.occasions = hits_ + misses_;
  s.hits = hits_;
  s.misses = misses_;
  if (s.occasions > 0) {
    const double n = static_cast<double>(s.occasions);
    s.coverage = static_cast<double>(hits_) / n;
    s.coverage_floor =
        confidence_ -
        2.0 * std::sqrt(confidence_ * (1.0 - confidence_) / n);
    s.coverage_ok = s.coverage >= s.coverage_floor;
    const double miss_rate = static_cast<double>(misses_) / n;
    s.budget_burn = miss_rate / (1.0 - confidence_);
    s.budget_remaining = std::max(0.0, 1.0 - s.budget_burn);
  }
  s.delta_ticks = delta_ticks_;
  s.delta_misses = delta_misses_;
  if (delta_ticks_ > 0) {
    s.delta_compliance =
        static_cast<double>(delta_ticks_ - delta_misses_) /
        static_cast<double>(delta_ticks_);
  }
  s.ledger_records = records_.size();
  std::memcpy(s.cause_counts, cause_counts_, sizeof(cause_counts_));
  s.error_breaches = error_detector_.breaches;
  s.cost_breaches = cost_detector_.breaches;
  s.supervisor_flips = supervisor_flips_;
  s.p50_abs_error_eps = abs_error_hist_.Quantile(0.5);
  s.p90_abs_error_eps = abs_error_hist_.Quantile(0.9);
  s.p90_snapshot_cost = cost_hist_.Quantile(0.9);
  return s;
}

std::string PrecisionAuditor::SummaryJson() const {
  const Summary s = Summarize();
  std::string out = "{\"label\":\"";
  AppendJsonEscaped(&out, s.label);
  out += "\",\"p\":";
  AppendDouble(&out, s.p);
  out += ",\"epsilon\":";
  AppendDouble(&out, s.epsilon);
  out += ",\"delta\":";
  AppendDouble(&out, s.delta);
  out += ",\"occasions\":";
  out += std::to_string(s.occasions);
  out += ",\"hits\":";
  out += std::to_string(s.hits);
  out += ",\"misses\":";
  out += std::to_string(s.misses);
  out += ",\"coverage\":";
  AppendDouble(&out, s.coverage);
  out += ",\"coverage_floor\":";
  AppendDouble(&out, s.coverage_floor);
  out += ",\"coverage_ok\":";
  AppendBool(&out, s.coverage_ok);
  out += ",\"delta_ticks\":";
  out += std::to_string(s.delta_ticks);
  out += ",\"delta_misses\":";
  out += std::to_string(s.delta_misses);
  out += ",\"delta_compliance\":";
  AppendDouble(&out, s.delta_compliance);
  out += ",\"budget_burn\":";
  AppendDouble(&out, s.budget_burn);
  out += ",\"budget_remaining\":";
  AppendDouble(&out, s.budget_remaining);
  out += ",\"ledger_records\":";
  out += std::to_string(s.ledger_records);
  out += ",\"attribution\":{";
  bool first = true;
  for (size_t i = 1; i < kNumMissCauses; ++i) {  // Skip "none".
    if (!first) out += ',';
    first = false;
    out += '"';
    out += MissCauseName(static_cast<MissCause>(i));
    out += "\":";
    out += std::to_string(s.cause_counts[i]);
  }
  out += "},\"drift_breaches\":{\"signed_error\":";
  out += std::to_string(s.error_breaches);
  out += ",\"message_cost\":";
  out += std::to_string(s.cost_breaches);
  out += "},\"supervisor_flips\":";
  out += std::to_string(s.supervisor_flips);
  out += ",\"p50_abs_error_eps\":";
  AppendDouble(&out, s.p50_abs_error_eps);
  out += ",\"p90_abs_error_eps\":";
  AppendDouble(&out, s.p90_abs_error_eps);
  out += ",\"p90_snapshot_cost\":";
  AppendDouble(&out, s.p90_snapshot_cost);
  out += '}';
  return out;
}

void PrecisionAuditor::ExportToRegistry(obs::Registry* registry) const {
  if (registry == nullptr) return;
  const obs::LabelSet run_labels =
      run_label_.empty() ? obs::LabelSet{}
                         : obs::LabelSet{{"run", run_label_}};
  auto labelled = [&](const char* key, const char* value) {
    obs::LabelSet labels = run_labels;
    labels.emplace_back(key, value);
    return labels;
  };
  const std::pair<const char*, uint64_t> counters[] = {
      {"audit.occasions", hits_ + misses_},
      {"audit.hits", hits_},
      {"audit.misses", misses_},
      {"audit.delta_ticks", delta_ticks_},
      {"audit.delta_misses", delta_misses_},
      {"audit.unmatched_truths", unmatched_truths_},
      {"audit.supervisor_flips", supervisor_flips_},
  };
  for (const auto& [name, value] : counters) {
    if (value == 0) continue;
    registry->GetCounter(name, run_labels)->Increment(value);
  }
  for (size_t i = 1; i < kNumMissCauses; ++i) {
    const uint64_t count = cause_counts_[i];
    if (count == 0) continue;
    registry
        ->GetCounter("audit.miss_cause",
                     labelled("cause",
                              MissCauseName(static_cast<MissCause>(i))))
        ->Increment(count);
  }
  if (error_detector_.breaches > 0) {
    registry
        ->GetCounter("audit.drift_breaches",
                     labelled("detector", "signed_error"))
        ->Increment(error_detector_.breaches);
  }
  if (cost_detector_.breaches > 0) {
    registry
        ->GetCounter("audit.drift_breaches",
                     labelled("detector", "message_cost"))
        ->Increment(cost_detector_.breaches);
  }
  const Summary s = Summarize();
  registry->GetGauge("audit.coverage", run_labels)->Set(s.coverage);
  registry->GetGauge("audit.coverage_floor", run_labels)
      ->Set(s.coverage_floor);
  registry->GetGauge("audit.delta_compliance", run_labels)
      ->Set(s.delta_compliance);
  registry->GetGauge("audit.budget_burn", run_labels)->Set(s.budget_burn);
  registry->GetGauge("audit.budget_remaining", run_labels)
      ->Set(s.budget_remaining);
  obs::Histogram* abs_error =
      registry->GetHistogram("audit.abs_error_eps", AbsErrorBounds(),
                             run_labels);
  obs::Histogram* cost =
      registry->GetHistogram("audit.snapshot_cost", CostBounds(),
                             run_labels);
  for (const CoverageRecord& r : records_) {
    if (r.has_truth) {
      abs_error->Observe(std::fabs(r.estimate - r.truth) / epsilon_);
    }
    cost->Observe(static_cast<double>(r.message_cost));
  }
}

PrecisionAuditor::State PrecisionAuditor::SaveState() const {
  State s;
  s.run_label = run_label_;
  s.records = records_;
  s.pending_snapshot = pending_snapshot_;
  s.pending_record = pending_record_;
  s.pending_skip = pending_skip_;
  s.skip_tick = skip_tick_;
  s.skip_reported = skip_reported_;
  s.skip_ci = skip_ci_;
  s.hits = hits_;
  s.misses = misses_;
  s.delta_ticks = delta_ticks_;
  s.delta_misses = delta_misses_;
  s.unmatched_truths = unmatched_truths_;
  std::memcpy(s.cause_counts, cause_counts_, sizeof(cause_counts_));
  s.error_detector = error_detector_;
  s.cost_detector = cost_detector_;
  s.supervisor_flips = supervisor_flips_;
  s.pending_flips = pending_flips_;
  return s;
}

void PrecisionAuditor::RestoreState(const State& state) {
  run_label_ = state.run_label;
  records_ = state.records;
  pending_snapshot_ = state.pending_snapshot;
  pending_record_ = state.pending_record;
  pending_skip_ = state.pending_skip;
  skip_tick_ = state.skip_tick;
  skip_reported_ = state.skip_reported;
  skip_ci_ = state.skip_ci;
  hits_ = state.hits;
  misses_ = state.misses;
  delta_ticks_ = state.delta_ticks;
  delta_misses_ = state.delta_misses;
  unmatched_truths_ = state.unmatched_truths;
  std::memcpy(cause_counts_, state.cause_counts, sizeof(cause_counts_));
  error_detector_ = state.error_detector;
  cost_detector_ = state.cost_detector;
  supervisor_flips_ = state.supervisor_flips;
  pending_flips_ = state.pending_flips;
  RebuildHistograms();
}

void PrecisionAuditor::RebuildHistograms() {
  abs_error_hist_ = obs::Histogram(AbsErrorBounds());
  cost_hist_ = obs::Histogram(CostBounds());
  for (const CoverageRecord& r : records_) {
    if (r.has_truth) {
      abs_error_hist_.Observe(std::fabs(r.estimate - r.truth) / epsilon_);
    }
    cost_hist_.Observe(static_cast<double>(r.message_cost));
  }
}

void PrecisionAuditor::AppendStateJson(const State& s, std::string* out) {
  *out += "{\"run_label\":\"";
  AppendJsonEscaped(out, s.run_label);
  *out += "\",\"hits\":";
  AppendU64(out, s.hits);
  *out += ",\"misses\":";
  AppendU64(out, s.misses);
  *out += ",\"delta_ticks\":";
  AppendU64(out, s.delta_ticks);
  *out += ",\"delta_misses\":";
  AppendU64(out, s.delta_misses);
  *out += ",\"unmatched_truths\":";
  AppendU64(out, s.unmatched_truths);
  *out += ",\"cause_counts\":[";
  for (size_t i = 0; i < kNumMissCauses; ++i) {
    if (i > 0) *out += ',';
    AppendU64(out, s.cause_counts[i]);
  }
  *out += "],\"error_detector\":";
  AppendDetectorJson(out, s.error_detector);
  *out += ",\"cost_detector\":";
  AppendDetectorJson(out, s.cost_detector);
  *out += ",\"supervisor_flips\":";
  AppendU64(out, s.supervisor_flips);
  *out += ",\"pending_flips\":";
  AppendU64(out, s.pending_flips);
  *out += ",\"pending_snapshot\":";
  AppendBool(out, s.pending_snapshot);
  if (s.pending_snapshot) {
    *out += ",\"pending_record\":";
    AppendRecordJson(out, s.pending_record);
  }
  *out += ",\"pending_skip\":";
  AppendBool(out, s.pending_skip);
  if (s.pending_skip) {
    *out += ",\"skip_tick\":";
    *out += std::to_string(s.skip_tick);
    *out += ",\"skip_reported\":";
    AppendDouble(out, s.skip_reported);
    *out += ",\"skip_ci\":";
    AppendDouble(out, s.skip_ci);
  }
  *out += ",\"records\":[";
  for (size_t i = 0; i < s.records.size(); ++i) {
    if (i > 0) *out += ',';
    AppendRecordJson(out, s.records[i]);
  }
  *out += "]}";
}

Result<PrecisionAuditor::State> PrecisionAuditor::ParseStateJson(
    const json::Value& v) {
  State s;
  DIGEST_ASSIGN_OR_RETURN(s.run_label, v.GetString("run_label"));
  DIGEST_ASSIGN_OR_RETURN(s.hits, v.GetUInt64("hits"));
  DIGEST_ASSIGN_OR_RETURN(s.misses, v.GetUInt64("misses"));
  DIGEST_ASSIGN_OR_RETURN(s.delta_ticks, v.GetUInt64("delta_ticks"));
  DIGEST_ASSIGN_OR_RETURN(s.delta_misses, v.GetUInt64("delta_misses"));
  DIGEST_ASSIGN_OR_RETURN(s.unmatched_truths,
                          v.GetUInt64("unmatched_truths"));
  DIGEST_ASSIGN_OR_RETURN(const json::Value* causes,
                          v.GetArray("cause_counts"));
  if (causes->array().size() != kNumMissCauses) {
    return Status::InvalidArgument(
        "audit: cause_counts length mismatch (blob from a different "
        "build?)");
  }
  for (size_t i = 0; i < kNumMissCauses; ++i) {
    DIGEST_ASSIGN_OR_RETURN(s.cause_counts[i],
                            causes->array()[i].AsUInt64());
  }
  DIGEST_ASSIGN_OR_RETURN(const json::Value* err,
                          v.GetObject("error_detector"));
  DIGEST_ASSIGN_OR_RETURN(s.error_detector, ParseDetectorJson(*err));
  DIGEST_ASSIGN_OR_RETURN(const json::Value* cost,
                          v.GetObject("cost_detector"));
  DIGEST_ASSIGN_OR_RETURN(s.cost_detector, ParseDetectorJson(*cost));
  DIGEST_ASSIGN_OR_RETURN(s.supervisor_flips,
                          v.GetUInt64("supervisor_flips"));
  DIGEST_ASSIGN_OR_RETURN(s.pending_flips, v.GetUInt64("pending_flips"));
  DIGEST_ASSIGN_OR_RETURN(s.pending_snapshot,
                          v.GetBool("pending_snapshot"));
  if (s.pending_snapshot) {
    DIGEST_ASSIGN_OR_RETURN(const json::Value* rec,
                            v.GetObject("pending_record"));
    DIGEST_ASSIGN_OR_RETURN(s.pending_record, ParseRecordJson(*rec));
  }
  DIGEST_ASSIGN_OR_RETURN(s.pending_skip, v.GetBool("pending_skip"));
  if (s.pending_skip) {
    DIGEST_ASSIGN_OR_RETURN(s.skip_tick, v.GetInt64("skip_tick"));
    DIGEST_ASSIGN_OR_RETURN(s.skip_reported, v.GetDouble("skip_reported"));
    DIGEST_ASSIGN_OR_RETURN(s.skip_ci, v.GetDouble("skip_ci"));
  }
  DIGEST_ASSIGN_OR_RETURN(const json::Value* records,
                          v.GetArray("records"));
  s.records.reserve(records->array().size());
  for (const json::Value& r : records->array()) {
    DIGEST_ASSIGN_OR_RETURN(CoverageRecord rec, ParseRecordJson(r));
    s.records.push_back(rec);
  }
  return s;
}

std::string RenderSloTable(
    const std::vector<PrecisionAuditor::Summary>& runs) {
  std::string out = "== audit SLO ==\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  %-24s %6s %9s %9s %4s %8s %7s %6s\n", "run", "occ",
                "coverage", "floor", "ok", "delta", "burn", "flips");
  out += buf;
  for (const PrecisionAuditor::Summary& s : runs) {
    std::snprintf(
        buf, sizeof(buf),
        "  %-24s %6llu %9.4f %9.4f %4s %8.4f %7.3f %6llu\n",
        s.label.empty() ? "(unlabelled)" : s.label.c_str(),
        static_cast<unsigned long long>(s.occasions), s.coverage,
        s.coverage_floor, s.coverage_ok ? "yes" : "NO",
        s.delta_compliance, s.budget_burn,
        static_cast<unsigned long long>(s.supervisor_flips));
    out += buf;
  }
  if (runs.empty()) out += "  (no completed runs)\n";
  return out;
}

}  // namespace audit
}  // namespace digest
