#ifndef DIGEST_PROF_PROFILER_H_
#define DIGEST_PROF_PROFILER_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace digest {
namespace prof {

// Wall-clock profiling of the simulator's hot paths.
//
// This subsystem is deliberately separate from src/obs/: the obs layer
// records *simulated* time and is bit-reproducible across runs, while
// the profiler reads the host's steady clock and answers a different
// question — where does real CPU time go? The two never mix: profiler
// data is exported on a dedicated "wall" track / `prof` section, and
// the deterministic trace and metrics files are byte-identical with or
// without a profiler attached.
//
// Null fast path (same contract as obs::Tracer): components hold a
// `Profiler*` that may be null, and a ScopedTimer constructed with a
// null profiler performs no clock read at all. A run with profiling
// disabled is bit-identical to an uninstrumented build — test-enforced
// by tests/prof_test.cc.

/// The instrumented hot paths. Order is the export order; names are
/// stable API (PhaseName) pinned by tools/check_trace.py.
enum class Phase : int {
  kEngineTick = 0,       ///< DigestEngine::Tick, whole body.
  kExtrapolatorFit,      ///< PRED history fit (AddObservation).
  kExtrapolatorPredict,  ///< PRED gap prediction (Eq. 4 search).
  kEstimatorEvaluate,    ///< Snapshot estimation (INDEP/RPT regression).
  kWalkBatch,            ///< SamplingOperator::SampleNodes, whole batch.
  kWalkAdvance,          ///< One agent's stepping to convergence.
  kFaultDraw,            ///< FaultPlan randomness draws.
  kPhaseCount,           ///< Sentinel; not a phase.
};

inline constexpr size_t kNumPhases = static_cast<size_t>(Phase::kPhaseCount);

/// Stable lower-snake-case name of a phase (`engine_tick`, ...).
const char* PhaseName(Phase phase);

/// Accumulated wall-clock cost of one phase. `items` counts
/// phase-specific units of work (walk hops, samples drawn, ...) so
/// exporters can derive throughput (items / total_ns).
struct PhaseStats {
  uint64_t calls = 0;
  uint64_t total_ns = 0;
  uint64_t min_ns = 0;  ///< 0 until the first call.
  uint64_t max_ns = 0;
  uint64_t items = 0;
};

/// One captured span, for the Chrome-trace "wall" track. Timestamps are
/// nanoseconds since the profiler's construction (its epoch).
struct WallSpan {
  Phase phase = Phase::kEngineTick;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t items = 0;
};

struct ProfilerOptions {
  /// Capture individual spans (for the Chrome wall track) in addition
  /// to the aggregate per-phase counters. Only coarse phases are
  /// captured (see PhaseCapturesSpans); high-frequency phases
  /// (walk stepping, fault draws) aggregate into counters only.
  bool capture_spans = true;

  /// Hard cap on captured spans; further spans still aggregate into the
  /// phase counters but are dropped from the span log (counted by
  /// spans_dropped). Bounds memory on long runs.
  size_t max_spans = 65536;
};

/// True for phases coarse enough to record as individual wall spans.
bool PhaseCapturesSpans(Phase phase);

class Profiler;

/// A per-worker wall-clock accumulator for parallel regions. The main
/// Profiler is single-threaded by contract; during a parallel walk
/// batch each pool worker instead records into its own Track (written
/// by that worker only — no synchronization), and the main thread folds
/// every track back into the Profiler after the pool barrier
/// (Profiler::FoldTrack). Tracks aggregate per-phase counters only, no
/// span capture: the phases workers run (walk stepping, fault draws)
/// are the high-frequency ones that never capture spans anyway.
///
/// Null fast path: a Track constructed without a clock (the profiler)
/// is inert — no clock reads, recording no-ops — mirroring the
/// null-Profiler contract so unprofiled parallel runs stay free of
/// timing syscalls.
class Track {
 public:
  /// `clock` supplies the shared epoch (ElapsedNs is thread-safe: the
  /// epoch is immutable after construction). Null disables the track.
  explicit Track(const Profiler* clock = nullptr) : clock_(clock) {}

  bool active() const { return clock_ != nullptr; }
  uint64_t NowNs() const;

  /// Folds one completed interval into `phase` (aggregate only).
  void Record(Phase phase, uint64_t start_ns, uint64_t end_ns,
              uint64_t items) {
    const uint64_t dur = end_ns >= start_ns ? end_ns - start_ns : 0;
    PhaseStats& s = stats_[static_cast<size_t>(phase)];
    if (s.calls == 0 || dur < s.min_ns) s.min_ns = dur;
    if (dur > s.max_ns) s.max_ns = dur;
    ++s.calls;
    s.total_ns += dur;
    s.items += items;
  }

  const PhaseStats& stats(Phase phase) const {
    return stats_[static_cast<size_t>(phase)];
  }

 private:
  friend class Profiler;
  const Profiler* clock_;
  PhaseStats stats_[kNumPhases] = {};
};

/// Wall-clock profile accumulator. Not thread-safe (the simulator's
/// main loop is single-threaded; parallel walk workers record into
/// per-worker Tracks that are folded back on the main thread); one
/// instance per run or per bench scenario.
class Profiler {
 public:
  explicit Profiler(ProfilerOptions options = {});

  /// Nanoseconds elapsed on the steady clock since construction.
  uint64_t ElapsedNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Folds one completed interval into `phase` (normally called by
  /// ~ScopedTimer). Captures a WallSpan for span-capturing phases.
  void Record(Phase phase, uint64_t start_ns, uint64_t end_ns,
              uint64_t items);

  /// Adds work units to a phase without timing (e.g. samples drawn
  /// counted outside any timer).
  void AddItems(Phase phase, uint64_t items) {
    stats_[static_cast<size_t>(phase)].items += items;
  }

  const PhaseStats& stats(Phase phase) const {
    return stats_[static_cast<size_t>(phase)];
  }
  const std::vector<WallSpan>& spans() const { return spans_; }
  uint64_t spans_dropped() const { return spans_dropped_; }
  const ProfilerOptions& options() const { return options_; }

  /// Folds a parallel worker's Track into this profiler (main thread,
  /// after the pool barrier): the track's counters merge element-wise
  /// into the aggregate phase stats — so calls/items stay exactly what
  /// a serial run records, with wall time attributed to whichever
  /// worker actually spent it — and also accumulate into a per-worker
  /// breakdown exported as the `tracks` JSON section. `worker` indexes
  /// the breakdown (0 = the calling thread).
  void FoldTrack(size_t worker, const Track& track);

  /// Per-worker cumulative phase stats (empty until a FoldTrack).
  const std::vector<std::array<PhaseStats, kNumPhases>>& tracks() const {
    return tracks_;
  }

  /// Clears all counters, spans, and worker tracks; the epoch is NOT
  /// reset (spans from before and after a Reset stay on one time axis).
  void Reset();

  /// The profile as one JSON object:
  /// `{"phases":{"engine_tick":{"calls":N,"total_ns":N,"min_ns":N,
  /// "max_ns":N,"items":N},...},"spans_captured":N,"spans_dropped":N}`.
  /// Phases with zero calls and zero items are omitted. Key order is
  /// the Phase enum order (stable across runs). When worker tracks were
  /// folded (parallel runs), a `"tracks":[{"worker":N,"phases":{...}},
  /// ...]` array follows — omitted entirely otherwise, keeping serial
  /// output byte-identical to the pre-parallel layout.
  std::string ToJson() const;

 private:
  ProfilerOptions options_;
  std::chrono::steady_clock::time_point epoch_;
  PhaseStats stats_[kNumPhases];
  std::vector<WallSpan> spans_;
  uint64_t spans_dropped_ = 0;
  std::vector<std::array<PhaseStats, kNumPhases>> tracks_;
};

inline uint64_t Track::NowNs() const { return clock_->ElapsedNs(); }

/// RAII interval timer. With a null profiler the constructor and
/// destructor do nothing — no clock read, no branch beyond the null
/// check — so instrumented code pays nothing when profiling is off.
class ScopedTimer {
 public:
  ScopedTimer(Profiler* profiler, Phase phase)
      : profiler_(profiler), phase_(phase) {
    if (profiler_ != nullptr) start_ns_ = profiler_->ElapsedNs();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Attributes `n` work units to the timed interval (recorded at
  /// destruction). No-op when profiling is off.
  void AddItems(uint64_t n) {
    if (profiler_ != nullptr) items_ += n;
  }

  ~ScopedTimer() {
    if (profiler_ != nullptr) {
      profiler_->Record(phase_, start_ns_, profiler_->ElapsedNs(), items_);
    }
  }

 private:
  Profiler* profiler_;
  Phase phase_;
  uint64_t start_ns_ = 0;
  uint64_t items_ = 0;
};

/// RAII interval timer against a per-worker Track — the worker-side
/// mirror of ScopedTimer. Inert (no clock reads) when the track is null
/// or inactive.
class ScopedTrackTimer {
 public:
  ScopedTrackTimer(Track* track, Phase phase) : phase_(phase) {
    if (track != nullptr && track->active()) {
      track_ = track;
      start_ns_ = track->NowNs();
    }
  }
  ScopedTrackTimer(const ScopedTrackTimer&) = delete;
  ScopedTrackTimer& operator=(const ScopedTrackTimer&) = delete;

  /// Attributes `n` work units to the timed interval.
  void AddItems(uint64_t n) {
    if (track_ != nullptr) items_ += n;
  }

  ~ScopedTrackTimer() {
    if (track_ != nullptr) {
      track_->Record(phase_, start_ns_, track_->NowNs(), items_);
    }
  }

 private:
  Track* track_ = nullptr;
  Phase phase_;
  uint64_t start_ns_ = 0;
  uint64_t items_ = 0;
};

/// Human-readable profile summary: an aligned table of phases with
/// calls, total/mean wall time, and throughput where items are counted.
std::string RenderProfSummary(const Profiler& profiler);

}  // namespace prof
}  // namespace digest

#endif  // DIGEST_PROF_PROFILER_H_
