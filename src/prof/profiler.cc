#include "prof/profiler.h"

#include <algorithm>
#include <cstdio>

namespace digest {
namespace prof {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kEngineTick:
      return "engine_tick";
    case Phase::kExtrapolatorFit:
      return "extrapolator_fit";
    case Phase::kExtrapolatorPredict:
      return "extrapolator_predict";
    case Phase::kEstimatorEvaluate:
      return "estimator_evaluate";
    case Phase::kWalkBatch:
      return "walk_batch";
    case Phase::kWalkAdvance:
      return "walk_advance";
    case Phase::kFaultDraw:
      return "fault_draw";
    case Phase::kPhaseCount:
      break;
  }
  return "unknown";
}

bool PhaseCapturesSpans(Phase phase) {
  switch (phase) {
    case Phase::kEngineTick:
    case Phase::kEstimatorEvaluate:
    case Phase::kWalkBatch:
      return true;
    default:
      return false;
  }
}

Profiler::Profiler(ProfilerOptions options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {}

void Profiler::Record(Phase phase, uint64_t start_ns, uint64_t end_ns,
                      uint64_t items) {
  const uint64_t dur = end_ns >= start_ns ? end_ns - start_ns : 0;
  PhaseStats& s = stats_[static_cast<size_t>(phase)];
  if (s.calls == 0 || dur < s.min_ns) s.min_ns = dur;
  if (dur > s.max_ns) s.max_ns = dur;
  ++s.calls;
  s.total_ns += dur;
  s.items += items;
  if (options_.capture_spans && PhaseCapturesSpans(phase)) {
    if (spans_.size() < options_.max_spans) {
      spans_.push_back(WallSpan{phase, start_ns, dur, items});
    } else {
      ++spans_dropped_;
    }
  }
}

void Profiler::Reset() {
  for (PhaseStats& s : stats_) s = PhaseStats();
  spans_.clear();
  spans_dropped_ = 0;
}

std::string Profiler::ToJson() const {
  std::string out = "{\"phases\":{";
  bool first = true;
  for (size_t i = 0; i < kNumPhases; ++i) {
    const PhaseStats& s = stats_[i];
    if (s.calls == 0 && s.items == 0) continue;
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out += PhaseName(static_cast<Phase>(i));
    out += "\":{\"calls\":";
    out += std::to_string(s.calls);
    out += ",\"total_ns\":";
    out += std::to_string(s.total_ns);
    out += ",\"min_ns\":";
    out += std::to_string(s.min_ns);
    out += ",\"max_ns\":";
    out += std::to_string(s.max_ns);
    out += ",\"items\":";
    out += std::to_string(s.items);
    out.push_back('}');
  }
  out += "},\"spans_captured\":";
  out += std::to_string(spans_.size());
  out += ",\"spans_dropped\":";
  out += std::to_string(spans_dropped_);
  out.push_back('}');
  return out;
}

std::string RenderProfSummary(const Profiler& profiler) {
  std::string out = "== wall-clock profile ==\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-22s %10s %12s %12s %14s\n", "phase",
                "calls", "total_ms", "mean_us", "items/sec");
  out += buf;
  bool any = false;
  for (size_t i = 0; i < kNumPhases; ++i) {
    const Phase phase = static_cast<Phase>(i);
    const PhaseStats& s = profiler.stats(phase);
    if (s.calls == 0 && s.items == 0) continue;
    any = true;
    const double total_ms = static_cast<double>(s.total_ns) / 1e6;
    const double mean_us =
        s.calls == 0 ? 0.0
                     : static_cast<double>(s.total_ns) /
                           (1e3 * static_cast<double>(s.calls));
    std::string rate = "-";
    if (s.items > 0 && s.total_ns > 0) {
      std::snprintf(buf, sizeof(buf), "%.3g",
                    static_cast<double>(s.items) * 1e9 /
                        static_cast<double>(s.total_ns));
      rate = buf;
    }
    std::snprintf(buf, sizeof(buf), "  %-22s %10llu %12.3f %12.2f %14s\n",
                  PhaseName(phase),
                  static_cast<unsigned long long>(s.calls), total_ms,
                  mean_us, rate.c_str());
    out += buf;
  }
  if (!any) out += "  (no phases recorded)\n";
  if (profiler.spans_dropped() > 0) {
    std::snprintf(buf, sizeof(buf),
                  "  [%llu spans dropped over the %zu-span cap]\n",
                  static_cast<unsigned long long>(profiler.spans_dropped()),
                  profiler.options().max_spans);
    out += buf;
  }
  return out;
}

}  // namespace prof
}  // namespace digest
