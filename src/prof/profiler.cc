#include "prof/profiler.h"

#include <algorithm>
#include <cstdio>

namespace digest {
namespace prof {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kEngineTick:
      return "engine_tick";
    case Phase::kExtrapolatorFit:
      return "extrapolator_fit";
    case Phase::kExtrapolatorPredict:
      return "extrapolator_predict";
    case Phase::kEstimatorEvaluate:
      return "estimator_evaluate";
    case Phase::kWalkBatch:
      return "walk_batch";
    case Phase::kWalkAdvance:
      return "walk_advance";
    case Phase::kFaultDraw:
      return "fault_draw";
    case Phase::kPhaseCount:
      break;
  }
  return "unknown";
}

bool PhaseCapturesSpans(Phase phase) {
  switch (phase) {
    case Phase::kEngineTick:
    case Phase::kEstimatorEvaluate:
    case Phase::kWalkBatch:
      return true;
    default:
      return false;
  }
}

Profiler::Profiler(ProfilerOptions options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {}

void Profiler::Record(Phase phase, uint64_t start_ns, uint64_t end_ns,
                      uint64_t items) {
  const uint64_t dur = end_ns >= start_ns ? end_ns - start_ns : 0;
  PhaseStats& s = stats_[static_cast<size_t>(phase)];
  if (s.calls == 0 || dur < s.min_ns) s.min_ns = dur;
  if (dur > s.max_ns) s.max_ns = dur;
  ++s.calls;
  s.total_ns += dur;
  s.items += items;
  if (options_.capture_spans && PhaseCapturesSpans(phase)) {
    if (spans_.size() < options_.max_spans) {
      spans_.push_back(WallSpan{phase, start_ns, dur, items});
    } else {
      ++spans_dropped_;
    }
  }
}

namespace {

// Folds `from` into `into`, preserving the "min_ns is 0 until the first
// call" convention on both sides.
void MergePhaseStats(PhaseStats& into, const PhaseStats& from) {
  if (from.calls > 0) {
    into.min_ns =
        into.calls == 0 ? from.min_ns : std::min(into.min_ns, from.min_ns);
    into.max_ns = std::max(into.max_ns, from.max_ns);
  }
  into.calls += from.calls;
  into.total_ns += from.total_ns;
  into.items += from.items;
}

// Renders one phases object ({"engine_tick":{...},...}); shared by the
// top-level profile and the per-worker tracks.
void AppendPhasesJson(const PhaseStats* stats, std::string& out) {
  out.push_back('{');
  bool first = true;
  for (size_t i = 0; i < kNumPhases; ++i) {
    const PhaseStats& s = stats[i];
    if (s.calls == 0 && s.items == 0) continue;
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out += PhaseName(static_cast<Phase>(i));
    out += "\":{\"calls\":";
    out += std::to_string(s.calls);
    out += ",\"total_ns\":";
    out += std::to_string(s.total_ns);
    out += ",\"min_ns\":";
    out += std::to_string(s.min_ns);
    out += ",\"max_ns\":";
    out += std::to_string(s.max_ns);
    out += ",\"items\":";
    out += std::to_string(s.items);
    out.push_back('}');
  }
  out.push_back('}');
}

}  // namespace

void Profiler::FoldTrack(size_t worker, const Track& track) {
  if (tracks_.size() <= worker) tracks_.resize(worker + 1);
  for (size_t i = 0; i < kNumPhases; ++i) {
    MergePhaseStats(stats_[i], track.stats_[i]);
    MergePhaseStats(tracks_[worker][i], track.stats_[i]);
  }
}

void Profiler::Reset() {
  for (PhaseStats& s : stats_) s = PhaseStats();
  spans_.clear();
  spans_dropped_ = 0;
  tracks_.clear();
}

std::string Profiler::ToJson() const {
  std::string out = "{\"phases\":";
  AppendPhasesJson(stats_, out);
  out += ",\"spans_captured\":";
  out += std::to_string(spans_.size());
  out += ",\"spans_dropped\":";
  out += std::to_string(spans_dropped_);
  if (!tracks_.empty()) {
    out += ",\"tracks\":[";
    for (size_t w = 0; w < tracks_.size(); ++w) {
      if (w > 0) out.push_back(',');
      out += "{\"worker\":";
      out += std::to_string(w);
      out += ",\"phases\":";
      AppendPhasesJson(tracks_[w].data(), out);
      out.push_back('}');
    }
    out.push_back(']');
  }
  out.push_back('}');
  return out;
}

std::string RenderProfSummary(const Profiler& profiler) {
  std::string out = "== wall-clock profile ==\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-22s %10s %12s %12s %14s\n", "phase",
                "calls", "total_ms", "mean_us", "items/sec");
  out += buf;
  bool any = false;
  for (size_t i = 0; i < kNumPhases; ++i) {
    const Phase phase = static_cast<Phase>(i);
    const PhaseStats& s = profiler.stats(phase);
    if (s.calls == 0 && s.items == 0) continue;
    any = true;
    const double total_ms = static_cast<double>(s.total_ns) / 1e6;
    const double mean_us =
        s.calls == 0 ? 0.0
                     : static_cast<double>(s.total_ns) /
                           (1e3 * static_cast<double>(s.calls));
    std::string rate = "-";
    if (s.items > 0 && s.total_ns > 0) {
      std::snprintf(buf, sizeof(buf), "%.3g",
                    static_cast<double>(s.items) * 1e9 /
                        static_cast<double>(s.total_ns));
      rate = buf;
    }
    std::snprintf(buf, sizeof(buf), "  %-22s %10llu %12.3f %12.2f %14s\n",
                  PhaseName(phase),
                  static_cast<unsigned long long>(s.calls), total_ms,
                  mean_us, rate.c_str());
    out += buf;
  }
  if (!any) out += "  (no phases recorded)\n";
  if (profiler.spans_dropped() > 0) {
    std::snprintf(buf, sizeof(buf),
                  "  [%llu spans dropped over the %zu-span cap]\n",
                  static_cast<unsigned long long>(profiler.spans_dropped()),
                  profiler.options().max_spans);
    out += buf;
  }
  return out;
}

}  // namespace prof
}  // namespace digest
