#include "core/query_scheduler.h"

#include <algorithm>
#include <utility>

namespace digest {

void CoalescingSampleSource::BeginTick() {
  pool_.clear();
  cursors_.clear();
}

size_t CoalescingSampleSource::consumed_samples() const {
  size_t total = 0;
  for (const auto& [id, cursor] : cursors_) {
    (void)id;
    total += cursor;
  }
  return total;
}

Result<PartialTupleBatch> CoalescingSampleSource::Serve(NodeId origin,
                                                        size_t n,
                                                        bool budgeted) {
  size_t& cursor = cursors_[active_];
  // Extend the pool when the active cursor's window overruns it. The
  // shared sampler draws exactly the shortfall, so the pool's final
  // size is the max cumulative demand across consumers — the
  // tightest-ε query sizes the batch, everyone else rides its prefix.
  bool timed_out = false;
  if (cursor + n > pool_.size()) {
    const size_t shortfall = cursor + n - pool_.size();
    if (budgeted) {
      DIGEST_ASSIGN_OR_RETURN(PartialTupleBatch got,
                              sampler_->SampleBatchPartial(origin,
                                                           shortfall));
      timed_out = got.timed_out;
      pool_.insert(pool_.end(),
                   std::make_move_iterator(got.samples.begin()),
                   std::make_move_iterator(got.samples.end()));
    } else {
      DIGEST_ASSIGN_OR_RETURN(std::vector<TupleSample> got,
                              sampler_->SampleBatch(origin, shortfall));
      pool_.insert(pool_.end(), std::make_move_iterator(got.begin()),
                   std::make_move_iterator(got.end()));
    }
  }
  const size_t available = std::min(n, pool_.size() - cursor);
  PartialTupleBatch batch;
  batch.samples.assign(pool_.begin() + cursor,
                       pool_.begin() + cursor + available);
  batch.timed_out = timed_out;
  cursor += available;
  return batch;
}

Result<std::vector<TupleSample>> CoalescingSampleSource::DrawFresh(
    NodeId origin, size_t n) {
  DIGEST_ASSIGN_OR_RETURN(PartialTupleBatch batch,
                          Serve(origin, n, /*budgeted=*/false));
  return std::move(batch.samples);
}

Result<PartialTupleBatch> CoalescingSampleSource::DrawFreshPartial(
    NodeId origin, size_t n) {
  return Serve(origin, n, /*budgeted=*/true);
}

Status QueryScheduler::Register(QueryId id, double epsilon) {
  if (costs_.count(id) != 0) {
    return Status::AlreadyExists("query id already registered");
  }
  QueryCost cost;
  cost.epsilon = epsilon;
  costs_.emplace(id, cost);
  return Status::OK();
}

QueryScheduler::TickPlan QueryScheduler::Plan(
    const std::function<bool(QueryId)>& would_snapshot) const {
  TickPlan plan;
  for (const auto& [id, cost] : costs_) {
    (void)cost;
    if (would_snapshot(id)) {
      plan.due.push_back(id);
    } else {
      plan.idle.push_back(id);
    }
  }
  // Tightest precision first: the first consumer's demand fills the
  // shared pool deepest, so later (looser) queries stay within its
  // prefix and add no walks of their own.
  std::sort(plan.due.begin(), plan.due.end(),
            [this](QueryId a, QueryId b) {
              const double ea = costs_.at(a).epsilon;
              const double eb = costs_.at(b).epsilon;
              if (ea != eb) return ea < eb;
              return a < b;
            });
  // plan.idle is already ascending by id (map iteration order).
  return plan;
}

void QueryScheduler::RecordTick(QueryId id, uint64_t meter_delta,
                                bool snapshot, bool coalesced) {
  auto it = costs_.find(id);
  if (it == costs_.end()) return;
  it->second.ticks += 1;
  it->second.messages += meter_delta;
  if (snapshot) it->second.snapshots += 1;
  if (coalesced) it->second.coalesced += 1;
}

const QueryCost* QueryScheduler::Cost(QueryId id) const {
  auto it = costs_.find(id);
  return it == costs_.end() ? nullptr : &it->second;
}

}  // namespace digest
