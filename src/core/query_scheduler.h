#ifndef DIGEST_CORE_QUERY_SCHEDULER_H_
#define DIGEST_CORE_QUERY_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/result.h"
#include "core/snapshot_estimator.h"
#include "sampling/tuple_sampler.h"

namespace digest {

/// Identifier of a continuous query registered at a DigestNode.
using QueryId = uint64_t;

/// Tick-scoped shared sample pool: the interposition point that turns N
/// same-tick snapshot occasions into one walk batch (§III's one sampling
/// operator per peer, amortized BlinkDB-style across its tenants).
///
/// Every engine at the node draws through this source. Within one tick
/// the pool grows monotonically: the first consumer's draw fills it via
/// the shared two-stage sampler, and later consumers re-read the cached
/// prefix before extending it. Per-query cursors keep each query's draws
/// *within* a tick contiguous and disjoint — a pilot draw plus top-up by
/// the same estimator never sees a sample twice — while different
/// queries deliberately share prefixes: samples are uniform with
/// replacement, so one batch is as good as another regardless of which
/// query triggered it, and the overlap is exactly the message saving.
///
/// Determinism: the node ticks engines in a fixed plan order and selects
/// the active cursor before each engine runs, so the shared sampler's
/// RNG stream advances in a schedule-independent sequence. BeginTick
/// clears the pool — checkpoints cut at tick boundaries carry no pool
/// state, only the sampler's RNG position.
class CoalescingSampleSource : public SampleSource {
 public:
  /// `sampler` is the node's shared two-stage sampler (not owned; must
  /// outlive this source).
  explicit CoalescingSampleSource(TwoStageTupleSampler* sampler)
      : sampler_(sampler) {}

  /// Opens a new tick: drops the previous tick's pool and all cursors.
  void BeginTick();

  /// Selects which query's cursor subsequent draws consume through.
  /// The node calls this immediately before ticking each engine.
  void SetActiveQuery(QueryId id) { active_ = id; }

  /// Pool size after the tick's draws so far.
  size_t shared_samples() const { return pool_.size(); }

  /// Total samples handed out across all cursors this tick (>= pool
  /// size whenever prefixes overlapped across queries).
  size_t consumed_samples() const;

  /// Cursors touched since BeginTick — the tick's consumer count.
  size_t queries_served() const { return cursors_.size(); }

  // SampleSource:
  Result<std::vector<TupleSample>> DrawFresh(NodeId origin,
                                             size_t n) override;
  Result<PartialTupleBatch> DrawFreshPartial(NodeId origin,
                                             size_t n) override;

 private:
  /// Serves `n` samples from the active cursor, extending the pool
  /// through the shared sampler when it is short. Budget-limited
  /// extension may deliver fewer (timed_out = true).
  Result<PartialTupleBatch> Serve(NodeId origin, size_t n,
                                  bool budgeted);

  TwoStageTupleSampler* sampler_;
  std::vector<TupleSample> pool_;
  std::map<QueryId, size_t> cursors_;
  QueryId active_ = 0;
};

/// Cumulative per-query attribution, reconciling the node's single
/// MessageMeter back into per-tenant shares.
struct QueryCost {
  double epsilon = 0.0;      ///< The query's contracted half-width.
  uint64_t ticks = 0;        ///< Engine ticks run for this query.
  uint64_t snapshots = 0;    ///< Sampling occasions opened.
  uint64_t coalesced = 0;    ///< Occasions served from a shared batch.
  uint64_t messages = 0;     ///< Meter delta attributed to this query.
};

/// Orders and accounts the node's tick work. Scheduling policy: due
/// queries run tightest-ε first (ties by QueryId) so the shared pool is
/// sized by the most demanding tenant and everyone else re-reads its
/// prefix; idle queries tick afterwards in id order. Pure bookkeeping —
/// the engines own all estimation state.
class QueryScheduler {
 public:
  /// One tick's execution order.
  struct TickPlan {
    std::vector<QueryId> due;   ///< Sampling occasions, by (ε, id).
    std::vector<QueryId> idle;  ///< Everyone else, by id.
  };

  /// Registers a query (fails on duplicate id).
  Status Register(QueryId id, double epsilon);

  /// Forgets a query; its cumulative costs drop with it.
  void Unregister(QueryId id) { costs_.erase(id); }

  bool Contains(QueryId id) const { return costs_.count(id) != 0; }
  size_t active() const { return costs_.size(); }

  /// Splits the registered queries into due/idle for this tick.
  /// `would_snapshot(id)` is the engine's occasion peek.
  TickPlan Plan(const std::function<bool(QueryId)>& would_snapshot) const;

  /// Folds one engine tick's outcome into the query's attribution.
  void RecordTick(QueryId id, uint64_t meter_delta, bool snapshot,
                  bool coalesced);

  /// Attribution for `id`, or null when unregistered.
  const QueryCost* Cost(QueryId id) const;

  /// All registered queries' attribution, keyed by id.
  const std::map<QueryId, QueryCost>& costs() const { return costs_; }

  /// Ticks on which >= 2 due queries shared one walk batch.
  uint64_t coalesced_ticks() const { return coalesced_ticks_; }
  void NoteCoalescedTick() { ++coalesced_ticks_; }

  /// Restores cumulative counters from a checkpoint (the node's
  /// checkpoint codec drives this; epsilons re-register on restore).
  void RestoreCost(QueryId id, const QueryCost& cost) { costs_[id] = cost; }
  void set_coalesced_ticks(uint64_t n) { coalesced_ticks_ = n; }

 private:
  std::map<QueryId, QueryCost> costs_;
  uint64_t coalesced_ticks_ = 0;
};

}  // namespace digest

#endif  // DIGEST_CORE_QUERY_SCHEDULER_H_
