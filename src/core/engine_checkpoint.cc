// Checkpoint/restore of a DigestEngine query session.
//
// The checkpoint is a versioned JSON blob ("digest-checkpoint-v3")
// carrying every piece of *session* state a restored engine needs to
// replay the exact tick/draw sequence an uninterrupted run would have
// produced: engine scalars and stats, the PRED history window, the
// supervisor state machine, the estimator's cross-occasion state
// (retained pool, regression recursion, forward-regression pairs), the
// RNG stream positions of every owned component, the warm-agent state of
// owned sampling operators, and the message meter's counters. v2 added
// the optional "audit" section: the attached PrecisionAuditor's full
// ledger and detector state, present iff options.auditor != nullptr
// (presence must match on restore, both ways). v3 added the optional
// "health" section on the same terms: the attached PeerHealthMonitor's
// per-peer phi/breaker state and counters, present iff
// options.health != nullptr — so a mid-partition restore resumes with
// the same quarantine set and breaker cooldowns the checkpointing
// engine had.
//
// Deliberately NOT in the blob:
//  - configuration (graph, database, query spec, options, seeds):
//    Restore requires an engine of identical construction;
//  - the FaultPlan's stream: the plan models the *network's* misbehavior
//    and is owned by the harness, which keeps it alive across the
//    kill/restore boundary just like the overlay itself;
//  - a *shared* sampling operator's state (CreateWithOperator): its warm
//    agents serve several engines, so the owner checkpoints it once via
//    SamplingOperator::SaveState rather than once per engine. The blob
//    records that the operator was external so a mismatched restore
//    fails loudly.
//
// Number encoding: doubles print as %.17g (lossless round-trip through
// strtod); int64 ticks print as plain JSON integers; uint64 counters
// ride as decimal strings because a JSON double cannot hold 2^64−1 (see
// common/json.h, whose As*() accept both forms).

#include <cinttypes>
#include <cstdio>
#include <utility>
#include <vector>

#include "audit/audit.h"
#include "common/json.h"
#include "core/checkpoint_util.h"
#include "core/engine.h"
#include "net/peer_health.h"
#include "obs/tracer.h"

namespace digest {
namespace {

using namespace ckpt;  // NOLINT: one codec family, one encoding.

constexpr char kCheckpointVersion[] = "digest-checkpoint-v3";

}  // namespace

Result<std::string> DigestEngine::Checkpoint() const {
  std::string out;
  out.reserve(4096);
  out += "{\"version\":\"";
  out += kCheckpointVersion;
  out += "\"";

  // Engine scalars.
  out += ",\"engine\":{\"reported_value\":";
  AppendDouble(&out, reported_value_);
  out += ",\"last_ci_halfwidth\":";
  AppendDouble(&out, last_ci_halfwidth_);
  out += ",\"has_result\":";
  AppendBool(&out, has_result_);
  out += ",\"next_snapshot_tick\":";
  AppendI64(&out, next_snapshot_tick_);
  out += ",\"last_tick\":";
  AppendI64(&out, last_tick_);
  out += ",\"last_gap\":";
  AppendI64(&out, last_gap_);
  out += '}';

  // Cumulative counters.
  out += ",\"stats\":{\"ticks\":";
  AppendU64(&out, stats_.ticks);
  out += ",\"snapshots\":";
  AppendU64(&out, stats_.snapshots);
  out += ",\"result_updates\":";
  AppendU64(&out, stats_.result_updates);
  out += ",\"total_samples\":";
  AppendU64(&out, stats_.total_samples);
  out += ",\"fresh_samples\":";
  AppendU64(&out, stats_.fresh_samples);
  out += ",\"retained_samples\":";
  AppendU64(&out, stats_.retained_samples);
  out += ",\"degraded_ticks\":";
  AppendU64(&out, stats_.degraded_ticks);
  out += ",\"partial_snapshots\":";
  AppendU64(&out, stats_.partial_snapshots);
  out += '}';

  // PRED history window.
  const Extrapolator::State ex = extrapolator_.SaveState();
  out += ",\"extrapolator\":{\"ticks\":[";
  for (size_t i = 0; i < ex.ticks.size(); ++i) {
    if (i > 0) out += ',';
    AppendI64(&out, ex.ticks[i]);
  }
  out += "],\"values\":";
  AppendDoubleArray(&out, ex.values);
  out += '}';

  // Supervisor state machine.
  const SessionSupervisor::State sup = supervisor_.SaveState();
  out += ",\"supervisor\":{\"health\":";
  AppendU64(&out, static_cast<uint64_t>(sup.health));
  out += ",\"consecutive_failures\":";
  AppendU64(&out, sup.consecutive_failures);
  out += ",\"consecutive_successes\":";
  AppendU64(&out, sup.consecutive_successes);
  out += ",\"transitions\":";
  AppendU64(&out, sup.transitions);
  out += ",\"outcome_counts\":[";
  for (size_t i = 0; i < kNumSnapshotOutcomes; ++i) {
    if (i > 0) out += ',';
    AppendU64(&out, sup.outcome_counts[i]);
  }
  out += "],\"transition_counts\":[";
  for (size_t from = 0; from < kNumSessionHealthStates; ++from) {
    if (from > 0) out += ',';
    out += '[';
    for (size_t to = 0; to < kNumSessionHealthStates; ++to) {
      if (to > 0) out += ',';
      AppendU64(&out, sup.transition_counts[from][to]);
    }
    out += ']';
  }
  out += "]}";

  // Estimator cross-occasion state.
  const EstimatorState es = estimator_->SaveState();
  out += ",\"estimator\":{\"rng\":";
  AppendRng(&out, es.rng);
  out += ",\"indep_rng\":";
  AppendRng(&out, es.indep_rng);
  out += ",\"retained_refs\":[";
  for (size_t i = 0; i < es.retained_refs.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"node\":";
    AppendU64(&out, es.retained_refs[i].node);
    out += ",\"local\":";
    AppendU64(&out, es.retained_refs[i].local);
    out += '}';
  }
  out += "],\"retained_ys\":";
  AppendDoubleArray(&out, es.retained_ys);
  out += ",\"prev_mean_estimate\":";
  AppendDouble(&out, es.prev_mean_estimate);
  out += ",\"prev_variance\":";
  AppendDouble(&out, es.prev_variance);
  out += ",\"rho_hat\":";
  AppendDouble(&out, es.rho_hat);
  out += ",\"sigma_hat\":";
  AppendDouble(&out, es.sigma_hat);
  out += ",\"occasion\":";
  AppendU64(&out, es.occasion);
  out += ",\"last_pair_y1\":";
  AppendDoubleArray(&out, es.last_pair_y1);
  out += ",\"last_pair_y2\":";
  AppendDoubleArray(&out, es.last_pair_y2);
  out += ",\"before_update_mean\":";
  AppendDouble(&out, es.before_update_mean);
  out += ",\"before_update_var\":";
  AppendDouble(&out, es.before_update_var);
  out += ",\"after_update_mean\":";
  AppendDouble(&out, es.after_update_mean);
  out += ",\"after_update_var\":";
  AppendDouble(&out, es.after_update_var);
  out += '}';

  // Tuple-sampler draw streams (stage 2 of the two-stage scheme, or the
  // centralized exact sampler).
  out += ",\"samplers\":{";
  bool first_sampler = true;
  if (two_stage_sampler_ != nullptr) {
    out += "\"two_stage_rng\":";
    AppendRng(&out, two_stage_sampler_->SaveRngState());
    first_sampler = false;
  }
  if (exact_sampler_ != nullptr) {
    if (!first_sampler) out += ',';
    out += "\"exact_rng\":";
    AppendRng(&out, exact_sampler_->SaveRngState());
  }
  out += '}';

  // Owned sampling operators (warm agents + walk stream + hedge stats).
  out += ",\"operators\":{\"shared\":";
  AppendBool(&out, shared_operator_);
  if (sampling_operator_ != nullptr) {
    out += ",\"sampling\":";
    AppendOperatorState(&out, sampling_operator_->SaveState());
  }
  if (uniform_operator_ != nullptr) {
    out += ",\"uniform\":";
    AppendOperatorState(&out, uniform_operator_->SaveState());
  }
  out += '}';

  // Message meter counters.
  if (meter_ != nullptr) {
    out += ",\"meter\":{\"counts\":[";
    for (size_t i = 0; i < MessageMeter::kNumCategories; ++i) {
      if (i > 0) out += ',';
      AppendU64(&out,
                meter_->Count(static_cast<MessageMeter::Category>(i)));
    }
    out += "],\"losses\":";
    AppendU64(&out, meter_->losses());
    out += '}';
  }

  // Precision-audit ledger and detector state (v2; present iff an
  // auditor is attached, so a restore into a differently-wired engine
  // fails loudly instead of silently dropping the ledger).
  if (options_.auditor != nullptr) {
    out += ",\"audit\":";
    audit::PrecisionAuditor::AppendStateJson(options_.auditor->SaveState(),
                                             &out);
  }

  // Peer-health monitor state (v3; same presence discipline as audit).
  if (options_.health != nullptr) {
    out += ",\"health\":";
    PeerHealthMonitor::AppendStateJson(options_.health->SaveState(), &out);
  }

  out += '}';
  if (obs::Tracing(options_.tracer)) {
    options_.tracer->Emit(obs::CheckpointEvent{
        static_cast<uint64_t>(out.size()), last_tick_});
  }
  return out;
}

Status DigestEngine::Restore(std::string_view blob) {
  DIGEST_ASSIGN_OR_RETURN(json::Value doc, json::Parse(blob));
  DIGEST_ASSIGN_OR_RETURN(std::string version, doc.GetString("version"));
  if (version != kCheckpointVersion) {
    return Status::InvalidArgument("checkpoint: unsupported version '" +
                                   version + "' (this build reads " +
                                   kCheckpointVersion + ")");
  }

  // Parse EVERYTHING into locals before installing anything, so a
  // malformed blob can never leave the engine half-restored.
  DIGEST_ASSIGN_OR_RETURN(const json::Value* eng, doc.GetObject("engine"));
  double reported_value;
  double last_ci;
  bool has_result;
  int64_t next_snapshot_tick, last_tick, last_gap;
  DIGEST_ASSIGN_OR_RETURN(reported_value, eng->GetDouble("reported_value"));
  DIGEST_ASSIGN_OR_RETURN(last_ci, eng->GetDouble("last_ci_halfwidth"));
  DIGEST_ASSIGN_OR_RETURN(has_result, eng->GetBool("has_result"));
  DIGEST_ASSIGN_OR_RETURN(next_snapshot_tick,
                          eng->GetInt64("next_snapshot_tick"));
  DIGEST_ASSIGN_OR_RETURN(last_tick, eng->GetInt64("last_tick"));
  DIGEST_ASSIGN_OR_RETURN(last_gap, eng->GetInt64("last_gap"));

  DIGEST_ASSIGN_OR_RETURN(const json::Value* st, doc.GetObject("stats"));
  EngineStats stats;
  {
    uint64_t v;
    DIGEST_ASSIGN_OR_RETURN(v, st->GetUInt64("ticks"));
    stats.ticks = static_cast<size_t>(v);
    DIGEST_ASSIGN_OR_RETURN(v, st->GetUInt64("snapshots"));
    stats.snapshots = static_cast<size_t>(v);
    DIGEST_ASSIGN_OR_RETURN(v, st->GetUInt64("result_updates"));
    stats.result_updates = static_cast<size_t>(v);
    DIGEST_ASSIGN_OR_RETURN(v, st->GetUInt64("total_samples"));
    stats.total_samples = static_cast<size_t>(v);
    DIGEST_ASSIGN_OR_RETURN(v, st->GetUInt64("fresh_samples"));
    stats.fresh_samples = static_cast<size_t>(v);
    DIGEST_ASSIGN_OR_RETURN(v, st->GetUInt64("retained_samples"));
    stats.retained_samples = static_cast<size_t>(v);
    DIGEST_ASSIGN_OR_RETURN(v, st->GetUInt64("degraded_ticks"));
    stats.degraded_ticks = static_cast<size_t>(v);
    DIGEST_ASSIGN_OR_RETURN(v, st->GetUInt64("partial_snapshots"));
    stats.partial_snapshots = static_cast<size_t>(v);
  }

  DIGEST_ASSIGN_OR_RETURN(const json::Value* ex,
                          doc.GetObject("extrapolator"));
  Extrapolator::State ex_state;
  {
    DIGEST_ASSIGN_OR_RETURN(const json::Value* ticks, ex->GetArray("ticks"));
    ex_state.ticks.reserve(ticks->array().size());
    for (const json::Value& v : ticks->array()) {
      DIGEST_ASSIGN_OR_RETURN(int64_t t, v.AsInt64());
      ex_state.ticks.push_back(t);
    }
    DIGEST_ASSIGN_OR_RETURN(ex_state.values,
                            ParseDoubleArray(*ex, "values"));
    if (ex_state.ticks.size() != ex_state.values.size()) {
      return Status::InvalidArgument(
          "checkpoint: extrapolator ticks/values length mismatch");
    }
  }

  DIGEST_ASSIGN_OR_RETURN(const json::Value* sup,
                          doc.GetObject("supervisor"));
  SessionSupervisor::State sup_state;
  {
    uint64_t health;
    DIGEST_ASSIGN_OR_RETURN(health, sup->GetUInt64("health"));
    if (health >= kNumSessionHealthStates) {
      return Status::InvalidArgument(
          "checkpoint: supervisor health out of range");
    }
    sup_state.health = static_cast<SessionHealth>(health);
    DIGEST_ASSIGN_OR_RETURN(sup_state.consecutive_failures,
                            sup->GetUInt64("consecutive_failures"));
    DIGEST_ASSIGN_OR_RETURN(sup_state.consecutive_successes,
                            sup->GetUInt64("consecutive_successes"));
    DIGEST_ASSIGN_OR_RETURN(sup_state.transitions,
                            sup->GetUInt64("transitions"));
    DIGEST_ASSIGN_OR_RETURN(const json::Value* outcomes,
                            sup->GetArray("outcome_counts"));
    if (outcomes->array().size() != kNumSnapshotOutcomes) {
      return Status::InvalidArgument(
          "checkpoint: supervisor outcome_counts length mismatch");
    }
    for (size_t i = 0; i < kNumSnapshotOutcomes; ++i) {
      DIGEST_ASSIGN_OR_RETURN(sup_state.outcome_counts[i],
                              outcomes->array()[i].AsUInt64());
    }
    DIGEST_ASSIGN_OR_RETURN(const json::Value* trans,
                            sup->GetArray("transition_counts"));
    if (trans->array().size() != kNumSessionHealthStates) {
      return Status::InvalidArgument(
          "checkpoint: supervisor transition_counts length mismatch");
    }
    for (size_t from = 0; from < kNumSessionHealthStates; ++from) {
      const json::Value& row = trans->array()[from];
      if (!row.is_array() ||
          row.array().size() != kNumSessionHealthStates) {
        return Status::InvalidArgument(
            "checkpoint: supervisor transition_counts row mismatch");
      }
      for (size_t to = 0; to < kNumSessionHealthStates; ++to) {
        DIGEST_ASSIGN_OR_RETURN(sup_state.transition_counts[from][to],
                                row.array()[to].AsUInt64());
      }
    }
  }

  DIGEST_ASSIGN_OR_RETURN(const json::Value* est,
                          doc.GetObject("estimator"));
  EstimatorState est_state;
  {
    DIGEST_ASSIGN_OR_RETURN(const json::Value* rng, est->GetObject("rng"));
    DIGEST_ASSIGN_OR_RETURN(est_state.rng, ParseRng(*rng));
    DIGEST_ASSIGN_OR_RETURN(const json::Value* irng,
                            est->GetObject("indep_rng"));
    DIGEST_ASSIGN_OR_RETURN(est_state.indep_rng, ParseRng(*irng));
    DIGEST_ASSIGN_OR_RETURN(const json::Value* refs,
                            est->GetArray("retained_refs"));
    est_state.retained_refs.reserve(refs->array().size());
    for (const json::Value& r : refs->array()) {
      TupleRef ref;
      uint64_t node;
      DIGEST_ASSIGN_OR_RETURN(node, r.GetUInt64("node"));
      ref.node = static_cast<NodeId>(node);
      DIGEST_ASSIGN_OR_RETURN(ref.local, r.GetUInt64("local"));
      est_state.retained_refs.push_back(ref);
    }
    DIGEST_ASSIGN_OR_RETURN(est_state.retained_ys,
                            ParseDoubleArray(*est, "retained_ys"));
    if (est_state.retained_refs.size() != est_state.retained_ys.size()) {
      return Status::InvalidArgument(
          "checkpoint: retained refs/ys length mismatch");
    }
    DIGEST_ASSIGN_OR_RETURN(est_state.prev_mean_estimate,
                            est->GetDouble("prev_mean_estimate"));
    DIGEST_ASSIGN_OR_RETURN(est_state.prev_variance,
                            est->GetDouble("prev_variance"));
    DIGEST_ASSIGN_OR_RETURN(est_state.rho_hat, est->GetDouble("rho_hat"));
    DIGEST_ASSIGN_OR_RETURN(est_state.sigma_hat,
                            est->GetDouble("sigma_hat"));
    DIGEST_ASSIGN_OR_RETURN(est_state.occasion,
                            est->GetUInt64("occasion"));
    DIGEST_ASSIGN_OR_RETURN(est_state.last_pair_y1,
                            ParseDoubleArray(*est, "last_pair_y1"));
    DIGEST_ASSIGN_OR_RETURN(est_state.last_pair_y2,
                            ParseDoubleArray(*est, "last_pair_y2"));
    DIGEST_ASSIGN_OR_RETURN(est_state.before_update_mean,
                            est->GetDouble("before_update_mean"));
    DIGEST_ASSIGN_OR_RETURN(est_state.before_update_var,
                            est->GetDouble("before_update_var"));
    DIGEST_ASSIGN_OR_RETURN(est_state.after_update_mean,
                            est->GetDouble("after_update_mean"));
    DIGEST_ASSIGN_OR_RETURN(est_state.after_update_var,
                            est->GetDouble("after_update_var"));
  }

  DIGEST_ASSIGN_OR_RETURN(const json::Value* samplers,
                          doc.GetObject("samplers"));
  bool have_two_stage_rng = false, have_exact_rng = false;
  Rng::State two_stage_rng, exact_rng;
  if (const json::Value* v = samplers->Find("two_stage_rng")) {
    DIGEST_ASSIGN_OR_RETURN(two_stage_rng, ParseRng(*v));
    have_two_stage_rng = true;
  }
  if (const json::Value* v = samplers->Find("exact_rng")) {
    DIGEST_ASSIGN_OR_RETURN(exact_rng, ParseRng(*v));
    have_exact_rng = true;
  }
  if (have_two_stage_rng != (two_stage_sampler_ != nullptr) ||
      have_exact_rng != (exact_sampler_ != nullptr)) {
    return Status::InvalidArgument(
        "checkpoint: sampler kind does not match this engine's "
        "construction");
  }

  DIGEST_ASSIGN_OR_RETURN(const json::Value* ops,
                          doc.GetObject("operators"));
  bool was_shared;
  DIGEST_ASSIGN_OR_RETURN(was_shared, ops->GetBool("shared"));
  if (was_shared != shared_operator_) {
    return Status::InvalidArgument(
        "checkpoint: shared-operator topology does not match (the owner "
        "of a shared operator checkpoints it separately)");
  }
  bool have_sampling_op = false, have_uniform_op = false;
  SamplingOperator::State sampling_op_state, uniform_op_state;
  if (const json::Value* v = ops->Find("sampling")) {
    DIGEST_ASSIGN_OR_RETURN(sampling_op_state, ParseOperatorState(*v));
    have_sampling_op = true;
  }
  if (const json::Value* v = ops->Find("uniform")) {
    DIGEST_ASSIGN_OR_RETURN(uniform_op_state, ParseOperatorState(*v));
    have_uniform_op = true;
  }
  if (have_sampling_op != (sampling_operator_ != nullptr) ||
      have_uniform_op != (uniform_operator_ != nullptr)) {
    return Status::InvalidArgument(
        "checkpoint: operator topology does not match this engine's "
        "construction");
  }

  bool have_meter = false;
  uint64_t meter_counts[MessageMeter::kNumCategories] = {};
  uint64_t meter_losses = 0;
  if (const json::Value* m = doc.Find("meter")) {
    DIGEST_ASSIGN_OR_RETURN(const json::Value* counts,
                            m->GetArray("counts"));
    if (counts->array().size() != MessageMeter::kNumCategories) {
      return Status::InvalidArgument(
          "checkpoint: meter category count mismatch (blob from a "
          "different build?)");
    }
    for (size_t i = 0; i < MessageMeter::kNumCategories; ++i) {
      DIGEST_ASSIGN_OR_RETURN(meter_counts[i],
                              counts->array()[i].AsUInt64());
    }
    DIGEST_ASSIGN_OR_RETURN(meter_losses, m->GetUInt64("losses"));
    have_meter = true;
  }

  bool have_audit = false;
  audit::PrecisionAuditor::State audit_state;
  if (const json::Value* a = doc.Find("audit")) {
    DIGEST_ASSIGN_OR_RETURN(audit_state,
                            audit::PrecisionAuditor::ParseStateJson(*a));
    have_audit = true;
  }
  if (have_audit != (options_.auditor != nullptr)) {
    return Status::InvalidArgument(
        have_audit
            ? "checkpoint: blob carries audit state but this engine has "
              "no auditor attached"
            : "checkpoint: engine has an auditor attached but the blob "
              "carries no audit state");
  }

  bool have_health = false;
  PeerHealthMonitor::State health_state;
  if (const json::Value* h = doc.Find("health")) {
    DIGEST_ASSIGN_OR_RETURN(health_state,
                            PeerHealthMonitor::ParseStateJson(*h));
    have_health = true;
  }
  if (have_health != (options_.health != nullptr)) {
    return Status::InvalidArgument(
        have_health
            ? "checkpoint: blob carries peer-health state but this "
              "engine has no monitor attached"
            : "checkpoint: engine has a peer-health monitor attached "
              "but the blob carries no health state");
  }

  // All parsed and validated — install.
  reported_value_ = reported_value;
  last_ci_halfwidth_ = last_ci;
  has_result_ = has_result;
  next_snapshot_tick_ = next_snapshot_tick;
  last_tick_ = last_tick;
  last_gap_ = last_gap;
  stats_ = stats;
  extrapolator_.RestoreState(ex_state);
  supervisor_.RestoreState(sup_state);
  estimator_->RestoreState(est_state);
  if (two_stage_sampler_ != nullptr) {
    two_stage_sampler_->RestoreRngState(two_stage_rng);
  }
  if (exact_sampler_ != nullptr) {
    exact_sampler_->RestoreRngState(exact_rng);
  }
  if (sampling_operator_ != nullptr) {
    sampling_operator_->RestoreState(sampling_op_state);
  }
  if (uniform_operator_ != nullptr) {
    uniform_operator_->RestoreState(uniform_op_state);
  }
  if (have_meter && meter_ != nullptr) {
    for (size_t i = 0; i < MessageMeter::kNumCategories; ++i) {
      meter_->RestoreCount(static_cast<MessageMeter::Category>(i),
                           meter_counts[i]);
    }
    meter_->RestoreLosses(meter_losses);
  }
  if (have_audit) {
    options_.auditor->RestoreState(audit_state);
  }
  if (have_health) {
    options_.health->RestoreState(health_state);
  }
  if (obs::Tracing(options_.tracer)) {
    options_.tracer->Emit(obs::RestoreEvent{
        static_cast<uint64_t>(blob.size()), last_tick_});
  }
  return Status::OK();
}

}  // namespace digest
