#include "core/extrapolator.h"

#include <cmath>
#include <vector>

#include "numeric/levmar.h"

namespace digest {

Extrapolator::Extrapolator(ExtrapolatorOptions options) : options_(options) {
  if (options_.history_points < 2) options_.history_points = 2;
  if (options_.max_skip < 1) options_.max_skip = 1;
}

Status Extrapolator::AddObservation(int64_t t, double x) {
  if (!history_.empty() && t <= history_.back().t) {
    return Status::InvalidArgument(
        "observations must have strictly increasing ticks");
  }
  history_.push_back(Observation{t, x});
  // One extra point beyond k is kept for the remainder estimate.
  while (history_.size() > options_.history_points + 1) {
    history_.pop_front();
  }
  return Status::OK();
}

Result<Extrapolator::Fit> Extrapolator::FitHistory() const {
  const size_t k = options_.history_points;
  if (history_.size() < k) {
    return Status::FailedPrecondition("extrapolator is still bootstrapping");
  }
  const int64_t t_last = history_.back().t;
  // The fit uses the most recent k points, in the shifted variable
  // s = t − t_last (so s ≤ 0 and extrapolation evaluates at s > 0).
  std::vector<double> xs, ys;
  xs.reserve(k);
  ys.reserve(k);
  for (size_t i = history_.size() - k; i < history_.size(); ++i) {
    xs.push_back(static_cast<double>(history_[i].t - t_last));
    ys.push_back(history_[i].x);
  }
  const size_t degree = k - 1;
  Fit fit;
  if (options_.use_levmar) {
    // The paper fits the Taylor polynomial with Levenberg–Marquardt.
    // Seed LM from the constant term to keep iterations short.
    std::vector<double> initial(degree + 1, 0.0);
    initial[0] = ys.back();
    auto model = [](double x, const std::vector<double>& params) {
      double acc = 0.0;
      for (size_t i = params.size(); i-- > 0;) acc = acc * x + params[i];
      return acc;
    };
    DIGEST_ASSIGN_OR_RETURN(LevMarResult lm,
                            FitModelLevMar(model, xs, ys, initial));
    fit.poly = Polynomial(lm.parameters);
  } else {
    DIGEST_ASSIGN_OR_RETURN(fit.poly,
                            FitPolynomialLeastSquares(xs, ys, degree));
  }
  // Lagrange-remainder constant |f⁽ᵏ⁾(ξ)/k!| (Eq. 2/3): the order-k
  // divided difference needs k+1 points; with only k available, fall
  // back to the magnitude of the highest fitted coefficient (the
  // order-(k−1) derivative scale) as a conservative proxy.
  if (history_.size() >= k + 1) {
    std::vector<double> all_xs, all_ys;
    for (const Observation& obs : history_) {
      all_xs.push_back(static_cast<double>(obs.t - t_last));
      all_ys.push_back(obs.x);
    }
    DIGEST_ASSIGN_OR_RETURN(std::vector<double> dd,
                            DividedDifferences(all_xs, all_ys));
    fit.remainder_c = std::fabs(dd.back());
  } else {
    fit.remainder_c = std::fabs(fit.poly.coefficients().back());
  }
  return fit;
}

Result<int64_t> Extrapolator::PredictNextSnapshotTime(
    double delta, double reference) const {
  if (delta < 0.0) {
    return Status::InvalidArgument("delta must be >= 0");
  }
  if (history_.empty()) {
    return Status::FailedPrecondition("no observations yet");
  }
  const int64_t t_last = history_.back().t;
  if (!Bootstrapped() || delta == 0.0) {
    // Bootstrap period (or exact resolution): continuous querying.
    return t_last + 1;
  }
  DIGEST_ASSIGN_OR_RETURN(Fit fit, FitHistory());
  const double k = static_cast<double>(options_.history_points);
  for (int64_t s = 1; s <= options_.max_skip; ++s) {
    const double sd = static_cast<double>(s);
    const double drift = std::fabs(fit.poly.Evaluate(sd) - reference);
    const double remainder =
        options_.remainder_inflation * fit.remainder_c * std::pow(sd, k);
    if (drift + remainder > delta) {
      return t_last + s;
    }
  }
  return t_last + options_.max_skip;
}

Result<int64_t> Extrapolator::PredictNextSnapshotTime(double delta) const {
  if (delta < 0.0) {
    return Status::InvalidArgument("delta must be >= 0");
  }
  if (history_.empty()) {
    return Status::FailedPrecondition("no observations yet");
  }
  if (!Bootstrapped()) {
    return history_.back().t + 1;
  }
  DIGEST_ASSIGN_OR_RETURN(Fit fit, FitHistory());
  return PredictNextSnapshotTime(delta, fit.poly.Evaluate(0.0));
}

Result<double> Extrapolator::ExtrapolatedValue(int64_t t) const {
  if (history_.empty()) {
    return Status::FailedPrecondition("no observations yet");
  }
  if (!Bootstrapped()) {
    return history_.back().x;
  }
  DIGEST_ASSIGN_OR_RETURN(Fit fit, FitHistory());
  return fit.poly.Evaluate(static_cast<double>(t - history_.back().t));
}

}  // namespace digest
