#ifndef DIGEST_CORE_SNAPSHOT_ESTIMATOR_H_
#define DIGEST_CORE_SNAPSHOT_ESTIMATOR_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "core/query_spec.h"
#include "db/size_oracle.h"
#include "db/p2p_database.h"
#include "net/message_meter.h"
#include "numeric/rng.h"
#include "sampling/tuple_sampler.h"

namespace digest {
namespace obs {
class Tracer;
}  // namespace obs

/// Source of fresh uniform tuple samples for an estimator. Abstracts over
/// the distributed two-stage MCMC sampler (production path) and the
/// centralized exact sampler (tests and baselines).
class SampleSource {
 public:
  virtual ~SampleSource() = default;

  /// Draws `n` uniform samples with replacement, originating any network
  /// traffic at `origin`.
  virtual Result<std::vector<TupleSample>> DrawFresh(NodeId origin,
                                                     size_t n) = 0;

  /// Deadline-budgeted variant: sources backed by a hop-budgeted sampler
  /// return whatever completed before the budget ran out with
  /// timed_out = true. The default wraps DrawFresh and never times out
  /// (sources without a budget always deliver the full batch or fail).
  virtual Result<PartialTupleBatch> DrawFreshPartial(NodeId origin,
                                                     size_t n) {
    DIGEST_ASSIGN_OR_RETURN(std::vector<TupleSample> samples,
                            DrawFresh(origin, n));
    PartialTupleBatch batch;
    batch.samples = std::move(samples);
    return batch;
  }
};

/// SampleSource over the two-stage MCMC tuple sampler (§III).
class TwoStageSampleSource : public SampleSource {
 public:
  explicit TwoStageSampleSource(TwoStageTupleSampler* sampler)
      : sampler_(sampler) {}
  Result<std::vector<TupleSample>> DrawFresh(NodeId origin,
                                             size_t n) override {
    return sampler_->SampleBatch(origin, n);
  }
  Result<PartialTupleBatch> DrawFreshPartial(NodeId origin,
                                             size_t n) override {
    return sampler_->SampleBatchPartial(origin, n);
  }

 private:
  TwoStageTupleSampler* sampler_;
};

/// SampleSource over the centralized exact sampler.
class ExactSampleSource : public SampleSource {
 public:
  explicit ExactSampleSource(ExactTupleSampler* sampler)
      : sampler_(sampler) {}
  Result<std::vector<TupleSample>> DrawFresh(NodeId origin,
                                             size_t n) override {
    (void)origin;
    return sampler_->SampleBatch(n);
  }

 private:
  ExactTupleSampler* sampler_;
};

/// How the per-occasion sample size is derived from (ε, p).
enum class SampleSizePolicy {
  /// Eq. 6's CLT size n = (z·σ̂/ε)², iterated from a pilot (the paper's
  /// method). Needs a variance estimate; asymptotic guarantee.
  kClt,
  /// Distribution-free Hoeffding bound n = ln(2/(1−p))·range²/(2ε²)
  /// (the style of guarantee snapshot-query systems like Arai et al.
  /// use). Needs EstimatorOptions::value_range; typically much more
  /// conservative than the CLT size but exact at any n. Supported by
  /// the independent estimator only.
  kHoeffding,
};

/// Tuning knobs shared by the snapshot estimators.
struct EstimatorOptions {
  size_t pilot_samples = 30;   ///< Minimum/pilot sample-set size.
  size_t max_samples = 200000; ///< Hard cap per sampling occasion.
  size_t max_rounds = 8;       ///< Sample-size iteration rounds.
  SampleSizePolicy sample_size_policy = SampleSizePolicy::kClt;
  /// Width of the attribute's support, required by kHoeffding (e.g.,
  /// 150 for temperatures confined to [-50, 100] °F).
  double value_range = 0.0;
  /// EWMA weight of the newest correlation measurement when updating the
  /// running ρ̂ (1.0 = use the newest only).
  double correlation_smoothing = 0.5;
  /// Messages charged for re-evaluating one retained sample (§VI-B2:
  /// "negligible communication cost" — a direct contact, not a walk).
  size_t refresh_message_cost = 1;
  /// Multiplier applied to the confidence half-width of a *degraded*
  /// estimate (EvaluateDegraded): the retained pool is a stale sample of
  /// the population, so its nominal CLT interval is honest only after
  /// widening for the unmodeled drift since it was drawn.
  double degraded_widening = 2.0;
  /// Deadline-budgeted snapshots: when fresh sampling times out against
  /// the hop budget mid-occasion, finalize the estimate from the samples
  /// collected so far (honestly wider CI, SnapshotEstimate::partial set)
  /// instead of failing with kUnavailable. Off by default: the classic
  /// timeout → degraded-fallback path is preserved unless a caller opts
  /// in. With no fault plan no timeout ever fires, so enabling this
  /// leaves fault-free runs bit-identical.
  bool allow_partial = false;
  /// Minimum contributing samples a partial finalization needs; below
  /// this the occasion still fails with kUnavailable (an estimate from
  /// fewer points has no usable variance). Must be >= 2.
  size_t min_partial_samples = 8;
  /// Optional structured event sink (not owned; null disables). Each
  /// occasion emits one SampleBudgetEvent describing the planned split
  /// (RPT retained/fresh with ρ̂, or INDEP's CLT size). Pure
  /// observation: estimates and RNG streams are unchanged by tracing.
  obs::Tracer* tracer = nullptr;
};

/// Outcome of one sampling occasion (one snapshot-query evaluation).
struct SnapshotEstimate {
  double value = 0.0;            ///< Aggregate result in query units.
  double mean_estimate = 0.0;    ///< Per-tuple mean estimate Ŷ.
  double sigma = 0.0;            ///< Estimated per-tuple stddev σ̂.
  double variance_of_mean = 0.0; ///< Estimated var(Ŷ).
  size_t total_samples = 0;      ///< Retained + fresh this occasion.
  size_t fresh_samples = 0;      ///< Newly drawn from the network.
  size_t retained_samples = 0;   ///< Revisited from the last occasion.
  /// Samples that contributed to the estimate. Equal to total_samples
  /// except for AVG queries with a WHERE clause, where drawn samples
  /// failing the predicate cost traffic but do not contribute.
  size_t contributing_samples = 0;
  /// Half-width of the reported confidence interval in query units
  /// (z·√var, scaled by N for SUM/COUNT; ε for MEDIAN's rank bound).
  /// On healthy occasions this is at most ≈ ε by construction; degraded
  /// occasions report the honest, wider interval.
  double ci_halfwidth = 0.0;
  /// True when the estimate came from the degraded fallback path
  /// (retained samples only, no fresh network draws).
  bool degraded = false;
  /// True when the occasion was finalized early because the sampling hop
  /// budget ran out (EstimatorOptions::allow_partial): the estimate uses
  /// only the samples collected before the deadline, and ci_halfwidth is
  /// the honest (wider) interval of that smaller set.
  bool partial = false;
};

/// Serializable cross-occasion estimator state, for the engine
/// checkpoint (core/engine_checkpoint.cc). One struct covers both
/// estimators: INDEP populates only the RNG streams; RPT adds the
/// retained pool, the regression recursion scalars, and the forward-
/// regression pair data. Restoring this into a freshly constructed
/// estimator of the same kind and configuration replays the exact draw
/// sequence an uninterrupted run would have made.
struct EstimatorState {
  Rng::State rng;        ///< Top-level stream (RPT's retained shuffle).
  Rng::State indep_rng;  ///< Wrapped/primary independent stream.
  // Repeated-sampling cross-occasion state (empty/zero for INDEP).
  std::vector<TupleRef> retained_refs;
  std::vector<double> retained_ys;
  double prev_mean_estimate = 0.0;
  double prev_variance = 0.0;
  double rho_hat = 0.0;
  double sigma_hat = 0.0;
  uint64_t occasion = 0;
  std::vector<double> last_pair_y1;
  std::vector<double> last_pair_y2;
  double before_update_mean = 0.0;
  double before_update_var = 0.0;
  double after_update_mean = 0.0;
  double after_update_var = 0.0;
};

/// A snapshot-query evaluator: called once per sampling occasion by the
/// engine, returns the estimate meeting the (ε, p) confidence contract.
class SnapshotEstimator {
 public:
  virtual ~SnapshotEstimator() = default;

  /// Evaluates the snapshot query at the current database state.
  virtual Result<SnapshotEstimate> Evaluate(NodeId origin) = 0;

  /// Degraded fallback when Evaluate could not complete (e.g. the
  /// sampling hop budget timed out under faults): produce a best-effort
  /// estimate from state that needs no fresh network samples, with an
  /// honestly widened confidence interval. Default: no fallback exists
  /// (kUnavailable); the repeated-sampling estimator falls back to its
  /// retained pool.
  virtual Result<SnapshotEstimate> EvaluateDegraded(NodeId origin) {
    (void)origin;
    return Status::Unavailable("estimator has no degraded fallback");
  }

  /// Forgets cross-occasion state (a fresh continuous query).
  virtual void Reset() = 0;

  /// Checkpoint/restore of all cross-occasion state, RNG streams
  /// included. Restore assumes an estimator of the same kind and
  /// configuration (the checkpoint blob carries no config).
  virtual EstimatorState SaveState() const = 0;
  virtual void RestoreState(const EstimatorState& state) = 0;
};

/// Classical independent sampling (paper §IV-B1): every occasion draws a
/// fresh uniform sample set sized by the CLT formula
/// n = (σ̂ · z_p / ε)² (Eq. 6), iterating pilot → re-estimate σ̂ → top-up.
class IndependentEstimator : public SnapshotEstimator {
 public:
  /// The expression inside `spec.query` is bound against `db->schema()`
  /// on first use. `size_oracle` may be null for AVG queries; SUM/COUNT
  /// fail without one. `meter` may be null.
  IndependentEstimator(const ContinuousQuerySpec& spec, const P2PDatabase* db,
                       SampleSource* source, SizeOracle* size_oracle,
                       MessageMeter* meter, Rng rng,
                       EstimatorOptions options = {});

  Result<SnapshotEstimate> Evaluate(NodeId origin) override;
  void Reset() override {}

  EstimatorState SaveState() const override;
  void RestoreState(const EstimatorState& state) override;

 private:
  friend class RepeatedSamplingEstimator;

  /// ε expressed in per-tuple-mean units (divides by N for SUM).
  Result<double> MeanEpsilon() const;

  /// Scales a mean estimate into query units (multiplies by N for SUM).
  Result<double> ScaleToQueryUnits(double mean) const;

  /// Maps a sampled tuple to its contribution to the per-tuple mean:
  /// - AVG: y for qualifying tuples, nullopt (skip) otherwise — the
  ///   conditional mean over the qualifying subpopulation.
  /// - SUM: y·I(qualifies); COUNT: I(qualifies) — unconditional means
  ///   scaled by N at the end, so the predicate needs no conditioning.
  Result<std::optional<double>> ContributionValue(const Tuple& tuple) const;

  ContinuousQuerySpec spec_;
  const P2PDatabase* db_;
  SampleSource* source_;
  SizeOracle* size_oracle_;
  MessageMeter* meter_;
  Rng rng_;
  EstimatorOptions options_;
  Expression bound_expression_;
  Predicate bound_where_;
  double z_ = 0.0;  // Two-sided normal quantile for the confidence level.
  bool initialized_ = false;
  // The most recent occasion's sample set, exposed to a wrapping
  // RepeatedSamplingEstimator so occasion 1 can seed the retained pool.
  std::vector<TupleSample> last_samples_;
  std::vector<double> last_ys_;

  Status EnsureInitialized();
  Result<double> YValue(const Tuple& tuple) const {
    return bound_expression_.Evaluate(tuple);
  }
};

/// Repeated sampling with regression estimation (paper §IV-B2).
///
/// Across occasions the estimator retains part of the previous sample
/// set (optimal fraction g_opt = n / (1 + √(1−ρ̂²)), Eq. 9), re-evaluates
/// the retained tuples in place (cheap), regresses current on previous
/// values, and combines the regression estimate with the fresh-sample
/// estimate weighted inversely by variance (Eq. 7). The occasion-k
/// recursion follows Cochran's sampling-on-successive-occasions scheme:
/// the regression leans on the previous occasion's *combined* estimate,
/// whose variance enters the retained-portion variance.
class RepeatedSamplingEstimator : public SnapshotEstimator {
 public:
  RepeatedSamplingEstimator(const ContinuousQuerySpec& spec,
                            const P2PDatabase* db, SampleSource* source,
                            SizeOracle* size_oracle, MessageMeter* meter,
                            Rng rng, EstimatorOptions options = {});

  Result<SnapshotEstimate> Evaluate(NodeId origin) override;

  /// Degraded occasion (graceful degradation under faults): re-evaluate
  /// the retained pool in place — direct contacts, no walks — and
  /// report its mean with a confidence interval widened by
  /// EstimatorOptions::degraded_widening. The refreshed values roll
  /// into the retained pool so the next healthy occasion's regression
  /// stays coherent. Fails before the first occasion or when fewer than
  /// two retained tuples are still reachable.
  Result<SnapshotEstimate> EvaluateDegraded(NodeId origin) override;

  void Reset() override;

  EstimatorState SaveState() const override;
  void RestoreState(const EstimatorState& state) override;

  /// Current smoothed estimate of the inter-occasion correlation ρ̂.
  double correlation_estimate() const { return rho_hat_; }

  /// Forward regression (the paper's §VIII extension): a retrospectively
  /// improved estimate of the *previous* occasion's result, in query
  /// units. Where reverse regression uses occasion k−1 to sharpen
  /// occasion k, this regresses the retained pairs the other way
  /// (y_{k−1} on y_k) and combines with the previous occasion's original
  /// estimate by inverse variance — occasion k's information flows
  /// backward, "adjusting the previous result". Fails before the second
  /// occasion or when the last occasion had too few retained pairs.
  Result<double> AdjustedPreviousEstimate() const;

 private:
  struct Retained {
    TupleRef ref;
    double y = 0.0;  // Value at the occasion the sample was last seen.
  };

  /// First occasion: plain independent sampling, then memorize the set.
  Result<SnapshotEstimate> EvaluateFirstOccasion(NodeId origin);

  IndependentEstimator independent_;  // Reused for occasion 1 & fallbacks.
  const P2PDatabase* db_;
  SampleSource* source_;
  MessageMeter* meter_;
  Rng rng_;
  EstimatorOptions options_;

  std::vector<Retained> prev_samples_;
  double prev_mean_estimate_ = 0.0;
  double prev_variance_ = 0.0;
  double rho_hat_ = 0.0;
  double sigma_hat_ = 0.0;
  size_t occasion_ = 0;

  // State for forward regression: the retained pairs of the most recent
  // occasion, plus the occasions' estimates on both sides of the pair.
  std::vector<double> last_pair_y1_, last_pair_y2_;
  double before_update_mean_ = 0.0;   // Ŷ_{k−1}.
  double before_update_var_ = 0.0;    // var(Ŷ_{k−1}).
  double after_update_mean_ = 0.0;    // Ŷ_k.
  double after_update_var_ = 0.0;     // var(Ŷ_k).
};

}  // namespace digest

#endif  // DIGEST_CORE_SNAPSHOT_ESTIMATOR_H_
