#ifndef DIGEST_CORE_CHECKPOINT_UTIL_H_
#define DIGEST_CORE_CHECKPOINT_UTIL_H_

// Shared primitives of the checkpoint codecs (engine_checkpoint.cc and
// the DigestNode codec in digest_node.cc). One encoding discipline for
// every blob: doubles print as %.17g (lossless round-trip through
// strtod); int64 ticks print as plain JSON integers; uint64 counters
// ride as decimal strings because a JSON double cannot hold 2^64−1
// (see common/json.h, whose As*() accept both forms).

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "numeric/rng.h"
#include "sampling/sampling_operator.h"

namespace digest {
namespace ckpt {

inline void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

inline void AppendU64(std::string* out, uint64_t v) {
  // Decimal-string form: exact for the full uint64 range.
  *out += '"';
  *out += std::to_string(v);
  *out += '"';
}

inline void AppendI64(std::string* out, int64_t v) {
  *out += std::to_string(v);
}

inline void AppendBool(std::string* out, bool v) {
  *out += v ? "true" : "false";
}

inline void AppendRng(std::string* out, const Rng::State& s) {
  *out += "{\"words\":[";
  for (int i = 0; i < 4; ++i) {
    if (i > 0) *out += ',';
    AppendU64(out, s.words[i]);
  }
  *out += "],\"has_spare_gaussian\":";
  AppendBool(out, s.has_spare_gaussian);
  *out += ",\"spare_gaussian\":";
  AppendDouble(out, s.spare_gaussian);
  *out += '}';
}

inline void AppendDoubleArray(std::string* out,
                              const std::vector<double>& xs) {
  *out += '[';
  for (size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) *out += ',';
    AppendDouble(out, xs[i]);
  }
  *out += ']';
}

inline void AppendOperatorState(std::string* out,
                                const SamplingOperator::State& s) {
  *out += "{\"agent_positions\":[";
  for (size_t i = 0; i < s.agent_positions.size(); ++i) {
    if (i > 0) *out += ',';
    AppendU64(out, s.agent_positions[i]);
  }
  *out += "],\"next_agent\":";
  AppendU64(out, s.next_agent);
  *out += ",\"rng\":";
  AppendRng(out, s.rng);
  *out += ",\"done_walks\":";
  AppendU64(out, s.done_walks);
  *out += ",\"done_attempts\":";
  AppendU64(out, s.done_attempts);
  *out += ",\"done_steps\":";
  AppendU64(out, s.done_steps);
  *out += '}';
}

inline Result<Rng::State> ParseRng(const json::Value& v) {
  Rng::State s;
  DIGEST_ASSIGN_OR_RETURN(const json::Value* words, v.GetArray("words"));
  if (words->array().size() != 4) {
    return Status::InvalidArgument("checkpoint: rng needs 4 state words");
  }
  for (int i = 0; i < 4; ++i) {
    DIGEST_ASSIGN_OR_RETURN(s.words[i], words->array()[i].AsUInt64());
  }
  DIGEST_ASSIGN_OR_RETURN(s.has_spare_gaussian,
                          v.GetBool("has_spare_gaussian"));
  DIGEST_ASSIGN_OR_RETURN(s.spare_gaussian, v.GetDouble("spare_gaussian"));
  return s;
}

inline Result<std::vector<double>> ParseDoubleArray(
    const json::Value& parent, std::string_view key) {
  DIGEST_ASSIGN_OR_RETURN(const json::Value* arr, parent.GetArray(key));
  std::vector<double> out;
  out.reserve(arr->array().size());
  for (const json::Value& v : arr->array()) {
    DIGEST_ASSIGN_OR_RETURN(double x, v.AsDouble());
    out.push_back(x);
  }
  return out;
}

inline Result<SamplingOperator::State> ParseOperatorState(
    const json::Value& v) {
  SamplingOperator::State s;
  DIGEST_ASSIGN_OR_RETURN(const json::Value* positions,
                          v.GetArray("agent_positions"));
  s.agent_positions.reserve(positions->array().size());
  for (const json::Value& p : positions->array()) {
    DIGEST_ASSIGN_OR_RETURN(uint64_t node, p.AsUInt64());
    s.agent_positions.push_back(static_cast<NodeId>(node));
  }
  DIGEST_ASSIGN_OR_RETURN(s.next_agent, v.GetUInt64("next_agent"));
  DIGEST_ASSIGN_OR_RETURN(const json::Value* rng, v.GetObject("rng"));
  DIGEST_ASSIGN_OR_RETURN(s.rng, ParseRng(*rng));
  DIGEST_ASSIGN_OR_RETURN(s.done_walks, v.GetUInt64("done_walks"));
  DIGEST_ASSIGN_OR_RETURN(s.done_attempts, v.GetUInt64("done_attempts"));
  DIGEST_ASSIGN_OR_RETURN(s.done_steps, v.GetUInt64("done_steps"));
  return s;
}

}  // namespace ckpt
}  // namespace digest

#endif  // DIGEST_CORE_CHECKPOINT_UTIL_H_
