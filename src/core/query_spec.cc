#include "core/query_spec.h"

#include <cstdio>

namespace digest {

Status PrecisionSpec::Validate() const {
  if (delta < 0.0) {
    return Status::InvalidArgument("resolution delta must be >= 0");
  }
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("confidence interval epsilon must be > 0");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::InvalidArgument("confidence level must be in (0, 1)");
  }
  return Status::OK();
}

Result<ContinuousQuerySpec> ContinuousQuerySpec::Create(
    std::string_view query_text, PrecisionSpec precision) {
  DIGEST_RETURN_IF_ERROR(precision.Validate());
  ContinuousQuerySpec spec;
  DIGEST_ASSIGN_OR_RETURN(spec.query, AggregateQuery::Parse(query_text));
  spec.precision = precision;
  return spec;
}

std::string ContinuousQuerySpec::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), " [delta=%g epsilon=%g p=%g]",
                precision.delta, precision.epsilon, precision.confidence);
  return query.ToString() + buf;
}

}  // namespace digest
