#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "audit/audit.h"
#include "diag/diag.h"
#include "net/peer_health.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "prof/profiler.h"
#include "sampling/size_estimator.h"

namespace digest {

void ExportToRegistry(const EngineStats& stats, obs::Registry* registry,
                      const std::string& run_label) {
  if (registry == nullptr) return;
  const obs::LabelSet labels =
      run_label.empty() ? obs::LabelSet{}
                        : obs::LabelSet{{"run", run_label}};
  const std::pair<const char*, size_t> fields[] = {
      {"engine.ticks", stats.ticks},
      {"engine.snapshots", stats.snapshots},
      {"engine.result_updates", stats.result_updates},
      {"engine.total_samples", stats.total_samples},
      {"engine.fresh_samples", stats.fresh_samples},
      {"engine.retained_samples", stats.retained_samples},
      {"engine.degraded_ticks", stats.degraded_ticks},
      {"engine.partial_snapshots", stats.partial_snapshots},
  };
  for (const auto& [name, value] : fields) {
    obs::Counter* counter = registry->GetCounter(name, labels);
    const uint64_t target = static_cast<uint64_t>(value);
    // Counters are monotone: raise to the cumulative stats value, so
    // repeated bridging of growing stats is idempotent per value.
    if (target > counter->value()) {
      counter->Increment(target - counter->value());
    }
  }
}

DigestEngine::DigestEngine(const Graph* graph, const P2PDatabase* db,
                           ContinuousQuerySpec spec, NodeId querying_node,
                           MessageMeter* meter, DigestEngineOptions options)
    : graph_(graph),
      db_(db),
      spec_(std::move(spec)),
      querying_node_(querying_node),
      meter_(meter),
      options_(options),
      extrapolator_(options.extrapolator),
      supervisor_(options.supervisor) {}

Result<std::unique_ptr<DigestEngine>> DigestEngine::Create(
    const Graph* graph, const P2PDatabase* db, ContinuousQuerySpec spec,
    NodeId querying_node, Rng rng, MessageMeter* meter,
    DigestEngineOptions options) {
  return CreateWithOperator(graph, db, std::move(spec), querying_node, rng,
                            meter, /*shared_operator=*/nullptr, options);
}

Result<std::unique_ptr<DigestEngine>> DigestEngine::CreateWithOperator(
    const Graph* graph, const P2PDatabase* db, ContinuousQuerySpec spec,
    NodeId querying_node, Rng rng, MessageMeter* meter,
    SamplingOperator* shared_operator, DigestEngineOptions options) {
  DIGEST_RETURN_IF_ERROR(spec.precision.Validate());
  if (!graph->HasNode(querying_node)) {
    return Status::InvalidArgument("querying node is not in the network");
  }
  if (shared_operator != nullptr &&
      options.sampler != SamplerKind::kTwoStageMcmc) {
    return Status::InvalidArgument(
        "a shared sampling operator requires the two-stage MCMC sampler");
  }
  if (options.sample_source != nullptr && shared_operator == nullptr) {
    return Status::InvalidArgument(
        "an external sample source requires a shared sampling operator");
  }
  DIGEST_RETURN_IF_ERROR(options.supervisor.Validate());
  DIGEST_RETURN_IF_ERROR(options.sampling_options.hedge.Validate());
  if (options.estimator_options.min_partial_samples < 2) {
    return Status::InvalidArgument("min_partial_samples must be >= 2");
  }
  // One sink for the whole stack: the engine-level tracer flows into the
  // estimator (explicit estimator_options.tracer wins when set) and into
  // every operator the engine builds.
  if (options.estimator_options.tracer == nullptr) {
    options.estimator_options.tracer = options.tracer;
  }
  // The engine-level thread count flows into every operator it builds
  // (callers using CreateWithOperator configure their operator
  // directly). A non-zero sampling_options.num_threads set explicitly
  // wins, same precedence style as the tracer above.
  if (options.sampling_options.num_threads == 0) {
    options.sampling_options.num_threads = options.num_threads;
  }
  std::unique_ptr<DigestEngine> engine(new DigestEngine(
      graph, db, std::move(spec), querying_node, meter, options));
  engine->supervisor_.SetTracer(options.tracer);
  if (options.auditor != nullptr) {
    DIGEST_RETURN_IF_ERROR(options.auditor->options().Validate());
    options.auditor->SetTracer(options.tracer);
    options.auditor->AttachContract(engine->spec_.precision.delta,
                                    engine->spec_.precision.epsilon,
                                    engine->spec_.precision.confidence);
  }
  if (options.health != nullptr) {
    DIGEST_RETURN_IF_ERROR(options.health->config().Validate());
    options.health->SetTracer(options.tracer);
  }
  engine->shared_operator_ = shared_operator != nullptr;

  // Bottom tier: sample source.
  switch (options.sampler) {
    case SamplerKind::kTwoStageMcmc: {
      SamplingOperator* op = shared_operator;
      if (op == nullptr) {
        engine->sampling_operator_ = std::make_unique<SamplingOperator>(
            graph, ContentSizeWeight(*db), rng.Fork(), meter,
            options.sampling_options);
        engine->sampling_operator_->SetFaultPlan(options.fault_plan);
        engine->sampling_operator_->SetObservability(
            options.tracer, options.registry, options.profiler);
        // The diagnostics watch the content-weighted walks only — the
        // chain whose stationary target the estimator's samples rely on.
        engine->sampling_operator_->SetDiag(options.diag);
        // Like the diagnostics, the health monitor watches (and steers)
        // the content-weighted walks only.
        engine->sampling_operator_->SetHealth(options.health);
        op = engine->sampling_operator_.get();
      }
      // With an external sample source the node owns the sampler (and
      // its RNG stream); building one here would fork a dead stream and
      // bloat the checkpoint with state nobody advances.
      if (options.sample_source == nullptr) {
        engine->two_stage_sampler_ =
            std::make_unique<TwoStageTupleSampler>(db, op, rng.Fork());
        engine->sample_source_ = std::make_unique<TwoStageSampleSource>(
            engine->two_stage_sampler_.get());
      }
      break;
    }
    case SamplerKind::kExactCentral: {
      engine->exact_sampler_ =
          std::make_unique<ExactTupleSampler>(db, rng.Fork(), meter);
      engine->sample_source_ =
          std::make_unique<ExactSampleSource>(engine->exact_sampler_.get());
      break;
    }
  }
  switch (options.size_oracle) {
    case SizeOracleKind::kExact:
      engine->size_oracle_ = std::make_unique<ExactSizeOracle>(db);
      break;
    case SizeOracleKind::kSampled: {
      // The collision estimator needs *uniform* node samples, so it runs
      // its own operator next to the content-size-weighted one.
      engine->uniform_operator_ = std::make_unique<SamplingOperator>(
          graph, UniformWeight(), rng.Fork(), meter,
          options.sampling_options);
      engine->uniform_operator_->SetFaultPlan(options.fault_plan);
      engine->uniform_operator_->SetObservability(
          options.tracer, options.registry, options.profiler);
      engine->size_oracle_ = std::make_unique<CollisionSizeEstimator>(
          db, engine->uniform_operator_.get(), querying_node,
          options.size_estimator_options);
      break;
    }
  }

  // Top tier: snapshot estimator. An external sample source (the
  // node's coalescing wrapper) substitutes for the owned one.
  SampleSource* source = options.sample_source != nullptr
                             ? options.sample_source
                             : engine->sample_source_.get();
  switch (options.estimator) {
    case EstimatorKind::kIndependent:
      engine->estimator_ = std::make_unique<IndependentEstimator>(
          engine->spec_, db, source, engine->size_oracle_.get(), meter,
          rng.Fork(), options.estimator_options);
      break;
    case EstimatorKind::kRepeated:
      engine->estimator_ = std::make_unique<RepeatedSamplingEstimator>(
          engine->spec_, db, source, engine->size_oracle_.get(), meter,
          rng.Fork(), options.estimator_options);
      break;
  }
  return engine;
}

double DigestEngine::correlation_estimate() const {
  const auto* rpt =
      dynamic_cast<const RepeatedSamplingEstimator*>(estimator_.get());
  return rpt != nullptr ? rpt->correlation_estimate() : 0.0;
}

Result<double> DigestEngine::AdjustedPreviousResult() const {
  const auto* rpt =
      dynamic_cast<const RepeatedSamplingEstimator*>(estimator_.get());
  if (rpt == nullptr) {
    return Status::FailedPrecondition(
        "forward regression requires the repeated-sampling estimator");
  }
  return rpt->AdjustedPreviousEstimate();
}

Result<EngineTickResult> DigestEngine::Tick(int64_t t) {
  // Wall-clock accounting of the whole tick (null profiler: no-op, no
  // clock read). Strictly observational — real time never feeds back
  // into scheduling or estimation.
  prof::ScopedTimer tick_timer(options_.profiler, prof::Phase::kEngineTick);
  if (t <= last_tick_) {
    return Status::InvalidArgument("ticks must be strictly increasing");
  }
  last_tick_ = t;
  ++stats_.ticks;

  // The engine owns the tracer's simulated clock: everything emitted
  // below (including by the estimator and sampler during Evaluate) is
  // stamped with this tick.
  if (options_.tracer != nullptr) options_.tracer->set_now(t);
  // The engine also owns the health monitor's virtual clock: breaker
  // cooldowns age in ticks, never in wall time.
  if (options_.health != nullptr) options_.health->set_now(t);
  // Drain quarantine-threshold flips queued by the health monitor's
  // batch folds since the last tick — same one-tick-lag discipline as
  // the audit breach drain below.
  if (options_.health != nullptr) {
    while (options_.health->TakePendingQuarantineFlip()) {
      supervisor_.RecordQuarantineBreach();
    }
  }
  // Drain audit breach flips queued by the drift detectors since the
  // last tick. The one-tick lag keeps the feedback edge deterministic:
  // truth resolution happens after Tick returns, so a breach detected
  // at tick t degrades the session at tick t+1.
  if (options_.auditor != nullptr) {
    while (options_.auditor->TakePendingBreachFlip()) {
      supervisor_.RecordAuditBreach();
    }
  }
  // Every return path closes the tick with one TickEvent — the span the
  // Chrome exporter nests same-tick walk/estimator events under.
  const auto emit_tick = [this](const EngineTickResult& r) {
    if (obs::Tracing(options_.tracer)) {
      options_.tracer->Emit(obs::TickEvent{r.snapshot_executed, r.degraded,
                                           r.result_updated,
                                           r.reported_value,
                                           r.ci_halfwidth});
    }
  };

  EngineTickResult out;
  out.reported_value = reported_value_;
  out.has_result = has_result_;
  out.ci_halfwidth = last_ci_halfwidth_;
  if (has_result_ && t < next_snapshot_tick_) {
    // Between sampling occasions the result holds (§II: X̂[t] = X̂[t_u]),
    // or is presented via the scheduling fit's extrapolation.
    if (options_.report_mode == ReportMode::kExtrapolate) {
      Result<double> value = extrapolator_.ExtrapolatedValue(t);
      if (value.ok()) out.reported_value = *value;
    }
    if (obs::Tracing(options_.tracer)) {
      options_.tracer->Emit(obs::SnapshotSkippedEvent{next_snapshot_tick_});
    }
    if (options_.auditor != nullptr) {
      options_.auditor->RecordSkip(t, out.reported_value, out.ci_halfwidth);
    }
    emit_tick(out);
    return out;
  }

  // Snapshot occasions are costed individually for the auditor's
  // message-cost drift detector (delta of the shared meter around the
  // estimator calls below; 0 without a meter).
  const uint64_t cost_before = meter_ != nullptr ? meter_->Total() : 0;

  // This tick is a sampling occasion: evaluate the snapshot query.
  SnapshotEstimate est;
  Result<SnapshotEstimate> fresh = [&] {
    prof::ScopedTimer timer(options_.profiler,
                            prof::Phase::kEstimatorEvaluate);
    return estimator_->Evaluate(querying_node_);
  }();
  if (fresh.ok()) {
    est = *fresh;
  } else if (fresh.status().code() == StatusCode::kUnavailable) {
    // Fresh sampling could not complete (hop budget timed out under
    // faults, or the overlay is transiently unreachable). Degrade
    // instead of failing the tick: fall back to the retained pool, and
    // failing that hold the previous result under a widening interval.
    Result<SnapshotEstimate> degraded = [&] {
      prof::ScopedTimer timer(options_.profiler,
                              prof::Phase::kEstimatorEvaluate);
      return estimator_->EvaluateDegraded(querying_node_);
    }();
    if (degraded.ok()) {
      est = *degraded;
      est.degraded = true;
      if (obs::Tracing(options_.tracer)) {
        options_.tracer->Emit(
            obs::DegradedFallbackEvent{/*retained_pool=*/true});
      }
    } else if (has_result_) {
      ++stats_.degraded_ticks;
      out.degraded = true;
      // The occasion produced nothing usable at all: the worst outcome
      // the supervisor tracks.
      supervisor_.RecordOutcome(SnapshotOutcome::kTimeout);
      // Every consecutive failed snapshot doubles the uncertainty band:
      // the answer is stale and nothing bounds the drift accumulated
      // while the network is unreachable.
      const double ci_before = last_ci_halfwidth_;
      last_ci_halfwidth_ =
          2.0 * std::max(last_ci_halfwidth_, spec_.precision.epsilon);
      out.ci_halfwidth = last_ci_halfwidth_;
      next_snapshot_tick_ = t + 1;  // Retry promptly.
      if (obs::Tracing(options_.tracer)) {
        options_.tracer->Emit(
            obs::DegradedFallbackEvent{/*retained_pool=*/false});
        options_.tracer->Emit(
            obs::CiWidenedEvent{ci_before, last_ci_halfwidth_});
      }
      if (options_.auditor != nullptr) {
        options_.auditor->RecordTimeout(
            t, reported_value_, last_ci_halfwidth_,
            (meter_ != nullptr ? meter_->Total() : 0) - cost_before,
            static_cast<int>(supervisor_.health()));
      }
      emit_tick(out);
      return out;
    } else {
      // No previous result to hold: the query cannot answer yet.
      return fresh.status();
    }
  } else {
    return fresh.status();
  }
  ++stats_.snapshots;
  stats_.total_samples += est.total_samples;
  stats_.fresh_samples += est.fresh_samples;
  stats_.retained_samples += est.retained_samples;
  if (est.degraded) ++stats_.degraded_ticks;
  if (est.partial) ++stats_.partial_snapshots;
  out.snapshot_executed = true;
  out.degraded = est.degraded;
  out.partial = est.partial;
  // Fold this occasion's outcome into the session-health machine. The
  // supervisor observes; it never steers scheduling or estimation.
  supervisor_.RecordOutcome(est.degraded  ? SnapshotOutcome::kWidenedCi
                            : est.partial ? SnapshotOutcome::kPartial
                                          : SnapshotOutcome::kMetContract);
  if (obs::Tracing(options_.tracer)) {
    options_.tracer->Emit(obs::SnapshotEvent{
        est.value, est.ci_halfwidth,
        static_cast<uint64_t>(est.total_samples),
        static_cast<uint64_t>(est.fresh_samples),
        static_cast<uint64_t>(est.retained_samples), est.degraded});
  }
  if (options_.registry != nullptr) {
    options_.registry
        ->GetHistogram("engine.snapshot.samples",
                       obs::ExponentialBuckets(1.0, 2.0, 20))
        ->Observe(static_cast<double>(est.total_samples));
    options_.registry->GetGauge("engine.rho_hat")
        ->Set(correlation_estimate());
  }

  if (!est.degraded) {
    prof::ScopedTimer timer(options_.profiler,
                            prof::Phase::kExtrapolatorFit);
    DIGEST_RETURN_IF_ERROR(extrapolator_.AddObservation(t, est.value));
  }

  // Resolution semantics: report only moves of at least δ.
  if (!has_result_ ||
      std::fabs(est.value - reported_value_) >= spec_.precision.delta) {
    reported_value_ = est.value;
    has_result_ = true;
    ++stats_.result_updates;
    out.result_updated = true;
  }
  out.reported_value = reported_value_;
  out.has_result = true;

  // Healthy occasions meet the (ε, p) contract; degraded and partial
  // occasions report their honest, wider interval (never narrower
  // than ε).
  last_ci_halfwidth_ =
      est.degraded || est.partial
          ? std::max(spec_.precision.epsilon, est.ci_halfwidth)
          : spec_.precision.epsilon;
  out.ci_halfwidth = last_ci_halfwidth_;

  if (options_.auditor != nullptr) {
    audit::SnapshotObservation obs;
    obs.tick = t;
    obs.estimate = est.value;
    obs.ci_halfwidth = last_ci_halfwidth_;
    obs.degraded = est.degraded;
    obs.partial = est.partial;
    obs.total_samples = static_cast<uint64_t>(est.total_samples);
    obs.fresh_samples = static_cast<uint64_t>(est.fresh_samples);
    obs.retained_samples = static_cast<uint64_t>(est.retained_samples);
    obs.message_cost =
        (meter_ != nullptr ? meter_->Total() : 0) - cost_before;
    obs.health = static_cast<int>(supervisor_.health());
    // Stationary-gap breaches observed by the sampler diagnostics since
    // the previous occasion: a miss here is the chain's fault, not the
    // variance model's.
    obs.mixing_breach = options_.diag != nullptr &&
                        options_.diag->TakeBreachSinceLastRead();
    // Quarantined peers since the previous occasion: the sample frame
    // excluded part of the overlay, so a miss here is attributed to
    // peer_quarantine rather than the variance model.
    obs.quarantine = options_.health != nullptr &&
                     options_.health->TakeQuarantineSinceLastRead();
    options_.auditor->RecordSnapshot(obs);
  }

  if (est.degraded) {
    // A degraded occasion never feeds the scheduling fit; retry a full
    // snapshot at the next tick.
    next_snapshot_tick_ = t + 1;
    last_gap_ = 1;
    emit_tick(out);
    return out;
  }

  // Schedule the next sampling occasion.
  switch (options_.scheduler) {
    case SchedulerKind::kAll:
      next_snapshot_tick_ = t + 1;
      break;
    case SchedulerKind::kPred: {
      // Covers the Eq. 4 gap search plus the fitted-value evaluations
      // the trace emission performs — all extrapolation work.
      prof::ScopedTimer timer(options_.profiler,
                              prof::Phase::kExtrapolatorPredict);
      if (options_.strict_resolution) {
        // Strict mode: the crossing is measured from the running result
        // X̂[t_u], so drift accumulated across non-updating snapshots
        // counts toward δ.
        DIGEST_ASSIGN_OR_RETURN(next_snapshot_tick_,
                                extrapolator_.PredictNextSnapshotTime(
                                    spec_.precision.delta, reported_value_));
        if (!out.result_updated) {
          // The predicted crossing did not materialize: the aggregate is
          // approaching the threshold (or the fit misjudged it). Do not
          // let a fresh long-range prediction outgrow the gap that led
          // here — otherwise a flat fit can postpone the crossing
          // indefinitely while real drift accumulates.
          next_snapshot_tick_ = std::min(
              next_snapshot_tick_, t + std::max<int64_t>(last_gap_, 1));
        }
      } else {
        // Paper-faithful mode: drift measured from the latest snapshot
        // (the fitted P_n at its last point), per the idealized reading
        // of Eq. 4 in which every predicted crossing materializes.
        DIGEST_ASSIGN_OR_RETURN(
            next_snapshot_tick_,
            extrapolator_.PredictNextSnapshotTime(spec_.precision.delta));
      }
      if (next_snapshot_tick_ <= t) next_snapshot_tick_ = t + 1;
      last_gap_ = next_snapshot_tick_ - t;
      if (obs::Tracing(options_.tracer)) {
        // Drift the fit predicts over the chosen gap. Pure function of
        // the fitted polynomial — tracing consumes no RNG.
        double drift = 0.0;
        Result<double> at_next =
            extrapolator_.ExtrapolatedValue(next_snapshot_tick_);
        Result<double> at_now = extrapolator_.ExtrapolatedValue(t);
        if (at_next.ok() && at_now.ok()) drift = *at_next - *at_now;
        const int64_t order =
            extrapolator_.Bootstrapped()
                ? static_cast<int64_t>(
                      options_.extrapolator.history_points) - 1
                : 0;
        options_.tracer->Emit(obs::GapPredictedEvent{
            last_gap_, next_snapshot_tick_, order, drift,
            options_.strict_resolution});
      }
      break;
    }
  }
  emit_tick(out);
  return out;
}

}  // namespace digest
