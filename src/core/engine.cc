#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sampling/size_estimator.h"

namespace digest {

DigestEngine::DigestEngine(const Graph* graph, const P2PDatabase* db,
                           ContinuousQuerySpec spec, NodeId querying_node,
                           MessageMeter* meter, DigestEngineOptions options)
    : graph_(graph),
      db_(db),
      spec_(std::move(spec)),
      querying_node_(querying_node),
      meter_(meter),
      options_(options),
      extrapolator_(options.extrapolator) {}

Result<std::unique_ptr<DigestEngine>> DigestEngine::Create(
    const Graph* graph, const P2PDatabase* db, ContinuousQuerySpec spec,
    NodeId querying_node, Rng rng, MessageMeter* meter,
    DigestEngineOptions options) {
  return CreateWithOperator(graph, db, std::move(spec), querying_node, rng,
                            meter, /*shared_operator=*/nullptr, options);
}

Result<std::unique_ptr<DigestEngine>> DigestEngine::CreateWithOperator(
    const Graph* graph, const P2PDatabase* db, ContinuousQuerySpec spec,
    NodeId querying_node, Rng rng, MessageMeter* meter,
    SamplingOperator* shared_operator, DigestEngineOptions options) {
  DIGEST_RETURN_IF_ERROR(spec.precision.Validate());
  if (!graph->HasNode(querying_node)) {
    return Status::InvalidArgument("querying node is not in the network");
  }
  if (shared_operator != nullptr &&
      options.sampler != SamplerKind::kTwoStageMcmc) {
    return Status::InvalidArgument(
        "a shared sampling operator requires the two-stage MCMC sampler");
  }
  std::unique_ptr<DigestEngine> engine(new DigestEngine(
      graph, db, std::move(spec), querying_node, meter, options));

  // Bottom tier: sample source.
  switch (options.sampler) {
    case SamplerKind::kTwoStageMcmc: {
      SamplingOperator* op = shared_operator;
      if (op == nullptr) {
        engine->sampling_operator_ = std::make_unique<SamplingOperator>(
            graph, ContentSizeWeight(*db), rng.Fork(), meter,
            options.sampling_options);
        engine->sampling_operator_->SetFaultPlan(options.fault_plan);
        op = engine->sampling_operator_.get();
      }
      engine->two_stage_sampler_ =
          std::make_unique<TwoStageTupleSampler>(db, op, rng.Fork());
      engine->sample_source_ = std::make_unique<TwoStageSampleSource>(
          engine->two_stage_sampler_.get());
      break;
    }
    case SamplerKind::kExactCentral: {
      engine->exact_sampler_ =
          std::make_unique<ExactTupleSampler>(db, rng.Fork(), meter);
      engine->sample_source_ =
          std::make_unique<ExactSampleSource>(engine->exact_sampler_.get());
      break;
    }
  }
  switch (options.size_oracle) {
    case SizeOracleKind::kExact:
      engine->size_oracle_ = std::make_unique<ExactSizeOracle>(db);
      break;
    case SizeOracleKind::kSampled: {
      // The collision estimator needs *uniform* node samples, so it runs
      // its own operator next to the content-size-weighted one.
      engine->uniform_operator_ = std::make_unique<SamplingOperator>(
          graph, UniformWeight(), rng.Fork(), meter,
          options.sampling_options);
      engine->uniform_operator_->SetFaultPlan(options.fault_plan);
      engine->size_oracle_ = std::make_unique<CollisionSizeEstimator>(
          db, engine->uniform_operator_.get(), querying_node,
          options.size_estimator_options);
      break;
    }
  }

  // Top tier: snapshot estimator.
  switch (options.estimator) {
    case EstimatorKind::kIndependent:
      engine->estimator_ = std::make_unique<IndependentEstimator>(
          engine->spec_, db, engine->sample_source_.get(),
          engine->size_oracle_.get(), meter, rng.Fork(),
          options.estimator_options);
      break;
    case EstimatorKind::kRepeated:
      engine->estimator_ = std::make_unique<RepeatedSamplingEstimator>(
          engine->spec_, db, engine->sample_source_.get(),
          engine->size_oracle_.get(), meter, rng.Fork(),
          options.estimator_options);
      break;
  }
  return engine;
}

double DigestEngine::correlation_estimate() const {
  const auto* rpt =
      dynamic_cast<const RepeatedSamplingEstimator*>(estimator_.get());
  return rpt != nullptr ? rpt->correlation_estimate() : 0.0;
}

Result<double> DigestEngine::AdjustedPreviousResult() const {
  const auto* rpt =
      dynamic_cast<const RepeatedSamplingEstimator*>(estimator_.get());
  if (rpt == nullptr) {
    return Status::FailedPrecondition(
        "forward regression requires the repeated-sampling estimator");
  }
  return rpt->AdjustedPreviousEstimate();
}

Result<EngineTickResult> DigestEngine::Tick(int64_t t) {
  if (t <= last_tick_) {
    return Status::InvalidArgument("ticks must be strictly increasing");
  }
  last_tick_ = t;
  ++stats_.ticks;

  EngineTickResult out;
  out.reported_value = reported_value_;
  out.has_result = has_result_;
  out.ci_halfwidth = last_ci_halfwidth_;
  if (has_result_ && t < next_snapshot_tick_) {
    // Between sampling occasions the result holds (§II: X̂[t] = X̂[t_u]),
    // or is presented via the scheduling fit's extrapolation.
    if (options_.report_mode == ReportMode::kExtrapolate) {
      Result<double> value = extrapolator_.ExtrapolatedValue(t);
      if (value.ok()) out.reported_value = *value;
    }
    return out;
  }

  // This tick is a sampling occasion: evaluate the snapshot query.
  SnapshotEstimate est;
  Result<SnapshotEstimate> fresh = estimator_->Evaluate(querying_node_);
  if (fresh.ok()) {
    est = *fresh;
  } else if (fresh.status().code() == StatusCode::kUnavailable) {
    // Fresh sampling could not complete (hop budget timed out under
    // faults, or the overlay is transiently unreachable). Degrade
    // instead of failing the tick: fall back to the retained pool, and
    // failing that hold the previous result under a widening interval.
    Result<SnapshotEstimate> degraded =
        estimator_->EvaluateDegraded(querying_node_);
    if (degraded.ok()) {
      est = *degraded;
      est.degraded = true;
    } else if (has_result_) {
      ++stats_.degraded_ticks;
      out.degraded = true;
      // Every consecutive failed snapshot doubles the uncertainty band:
      // the answer is stale and nothing bounds the drift accumulated
      // while the network is unreachable.
      last_ci_halfwidth_ =
          2.0 * std::max(last_ci_halfwidth_, spec_.precision.epsilon);
      out.ci_halfwidth = last_ci_halfwidth_;
      next_snapshot_tick_ = t + 1;  // Retry promptly.
      return out;
    } else {
      // No previous result to hold: the query cannot answer yet.
      return fresh.status();
    }
  } else {
    return fresh.status();
  }
  ++stats_.snapshots;
  stats_.total_samples += est.total_samples;
  stats_.fresh_samples += est.fresh_samples;
  stats_.retained_samples += est.retained_samples;
  if (est.degraded) ++stats_.degraded_ticks;
  out.snapshot_executed = true;
  out.degraded = est.degraded;

  if (!est.degraded) {
    DIGEST_RETURN_IF_ERROR(extrapolator_.AddObservation(t, est.value));
  }

  // Resolution semantics: report only moves of at least δ.
  if (!has_result_ ||
      std::fabs(est.value - reported_value_) >= spec_.precision.delta) {
    reported_value_ = est.value;
    has_result_ = true;
    ++stats_.result_updates;
    out.result_updated = true;
  }
  out.reported_value = reported_value_;
  out.has_result = true;

  // Healthy occasions meet the (ε, p) contract; degraded occasions
  // report their honest, wider interval (never narrower than ε).
  last_ci_halfwidth_ =
      est.degraded ? std::max(spec_.precision.epsilon, est.ci_halfwidth)
                   : spec_.precision.epsilon;
  out.ci_halfwidth = last_ci_halfwidth_;

  if (est.degraded) {
    // A degraded occasion never feeds the scheduling fit; retry a full
    // snapshot at the next tick.
    next_snapshot_tick_ = t + 1;
    last_gap_ = 1;
    return out;
  }

  // Schedule the next sampling occasion.
  switch (options_.scheduler) {
    case SchedulerKind::kAll:
      next_snapshot_tick_ = t + 1;
      break;
    case SchedulerKind::kPred: {
      if (options_.strict_resolution) {
        // Strict mode: the crossing is measured from the running result
        // X̂[t_u], so drift accumulated across non-updating snapshots
        // counts toward δ.
        DIGEST_ASSIGN_OR_RETURN(next_snapshot_tick_,
                                extrapolator_.PredictNextSnapshotTime(
                                    spec_.precision.delta, reported_value_));
        if (!out.result_updated) {
          // The predicted crossing did not materialize: the aggregate is
          // approaching the threshold (or the fit misjudged it). Do not
          // let a fresh long-range prediction outgrow the gap that led
          // here — otherwise a flat fit can postpone the crossing
          // indefinitely while real drift accumulates.
          next_snapshot_tick_ = std::min(
              next_snapshot_tick_, t + std::max<int64_t>(last_gap_, 1));
        }
      } else {
        // Paper-faithful mode: drift measured from the latest snapshot
        // (the fitted P_n at its last point), per the idealized reading
        // of Eq. 4 in which every predicted crossing materializes.
        DIGEST_ASSIGN_OR_RETURN(
            next_snapshot_tick_,
            extrapolator_.PredictNextSnapshotTime(spec_.precision.delta));
      }
      if (next_snapshot_tick_ <= t) next_snapshot_tick_ = t + 1;
      last_gap_ = next_snapshot_tick_ - t;
      break;
    }
  }
  return out;
}

}  // namespace digest
