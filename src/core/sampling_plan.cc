#include "core/sampling_plan.h"

#include <cmath>

namespace digest {
namespace {

constexpr double kMaxPlanningRho = 0.99;

size_t CeilPositive(double x) {
  if (!(x > 0.0)) return 1;
  return static_cast<size_t>(std::ceil(x));
}

}  // namespace

Result<size_t> CltSampleSize(double sigma, double epsilon, double z) {
  if (sigma < 0.0) {
    return Status::InvalidArgument("sigma must be >= 0");
  }
  if (!(epsilon > 0.0) || !(z > 0.0)) {
    return Status::InvalidArgument("epsilon and z must be > 0");
  }
  const double ratio = z * sigma / epsilon;
  return CeilPositive(ratio * ratio);
}

Result<size_t> HoeffdingSampleSize(double range, double epsilon,
                                   double confidence) {
  if (!(range > 0.0) || !(epsilon > 0.0)) {
    return Status::InvalidArgument("range and epsilon must be > 0");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::InvalidArgument("confidence must be in (0, 1)");
  }
  const double n = std::log(2.0 / (1.0 - confidence)) * range * range /
                   (2.0 * epsilon * epsilon);
  return CeilPositive(n);
}

Result<RepeatedSamplingPlan> PlanRepeatedOccasion(double sigma, double rho,
                                                  double epsilon,
                                                  double z) {
  if (sigma < 0.0) {
    return Status::InvalidArgument("sigma must be >= 0");
  }
  if (!(epsilon > 0.0) || !(z > 0.0)) {
    return Status::InvalidArgument("epsilon and z must be > 0");
  }
  double rho2 = rho * rho;
  rho2 = std::min(rho2, kMaxPlanningRho * kMaxPlanningRho);
  const double root = std::sqrt(1.0 - rho2);
  // Eq. 10: var_min = σ²(1+√(1−ρ²))/(2n) ≤ (ε/z)².
  const double n_raw =
      sigma * sigma * (1.0 + root) * z * z / (2.0 * epsilon * epsilon);
  RepeatedSamplingPlan plan;
  plan.total = CeilPositive(n_raw);
  // Eq. 9 (corrected; the paper's print swaps g and f — see
  // EXPERIMENTS.md): f_opt = n/(1+r), g_opt = n·r/(1+r).
  plan.retained = static_cast<size_t>(
      static_cast<double>(plan.total) * root / (1.0 + root));
  plan.fresh = plan.total - plan.retained;
  return plan;
}

Result<double> CombinedVarianceFactor(size_t n, size_t fresh, double rho) {
  if (fresh == 0 || fresh > n) {
    return Status::InvalidArgument("need 0 < fresh <= n");
  }
  if (std::fabs(rho) > 1.0) {
    return Status::InvalidArgument("|rho| must be <= 1");
  }
  const double nd = static_cast<double>(n);
  const double fd = static_cast<double>(fresh);
  const double rho2 = rho * rho;
  // Eq. 8 in the fresh-portion form: var = σ²(n − ρ²f)/(n² − ρ²f²).
  return (nd - rho2 * fd) / (nd * nd - rho2 * fd * fd);
}

double OptimalImprovementRatio(double rho) {
  const double rho2 = std::min(rho * rho, 1.0);
  return 2.0 / (1.0 + std::sqrt(1.0 - rho2));
}

}  // namespace digest
