#ifndef DIGEST_CORE_DIGEST_NODE_H_
#define DIGEST_CORE_DIGEST_NODE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/engine.h"

namespace digest {

/// Identifier of a continuous query registered at a DigestNode.
using QueryId = uint64_t;

/// The per-peer Digest runtime of §III ("each node of the peer-to-peer
/// database operates its own individual instance of Digest to answer the
/// continuous queries received from the local user"): one sampling
/// operator per node, shared by any number of concurrently running
/// continuous queries. Sharing matters because the operator keeps its
/// random-walk agents warm — every query's samples after the first cost
/// only the reset time.
class DigestNode {
 public:
  /// Builds the runtime at `self`. The graph and database must outlive
  /// it. `meter` may be null; all queries charge the same meter.
  static Result<std::unique_ptr<DigestNode>> Create(
      const Graph* graph, const P2PDatabase* db, NodeId self, Rng rng,
      MessageMeter* meter, DigestEngineOptions default_options = {});

  /// Registers a continuous query with the node's default options.
  Result<QueryId> IssueQuery(ContinuousQuerySpec spec);

  /// Registers a continuous query with explicit options. The sampler
  /// kind must match the node's default (the operator is shared).
  Result<QueryId> IssueQuery(ContinuousQuerySpec spec,
                             DigestEngineOptions options);

  /// Stops and forgets a query. Fails with kNotFound for unknown ids.
  Status CancelQuery(QueryId id);

  /// Advances every active query to tick `t` (strictly increasing per
  /// query; queries issued later simply start later). Returns one entry
  /// per active query, in issue order.
  Result<std::vector<std::pair<QueryId, EngineTickResult>>> Tick(int64_t t);

  /// Read access to one query's engine; fails with kNotFound.
  Result<const DigestEngine*> engine(QueryId id) const;

  /// Number of active queries.
  size_t active_queries() const { return engines_.size(); }

  /// The node this runtime lives on.
  NodeId self() const { return self_; }

 private:
  DigestNode(const Graph* graph, const P2PDatabase* db, NodeId self,
             MessageMeter* meter, DigestEngineOptions default_options)
      : graph_(graph),
        db_(db),
        self_(self),
        meter_(meter),
        default_options_(default_options) {}

  const Graph* graph_;
  const P2PDatabase* db_;
  NodeId self_;
  MessageMeter* meter_;
  DigestEngineOptions default_options_;
  Rng rng_{0};

  std::unique_ptr<SamplingOperator> operator_;  // Shared by all queries.
  std::map<QueryId, std::unique_ptr<DigestEngine>> engines_;
  QueryId next_id_ = 1;
};

}  // namespace digest

#endif  // DIGEST_CORE_DIGEST_NODE_H_
