#ifndef DIGEST_CORE_DIGEST_NODE_H_
#define DIGEST_CORE_DIGEST_NODE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "core/query_scheduler.h"

namespace digest {

/// Node-level runtime policy (the engine-level knobs stay per query in
/// DigestEngineOptions).
struct DigestNodeOptions {
  /// Admission cap: IssueQuery past this fails with kFailedPrecondition
  /// instead of letting one tenant starve the shared operator.
  size_t max_queries = 64;

  /// true: same-tick snapshot demands coalesce into one shared walk
  /// batch through a CoalescingSampleSource (the §III shared-operator
  /// architecture taken to its conclusion — one sample pool per
  /// occasion tick, every due query's estimator consumes it through
  /// its own (ε, p) plan). false: warm-pool-only ablation — queries
  /// share the operator's warm agents but each draws its own batch.
  bool coalesce_snapshots = true;
};

/// The per-peer Digest runtime of §III ("each node of the peer-to-peer
/// database operates its own individual instance of Digest to answer the
/// continuous queries received from the local user"): one sampling
/// operator per node, shared by an admission-controlled registry of
/// concurrently running continuous queries. Sharing matters twice over:
/// the operator keeps its random-walk agents warm (every query's samples
/// after the first cost only the reset time), and with coalescing on,
/// queries whose snapshot occasions land on the same tick split one walk
/// batch — the tightest-ε tenant sizes it, the rest ride its prefix.
///
/// Observability: the node drives one real tracer (default options) and
/// hands each engine a per-query lane view of it (lane = QueryId), so a
/// single trace carries every tenant's events separably; shared-operator
/// events stay unlaned. Per-query auditors are the caller's to supply
/// via per-query options — an auditor pins one (δ, ε, p) contract, so
/// sharing one across queries of different precisions is an error.
/// Cost attribution: each engine tick's MessageMeter delta is charged to
/// that query in the scheduler's ledger, so the node's single meter
/// reconciles exactly into per-tenant shares.
class DigestNode {
 public:
  /// Builds the runtime at `self`. The graph and database must outlive
  /// it. `meter` may be null; all queries charge the same meter, with
  /// per-query attribution kept by the scheduler.
  static Result<std::unique_ptr<DigestNode>> Create(
      const Graph* graph, const P2PDatabase* db, NodeId self, Rng rng,
      MessageMeter* meter, DigestEngineOptions default_options = {},
      DigestNodeOptions node_options = {});

  /// Registers a continuous query with the node's default options.
  Result<QueryId> IssueQuery(ContinuousQuerySpec spec);

  /// Registers a continuous query with explicit options. The sampler
  /// kind must match the node's default (the operator is shared).
  /// Fails with kFailedPrecondition at the admission cap.
  Result<QueryId> IssueQuery(ContinuousQuerySpec spec,
                             DigestEngineOptions options);

  /// Stops and forgets a query. Fails with kNotFound for unknown ids.
  Status CancelQuery(QueryId id);

  /// Advances every active query to tick `t` (strictly increasing per
  /// query; queries issued later simply start later). Due queries run
  /// tightest-ε first over the tick's shared sample pool; the result
  /// list is returned sorted by QueryId regardless. Emits one
  /// SnapshotCoalescedEvent (unlaned) when >= 2 due queries shared a
  /// batch.
  Result<std::vector<std::pair<QueryId, EngineTickResult>>> Tick(int64_t t);

  /// Read access to one query's engine; fails with kNotFound.
  Result<const DigestEngine*> engine(QueryId id) const;

  /// Per-query cumulative attribution; fails with kNotFound.
  Result<QueryCost> query_cost(QueryId id) const;

  /// Number of active queries.
  size_t active_queries() const { return engines_.size(); }

  /// Ticks on which >= 2 due queries shared one walk batch.
  uint64_t coalesced_ticks() const { return scheduler_.coalesced_ticks(); }

  /// The node this runtime lives on.
  NodeId self() const { return self_; }

  /// The node's runtime policy.
  const DigestNodeOptions& node_options() const { return node_options_; }

  /// Serializes the whole node — scheduler ledger, the shared
  /// operator's warm agents and RNG, the shared sampler's RNG, the
  /// node RNG, and every query's full engine checkpoint — into one
  /// versioned JSON blob ("digest-node-checkpoint-v1"). A node restored
  /// from it replays the exact tick/draw sequence an uninterrupted run
  /// would have produced, at any num_threads.
  Result<std::string> Checkpoint() const;

  /// Restores a checkpoint produced by a node of identical construction
  /// (same graph, database, seed, options, and issue history: query ids
  /// and specs must match). All state is parsed before any is
  /// installed; mismatches fail with InvalidArgument and leave the node
  /// untouched.
  Status Restore(std::string_view blob);

 private:
  DigestNode(const Graph* graph, const P2PDatabase* db, NodeId self,
             MessageMeter* meter, DigestEngineOptions default_options,
             DigestNodeOptions node_options)
      : graph_(graph),
        db_(db),
        self_(self),
        meter_(meter),
        default_options_(default_options),
        node_options_(node_options) {}

  /// Ticks one engine, charging its meter delta to `id`.
  Result<EngineTickResult> TickOne(QueryId id, int64_t t, bool coalesced);

  /// Publishes node.* gauges/counters into the default registry.
  void ExportRegistry();

  const Graph* graph_;
  const P2PDatabase* db_;
  NodeId self_;
  MessageMeter* meter_;
  DigestEngineOptions default_options_;
  DigestNodeOptions node_options_;
  Rng rng_{0};

  std::unique_ptr<SamplingOperator> operator_;  // Shared by all queries.
  /// Node-owned sampler over the shared operator; the coalescing source
  /// draws through it so every tenant shares one RNG stream. Null when
  /// coalescing is off (each engine then owns a sampler) or the node
  /// runs exact-central queries.
  std::unique_ptr<TwoStageTupleSampler> shared_sampler_;
  std::unique_ptr<CoalescingSampleSource> shared_source_;

  QueryScheduler scheduler_;
  std::map<QueryId, std::unique_ptr<DigestEngine>> engines_;
  /// Per-query lane views over the real tracer, keyed like engines_.
  std::map<QueryId, std::unique_ptr<obs::LaneTracer>> lanes_;
  QueryId next_id_ = 1;
};

}  // namespace digest

#endif  // DIGEST_CORE_DIGEST_NODE_H_
