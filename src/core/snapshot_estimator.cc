#include "core/snapshot_estimator.h"

#include <algorithm>
#include <cmath>

#include "core/sampling_plan.h"
#include "numeric/normal.h"
#include "numeric/stats.h"
#include "obs/tracer.h"

namespace digest {
namespace {

// ceil of a positive double into size_t with sane bounds.
size_t CeilToCount(double x, size_t lo, size_t hi) {
  if (!(x > 0.0)) return lo;
  const double c = std::ceil(x);
  if (c >= static_cast<double>(hi)) return hi;
  return std::max(lo, static_cast<size_t>(c));
}

}  // namespace

IndependentEstimator::IndependentEstimator(const ContinuousQuerySpec& spec,
                                           const P2PDatabase* db,
                                           SampleSource* source,
                                           SizeOracle* size_oracle,
                                           MessageMeter* meter, Rng rng,
                                           EstimatorOptions options)
    : spec_(spec),
      db_(db),
      source_(source),
      size_oracle_(size_oracle),
      meter_(meter),
      rng_(rng),
      options_(options),
      bound_expression_(spec.query.expression),
      bound_where_(spec.query.where) {}

Status IndependentEstimator::EnsureInitialized() {
  if (initialized_) return Status::OK();
  DIGEST_RETURN_IF_ERROR(spec_.precision.Validate());
  DIGEST_RETURN_IF_ERROR(bound_expression_.Bind(db_->schema()));
  DIGEST_RETURN_IF_ERROR(bound_where_.Bind(db_->schema()));
  DIGEST_ASSIGN_OR_RETURN(z_, TwoSidedZ(spec_.precision.confidence));
  if (options_.pilot_samples < 2) {
    return Status::InvalidArgument("pilot sample size must be >= 2");
  }
  initialized_ = true;
  return Status::OK();
}

Result<double> IndependentEstimator::MeanEpsilon() const {
  switch (spec_.query.op) {
    case AggregateOp::kAvg:
      return spec_.precision.epsilon;
    case AggregateOp::kMedian:
      // For quantile queries ε is a *rank* tolerance: the returned value
      // lies between the (½−ε)- and (½+ε)-quantiles w.p. ≥ p.
      if (!(spec_.precision.epsilon < 0.5)) {
        return Status::InvalidArgument(
            "MEDIAN interprets epsilon as a rank tolerance in (0, 0.5)");
      }
      return spec_.precision.epsilon;
    case AggregateOp::kSum:
    case AggregateOp::kCount: {
      if (size_oracle_ == nullptr) {
        return Status::FailedPrecondition(
            "SUM/COUNT queries require a SizeOracle");
      }
      // The SUM estimate is N·Ŷ, so a query-unit tolerance of ε means a
      // per-tuple-mean tolerance of ε/N.
      Result<double> n = size_oracle_->EstimateRelationSize();
      if (!n.ok()) return n.status();
      if (*n <= 0.0) {
        return Status::FailedPrecondition("relation size estimate is zero");
      }
      return spec_.precision.epsilon / *n;
    }
  }
  return Status::Internal("unhandled aggregate op");
}

Result<double> IndependentEstimator::ScaleToQueryUnits(double mean) const {
  switch (spec_.query.op) {
    case AggregateOp::kAvg:
    case AggregateOp::kMedian:
      return mean;
    case AggregateOp::kSum:
    case AggregateOp::kCount: {
      if (size_oracle_ == nullptr) {
        return Status::FailedPrecondition(
            "SUM/COUNT queries require a SizeOracle");
      }
      Result<double> n = size_oracle_->EstimateRelationSize();
      if (!n.ok()) return n.status();
      return *n * mean;
    }
  }
  return Status::Internal("unhandled aggregate op");
}

Result<std::optional<double>> IndependentEstimator::ContributionValue(
    const Tuple& tuple) const {
  DIGEST_ASSIGN_OR_RETURN(bool qualifies, bound_where_.Evaluate(tuple));
  switch (spec_.query.op) {
    case AggregateOp::kAvg:
    case AggregateOp::kMedian: {
      // Conditional statistic over the qualifying subpopulation.
      if (!qualifies) return std::optional<double>();
      Result<double> y = YValue(tuple);
      if (!y.ok()) return y.status();
      return std::optional<double>(*y);
    }
    case AggregateOp::kSum: {
      if (!qualifies) return std::optional<double>(0.0);
      Result<double> y = YValue(tuple);
      if (!y.ok()) return y.status();
      return std::optional<double>(*y);
    }
    case AggregateOp::kCount:
      return std::optional<double>(qualifies ? 1.0 : 0.0);
  }
  return Status::Internal("unhandled aggregate op");
}

Result<SnapshotEstimate> IndependentEstimator::Evaluate(NodeId origin) {
  DIGEST_RETURN_IF_ERROR(EnsureInitialized());
  DIGEST_ASSIGN_OR_RETURN(double eps_mean, MeanEpsilon());

  std::vector<TupleSample> samples;  // Contributing samples only.
  std::vector<double> ys;
  RunningStats stats;
  size_t drawn_total = 0;
  bool partial = false;      // Hop budget ran out mid-occasion.
  size_t planned_total = 0;  // Contributing count wanted at the cutoff.

  // Draws until `count` *contributing* samples have been collected (for
  // a predicated AVG, non-qualifying draws cost traffic but are skipped).
  // Under allow_partial a hop-budget timeout sets `partial` and stops
  // drawing instead of failing; the identical draw sequence makes the
  // two modes bit-equal whenever no timeout fires.
  auto draw = [&](size_t count) -> Status {
    size_t guard = 0;
    while (count > 0 && !partial) {
      if (++guard > 200) {
        return Status::Unavailable(
            "predicate selectivity too low: could not collect the "
            "required qualifying samples");
      }
      if (options_.allow_partial) {
        DIGEST_ASSIGN_OR_RETURN(PartialTupleBatch batch,
                                source_->DrawFreshPartial(origin, count));
        drawn_total += batch.samples.size();
        for (TupleSample& s : batch.samples) {
          DIGEST_ASSIGN_OR_RETURN(std::optional<double> y,
                                  ContributionValue(s.tuple));
          if (!y.has_value()) continue;
          ys.push_back(*y);
          stats.Add(*y);
          samples.push_back(std::move(s));
          --count;
        }
        if (batch.timed_out) {
          partial = true;
          planned_total = ys.size() + count;
        }
      } else {
        DIGEST_ASSIGN_OR_RETURN(std::vector<TupleSample> batch,
                                source_->DrawFresh(origin, count));
        drawn_total += batch.size();
        for (TupleSample& s : batch) {
          DIGEST_ASSIGN_OR_RETURN(std::optional<double> y,
                                  ContributionValue(s.tuple));
          if (!y.has_value()) continue;
          ys.push_back(*y);
          stats.Add(*y);
          samples.push_back(std::move(s));
          --count;
        }
      }
    }
    return Status::OK();
  };

  if (spec_.query.op == AggregateOp::kMedian) {
    // Quantile estimation by order statistics: the empirical CDF at any
    // point is within ε of the true CDF w.p. ≥ p after
    // n = ln(2/(1−p))/(2ε²) samples (Hoeffding/DKW), so the sample
    // median sits between the true (½±ε)-quantiles.
    DIGEST_ASSIGN_OR_RETURN(
        size_t needed,
        HoeffdingSampleSize(1.0, eps_mean, spec_.precision.confidence));
    needed = std::min(std::max(needed, options_.pilot_samples),
                      options_.max_samples);
    DIGEST_RETURN_IF_ERROR(draw(needed));
  } else if (options_.sample_size_policy == SampleSizePolicy::kHoeffding) {
    // One-shot distribution-free size; no pilot iteration needed.
    DIGEST_ASSIGN_OR_RETURN(
        size_t needed,
        HoeffdingSampleSize(options_.value_range, eps_mean,
                            spec_.precision.confidence));
    needed = std::min(std::max(needed, options_.pilot_samples),
                      options_.max_samples);
    DIGEST_RETURN_IF_ERROR(draw(needed));
  } else {
    DIGEST_RETURN_IF_ERROR(draw(options_.pilot_samples));
    for (size_t round = 0; round < options_.max_rounds && !partial; ++round) {
      const double sigma = stats.SampleStdDev();
      if (sigma == 0.0) break;  // Degenerate population: any n suffices.
      // Eq. 6: n = (z_p σ̂ / ε)².
      DIGEST_ASSIGN_OR_RETURN(size_t clt,
                              CltSampleSize(sigma, eps_mean, z_));
      const size_t needed =
          std::min(std::max(clt, options_.pilot_samples),
                   options_.max_samples);
      if (ys.size() >= needed) break;
      DIGEST_RETURN_IF_ERROR(draw(needed - ys.size()));
    }
  }

  if (partial &&
      ys.size() < std::max<size_t>(2, options_.min_partial_samples)) {
    // Too little arrived before the deadline to finalize honestly; let
    // the engine's degraded-fallback path take over.
    return Status::Unavailable(
        "hop budget exhausted before the minimum partial sample count");
  }

  SnapshotEstimate est;
  if (spec_.query.op == AggregateOp::kMedian) {
    // Sample lower median of the qualifying draws.
    std::vector<double> sorted = ys;
    const size_t mid = (sorted.size() - 1) / 2;
    std::nth_element(sorted.begin(), sorted.begin() + mid, sorted.end());
    est.mean_estimate = sorted[mid];
  } else {
    // CheckedMean: an occasion that somehow collected zero qualifying
    // samples must fail loudly, not report a silent 0.0 aggregate.
    DIGEST_ASSIGN_OR_RETURN(est.mean_estimate, stats.CheckedMean());
  }
  est.sigma = stats.SampleStdDev();
  est.variance_of_mean =
      stats.SampleVariance() / static_cast<double>(std::max<size_t>(1,
                                                   stats.count()));
  est.total_samples = drawn_total;
  est.fresh_samples = drawn_total;
  est.retained_samples = 0;
  est.contributing_samples = ys.size();
  est.partial = partial;
  DIGEST_ASSIGN_OR_RETURN(est.value, ScaleToQueryUnits(est.mean_estimate));
  if (spec_.query.op == AggregateOp::kMedian) {
    if (partial) {
      // Invert the DKW bound at the realized sample count: the honest
      // rank tolerance of the smaller set, wider than ε.
      est.ci_halfwidth =
          std::sqrt(std::log(2.0 / (1.0 - spec_.precision.confidence)) /
                    (2.0 * static_cast<double>(ys.size())));
    } else {
      // The DKW bound delivers the rank-tolerance contract directly.
      est.ci_halfwidth = spec_.precision.epsilon;
    }
  } else {
    DIGEST_ASSIGN_OR_RETURN(
        est.ci_halfwidth,
        ScaleToQueryUnits(z_ * std::sqrt(est.variance_of_mean)));
  }
  // Hand the drawn set to a wrapping repeated-sampling estimator.
  last_samples_ = std::move(samples);
  last_ys_ = std::move(ys);
  if (obs::Tracing(options_.tracer)) {
    // INDEP sizes iteratively from the pilot, so the realized draw count
    // *is* the budget the CLT formula settled on.
    options_.tracer->Emit(obs::SampleBudgetEvent{
        /*repeated=*/false, /*rho_hat=*/0.0, est.sigma,
        static_cast<uint64_t>(drawn_total), /*planned_retained=*/0});
    if (partial) {
      options_.tracer->Emit(obs::PartialSnapshotEvent{
          static_cast<uint64_t>(est.contributing_samples),
          static_cast<uint64_t>(planned_total), est.ci_halfwidth});
    }
  }
  return est;
}

RepeatedSamplingEstimator::RepeatedSamplingEstimator(
    const ContinuousQuerySpec& spec, const P2PDatabase* db,
    SampleSource* source, SizeOracle* size_oracle, MessageMeter* meter,
    Rng rng, EstimatorOptions options)
    : independent_(spec, db, source, size_oracle, meter, rng.Fork(), options),
      db_(db),
      source_(source),
      meter_(meter),
      rng_(rng),
      options_(options) {}

void RepeatedSamplingEstimator::Reset() {
  prev_samples_.clear();
  prev_mean_estimate_ = 0.0;
  prev_variance_ = 0.0;
  rho_hat_ = 0.0;
  sigma_hat_ = 0.0;
  occasion_ = 0;
  last_pair_y1_.clear();
  last_pair_y2_.clear();
}

Result<double> RepeatedSamplingEstimator::AdjustedPreviousEstimate() const {
  if (occasion_ < 2 || last_pair_y1_.size() < 3) {
    return Status::FailedPrecondition(
        "forward regression needs a completed occasion with at least 3 "
        "retained pairs");
  }
  // Regress the previous occasion's values on the current ones — the
  // mirror image of Table 1's reverse regression.
  DIGEST_ASSIGN_OR_RETURN(LinearFit fit, SimpleLinearRegression(
                                             last_pair_y2_, last_pair_y1_));
  DIGEST_ASSIGN_OR_RETURN(
      double rho, PearsonCorrelation(last_pair_y1_, last_pair_y2_));
  const double rho2 = std::min(rho * rho, 0.9801);
  const double g = static_cast<double>(last_pair_y1_.size());
  const double sigma_sq = sigma_hat_ * sigma_hat_;
  const double y_back = Mean(last_pair_y1_) +
                        fit.slope * (after_update_mean_ -
                                     Mean(last_pair_y2_));
  const double var_back = sigma_sq * (1.0 - rho2) / g +
                          rho2 * after_update_var_;
  // Inverse-variance combination with the original occasion-(k−1)
  // estimate.
  const double w_orig =
      before_update_var_ > 0.0 ? 1.0 / before_update_var_ : 0.0;
  const double w_back = var_back > 0.0 ? 1.0 / var_back : 0.0;
  double adjusted_mean;
  if (w_orig + w_back <= 0.0) {
    adjusted_mean = before_update_mean_;
  } else {
    adjusted_mean = (w_orig * before_update_mean_ + w_back * y_back) /
                    (w_orig + w_back);
  }
  return independent_.ScaleToQueryUnits(adjusted_mean);
}

Result<SnapshotEstimate> RepeatedSamplingEstimator::EvaluateFirstOccasion(
    NodeId origin) {
  DIGEST_ASSIGN_OR_RETURN(SnapshotEstimate est,
                          independent_.Evaluate(origin));
  prev_samples_.clear();
  prev_samples_.reserve(independent_.last_samples_.size());
  for (size_t i = 0; i < independent_.last_samples_.size(); ++i) {
    prev_samples_.push_back(Retained{independent_.last_samples_[i].ref,
                                     independent_.last_ys_[i]});
  }
  prev_mean_estimate_ = est.mean_estimate;
  prev_variance_ = est.variance_of_mean;
  sigma_hat_ = est.sigma;
  occasion_ = 1;
  return est;
}

Result<SnapshotEstimate> RepeatedSamplingEstimator::Evaluate(NodeId origin) {
  DIGEST_RETURN_IF_ERROR(independent_.EnsureInitialized());
  if (options_.sample_size_policy == SampleSizePolicy::kHoeffding) {
    return Status::InvalidArgument(
        "repeated sampling plans via the CLT; use the independent "
        "estimator for the Hoeffding policy");
  }
  if (independent_.spec_.query.op == AggregateOp::kMedian) {
    // Regression estimation targets means; quantile snapshots always go
    // through independent sampling (every occasion is a fresh draw).
    return independent_.Evaluate(origin);
  }
  if (occasion_ == 0 || prev_samples_.size() < 4 || sigma_hat_ == 0.0) {
    return EvaluateFirstOccasion(origin);
  }
  const double z = independent_.z_;
  DIGEST_ASSIGN_OR_RETURN(double eps_mean, independent_.MeanEpsilon());

  // Plan the occasion from the running (σ̂, ρ̂): Eq. 10 for the total,
  // Eq. 9 (erratum-corrected; see sampling_plan.h and EXPERIMENTS.md)
  // for the retained/fresh split.
  DIGEST_ASSIGN_OR_RETURN(
      RepeatedSamplingPlan plan,
      PlanRepeatedOccasion(sigma_hat_, rho_hat_, eps_mean, z));
  const size_t n_target = std::min(
      std::max(plan.total, options_.pilot_samples), options_.max_samples);
  size_t g_target = static_cast<size_t>(
      static_cast<double>(n_target) * static_cast<double>(plan.retained) /
      static_cast<double>(std::max<size_t>(plan.total, 1)));
  g_target = std::min(g_target, prev_samples_.size());
  if (obs::Tracing(options_.tracer)) {
    options_.tracer->Emit(obs::SampleBudgetEvent{
        /*repeated=*/true, rho_hat_, sigma_hat_,
        static_cast<uint64_t>(n_target), static_cast<uint64_t>(g_target)});
  }

  // Revisit retained samples: shuffle the previous set and re-evaluate
  // tuples in place. Deleted tuples / departed nodes are skipped and
  // implicitly replaced by fresh samples (§IV-B2).
  for (size_t i = prev_samples_.size(); i > 1; --i) {
    std::swap(prev_samples_[i - 1], prev_samples_[rng_.NextIndex(i)]);
  }
  std::vector<double> y1g, y2g;
  std::vector<Retained> current;  // Next occasion's candidate set.
  y1g.reserve(g_target);
  y2g.reserve(g_target);
  for (const Retained& r : prev_samples_) {
    if (y1g.size() >= g_target) break;
    if (meter_ != nullptr) meter_->AddRefresh(options_.refresh_message_cost);
    Result<Tuple> tuple = db_->GetTuple(r.ref);
    if (!tuple.ok()) continue;  // Deleted or node left: always replaced.
    Result<std::optional<double>> y2 =
        independent_.ContributionValue(*tuple);
    if (!y2.ok() || !y2->has_value()) {
      // For a predicated AVG a tuple that stopped qualifying leaves the
      // qualifying subpopulation — same treatment as a deletion.
      continue;
    }
    y1g.push_back(r.y);
    y2g.push_back(**y2);
    current.push_back(Retained{r.ref, **y2});
  }
  const size_t g = y1g.size();

  std::vector<double> yf;
  std::vector<TupleRef> fresh_refs;
  size_t fresh_drawn_total = 0;
  bool partial = false;        // Hop budget ran out mid-occasion.
  size_t planned_fresh = 0;    // Fresh count wanted at the cutoff.
  auto draw_fresh = [&](size_t count) -> Status {
    size_t guard = 0;
    while (count > 0 && !partial) {
      if (++guard > 200) {
        return Status::Unavailable(
            "predicate selectivity too low: could not collect the "
            "required qualifying samples");
      }
      if (options_.allow_partial) {
        DIGEST_ASSIGN_OR_RETURN(PartialTupleBatch batch,
                                source_->DrawFreshPartial(origin, count));
        fresh_drawn_total += batch.samples.size();
        for (TupleSample& s : batch.samples) {
          DIGEST_ASSIGN_OR_RETURN(std::optional<double> y,
                                  independent_.ContributionValue(s.tuple));
          if (!y.has_value()) continue;
          yf.push_back(*y);
          fresh_refs.push_back(s.ref);
          --count;
        }
        if (batch.timed_out) {
          partial = true;
          planned_fresh = yf.size() + count;
        }
      } else {
        DIGEST_ASSIGN_OR_RETURN(std::vector<TupleSample> batch,
                                source_->DrawFresh(origin, count));
        fresh_drawn_total += batch.size();
        for (TupleSample& s : batch) {
          DIGEST_ASSIGN_OR_RETURN(std::optional<double> y,
                                  independent_.ContributionValue(s.tuple));
          if (!y.has_value()) continue;
          yf.push_back(*y);
          fresh_refs.push_back(s.ref);
          --count;
        }
      }
    }
    return Status::OK();
  };
  const size_t f_initial =
      n_target > g ? n_target - g : std::max<size_t>(1, n_target / 4);
  DIGEST_RETURN_IF_ERROR(draw_fresh(f_initial));
  if (partial && g + yf.size() <
                     std::max<size_t>(2, options_.min_partial_samples)) {
    // Too little material before the deadline; the engine's degraded
    // fallback (retained pool refresh) is the honest answer instead.
    return Status::Unavailable(
        "hop budget exhausted before the minimum partial sample count");
  }

  // Estimate, then top-up fresh samples until the combined variance meets
  // the contract (or caps are hit).
  double combined = 0.0;
  double combined_var = 0.0;
  double sigma2 = 0.0;
  double rho_sample = rho_hat_;
  const double needed_var = (eps_mean / z) * (eps_mean / z);
  for (size_t round = 0;; ++round) {
    const size_t f = yf.size();
    RunningStats all;
    for (double y : y2g) all.Add(y);
    for (double y : yf) all.Add(y);
    sigma2 = all.SampleStdDev();
    const double sigma2_sq = sigma2 * sigma2;

    bool regression_ok = g >= 3;
    double b = 0.0;
    if (regression_ok) {
      Result<LinearFit> fit = SimpleLinearRegression(y1g, y2g);
      Result<double> rho = PearsonCorrelation(y1g, y2g);
      if (fit.ok() && rho.ok()) {
        b = fit->slope;
        rho_sample = *rho;
      } else {
        regression_ok = false;
      }
    }
    if (!regression_ok || f == 0) {
      // Degenerate occasion: fall back to the plain mean of everything.
      combined = all.Mean();
      combined_var =
          all.SampleVariance() / static_cast<double>(std::max<size_t>(1,
                                                     all.count()));
      rho_sample = rho_hat_;
    } else {
      const double ybar1g = Mean(y1g);
      const double ybar2g = Mean(y2g);
      const double ybar2f = Mean(yf);
      const double rho_s2 = std::min(rho_sample * rho_sample, 0.9801);
      // Table 1 (recursive form): the regression estimate leans on the
      // previous occasion's combined estimate and inherits its variance.
      const double y_reg = ybar2g + b * (prev_mean_estimate_ - ybar1g);
      const double var_f = sigma2_sq / static_cast<double>(f);
      const double var_g = sigma2_sq * (1.0 - rho_s2) / static_cast<double>(g)
                           + rho_s2 * prev_variance_;
      if (sigma2_sq == 0.0) {
        combined = ybar2f;
        combined_var = 0.0;
      } else {
        const double wf = var_f > 0.0 ? 1.0 / var_f : 0.0;
        const double wg = var_g > 0.0 ? 1.0 / var_g : 0.0;
        if (wf + wg <= 0.0) {
          combined = all.Mean();
          combined_var = 0.0;
        } else {
          combined = (wf * ybar2f + wg * y_reg) / (wf + wg);
          combined_var = 1.0 / (wf + wg);
        }
      }
    }
    const size_t total = g + yf.size();
    if (partial || combined_var <= needed_var ||
        round + 1 >= options_.max_rounds ||
        total >= options_.max_samples || sigma2 == 0.0) {
      break;
    }
    // Solve for the fresh count that brings the combined variance to the
    // contract: 1/var_total = 1/var_g + f/σ², so
    // f_req = σ²·(1/needed_var − 1/var_g).
    const double rho_s2 = std::min(rho_sample * rho_sample, 0.9801);
    const double var_g = sigma2 * sigma2 * (1.0 - rho_s2) /
                             static_cast<double>(std::max<size_t>(1, g)) +
                         rho_s2 * prev_variance_;
    double inv_var_g = var_g > 0.0 ? 1.0 / var_g : 0.0;
    double f_req = sigma2 * sigma2 * (1.0 / needed_var - inv_var_g);
    size_t f_want = CeilToCount(f_req, yf.size() + 1,
                                options_.max_samples - g);
    DIGEST_RETURN_IF_ERROR(draw_fresh(f_want - yf.size()));
  }

  // Keep the pair data for forward regression before rolling state.
  last_pair_y1_ = y1g;
  last_pair_y2_ = y2g;
  before_update_mean_ = prev_mean_estimate_;
  before_update_var_ = prev_variance_;
  after_update_mean_ = combined;
  after_update_var_ = combined_var;

  // Memorize this occasion for the next one.
  for (size_t i = 0; i < yf.size(); ++i) {
    current.push_back(Retained{fresh_refs[i], yf[i]});
  }
  prev_samples_ = std::move(current);
  prev_mean_estimate_ = combined;
  prev_variance_ = combined_var;
  sigma_hat_ = sigma2;
  const double w = options_.correlation_smoothing;
  rho_hat_ = (1.0 - w) * rho_hat_ + w * rho_sample;
  ++occasion_;

  SnapshotEstimate est;
  est.mean_estimate = combined;
  est.sigma = sigma2;
  est.variance_of_mean = combined_var;
  est.total_samples = g + fresh_drawn_total;
  est.fresh_samples = fresh_drawn_total;
  est.retained_samples = g;
  est.contributing_samples = g + yf.size();
  est.partial = partial;
  DIGEST_ASSIGN_OR_RETURN(est.value,
                          independent_.ScaleToQueryUnits(combined));
  DIGEST_ASSIGN_OR_RETURN(
      est.ci_halfwidth,
      independent_.ScaleToQueryUnits(z * std::sqrt(combined_var)));
  if (partial && obs::Tracing(options_.tracer)) {
    options_.tracer->Emit(obs::PartialSnapshotEvent{
        static_cast<uint64_t>(yf.size()),
        static_cast<uint64_t>(planned_fresh), est.ci_halfwidth});
  }
  return est;
}

Result<SnapshotEstimate> RepeatedSamplingEstimator::EvaluateDegraded(
    NodeId origin) {
  (void)origin;  // Refreshes are direct contacts; no walks originate.
  DIGEST_RETURN_IF_ERROR(independent_.EnsureInitialized());
  if (occasion_ == 0 || prev_samples_.empty()) {
    return Status::Unavailable(
        "degraded evaluation needs a completed occasion with retained "
        "samples");
  }
  // Re-evaluate the retained pool in place. Deleted tuples, departed
  // nodes, and tuples that left the qualifying subpopulation drop out.
  std::vector<Retained> survivors;
  survivors.reserve(prev_samples_.size());
  RunningStats stats;
  for (const Retained& r : prev_samples_) {
    if (meter_ != nullptr) meter_->AddRefresh(options_.refresh_message_cost);
    Result<Tuple> tuple = db_->GetTuple(r.ref);
    if (!tuple.ok()) continue;
    Result<std::optional<double>> y = independent_.ContributionValue(*tuple);
    if (!y.ok() || !y->has_value()) continue;
    survivors.push_back(Retained{r.ref, **y});
    stats.Add(**y);
  }
  if (stats.count() < 2) {
    return Status::Unavailable(
        "retained pool no longer reachable; cannot degrade");
  }
  const double mean = stats.Mean();
  const double var =
      stats.SampleVariance() / static_cast<double>(stats.count());
  SnapshotEstimate est;
  est.mean_estimate = mean;
  est.sigma = stats.SampleStdDev();
  est.variance_of_mean = var;
  est.total_samples = survivors.size();
  est.fresh_samples = 0;
  est.retained_samples = survivors.size();
  est.contributing_samples = survivors.size();
  est.degraded = true;
  DIGEST_ASSIGN_OR_RETURN(est.value, independent_.ScaleToQueryUnits(mean));
  // The retained pool is smaller than a planned occasion and stale as a
  // sample of the *current* population: report the honest CLT interval
  // widened by the configured factor.
  DIGEST_ASSIGN_OR_RETURN(
      est.ci_halfwidth,
      independent_.ScaleToQueryUnits(options_.degraded_widening *
                                     independent_.z_ * std::sqrt(var)));
  // Roll the refreshed values forward so the next healthy occasion's
  // regression pairs against up-to-date retained values.
  prev_samples_ = std::move(survivors);
  prev_mean_estimate_ = mean;
  prev_variance_ = var;
  sigma_hat_ = est.sigma;
  return est;
}

EstimatorState IndependentEstimator::SaveState() const {
  EstimatorState s;
  s.rng = rng_.SaveState();
  s.indep_rng = rng_.SaveState();
  return s;
}

void IndependentEstimator::RestoreState(const EstimatorState& state) {
  rng_.RestoreState(state.indep_rng);
}

EstimatorState RepeatedSamplingEstimator::SaveState() const {
  EstimatorState s;
  s.rng = rng_.SaveState();
  s.indep_rng = independent_.rng_.SaveState();
  s.retained_refs.reserve(prev_samples_.size());
  s.retained_ys.reserve(prev_samples_.size());
  for (const Retained& r : prev_samples_) {
    s.retained_refs.push_back(r.ref);
    s.retained_ys.push_back(r.y);
  }
  s.prev_mean_estimate = prev_mean_estimate_;
  s.prev_variance = prev_variance_;
  s.rho_hat = rho_hat_;
  s.sigma_hat = sigma_hat_;
  s.occasion = static_cast<uint64_t>(occasion_);
  s.last_pair_y1 = last_pair_y1_;
  s.last_pair_y2 = last_pair_y2_;
  s.before_update_mean = before_update_mean_;
  s.before_update_var = before_update_var_;
  s.after_update_mean = after_update_mean_;
  s.after_update_var = after_update_var_;
  return s;
}

void RepeatedSamplingEstimator::RestoreState(const EstimatorState& state) {
  rng_.RestoreState(state.rng);
  independent_.rng_.RestoreState(state.indep_rng);
  prev_samples_.clear();
  prev_samples_.reserve(state.retained_refs.size());
  const size_t pool =
      std::min(state.retained_refs.size(), state.retained_ys.size());
  for (size_t i = 0; i < pool; ++i) {
    prev_samples_.push_back(
        Retained{state.retained_refs[i], state.retained_ys[i]});
  }
  prev_mean_estimate_ = state.prev_mean_estimate;
  prev_variance_ = state.prev_variance;
  rho_hat_ = state.rho_hat;
  sigma_hat_ = state.sigma_hat;
  occasion_ = static_cast<size_t>(state.occasion);
  last_pair_y1_ = state.last_pair_y1;
  last_pair_y2_ = state.last_pair_y2;
  before_update_mean_ = state.before_update_mean;
  before_update_var_ = state.before_update_var;
  after_update_mean_ = state.after_update_mean;
  after_update_var_ = state.after_update_var;
}

}  // namespace digest
